package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"gossipmia/internal/experiment"
	"gossipmia/pkg/dlsim"
)

// job is one submitted scenario run. Status fields are guarded by the
// server mutex; the event log has its own lock so streaming subscribers
// never contend with the job table.
type job struct {
	id  string
	key string

	spec *dlsim.Spec
	// scale is the resolved preset (with any seed override applied) —
	// the dedup fingerprint and the source of the status report's
	// seed/workers fields. Execution goes through the public SDK Runner.
	scale     experiment.Scale
	scaleName string

	status    string
	errMsg    string
	result    *dlsim.Result
	submitted time.Time
	started   time.Time
	finished  time.Time

	// cancel aborts the job's context; safe to call in any status.
	cancel context.CancelFunc
	ctx    context.Context

	events *eventLog
}

// eventLog is a job's append-only stream of marshaled Event lines with
// replay + follow semantics: a subscriber first drains everything
// already produced, then waits on the wake channel for more (or for
// the terminal close).
type eventLog struct {
	mu    sync.Mutex
	lines [][]byte
	done  bool
	wake  chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append adds one pre-marshaled NDJSON line (without trailing newline).
func (l *eventLog) append(line []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.lines = append(l.lines, line)
	close(l.wake)
	l.wake = make(chan struct{})
}

// finish marks the stream complete and releases every waiter.
func (l *eventLog) finish() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.wake)
	l.wake = make(chan struct{})
}

// next returns the lines at and after cursor, whether the stream is
// complete, and a channel that wakes when either changes.
func (l *eventLog) next(cursor int) (lines [][]byte, done bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < len(l.lines) {
		lines = l.lines[cursor:]
	}
	return lines, l.done, l.wake
}

// len returns the number of events produced so far.
func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

// jobKey is the dedup key of a submission: the SHA-256 of the spec's
// content hash together with the scale fingerprint. The seed is part
// of the scale (identical science ⇒ identical results ⇒ shareable);
// the worker count is excluded because it never affects results.
func jobKey(specHash string, sc experiment.Scale) (string, error) {
	sc.Workers = 0
	raw, err := json.Marshal(struct {
		SpecHash string           `json:"specHash"`
		Scale    experiment.Scale `json:"scale"`
	}{specHash, sc})
	if err != nil {
		return "", fmt.Errorf("server: job key: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// submit registers a new job (or returns the existing job with the
// same dedup key) and enqueues it. The bool reports dedup; the error
// is ErrQueueFull when the bounded queue cannot accept the job.
func (s *Server) submit(sp *dlsim.Spec, sc experiment.Scale, scaleName string) (*job, bool, error) {
	specHash, err := sp.Hash()
	if err != nil {
		return nil, false, err
	}
	key, err := jobKey(specHash, sc)
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.byKey[key]; ok {
		return existing, true, nil
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.seq),
		key:       key,
		spec:      sp,
		scale:     sc,
		scaleName: scaleName,
		status:    dlsim.StatusQueued,
		submitted: s.now(),
		cancel:    cancel,
		ctx:       ctx,
		events:    newEventLog(),
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		cancel()
		return nil, false, ErrQueueFull
	}
	s.pending = append(s.pending, j)
	s.signalLocked()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byKey[key] = j
	return j, false, nil
}

// worker drains the job queue until the server closes. One goroutine
// per configured job slot, so at most cfg.Jobs scenarios execute
// concurrently and everything behind them waits in the bounded queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.pop()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// pop blocks until a job is pending or the server closes (nil). The
// pending list is a plain slice rather than a channel so that
// cancelling a queued job can remove it immediately — its queue slot
// frees without waiting for a worker to drain and skip it.
func (s *Server) pop() *job {
	for {
		s.mu.Lock()
		if len(s.pending) > 0 {
			j := s.pending[0]
			s.pending = s.pending[1:]
			if len(s.pending) > 0 {
				s.signalLocked() // keep sibling workers draining
			}
			s.mu.Unlock()
			return j
		}
		s.mu.Unlock()
		select {
		case <-s.baseCtx.Done():
			return nil
		case <-s.notify:
		}
	}
}

// signalLocked nudges one sleeping worker; the notify channel has
// capacity 1, so redundant signals coalesce. Callers hold s.mu.
func (s *Server) signalLocked() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// runJob executes one dequeued job through the public SDK Runner —
// the service is itself a pkg/dlsim consumer, so the wire result and
// streamed events are the SDK's types by construction — appending
// every evaluated round to the job's event log.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != dlsim.StatusQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	j.status = dlsim.StatusRunning
	j.started = s.now()
	s.mu.Unlock()

	var res *dlsim.Result
	runner, err := dlsim.NewRunner(
		dlsim.WithScale(j.scaleName),
		dlsim.WithSeed(j.scale.Seed),
		dlsim.WithWorkers(j.scale.Workers),
		dlsim.WithSink(&jobSink{log: j.events}),
	)
	if err == nil {
		res, err = runner.Run(j.ctx, j.spec)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = s.now()
	switch {
	case err == nil:
		j.status = dlsim.StatusDone
		j.result = res
	case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
		j.status = dlsim.StatusCancelled
		// Keep the engine's own message: when a cancellation races a
		// genuine failure, the root cause must stay retrievable from
		// the job status rather than be masked by "context canceled".
		j.errMsg = err.Error()
	default:
		j.status = dlsim.StatusFailed
		j.errMsg = err.Error()
	}
	// Only successful runs stay dedup-addressable: a failed or
	// cancelled key must re-execute on resubmission.
	if j.status != dlsim.StatusDone && s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
	j.events.finish()
	s.pruneLocked()
}

// cancelJob requests cancellation. A queued job transitions to
// cancelled immediately and leaves the pending queue, freeing its slot
// for the next submission; a running job aborts at its next arm/round
// boundary and the executing worker records the transition.
func (s *Server) cancelJob(j *job) {
	j.cancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.status == dlsim.StatusQueued {
		j.status = dlsim.StatusCancelled
		j.finished = s.now()
		for i, p := range s.pending {
			if p == j {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		j.events.finish()
		s.pruneLocked()
	}
	// Drop the dedup key as soon as cancellation is requested — not
	// when the worker eventually observes it — so a cancel-and-resubmit
	// of the same spec re-executes instead of dedup-attaching to the
	// dying job.
	if j.status != dlsim.StatusDone && s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
}

// pruneLocked evicts the oldest terminal jobs beyond the retention
// cap, bounding what a long-running service holds (full results and
// event logs are only retained for the MaxJobs most recent jobs;
// queued and running jobs are never evicted). Callers hold s.mu.
func (s *Server) pruneLocked() {
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.jobs) - s.cfg.MaxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && dlsim.TerminalStatus(j.status) {
			delete(s.jobs, id)
			if s.byKey[j.key] == j {
				delete(s.byKey, j.key)
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// jobSink adapts the SDK's event stream onto the job event log. The
// Runner serializes Record calls, so the only locking is the log's own.
type jobSink struct {
	log *eventLog
}

// Record implements dlsim.Sink.
func (js *jobSink) Record(ev dlsim.Event) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("server: encode event: %w", err)
	}
	js.log.append(line)
	return nil
}

// statusOf snapshots a job into its wire representation. Callers must
// hold the server mutex.
func (s *Server) statusOf(j *job, deduped bool) *dlsim.JobStatus {
	st := &dlsim.JobStatus{
		ID:          j.id,
		Key:         j.key,
		Status:      j.status,
		Deduped:     deduped,
		Error:       j.errMsg,
		Spec:        j.spec.Name,
		Scale:       j.scaleName,
		Seed:        j.scale.Seed,
		Workers:     j.scale.Workers,
		Events:      j.events.len(),
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.status == dlsim.StatusDone {
		st.Result = j.result
	}
	return st
}
