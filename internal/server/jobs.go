package server

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"gossipmia/internal/distrib"
	"gossipmia/internal/experiment"
	"gossipmia/internal/faultinject"
	"gossipmia/pkg/dlsim"
)

// job is one submitted scenario run. Status fields are guarded by the
// server mutex; the event log has its own lock so streaming subscribers
// never contend with the job table.
type job struct {
	id  string
	key string

	spec *dlsim.Spec
	// scale is the resolved preset (with any seed override applied) —
	// the dedup fingerprint and the source of the status report's
	// seed/workers fields. Execution goes through the public SDK Runner.
	scale     experiment.Scale
	scaleName string
	// tenant is the authenticated submitter; quotas count by it.
	tenant string

	status string
	errMsg string
	// attempts counts execution tries; > 1 means transient failures
	// were retried.
	attempts int
	// workerFailures is the aggregated per-worker error history of arms
	// the fleet mishandled: poison-contained arms record every distinct
	// worker that failed them, audits record workers caught uploading
	// divergent bytes. The job itself still succeeds — these are the
	// receipts of who misbehaved along the way.
	workerFailures []dlsim.WorkerFailure
	result         *dlsim.Result
	submitted      time.Time
	started        time.Time
	finished       time.Time

	// cancel aborts the job's context; safe to call in any status.
	cancel context.CancelFunc
	ctx    context.Context

	events *eventLog
}

// eventLog is a job's append-only stream of marshaled Event lines with
// replay + follow semantics: a subscriber first drains everything
// already produced, then waits on the wake channel for more (or for
// the terminal close).
type eventLog struct {
	mu    sync.Mutex
	lines [][]byte
	done  bool
	wake  chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{wake: make(chan struct{})}
}

// append adds one pre-marshaled NDJSON line (without trailing newline).
func (l *eventLog) append(line []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.lines = append(l.lines, line)
	close(l.wake)
	l.wake = make(chan struct{})
}

// finish marks the stream complete and releases every waiter.
func (l *eventLog) finish() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done {
		return
	}
	l.done = true
	close(l.wake)
	l.wake = make(chan struct{})
}

// next returns the lines at and after cursor, whether the stream is
// complete, and a channel that wakes when either changes.
func (l *eventLog) next(cursor int) (lines [][]byte, done bool, wake <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < len(l.lines) {
		lines = l.lines[cursor:]
	}
	return lines, l.done, l.wake
}

// len returns the number of events produced so far.
func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.lines)
}

// jobKey is the dedup key of a submission: the SHA-256 of the spec's
// content hash together with the scale fingerprint. The seed is part
// of the scale (identical science ⇒ identical results ⇒ shareable);
// the worker count is excluded because it never affects results.
func jobKey(specHash string, sc experiment.Scale) (string, error) {
	sc.Workers = 0
	raw, err := json.Marshal(struct {
		SpecHash string           `json:"specHash"`
		Scale    experiment.Scale `json:"scale"`
	}{specHash, sc})
	if err != nil {
		return "", fmt.Errorf("server: job key: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// submit registers a new job (or returns the existing job with the
// same dedup key) and enqueues it. The bool reports dedup; the error
// is ErrQueueFull when the bounded queue cannot accept the job and
// ErrQuotaExceeded when the tenant is at its active-job cap.
func (s *Server) submit(sp *dlsim.Spec, sc experiment.Scale, scaleName, tenant string) (*job, bool, error) {
	specHash, err := sp.Hash()
	if err != nil {
		return nil, false, err
	}
	key, err := jobKey(specHash, sc)
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.byKey[key]; ok {
		return existing, true, nil
	}
	// The quota counts live (queued + running) jobs per tenant. It sits
	// after dedup on purpose: attaching to an existing execution costs
	// the tenant nothing.
	if limit := s.cfg.MaxActiveJobsPerTenant; limit > 0 {
		live := 0
		for _, j := range s.jobs {
			if j.tenant == tenant && !dlsim.TerminalStatus(j.status) {
				live++
			}
		}
		if live >= limit {
			return nil, false, ErrQuotaExceeded
		}
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.seq),
		key:       key,
		spec:      sp,
		scale:     sc,
		scaleName: scaleName,
		tenant:    tenant,
		status:    dlsim.StatusQueued,
		submitted: s.now(),
		cancel:    cancel,
		ctx:       ctx,
		events:    newEventLog(),
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		cancel()
		return nil, false, ErrQueueFull
	}
	s.pending = append(s.pending, j)
	s.signalLocked()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byKey[key] = j
	return j, false, nil
}

// worker drains the job queue until the server closes. One goroutine
// per configured job slot, so at most cfg.Jobs scenarios execute
// concurrently and everything behind them waits in the bounded queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.pop()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// pop blocks until a job is pending or the server closes (nil). The
// pending list is a plain slice rather than a channel so that
// cancelling a queued job can remove it immediately — its queue slot
// frees without waiting for a worker to drain and skip it.
func (s *Server) pop() *job {
	for {
		s.mu.Lock()
		if len(s.pending) > 0 {
			j := s.pending[0]
			s.pending = s.pending[1:]
			if len(s.pending) > 0 {
				s.signalLocked() // keep sibling workers draining
			}
			s.mu.Unlock()
			return j
		}
		s.mu.Unlock()
		select {
		case <-s.baseCtx.Done():
			return nil
		case <-s.notify:
		}
	}
}

// signalLocked nudges one sleeping worker; the notify channel has
// capacity 1, so redundant signals coalesce. Callers hold s.mu.
func (s *Server) signalLocked() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// retrySeed derives the deterministic jitter seed of a job from its
// dedup key, so two jobs never share a retry schedule yet each job's
// schedule is reproducible.
func retrySeed(key string) uint64 {
	raw, err := hex.DecodeString(key)
	if err != nil || len(raw) < 8 {
		return uint64(len(key))
	}
	return binary.BigEndian.Uint64(raw[:8])
}

// runAttempt executes the job once through the public SDK Runner — the
// service is itself a pkg/dlsim consumer, so the wire result and
// streamed events are the SDK's types by construction. With a
// checkpoint directory configured the attempt runs directory-backed
// with resume on: completed arms are served from their caches (and do
// not re-stream), so a retry — or a resubmission after a restart —
// pays only for the arms that never finished.
func (s *Server) runAttempt(ctx context.Context, j *job) (*dlsim.Result, error) {
	runner, err := dlsim.NewRunner(
		dlsim.WithScale(j.scaleName),
		dlsim.WithSeed(j.scale.Seed),
		dlsim.WithWorkers(j.scale.Workers),
		dlsim.WithSink(&jobSink{log: j.events}),
		// Arms are offered to the worker fleet first; with no workers
		// connected the executor declines synchronously and the arm
		// runs in-process exactly as before.
		dlsim.WithArmExecutor(s.armExecutor(j)),
	)
	if err != nil {
		return nil, err
	}
	if s.cfg.CheckpointDir != "" {
		res, report, err := runner.RunDir(ctx, j.spec, dlsim.DirOptions{
			OutDir: filepath.Join(s.cfg.CheckpointDir, j.key[:16]),
			Resume: true,
			Events: "none", // the event log is the stream; no second copy
			// One store for every job: arms are content-hash keyed, so
			// resubmissions and overlapping sweeps share cached results
			// across job boundaries through the shared handle.
			StoreDir: s.cfg.StoreDir,
		})
		if report != nil {
			for _, a := range report.Arms {
				if a.Cached {
					s.cacheHits.Add(1)
				} else {
					s.cacheMisses.Add(1)
				}
			}
		}
		return res, err
	}
	return runner.Run(ctx, j.spec)
}

// runJob executes one dequeued job, retrying transient failures under
// the server's retry policy with exponential backoff and deterministic
// jitter. Fatal errors — panics recovered into ErrArmPanic, validation
// failures, cancellation — terminate immediately. Every evaluated
// round lands in the job's event log as it is produced; retried arms
// re-stream rounds they had already produced, which is safe because the
// engine is deterministic (the re-streamed lines are byte-identical)
// and the SDK client drops the duplicates by round order.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != dlsim.StatusQueued { // cancelled while queued
		s.mu.Unlock()
		return
	}
	j.status = dlsim.StatusRunning
	j.started = s.now()
	s.mu.Unlock()

	// The fault injector rides the context into the engine's execution
	// path; production runs carry a nil injector at zero cost.
	ctx := faultinject.With(j.ctx, s.cfg.Fault)
	seed := retrySeed(j.key)
	var res *dlsim.Result
	var err error
	attempts := 0
	for {
		attempts++
		res, err = s.runAttempt(ctx, j)
		if err == nil || j.ctx.Err() != nil || !experiment.IsTransient(err) ||
			attempts >= s.cfg.Retry.MaxAttempts {
			break
		}
		wait := s.cfg.Retry.backoff(attempts, seed)
		s.log.Warn("job attempt failed on a transient error; backing off",
			"job", j.id, "attempt", attempts, "backoff", wait, "error", err)
		select {
		case <-j.ctx.Done():
		case <-time.After(wait):
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.attempts = attempts
	j.finished = s.now()
	switch {
	case err == nil:
		j.status = dlsim.StatusDone
		j.result = res
	case errors.Is(err, context.Canceled) || j.ctx.Err() != nil:
		j.status = dlsim.StatusCancelled
		// Keep the engine's own message: when a cancellation races a
		// genuine failure, the root cause must stay retrievable from
		// the job status rather than be masked by "context canceled".
		j.errMsg = err.Error()
	default:
		j.status = dlsim.StatusFailed
		j.errMsg = err.Error()
	}
	// Only successful runs stay dedup-addressable: a failed or
	// cancelled key must re-execute on resubmission.
	if j.status != dlsim.StatusDone && s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
	j.events.finish()
	s.pruneLocked()
	s.log.Info("job finished",
		"job", j.id, "tenant", j.tenant, "status", j.status,
		"attempts", j.attempts, "error", j.errMsg,
		"elapsed", j.finished.Sub(j.started).Round(time.Millisecond))
}

// cancelJob requests cancellation. A queued job transitions to
// cancelled immediately and leaves the pending queue, freeing its slot
// for the next submission; a running job aborts at its next arm/round
// boundary and the executing worker records the transition.
func (s *Server) cancelJob(j *job) {
	j.cancel()
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.status == dlsim.StatusQueued {
		j.status = dlsim.StatusCancelled
		j.finished = s.now()
		for i, p := range s.pending {
			if p == j {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
		j.events.finish()
		s.pruneLocked()
	}
	// Drop the dedup key as soon as cancellation is requested — not
	// when the worker eventually observes it — so a cancel-and-resubmit
	// of the same spec re-executes instead of dedup-attaching to the
	// dying job.
	if j.status != dlsim.StatusDone && s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
}

// pruneLocked evicts the oldest terminal jobs beyond the retention
// cap, bounding what a long-running service holds (full results and
// event logs are only retained for the MaxJobs most recent jobs;
// queued and running jobs are never evicted). Callers hold s.mu.
func (s *Server) pruneLocked() {
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.jobs) - s.cfg.MaxJobs
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && dlsim.TerminalStatus(j.status) {
			delete(s.jobs, id)
			if s.byKey[j.key] == j {
				delete(s.byKey, j.key)
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// jobSink adapts the SDK's event stream onto the job event log. The
// Runner serializes Record calls, so the only locking is the log's own.
type jobSink struct {
	log *eventLog
}

// Record implements dlsim.Sink.
func (js *jobSink) Record(ev dlsim.Event) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("server: encode event: %w", err)
	}
	js.log.append(line)
	return nil
}

// statusOf snapshots a job into its wire representation. Callers must
// hold the server mutex.
func (s *Server) statusOf(j *job, deduped bool) *dlsim.JobStatus {
	st := &dlsim.JobStatus{
		ID:          j.id,
		Key:         j.key,
		Status:      j.status,
		Deduped:     deduped,
		Error:       j.errMsg,
		Spec:        j.spec.Name,
		Scale:       j.scaleName,
		Seed:        j.scale.Seed,
		Workers:     j.scale.Workers,
		Tenant:      j.tenant,
		Attempts:    j.attempts,
		Events:      j.events.len(),
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.status == dlsim.StatusDone {
		st.Result = j.result
	}
	if len(j.workerFailures) > 0 {
		st.WorkerFailures = append([]dlsim.WorkerFailure(nil), j.workerFailures...)
	}
	return st
}

// recordWorkerFailures appends fleet misbehavior observed while
// executing one of the job's arms to the job's status record.
func (s *Server) recordWorkerFailures(j *job, arm string, failures []distrib.UnitFailure) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range failures {
		j.workerFailures = append(j.workerFailures, dlsim.WorkerFailure{
			Worker: f.Worker,
			Arm:    arm,
			Reason: f.Reason,
		})
	}
}
