package server

// Distributed-execution suite: in-process worker loops exercising the
// /v1/work API end to end against real simulations. The invariant
// under test everywhere is the acceptance criterion — results produced
// by a worker fleet (including one that loses a worker mid-arm) are
// byte-identical to in-process execution.

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gossipmia/pkg/dlsim"
)

// executeWorkOrder runs one claimed order exactly as `dlsim worker`
// does: a single-arm spec through the SDK Runner at the order's scale
// and resolved seed.
func executeWorkOrder(ctx context.Context, order *dlsim.WorkOrder) (*dlsim.ArmResult, error) {
	runner, err := dlsim.NewRunner(
		dlsim.WithScale(order.Scale),
		dlsim.WithSeed(order.Seed),
		dlsim.WithWorkers(1),
	)
	if err != nil {
		return nil, err
	}
	res, err := runner.Run(ctx, &dlsim.Spec{Name: order.Spec, Arms: []dlsim.Arm{order.Arm}})
	if err != nil {
		return nil, err
	}
	return &res.Arms[0], nil
}

// workResult wraps an arm result as an honest worker would upload it:
// with the checksum over its own bytes (the server rejects uploads
// whose sum does not match).
func workResult(arm *dlsim.ArmResult) dlsim.WorkResult {
	return dlsim.WorkResult{Arm: arm, Sum: arm.Checksum()}
}

// startWorker runs a claim-execute-upload loop (with heartbeats at a
// third of the lease window) until ctx is cancelled — an in-process
// stand-in for one `dlsim worker` slot.
func startWorker(ctx context.Context, t *testing.T, client *dlsim.Client, name string) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			order, err := client.ClaimWork(ctx, name, 500*time.Millisecond)
			if err != nil || order == nil {
				continue
			}
			hbCtx, stopHB := context.WithCancel(ctx)
			interval := time.Duration(order.LeaseSeconds * float64(time.Second) / 3)
			go func() {
				tick := time.NewTicker(interval)
				defer tick.Stop()
				for {
					select {
					case <-hbCtx.Done():
						return
					case <-tick.C:
						client.HeartbeatWork(hbCtx, order.Lease)
					}
				}
			}()
			arm, runErr := executeWorkOrder(ctx, order)
			stopHB()
			result := dlsim.WorkResult{}
			if runErr != nil {
				result.Error = runErr.Error()
			} else {
				result = workResult(arm)
			}
			upCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			client.CompleteWork(upCtx, order.Lease, result)
			cancel()
		}
	}()
	return &wg
}

// TestDistributedFleetByteIdentical: a two-worker fleet executes every
// arm of a submitted sweep and the job result is byte-identical to the
// same spec run by a worker-less service in-process.
func TestDistributedFleetByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, refJSON := referenceRun(t)

	svc, _, client := newChaosService(t, Config{Jobs: 1, DefaultScale: "tiny"})
	ctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	w1 := startWorker(ctx, t, client, "w1")
	w2 := startWorker(ctx, t, client, "w2")
	defer func() { stopWorkers(); w1.Wait(); w2.Wait() }()

	// Let both workers park in a claim so the fleet is live before the
	// job's first arm asks the dispatcher.
	for deadline := time.Now().Add(5 * time.Second); svc.dispatch.LiveWorkers() < 2; {
		if time.Now().After(deadline) {
			t.Fatal("workers never went live")
		}
		time.Sleep(2 * time.Millisecond)
	}

	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("distributed job = %q (%s), want done", final.Status, final.Error)
	}
	if got := resultJSON(t, final.Result); got != refJSON {
		t.Fatalf("distributed result diverged from in-process run:\n got %s\nwant %s", got, refJSON)
	}

	st, err := client.Statz(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Work.RemoteArms != 2 || st.Work.LocalArms != 0 {
		t.Fatalf("arms (remote/local) = %d/%d, want 2/0: %+v", st.Work.RemoteArms, st.Work.LocalArms, st.Work)
	}
	if st.Work.Completes != 2 || st.Work.Claims < 2 {
		t.Fatalf("work stats = %+v", st.Work)
	}
}

// TestWorkerKillReclaimByteIdentical is the chaos acceptance test: one
// worker claims an arm and dies without heartbeating or uploading. The
// lease expires, the arm is reclaimed and re-dispatched to the
// surviving worker, and the final result is still byte-identical to
// the in-process run.
func TestWorkerKillReclaimByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, refJSON := referenceRun(t)

	svc, _, client := newChaosService(t, Config{
		Jobs:         1,
		DefaultScale: "tiny",
		LeaseTTL:     300 * time.Millisecond,
	})

	// The crasher parks first so the fleet is live, claims exactly one
	// order, and vanishes mid-arm.
	crashed := make(chan struct{})
	go func() {
		defer close(crashed)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		for {
			order, err := client.ClaimWork(ctx, "crasher", 500*time.Millisecond)
			if err != nil {
				return
			}
			if order != nil {
				return // claimed and died: no heartbeat, no upload
			}
		}
	}()
	for deadline := time.Now().Add(5 * time.Second); svc.dispatch.LiveWorkers() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("crasher never went live")
		}
		time.Sleep(2 * time.Millisecond)
	}

	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-crashed

	// The survivor starts after the crash and drains everything: the
	// crasher's reclaimed arm plus whatever was still queued.
	ctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	w := startWorker(ctx, t, client, "survivor")
	defer func() { stopWorkers(); w.Wait() }()

	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("chaos job = %q (%s), want done", final.Status, final.Error)
	}
	if got := resultJSON(t, final.Result); got != refJSON {
		t.Fatalf("post-crash result diverged from in-process run:\n got %s\nwant %s", got, refJSON)
	}
	st, err := client.Statz(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Work.Reclaims < 1 {
		t.Fatalf("reclaims = %d, want >= 1 (the crasher's lease must expire): %+v", st.Work.Reclaims, st.Work)
	}
}

// TestWorkerTransientErrorRetries: a worker-side failure (what
// `-inject arm-error` produces on a worker) no longer fails the job's
// attempt — the dispatcher charges the worker's health score, requeues
// the arm, and the same (now behaving) worker redoes it. The job
// completes on its first attempt, byte-identical to the fault-free
// run, and the worker's error shows in the per-worker stats.
func TestWorkerTransientErrorRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, refJSON := referenceRun(t)

	svc, _, client := newChaosService(t, Config{
		Jobs:         1,
		DefaultScale: "tiny",
		Retry:        RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	var failed atomic.Bool
	ctx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			order, err := client.ClaimWork(ctx, "flaky", 500*time.Millisecond)
			if err != nil || order == nil {
				continue
			}
			if failed.CompareAndSwap(false, true) {
				client.CompleteWork(ctx, order.Lease,
					dlsim.WorkResult{Error: "injected worker fault", Transient: true})
				continue
			}
			arm, runErr := executeWorkOrder(ctx, order)
			res := dlsim.WorkResult{}
			if runErr != nil {
				res.Error = runErr.Error()
			} else {
				res = workResult(arm)
			}
			client.CompleteWork(ctx, order.Lease, res)
		}
	}()
	defer func() { stopWorker(); wg.Wait() }()
	for deadline := time.Now().Add(5 * time.Second); svc.dispatch.LiveWorkers() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("worker never went live")
		}
		time.Sleep(2 * time.Millisecond)
	}

	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("job after worker fault = %q (%s), want done", final.Status, final.Error)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (the worker error requeues the arm, not the job)", final.Attempts)
	}
	if got := resultJSON(t, final.Result); got != refJSON {
		t.Fatalf("redispatched distributed result diverged:\n got %s\nwant %s", got, refJSON)
	}
	st, err := client.Statz(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var row *dlsim.WorkerRow
	for i := range st.Work.PerWorker {
		if st.Work.PerWorker[i].Name == "flaky" {
			row = &st.Work.PerWorker[i]
		}
	}
	if row == nil || row.Errors != 1 {
		t.Fatalf("per-worker stats missing the reported error: %+v", st.Work.PerWorker)
	}
}

// TestDrainRefusesClaimsHonorsLeases is the drain-vs-lease regression:
// during a drain new claims get a retryable 503 with a Retry-After
// hint, but the arm already out on a lease may heartbeat and upload,
// the job completes, and Drain returns nil inside its window.
func TestDrainRefusesClaimsHonorsLeases(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	svc, _, client := newChaosService(t, Config{Jobs: 1, DefaultScale: "tiny"})

	// A single-arm job so the leased arm is the whole drain obligation.
	sp := smallSpec()
	sp.Arms = sp.Arms[:1]
	claimCtx, cancelClaim := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelClaim()
	type claimed struct {
		order *dlsim.WorkOrder
		err   error
	}
	cc := make(chan claimed, 1)
	go func() {
		for {
			order, err := client.ClaimWork(claimCtx, "w1", 500*time.Millisecond)
			if err != nil || order != nil {
				cc <- claimed{order, err}
				return
			}
		}
	}()
	for deadline := time.Now().Add(5 * time.Second); svc.dispatch.LiveWorkers() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("worker never went live")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: sp, Scale: "tiny", Workers: 1}); err != nil {
		t.Fatal(err)
	}
	c := <-cc
	if c.err != nil || c.order == nil {
		t.Fatalf("claim = (%v, %v)", c.order, c.err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- svc.Drain(ctx)
	}()
	for deadline := time.Now().Add(5 * time.Second); !svc.dispatch.Draining(); {
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	// New claims are refused with the retryable-backoff shape.
	_, err := client.ClaimWork(t.Context(), "w2", 0)
	var ae *dlsim.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || !ae.Retryable() || ae.RetryAfter <= 0 {
		t.Fatalf("claim during drain = %v, want retryable 503 with Retry-After", err)
	}

	// The outstanding lease still heartbeats and delivers its result.
	if _, err := client.HeartbeatWork(t.Context(), c.order.Lease); err != nil {
		t.Fatalf("heartbeat during drain = %v", err)
	}
	arm, err := executeWorkOrder(t.Context(), c.order)
	if err != nil {
		t.Fatal(err)
	}
	receipt, err := client.CompleteWork(t.Context(), c.order.Lease, workResult(arm))
	if err != nil || receipt.Stale {
		t.Fatalf("upload during drain = (%+v, %v), want accepted", receipt, err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil (the leased arm finished inside the window)", err)
	}
}

// TestDuplicateUploadNoOp: a second upload under the same lease — and
// an upload under a lease the server no longer knows — are acknowledged
// as stale no-ops, never errors, so crashed-and-recovered workers can
// always get rid of a finished arm.
func TestDuplicateUploadNoOp(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	svc, _, client := newChaosService(t, Config{Jobs: 1, DefaultScale: "tiny"})
	sp := smallSpec()
	sp.Arms = sp.Arms[:1]

	claimCtx, cancelClaim := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelClaim()
	cc := make(chan *dlsim.WorkOrder, 1)
	go func() {
		for {
			order, err := client.ClaimWork(claimCtx, "w1", 500*time.Millisecond)
			if err != nil {
				cc <- nil
				return
			}
			if order != nil {
				cc <- order
				return
			}
		}
	}()
	for deadline := time.Now().Add(5 * time.Second); svc.dispatch.LiveWorkers() < 1; {
		if time.Now().After(deadline) {
			t.Fatal("worker never went live")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: sp, Scale: "tiny", Workers: 1}); err != nil {
		t.Fatal(err)
	}
	order := <-cc
	if order == nil {
		t.Fatal("claim failed")
	}
	arm, err := executeWorkOrder(t.Context(), order)
	if err != nil {
		t.Fatal(err)
	}
	if receipt, err := client.CompleteWork(t.Context(), order.Lease, workResult(arm)); err != nil || receipt.Stale {
		t.Fatalf("first upload = (%+v, %v)", receipt, err)
	}
	if receipt, err := client.CompleteWork(t.Context(), order.Lease, workResult(arm)); err != nil || !receipt.Stale {
		t.Fatalf("duplicate upload = (%+v, %v), want stale no-op", receipt, err)
	}
	if receipt, err := client.CompleteWork(t.Context(), "L99999999-deadbeef", workResult(arm)); err != nil || !receipt.Stale {
		t.Fatalf("unknown-lease upload = (%+v, %v), want stale no-op", receipt, err)
	}
	st, err := client.Statz(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Work.StaleUploads < 1 {
		t.Fatalf("stale uploads = %d, want >= 1: %+v", st.Work.StaleUploads, st.Work)
	}
}
