package server

// Distributed sweep execution endpoints: the server side of the
// `dlsim worker` pull fleet.
//
//	POST /v1/work/register          announce a worker joining the fleet
//	POST /v1/work/deregister        announce a clean worker departure
//	POST /v1/work/claim             long-poll one arm work order
//	POST /v1/work/{lease}/heartbeat renew the lease deadline
//	POST /v1/work/{lease}/result    upload the arm's outcome
//	GET  /v1/statz                  dispatch + cache counters snapshot
//
// Jobs decompose into per-arm units through the SDK's ArmExecutor
// hook: when at least one worker is live, each non-cached arm is
// enqueued on the dispatcher and the job's executing goroutine blocks
// until a worker uploads the result (or every worker disappears, in
// which case the arm falls back to local execution — a server with no
// fleet behaves exactly as before). Results are keyed by the same
// content hash as the in-process cache, so a worker's upload lands in
// the server's result store through the ordinary RunDir ingest path
// and the cache is shared cluster-wide.
//
// The fleet is semi-trusted: every uploaded result's bytes are
// re-hashed and checked against the checksum the worker claimed
// before ingestion, quarantined workers' claims answer 403 with a
// Retry-After, and (when enabled) a deterministic sample of completed
// arms is re-executed locally to catch workers that lie consistently.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gossipmia/internal/core"
	"gossipmia/internal/distrib"
	"gossipmia/internal/server/middleware"
	"gossipmia/pkg/dlsim"
)

// maxClaimWait bounds how long one claim request may long-poll.
const maxClaimWait = 30 * time.Second

// armExecutor bridges a job's arms onto the dispatcher. It declines
// (handled=false) when no worker fleet is live, so the engine runs
// the arm in-process — the no-worker behavior is byte-identical to a
// server without the distributed path. An arm the fleet kept failing
// (poisoned after MaxArmAttempts distinct-worker failures) also falls
// back to local execution, with the per-worker error history recorded
// on the job. With AuditFraction set, a deterministic sample of
// worker-completed arms is re-executed locally and cross-checked for
// byte-identity; a divergent worker is quarantined on the spot and
// the local result wins.
func (s *Server) armExecutor(j *job) dlsim.ArmExecutor {
	return func(ctx context.Context, order dlsim.WorkOrder) (*dlsim.ArmResult, bool, error) {
		order.Job = j.id
		payload, err := json.Marshal(order)
		if err != nil {
			return nil, false, fmt.Errorf("server: encode work order: %w", err)
		}
		out, worker, err := s.dispatch.Execute(ctx, distrib.Unit{
			Key:     order.Key,
			Job:     j.id,
			Spec:    order.Spec,
			Label:   order.Label,
			Index:   order.Index,
			Payload: payload,
		})
		if errors.Is(err, distrib.ErrNoWorkers) {
			s.localArms.Add(1)
			return nil, false, nil
		}
		var pe *distrib.PoisonedError
		if errors.As(err, &pe) {
			// Containment: the arm failed on too many distinct workers.
			// Surface who failed it and run it here — determinism makes
			// the local bytes identical to what a healthy worker would
			// have produced.
			s.recordWorkerFailures(j, order.Label, pe.Failures)
			s.localArms.Add(1)
			s.log.Warn("arm contained after repeated worker failures; executing locally",
				"job", j.id, "arm", order.Label, "failures", len(pe.Failures))
			return nil, false, nil
		}
		if err != nil {
			return nil, true, err
		}
		res, ok := out.(*dlsim.ArmResult)
		if !ok || res == nil {
			return nil, true, fmt.Errorf("server: worker returned no result for arm %q", order.Label)
		}
		s.remoteArms.Add(1)
		if auditSampled(order.Key, s.cfg.AuditFraction) {
			if local, divergent := s.auditArm(ctx, j, order, worker, res); divergent {
				return local, true, nil
			}
		}
		return res, true, nil
	}
}

// auditSampled picks the deterministic audit sample: the arm content
// hash's leading 60 bits, reduced mod 1e6, against fraction·1e6. The
// same arm is audited (or not) on every run of every server — no
// randomness source, no flaky coverage.
func auditSampled(key string, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	if len(key) < 15 {
		return true
	}
	v, err := strconv.ParseUint(key[:15], 16, 64)
	if err != nil {
		return true
	}
	return float64(v%1_000_000) < fraction*1_000_000
}

// auditArm re-executes a worker-completed order locally and compares
// canonical checksums. On divergence the worker is quarantined, the
// failure is recorded on the job, and the trusted local result is
// returned with divergent=true.
func (s *Server) auditArm(ctx context.Context, j *job, order dlsim.WorkOrder, worker string, remote *dlsim.ArmResult) (*dlsim.ArmResult, bool) {
	local, err := dlsim.ExecuteOrder(ctx, &order, j.scale.Workers)
	if err != nil {
		// Cancelled mid-audit or the arm cannot run here; the audit is
		// inconclusive, keep the remote result.
		return nil, false
	}
	s.audits.Add(1)
	if local.Checksum() == remote.Checksum() {
		return nil, false
	}
	s.auditsFailed.Add(1)
	reason := fmt.Sprintf("audit: divergent bytes for arm %q", order.Label)
	s.dispatch.Quarantine(worker, reason)
	s.recordWorkerFailures(j, order.Label, []distrib.UnitFailure{{Worker: worker, Reason: reason}})
	s.log.Warn("audit caught divergent worker; quarantined",
		"job", j.id, "arm", order.Label, "worker", worker)
	return local, true
}

// handleClaim is POST /v1/work/claim. It long-polls on the `base`
// middleware chain (no request timeout — the poll is long-lived by
// design) and answers 204 when the wait elapses without work.
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req dlsim.ClaimRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad claim request: %v", err)
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "claim request has no worker name")
		return
	}
	wait := time.Duration(req.WaitSeconds) * time.Second
	if wait < 0 {
		wait = 0
	}
	if wait > maxClaimWait {
		wait = maxClaimWait
	}
	lease, ok, err := s.dispatch.Claim(r.Context(), req.Worker, wait)
	var qe *distrib.QuarantineError
	switch {
	case errors.As(err, &qe):
		retry := time.Until(qe.Until)
		if retry < time.Second {
			retry = time.Second
		}
		middleware.RetryAfter(w.Header(), retry)
		writeErr(w, http.StatusForbidden, "worker %q is quarantined", qe.Worker)
		return
	case errors.Is(err, distrib.ErrDraining) || errors.Is(err, distrib.ErrClosed):
		middleware.RetryAfter(w.Header(), 5*time.Second)
		writeErr(w, http.StatusServiceUnavailable, "%v", ErrDraining)
		return
	case err != nil && r.Context().Err() != nil:
		// Client went away mid-poll; the response is moot.
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "claim failed: %v", err)
		return
	case !ok:
		w.WriteHeader(http.StatusNoContent)
		return
	}
	var order dlsim.WorkOrder
	if err := json.Unmarshal(lease.Unit.Payload, &order); err != nil {
		writeErr(w, http.StatusInternalServerError, "corrupt work order: %v", err)
		return
	}
	order.Lease = lease.ID
	order.LeaseSeconds = lease.TTL.Seconds()
	writeJSON(w, http.StatusOK, order)
}

// handleRegister is POST /v1/work/register: the explicit fleet-join
// handshake. Registration is not required — a bare claim implicitly
// registers — but an announced worker shows up in /v1/statz before
// its first claim and its clean departure can be distinguished from a
// crash.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req dlsim.RegisterRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad register request: %v", err)
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "register request has no worker name")
		return
	}
	if err := s.dispatch.Register(req.Worker); err != nil {
		middleware.RetryAfter(w.Header(), 5*time.Second)
		writeErr(w, http.StatusServiceUnavailable, "register failed: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleDeregister is POST /v1/work/deregister: a clean departure.
// The worker is removed from the live set immediately — its unfilled
// leases requeue to the front of the queue without waiting out the
// liveness TTL, and without counting against the departed arm's
// failure budget (leaving is not misbehavior). Deregistering an
// unknown worker is a no-op, so the call is safe to retry.
func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var req dlsim.RegisterRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad deregister request: %v", err)
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "deregister request has no worker name")
		return
	}
	s.dispatch.Deregister(req.Worker)
	w.WriteHeader(http.StatusNoContent)
}

// handleHeartbeat is POST /v1/work/{lease}/heartbeat. An expired or
// unknown lease answers 410 Gone (the SDK maps it to ErrLeaseExpired)
// so the worker abandons the unit — the arm has been reclaimed.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("lease")
	deadline, err := s.dispatch.Heartbeat(id)
	if err != nil {
		writeErr(w, http.StatusGone, "lease %q expired or unknown", id)
		return
	}
	writeJSON(w, http.StatusOK, dlsim.WorkLease{
		Lease:           id,
		DeadlineSeconds: time.Until(deadline).Seconds(),
	})
}

// handleWorkResult is POST /v1/work/{lease}/result. Uploads against
// resolved or reclaimed-and-resolved units are acknowledged as stale
// no-ops: execution is idempotent by content hash, so the duplicate
// bytes carry no new information. An upload whose lease expired but
// whose arm is still unresolved is accepted — same bytes, sooner.
//
// Every successful upload is audited before ingestion: the server
// re-hashes the decoded arm result and compares it to the checksum
// the worker computed over its own bytes. A missing or mismatched sum
// means the payload was corrupted (in flight or by the worker) — the
// result is rejected with 422, never reaches the store, and the
// worker's health score takes the double-weight mismatch penalty.
func (s *Server) handleWorkResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("lease")
	var res dlsim.WorkResult
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&res); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "result exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "bad work result: %v", err)
		return
	}
	var outcome *dlsim.ArmResult
	var workErr error
	switch {
	case res.Error != "":
		workErr = fmt.Errorf("server: worker execution: %s", res.Error)
		if res.Transient {
			workErr = core.Transient(workErr)
		}
	case res.Arm == nil:
		writeErr(w, http.StatusBadRequest, "work result has neither arm nor error")
		return
	case res.Sum != res.Arm.Checksum():
		stale, err := s.dispatch.Reject(id, "result checksum mismatch")
		if errors.Is(err, distrib.ErrLeaseNotFound) {
			writeJSON(w, http.StatusOK, dlsim.WorkReceipt{Stale: true})
			return
		}
		if stale {
			// The arm already resolved from elsewhere; the corrupt
			// duplicate is discarded without ceremony.
			writeJSON(w, http.StatusOK, dlsim.WorkReceipt{Stale: true})
			return
		}
		writeErr(w, http.StatusUnprocessableEntity,
			"result checksum mismatch for arm %q: claimed %.12s…, computed %.12s…",
			res.Arm.Label, res.Sum, res.Arm.Checksum())
		return
	default:
		outcome = res.Arm
	}
	stale, err := s.dispatch.Complete(id, outcome, workErr)
	if errors.Is(err, distrib.ErrLeaseNotFound) {
		// The server restarted or pruned the lease long after expiry.
		// The upload is a duplicate of work that was (or will be)
		// redone; acknowledge it so the worker moves on.
		writeJSON(w, http.StatusOK, dlsim.WorkReceipt{Stale: true})
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "complete failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, dlsim.WorkReceipt{Stale: stale})
}

// handleStatz is GET /v1/statz: the queue/dispatch/cache counters
// snapshot behind `dlsim list -jobs`.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued := len(s.pending)
	running := 0
	for _, j := range s.jobs {
		if j.status == dlsim.StatusRunning {
			running++
		}
	}
	total := len(s.jobs)
	s.mu.Unlock()
	ds := s.dispatch.Stats()
	hits, misses := s.cacheHits.Load(), s.cacheMisses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, dlsim.ServiceStats{
		Status:   status,
		Jobs:     total,
		Queued:   queued,
		Running:  running,
		Draining: s.draining.Load(),
		Work: dlsim.WorkStats{
			QueueDepth:   ds.QueueDepth,
			ActiveLeases: ds.ActiveLeases,
			Workers:      ds.Workers,
			Claims:       ds.Claims,
			Completes:    ds.Completes,
			Reclaims:     ds.Reclaims,
			StaleUploads: ds.StaleUploads,
			LocalArms:    s.localArms.Load(),
			RemoteArms:   s.remoteArms.Load(),
			Poisoned:     ds.Poisoned,
			Rejected:     ds.Rejected,
			Quarantines:  ds.Quarantines,
			Audits:       s.audits.Load(),
			AuditsFailed: s.auditsFailed.Load(),
			PerWorker:    workerRows(ds.PerWorker),
		},
		Cache: dlsim.CacheStats{Hits: hits, Misses: misses, HitRate: rate},
	})
}

// workerRows converts the dispatcher's per-worker snapshot into the
// wire representation.
func workerRows(in []distrib.WorkerStatus) []dlsim.WorkerRow {
	if len(in) == 0 {
		return nil
	}
	rows := make([]dlsim.WorkerRow, len(in))
	for i, ws := range in {
		rows[i] = dlsim.WorkerRow{
			Name:        ws.Name,
			State:       ws.State,
			Score:       ws.Score,
			Leases:      ws.Leases,
			Completes:   ws.Completes,
			Expiries:    ws.Expiries,
			Errors:      ws.Errors,
			Mismatches:  ws.Mismatches,
			Quarantines: ws.Quarantines,
			Registered:  ws.Registered,
		}
	}
	return rows
}
