package server

// Distributed sweep execution endpoints: the server side of the
// `dlsim worker` pull fleet.
//
//	POST /v1/work/claim            long-poll one arm work order
//	POST /v1/work/{lease}/heartbeat renew the lease deadline
//	POST /v1/work/{lease}/result   upload the arm's outcome
//	GET  /v1/statz                 dispatch + cache counters snapshot
//
// Jobs decompose into per-arm units through the SDK's ArmExecutor
// hook: when at least one worker is live, each non-cached arm is
// enqueued on the dispatcher and the job's executing goroutine blocks
// until a worker uploads the result (or every worker disappears, in
// which case the arm falls back to local execution — a server with no
// fleet behaves exactly as before). Results are keyed by the same
// content hash as the in-process cache, so a worker's upload lands in
// the server's result store through the ordinary RunDir ingest path
// and the cache is shared cluster-wide.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gossipmia/internal/core"
	"gossipmia/internal/distrib"
	"gossipmia/internal/server/middleware"
	"gossipmia/pkg/dlsim"
)

// maxClaimWait bounds how long one claim request may long-poll.
const maxClaimWait = 30 * time.Second

// armExecutor bridges a job's arms onto the dispatcher. It declines
// (handled=false) when no worker fleet is live, so the engine runs
// the arm in-process — the no-worker behavior is byte-identical to a
// server without the distributed path.
func (s *Server) armExecutor(j *job) dlsim.ArmExecutor {
	return func(ctx context.Context, order dlsim.WorkOrder) (*dlsim.ArmResult, bool, error) {
		order.Job = j.id
		payload, err := json.Marshal(order)
		if err != nil {
			return nil, false, fmt.Errorf("server: encode work order: %w", err)
		}
		out, err := s.dispatch.Execute(ctx, distrib.Unit{
			Key:     order.Key,
			Job:     j.id,
			Spec:    order.Spec,
			Label:   order.Label,
			Index:   order.Index,
			Payload: payload,
		})
		if errors.Is(err, distrib.ErrNoWorkers) {
			s.localArms.Add(1)
			return nil, false, nil
		}
		if err != nil {
			return nil, true, err
		}
		res, ok := out.(*dlsim.ArmResult)
		if !ok || res == nil {
			return nil, true, fmt.Errorf("server: worker returned no result for arm %q", order.Label)
		}
		s.remoteArms.Add(1)
		return res, true, nil
	}
}

// handleClaim is POST /v1/work/claim. It long-polls on the `base`
// middleware chain (no request timeout — the poll is long-lived by
// design) and answers 204 when the wait elapses without work.
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req dlsim.ClaimRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad claim request: %v", err)
		return
	}
	if req.Worker == "" {
		writeErr(w, http.StatusBadRequest, "claim request has no worker name")
		return
	}
	wait := time.Duration(req.WaitSeconds) * time.Second
	if wait < 0 {
		wait = 0
	}
	if wait > maxClaimWait {
		wait = maxClaimWait
	}
	lease, ok, err := s.dispatch.Claim(r.Context(), req.Worker, wait)
	switch {
	case errors.Is(err, distrib.ErrDraining) || errors.Is(err, distrib.ErrClosed):
		middleware.RetryAfter(w.Header(), 5*time.Second)
		writeErr(w, http.StatusServiceUnavailable, "%v", ErrDraining)
		return
	case err != nil && r.Context().Err() != nil:
		// Client went away mid-poll; the response is moot.
		return
	case err != nil:
		writeErr(w, http.StatusInternalServerError, "claim failed: %v", err)
		return
	case !ok:
		w.WriteHeader(http.StatusNoContent)
		return
	}
	var order dlsim.WorkOrder
	if err := json.Unmarshal(lease.Unit.Payload, &order); err != nil {
		writeErr(w, http.StatusInternalServerError, "corrupt work order: %v", err)
		return
	}
	order.Lease = lease.ID
	order.LeaseSeconds = lease.TTL.Seconds()
	writeJSON(w, http.StatusOK, order)
}

// handleHeartbeat is POST /v1/work/{lease}/heartbeat. An expired or
// unknown lease answers 410 Gone (the SDK maps it to ErrLeaseExpired)
// so the worker abandons the unit — the arm has been reclaimed.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("lease")
	deadline, err := s.dispatch.Heartbeat(id)
	if err != nil {
		writeErr(w, http.StatusGone, "lease %q expired or unknown", id)
		return
	}
	writeJSON(w, http.StatusOK, dlsim.WorkLease{
		Lease:           id,
		DeadlineSeconds: time.Until(deadline).Seconds(),
	})
}

// handleWorkResult is POST /v1/work/{lease}/result. Uploads against
// resolved or reclaimed-and-resolved units are acknowledged as stale
// no-ops: execution is idempotent by content hash, so the duplicate
// bytes carry no new information. An upload whose lease expired but
// whose arm is still unresolved is accepted — same bytes, sooner.
func (s *Server) handleWorkResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("lease")
	var res dlsim.WorkResult
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&res); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "result exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "bad work result: %v", err)
		return
	}
	var outcome *dlsim.ArmResult
	var workErr error
	switch {
	case res.Error != "":
		workErr = fmt.Errorf("server: worker execution: %s", res.Error)
		if res.Transient {
			workErr = core.Transient(workErr)
		}
	case res.Arm == nil:
		writeErr(w, http.StatusBadRequest, "work result has neither arm nor error")
		return
	default:
		outcome = res.Arm
	}
	stale, err := s.dispatch.Complete(id, outcome, workErr)
	if errors.Is(err, distrib.ErrLeaseNotFound) {
		// The server restarted or pruned the lease long after expiry.
		// The upload is a duplicate of work that was (or will be)
		// redone; acknowledge it so the worker moves on.
		writeJSON(w, http.StatusOK, dlsim.WorkReceipt{Stale: true})
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "complete failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, dlsim.WorkReceipt{Stale: stale})
}

// handleStatz is GET /v1/statz: the queue/dispatch/cache counters
// snapshot behind `dlsim list -jobs`.
func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued := len(s.pending)
	running := 0
	for _, j := range s.jobs {
		if j.status == dlsim.StatusRunning {
			running++
		}
	}
	total := len(s.jobs)
	s.mu.Unlock()
	ds := s.dispatch.Stats()
	hits, misses := s.cacheHits.Load(), s.cacheMisses.Load()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, dlsim.ServiceStats{
		Status:   status,
		Jobs:     total,
		Queued:   queued,
		Running:  running,
		Draining: s.draining.Load(),
		Work: dlsim.WorkStats{
			QueueDepth:   ds.QueueDepth,
			ActiveLeases: ds.ActiveLeases,
			Workers:      ds.Workers,
			Claims:       ds.Claims,
			Completes:    ds.Completes,
			Reclaims:     ds.Reclaims,
			StaleUploads: ds.StaleUploads,
			LocalArms:    s.localArms.Load(),
			RemoteArms:   s.remoteArms.Load(),
		},
		Cache: dlsim.CacheStats{Hits: hits, Misses: misses, HitRate: rate},
	})
}
