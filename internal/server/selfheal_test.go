package server

// Self-healing fleet suite: the acceptance criteria of the worker
// lifecycle / quarantine / poison-containment / audit layer, exercised
// end to end over the HTTP API with real simulations.
//
//   - an arm that keeps failing on distinct workers is contained after
//     MaxAttempts, executes locally, and the job completes with the
//     per-worker error history in its status;
//   - a worker whose uploads fail checksum verification is quarantined
//     and its bytes never reach the result store;
//   - a consistently lying worker (valid checksum over wrong bytes) is
//     caught by the re-execution audit;
//   - a deregistered worker leaves the live set immediately;
//   - a claim parked in the server's long poll returns promptly when
//     the service drains or closes (the shutdown regression).

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"gossipmia/pkg/dlsim"
)

// singleArmSpec is smallSpec cut to one arm: chaos tests that requeue
// the same unit repeatedly want exactly one unit in flight.
func singleArmSpec() *dlsim.Spec {
	sp := smallSpec()
	sp.Arms = sp.Arms[:1]
	return sp
}

// referenceRunSpec executes sp fault-free on a worker-less service and
// returns the canonical result JSON — the byte-identity baseline.
func referenceRunSpec(t *testing.T, sp *dlsim.Spec) string {
	t.Helper()
	client := newTestService(t, Config{Jobs: 1, DefaultScale: "tiny"})
	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: sp, Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("reference run = %q (%s)", final.Status, final.Error)
	}
	return resultJSON(t, final.Result)
}

// waitLive spins until the dispatcher sees n live workers.
func waitLive(t *testing.T, svc *Server, n int) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); svc.dispatch.LiveWorkers() < n; {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never reached %d live workers", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPoisonedArmFallsBackLocal is acceptance criterion (a): an arm
// that fails on MaxArmAttempts distinct workers stops being
// redispatched, executes locally, the job completes byte-identical to
// the fault-free run, and the job status carries every worker's
// failure.
func TestPoisonedArmFallsBackLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sp := singleArmSpec()
	refJSON := referenceRunSpec(t, sp)

	svc, _, client := newChaosService(t, Config{Jobs: 1, DefaultScale: "tiny"})

	// Three saboteurs: each claims exactly one order, reports a failure,
	// and leaves. Three distinct-worker failures is the default poison
	// budget, so the fourth attempt never goes to the fleet.
	var wg sync.WaitGroup
	for _, name := range []string{"evil1", "evil2", "evil3"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			for {
				order, err := client.ClaimWork(ctx, name, 500*time.Millisecond)
				if err != nil {
					return
				}
				if order == nil {
					continue
				}
				client.CompleteWork(ctx, order.Lease,
					dlsim.WorkResult{Error: "deliberate sabotage"})
				return
			}
		}(name)
	}
	defer wg.Wait()
	waitLive(t, svc, 3)

	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: sp, Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("sabotaged job = %q (%s), want done", final.Status, final.Error)
	}
	if got := resultJSON(t, final.Result); got != refJSON {
		t.Fatalf("contained result diverged from fault-free run:\n got %s\nwant %s", got, refJSON)
	}
	if len(final.WorkerFailures) != 3 {
		t.Fatalf("worker failures = %+v, want one per saboteur", final.WorkerFailures)
	}
	seen := map[string]bool{}
	for _, f := range final.WorkerFailures {
		if f.Arm != "a" || f.Reason == "" {
			t.Fatalf("failure record incomplete: %+v", f)
		}
		seen[f.Worker] = true
	}
	if len(seen) != 3 {
		t.Fatalf("failures name %d distinct workers, want 3: %+v", len(seen), final.WorkerFailures)
	}

	st, err := client.Statz(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Work.Poisoned != 1 || st.Work.LocalArms < 1 {
		t.Fatalf("statz after containment = %+v, want poisoned=1 and a local arm", st.Work)
	}
}

// TestCorruptUploadRejectedAndQuarantined is acceptance criterion (b):
// a worker whose uploads do not match their claimed checksum gets 422,
// its bytes never reach the store, repeated mismatches quarantine it
// (claims answer 403 + Retry-After mapped to ErrWorkerQuarantined),
// and the sweep still completes byte-identical via local fallback.
func TestCorruptUploadRejectedAndQuarantined(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sp := singleArmSpec()
	refJSON := referenceRunSpec(t, sp)

	svc, _, client := newChaosService(t, Config{Jobs: 1, DefaultScale: "tiny"})

	// The corrupter executes honestly but flips a byte after computing
	// the checksum — exactly what `dlsim worker -inject upload-corrupt`
	// does. Two rejected uploads cross the health threshold.
	quarantined := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for {
			order, err := client.ClaimWork(ctx, "corrupter", 500*time.Millisecond)
			if err != nil {
				quarantined <- err
				return
			}
			if order == nil {
				continue
			}
			arm, runErr := executeWorkOrder(ctx, order)
			if runErr != nil {
				quarantined <- runErr
				return
			}
			res := workResult(arm)
			res.Arm.BytesSent++ // tamper AFTER the sum: checksum mismatch
			client.CompleteWork(ctx, order.Lease, res)
		}
	}()
	waitLive(t, svc, 1)

	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: sp, Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("job with corrupting worker = %q (%s), want done", final.Status, final.Error)
	}
	if got := resultJSON(t, final.Result); got != refJSON {
		t.Fatalf("store was polluted — result diverged:\n got %s\nwant %s", got, refJSON)
	}
	if err := <-quarantined; !errors.Is(err, dlsim.ErrWorkerQuarantined) {
		t.Fatalf("corrupter's claim error = %v, want ErrWorkerQuarantined", err)
	}

	st, err := client.Statz(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Work.Rejected < 2 || st.Work.Quarantines < 1 {
		t.Fatalf("statz = %+v, want >=2 rejected uploads and a quarantine", st.Work)
	}
	var row *dlsim.WorkerRow
	for i := range st.Work.PerWorker {
		if st.Work.PerWorker[i].Name == "corrupter" {
			row = &st.Work.PerWorker[i]
		}
	}
	if row == nil || row.State != "quarantined" || row.Mismatches < 2 {
		t.Fatalf("per-worker row = %+v, want quarantined with >=2 mismatches", row)
	}
}

// TestAuditCatchesDivergentWorker: a worker that lies consistently —
// wrong bytes under a checksum computed over those wrong bytes —
// passes upload verification, but the -audit re-execution catches the
// divergence, quarantines the worker, and the trusted local result
// wins so the job stays byte-identical.
func TestAuditCatchesDivergentWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sp := singleArmSpec()
	refJSON := referenceRunSpec(t, sp)

	svc, _, client := newChaosService(t, Config{
		Jobs:          1,
		DefaultScale:  "tiny",
		AuditFraction: 1, // audit everything: the lie cannot hide
	})

	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for {
			order, err := client.ClaimWork(ctx, "liar", 500*time.Millisecond)
			if err != nil {
				return
			}
			if order == nil {
				continue
			}
			arm, runErr := executeWorkOrder(ctx, order)
			if runErr != nil {
				return
			}
			arm.BytesSent += 1000  // lie first…
			res := workResult(arm) // …then checksum the lie: upload verifies
			client.CompleteWork(ctx, order.Lease, res)
		}
	}()
	waitLive(t, svc, 1)

	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: sp, Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("audited job = %q (%s), want done", final.Status, final.Error)
	}
	if got := resultJSON(t, final.Result); got != refJSON {
		t.Fatalf("audit failed to restore the truthful bytes:\n got %s\nwant %s", got, refJSON)
	}
	if len(final.WorkerFailures) == 0 || final.WorkerFailures[0].Worker != "liar" {
		t.Fatalf("worker failures = %+v, want the liar's audit divergence", final.WorkerFailures)
	}

	st, err := client.Statz(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Work.Audits < 1 || st.Work.AuditsFailed < 1 {
		t.Fatalf("statz audits = %d/%d failed, want >=1 each: %+v",
			st.Work.AuditsFailed, st.Work.Audits, st.Work)
	}
	var row *dlsim.WorkerRow
	for i := range st.Work.PerWorker {
		if st.Work.PerWorker[i].Name == "liar" {
			row = &st.Work.PerWorker[i]
		}
	}
	if row == nil || row.State != "quarantined" {
		t.Fatalf("per-worker row = %+v, want the liar quarantined", row)
	}
}

// TestDeregisterRemovesWorkerImmediately: the lifecycle handshake. A
// registered worker is visible in /v1/statz at once; deregistering
// removes it from the live set immediately — no TTL wait — so a
// subsequent submission goes straight to local execution.
func TestDeregisterRemovesWorkerImmediately(t *testing.T) {
	svc, _, client := newChaosService(t, Config{Jobs: 1, DefaultScale: "tiny"})

	if err := client.RegisterWorker(t.Context(), "w1"); err != nil {
		t.Fatalf("register = %v", err)
	}
	st, err := client.Statz(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Work.Workers != 1 || len(st.Work.PerWorker) != 1 ||
		st.Work.PerWorker[0].Name != "w1" || !st.Work.PerWorker[0].Registered {
		t.Fatalf("statz after register = %+v, want announced worker w1", st.Work)
	}

	if err := client.DeregisterWorker(t.Context(), "w1"); err != nil {
		t.Fatalf("deregister = %v", err)
	}
	if n := svc.dispatch.LiveWorkers(); n != 0 {
		t.Fatalf("live workers after deregister = %d, want 0 immediately", n)
	}
	st, err = client.Statz(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Work.Workers != 0 || len(st.Work.PerWorker) != 0 {
		t.Fatalf("statz after deregister = %+v, want empty fleet", st.Work)
	}
	// Deregistering again (or a never-registered name) stays a no-op.
	if err := client.DeregisterWorker(t.Context(), "w1"); err != nil {
		t.Fatalf("repeated deregister = %v, want no-op", err)
	}
}

// TestParkedClaimReturnsOnServerDrain is the HTTP layer of the
// shutdown regression: a claim parked in the server's long poll must
// come back promptly (503 + Retry-After) the moment the service starts
// draining, not sit out its full wait.
func TestParkedClaimReturnsOnServerDrain(t *testing.T) {
	svc, _, client := newChaosService(t, Config{Jobs: 1, DefaultScale: "tiny"},
		dlsim.WithClientRetry(dlsim.RetryPolicy{MaxAttempts: 1}))

	type outcome struct {
		order *dlsim.WorkOrder
		err   error
	}
	parked := make(chan outcome, 1)
	go func() {
		order, err := client.ClaimWork(context.Background(), "w1", 25*time.Second)
		parked <- outcome{order, err}
	}()
	waitLive(t, svc, 1)

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		t.Fatalf("Drain = %v", err)
	}
	select {
	case r := <-parked:
		var ae *dlsim.APIError
		if !errors.As(r.err, &ae) || ae.Status != http.StatusServiceUnavailable || ae.RetryAfter <= 0 {
			t.Fatalf("parked claim after drain = (%v, %v), want 503 + Retry-After", r.order, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked claim still pending 5s after the drain began")
	}
}

// TestParkedClaimReturnsOnServerClose: same regression against a hard
// Close — the parked long poll must not outlive the dispatcher.
func TestParkedClaimReturnsOnServerClose(t *testing.T) {
	svc, _, client := newChaosService(t, Config{Jobs: 1, DefaultScale: "tiny"},
		dlsim.WithClientRetry(dlsim.RetryPolicy{MaxAttempts: 1}))

	parked := make(chan error, 1)
	go func() {
		_, err := client.ClaimWork(context.Background(), "w1", 25*time.Second)
		parked <- err
	}()
	waitLive(t, svc, 1)

	svc.Close()
	select {
	case err := <-parked:
		var ae *dlsim.APIError
		if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
			t.Fatalf("parked claim after close = %v, want 503", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked claim still pending 5s after Close")
	}
}
