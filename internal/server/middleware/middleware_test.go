package middleware

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// discard is a quiet structured logger for the chain under test.
var discard = slog.New(slog.NewTextHandler(io.Discard, nil))

// TestChainOrder: Chain(a, b) runs a outermost.
func TestChainOrder(t *testing.T) {
	var trace []string
	mark := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				trace = append(trace, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(mark("outer"), mark("inner"))(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace = append(trace, "handler")
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if got := strings.Join(trace, ","); got != "outer,inner,handler" {
		t.Fatalf("traversal = %s", got)
	}
}

// TestRecoverContainsPanic: a panicking handler produces a 500 error
// envelope and the process survives.
func TestRecoverContainsPanic(t *testing.T) {
	h := Chain(Recover(discard), RequestID())(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	var env map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil || env["error"] == "" {
		t.Fatalf("body = %q, want error envelope", rr.Body.String())
	}
}

// TestRecoverAfterFirstByte: once the response started, Recover must
// not write a second status line.
func TestRecoverAfterFirstByte(t *testing.T) {
	h := Recover(discard)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("partial"))
		panic("mid-stream")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if rr.Code != http.StatusOK || rr.Body.String() != "partial" {
		t.Fatalf("post-panic response mutated: %d %q", rr.Code, rr.Body.String())
	}
}

// TestRequestID: the ID lands on the header and in the context.
func TestRequestID(t *testing.T) {
	var seen string
	h := RequestID()(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
	if seen == "" || rr.Header().Get("X-Request-Id") != seen {
		t.Fatalf("context ID %q, header %q", seen, rr.Header().Get("X-Request-Id"))
	}
}

// TestAuth covers the three auth outcomes: open service, valid token,
// rejected token.
func TestAuth(t *testing.T) {
	var tenant string
	record := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant = TenantFrom(r.Context())
	})

	open := Auth(nil)(record)
	open.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if tenant != AnonymousTenant {
		t.Fatalf("open-service tenant = %q", tenant)
	}

	locked := Auth(map[string]string{"sekrit": "alice"})(record)
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Authorization", "Bearer sekrit")
	locked.ServeHTTP(httptest.NewRecorder(), req)
	if tenant != "alice" {
		t.Fatalf("authenticated tenant = %q", tenant)
	}

	for _, header := range []string{"", "Bearer wrong", "Basic sekrit"} {
		tenant = "untouched"
		req := httptest.NewRequest("GET", "/", nil)
		if header != "" {
			req.Header.Set("Authorization", header)
		}
		rr := httptest.NewRecorder()
		locked.ServeHTTP(rr, req)
		if rr.Code != http.StatusUnauthorized || tenant != "untouched" {
			t.Fatalf("header %q: status %d, tenant %q; want 401, handler unreached", header, rr.Code, tenant)
		}
		if rr.Header().Get("WWW-Authenticate") == "" {
			t.Fatalf("header %q: 401 without WWW-Authenticate", header)
		}
	}
}

// TestParseTokens decodes the CLI token table grammar.
func TestParseTokens(t *testing.T) {
	got := ParseTokens("tok-alice:alice, tok-bob-long-token ,")
	want := map[string]string{"tok-alice": "alice", "tok-bob-long-token": "tok-bob-"}
	if len(got) != len(want) {
		t.Fatalf("ParseTokens = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ParseTokens[%q] = %q, want %q", k, got[k], v)
		}
	}
}

// TestRateLimit: the burst admits, the empty bucket rejects with 429 +
// Retry-After, and tenants do not share buckets.
func TestRateLimit(t *testing.T) {
	lim := NewLimiter(1, 2)
	now := time.Now()
	lim.now = func() time.Time { return now } // frozen: no refill mid-test
	h := Chain(Auth(map[string]string{"ta": "a", "tb": "b"}), RateLimit(lim))(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	get := func(token string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}
	for i := 0; i < 2; i++ {
		if rr := get("ta"); rr.Code != http.StatusOK {
			t.Fatalf("burst request %d = %d", i, rr.Code)
		}
	}
	rr := get("ta")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst = %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Tenant b's bucket is untouched by a's exhaustion.
	if rr := get("tb"); rr.Code != http.StatusOK {
		t.Fatalf("tenant isolation broken: %d", rr.Code)
	}
	// Refill: one second at 1 req/s buys one token back.
	now = now.Add(time.Second)
	if rr := get("ta"); rr.Code != http.StatusOK {
		t.Fatalf("post-refill = %d", rr.Code)
	}
}

// TestNilLimiter: rate <= 0 disables the middleware entirely.
func TestNilLimiter(t *testing.T) {
	if NewLimiter(0, 5) != nil {
		t.Fatal("zero rate built a limiter")
	}
	h := RateLimit(nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for i := 0; i < 100; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/", nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("request %d through nil limiter = %d", i, rr.Code)
		}
	}
}

// TestBodyLimit: a body beyond the bound surfaces http.MaxBytesError
// to the reading handler.
func TestBodyLimit(t *testing.T) {
	var readErr error
	h := BodyLimit(8)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, readErr = io.ReadAll(r.Body)
	}))
	req := httptest.NewRequest("POST", "/", strings.NewReader(strings.Repeat("x", 64)))
	h.ServeHTTP(httptest.NewRecorder(), req)
	var tooBig *http.MaxBytesError
	if !errors.As(readErr, &tooBig) {
		t.Fatalf("read error = %v, want MaxBytesError", readErr)
	}
}

// TestTimeout: the handler's context carries the deadline; zero
// disables.
func TestTimeout(t *testing.T) {
	var hasDeadline bool
	probe := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, hasDeadline = r.Context().Deadline()
	})
	Timeout(time.Minute)(probe).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !hasDeadline {
		t.Fatal("Timeout(1m) set no deadline")
	}
	Timeout(0)(probe).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if hasDeadline {
		t.Fatal("Timeout(0) set a deadline")
	}
}
