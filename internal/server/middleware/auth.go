package middleware

import (
	"context"
	"crypto/subtle"
	"net/http"
	"strings"
)

// AnonymousTenant identifies requests on a service running with auth
// disabled (no tokens configured): everyone shares one tenant, so rate
// limits and quotas still apply globally.
const AnonymousTenant = "anonymous"

// tenantKey keys the authenticated tenant on the context.
type tenantKey struct{}

// TenantFrom returns the authenticated tenant of the request, or "".
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// Auth validates the Authorization bearer token against the configured
// token→tenant table and stores the resolved tenant identity in the
// request context for the quota and rate-limit layers. An empty table
// disables authentication: every request proceeds as AnonymousTenant.
// Missing or unknown tokens are rejected with 401; comparison is
// constant-time per candidate so token values do not leak through
// timing.
func Auth(tokens map[string]string) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tenant := AnonymousTenant
			if len(tokens) > 0 {
				header := r.Header.Get("Authorization")
				bearer, ok := strings.CutPrefix(header, "Bearer ")
				if !ok || bearer == "" {
					w.Header().Set("WWW-Authenticate", `Bearer realm="dlsim"`)
					writeError(w, http.StatusUnauthorized, "missing bearer token")
					return
				}
				tenant = ""
				for tok, name := range tokens {
					if subtle.ConstantTimeCompare([]byte(tok), []byte(bearer)) == 1 {
						tenant = name
					}
				}
				if tenant == "" {
					w.Header().Set("WWW-Authenticate", `Bearer realm="dlsim"`)
					writeError(w, http.StatusUnauthorized, "unknown token")
					return
				}
			}
			if sw, ok := w.(*statusWriter); ok {
				sw.tenant = tenant
			}
			ctx := context.WithValue(r.Context(), tenantKey{}, tenant)
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// ParseTokens decodes the CLI's token table: comma-separated
// token[:tenant] entries. A bare token's tenant defaults to the token's
// first 8 characters, enough to tell tenants apart in logs without
// echoing whole credentials.
func ParseTokens(s string) map[string]string {
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		tok, tenant, ok := strings.Cut(part, ":")
		if !ok || tenant == "" {
			tenant = tok
			if len(tenant) > 8 {
				tenant = tenant[:8]
			}
		}
		out[tok] = tenant
	}
	return out
}
