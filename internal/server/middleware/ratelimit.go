package middleware

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// bucket is one tenant's token bucket. Tokens refill continuously at
// rate/sec up to burst; a request spends one token or is rejected.
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter is a per-tenant token-bucket rate limiter. The zero rate
// disables it. Limiter is safe for concurrent use.
type Limiter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// NewLimiter builds a limiter granting rate requests/second with the
// given burst per tenant. rate <= 0 returns a nil limiter, which allows
// everything.
func NewLimiter(rate float64, burst int) *Limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: float64(burst), now: time.Now, buckets: map[string]*bucket{}}
}

// Allow spends one token from tenant's bucket. When the bucket is
// empty it returns false and the wait until the next token accrues.
func (l *Limiter) Allow(tenant string) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// RateLimit rejects requests beyond a tenant's token-bucket budget with
// 429 and a Retry-After header telling the client when the next token
// accrues. It must sit inside Auth: the tenant identity is the bucket
// key, so an unauthenticated caller cannot drain another tenant's
// budget. A nil limiter disables the middleware.
func RateLimit(l *Limiter) Middleware {
	return func(next http.Handler) http.Handler {
		if l == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tenant := TenantFrom(r.Context())
			ok, wait := l.Allow(tenant)
			if !ok {
				w.Header().Set("Retry-After", retryAfterSeconds(wait))
				writeError(w, http.StatusTooManyRequests,
					"rate limit exceeded for tenant %q: retry in %s", tenant, wait.Round(time.Millisecond))
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// retryAfterSeconds renders a wait as the integral seconds value the
// Retry-After header requires, rounding up so "retry after 0s" never
// invites an immediate re-spin. Shared by every 429/503 writer.
func retryAfterSeconds(wait time.Duration) string {
	secs := int64(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// RetryAfter formats wait for a Retry-After header and sets it on h.
func RetryAfter(h http.Header, wait time.Duration) {
	h.Set("Retry-After", retryAfterSeconds(wait))
}

// String renders the limiter configuration for startup logs.
func (l *Limiter) String() string {
	if l == nil {
		return "off"
	}
	return fmt.Sprintf("%g req/s burst %g", l.rate, l.burst)
}
