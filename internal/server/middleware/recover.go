package middleware

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Recover is the outermost middleware: a panic anywhere below it —
// handler, sibling middleware, logger — is caught, logged with its
// stack, and answered with a 500 error envelope instead of tearing down
// the connection (Go's default re-panic) or worse. If the response has
// already started streaming, nothing more can be sent; the connection
// is simply closed and the panic stays contained to the request
// goroutine.
func Recover(log *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			defer func() {
				if rec := recover(); rec != nil {
					log.Error("panic in request handler",
						"requestID", RequestIDFrom(r.Context()),
						"method", r.Method, "path", r.URL.Path,
						"panic", rec, "stack", string(debug.Stack()))
					if !sw.wrote {
						writeError(sw, http.StatusInternalServerError,
							"internal error (request %s)", RequestIDFrom(r.Context()))
					}
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// requestIDKey keys the request ID on the context.
type requestIDKey struct{}

// reqSeq numbers requests process-wide; monotonic and deterministic, so
// logs and error envelopes correlate without a randomness source.
var reqSeq atomic.Int64

// RequestID assigns every request a sequential ID, exposes it to
// handlers via the context and to clients via the X-Request-Id header.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := fmt.Sprintf("req-%08d", reqSeq.Add(1))
			w.Header().Set("X-Request-Id", id)
			ctx := context.WithValue(r.Context(), requestIDKey{}, id)
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// RequestIDFrom returns the request's assigned ID, or "" outside the
// chain.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// Log emits one structured line per request: method, path, status,
// duration, tenant (once authenticated), and request ID. It sits inside
// RequestID and outside Auth, so unauthenticated rejections are logged
// too (with an empty tenant).
func Log(log *slog.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw, ok := w.(*statusWriter)
			if !ok {
				sw = &statusWriter{ResponseWriter: w}
			}
			start := time.Now()
			next.ServeHTTP(sw, r)
			// The tenant is resolved by Auth, deeper in the chain; it
			// reaches the log line through the shared response writer
			// because context values never flow back up the stack.
			log.Info("request",
				"requestID", RequestIDFrom(r.Context()),
				"method", r.Method, "path", r.URL.Path,
				"status", sw.status, "durationMS", time.Since(start).Milliseconds(),
				"tenant", sw.tenant)
		})
	}
}
