// Package middleware is the request-hardening layer of the dlsim job
// service: small, composable http.Handler interceptors assembled into
// one chain wrapped around every /v1 endpoint. The canonical order is
//
//	Recover → RequestID → Log → BodyLimit → Auth → RateLimit → Timeout
//
// outermost first: panic recovery must observe everything (including a
// panicking logger), identity must exist before logging, the request
// must be authenticated before it can consume a tenant's rate budget,
// and the timeout binds only the work the request was admitted to do.
// Each middleware is independent and testable on its own; the service
// composes them with Chain.
package middleware

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Middleware wraps an http.Handler with one concern.
type Middleware func(http.Handler) http.Handler

// Chain composes middlewares into one. Chain(a, b, c) applies a
// outermost: the request traverses a, then b, then c, then the handler.
func Chain(mws ...Middleware) Middleware {
	return func(next http.Handler) http.Handler {
		for i := len(mws) - 1; i >= 0; i-- {
			next = mws[i](next)
		}
		return next
	}
}

// writeError emits the service's JSON error envelope. It is shared by
// every middleware so interceptor rejections are indistinguishable in
// shape from handler rejections.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// statusWriter records the status code and first-byte fact of a
// response while passing Flush through — event streams must keep
// flushing NDJSON lines through the wrapped writer.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
	// tenant is filled in by Auth for the access log: context values
	// set deeper in the chain are invisible to outer middlewares, so
	// the shared writer doubles as request-scoped scratch space.
	tenant string
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.status = http.StatusOK
		sw.wrote = true
	}
	return sw.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// BodyLimit bounds every request body to n bytes using the standard
// MaxBytesReader, so an oversized submission fails with a decode error
// the handler maps to 413 instead of buffering without limit.
func BodyLimit(n int64) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Body != nil && n > 0 {
				r.Body = http.MaxBytesReader(w, r.Body, n)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// Timeout bounds a request's handling time by deriving a deadline
// context. It must not wrap streaming endpoints (event follows are
// long-lived by design); the service applies it to the non-streaming
// routes only. d <= 0 disables the middleware.
func Timeout(d time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if d <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}
