package server

// Chaos suite: every injected failure — transient errors, arm panics,
// drain deadlines, dropped streams — must converge to a terminal job
// state, and wherever a result is produced it must be byte-identical
// to the fault-free run. Fault schedules are deterministic counters
// (internal/faultinject) and arms run sequentially (Workers: 1), so
// each test's injection timeline is exact, not probabilistic.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"gossipmia/internal/faultinject"
	"gossipmia/pkg/dlsim"
)

// newChaosService starts a service and returns the server, its
// listener, and a client — the raw listener is for tests that need
// URL-level access (offset queries, stream disconnects).
func newChaosService(t *testing.T, cfg Config, opts ...dlsim.ClientOption) (*Server, *httptest.Server, *dlsim.Client) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		svc.Close()
		ts.Close()
	})
	return svc, ts, dlsim.NewClient(ts.URL, opts...)
}

// resultJSON canonicalizes a result for byte-identity comparison.
func resultJSON(t *testing.T, r *dlsim.Result) string {
	t.Helper()
	if r == nil {
		t.Fatal("nil result")
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// referenceRun executes smallSpec fault-free and returns its result
// and event count — the parity baseline of the chaos tests.
func referenceRun(t *testing.T) (*dlsim.JobStatus, string) {
	t.Helper()
	client := newTestService(t, Config{Jobs: 1, DefaultScale: "tiny"})
	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("reference run = %q (%s)", final.Status, final.Error)
	}
	return final, resultJSON(t, final.Result)
}

// TestRetryConvergesToParity: an injected transient failure mid-spec
// is retried under the backoff policy and the retried job's result is
// byte-identical to the fault-free run. The first attempt completes
// arm "a" before arm "b" fails, so the retry re-streams arm "a" —
// proving the client-side round-order dedup delivers each record
// exactly once even though the raw log has duplicates.
func TestRetryConvergesToParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ref, refJSON := referenceRun(t)

	// Start #1 (arm a) passes, start #2 (arm b) fails, budget spent;
	// attempt 2 (starts #3, #4) runs clean.
	_, _, client := newChaosService(t, Config{
		Jobs:         1,
		DefaultScale: "tiny",
		Fault:        faultinject.New(faultinject.Config{ArmErrorEvery: 2, ArmErrorBudget: 1}),
		Retry:        RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	perArm := map[string]int{}
	if err := client.Events(t.Context(), job.ID, func(ev dlsim.Event) error {
		perArm[ev.Arm]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("chaos run = %q (%s), want done", final.Status, final.Error)
	}
	if final.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one transient failure, one clean run)", final.Attempts)
	}
	if got := resultJSON(t, final.Result); got != refJSON {
		t.Fatalf("retried result diverged from fault-free run:\n got %s\nwant %s", got, refJSON)
	}
	// The raw log holds arm a twice (first attempt + retry); the client
	// must deliver each arm's record once.
	if final.Events <= ref.Events {
		t.Fatalf("raw event log = %d lines, want > %d (retry re-streams)", final.Events, ref.Events)
	}
	for arm, n := range perArm {
		if n != 1 {
			t.Fatalf("client delivered arm %q %d times, want 1 (dedup)", arm, n)
		}
	}
}

// TestArmPanicBecomesFailedJob: an injected panic inside an arm is
// recovered into a failed job carrying the stack — it is fatal (no
// retry burn-down) and the server keeps serving.
func TestArmPanicBecomesFailedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, _, client := newChaosService(t, Config{
		Jobs:         1,
		DefaultScale: "tiny",
		Fault:        faultinject.New(faultinject.Config{ArmPanicEvery: 1, ArmPanicBudget: 1}),
		Retry:        RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
	})
	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusFailed {
		t.Fatalf("panicked job = %q, want failed", final.Status)
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (a panic is fatal, not transient)", final.Attempts)
	}
	if final.Error == "" || !strings.Contains(final.Error, "panicked") || !strings.Contains(final.Error, "faultinject") {
		t.Fatalf("failed job error lacks panic context: %q", final.Error)
	}

	// The process survived; the budget is spent, so a fresh spec runs
	// clean on the same server.
	second := smallSpec()
	second.Arms = second.Arms[:1]
	second.Arms[0].SeedOffset = 7
	job2, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: second, Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if final2, err := client.Await(t.Context(), job2.ID, 10*time.Millisecond); err != nil || final2.Status != dlsim.StatusDone {
		t.Fatalf("post-panic job = %v, %v; the server must keep serving", final2, err)
	}
}

// TestDrainFinishesRunningJobs: Drain refuses new submissions at once,
// lets the running job finish, and returns nil inside the window.
func TestDrainFinishesRunningJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	svc, _, client := newChaosService(t, Config{
		Jobs:         1,
		DefaultScale: "tiny",
		// Slow each streamed record so the job is reliably mid-flight
		// when the drain starts; latency injection never alters results.
		Fault: faultinject.New(faultinject.Config{EventDelay: 100 * time.Millisecond}),
	})
	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, client, job.ID, dlsim.StatusRunning)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- svc.Drain(ctx)
	}()
	for deadline := time.Now().Add(5 * time.Second); !svc.Draining(); {
		if time.Now().After(deadline) {
			t.Fatal("Drain never set the draining flag")
		}
		time.Sleep(time.Millisecond)
	}

	// Submissions during the drain are refused with the queue-full
	// shape: 503 plus a Retry-After hint.
	other := smallSpec()
	other.Arms = other.Arms[:1]
	other.Arms[0].SeedOffset = 9
	_, err = client.Submit(t.Context(), dlsim.JobRequest{Spec: other, Scale: "tiny"})
	var ae *dlsim.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable || ae.RetryAfter <= 0 {
		t.Fatalf("submit during drain = %v, want 503 with Retry-After", err)
	}
	if !errors.Is(err, dlsim.ErrJobQueueFull) {
		t.Fatalf("drain rejection does not map to ErrJobQueueFull: %v", err)
	}

	if err := <-drained; err != nil {
		t.Fatalf("Drain = %v, want nil (job finishes inside the window)", err)
	}
	final, err := client.Job(t.Context(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("drained job = %q, want done", final.Status)
	}
}

// TestDrainDeadlineCheckpointRestartResume: when the drain window
// expires the running job is aborted at an arm boundary, its completed
// arms stay checkpointed, and a resubmission on a restarted service
// resumes from the caches — producing a byte-identical result while
// re-executing only the interrupted arm.
func TestDrainDeadlineCheckpointRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ref, refJSON := referenceRun(t)
	dir := t.TempDir()

	svc, _, client := newChaosService(t, Config{
		Jobs:          1,
		DefaultScale:  "tiny",
		CheckpointDir: dir,
		Fault:         faultinject.New(faultinject.Config{EventDelay: 250 * time.Millisecond}),
	})
	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first arm's cache file: from here the second arm is
	// mid-flight for ~250ms — the window the drain deadline lands in.
	var caches []string
	for deadline := time.Now().Add(20 * time.Second); ; {
		caches, _ = filepath.Glob(filepath.Join(dir, "*", "arms", "*.json"))
		if len(caches) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no arm cache file appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := svc.Drain(expired); err == nil {
		t.Fatal("Drain with expired window = nil, want context error")
	}
	final, err := client.Job(t.Context(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !dlsim.TerminalStatus(final.Status) || final.Status == dlsim.StatusDone {
		t.Fatalf("deadline-drained job = %q, want aborted terminal state", final.Status)
	}

	// "Restart": a fresh service over the same checkpoint directory.
	// The same submission resumes — cached arms are not re-executed and
	// do not re-stream.
	_, _, client2 := newChaosService(t, Config{Jobs: 1, DefaultScale: "tiny", CheckpointDir: dir})
	job2, err := client2.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	final2, err := client2.Await(t.Context(), job2.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final2.Status != dlsim.StatusDone {
		t.Fatalf("resumed job = %q (%s), want done", final2.Status, final2.Error)
	}
	if got := resultJSON(t, final2.Result); got != refJSON {
		t.Fatalf("resumed result diverged from fault-free run:\n got %s\nwant %s", got, refJSON)
	}
	if final2.Events >= ref.Events {
		t.Fatalf("resumed job streamed %d events, want < %d (cached arms must not re-stream)", final2.Events, ref.Events)
	}
}

// TestAuthAndQuota: a locked service rejects tokenless calls with a
// typed 401, admits the configured token, and caps a tenant's active
// jobs with a retryable 429.
func TestAuthAndQuota(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts, anon := newChaosService(t, Config{
		Jobs:                   1,
		DefaultScale:           "tiny",
		AuthTokens:             map[string]string{"tok-alice": "alice"},
		MaxActiveJobsPerTenant: 1,
		Fault:                  faultinject.New(faultinject.Config{EventDelay: 100 * time.Millisecond}),
	})
	err := anon.Health(t.Context())
	var ae *dlsim.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusUnauthorized || ae.Retryable() {
		t.Fatalf("tokenless call = %v, want non-retryable 401", err)
	}

	alice := dlsim.NewClient(ts.URL, dlsim.WithToken("tok-alice"))
	if err := alice.Health(t.Context()); err != nil {
		t.Fatalf("authenticated health = %v", err)
	}
	job, err := alice.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "alice" {
		t.Fatalf("job tenant = %q, want alice", job.Tenant)
	}
	awaitStatus(t, alice, job.ID, dlsim.StatusRunning)

	// A second distinct spec exceeds the active-job quota: 429, typed,
	// retryable, with a Retry-After hint.
	other := smallSpec()
	other.Arms = other.Arms[:1]
	other.Arms[0].SeedOffset = 11
	_, err = alice.Submit(t.Context(), dlsim.JobRequest{Spec: other, Scale: "tiny"})
	if !errors.As(err, &ae) || ae.Status != http.StatusTooManyRequests || !ae.Retryable() || ae.RetryAfter <= 0 {
		t.Fatalf("over-quota submit = %v, want retryable 429 with Retry-After", err)
	}
	// Dedup-attaching to the existing job costs nothing even at quota.
	again, err := alice.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil || !again.Deduped {
		t.Fatalf("dedup at quota = %v, %v; want existing job", again, err)
	}
	if _, err := alice.Cancel(t.Context(), job.ID); err != nil {
		t.Fatal(err)
	}
}

// TestEventsOffset: the ?offset query resumes the replay mid-log, the
// end of the log yields an immediately-complete stream, and a bad
// offset is rejected.
func TestEventsOffset(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts, client := newChaosService(t, Config{Jobs: 1, DefaultScale: "tiny"})
	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone || final.Events < 2 {
		t.Fatalf("fixture job = %q with %d events", final.Status, final.Events)
	}
	lines := func(offset string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events?offset=" + offset)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("offset %q: status %d", offset, resp.StatusCode)
		}
		n := 0
		for sc := bufio.NewScanner(resp.Body); sc.Scan(); {
			n++
		}
		return n
	}
	if got := lines("1"); got != final.Events-1 {
		t.Fatalf("offset 1 replayed %d lines, want %d", got, final.Events-1)
	}
	if got := lines("1000"); got != 0 {
		t.Fatalf("past-the-end offset replayed %d lines, want 0", got)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events?offset=-3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative offset = %d, want 400", resp.StatusCode)
	}
}

// TestEventsDisconnectNoLeak: a client that walks away mid-stream must
// not strand the follower goroutine — it exits as soon as the request
// context does, and the goroutine count returns to its baseline.
func TestEventsDisconnectNoLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, ts, client := newChaosService(t, Config{
		Jobs:         1,
		DefaultScale: "tiny",
		Fault:        faultinject.New(faultinject.Config{EventDelay: 150 * time.Millisecond}),
	})
	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, client, job.ID, dlsim.StatusRunning)

	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		// Abandon the stream mid-follow: the job is still running, so
		// the server side is parked waiting for the next record.
		resp.Body.Close()
	}
	for deadline := time.Now().Add(10 * time.Second); ; {
		if runtime.NumGoroutine() <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline %d: follower leak", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := client.Cancel(t.Context(), job.ID); err != nil {
		t.Fatal(err)
	}
}
