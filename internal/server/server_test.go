package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gossipmia/internal/experiment"
	"gossipmia/internal/spec"
	"gossipmia/pkg/dlsim"
)

// newTestService starts a Server behind an httptest listener and
// returns a client for it. Both are torn down with the test.
func newTestService(t *testing.T, cfg Config) *dlsim.Client {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		svc.Close()
		ts.Close()
	})
	return dlsim.NewClient(ts.URL)
}

// smallSpec is the two-arm scenario of the byte-identical acceptance
// test.
func smallSpec() *dlsim.Spec {
	return &dlsim.Spec{
		Name: "service e2e",
		Arms: []dlsim.Arm{
			{Label: "a", Corpus: "cifar10", Protocol: "samo", ViewSize: 2, SeedOffset: 1},
			{Label: "b", Corpus: "cifar10", Protocol: "base", ViewSize: 2, SeedOffset: 2},
		},
	}
}

// longSpec expands to twenty arms; submitted at quick scale with one
// worker it runs for seconds — a wide, deterministic window for a
// cancellation to land while the job is running.
func longSpec() *dlsim.Spec {
	return &dlsim.Spec{
		Name: "long sweep",
		Sweep: &dlsim.Sweep{
			Base: dlsim.Arm{Label: "base", Corpus: "cifar10", Protocol: "samo", ViewSize: 2, SeedOffset: 10},
			Axes: []dlsim.Axis{
				{Field: "protocol", Values: []any{"samo", "base"}},
				{Field: "latency", Values: []any{0.0, 5.0, 10.0, 15.0, 20.0}},
				{Field: "localEpochs", Values: []any{2.0, 4.0}},
			},
		},
	}
}

// awaitStatus polls until the job reaches status (or any terminal
// state when the wanted one was skipped).
func awaitStatus(t *testing.T, c *dlsim.Client, id, status string) *dlsim.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, err := c.Job(t.Context(), id)
		if err != nil {
			t.Fatal(err)
		}
		if job.Status == status || dlsim.TerminalStatus(job.Status) {
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, status)
	return nil
}

// TestSubmitStreamByteIdentical is the end-to-end acceptance test: a
// spec submitted via POST /v1/jobs and streamed over /events yields
// byte-identical arm results to calling experiment.RunSpec directly
// with the same seed and workers.
func TestSubmitStreamByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	client := newTestService(t, Config{DefaultScale: "tiny"})

	job, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != dlsim.StatusQueued && job.Status != dlsim.StatusRunning {
		t.Fatalf("fresh job status = %q", job.Status)
	}

	// Subscribe immediately — the stream replays what already happened
	// and follows the job live until it is terminal.
	perArm := map[string][]dlsim.RoundRecord{}
	if err := client.Events(t.Context(), job.ID, func(ev dlsim.Event) error {
		perArm[ev.Arm] = append(perArm[ev.Arm], ev.RoundRecord)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	final, err := client.Await(t.Context(), job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != dlsim.StatusDone {
		t.Fatalf("job finished %q: %s", final.Status, final.Error)
	}
	if final.Result == nil || len(final.Result.Arms) != 2 {
		t.Fatalf("job result = %+v", final.Result)
	}

	// The reference: the engine run directly, same seed and workers.
	raw, err := json.Marshal(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := spec.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	sc := experiment.TinyScale()
	sc.Workers = 2
	fig, err := experiment.RunSpec(t.Context(), sp, sc)
	if err != nil {
		t.Fatal(err)
	}

	for i, want := range fig.Arms {
		got := final.Result.Arms[i]
		if got.Label != want.Label || got.MessagesSent != want.MessagesSent || got.BytesSent != want.BytesSent {
			t.Fatalf("arm %d aggregates diverge: %+v vs %+v", i, got, want)
		}
		if len(got.Records) != len(want.Series.Records) {
			t.Fatalf("arm %q: %d records, want %d", got.Label, len(got.Records), len(want.Series.Records))
		}
		streamed := perArm[want.Label]
		if len(streamed) != len(want.Series.Records) {
			t.Fatalf("arm %q: streamed %d events, want %d", want.Label, len(streamed), len(want.Series.Records))
		}
		for j, w := range want.Series.Records {
			pub := dlsim.RoundRecord{Round: w.Round, TestAcc: w.TestAcc, MIAAcc: w.MIAAcc, TPRAt1FPR: w.TPRAt1FPR, GenError: w.GenError}
			if got.Records[j] != pub {
				t.Fatalf("arm %q result record %d diverges: %+v vs %+v", got.Label, j, got.Records[j], pub)
			}
			if streamed[j] != pub {
				t.Fatalf("arm %q streamed record %d diverges: %+v vs %+v", got.Label, j, streamed[j], pub)
			}
		}
	}

	// Dedup: an identical submission is answered by the same job.
	again, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Deduped || again.ID != job.ID || again.Status != dlsim.StatusDone {
		t.Fatalf("dedup = %+v", again)
	}
	// A different worker count still dedups (workers never affect
	// results); a different seed does not.
	workers1, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !workers1.Deduped || workers1.ID != job.ID {
		t.Fatalf("worker count broke dedup: %+v", workers1)
	}
	reseeded, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny", Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if reseeded.Deduped || reseeded.ID == job.ID {
		t.Fatalf("seed change deduped: %+v", reseeded)
	}
	if _, err := client.Cancel(t.Context(), reseeded.ID); err != nil {
		t.Fatal(err)
	}
}

// TestCancelRunningJobFreesSlot is the cancellation acceptance test:
// DELETE stops a running job and its slot immediately serves the next
// queued submission.
func TestCancelRunningJobFreesSlot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	client := newTestService(t, Config{Jobs: 1, QueueDepth: 4, DefaultScale: "tiny"})

	long, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: longSpec(), Scale: "quick", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, client, long.ID, dlsim.StatusRunning)

	quick, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if quick.Status != dlsim.StatusQueued {
		t.Fatalf("second job on a 1-slot server is %q, want queued", quick.Status)
	}

	if _, err := client.Cancel(t.Context(), long.ID); err != nil {
		t.Fatal(err)
	}
	cancelled, err := client.Await(t.Context(), long.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled.Status != dlsim.StatusCancelled {
		t.Fatalf("cancelled job finished %q", cancelled.Status)
	}
	// The cancelled job's event stream terminates rather than hanging.
	if err := client.Events(t.Context(), long.ID, func(dlsim.Event) error { return nil }); err != nil {
		t.Fatal(err)
	}

	// The freed slot runs the queued job to completion.
	done, err := client.Await(t.Context(), quick.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != dlsim.StatusDone {
		t.Fatalf("queued job finished %q: %s", done.Status, done.Error)
	}

	// Cancelling a terminal job is a no-op that reports the final state.
	again, err := client.Cancel(t.Context(), long.ID)
	if err != nil || again.Status != dlsim.StatusCancelled {
		t.Fatalf("re-cancel = %+v, %v", again, err)
	}
}

// TestQueueBoundAndQueuedCancel: the queue is bounded (503 beyond the
// depth) and cancelling a queued job frees its slot without waiting
// for a worker.
func TestQueueBoundAndQueuedCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	client := newTestService(t, Config{Jobs: 1, QueueDepth: 1, DefaultScale: "tiny"})

	long, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: longSpec(), Scale: "quick", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, client, long.ID, dlsim.StatusRunning)

	queued, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 1 is now full; a distinct third spec is rejected.
	third := smallSpec()
	third.Arms[0].SeedOffset = 42
	third.Arms = third.Arms[:1]
	if _, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: third, Scale: "tiny"}); err == nil {
		t.Fatal("over-depth submission accepted")
	} else if !errorsIsQueueFull(err) {
		t.Fatalf("over-depth error = %v, want queue-full", err)
	}

	// Cancelling the queued job frees the slot immediately.
	st, err := client.Cancel(t.Context(), queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != dlsim.StatusCancelled {
		t.Fatalf("queued job after cancel = %q", st.Status)
	}
	if _, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: third, Scale: "tiny"}); err != nil {
		t.Fatalf("slot not freed: %v", err)
	}
	if _, err := client.Cancel(t.Context(), long.ID); err != nil {
		t.Fatal(err)
	}
}

func errorsIsQueueFull(err error) bool {
	return errors.Is(err, dlsim.ErrJobQueueFull)
}

// TestRequestValidation exercises the HTTP error surface with raw
// requests (the SDK client validates specs before posting).
func TestRequestValidation(t *testing.T) {
	svc := New(Config{DefaultScale: "tiny"})
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		svc.Close()
		ts.Close()
	})

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(`{`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated body -> %d", resp.StatusCode)
	}
	if resp := post(`{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing spec -> %d", resp.StatusCode)
	}
	if resp := post(`{"spec":{"name":"x","arms":[{"label":"a","corpus":"nope","protocol":"samo","viewSize":2}]}}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid spec -> %d", resp.StatusCode)
	}
	if resp := post(`{"spec":{"name":"x","arms":[{"label":"a","corpus":"cifar10","protocol":"samo","viewSize":2}]},"scale":"galactic"}`); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unknown scale -> %d", resp.StatusCode)
	}
	if resp := post(`{"spec":{"name":"x","arms":[{"label":"a","corpus":"cifar10","protocol":"samo","viewSize":2}]},"bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown request field -> %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job -> %d", resp.StatusCode)
	}
}

// TestMetaEndpoints covers catalog, version, healthz, and the job
// listing through the SDK client.
func TestMetaEndpoints(t *testing.T) {
	client := newTestService(t, Config{DefaultScale: "tiny"})

	entries, err := client.Catalog(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, e := range entries {
		found[e.Name] = e.Runnable
	}
	if !found["2"] || found["tables"] {
		t.Fatalf("catalog = %+v", entries)
	}

	v, err := client.Version(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if v.SpecSchemaHash != spec.SchemaHash() || v.GoVersion == "" {
		t.Fatalf("version = %+v", v)
	}

	if err := client.Health(t.Context()); err != nil {
		t.Fatal(err)
	}

	jobs, err := client.Jobs(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh service lists %d jobs", len(jobs))
	}
}

// TestListPagination: GET /v1/jobs without parameters keeps answering
// the bare newest-first array; with ?limit/?offset it answers the
// paged envelope, windows correctly, and rejects malformed values.
func TestListPagination(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	svc := New(Config{Jobs: 1, QueueDepth: 16, DefaultScale: "tiny"})
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		svc.Close()
		ts.Close()
	})
	client := dlsim.NewClient(ts.URL)

	// One long-running job occupies the single worker; four distinct
	// small submissions stack up queued behind it, giving five jobs in
	// a stable newest-first order.
	long, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: longSpec(), Scale: "quick", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, client, long.ID, dlsim.StatusRunning)
	ids := []string{long.ID}
	for i := 0; i < 4; i++ {
		sp := smallSpec()
		sp.Arms = sp.Arms[:1]
		sp.Arms[0].SeedOffset = int64(100 + i)
		j, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: sp, Scale: "tiny"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	// Legacy shape: no parameters, bare array, every job, newest first.
	jobs, err := client.Jobs(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 5 || jobs[0].ID != ids[4] || jobs[4].ID != ids[0] {
		t.Fatalf("bare list = %d jobs, first %q last %q", len(jobs), jobs[0].ID, jobs[len(jobs)-1].ID)
	}

	// A window from the middle: offset 1 skips the newest, limit 2
	// returns the next two, total still counts everything.
	page, err := client.JobsPage(t.Context(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 5 || page.Limit != 2 || page.Offset != 1 {
		t.Fatalf("page meta = %+v", page)
	}
	if len(page.Jobs) != 2 || page.Jobs[0].ID != ids[3] || page.Jobs[1].ID != ids[2] {
		t.Fatalf("page window = %+v", page.Jobs)
	}

	// limit 0 means unbounded; a past-the-end offset yields an empty
	// page with the total intact.
	if page, err = client.JobsPage(t.Context(), 0, 0); err != nil || len(page.Jobs) != 5 {
		t.Fatalf("unbounded page = %+v, %v", page, err)
	}
	if page, err = client.JobsPage(t.Context(), 3, 99); err != nil || len(page.Jobs) != 0 || page.Total != 5 {
		t.Fatalf("past-the-end page = %+v, %v", page, err)
	}

	// Malformed values are 400s, not silently defaulted.
	for _, q := range []string{"limit=-1", "offset=-1", "limit=x"} {
		resp, err := http.Get(ts.URL + "/v1/jobs?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s -> %d, want 400", q, resp.StatusCode)
		}
	}
	if _, err := client.Cancel(t.Context(), long.ID); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBackedCheckpointSurvivesRestart: with StoreDir configured,
// job checkpoints land in the shared result store (no per-arm files),
// and a service restarted over the same store serves a resubmission
// entirely from cache — zero re-streamed rounds.
func TestStoreBackedCheckpointSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cfg := Config{
		DefaultScale:  "tiny",
		CheckpointDir: filepath.Join(dir, "cp"),
		StoreDir:      filepath.Join(dir, "store"),
	}

	svc1 := New(cfg)
	ts1 := httptest.NewServer(svc1)
	c1 := dlsim.NewClient(ts1.URL)
	first, err := c1.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c1.Await(t.Context(), first.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Status != dlsim.StatusDone || fin.Events == 0 {
		t.Fatalf("first run = %+v", fin)
	}
	svc1.Close()
	ts1.Close()

	// The arms live in the store, not as per-arm files under the job's
	// checkpoint directory.
	if armDirs, _ := filepath.Glob(filepath.Join(cfg.CheckpointDir, "*", "arms")); len(armDirs) != 0 {
		t.Fatalf("store-backed job left arms directories: %v", armDirs)
	}
	if _, err := os.Stat(filepath.Join(cfg.StoreDir, "wal.log")); err != nil {
		t.Fatalf("store not populated: %v", err)
	}

	// A fresh service over the same directories: the identical spec is a
	// new job (no in-memory dedup survives the restart) but every arm is
	// served from the store, so nothing streams.
	svc2 := New(cfg)
	ts2 := httptest.NewServer(svc2)
	t.Cleanup(func() {
		svc2.Close()
		ts2.Close()
	})
	c2 := dlsim.NewClient(ts2.URL)
	second, err := c2.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := c2.Await(t.Context(), second.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin2.Status != dlsim.StatusDone {
		t.Fatalf("resumed run = %+v", fin2)
	}
	if fin2.Events != 0 {
		t.Fatalf("cached resubmission streamed %d events, want 0", fin2.Events)
	}
	got, _ := json.Marshal(fin2.Result)
	want, _ := json.Marshal(fin.Result)
	if !bytes.Equal(got, want) {
		t.Fatalf("store-resumed result differs:\n%s\nvs\n%s", got, want)
	}
}

// TestCancelThenResubmitReexecutes: cancelling a RUNNING job drops its
// dedup key immediately, so an identical resubmission re-executes
// rather than attaching to the dying job.
func TestCancelThenResubmitReexecutes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	client := newTestService(t, Config{Jobs: 1, QueueDepth: 4, DefaultScale: "tiny"})

	long, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: longSpec(), Scale: "quick", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, client, long.ID, dlsim.StatusRunning)
	if _, err := client.Cancel(t.Context(), long.ID); err != nil {
		t.Fatal(err)
	}
	// Immediately resubmit the identical spec — before the worker has
	// necessarily observed the cancellation.
	again, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: longSpec(), Scale: "quick", Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if again.Deduped || again.ID == long.ID {
		t.Fatalf("resubmission after cancel deduped onto the dying job: %+v", again)
	}
	if _, err := client.Cancel(t.Context(), again.ID); err != nil {
		t.Fatal(err)
	}
}

// TestJobRetentionPrunesOldTerminalJobs: a bounded service evicts the
// oldest terminal jobs (and their event logs) past MaxJobs; live jobs
// are never evicted.
func TestJobRetentionPrunesOldTerminalJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	client := newTestService(t, Config{Jobs: 1, MaxJobs: 1, DefaultScale: "tiny"})

	first, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Await(t.Context(), first.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	second := smallSpec()
	second.Arms = second.Arms[:1]
	sj, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: second, Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Await(t.Context(), sj.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// The first (older terminal) job has been evicted.
	if _, err := client.Job(t.Context(), first.ID); !errors.Is(err, dlsim.ErrNotFound) {
		t.Fatalf("evicted job lookup = %v, want ErrNotFound", err)
	}
	jobs, err := client.Jobs(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != sj.ID {
		t.Fatalf("retained jobs = %+v", jobs)
	}
	// An evicted key re-executes rather than resurrecting the pruned job.
	re, err := client.Submit(t.Context(), dlsim.JobRequest{Spec: smallSpec(), Scale: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	if re.Deduped {
		t.Fatalf("submission deduped onto an evicted job: %+v", re)
	}
}
