// Package server implements the dlsim scenario service: an HTTP/JSON
// job API over the declarative experiment engine. Scenario specs are
// submitted as jobs onto a bounded queue, executed by a fixed pool of
// workers through the generic spec executor, streamed round-by-round
// as NDJSON, and cancellable at any time. Identical submissions (same
// spec content hash, scale, and seed) dedup onto one execution.
//
// Every /v1 endpoint sits behind the hardening chain of
// internal/server/middleware (panic recovery → request ID → structured
// logging → body-size limit → token auth → per-tenant rate limit →
// request timeout), and job execution is resilient by construction:
// transient failures retry with exponential backoff and deterministic
// jitter, arm panics become failed jobs instead of a dead process, and
// Drain stops intake and finishes — or, with a checkpoint directory,
// checkpoints — the work in flight before shutting down.
//
// v1 endpoints:
//
//	POST   /v1/jobs             submit {spec, scale, seed, workers}
//	GET    /v1/jobs             list jobs, newest first; ?limit=N and
//	                            ?offset=N page and switch the response
//	                            to the {jobs, total, offset, limit}
//	                            envelope
//	GET    /v1/jobs/{id}        job status (result embedded once done)
//	DELETE /v1/jobs/{id}        cancel (frees the queue slot)
//	GET    /v1/jobs/{id}/events NDJSON round records: replay + follow
//	                            (?offset=N resumes after N lines)
//	GET    /v1/catalog          scenario catalog and scales
//	GET    /v1/version          build identity + spec-schema hash
//	GET    /v1/healthz          liveness + queue stats
//	GET    /v1/statz            dispatch + cache counters snapshot
//	POST   /v1/work/claim       worker fleet: long-poll one arm lease
//	POST   /v1/work/register    announce a worker before its first claim
//	POST   /v1/work/deregister  remove a worker from the live set now
//	POST   /v1/work/{lease}/heartbeat  renew a lease
//	POST   /v1/work/{lease}/result     upload an arm outcome
//
// The work endpoints implement distributed sweep execution: `dlsim
// worker` processes claim per-arm work units under deadline-bearing
// leases, execute them with the same engine, and upload results keyed
// by the arm's content hash — byte-identical to in-process execution,
// cached cluster-wide through the shared result store. See
// internal/distrib for the lease state machine. The fleet is not
// trusted: every upload's checksum is re-verified before ingestion,
// per-worker health scores quarantine misbehaving workers (claims get
// 403 + Retry-After), arms that keep failing across workers are
// contained to local execution, and an opt-in audit mode re-executes
// a sample of worker-completed arms to cross-check byte-identity.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gossipmia/internal/distrib"
	"gossipmia/internal/experiment"
	"gossipmia/internal/faultinject"
	"gossipmia/internal/server/middleware"
	"gossipmia/internal/store"
	"gossipmia/pkg/dlsim"
)

// ErrQueueFull is returned when the bounded job queue cannot accept a
// submission; it maps to HTTP 503 with a Retry-After header.
var ErrQueueFull = errors.New("server: job queue full")

// ErrDraining is returned for submissions while the server drains; it
// maps to HTTP 503 with a Retry-After header.
var ErrDraining = errors.New("server: draining, not accepting jobs")

// ErrQuotaExceeded is returned when a tenant already has its maximum
// number of active jobs; it maps to HTTP 429 with a Retry-After header.
var ErrQuotaExceeded = errors.New("server: active-job quota exceeded")

// RetryPolicy bounds how job execution retries transient failures:
// MaxAttempts total tries with exponential backoff from BaseDelay,
// capped at MaxDelay, jittered deterministically per job so a thundering
// herd of identical retries spreads without a randomness source.
type RetryPolicy struct {
	// MaxAttempts is the total execution budget per job (first try
	// included). <= 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; attempt k waits
	// BaseDelay * 2^(k-1), jittered. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 5s.
	MaxDelay time.Duration
}

// withDefaults resolves unset fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	return p
}

// backoff returns the wait before retry attempt k (k >= 1), with
// deterministic jitter in [50%, 100%] of the exponential step derived
// from seed — typically the job's dedup key — so the schedule is
// reproducible run to run yet distinct across jobs.
func (p RetryPolicy) backoff(k int, seed uint64) time.Duration {
	d := p.BaseDelay << (k - 1)
	if d > p.MaxDelay || d <= 0 { // <= 0: shift overflow
		d = p.MaxDelay
	}
	// splitmix64: one multiply-xor round is plenty for jitter.
	z := seed + uint64(k)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	frac := float64(z%1024) / 1024
	return time.Duration(float64(d) * (0.5 + 0.5*frac))
}

// Config sizes and hardens the service.
type Config struct {
	// Jobs is the number of scenarios executing concurrently (worker
	// goroutines). Default 1: one scenario at a time, everything else
	// queues.
	Jobs int
	// QueueDepth bounds the pending queue; a submission beyond it is
	// rejected with 503 rather than buffered without limit. Default 16.
	QueueDepth int
	// DefaultScale names the scale used by submissions that do not set
	// one. Default "quick".
	DefaultScale string
	// MaxBodyBytes bounds a request body (enforced by the middleware
	// chain). Default 1 MiB.
	MaxBodyBytes int64
	// MaxJobs caps how many jobs (with their results and event logs)
	// the service retains; beyond it the oldest terminal jobs are
	// evicted so a long-running instance's memory stays bounded.
	// Queued and running jobs are never evicted. Default 256.
	MaxJobs int

	// AuthTokens maps bearer tokens to tenant names. Empty disables
	// authentication (every caller is the anonymous tenant).
	AuthTokens map[string]string
	// RateLimit grants each tenant this many requests/second (token
	// bucket of RateBurst). <= 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the token-bucket burst per tenant. Default 10.
	RateBurst int
	// MaxActiveJobsPerTenant caps a tenant's queued+running jobs; the
	// excess submission gets 429. <= 0 disables the quota.
	MaxActiveJobsPerTenant int
	// RequestTimeout bounds non-streaming request handling. <= 0
	// disables it; the events stream is never subject to it.
	RequestTimeout time.Duration

	// Retry is the transient-failure retry policy for job execution.
	Retry RetryPolicy
	// LeaseTTL is how long a worker-claimed arm stays leased without a
	// heartbeat before it is reclaimed for re-dispatch. Default 15s.
	LeaseTTL time.Duration
	// MaxArmAttempts contains a poison arm: once that many distinct
	// workers have failed it, the arm stops cycling through the fleet
	// and executes locally, with the per-worker error history surfaced
	// on the job status. Default 3.
	MaxArmAttempts int
	// FailThreshold is the decaying per-worker health score at which
	// the dispatcher quarantines a worker. Default 2.5 (three quick
	// errors or two checksum mismatches).
	FailThreshold float64
	// QuarantineCooldown is the base quarantine duration (doubling per
	// consecutive quarantine, capped at 8×). Default 4×LeaseTTL.
	QuarantineCooldown time.Duration
	// AuditFraction in (0, 1] re-executes that fraction of
	// worker-completed arms locally (sampled deterministically by arm
	// content hash) and cross-checks byte-identity; a worker caught
	// returning divergent bytes is quarantined and the local result is
	// used. 0 disables audits.
	AuditFraction float64
	// CheckpointDir, when set, persists per-job run directories keyed
	// by dedup key under it: retries and post-restart resubmissions
	// resume from the per-arm caches instead of recomputing, and a
	// drained-with-deadline job leaves its completed arms behind.
	CheckpointDir string
	// StoreDir, when set together with CheckpointDir, keeps every
	// job's per-arm result records in one embedded result store
	// (internal/store) at this path instead of one JSON file per arm
	// under each job directory. Arms are keyed by content hash, so
	// jobs that share arms — a resubmission after restart, or two
	// sweeps overlapping on a common baseline — share cached results
	// across job boundaries. The server holds the store open for its
	// lifetime; concurrent jobs write through the one shared handle.
	StoreDir string
	// Fault injects failures into job execution (chaos testing); nil
	// injects nothing.
	Fault *faultinject.Injector
	// Log receives the structured request and job logs. Default: a
	// discard logger, keeping embedded/test use quiet.
	Log *slog.Logger

	// now stamps job transitions; tests may pin it.
	now func() time.Time
}

// withDefaults resolves unset fields.
func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultScale == "" {
		c.DefaultScale = "quick"
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.RateBurst <= 0 {
		c.RateBurst = 10
	}
	c.Retry = c.Retry.withDefaults()
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the scenario service. It implements http.Handler; Drain
// winds it down gracefully, Close stops it immediately.
type Server struct {
	cfg Config
	mux *http.ServeMux
	now func() time.Time
	log *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	notify     chan struct{}
	draining   atomic.Bool

	mu      sync.Mutex
	seq     int64
	jobs    map[string]*job
	order   []string
	byKey   map[string]*job
	pending []*job

	// dispatch leases per-arm work units to the pull-mode worker fleet;
	// with no workers connected it answers ErrNoWorkers synchronously
	// and jobs execute in-process exactly as before.
	dispatch *distrib.Dispatcher
	// localArms/remoteArms count where arms executed; cacheHits/Misses
	// count checkpoint-cache lookups across jobs (statz observability).
	localArms, remoteArms  atomic.Int64
	cacheHits, cacheMisses atomic.Int64
	// audits/auditsFailed count result audits (re-executions of
	// worker-completed arms) and the divergences they caught.
	audits, auditsFailed atomic.Int64

	// storeRelease drops the server's lifetime reference on the shared
	// result store (nil without Config.StoreDir). Holding one reference
	// from New to Close keeps the store — and its process lock — open
	// across jobs instead of churning open/close per attempt.
	storeRelease func() error
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		now:        cfg.now,
		log:        cfg.Log,
		baseCtx:    ctx,
		baseCancel: cancel,
		notify:     make(chan struct{}, 1),
		jobs:       map[string]*job{},
		byKey:      map[string]*job{},
		dispatch: distrib.New(distrib.Config{
			LeaseTTL:      cfg.LeaseTTL,
			MaxAttempts:   cfg.MaxArmAttempts,
			FailThreshold: cfg.FailThreshold,
			Cooldown:      cfg.QuarantineCooldown,
		}),
	}
	if cfg.StoreDir != "" {
		if _, release, err := store.OpenShared(cfg.StoreDir, store.Options{}); err != nil {
			// Surface the problem at startup but let jobs run: each
			// attempt reopens and reports the real error on its job.
			cfg.Log.Warn("result store unavailable at startup", "dir", cfg.StoreDir, "error", err)
		} else {
			s.storeRelease = release
		}
	}
	// The hardening chain around every /v1 route, outermost first:
	// recovery must see everything, identity must exist before logging,
	// auth must resolve the tenant before rate limiting can meter it.
	base := middleware.Chain(
		middleware.Recover(cfg.Log),
		middleware.RequestID(),
		middleware.Log(cfg.Log),
		middleware.BodyLimit(cfg.MaxBodyBytes),
		middleware.Auth(cfg.AuthTokens),
		middleware.RateLimit(middleware.NewLimiter(cfg.RateLimit, cfg.RateBurst)),
	)
	// The timeout applies to request/response endpoints only: an events
	// follow is long-lived by design and must outlive any such bound.
	std := middleware.Chain(base, middleware.Timeout(cfg.RequestTimeout))
	mux := http.NewServeMux()
	handle := func(pattern string, mw middleware.Middleware, h http.HandlerFunc) {
		mux.Handle(pattern, mw(h))
	}
	handle("POST /v1/jobs", std, s.handleSubmit)
	handle("GET /v1/jobs", std, s.handleList)
	handle("GET /v1/jobs/{id}", std, s.handleJob)
	handle("DELETE /v1/jobs/{id}", std, s.handleCancel)
	handle("GET /v1/jobs/{id}/events", base, s.handleEvents)
	// The claim long-poll, like the events follow, must outlive any
	// request timeout: it rides the base chain.
	handle("POST /v1/work/claim", base, s.handleClaim)
	handle("POST /v1/work/register", std, s.handleRegister)
	handle("POST /v1/work/deregister", std, s.handleDeregister)
	handle("POST /v1/work/{lease}/heartbeat", std, s.handleHeartbeat)
	handle("POST /v1/work/{lease}/result", std, s.handleWorkResult)
	handle("GET /v1/catalog", std, s.handleCatalog)
	handle("GET /v1/version", std, s.handleVersion)
	handle("GET /v1/healthz", std, s.handleHealthz)
	handle("GET /v1/statz", std, s.handleStatz)
	s.mux = mux
	s.wg.Add(cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close aborts every queued and running job and waits for the workers
// to drain. The HTTP listener (owned by the caller) must be shut down
// separately. For a graceful wind-down use Drain.
func (s *Server) Close() {
	s.draining.Store(true)
	s.baseCancel()
	// Fail outstanding work units fast: their jobs are being cancelled
	// anyway, and parked claim polls must return so workers disconnect.
	s.dispatch.Close()
	s.mu.Lock()
	pending := append([]*job(nil), s.pending...)
	s.mu.Unlock()
	for _, j := range pending {
		s.cancelJob(j)
	}
	s.wg.Wait()
	// The release is idempotent, so a Drain-then-Close sequence (Drain
	// calls Close) is safe.
	if s.storeRelease != nil {
		if err := s.storeRelease(); err != nil {
			s.log.Warn("result store close failed", "error", err)
		}
	}
}

// Drain winds the service down gracefully: new submissions are refused
// with 503 + Retry-After immediately, new work claims are refused with
// 503 + Retry-After (outstanding leases may still heartbeat and upload
// their results — a leased arm is allowed to finish remotely, while
// queued units fail over to local execution since no worker can claim
// them anymore), then Drain waits for every queued and running job to
// reach a terminal state before stopping the workers. If ctx expires
// first the remaining jobs are cancelled and outstanding leases
// reclaimed — with a checkpoint directory configured each job aborts
// at an arm boundary leaving atomically-written caches, so a
// resubmission after restart resumes instead of recomputing — and
// Drain returns ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.dispatch.Drain()
	s.log.Info("drain started", "live", s.liveJobs())
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for s.liveJobs() > 0 {
		select {
		case <-ctx.Done():
			s.log.Warn("drain deadline: aborting remaining jobs", "live", s.liveJobs())
			s.Close()
			return ctx.Err()
		case <-t.C:
		}
	}
	s.Close()
	s.log.Info("drain complete")
	return nil
}

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// liveJobs counts jobs that are not yet terminal.
func (s *Server) liveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if !dlsim.TerminalStatus(j.status) {
			n++
		}
	}
	return n
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// writeErr writes the service's error envelope.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		middleware.RetryAfter(w.Header(), 5*time.Second)
		writeErr(w, http.StatusServiceUnavailable, "%v", ErrDraining)
		return
	}
	var req dlsim.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	if req.Spec == nil {
		writeErr(w, http.StatusBadRequest, "job request has no spec")
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "invalid spec: %v", err)
		return
	}
	scaleName := req.Scale
	if scaleName == "" {
		scaleName = s.cfg.DefaultScale
	}
	sc, err := experiment.ScaleByName(scaleName)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if req.Seed != 0 {
		sc.Seed = req.Seed
	}
	if req.Workers < 0 {
		writeErr(w, http.StatusUnprocessableEntity, "workers must be >= 0, got %d", req.Workers)
		return
	}
	sc.Workers = req.Workers

	j, deduped, err := s.submit(req.Spec, sc, scaleName, middleware.TenantFrom(r.Context()))
	switch {
	case errors.Is(err, ErrQueueFull):
		// Retry-After makes the back-off machine-readable: clients must
		// not have to parse the error string to know to come back.
		middleware.RetryAfter(w.Header(), 2*time.Second)
		writeErr(w, http.StatusServiceUnavailable, "job queue full (depth %d): retry later", s.cfg.QueueDepth)
		return
	case errors.Is(err, ErrQuotaExceeded):
		middleware.RetryAfter(w.Header(), 2*time.Second)
		writeErr(w, http.StatusTooManyRequests,
			"tenant %q already has %d active jobs: wait for one to finish",
			middleware.TenantFrom(r.Context()), s.cfg.MaxActiveJobsPerTenant)
		return
	case err != nil:
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.mu.Lock()
	st := s.statusOf(j, deduped)
	s.mu.Unlock()
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// jobByID resolves the {id} path segment.
func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return nil
	}
	return j
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	st := s.statusOf(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleList is GET /v1/jobs. Without query parameters it answers with
// the bare newest-first array clients have always decoded; with ?limit
// and/or ?offset it answers with the paged envelope — jobs, total,
// offset, limit — so a dashboard over a long-retention service fetches
// a window instead of the whole table.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	paged := q.Has("limit") || q.Has("offset")
	limit, offset := 0, 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
		offset = n
	}
	s.mu.Lock()
	total := len(s.order)
	out := []*dlsim.JobStatus{}
	for i := total - 1 - offset; i >= 0; i-- {
		if paged && limit > 0 && len(out) >= limit {
			break
		}
		out = append(out, s.statusOf(s.jobs[s.order[i]], false))
	}
	s.mu.Unlock()
	if !paged {
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeJSON(w, http.StatusOK, dlsim.JobPage{Jobs: out, Total: total, Offset: offset, Limit: limit})
}

// handleCancel is DELETE /v1/jobs/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	s.cancelJob(j)
	s.mu.Lock()
	st := s.statusOf(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleEvents is GET /v1/jobs/{id}/events: an NDJSON stream replaying
// every round record already produced, then following the job live
// until it reaches a terminal status or the client disconnects. The
// optional ?offset=N query parameter skips the first N lines — the
// resume hook for clients reconnecting after a dropped stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	cursor := 0
	if off := r.URL.Query().Get("offset"); off != "" {
		n, err := strconv.Atoi(off)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad offset %q", off)
			return
		}
		cursor = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for {
		lines, done, wake := j.events.next(cursor)
		for _, line := range lines {
			// Two writes, not append(line, '\n'): the line's backing
			// array is shared by every subscriber of the log.
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		cursor += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}

// handleCatalog is GET /v1/catalog.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"scenarios": dlsim.Catalog(),
		"scales":    dlsim.Scales(),
	})
}

// handleVersion is GET /v1/version.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, dlsim.Version())
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued := len(s.pending)
	running := 0
	for _, j := range s.jobs {
		if j.status == dlsim.StatusRunning {
			running++
		}
	}
	total := len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     status,
		"jobs":       total,
		"queued":     queued,
		"running":    running,
		"queueDepth": s.cfg.QueueDepth,
		"slots":      s.cfg.Jobs,
	})
}
