// Package server implements the dlsim scenario service: an HTTP/JSON
// job API over the declarative experiment engine. Scenario specs are
// submitted as jobs onto a bounded queue, executed by a fixed pool of
// workers through the generic spec executor, streamed round-by-round
// as NDJSON, and cancellable at any time. Identical submissions (same
// spec content hash, scale, and seed) dedup onto one execution.
//
// v1 endpoints:
//
//	POST   /v1/jobs             submit {spec, scale, seed, workers}
//	GET    /v1/jobs             list jobs, newest first
//	GET    /v1/jobs/{id}        job status (result embedded once done)
//	DELETE /v1/jobs/{id}        cancel (frees the queue slot)
//	GET    /v1/jobs/{id}/events NDJSON round records: replay + follow
//	GET    /v1/catalog          scenario catalog and scales
//	GET    /v1/version          build identity + spec-schema hash
//	GET    /v1/healthz          liveness + queue stats
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gossipmia/internal/experiment"
	"gossipmia/pkg/dlsim"
)

// ErrQueueFull is returned when the bounded job queue cannot accept a
// submission; it maps to HTTP 503.
var ErrQueueFull = errors.New("server: job queue full")

// Config sizes the service.
type Config struct {
	// Jobs is the number of scenarios executing concurrently (worker
	// goroutines). Default 1: one scenario at a time, everything else
	// queues.
	Jobs int
	// QueueDepth bounds the pending queue; a submission beyond it is
	// rejected with 503 rather than buffered without limit. Default 16.
	QueueDepth int
	// DefaultScale names the scale used by submissions that do not set
	// one. Default "quick".
	DefaultScale string
	// MaxBodyBytes bounds a submission body. Default 1 MiB.
	MaxBodyBytes int64
	// MaxJobs caps how many jobs (with their results and event logs)
	// the service retains; beyond it the oldest terminal jobs are
	// evicted so a long-running instance's memory stays bounded.
	// Queued and running jobs are never evicted. Default 256.
	MaxJobs int
	// now stamps job transitions; tests may pin it.
	now func() time.Time
}

// withDefaults resolves unset fields.
func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultScale == "" {
		c.DefaultScale = "quick"
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the scenario service. It implements http.Handler; Close
// stops the workers and aborts running jobs.
type Server struct {
	cfg Config
	mux *http.ServeMux
	now func() time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	notify     chan struct{}

	mu      sync.Mutex
	seq     int64
	jobs    map[string]*job
	order   []string
	byKey   map[string]*job
	pending []*job
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		now:        cfg.now,
		baseCtx:    ctx,
		baseCancel: cancel,
		notify:     make(chan struct{}, 1),
		jobs:       map[string]*job{},
		byKey:      map[string]*job{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux = mux
	s.wg.Add(cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close aborts every queued and running job and waits for the workers
// to drain. The HTTP listener (owned by the caller) must be shut down
// separately.
func (s *Server) Close() {
	s.baseCancel()
	s.mu.Lock()
	pending := append([]*job(nil), s.pending...)
	s.mu.Unlock()
	for _, j := range pending {
		s.cancelJob(j)
	}
	s.wg.Wait()
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// writeErr writes the service's error envelope.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit is POST /v1/jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req dlsim.JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	if req.Spec == nil {
		writeErr(w, http.StatusBadRequest, "job request has no spec")
		return
	}
	if err := req.Spec.Validate(); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "invalid spec: %v", err)
		return
	}
	scaleName := req.Scale
	if scaleName == "" {
		scaleName = s.cfg.DefaultScale
	}
	sc, err := experiment.ScaleByName(scaleName)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if req.Seed != 0 {
		sc.Seed = req.Seed
	}
	if req.Workers < 0 {
		writeErr(w, http.StatusUnprocessableEntity, "workers must be >= 0, got %d", req.Workers)
		return
	}
	sc.Workers = req.Workers

	j, deduped, err := s.submit(req.Spec, sc, scaleName)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeErr(w, http.StatusServiceUnavailable, "job queue full (depth %d): retry later", s.cfg.QueueDepth)
		return
	case err != nil:
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.mu.Lock()
	st := s.statusOf(j, deduped)
	s.mu.Unlock()
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// jobByID resolves the {id} path segment.
func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return nil
	}
	return j
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	st := s.statusOf(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleList is GET /v1/jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]*dlsim.JobStatus, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		out = append(out, s.statusOf(s.jobs[s.order[i]], false))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handleCancel is DELETE /v1/jobs/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	s.cancelJob(j)
	s.mu.Lock()
	st := s.statusOf(j, false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleEvents is GET /v1/jobs/{id}/events: an NDJSON stream replaying
// every round record already produced, then following the job live
// until it reaches a terminal status or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	cursor := 0
	for {
		lines, done, wake := j.events.next(cursor)
		for _, line := range lines {
			// Two writes, not append(line, '\n'): the line's backing
			// array is shared by every subscriber of the log.
			if _, err := w.Write(line); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		cursor += len(lines)
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}

// handleCatalog is GET /v1/catalog.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"scenarios": dlsim.Catalog(),
		"scales":    dlsim.Scales(),
	})
}

// handleVersion is GET /v1/version.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, dlsim.Version())
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	queued := len(s.pending)
	running := 0
	for _, j := range s.jobs {
		if j.status == dlsim.StatusRunning {
			running++
		}
	}
	total := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"jobs":       total,
		"queued":     queued,
		"running":    running,
		"queueDepth": s.cfg.QueueDepth,
		"slots":      s.cfg.Jobs,
	})
}
