package gossip

import (
	"errors"
	"testing"

	"gossipmia/internal/metrics"
)

func TestDynamicsDefaulting(t *testing.T) {
	c := Config{Nodes: 6, ViewSize: 2, Rounds: 1}.Defaulted()
	if c.Dynamics != DynamicsStatic {
		t.Fatalf("default dynamics = %d, want static", c.Dynamics)
	}
	c = Config{Nodes: 6, ViewSize: 2, Rounds: 1, Dynamic: true}.Defaulted()
	if c.Dynamics != DynamicsPeerSwap {
		t.Fatalf("dynamic=true dynamics = %d, want peerswap", c.Dynamics)
	}
	c = Config{Nodes: 6, ViewSize: 2, Rounds: 1, Dynamics: DynamicsCyclon}.Defaulted()
	if c.Dynamics != DynamicsCyclon {
		t.Fatalf("explicit dynamics overridden: %d", c.Dynamics)
	}
	bad := Config{Nodes: 6, ViewSize: 2, Rounds: 1, Dynamics: DynamicsKind(99)}.Defaulted()
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("bad dynamics error = %v", err)
	}
}

func TestCyclonDynamicsLearns(t *testing.T) {
	model, parts, globalTest := testWorld(t, 8, 20)
	sim, err := New(Config{
		Nodes: 8, ViewSize: 3, Rounds: 12, Seed: 5, Dynamics: DynamicsCyclon,
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	var accs []float64
	for _, node := range sim.Nodes() {
		a, err := metrics.Accuracy(node.Model, globalTest)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	if mean := metrics.Mean(accs); mean < 0.6 {
		t.Fatalf("cyclon mean accuracy = %v, want >= 0.6", mean)
	}
}

func TestCyclonViewsComeFromSampler(t *testing.T) {
	model, parts, _ := testWorld(t, 10, 10)
	sim, err := New(Config{
		Nodes: 10, ViewSize: 3, Rounds: 2, Seed: 7, Dynamics: DynamicsCyclon,
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	view := sim.View(0)
	if len(view) == 0 || len(view) > 3 {
		t.Fatalf("cyclon view size %d out of (0,3]", len(view))
	}
	for _, p := range view {
		if p == 0 || p < 0 || p >= 10 {
			t.Fatalf("invalid peer %d in cyclon view", p)
		}
	}
	// Views must change over the run (the point of an RPS).
	before := append([]int(nil), view...)
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	after := sim.View(0)
	same := len(before) == len(after)
	if same {
		bm := map[int]bool{}
		for _, p := range before {
			bm[p] = true
		}
		for _, p := range after {
			if !bm[p] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("cyclon view unchanged after a run")
	}
}
