package gossip

import (
	"testing"

	"gossipmia/internal/data"
	"gossipmia/internal/metrics"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// noopUpdater disables local training, reducing both protocols to pure
// gossip averaging — the consensus process Section 4 analyzes.
type noopUpdater struct{}

func (noopUpdater) Update(*nn.MLP, *data.Dataset, *tensor.RNG) error { return nil }

// dispersion is the mean Euclidean distance of node parameters from
// their average — the ‖θ − 1θ̃‖ quantity of Equation (11).
func dispersion(t *testing.T, sim *Simulator) float64 {
	t.Helper()
	params := make([]tensor.Vector, 0, len(sim.Nodes()))
	for _, n := range sim.Nodes() {
		params = append(params, n.Model.Params())
	}
	avg, err := tensor.Average(params)
	if err != nil {
		t.Fatal(err)
	}
	dists := make([]float64, 0, len(params))
	for _, p := range params {
		diff := p.Clone()
		if err := diff.SubInPlace(avg); err != nil {
			t.Fatal(err)
		}
		dists = append(dists, diff.Norm2())
	}
	return metrics.Mean(dists)
}

// perturbedConsensusSim builds a simulator whose nodes start from
// independently perturbed models and never train.
func perturbedConsensusSim(t *testing.T, cfg Config, protocol Protocol) *Simulator {
	t.Helper()
	model, parts, _ := testWorld(t, cfg.Nodes, 4)
	sim, err := New(cfg, protocol, model, parts, func(int) LocalUpdater { return noopUpdater{} })
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(cfg.Seed + 999)
	for _, node := range sim.Nodes() {
		noise := tensor.NewVector(node.Model.NumParams())
		rng.FillNormal(noise, 0, 1)
		p := node.Model.Params()
		if err := p.AddInPlace(noise); err != nil {
			t.Fatal(err)
		}
	}
	return sim
}

func TestGossipDrivesConsensus(t *testing.T) {
	for _, tc := range []struct {
		name     string
		protocol Protocol
	}{
		{"base", BaseGossip{}},
		{"samo", SAMO{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim := perturbedConsensusSim(t, Config{
				Nodes: 12, ViewSize: 3, Rounds: 20, Seed: 21, Dynamic: true,
			}, tc.protocol)
			before := dispersion(t, sim)
			if err := sim.Run(nil); err != nil {
				t.Fatal(err)
			}
			after := dispersion(t, sim)
			if after >= before/3 {
				t.Fatalf("%s: dispersion %v -> %v, want strong contraction", tc.name, before, after)
			}
		})
	}
}

func TestDynamicConsensusBeatsStaticOnSparseGraph(t *testing.T) {
	// The learning-level counterpart of Figure 10: with the same sparse
	// 2-regular budget and no training, PeerSwap dynamics must reach
	// tighter consensus than the static graph.
	run := func(dynamic bool) float64 {
		sim := perturbedConsensusSim(t, Config{
			Nodes: 20, ViewSize: 2, Rounds: 25, Seed: 33, Dynamic: dynamic,
		}, SAMO{})
		if err := sim.Run(nil); err != nil {
			t.Fatal(err)
		}
		return dispersion(t, sim)
	}
	static := run(false)
	dynamic := run(true)
	if dynamic >= static {
		t.Fatalf("dynamic dispersion %v should be below static %v", dynamic, static)
	}
}
