package gossip

import (
	"errors"
	"fmt"
	"sort"

	"gossipmia/internal/data"
	"gossipmia/internal/graph"
	"gossipmia/internal/netmodel"
	"gossipmia/internal/nn"
	"gossipmia/internal/par"
	"gossipmia/internal/rps"
	"gossipmia/internal/tensor"
	"gossipmia/internal/wire"
)

// ErrConfig is returned for invalid simulator configurations.
var ErrConfig = errors.New("gossip: invalid config")

// DynamicsKind selects how the communication topology evolves.
type DynamicsKind int

// The three supported dynamics. The paper studies Static and PeerSwap;
// Cyclon replaces the k-regular undirected graph with a full random
// peer sampling service whose directed views refresh on every wake-up
// (Section 2.4's "RPS such as [35]").
const (
	// DynamicsDefault resolves to PeerSwap when Config.Dynamic is set,
	// Static otherwise (backward-compatible zero value).
	DynamicsDefault DynamicsKind = iota
	DynamicsStatic
	DynamicsPeerSwap
	DynamicsCyclon
)

// Config describes one simulated deployment, mirroring Section 3.1.
type Config struct {
	// Nodes is the network size (150 in the paper).
	Nodes int
	// ViewSize is k, the regular degree (2, 5, 10 or 25 in the paper).
	ViewSize int
	// Dynamic selects PeerSwap topology dynamics: on wake, a node first
	// swaps its graph position with a random neighbor. Shorthand for
	// Dynamics = DynamicsPeerSwap.
	Dynamic bool
	// Dynamics selects the topology evolution explicitly; when left at
	// DynamicsDefault the Dynamic flag decides.
	Dynamics DynamicsKind
	// Rounds is the number of communication rounds to simulate.
	Rounds int
	// TicksPerRound is the tick resolution of one round (paper: 100).
	TicksPerRound int
	// WakeMean/WakeStd parameterize the per-node wake interval
	// Δi ~ N(WakeMean, WakeStd²) sampled once at start (paper: 100, 10).
	WakeMean, WakeStd float64
	// DropProb is the probability that any model transmission is lost in
	// transit (failure injection; 0 disables). Gossip protocols tolerate
	// loss by design — dropped models are simply never merged. It is
	// absorbed by the transport layer (netmodel.Lossy); Net.DropProb
	// takes precedence when both are set.
	DropProb float64
	// Net selects and parameterizes the transport model for message
	// delivery. The zero value is the Instant transport — the paper's
	// zero-transmission-delay semantics, byte-identical to the seed
	// implementation.
	Net netmodel.Config
	// Churn schedules node departures and rejoins, in ticks. While a
	// node is down it neither wakes nor receives: transmissions
	// addressed to it, and queued deliveries coming due during the
	// outage, are lost (the sender still pays the cost; a delivery due
	// after the rejoin still arrives). On rejoin the node keeps its
	// model but has lost its unmerged inbox, and it resumes waking
	// immediately, at the rejoin tick itself. Outage windows for one
	// node must not overlap.
	Churn []ChurnEvent
	// Seed drives all randomness of the run.
	Seed int64
	// Workers bounds the goroutines of the node-parallel tick engine:
	// each tick's due wake-ups run concurrently (one goroutine per
	// conflict-free wake, each node on its own RNG stream) between a
	// serial planning pass and a serial commit pass, so runs are
	// byte-identical to the serial path for every setting. 0 means one
	// worker per CPU, 1 forces the fully serial loop. Protocols whose
	// peer selection cannot be planned ahead of the wake's local work
	// (Epidemic) always take the serial loop.
	Workers int
}

// ChurnEvent schedules one departure (and optional rejoin) of a node.
type ChurnEvent struct {
	Node      int
	LeaveTick int
	// RejoinTick 0 (the zero value) means the node never comes back. A
	// positive RejoinTick must follow LeaveTick: a rejoin scheduled at
	// or before the departure is almost certainly a typo, and Validate
	// rejects it rather than silently treating it as a permanent leave.
	RejoinTick int
}

// Defaulted returns a copy of c with unset timing fields replaced by the
// paper's values.
func (c Config) Defaulted() Config {
	if c.TicksPerRound == 0 {
		c.TicksPerRound = 100
	}
	if c.WakeMean == 0 {
		c.WakeMean = 100
	}
	if c.WakeStd == 0 {
		c.WakeStd = 10
	}
	if c.Dynamics == DynamicsDefault {
		if c.Dynamic {
			c.Dynamics = DynamicsPeerSwap
		} else {
			c.Dynamics = DynamicsStatic
		}
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("%w: need at least 2 nodes, got %d", ErrConfig, c.Nodes)
	}
	if c.ViewSize <= 0 || c.ViewSize >= c.Nodes {
		return fmt.Errorf("%w: view size %d for %d nodes", ErrConfig, c.ViewSize, c.Nodes)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("%w: rounds = %d", ErrConfig, c.Rounds)
	}
	if c.TicksPerRound <= 0 || c.WakeMean <= 0 || c.WakeStd < 0 {
		return fmt.Errorf("%w: ticksPerRound=%d wakeMean=%v wakeStd=%v",
			ErrConfig, c.TicksPerRound, c.WakeMean, c.WakeStd)
	}
	if c.DropProb < 0 || c.DropProb >= 1 {
		return fmt.Errorf("%w: dropProb=%v out of [0,1)", ErrConfig, c.DropProb)
	}
	if c.Dynamics < DynamicsDefault || c.Dynamics > DynamicsCyclon {
		return fmt.Errorf("%w: dynamics=%d", ErrConfig, c.Dynamics)
	}
	if err := c.Net.Validate(c.Nodes); err != nil {
		return fmt.Errorf("%w: net: %w", ErrConfig, err)
	}
	for i, ev := range c.Churn {
		if ev.Node < 0 || ev.Node >= c.Nodes {
			return fmt.Errorf("%w: churn event %d: node %d out of [0,%d)", ErrConfig, i, ev.Node, c.Nodes)
		}
		if ev.LeaveTick < 0 {
			return fmt.Errorf("%w: churn event %d: leaveTick=%d", ErrConfig, i, ev.LeaveTick)
		}
		if ev.RejoinTick < 0 || (ev.RejoinTick > 0 && ev.RejoinTick <= ev.LeaveTick) {
			return fmt.Errorf("%w: churn event %d: rejoinTick=%d not after leaveTick=%d (use 0 for a permanent leave)",
				ErrConfig, i, ev.RejoinTick, ev.LeaveTick)
		}
		// Overlapping outages for one node have no sensible semantics
		// (the duplicate-transition skip would end the union of outages
		// at the earliest rejoin), so they are rejected. An event with
		// no rejoin occupies [LeaveTick, infinity).
		for j, prev := range c.Churn[:i] {
			if prev.Node != ev.Node {
				continue
			}
			overlaps := func(a, b ChurnEvent) bool {
				if a.RejoinTick <= a.LeaveTick { // a never rejoins
					return b.LeaveTick >= a.LeaveTick
				}
				return b.LeaveTick >= a.LeaveTick && b.LeaveTick < a.RejoinTick
			}
			if overlaps(prev, ev) || overlaps(ev, prev) {
				return fmt.Errorf("%w: churn events %d and %d overlap for node %d", ErrConfig, j, i, ev.Node)
			}
		}
	}
	return nil
}

// Observer is called at every round boundary with the completed round
// index (0-based) and the simulator. Returning an error aborts the run.
type Observer func(round int, sim *Simulator) error

// Simulator executes a gossip-learning deployment tick by tick.
type Simulator struct {
	cfg      Config
	topo     *graph.Regular
	sampler  *rps.Service // non-nil only for DynamicsCyclon
	nodes    []*Node
	protocol Protocol
	rng      *tensor.RNG

	// transport decides, per message, between loss, inline delivery,
	// and queued delivery at a later tick (drained at tick start).
	transport netmodel.Transport
	// drainBuf is the reusable scratch for draining due deliveries.
	drainBuf []netmodel.Delivery

	// churn state: transitions sorted by tick, the index of the next
	// one to apply, and the per-node offline flags.
	churn     []churnTransition
	churnNext int
	down      []bool

	// pool recycles per-message parameter buffers; syncRecv marks that
	// the protocol consumes messages inside OnReceive, letting Send skip
	// the per-message copy entirely.
	pool     *tensor.VecPool
	syncRecv bool

	tick            int
	messagesSent    int
	messagesDropped int
	messagesDelayed int
	bytesSent       int

	// sched captures the schedule the node-parallel engine executed
	// (zero when the run took the serial loop).
	sched SchedStats
}

// churnTransition is one expanded churn edge: at tick, node goes up or
// down.
type churnTransition struct {
	tick, node int
	up         bool
}

var _ Network = (*Simulator)(nil)

// New builds a simulator. Every node starts from a clone of the shared
// initial model (the common θ0 of the paper), owns its NodeData split,
// and gets an updater from factory.
func New(cfg Config, protocol Protocol, initial *nn.MLP, nodeData []data.NodeData, factory UpdaterFactory) (*Simulator, error) {
	cfg = cfg.Defaulted()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if protocol == nil || initial == nil || factory == nil {
		return nil, fmt.Errorf("%w: nil protocol, model, or factory", ErrConfig)
	}
	if len(nodeData) != cfg.Nodes {
		return nil, fmt.Errorf("%w: %d node datasets for %d nodes", ErrConfig, len(nodeData), cfg.Nodes)
	}
	rng := tensor.NewRNG(cfg.Seed)
	topo, err := graph.NewRegular(cfg.Nodes, cfg.ViewSize, rng)
	if err != nil {
		return nil, fmt.Errorf("gossip: build topology: %w", err)
	}
	s := &Simulator{
		cfg:      cfg,
		topo:     topo,
		nodes:    make([]*Node, cfg.Nodes),
		protocol: protocol,
		rng:      rng,
		pool:     tensor.NewVecPool(initial.NumParams()),
	}
	if sr, ok := protocol.(SyncReceiver); ok {
		s.syncRecv = sr.ReceivesSynchronously()
	}
	if cfg.Dynamics == DynamicsCyclon {
		shuffleLen := cfg.ViewSize/2 + 1
		s.sampler, err = rps.New(cfg.Nodes, cfg.ViewSize, shuffleLen, rng.Split())
		if err != nil {
			return nil, fmt.Errorf("gossip: build peer sampler: %w", err)
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		interval := int(rng.Normal(cfg.WakeMean, cfg.WakeStd))
		if interval < 1 {
			interval = 1
		}
		s.nodes[i] = &Node{
			ID:       i,
			Model:    initial.Clone(),
			Data:     nodeData[i],
			Updater:  factory(i),
			RNG:      rng.Split(),
			pool:     s.pool,
			interval: interval,
			// Uniform phase offset so wake-ups interleave from the start.
			nextWake: rng.Intn(interval),
		}
	}
	// The transport shares s.rng: built after node init, it consumes
	// construction randomness (per-link delays) only for non-instant
	// kinds, and its drop coin interleaves with the run exactly as the
	// seed implementation's DropProb check did — the Instant path stays
	// byte-identical.
	netCfg := cfg.Net
	if netCfg.DropProb == 0 {
		netCfg.DropProb = cfg.DropProb
	}
	s.transport, err = netmodel.New(netCfg, cfg.Nodes, rng)
	if err != nil {
		return nil, fmt.Errorf("gossip: build transport: %w", err)
	}
	s.down = make([]bool, cfg.Nodes)
	for _, ev := range cfg.Churn {
		s.churn = append(s.churn, churnTransition{tick: ev.LeaveTick, node: ev.Node, up: false})
		if ev.RejoinTick > ev.LeaveTick {
			s.churn = append(s.churn, churnTransition{tick: ev.RejoinTick, node: ev.Node, up: true})
		}
	}
	// Order by tick, with rejoins before leaves at the same tick: for
	// back-to-back windows ([10,20) then [20,30)) the tick-20 rejoin
	// must apply before the tick-20 leave regardless of how the events
	// were listed, or the later outage would be silently cancelled.
	sort.SliceStable(s.churn, func(i, j int) bool {
		if s.churn[i].tick != s.churn[j].tick {
			return s.churn[i].tick < s.churn[j].tick
		}
		return s.churn[i].up && !s.churn[j].up
	})
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Nodes returns the simulator's nodes. Callers must treat them as
// read-only between Run callbacks.
func (s *Simulator) Nodes() []*Node { return s.nodes }

// Topology returns the current communication graph.
func (s *Simulator) Topology() *graph.Regular { return s.topo }

// MessagesSent returns the cumulative number of model transmissions, the
// communication-cost metric of RQ4. Dropped messages count as sent (the
// sender paid the cost).
func (s *Simulator) MessagesSent() int { return s.messagesSent }

// MessagesDropped returns how many transmissions were lost in transit —
// to the probabilistic failure model, an active partition, or an
// offline (churned-out) receiver.
func (s *Simulator) MessagesDropped() int { return s.messagesDropped }

// MessagesDelayed returns how many transmissions went through the
// transport's delivery queue instead of arriving inline (always zero on
// the Instant transport).
func (s *Simulator) MessagesDelayed() int { return s.messagesDelayed }

// PendingDeliveries returns how many messages are still in flight
// inside the transport queue (at the end of a run: sent but never
// delivered).
func (s *Simulator) PendingDeliveries() int { return s.transport.Pending() }

// TransportName identifies the active transport model.
func (s *Simulator) TransportName() string { return s.transport.Name() }

// NodeDown reports whether node id is currently churned out.
func (s *Simulator) NodeDown(id int) bool { return s.down[id] }

// BytesSent returns the total wire-format bytes transmitted, using the
// wire package's frame size for each model.
func (s *Simulator) BytesSent() int { return s.bytesSent }

// Tick returns the current simulation tick.
func (s *Simulator) Tick() int { return s.tick }

// SchedStats reports the schedule the node-parallel tick engine
// executed — planned wake units, conflict-free batches, and stages.
// All-zero when the run took the serial loop (Workers <= 1 or a
// non-planning protocol).
func (s *Simulator) SchedStats() SchedStats { return s.sched }

// Send implements Network: the transport plans the transmission's fate —
// lost (failure model, partition, or offline receiver), delivered
// inline on this call stack (the Instant transport, the paper's
// zero-delay semantics), or queued for a later tick. The sender pays
// the communication cost in every case.
//
// Allocation discipline on the inline path: when the protocol merges
// synchronously (SyncReceiver), the receiver reads the sender's live
// parameters directly and no copy is made. Otherwise — and for every
// queued delivery, whose payload must survive the sender's future
// updates — the private copy comes from a recycled arena buffer
// (returned to the pool after the merge), so steady-state sends
// allocate nothing on any path.
func (s *Simulator) Send(from, to int, params tensor.Vector) error {
	if to < 0 || to >= len(s.nodes) {
		return fmt.Errorf("%w: send to unknown node %d", ErrProtocol, to)
	}
	wireBytes := wire.ParamsWireSize(len(params))
	s.messagesSent++
	s.bytesSent += wireBytes
	// An offline receiver loses the message at send time, before the
	// transport consumes any randomness; without churn this branch is
	// dead and the seed RNG stream is untouched.
	if s.down[to] {
		s.messagesDropped++
		return nil
	}
	deliverAt, dropped := s.transport.Plan(s.tick, from, to, wireBytes)
	if dropped {
		s.messagesDropped++
		return nil
	}
	if deliverAt <= s.tick {
		msg := Message{From: from}
		if s.syncRecv {
			msg.Params = params
		} else {
			buf := s.pool.Get(len(params))
			copy(buf, params)
			msg.Params = buf
		}
		return s.protocol.OnReceive(s.nodes[to], msg)
	}
	buf := s.pool.Get(len(params))
	copy(buf, params)
	s.messagesDelayed++
	s.transport.Schedule(netmodel.Delivery{
		From: from, To: to, SentTick: s.tick, DeliverAt: deliverAt, Params: buf,
	})
	return nil
}

// View implements Network: the k-regular neighborhood, or the RPS view
// under Cyclon dynamics.
func (s *Simulator) View(node int) []int {
	if s.sampler != nil {
		return s.sampler.View(node)
	}
	return s.topo.Neighbors(node)
}

// Size implements Network.
func (s *Simulator) Size() int { return len(s.nodes) }

// Run simulates cfg.Rounds rounds, invoking observer (when non-nil) at
// every round boundary. Each tick proceeds in a fixed order: churn
// transitions, then queued deliveries due this tick, then node wake-ups
// in ID order — so runs are deterministic for every transport.
//
// With Workers resolving above one and a WakePlanner protocol, ticks
// execute on the node-parallel engine (see parallel.go), which is
// byte-identical to the serial loop below by construction.
func (s *Simulator) Run(observer Observer) error {
	if workers := par.Workers(s.cfg.Workers); workers > 1 {
		if planner, ok := s.protocol.(WakePlanner); ok {
			return s.runParallel(observer, planner, workers)
		}
	}
	totalTicks := s.cfg.Rounds * s.cfg.TicksPerRound
	for ; s.tick < totalTicks; s.tick++ {
		s.applyChurn()
		if err := s.deliverDue(); err != nil {
			return err
		}
		for _, node := range s.nodes {
			if node.nextWake > s.tick || s.down[node.ID] {
				continue
			}
			if err := s.wake(node); err != nil {
				return err
			}
			node.nextWake = s.tick + node.interval
		}
		if err := s.observeTick(observer); err != nil {
			return err
		}
	}
	return nil
}

// observeTick fires observer when the current tick closes a round.
func (s *Simulator) observeTick(observer Observer) error {
	if (s.tick+1)%s.cfg.TicksPerRound == 0 && observer != nil {
		round := (s.tick + 1) / s.cfg.TicksPerRound
		if err := observer(round-1, s); err != nil {
			return fmt.Errorf("gossip: observer at round %d: %w", round-1, err)
		}
	}
	return nil
}

// applyChurn processes the churn transitions scheduled for the current
// tick. A departing node loses its unmerged inbox (volatile state —
// the buffers go back to the arena); its model persists across the
// outage.
func (s *Simulator) applyChurn() {
	for s.churnNext < len(s.churn) && s.churn[s.churnNext].tick <= s.tick {
		tr := s.churn[s.churnNext]
		s.churnNext++
		if s.down[tr.node] == !tr.up {
			continue
		}
		s.down[tr.node] = !tr.up
		if !tr.up {
			s.nodes[tr.node].RecycleInbox()
		}
	}
}

// deliverDue drains the transport's queue for the current tick and
// hands each message to the protocol. Queued payloads are arena
// buffers: a synchronously merging protocol consumes them here and the
// buffer is recycled immediately; a retaining protocol keeps the buffer
// in the node's inbox until RecycleInbox. Deliveries to a node that
// went offline after the send are lost.
func (s *Simulator) deliverDue() error {
	if s.transport.Pending() == 0 {
		return nil
	}
	s.drainBuf = s.transport.Drain(s.drainBuf[:0], s.tick)
	for i := range s.drainBuf {
		d := &s.drainBuf[i]
		params := d.Params
		d.Params = nil
		if s.down[d.To] {
			s.messagesDropped++
			s.pool.Put(params)
			continue
		}
		err := s.protocol.OnReceive(s.nodes[d.To], Message{From: d.From, Params: params})
		if s.syncRecv {
			s.pool.Put(params)
		}
		if err != nil {
			return fmt.Errorf("gossip: deliver %d->%d at tick %d: %w", d.From, d.To, s.tick, err)
		}
	}
	return nil
}

// wake performs one wake-up of node: topology dynamics first (PeerSwap
// or a Cyclon shuffle, Section 2.4), then the protocol's wake action.
func (s *Simulator) wake(node *Node) error {
	switch s.cfg.Dynamics {
	case DynamicsPeerSwap:
		s.topo.PeerSwap(node.ID, node.RNG)
	case DynamicsCyclon:
		s.sampler.Shuffle(node.ID)
	}
	if err := s.protocol.OnWake(node, s); err != nil {
		return fmt.Errorf("gossip: node %d wake at tick %d: %w", node.ID, s.tick, err)
	}
	return nil
}
