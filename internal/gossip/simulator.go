package gossip

import (
	"errors"
	"fmt"

	"gossipmia/internal/data"
	"gossipmia/internal/graph"
	"gossipmia/internal/nn"
	"gossipmia/internal/rps"
	"gossipmia/internal/tensor"
	"gossipmia/internal/wire"
)

// ErrConfig is returned for invalid simulator configurations.
var ErrConfig = errors.New("gossip: invalid config")

// DynamicsKind selects how the communication topology evolves.
type DynamicsKind int

// The three supported dynamics. The paper studies Static and PeerSwap;
// Cyclon replaces the k-regular undirected graph with a full random
// peer sampling service whose directed views refresh on every wake-up
// (Section 2.4's "RPS such as [35]").
const (
	// DynamicsDefault resolves to PeerSwap when Config.Dynamic is set,
	// Static otherwise (backward-compatible zero value).
	DynamicsDefault DynamicsKind = iota
	DynamicsStatic
	DynamicsPeerSwap
	DynamicsCyclon
)

// Config describes one simulated deployment, mirroring Section 3.1.
type Config struct {
	// Nodes is the network size (150 in the paper).
	Nodes int
	// ViewSize is k, the regular degree (2, 5, 10 or 25 in the paper).
	ViewSize int
	// Dynamic selects PeerSwap topology dynamics: on wake, a node first
	// swaps its graph position with a random neighbor. Shorthand for
	// Dynamics = DynamicsPeerSwap.
	Dynamic bool
	// Dynamics selects the topology evolution explicitly; when left at
	// DynamicsDefault the Dynamic flag decides.
	Dynamics DynamicsKind
	// Rounds is the number of communication rounds to simulate.
	Rounds int
	// TicksPerRound is the tick resolution of one round (paper: 100).
	TicksPerRound int
	// WakeMean/WakeStd parameterize the per-node wake interval
	// Δi ~ N(WakeMean, WakeStd²) sampled once at start (paper: 100, 10).
	WakeMean, WakeStd float64
	// DropProb is the probability that any model transmission is lost in
	// transit (failure injection; 0 disables). Gossip protocols tolerate
	// loss by design — dropped models are simply never merged.
	DropProb float64
	// Seed drives all randomness of the run.
	Seed int64
}

// Defaulted returns a copy of c with unset timing fields replaced by the
// paper's values.
func (c Config) Defaulted() Config {
	if c.TicksPerRound == 0 {
		c.TicksPerRound = 100
	}
	if c.WakeMean == 0 {
		c.WakeMean = 100
	}
	if c.WakeStd == 0 {
		c.WakeStd = 10
	}
	if c.Dynamics == DynamicsDefault {
		if c.Dynamic {
			c.Dynamics = DynamicsPeerSwap
		} else {
			c.Dynamics = DynamicsStatic
		}
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("%w: need at least 2 nodes, got %d", ErrConfig, c.Nodes)
	}
	if c.ViewSize <= 0 || c.ViewSize >= c.Nodes {
		return fmt.Errorf("%w: view size %d for %d nodes", ErrConfig, c.ViewSize, c.Nodes)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("%w: rounds = %d", ErrConfig, c.Rounds)
	}
	if c.TicksPerRound <= 0 || c.WakeMean <= 0 || c.WakeStd < 0 {
		return fmt.Errorf("%w: ticksPerRound=%d wakeMean=%v wakeStd=%v",
			ErrConfig, c.TicksPerRound, c.WakeMean, c.WakeStd)
	}
	if c.DropProb < 0 || c.DropProb >= 1 {
		return fmt.Errorf("%w: dropProb=%v out of [0,1)", ErrConfig, c.DropProb)
	}
	if c.Dynamics < DynamicsDefault || c.Dynamics > DynamicsCyclon {
		return fmt.Errorf("%w: dynamics=%d", ErrConfig, c.Dynamics)
	}
	return nil
}

// Observer is called at every round boundary with the completed round
// index (0-based) and the simulator. Returning an error aborts the run.
type Observer func(round int, sim *Simulator) error

// Simulator executes a gossip-learning deployment tick by tick.
type Simulator struct {
	cfg      Config
	topo     *graph.Regular
	sampler  *rps.Service // non-nil only for DynamicsCyclon
	nodes    []*Node
	protocol Protocol
	rng      *tensor.RNG

	// pool recycles per-message parameter buffers; syncRecv marks that
	// the protocol consumes messages inside OnReceive, letting Send skip
	// the per-message copy entirely.
	pool     *tensor.VecPool
	syncRecv bool

	tick            int
	messagesSent    int
	messagesDropped int
	bytesSent       int
}

var _ Network = (*Simulator)(nil)

// New builds a simulator. Every node starts from a clone of the shared
// initial model (the common θ0 of the paper), owns its NodeData split,
// and gets an updater from factory.
func New(cfg Config, protocol Protocol, initial *nn.MLP, nodeData []data.NodeData, factory UpdaterFactory) (*Simulator, error) {
	cfg = cfg.Defaulted()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if protocol == nil || initial == nil || factory == nil {
		return nil, fmt.Errorf("%w: nil protocol, model, or factory", ErrConfig)
	}
	if len(nodeData) != cfg.Nodes {
		return nil, fmt.Errorf("%w: %d node datasets for %d nodes", ErrConfig, len(nodeData), cfg.Nodes)
	}
	rng := tensor.NewRNG(cfg.Seed)
	topo, err := graph.NewRegular(cfg.Nodes, cfg.ViewSize, rng)
	if err != nil {
		return nil, fmt.Errorf("gossip: build topology: %w", err)
	}
	s := &Simulator{
		cfg:      cfg,
		topo:     topo,
		nodes:    make([]*Node, cfg.Nodes),
		protocol: protocol,
		rng:      rng,
		pool:     tensor.NewVecPool(initial.NumParams()),
	}
	if sr, ok := protocol.(SyncReceiver); ok {
		s.syncRecv = sr.ReceivesSynchronously()
	}
	if cfg.Dynamics == DynamicsCyclon {
		shuffleLen := cfg.ViewSize/2 + 1
		s.sampler, err = rps.New(cfg.Nodes, cfg.ViewSize, shuffleLen, rng.Split())
		if err != nil {
			return nil, fmt.Errorf("gossip: build peer sampler: %w", err)
		}
	}
	for i := 0; i < cfg.Nodes; i++ {
		interval := int(rng.Normal(cfg.WakeMean, cfg.WakeStd))
		if interval < 1 {
			interval = 1
		}
		s.nodes[i] = &Node{
			ID:       i,
			Model:    initial.Clone(),
			Data:     nodeData[i],
			Updater:  factory(i),
			RNG:      rng.Split(),
			pool:     s.pool,
			interval: interval,
			// Uniform phase offset so wake-ups interleave from the start.
			nextWake: rng.Intn(interval),
		}
	}
	return s, nil
}

// Config returns the effective (defaulted) configuration.
func (s *Simulator) Config() Config { return s.cfg }

// Nodes returns the simulator's nodes. Callers must treat them as
// read-only between Run callbacks.
func (s *Simulator) Nodes() []*Node { return s.nodes }

// Topology returns the current communication graph.
func (s *Simulator) Topology() *graph.Regular { return s.topo }

// MessagesSent returns the cumulative number of model transmissions, the
// communication-cost metric of RQ4. Dropped messages count as sent (the
// sender paid the cost).
func (s *Simulator) MessagesSent() int { return s.messagesSent }

// MessagesDropped returns how many transmissions were lost to the
// injected failure model.
func (s *Simulator) MessagesDropped() int { return s.messagesDropped }

// BytesSent returns the total wire-format bytes transmitted, using the
// wire package's frame size for each model.
func (s *Simulator) BytesSent() int { return s.bytesSent }

// Tick returns the current simulation tick.
func (s *Simulator) Tick() int { return s.tick }

// Send implements Network: the receiver reacts immediately per the
// protocol. With DropProb set, the transmission may be lost in transit
// (the sender still pays the communication cost).
//
// Allocation discipline: when the protocol merges synchronously
// (SyncReceiver), the receiver reads the sender's live parameters
// directly and no copy is made. Otherwise the private copy the receiver
// retains comes from a recycled arena buffer (returned to the pool by
// Node.RecycleInbox after the merge), so steady-state sends allocate
// nothing either way.
func (s *Simulator) Send(from, to int, params tensor.Vector) error {
	if to < 0 || to >= len(s.nodes) {
		return fmt.Errorf("%w: send to unknown node %d", ErrProtocol, to)
	}
	s.messagesSent++
	s.bytesSent += wire.ParamsWireSize(len(params))
	if s.cfg.DropProb > 0 && s.rng.Float64() < s.cfg.DropProb {
		s.messagesDropped++
		return nil
	}
	msg := Message{From: from}
	if s.syncRecv {
		msg.Params = params
	} else {
		buf := s.pool.Get(len(params))
		copy(buf, params)
		msg.Params = buf
	}
	return s.protocol.OnReceive(s.nodes[to], msg)
}

// View implements Network: the k-regular neighborhood, or the RPS view
// under Cyclon dynamics.
func (s *Simulator) View(node int) []int {
	if s.sampler != nil {
		return s.sampler.View(node)
	}
	return s.topo.Neighbors(node)
}

// Size implements Network.
func (s *Simulator) Size() int { return len(s.nodes) }

// Run simulates cfg.Rounds rounds, invoking observer (when non-nil) at
// every round boundary.
func (s *Simulator) Run(observer Observer) error {
	totalTicks := s.cfg.Rounds * s.cfg.TicksPerRound
	for ; s.tick < totalTicks; s.tick++ {
		for _, node := range s.nodes {
			if node.nextWake > s.tick {
				continue
			}
			if err := s.wake(node); err != nil {
				return err
			}
			node.nextWake = s.tick + node.interval
		}
		if (s.tick+1)%s.cfg.TicksPerRound == 0 && observer != nil {
			round := (s.tick + 1) / s.cfg.TicksPerRound
			if err := observer(round-1, s); err != nil {
				return fmt.Errorf("gossip: observer at round %d: %w", round-1, err)
			}
		}
	}
	return nil
}

// wake performs one wake-up of node: topology dynamics first (PeerSwap
// or a Cyclon shuffle, Section 2.4), then the protocol's wake action.
func (s *Simulator) wake(node *Node) error {
	switch s.cfg.Dynamics {
	case DynamicsPeerSwap:
		s.topo.PeerSwap(node.ID, node.RNG)
	case DynamicsCyclon:
		s.sampler.Shuffle(node.ID)
	}
	if err := s.protocol.OnWake(node, s); err != nil {
		return fmt.Errorf("gossip: node %d wake at tick %d: %w", node.ID, s.tick, err)
	}
	return nil
}
