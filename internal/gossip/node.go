// Package gossip implements the paper's decentralized-learning runtime:
// a discrete-tick asynchronous simulator over k-regular communication
// graphs (static, or dynamic via PeerSwap), and the two learning
// protocols under study — Base Gossip Learning (Algorithm 1) and
// Send-All-Merge-Once (Algorithm 2).
//
// Time is divided into ticks; TicksPerRound ticks form one communication
// round (100 in the paper). Each node wakes every Δi ticks, with Δi drawn
// once per node from N(WakeMean, WakeStd²), exactly as in Section 3.1.
package gossip

import (
	"fmt"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// Message is a model transmitted between peers. For protocols that
// retain messages (an inbox), Params is a private arena-backed copy
// owned by the receiver until RecycleInbox returns it; for synchronous
// protocols (SyncReceiver) it aliases the sender's live parameters for
// the duration of OnReceive and must not be stored.
type Message struct {
	From   int
	Params tensor.Vector
}

// LocalUpdater performs the "local update" operation of Equation (2) on
// a node's model: some number of SGD steps over the node's training data.
// Implementations carry per-node optimizer state (momentum, DP noise
// state), so each node owns one updater instance.
type LocalUpdater interface {
	Update(model *nn.MLP, train *data.Dataset, rng *tensor.RNG) error
}

// Node is one participant in the protocol. All fields are owned by the
// simulator; protocols access them through the callbacks.
type Node struct {
	ID      int
	Model   *nn.MLP
	Data    data.NodeData
	Updater LocalUpdater

	// Inbox stores received models that have not been merged yet (the
	// set Θi of Algorithm 2, minus the node's own model).
	Inbox []Message

	// RNG is the node's private random stream (minibatch shuffling,
	// neighbor selection, DP noise).
	RNG *tensor.RNG

	// pool is the simulator's shared buffer arena for message params;
	// nil for nodes constructed outside a simulator.
	pool *tensor.VecPool

	// wake schedule (ticks).
	interval int
	nextWake int
}

// RecycleInbox returns the inbox messages' parameter buffers to the
// simulator's arena and truncates the inbox. Protocols that merge
// pending models must call it instead of truncating Inbox directly so
// pooled buffers are reused by future transmissions.
func (n *Node) RecycleInbox() {
	for i := range n.Inbox {
		if n.pool != nil {
			n.pool.Put(n.Inbox[i].Params)
		}
		n.Inbox[i].Params = nil
	}
	n.Inbox = n.Inbox[:0]
}

// localUpdate runs the node's updater on its own training split.
func (n *Node) localUpdate() error {
	if err := n.Updater.Update(n.Model, n.Data.Train, n.RNG); err != nil {
		return fmt.Errorf("node %d local update: %w", n.ID, err)
	}
	return nil
}

// SGDUpdater is the standard local updater: Epochs passes of minibatch
// SGD with the Table 2 hyperparameters. It keeps one Trainer alive
// across wake-ups so the gradient and shuffle scratch are allocated once
// per node rather than once per local update.
type SGDUpdater struct {
	opt       *nn.SGD
	batchSize int
	epochs    int
	tr        *nn.Trainer
}

var _ LocalUpdater = (*SGDUpdater)(nil)

// NewSGDUpdater returns a stateful SGD updater.
func NewSGDUpdater(cfg nn.SGDConfig, batchSize, epochs int) *SGDUpdater {
	return &SGDUpdater{opt: nn.NewSGD(cfg), batchSize: batchSize, epochs: epochs}
}

// Update implements LocalUpdater.
func (u *SGDUpdater) Update(model *nn.MLP, train *data.Dataset, rng *tensor.RNG) error {
	if u.tr == nil || u.tr.Model != model {
		u.tr = nn.NewTrainer(model, u.opt, u.batchSize, u.epochs)
	}
	_, err := u.tr.RunEpochs(train.X, train.Y, rng)
	return err
}

// UpdaterFactory builds one LocalUpdater per node.
type UpdaterFactory func(nodeID int) LocalUpdater

// NewSGDUpdaterFactory returns a factory producing independent
// SGDUpdaters with shared hyperparameters.
func NewSGDUpdaterFactory(cfg nn.SGDConfig, batchSize, epochs int) UpdaterFactory {
	return func(int) LocalUpdater { return NewSGDUpdater(cfg, batchSize, epochs) }
}
