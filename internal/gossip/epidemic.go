package gossip

import (
	"fmt"
)

// Epidemic implements Epidemic Learning (De Vos et al., NeurIPS 2023), a
// dynamic-by-construction protocol the paper's related work highlights:
// on each wake-up a node merges pending models (like SAMO) and then
// sends its model to Fanout peers sampled uniformly from the whole
// network, with no fixed view at all. It is the limit case of topology
// dynamics and a useful extension baseline for the mixing analysis.
type Epidemic struct {
	// Fanout is the number of uniformly sampled recipients per wake-up
	// (s in the Epidemic Learning paper). Values below 1 are treated
	// as 1.
	Fanout int
}

var _ Protocol = Epidemic{}

// Name implements Protocol.
func (Epidemic) Name() string { return "epidemic" }

// OnWake implements Protocol: merge-once, train, then push to Fanout
// uniformly random peers.
func (p Epidemic) OnWake(node *Node, net Network) error {
	if err := (SAMO{}).mergeAndTrain(node); err != nil {
		return err
	}
	n := net.Size()
	if n < 2 {
		return fmt.Errorf("epidemic with %d nodes: %w", n, ErrProtocol)
	}
	fanout := p.Fanout
	if fanout < 1 {
		fanout = 1
	}
	if fanout > n-1 {
		fanout = n - 1
	}
	// Sample fanout distinct peers other than the sender.
	seen := make(map[int]bool, fanout)
	for len(seen) < fanout {
		j := node.RNG.Intn(n)
		if j == node.ID || seen[j] {
			continue
		}
		seen[j] = true
		if err := net.Send(node.ID, j, node.Model.Params()); err != nil {
			return err
		}
	}
	return nil
}

// OnReceive implements Protocol: store for the next merge, as in SAMO.
func (Epidemic) OnReceive(node *Node, msg Message) error {
	node.Inbox = append(node.Inbox, msg)
	return nil
}
