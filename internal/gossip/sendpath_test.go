package gossip

import (
	"testing"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
	"gossipmia/internal/wire"
)

func sendPathSim(t *testing.T, protocol string, seed int64) *Simulator {
	t.Helper()
	rng := tensor.NewRNG(seed)
	gen, err := data.NewGenerator(data.CIFAR10, rng)
	if err != nil {
		t.Fatal(err)
	}
	nodes := 6
	parts := make([]data.NodeData, nodes)
	for i := range parts {
		parts[i] = data.NodeData{Train: gen.Sample(8, rng), Test: gen.Sample(8, rng)}
	}
	model, err := nn.NewMLP([]int{gen.Dim(), 8, gen.Classes()}, rng)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := ProtocolByName(protocol)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{Nodes: nodes, ViewSize: 2, Rounds: 3, Seed: seed},
		proto, model, parts, NewSGDUpdaterFactory(nn.SGDConfig{LR: 0.05}, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestSendAccountingAcrossReceivePaths pins the micro-fix on
// Simulator.Send: whether the protocol takes the synchronous fast path
// (no copy at all — base, samo-nodelay) or the pooled-inbox path
// (samo, epidemic), every transmission must still be charged exactly
// wire.ParamsWireSize bytes and counted once.
func TestSendAccountingAcrossReceivePaths(t *testing.T) {
	for _, protocol := range []string{"base", "samo-nodelay", "samo", "epidemic"} {
		sim := sendPathSim(t, protocol, 7)
		if err := sim.Run(nil); err != nil {
			t.Fatalf("%s: %v", protocol, err)
		}
		sent := sim.MessagesSent()
		if sent == 0 {
			t.Fatalf("%s: no messages sent", protocol)
		}
		perMsg := wire.ParamsWireSize(sim.Nodes()[0].Model.NumParams())
		if got, want := sim.BytesSent(), sent*perMsg; got != want {
			t.Fatalf("%s: BytesSent = %d, want %d (%d msgs x %d bytes)", protocol, got, want, sent, perMsg)
		}
	}
}

// TestSyncFastPathMatchesCloningSend verifies that skipping the
// defensive per-message clone for synchronous protocols changes nothing
// observable: a base-gossip run must produce the same models, message
// counts, and bytes as the historical always-clone behavior, which
// cloneAlwaysNet reproduces by wrapping the same simulator.
func TestSyncFastPathMatchesCloningSend(t *testing.T) {
	// Fast path: the simulator's own Send (no clone for BaseGossip).
	fast := sendPathSim(t, "base", 21)
	if err := fast.Run(nil); err != nil {
		t.Fatal(err)
	}

	// Reference: identical simulation, but every OnWake goes through a
	// wrapper network whose Send clones, as the seed implementation did.
	ref := sendPathSim(t, "base", 21)
	wrapped := &cloneAlwaysNet{inner: ref}
	totalTicks := ref.cfg.Rounds * ref.cfg.TicksPerRound
	for ; ref.tick < totalTicks; ref.tick++ {
		for _, node := range ref.nodes {
			if node.nextWake > ref.tick {
				continue
			}
			switch ref.cfg.Dynamics {
			case DynamicsPeerSwap:
				ref.topo.PeerSwap(node.ID, node.RNG)
			case DynamicsCyclon:
				ref.sampler.Shuffle(node.ID)
			}
			if err := ref.protocol.OnWake(node, wrapped); err != nil {
				t.Fatal(err)
			}
			node.nextWake = ref.tick + node.interval
		}
	}

	if fast.MessagesSent() != ref.MessagesSent() || fast.BytesSent() != ref.BytesSent() {
		t.Fatalf("fast path counts %d/%d, cloning reference %d/%d",
			fast.MessagesSent(), fast.BytesSent(), ref.MessagesSent(), ref.BytesSent())
	}
	for i, node := range fast.Nodes() {
		if !tensor.EqualApprox(node.Model.Params(), ref.Nodes()[i].Model.Params(), 0) {
			t.Fatalf("node %d: fast-path model differs from cloning reference", i)
		}
	}
}

// cloneAlwaysNet forwards to the simulator but forces the historical
// defensive clone before delivery.
type cloneAlwaysNet struct {
	inner *Simulator
}

func (c *cloneAlwaysNet) Send(from, to int, params tensor.Vector) error {
	if to < 0 || to >= len(c.inner.nodes) {
		return ErrProtocol
	}
	c.inner.messagesSent++
	c.inner.bytesSent += wire.ParamsWireSize(len(params))
	msg := Message{From: from, Params: params.Clone()}
	return c.inner.protocol.OnReceive(c.inner.nodes[to], msg)
}

func (c *cloneAlwaysNet) View(node int) []int { return c.inner.View(node) }
func (c *cloneAlwaysNet) Size() int           { return c.inner.Size() }

// TestInboxBuffersAreRecycled checks the pooled-inbox path: after a
// SAMO merge the inbox is emptied and its buffers returned to the arena
// (observable as the inbox being truncated with nil params), and the
// merged model matches the reference average.
func TestInboxBuffersAreRecycled(t *testing.T) {
	sim := sendPathSim(t, "samo", 3)
	node := sim.Nodes()[1]
	sender := sim.Nodes()[0]
	before := node.Model.ParamsCopy()
	peer := sender.Model.ParamsCopy()
	if err := sim.Send(0, 1, sender.Model.Params()); err != nil {
		t.Fatal(err)
	}
	if len(node.Inbox) != 1 {
		t.Fatalf("inbox %d, want 1", len(node.Inbox))
	}
	// The retained buffer must be a private copy, not the live params.
	if &node.Inbox[0].Params[0] == &sender.Model.Params()[0] {
		t.Fatal("retaining protocol received an aliased buffer")
	}
	if err := (SAMO{}).mergeAndTrain(node); err != nil {
		t.Fatal(err)
	}
	if len(node.Inbox) != 0 {
		t.Fatalf("inbox not recycled: %d entries", len(node.Inbox))
	}
	// Merge must equal the pairwise average before the local update; the
	// local update then moves the params further, so check it's not the
	// raw average of stale state either — just confirm movement happened
	// and the average fed the update by recomputing the first step is
	// infeasible here, so assert the model left both endpoints.
	if tensor.EqualApprox(node.Model.Params(), before, 0) {
		t.Fatal("merge+train left the model unchanged")
	}
	if tensor.EqualApprox(node.Model.Params(), peer, 0) {
		t.Fatal("merge+train produced the raw peer model")
	}
}
