package gossip

import (
	"errors"
	"testing"

	"gossipmia/internal/metrics"
	"gossipmia/internal/tensor"
	"gossipmia/internal/wire"
)

func TestDropProbValidation(t *testing.T) {
	cfg := Config{Nodes: 6, ViewSize: 2, Rounds: 1, DropProb: 1}.Defaulted()
	if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("dropProb=1 error = %v", err)
	}
	cfg.DropProb = -0.1
	if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("dropProb<0 error = %v", err)
	}
}

func TestDropNearOnePreventsDelivery(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 3, Seed: 1, DropProb: 0.999},
		SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	if sim.MessagesDropped() == 0 {
		t.Fatal("no drops recorded at dropProb=0.999")
	}
	// Virtually every message dropped: drops should account for nearly
	// all sends.
	if float64(sim.MessagesDropped()) < 0.9*float64(sim.MessagesSent()) {
		t.Fatalf("dropped %d of %d", sim.MessagesDropped(), sim.MessagesSent())
	}
}

func TestLearningSurvivesModerateLoss(t *testing.T) {
	model, parts, globalTest := testWorld(t, 8, 20)
	sim, err := New(Config{Nodes: 8, ViewSize: 3, Rounds: 12, Seed: 5, DropProb: 0.3},
		SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	var accs []float64
	for _, node := range sim.Nodes() {
		a, err := metrics.Accuracy(node.Model, globalTest)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	if mean := metrics.Mean(accs); mean < 0.6 {
		t.Fatalf("mean accuracy under 30%% loss = %v, want >= 0.6", mean)
	}
	if sim.MessagesDropped() == 0 {
		t.Fatal("expected some drops at dropProb=0.3")
	}
}

func TestBytesSentAccounting(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 2, Seed: 3}, BaseGossip{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	want := sim.MessagesSent() * wire.ParamsWireSize(model.NumParams())
	if sim.BytesSent() != want {
		t.Fatalf("bytes sent %d, want %d", sim.BytesSent(), want)
	}
}

func TestEpidemicLearns(t *testing.T) {
	model, parts, globalTest := testWorld(t, 8, 20)
	sim, err := New(Config{Nodes: 8, ViewSize: 2, Rounds: 12, Seed: 5},
		Epidemic{Fanout: 2}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	var accs []float64
	for _, node := range sim.Nodes() {
		a, err := metrics.Accuracy(node.Model, globalTest)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	if mean := metrics.Mean(accs); mean < 0.6 {
		t.Fatalf("epidemic mean accuracy = %v, want >= 0.6", mean)
	}
}

func TestEpidemicSendsFanoutDistinctPeers(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 9},
		Epidemic{Fanout: 3}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	node := sim.Nodes()[0]
	before := sim.MessagesSent()
	if err := (Epidemic{Fanout: 3}).OnWake(node, sim); err != nil {
		t.Fatal(err)
	}
	if got := sim.MessagesSent() - before; got != 3 {
		t.Fatalf("sent %d messages, want 3", got)
	}
	// Fanout beyond n-1 is capped.
	before = sim.MessagesSent()
	if err := (Epidemic{Fanout: 100}).OnWake(node, sim); err != nil {
		t.Fatal(err)
	}
	if got := sim.MessagesSent() - before; got != 5 {
		t.Fatalf("capped fanout sent %d, want 5", got)
	}
	// Fanout below 1 becomes 1.
	before = sim.MessagesSent()
	if err := (Epidemic{}).OnWake(node, sim); err != nil {
		t.Fatal(err)
	}
	if got := sim.MessagesSent() - before; got != 1 {
		t.Fatalf("default fanout sent %d, want 1", got)
	}
}

func TestEpidemicMergesLikeSAMO(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 2},
		Epidemic{Fanout: 1}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	node := sim.Nodes()[0]
	other := node.Model.ParamsCopy()
	other.Scale(2)
	if err := sim.Send(1, 0, other); err != nil {
		t.Fatal(err)
	}
	if len(node.Inbox) != 1 {
		t.Fatal("epidemic should store on receive")
	}
	before := node.Model.ParamsCopy()
	if err := (Epidemic{Fanout: 1}).OnWake(node, sim); err != nil {
		t.Fatal(err)
	}
	if len(node.Inbox) != 0 {
		t.Fatal("inbox not cleared")
	}
	if tensor.EqualApprox(node.Model.Params(), before, 1e-12) {
		t.Fatal("wake with pending models did not change parameters")
	}
}

func TestProtocolByNameEpidemic(t *testing.T) {
	p, err := ProtocolByName("epidemic")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "epidemic" {
		t.Fatalf("name = %s", p.Name())
	}
}
