package gossip

import "testing"

// denseWakeConfig saturates the scheduler: every node wakes every tick
// (interval 1 — the tiny nonzero WakeStd dodges the paper-default 10 a
// zero would take), SAMO sends to its whole view over an instant
// transport, so every stage's interference graph has all N units with
// touch sets {waker} ∪ view(waker).
func denseWakeConfig(workers int) Config {
	return Config{
		Nodes: 24, ViewSize: 3, Rounds: 2, TicksPerRound: 10,
		WakeMean: 1, WakeStd: 1e-9, Seed: 7, Workers: workers,
	}
}

// contiguousBatchCount replicates the scheduler this PR replaced: walk
// the units in serial order and cut a batch at the first unit whose
// touch set intersects the running batch's touched nodes. It is the
// reference the colored schedule must beat on a dense stage.
func contiguousBatchCount(touch [][]int, nodes int) int {
	inBatch := make([]bool, nodes)
	var batchNodes []int
	batches := 0
	for _, ts := range touch {
		conflict := false
		for _, id := range ts {
			if inBatch[id] {
				conflict = true
				break
			}
		}
		if conflict || batches == 0 {
			batches++
			for _, id := range batchNodes {
				inBatch[id] = false
			}
			batchNodes = batchNodes[:0]
		}
		for _, id := range ts {
			if !inBatch[id] {
				inBatch[id] = true
				batchNodes = append(batchNodes, id)
			}
		}
	}
	return batches
}

// TestColoredScheduleBeatsContiguousPacking drives one real planning
// pass of the engine on a dense tick, captures the stage's interference
// graph (each unit's touch set: waker plus inline targets), and checks
// the executed colored schedule against the contiguous-run reference:
// at least as few batches, and strictly fewer on this dense stage —
// the degenerate case that motivated the rewrite.
func TestColoredScheduleBeatsContiguousPacking(t *testing.T) {
	cfg := denseWakeConfig(4)
	model, parts, _ := testWorld(t, cfg.Nodes, 10)
	sim, err := New(cfg, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	e := newTickEngine(sim, SAMO{}, cfg.Workers)
	defer e.close()
	next := 0
	planned, err := e.planStage(&next)
	if err != nil {
		t.Fatal(err)
	}
	if planned != cfg.Nodes {
		t.Fatalf("planned %d units on the dense tick, want all %d nodes", planned, cfg.Nodes)
	}
	touch := make([][]int, 0, planned)
	for i := range e.units {
		u := &e.units[i]
		ts := []int{u.node.ID}
		for si := range u.sends {
			if u.sends[si].mode == sendInline {
				ts = append(ts, u.sends[si].to)
			}
		}
		if len(ts) != 1+cfg.ViewSize {
			t.Fatalf("unit %d touches %d nodes, want waker + full view = %d", i, len(ts), 1+cfg.ViewSize)
		}
		touch = append(touch, ts)
	}
	if err := e.computeStage(); err != nil {
		t.Fatal(err)
	}
	colored := e.stats.Batches
	contiguous := contiguousBatchCount(touch, cfg.Nodes)
	if colored > contiguous {
		t.Fatalf("colored schedule used %d batches, contiguous reference %d", colored, contiguous)
	}
	if colored >= contiguous {
		t.Fatalf("dense stage should fragment the contiguous packing (got %d batches for both); scenario no longer exercises the rewrite", colored)
	}
	// Greedy precedence coloring is bounded by the interference degree:
	// with view size v every touch set has v+1 nodes and a node appears
	// in at most a handful of sets, so a dense 24-node stage must pack
	// into single digits of batches, not the ~N of a serialized one.
	if colored > 9 {
		t.Errorf("colored schedule used %d batches for %d units; occupancy %.1f below bound",
			colored, planned, float64(planned)/float64(colored))
	}
	t.Logf("dense stage: %d units, colored=%d batches (occupancy %.1f), contiguous=%d (occupancy %.1f)",
		planned, colored, float64(planned)/float64(colored), contiguous, float64(planned)/float64(contiguous))
}

// TestDenseWakeSchedStats runs the dense-wake arm end to end and pins
// the schedule shape the engine reports: one stage per tick (SAMO is a
// PassiveReceiver, so taint never splits a tick), every wake planned,
// and an average occupancy that a contiguous packing of this workload
// cannot reach (measured ~1.9 before the rewrite).
func TestDenseWakeSchedStats(t *testing.T) {
	cfg := denseWakeConfig(4)
	model, parts, _ := testWorld(t, cfg.Nodes, 10)
	sim, err := New(cfg, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	st := sim.SchedStats()
	ticks := cfg.Rounds * cfg.TicksPerRound
	if st.Ticks != ticks {
		t.Fatalf("SchedStats.Ticks = %d, want %d", st.Ticks, ticks)
	}
	if st.Stages != ticks {
		t.Fatalf("SchedStats.Stages = %d, want one per tick for a passive protocol (%d)", st.Stages, ticks)
	}
	if want := cfg.Nodes * ticks; st.Units != want {
		t.Fatalf("SchedStats.Units = %d, want %d (every node, every tick)", st.Units, want)
	}
	if occ := st.Occupancy(); occ < 2.5 {
		t.Errorf("dense-wake occupancy %.2f below 2.5: schedule is fragmenting (%d units in %d batches)",
			occ, st.Units, st.Batches)
	}
	t.Logf("dense-wake run: %d ticks, %d units, %d batches, occupancy %.2f",
		st.Ticks, st.Units, st.Batches, st.Occupancy())
}

// TestDenseWakeColoredDeterminism pins byte-identical results for the
// dense-wake arm specifically — the workload where the colored schedule
// reorders the most compute relative to node-ID order. Run under -race
// this also checks the packed batches share no node state.
func TestDenseWakeColoredDeterminism(t *testing.T) {
	for _, proto := range []Protocol{SAMO{}, BaseGossip{}} {
		cfg := denseWakeConfig(1)
		want := runFingerprint(t, cfg, proto)
		for _, workers := range []int{2, 4, 8} {
			cfg.Workers = workers
			if got := runFingerprint(t, cfg, proto); got != want {
				t.Fatalf("%s workers=%d diverged from serial run on the dense-wake arm", proto.Name(), workers)
			}
		}
	}
}
