package gossip

import (
	"errors"
	"fmt"

	"gossipmia/internal/tensor"
)

// ErrProtocol is returned for protocol-level failures (empty views,
// incompatible models).
var ErrProtocol = errors.New("gossip: protocol error")

// Network is the sending facility handed to protocols on wake-up: Send
// transmits a copy of params to the given peer, View lists the node's
// current neighbors, and Size reports the network size (used by
// protocols that sample peers beyond the view, e.g. Epidemic).
type Network interface {
	// Send delivers params to peer `to`. Delivery is immediate in the
	// simulator (the paper's model exchange has no transmission delay).
	Send(from, to int, params tensor.Vector) error
	// View returns the sender's current neighbor set.
	View(node int) []int
	// Size returns the total number of nodes.
	Size() int
}

// Protocol defines a gossip learning protocol by its two reactions:
// waking up within a time frame, and receiving a model from a peer.
type Protocol interface {
	// Name returns a short identifier ("base", "samo").
	Name() string
	// OnWake is invoked when node wakes; the protocol may train, merge,
	// and send through net.
	OnWake(node *Node, net Network) error
	// OnReceive is invoked when node receives msg.
	OnReceive(node *Node, msg Message) error
}

// SyncReceiver is optionally implemented by protocols whose OnReceive
// fully consumes msg.Params before returning (merging synchronously,
// never storing the buffer). The simulator then skips the defensive
// per-message copy and hands the receiver the sender's live parameters
// directly — the zero-allocation fast path of the send pipeline.
type SyncReceiver interface {
	// ReceivesSynchronously reports whether OnReceive never retains
	// msg.Params beyond the call.
	ReceivesSynchronously() bool
}

// PassiveReceiver is optionally implemented by protocols whose
// OnReceive only stores the message (an inbox append) without
// consuming the receiver's RNG stream or mutating its model or
// optimizer state. The node-parallel tick engine can then plan a
// node's wake before earlier same-tick inline deliveries to it have
// computed — the plan reads the same RNG state either way — so a
// dense tick packs into one plan/compute stage instead of fragmenting
// at every sender→waker collision. Protocols that train on receive
// (BaseGossip, SAMO's nodelay ablation) must not report passive:
// their receive path advances the node's RNG ahead of the wake's own
// draws.
type PassiveReceiver interface {
	// ReceivesPassively reports whether OnReceive leaves the
	// receiver's RNG, model, and optimizer untouched.
	ReceivesPassively() bool
}

// BaseGossip is Algorithm 1: on wake, send the current model to one
// uniformly chosen neighbor; on receive, average pairwise with the
// incoming model and perform a local update.
type BaseGossip struct{}

var _ Protocol = BaseGossip{}
var _ SyncReceiver = BaseGossip{}

// Name implements Protocol.
func (BaseGossip) Name() string { return "base" }

// ReceivesSynchronously implements SyncReceiver: the pairwise average
// consumes the incoming model inside OnReceive.
func (BaseGossip) ReceivesSynchronously() bool { return true }

// OnWake implements Protocol: select j ∈ N_i at random, send θi.
func (BaseGossip) OnWake(node *Node, net Network) error {
	view := net.View(node.ID)
	if len(view) == 0 {
		return fmt.Errorf("node %d has empty view: %w", node.ID, ErrProtocol)
	}
	j := view[node.RNG.Intn(len(view))]
	return net.Send(node.ID, j, node.Model.Params())
}

// OnReceive implements Protocol: θi ← (θi+θj)/2, then local update. The
// pairwise average runs on the unrolled add/scale vector kernels:
// element-wise it is the same (θi+θj) followed by an exact halving as
// the scalar loop, so results are bit-identical — only the sweep is
// four-wide.
func (BaseGossip) OnReceive(node *Node, msg Message) error {
	params := node.Model.Params()
	if len(params) != len(msg.Params) {
		return fmt.Errorf("node %d received model of size %d, has %d: %w",
			node.ID, len(msg.Params), len(params), ErrProtocol)
	}
	_ = params.AddInPlace(msg.Params) // lengths verified above
	params.Scale(0.5)
	return node.localUpdate()
}

// PlanTargets implements WakePlanner: the one uniformly chosen neighbor,
// drawn exactly as OnWake draws it (the wake's only RNG use, so the
// planning pass leaves the node's stream in the same state).
func (BaseGossip) PlanTargets(node *Node, view []int, size int, dst []int) ([]int, error) {
	if len(view) == 0 {
		return dst, fmt.Errorf("node %d has empty view: %w", node.ID, ErrProtocol)
	}
	return append(dst, view[node.RNG.Intn(len(view))]), nil
}

// ComputeWake implements WakePlanner: Base Gossip trains on receive, so
// the wake itself has no local work.
func (BaseGossip) ComputeWake(*Node) error { return nil }

// SAMO is Algorithm 2 (Send-All-Merge-Once): received models are stored;
// on wake, if any were received, the node averages them with its own
// model, performs one local update, clears the store, and in all cases
// sends its current model to every neighbor.
type SAMO struct {
	// MergeOnReceive is an ablation switch: when true, incoming models
	// are merged pairwise immediately (like Base Gossip) but the node
	// still sends to all neighbors on wake. It isolates the contribution
	// of delayed aggregation from that of full-view dissemination.
	MergeOnReceive bool
}

var _ Protocol = SAMO{}
var _ SyncReceiver = SAMO{}
var _ PassiveReceiver = SAMO{}

// Name implements Protocol.
func (p SAMO) Name() string {
	if p.MergeOnReceive {
		return "samo-nodelay"
	}
	return "samo"
}

// ReceivesSynchronously implements SyncReceiver: only the nodelay
// ablation merges inside OnReceive; standard SAMO stores the buffer in
// the inbox until the next wake-up.
func (p SAMO) ReceivesSynchronously() bool { return p.MergeOnReceive }

// ReceivesPassively implements PassiveReceiver: standard SAMO's
// OnReceive is a pure inbox append (no RNG draw, no training), so the
// parallel engine may plan wakes past pending inline deliveries. The
// nodelay ablation trains on receive and stays staged.
func (p SAMO) ReceivesPassively() bool { return !p.MergeOnReceive }

// OnWake implements Protocol.
func (p SAMO) OnWake(node *Node, net Network) error {
	if err := p.mergeAndTrain(node); err != nil {
		return err
	}
	for _, j := range net.View(node.ID) {
		if err := net.Send(node.ID, j, node.Model.Params()); err != nil {
			return err
		}
	}
	return nil
}

// mergeAndTrain performs the merge-once step of Algorithm 2 (lines 3–7):
// if any models are pending, average them with the node's own and run one
// local update. Shared with the Epidemic extension protocol. The average
// accumulates directly into the node's live parameter vector — same
// summation order as tensor.Average (own model first, inbox order next)
// but with zero allocation — and the consumed buffers are recycled into
// the simulator's arena.
func (p SAMO) mergeAndTrain(node *Node) error {
	if len(node.Inbox) == 0 {
		return nil
	}
	params := node.Model.Params()
	for _, m := range node.Inbox {
		if err := params.AddInPlace(m.Params); err != nil {
			return fmt.Errorf("node %d merge: %w", node.ID, err)
		}
	}
	params.Scale(1 / float64(len(node.Inbox)+1))
	node.RecycleInbox()
	return node.localUpdate()
}

// OnReceive implements Protocol. The nodelay ablation's pairwise merge
// uses the same unrolled add/scale kernels as BaseGossip.OnReceive
// (bit-identical to the scalar loop).
func (p SAMO) OnReceive(node *Node, msg Message) error {
	if p.MergeOnReceive {
		params := node.Model.Params()
		if len(params) != len(msg.Params) {
			return fmt.Errorf("node %d received model of size %d, has %d: %w",
				node.ID, len(msg.Params), len(params), ErrProtocol)
		}
		_ = params.AddInPlace(msg.Params) // lengths verified above
		params.Scale(0.5)
		return node.localUpdate()
	}
	node.Inbox = append(node.Inbox, msg)
	return nil
}

// PlanTargets implements WakePlanner: SAMO disseminates to its whole
// current view, consuming no randomness.
func (SAMO) PlanTargets(node *Node, view []int, size int, dst []int) ([]int, error) {
	return append(dst, view...), nil
}

// ComputeWake implements WakePlanner: the merge-once step plus one local
// update — exactly the pre-send portion of OnWake. For the nodelay
// ablation the inbox is always empty and this is a no-op, matching
// OnWake there too.
func (p SAMO) ComputeWake(node *Node) error { return p.mergeAndTrain(node) }

// ProtocolByName resolves a protocol identifier used in configs and CLIs.
func ProtocolByName(name string) (Protocol, error) {
	switch name {
	case "base":
		return BaseGossip{}, nil
	case "samo":
		return SAMO{}, nil
	case "samo-nodelay":
		return SAMO{MergeOnReceive: true}, nil
	case "epidemic":
		return Epidemic{Fanout: 2}, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q: %w", name, ErrProtocol)
	}
}
