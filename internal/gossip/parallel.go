package gossip

import (
	"fmt"

	"gossipmia/internal/netmodel"
	"gossipmia/internal/par"
	"gossipmia/internal/wire"
)

// This file implements node-parallel tick execution: a single arm's
// tick loop fanned out over worker goroutines while staying
// byte-identical to the serial loop in simulator.go.
//
// Each tick runs in phases:
//
//  1. Churn transitions (serial, unchanged).
//  2. Due queued deliveries, grouped by receiver and handed to the
//     protocol concurrently — one goroutine per receiver, per-receiver
//     drain order preserved. OnReceive touches only receiver-local
//     state (model, inbox, the node's own RNG), so receivers commute.
//  3. Wake-ups, in one or more stages. Every stage is a serial
//     *planning* pass followed by a parallel *compute* pass:
//
//     Planning walks due wakers in node-ID order and performs exactly
//     the shared-state work the serial loop would: topology dynamics
//     (PeerSwap / Cyclon shuffles mutate the shared graph or sampler),
//     a view snapshot, the protocol's peer selection
//     (WakePlanner.PlanTargets, drawing the node's own RNG in serial
//     order), and the transport's per-send Plan calls — whose drop
//     coins and counters consume the shared stream in exactly the
//     serial send order (ascending waker ID, view order within a
//     wake).
//
//     Compute runs the planned wakes concurrently in conflict-free
//     batches: each wake's local work (WakePlanner.ComputeWake — merge
//     pending models, train) plus its inline deliveries
//     (protocol.OnReceive on the target, for transports that deliver
//     at the send tick). Two wakes conflict when their touched node
//     sets — the waker plus its inline targets — intersect; batches
//     are contiguous runs of the node-ID order, so conflicting wakes
//     execute in serial order with a barrier between them.
//
//     A stage ends early when the next due waker is itself an inline
//     target of an already-planned wake: in the serial loop that
//     node's receive-triggered training draws from its RNG *before*
//     its own wake draws, so its planning must wait until the earlier
//     wakes have computed. Chains of such dependencies degrade
//     gracefully toward the serial order; in practice almost every
//     tick is a single stage.
//
//  4. Commit (serial): queued sends copied during compute are pushed
//     into the transport's delivery heap in (waker, send) order — the
//     exact order the serial loop's Send calls would have scheduled
//     them, preserving the heap's FIFO tie-break.
//
// Because planning preserves every shared-RNG draw and counter update
// in serial order, compute touches only node-local state under mutual
// exclusion, and commit preserves queue order, the observable run —
// every parameter byte, every counter, every error — equals the serial
// loop's for any worker count. Protocols opt in via WakePlanner;
// Epidemic cannot (its fanout sampling draws *after* training), so it
// keeps the serial loop.

// WakePlanner is implemented by protocols whose wake-time peer
// selection can run ahead of the wake's local work without changing
// the node's RNG draw order — i.e. OnWake's selection draws (if any)
// happen before any other RNG use of the wake. The parallel tick
// engine then splits a wake into PlanTargets (serial planning pass)
// and ComputeWake (parallel compute pass), and transmits
// node.Model.Params() to the planned targets itself, exactly as OnWake
// would after its local work.
type WakePlanner interface {
	// PlanTargets appends the peers this wake will send to, in send
	// order, to dst and returns it. It must consume exactly the
	// node-RNG draws OnWake performs for peer selection, and must
	// report the same error OnWake would for an unusable view.
	PlanTargets(node *Node, view []int, size int, dst []int) ([]int, error)
	// ComputeWake performs the wake's local work — merging pending
	// models, training — without sending.
	ComputeWake(node *Node) error
}

var (
	_ WakePlanner = BaseGossip{}
	_ WakePlanner = SAMO{}
)

// sendMode classifies a planned transmission.
type sendMode uint8

const (
	sendDropped sendMode = iota // lost: failure model, partition, or offline receiver
	sendInline                  // delivered at the send tick, inside the compute pass
	sendQueued                  // scheduled into the delivery heap at commit
)

// plannedSend is one transmission whose fate the planning pass fixed.
type plannedSend struct {
	to        int
	deliverAt int
	mode      sendMode
	buf       []float64 // queued payload, copied during compute
}

// tickUnit is one planned wake-up.
type tickUnit struct {
	node    *Node
	targets []int
	sends   []plannedSend
	err     error
}

// recvGroup is one receiver's due deliveries for the current tick, in
// drain order.
type recvGroup struct {
	to    int
	idxs  []int // indices into Simulator.drainBuf
	err   error
	errAt int // drain index of the failing delivery, for deterministic reporting
}

// tickEngine holds the reusable scratch of the parallel tick loop.
type tickEngine struct {
	s       *Simulator
	planner WakePlanner
	workers int

	units       []tickUnit
	recv        []recvGroup
	group       []int  // node -> recvGroup index this tick, -1 when none
	touched     []bool // per-node conflict marks of the current batch
	touchedList []int
	tainted     []bool // per-node inline-target marks of the current stage
	taintedList []int
}

// runParallel is Run on the node-parallel engine.
func (s *Simulator) runParallel(observer Observer, planner WakePlanner, workers int) error {
	e := &tickEngine{
		s:       s,
		planner: planner,
		workers: workers,
		group:   make([]int, len(s.nodes)),
		touched: make([]bool, len(s.nodes)),
		tainted: make([]bool, len(s.nodes)),
	}
	for i := range e.group {
		e.group[i] = -1
	}
	totalTicks := s.cfg.Rounds * s.cfg.TicksPerRound
	for ; s.tick < totalTicks; s.tick++ {
		s.applyChurn()
		if err := e.deliverDue(); err != nil {
			return err
		}
		if err := e.runWakes(); err != nil {
			return err
		}
		if err := s.observeTick(observer); err != nil {
			return err
		}
	}
	return nil
}

// deliverDue is the parallel counterpart of Simulator.deliverDue:
// deliveries to offline nodes are screened out serially (counters and
// arena recycling), the rest are grouped by receiver and processed
// concurrently with per-receiver drain order preserved. On failure the
// error of the earliest drained delivery is reported, matching the
// serial loop's first-failure semantics.
func (e *tickEngine) deliverDue() error {
	s := e.s
	if s.transport.Pending() == 0 {
		return nil
	}
	s.drainBuf = s.transport.Drain(s.drainBuf[:0], s.tick)
	e.recv = e.recv[:0]
	for i := range s.drainBuf {
		d := &s.drainBuf[i]
		if s.down[d.To] {
			s.messagesDropped++
			s.pool.Put(d.Params)
			d.Params = nil
			continue
		}
		gi := e.group[d.To]
		if gi < 0 {
			gi = e.growRecv(d.To)
			e.group[d.To] = gi
		}
		e.recv[gi].idxs = append(e.recv[gi].idxs, i)
	}
	par.ForEach(e.workers, len(e.recv), func(gi int) {
		g := &e.recv[gi]
		for _, di := range g.idxs {
			d := &s.drainBuf[di]
			params := d.Params
			d.Params = nil
			err := s.protocol.OnReceive(s.nodes[d.To], Message{From: d.From, Params: params})
			if s.syncRecv {
				s.pool.Put(params) // VecPool is safe for concurrent use
			}
			if err != nil {
				g.err = fmt.Errorf("gossip: deliver %d->%d at tick %d: %w", d.From, d.To, s.tick, err)
				g.errAt = di
				return
			}
		}
	})
	var firstErr error
	firstAt := -1
	for gi := range e.recv {
		g := &e.recv[gi]
		e.group[g.to] = -1
		if g.err != nil && (firstAt < 0 || g.errAt < firstAt) {
			firstErr, firstAt = g.err, g.errAt
		}
	}
	return firstErr
}

// growRecv appends a recvGroup slot for node `to`, reusing capacity.
func (e *tickEngine) growRecv(to int) int {
	if len(e.recv) < cap(e.recv) {
		e.recv = e.recv[:len(e.recv)+1]
	} else {
		e.recv = append(e.recv, recvGroup{})
	}
	g := &e.recv[len(e.recv)-1]
	g.to = to
	g.idxs = g.idxs[:0]
	g.err = nil
	g.errAt = -1
	return len(e.recv) - 1
}

// runWakes executes the tick's due wake-ups in stages of
// plan-then-compute, committing queued sends after each stage.
func (e *tickEngine) runWakes() error {
	s := e.s
	next := 0
	for next < len(s.nodes) {
		planned, err := e.planStage(&next)
		if err != nil {
			return err
		}
		if planned == 0 {
			break
		}
		if err := e.computeStage(); err != nil {
			return err
		}
		if err := e.commitStage(); err != nil {
			return err
		}
	}
	return nil
}

// planStage is the serial planning pass: it advances *next over due
// wakers in node-ID order — applying dynamics, snapshotting views,
// selecting peers, and planning transports exactly as the serial loop
// interleaves them — until the scan ends or the next waker is an
// inline target of a wake already planned in this stage (whose compute
// must run first to keep that node's RNG order serial).
func (e *tickEngine) planStage(next *int) (int, error) {
	s := e.s
	e.units = e.units[:0]
	for _, id := range e.taintedList {
		e.tainted[id] = false
	}
	e.taintedList = e.taintedList[:0]
	for ; *next < len(s.nodes); *next++ {
		node := s.nodes[*next]
		if node.nextWake > s.tick || s.down[node.ID] {
			continue
		}
		if e.tainted[node.ID] {
			break // planned earlier wakes deliver to it this tick
		}
		switch s.cfg.Dynamics {
		case DynamicsPeerSwap:
			s.topo.PeerSwap(node.ID, node.RNG)
		case DynamicsCyclon:
			s.sampler.Shuffle(node.ID)
		}
		u := e.growUnit()
		u.node = node
		// The snapshot is consumed here and now: a later same-tick
		// waker's PeerSwap must not be visible to this wake, exactly as
		// in the serial loop's read-during-wake ordering.
		view := s.View(node.ID)
		var err error
		u.targets, err = e.planner.PlanTargets(node, view, len(s.nodes), u.targets[:0])
		if err != nil {
			return 0, fmt.Errorf("gossip: node %d wake at tick %d: %w", node.ID, s.tick, err)
		}
		wireBytes := wire.ParamsWireSize(node.Model.NumParams())
		for _, to := range u.targets {
			if to < 0 || to >= len(s.nodes) {
				err := fmt.Errorf("%w: send to unknown node %d", ErrProtocol, to)
				return 0, fmt.Errorf("gossip: node %d wake at tick %d: %w", node.ID, s.tick, err)
			}
			s.messagesSent++
			s.bytesSent += wireBytes
			if s.down[to] {
				s.messagesDropped++
				u.sends = append(u.sends, plannedSend{to: to, mode: sendDropped})
				continue
			}
			deliverAt, dropped := s.transport.Plan(s.tick, node.ID, to, wireBytes)
			if dropped {
				s.messagesDropped++
				u.sends = append(u.sends, plannedSend{to: to, mode: sendDropped})
				continue
			}
			if deliverAt <= s.tick {
				u.sends = append(u.sends, plannedSend{to: to, mode: sendInline})
				if !e.tainted[to] {
					e.tainted[to] = true
					e.taintedList = append(e.taintedList, to)
				}
				continue
			}
			s.messagesDelayed++
			u.sends = append(u.sends, plannedSend{to: to, deliverAt: deliverAt, mode: sendQueued})
		}
		node.nextWake = s.tick + node.interval
	}
	return len(e.units), nil
}

// growUnit appends a unit slot, reusing target/send capacity.
func (e *tickEngine) growUnit() *tickUnit {
	if len(e.units) < cap(e.units) {
		e.units = e.units[:len(e.units)+1]
	} else {
		e.units = append(e.units, tickUnit{})
	}
	u := &e.units[len(e.units)-1]
	u.node = nil
	u.sends = u.sends[:0]
	u.err = nil
	return u
}

// computeStage cuts the stage's units into contiguous conflict-free
// batches and runs each batch's wakes concurrently. Units touch their
// waker plus their inline targets; a unit whose touch set intersects
// the current batch starts the next one, so conflicting wakes keep
// their serial order across the batch barrier.
func (e *tickEngine) computeStage() error {
	clear := func() {
		for _, id := range e.touchedList {
			e.touched[id] = false
		}
		e.touchedList = e.touchedList[:0]
	}
	mark := func(id int) {
		if !e.touched[id] {
			e.touched[id] = true
			e.touchedList = append(e.touchedList, id)
		}
	}
	batchLo := 0
	flush := func(hi int) error {
		if hi > batchLo {
			if err := e.runBatch(batchLo, hi); err != nil {
				return err
			}
		}
		batchLo = hi
		clear()
		return nil
	}
	for i := range e.units {
		u := &e.units[i]
		conflict := e.touched[u.node.ID]
		if !conflict {
			for si := range u.sends {
				if u.sends[si].mode == sendInline && e.touched[u.sends[si].to] {
					conflict = true
					break
				}
			}
		}
		if conflict {
			if err := flush(i); err != nil {
				return err
			}
		}
		mark(u.node.ID)
		for si := range u.sends {
			if u.sends[si].mode == sendInline {
				mark(u.sends[si].to)
			}
		}
	}
	return flush(len(e.units))
}

// runBatch executes units [lo, hi) concurrently and reports the error
// of the lowest-index failing unit — the wake the serial loop would
// have failed on first.
func (e *tickEngine) runBatch(lo, hi int) error {
	par.ForEach(e.workers, hi-lo, func(i int) {
		u := &e.units[lo+i]
		u.err = e.runUnit(u)
	})
	for i := lo; i < hi; i++ {
		if err := e.units[i].err; err != nil {
			return err
		}
	}
	return nil
}

// runUnit performs one wake's compute: the protocol's local work, then
// its planned sends — inline deliveries on this goroutine (the batch
// guarantees exclusive access to the targets), queued payload copies
// for the commit pass.
func (e *tickEngine) runUnit(u *tickUnit) error {
	s := e.s
	if err := e.planner.ComputeWake(u.node); err != nil {
		return fmt.Errorf("gossip: node %d wake at tick %d: %w", u.node.ID, s.tick, err)
	}
	params := u.node.Model.Params()
	for si := range u.sends {
		p := &u.sends[si]
		switch p.mode {
		case sendInline:
			msg := Message{From: u.node.ID}
			if s.syncRecv {
				msg.Params = params
			} else {
				buf := s.pool.Get(len(params))
				copy(buf, params)
				msg.Params = buf
			}
			if err := s.protocol.OnReceive(s.nodes[p.to], msg); err != nil {
				return fmt.Errorf("gossip: node %d wake at tick %d: %w", u.node.ID, s.tick, err)
			}
		case sendQueued:
			buf := s.pool.Get(len(params))
			copy(buf, params)
			p.buf = buf
		}
	}
	return nil
}

// commitStage schedules the stage's queued sends into the transport in
// (waker, send) order — the serial loop's send order, preserving the
// delivery heap's FIFO tie-break for same-tick deliveries.
func (e *tickEngine) commitStage() error {
	s := e.s
	for ui := range e.units {
		u := &e.units[ui]
		for si := range u.sends {
			p := &u.sends[si]
			if p.mode != sendQueued || p.buf == nil {
				continue
			}
			s.transport.Schedule(netmodel.Delivery{
				From: u.node.ID, To: p.to, SentTick: s.tick, DeliverAt: p.deliverAt, Params: p.buf,
			})
			p.buf = nil
		}
	}
	return nil
}
