package gossip

import (
	"fmt"

	"gossipmia/internal/netmodel"
	"gossipmia/internal/par"
	"gossipmia/internal/wire"
)

// This file implements node-parallel tick execution: a single arm's
// tick loop fanned out over worker goroutines while staying
// byte-identical to the serial loop in simulator.go.
//
// Each tick runs in phases:
//
//  1. Churn transitions (serial, unchanged).
//  2. Due queued deliveries, grouped by receiver and handed to the
//     protocol concurrently on the engine's worker pool — per-receiver
//     drain order preserved. OnReceive touches only receiver-local
//     state (model, inbox, the node's own RNG), so receivers commute.
//  3. Wake-ups, in one or more stages. Every stage is a serial
//     *planning* pass followed by a parallel *compute* pass:
//
//     Planning walks due wakers in node-ID order and performs exactly
//     the shared-state work the serial loop would: topology dynamics
//     (PeerSwap / Cyclon shuffles mutate the shared graph or sampler),
//     a view snapshot, the protocol's peer selection
//     (WakePlanner.PlanTargets, drawing the node's own RNG in serial
//     order), and the transport's per-send Plan calls — whose drop
//     coins and counters consume the shared stream in exactly the
//     serial send order (ascending waker ID, view order within a
//     wake).
//
//     Compute packs the planned wakes into conflict-free batches by
//     greedy precedence coloring over the touch-set interference
//     graph (see computeStage) and runs each batch's wakes
//     concurrently on the engine's persistent worker pool: each
//     wake's local work (WakePlanner.ComputeWake — merge pending
//     models, train) plus its inline deliveries (protocol.OnReceive
//     on the target, for transports that deliver at the send tick).
//     Two wakes conflict when their touched node sets — the waker
//     plus its inline targets — intersect; conflicting wakes are
//     assigned strictly increasing colors, so they execute in serial
//     order with a barrier between their batches, while
//     non-conflicting wakes share a batch regardless of where they
//     sit in node-ID order.
//
//     For protocols whose OnReceive can advance the receiver's RNG
//     (training on receive, like BaseGossip), a stage ends early when
//     the next due waker is itself an inline target of an
//     already-planned wake: in the serial loop that node's
//     receive-triggered training draws from its RNG *before* its own
//     wake draws, so its planning must wait until the earlier wakes
//     have computed. Protocols that implement PassiveReceiver
//     (standard SAMO — OnReceive only appends to the inbox) have no
//     such draw, so the whole tick plans in a single stage and the
//     coloring alone enforces the compute order — including a waker
//     that receives before (or after) its own wake in serial order.
//
//  4. Commit (serial): queued sends copied during compute are pushed
//     into the transport's delivery heap in (waker, send) order — the
//     exact order the serial loop's Send calls would have scheduled
//     them, preserving the heap's FIFO tie-break.
//
// Because planning preserves every shared-RNG draw and counter update
// in serial order, compute touches only node-local state under mutual
// exclusion with conflicting units ordered as the serial loop orders
// them, and commit preserves queue order, the observable run — every
// parameter byte, every counter, every error — equals the serial
// loop's for any worker count. Protocols opt in via WakePlanner;
// Epidemic cannot (its fanout sampling draws *after* training), so it
// keeps the serial loop.

// WakePlanner is implemented by protocols whose wake-time peer
// selection can run ahead of the wake's local work without changing
// the node's RNG draw order — i.e. OnWake's selection draws (if any)
// happen before any other RNG use of the wake. The parallel tick
// engine then splits a wake into PlanTargets (serial planning pass)
// and ComputeWake (parallel compute pass), and transmits
// node.Model.Params() to the planned targets itself, exactly as OnWake
// would after its local work.
type WakePlanner interface {
	// PlanTargets appends the peers this wake will send to, in send
	// order, to dst and returns it. It must consume exactly the
	// node-RNG draws OnWake performs for peer selection, and must
	// report the same error OnWake would for an unusable view.
	PlanTargets(node *Node, view []int, size int, dst []int) ([]int, error)
	// ComputeWake performs the wake's local work — merging pending
	// models, training — without sending.
	ComputeWake(node *Node) error
}

var (
	_ WakePlanner = BaseGossip{}
	_ WakePlanner = SAMO{}
)

// SchedStats describes the schedule the node-parallel engine executed
// for one run: how many wake-ups it planned and how tightly it packed
// them into conflict-free batches. Units/Batches — Occupancy — is the
// average number of wakes running concurrently between barriers, the
// machine-independent upper bound on the intra-arm speedup the
// schedule can deliver: on a host with enough cores, wall-clock
// wake-compute time approaches (serial time) / Occupancy.
type SchedStats struct {
	// Ticks executed on the parallel engine.
	Ticks int
	// Stages is the number of plan/compute/commit rounds (one per tick
	// for PassiveReceiver protocols; taint breaks add more).
	Stages int
	// Batches is the number of conflict-free batches computed; each
	// batch boundary is a barrier.
	Batches int
	// Units is the total number of planned wake-ups.
	Units int
}

// Occupancy returns Units/Batches, the schedule's average parallelism
// (1.0 = fully serialized wake compute).
func (st SchedStats) Occupancy() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.Units) / float64(st.Batches)
}

// sendMode classifies a planned transmission.
type sendMode uint8

const (
	sendDropped sendMode = iota // lost: failure model, partition, or offline receiver
	sendInline                  // delivered at the send tick, inside the compute pass
	sendQueued                  // scheduled into the delivery heap at commit
)

// plannedSend is one transmission whose fate the planning pass fixed.
type plannedSend struct {
	to        int
	deliverAt int
	mode      sendMode
	buf       []float64 // queued payload, copied during compute
}

// tickUnit is one planned wake-up.
type tickUnit struct {
	node    *Node
	targets []int
	sends   []plannedSend
	err     error
}

// recvGroup is one receiver's due deliveries for the current tick, in
// drain order.
type recvGroup struct {
	to    int
	idxs  []int // indices into Simulator.drainBuf
	err   error
	errAt int // drain index of the failing delivery, for deterministic reporting
}

// tickEngine holds the reusable scratch of the parallel tick loop.
type tickEngine struct {
	s       *Simulator
	planner WakePlanner
	workers int
	// passive marks a PassiveReceiver protocol: inline deliveries do
	// not advance the receiver's RNG, so planning never needs to wait
	// for compute and each tick is a single stage.
	passive bool
	// pool is the engine's persistent worker pool: batches are handed
	// off over channels instead of spawning goroutines per batch.
	pool *par.Pool

	units       []tickUnit
	recv        []recvGroup
	group       []int  // node -> recvGroup index this tick, -1 when none
	tainted     []bool // per-node inline-target marks of the current stage
	taintedList []int

	// Precedence-coloring scratch (computeStage). nodeColor[id] is the
	// color of the latest unit touching node id, valid only when
	// nodeEpoch[id] == epoch — epoch stamping makes per-stage resets
	// O(1) instead of O(nodes).
	nodeColor []int
	nodeEpoch []int
	epoch     int
	colors    []int // per-unit color
	counts    []int // per-color unit count, then the fill cursor
	starts    []int // color -> start offset into order
	order     []int // unit indices grouped by color, serial order within

	// Batch execution state read by the prebound pool closure.
	batchBase int
	// minFail is the lowest-index unit that failed in this stage
	// (len(units) when none): units above it are skipped so the engine
	// reports exactly the error the serial loop would have hit first.
	minFail int

	runUnitFn func(int)
	recvFn    func(int)

	stats SchedStats
}

// newTickEngine assembles the engine and its persistent pool.
func newTickEngine(s *Simulator, planner WakePlanner, workers int) *tickEngine {
	e := &tickEngine{
		s:         s,
		planner:   planner,
		workers:   workers,
		pool:      par.NewPool(workers),
		group:     make([]int, len(s.nodes)),
		tainted:   make([]bool, len(s.nodes)),
		nodeColor: make([]int, len(s.nodes)),
		nodeEpoch: make([]int, len(s.nodes)),
	}
	for i := range e.group {
		e.group[i] = -1
	}
	if pr, ok := s.protocol.(PassiveReceiver); ok {
		e.passive = pr.ReceivesPassively()
	}
	e.runUnitFn = func(i int) {
		u := &e.units[e.order[e.batchBase+i]]
		u.err = e.runUnit(u)
	}
	e.recvFn = func(gi int) { e.runRecvGroup(gi) }
	return e
}

// close releases the engine's worker pool.
func (e *tickEngine) close() { e.pool.Close() }

// runParallel is Run on the node-parallel engine.
func (s *Simulator) runParallel(observer Observer, planner WakePlanner, workers int) error {
	e := newTickEngine(s, planner, workers)
	defer e.close()
	defer func() { s.sched = e.stats }()
	totalTicks := s.cfg.Rounds * s.cfg.TicksPerRound
	for ; s.tick < totalTicks; s.tick++ {
		e.stats.Ticks++
		s.applyChurn()
		if err := e.deliverDue(); err != nil {
			return err
		}
		if err := e.runWakes(); err != nil {
			return err
		}
		if err := s.observeTick(observer); err != nil {
			return err
		}
	}
	return nil
}

// deliverDue is the parallel counterpart of Simulator.deliverDue:
// deliveries to offline nodes are screened out serially (counters and
// arena recycling), the rest are grouped by receiver and processed
// concurrently with per-receiver drain order preserved. On failure the
// error of the earliest drained delivery is reported, matching the
// serial loop's first-failure semantics.
func (e *tickEngine) deliverDue() error {
	s := e.s
	if s.transport.Pending() == 0 {
		return nil
	}
	s.drainBuf = s.transport.Drain(s.drainBuf[:0], s.tick)
	e.recv = e.recv[:0]
	for i := range s.drainBuf {
		d := &s.drainBuf[i]
		if s.down[d.To] {
			s.messagesDropped++
			s.pool.Put(d.Params)
			d.Params = nil
			continue
		}
		gi := e.group[d.To]
		if gi < 0 {
			gi = e.growRecv(d.To)
			e.group[d.To] = gi
		}
		e.recv[gi].idxs = append(e.recv[gi].idxs, i)
	}
	e.pool.ForEach(len(e.recv), e.recvFn)
	var firstErr error
	firstAt := -1
	for gi := range e.recv {
		g := &e.recv[gi]
		e.group[g.to] = -1
		if g.err != nil && (firstAt < 0 || g.errAt < firstAt) {
			firstErr, firstAt = g.err, g.errAt
		}
	}
	return firstErr
}

// runRecvGroup drains one receiver's due deliveries in drain order.
func (e *tickEngine) runRecvGroup(gi int) {
	s := e.s
	g := &e.recv[gi]
	for _, di := range g.idxs {
		d := &s.drainBuf[di]
		params := d.Params
		d.Params = nil
		err := s.protocol.OnReceive(s.nodes[d.To], Message{From: d.From, Params: params})
		if s.syncRecv {
			s.pool.Put(params) // VecPool is safe for concurrent use
		}
		if err != nil {
			g.err = fmt.Errorf("gossip: deliver %d->%d at tick %d: %w", d.From, d.To, s.tick, err)
			g.errAt = di
			return
		}
	}
}

// growRecv appends a recvGroup slot for node `to`, reusing capacity.
func (e *tickEngine) growRecv(to int) int {
	if len(e.recv) < cap(e.recv) {
		e.recv = e.recv[:len(e.recv)+1]
	} else {
		e.recv = append(e.recv, recvGroup{})
	}
	g := &e.recv[len(e.recv)-1]
	g.to = to
	g.idxs = g.idxs[:0]
	g.err = nil
	g.errAt = -1
	return len(e.recv) - 1
}

// runWakes executes the tick's due wake-ups in stages of
// plan-then-compute, committing queued sends after each stage.
func (e *tickEngine) runWakes() error {
	s := e.s
	next := 0
	for next < len(s.nodes) {
		planned, err := e.planStage(&next)
		if err != nil {
			return err
		}
		if planned == 0 {
			break
		}
		e.stats.Stages++
		e.stats.Units += planned
		if err := e.computeStage(); err != nil {
			return err
		}
		if err := e.commitStage(); err != nil {
			return err
		}
	}
	return nil
}

// planStage is the serial planning pass: it advances *next over due
// wakers in node-ID order — applying dynamics, snapshotting views,
// selecting peers, and planning transports exactly as the serial loop
// interleaves them — until the scan ends or (for protocols whose
// OnReceive advances the receiver's RNG) the next waker is an inline
// target of a wake already planned in this stage, whose compute must
// run first to keep that node's RNG order serial. PassiveReceiver
// protocols never break: their receive path is an inbox append, so a
// tainted waker's planning reads the same RNG state either way, and
// the compute-order hazard is handled by the precedence coloring.
func (e *tickEngine) planStage(next *int) (int, error) {
	s := e.s
	e.units = e.units[:0]
	if !e.passive {
		for _, id := range e.taintedList {
			e.tainted[id] = false
		}
		e.taintedList = e.taintedList[:0]
	}
	for ; *next < len(s.nodes); *next++ {
		node := s.nodes[*next]
		if node.nextWake > s.tick || s.down[node.ID] {
			continue
		}
		if !e.passive && e.tainted[node.ID] {
			break // planned earlier wakes deliver to it this tick
		}
		switch s.cfg.Dynamics {
		case DynamicsPeerSwap:
			s.topo.PeerSwap(node.ID, node.RNG)
		case DynamicsCyclon:
			s.sampler.Shuffle(node.ID)
		}
		u := e.growUnit()
		u.node = node
		// The snapshot is consumed here and now: a later same-tick
		// waker's PeerSwap must not be visible to this wake, exactly as
		// in the serial loop's read-during-wake ordering.
		view := s.View(node.ID)
		var err error
		u.targets, err = e.planner.PlanTargets(node, view, len(s.nodes), u.targets[:0])
		if err != nil {
			return 0, fmt.Errorf("gossip: node %d wake at tick %d: %w", node.ID, s.tick, err)
		}
		wireBytes := wire.ParamsWireSize(node.Model.NumParams())
		for _, to := range u.targets {
			if to < 0 || to >= len(s.nodes) {
				err := fmt.Errorf("%w: send to unknown node %d", ErrProtocol, to)
				return 0, fmt.Errorf("gossip: node %d wake at tick %d: %w", node.ID, s.tick, err)
			}
			s.messagesSent++
			s.bytesSent += wireBytes
			if s.down[to] {
				s.messagesDropped++
				u.sends = append(u.sends, plannedSend{to: to, mode: sendDropped})
				continue
			}
			deliverAt, dropped := s.transport.Plan(s.tick, node.ID, to, wireBytes)
			if dropped {
				s.messagesDropped++
				u.sends = append(u.sends, plannedSend{to: to, mode: sendDropped})
				continue
			}
			if deliverAt <= s.tick {
				u.sends = append(u.sends, plannedSend{to: to, mode: sendInline})
				if !e.passive && !e.tainted[to] {
					e.tainted[to] = true
					e.taintedList = append(e.taintedList, to)
				}
				continue
			}
			s.messagesDelayed++
			u.sends = append(u.sends, plannedSend{to: to, deliverAt: deliverAt, mode: sendQueued})
		}
		node.nextWake = s.tick + node.interval
	}
	return len(e.units), nil
}

// growUnit appends a unit slot, reusing target/send capacity.
func (e *tickEngine) growUnit() *tickUnit {
	if len(e.units) < cap(e.units) {
		e.units = e.units[:len(e.units)+1]
	} else {
		e.units = append(e.units, tickUnit{})
	}
	u := &e.units[len(e.units)-1]
	u.node = nil
	u.sends = u.sends[:0]
	u.err = nil
	return u
}

// computeStage packs the stage's units into conflict-free batches by
// greedy precedence coloring and runs each batch concurrently.
//
// A unit's touch set is its waker plus its inline-delivery targets.
// Walking units in serial (node-ID) order, each unit takes the
// smallest color strictly greater than every earlier conflicting
// unit's color: color(i) = 1 + max over touched nodes of the latest
// color stamped there (0 when untouched). Batches execute in color
// order with a barrier between colors, so every conflicting pair runs
// in serial order across a barrier, while non-conflicting units share
// a batch no matter how far apart they sit in node-ID order. The old
// scheduler cut batches as *contiguous runs* of the serial order at
// the first conflict, which under dense wakes degenerated to
// near-serial schedules (~1.2 units/batch on the dense-wake arm);
// coloring packs the same stage into near-minimal barriers while
// computing byte-identical results.
func (e *tickEngine) computeStage() error {
	n := len(e.units)
	if n == 0 {
		return nil
	}
	e.epoch++
	if cap(e.colors) < n {
		e.colors = make([]int, n)
		e.order = make([]int, n)
	}
	e.colors = e.colors[:n]
	e.order = e.order[:n]
	maxColor := 0
	for i := range e.units {
		u := &e.units[i]
		c := 0
		if e.nodeEpoch[u.node.ID] == e.epoch {
			c = e.nodeColor[u.node.ID] + 1
		}
		for si := range u.sends {
			p := &u.sends[si]
			if p.mode != sendInline {
				continue
			}
			if e.nodeEpoch[p.to] == e.epoch && e.nodeColor[p.to]+1 > c {
				c = e.nodeColor[p.to] + 1
			}
		}
		e.colors[i] = c
		if c > maxColor {
			maxColor = c
		}
		e.nodeColor[u.node.ID] = c
		e.nodeEpoch[u.node.ID] = e.epoch
		for si := range u.sends {
			p := &u.sends[si]
			if p.mode == sendInline {
				e.nodeColor[p.to] = c
				e.nodeEpoch[p.to] = e.epoch
			}
		}
	}
	// Counting sort by color: order holds unit indices grouped by
	// color, ascending (= serial) order within each color.
	nc := maxColor + 1
	if cap(e.counts) < nc {
		e.counts = make([]int, nc)
		e.starts = make([]int, nc+1)
	}
	e.counts = e.counts[:nc]
	e.starts = e.starts[:nc+1]
	for c := range e.counts {
		e.counts[c] = 0
	}
	for _, c := range e.colors {
		e.counts[c]++
	}
	sum := 0
	for c := 0; c < nc; c++ {
		e.starts[c] = sum
		sum += e.counts[c]
		e.counts[c] = e.starts[c] // becomes the fill cursor
	}
	e.starts[nc] = sum
	for i, c := range e.colors {
		e.order[e.counts[c]] = i
		e.counts[c]++
	}
	// Execute color batches in order. After a failure, only units that
	// precede the earliest failure in serial order keep running — they
	// are exactly the units the serial loop would still have executed,
	// and their conflicts all sit in earlier colors, so the reported
	// error is the serial loop's first error.
	e.minFail = n
	for c := 0; c < nc; c++ {
		lo, hi := e.starts[c], e.starts[c+1]
		for hi > lo && e.order[hi-1] > e.minFail {
			hi--
		}
		if hi <= lo {
			continue
		}
		e.stats.Batches++
		e.batchBase = lo
		e.pool.ForEach(hi-lo, e.runUnitFn)
		for j := lo; j < hi; j++ {
			ui := e.order[j]
			if e.units[ui].err != nil && ui < e.minFail {
				e.minFail = ui
			}
		}
	}
	if e.minFail < n {
		return e.units[e.minFail].err
	}
	return nil
}

// runUnit performs one wake's compute: the protocol's local work, then
// its planned sends — inline deliveries on this goroutine (the batch
// guarantees exclusive access to the targets), queued payload copies
// for the commit pass.
func (e *tickEngine) runUnit(u *tickUnit) error {
	s := e.s
	if err := e.planner.ComputeWake(u.node); err != nil {
		return fmt.Errorf("gossip: node %d wake at tick %d: %w", u.node.ID, s.tick, err)
	}
	params := u.node.Model.Params()
	for si := range u.sends {
		p := &u.sends[si]
		switch p.mode {
		case sendInline:
			msg := Message{From: u.node.ID}
			if s.syncRecv {
				msg.Params = params
			} else {
				buf := s.pool.Get(len(params))
				copy(buf, params)
				msg.Params = buf
			}
			if err := s.protocol.OnReceive(s.nodes[p.to], msg); err != nil {
				return fmt.Errorf("gossip: node %d wake at tick %d: %w", u.node.ID, s.tick, err)
			}
		case sendQueued:
			buf := s.pool.Get(len(params))
			copy(buf, params)
			p.buf = buf
		}
	}
	return nil
}

// commitStage schedules the stage's queued sends into the transport in
// (waker, send) order — the serial loop's send order, preserving the
// delivery heap's FIFO tie-break for same-tick deliveries.
func (e *tickEngine) commitStage() error {
	s := e.s
	for ui := range e.units {
		u := &e.units[ui]
		for si := range u.sends {
			p := &u.sends[si]
			if p.mode != sendQueued || p.buf == nil {
				continue
			}
			s.transport.Schedule(netmodel.Delivery{
				From: u.node.ID, To: p.to, SentTick: s.tick, DeliverAt: p.deliverAt, Params: p.buf,
			})
			p.buf = nil
		}
	}
	return nil
}
