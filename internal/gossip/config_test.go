package gossip

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"gossipmia/internal/netmodel"
)

// validBase is a minimal valid, already-defaulted configuration that
// each case below perturbs into exactly one error path.
func validBase() Config {
	return Config{Nodes: 10, ViewSize: 3, Rounds: 5}.Defaulted()
}

func TestConfigValidateErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantMsg string
	}{
		{"too few nodes", func(c *Config) { c.Nodes = 1 }, "at least 2 nodes"},
		{"zero view", func(c *Config) { c.ViewSize = 0 }, "view size"},
		{"view >= nodes", func(c *Config) { c.ViewSize = c.Nodes }, "view size"},
		{"no rounds", func(c *Config) { c.Rounds = 0 }, "rounds"},
		{"negative rounds", func(c *Config) { c.Rounds = -3 }, "rounds"},
		{"bad ticks", func(c *Config) { c.TicksPerRound = 0 }, "ticksPerRound"},
		{"bad wake mean", func(c *Config) { c.WakeMean = 0 }, "wakeMean"},
		{"negative wake std", func(c *Config) { c.WakeStd = -1 }, "wakeStd"},
		{"drop prob one", func(c *Config) { c.DropProb = 1 }, "dropProb"},
		{"drop prob negative", func(c *Config) { c.DropProb = -0.2 }, "dropProb"},
		{"dynamics out of range", func(c *Config) { c.Dynamics = DynamicsCyclon + 1 }, "dynamics"},
		{"net invalid", func(c *Config) { c.Net = netmodel.Config{DropProb: 7} }, "net"},
		{"net bad partition", func(c *Config) {
			c.Net = netmodel.Config{Kind: netmodel.KindLossy,
				Partitions: []netmodel.Partition{{FromTick: 3, ToTick: 2, Members: []int{0}}}}
		}, "partition"},
		{"churn node out of range", func(c *Config) {
			c.Churn = []ChurnEvent{{Node: 10, LeaveTick: 1}}
		}, "churn"},
		{"churn negative node", func(c *Config) {
			c.Churn = []ChurnEvent{{Node: -1, LeaveTick: 1}}
		}, "churn"},
		{"churn negative leave tick", func(c *Config) {
			c.Churn = []ChurnEvent{{Node: 0, LeaveTick: -5}}
		}, "leaveTick"},
		{"churn rejoin equals leave", func(c *Config) {
			c.Churn = []ChurnEvent{{Node: 0, LeaveTick: 10, RejoinTick: 10}}
		}, "rejoinTick"},
		{"churn rejoin before leave", func(c *Config) {
			c.Churn = []ChurnEvent{{Node: 0, LeaveTick: 10, RejoinTick: 5}}
		}, "rejoinTick"},
		{"churn negative rejoin", func(c *Config) {
			c.Churn = []ChurnEvent{{Node: 0, LeaveTick: 10, RejoinTick: -1}}
		}, "rejoinTick"},
		{"churn overlapping windows", func(c *Config) {
			c.Churn = []ChurnEvent{
				{Node: 0, LeaveTick: 10, RejoinTick: 40},
				{Node: 0, LeaveTick: 20, RejoinTick: 50},
			}
		}, "overlap"},
	}
	for _, tc := range cases {
		cfg := validBase()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if !errors.Is(err, ErrConfig) {
			t.Fatalf("%s: error = %v, want ErrConfig", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantMsg)
		}
	}
	if err := validBase().Validate(); err != nil {
		t.Fatalf("valid base rejected: %v", err)
	}
}

// TestChurnConfigEdgeCases pins the churn schedule's validation
// boundaries: the permanent-leave zero value stays accepted, a rejoin
// at or before the leave is rejected (not silently treated as a
// permanent leave), and node indices must fit the deployment.
func TestChurnConfigEdgeCases(t *testing.T) {
	ok := validBase()
	ok.Churn = []ChurnEvent{
		{Node: 0, LeaveTick: 0},                 // permanent leave from the start
		{Node: 1, LeaveTick: 10, RejoinTick: 0}, // zero value: never rejoins
		{Node: 2, LeaveTick: 0, RejoinTick: 1},  // minimal outage window
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("permanent-leave schedules rejected: %v", err)
	}
	bad := validBase()
	bad.Churn = []ChurnEvent{{Node: bad.Nodes, LeaveTick: 1, RejoinTick: 2}}
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("out-of-range node accepted: %v", err)
	}
	bad = validBase()
	bad.Churn = []ChurnEvent{{Node: 0, LeaveTick: 7, RejoinTick: 7}}
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("rejoin == leave accepted: %v", err)
	}
	// A permanent leave overlaps every later window for the same node.
	bad = validBase()
	bad.Churn = []ChurnEvent{
		{Node: 0, LeaveTick: 5},
		{Node: 0, LeaveTick: 30, RejoinTick: 40},
	}
	if err := bad.Validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("window after a permanent leave accepted: %v", err)
	}
}

func TestConfigDefaultedRoundTrip(t *testing.T) {
	// Defaulted fills only unset timing/dynamics fields...
	c := Config{Nodes: 10, ViewSize: 3, Rounds: 5}.Defaulted()
	if c.TicksPerRound != 100 || c.WakeMean != 100 || c.WakeStd != 10 {
		t.Fatalf("paper defaults not applied: %+v", c)
	}
	if c.Dynamics != DynamicsStatic {
		t.Fatalf("dynamics default = %v, want static", c.Dynamics)
	}
	// ...is idempotent...
	if c2 := c.Defaulted(); !reflect.DeepEqual(c2, c) {
		t.Fatalf("Defaulted not idempotent: %+v vs %+v", c2, c)
	}
	// ...respects explicit values...
	explicit := Config{
		Nodes: 8, ViewSize: 2, Rounds: 3,
		TicksPerRound: 50, WakeMean: 60, WakeStd: 5,
		Dynamics: DynamicsCyclon,
	}
	if got := explicit.Defaulted(); !reflect.DeepEqual(got, explicit) {
		t.Fatalf("explicit values overwritten: %+v vs %+v", got, explicit)
	}
	// ...and resolves the Dynamic shorthand.
	dyn := Config{Nodes: 8, ViewSize: 2, Rounds: 3, Dynamic: true}.Defaulted()
	if dyn.Dynamics != DynamicsPeerSwap {
		t.Fatalf("Dynamic shorthand resolved to %v", dyn.Dynamics)
	}
}

func TestConfigDefaultedPreservesNetworkFields(t *testing.T) {
	c := Config{
		Nodes: 8, ViewSize: 2, Rounds: 3,
		Net:   netmodel.Config{Kind: netmodel.KindLatency, LatencyMean: 12},
		Churn: []ChurnEvent{{Node: 1, LeaveTick: 10, RejoinTick: 20}},
	}
	got := c.Defaulted()
	if !reflect.DeepEqual(got.Net, netmodel.Config{Kind: netmodel.KindLatency, LatencyMean: 12}) {
		t.Fatalf("Net mangled by Defaulted: %+v", got.Net)
	}
	if len(got.Churn) != 1 || got.Churn[0] != (ChurnEvent{Node: 1, LeaveTick: 10, RejoinTick: 20}) {
		t.Fatalf("Churn mangled by Defaulted: %+v", got.Churn)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("defaulted network config rejected: %v", err)
	}
}
