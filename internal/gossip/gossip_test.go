package gossip

import (
	"errors"
	"testing"

	"gossipmia/internal/data"
	"gossipmia/internal/metrics"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// testWorld builds a small, well-separated learning problem with per-node
// IID splits and a shared initial model.
func testWorld(t *testing.T, nodes, trainPer int) (*nn.MLP, []data.NodeData, *data.Dataset) {
	t.Helper()
	rng := tensor.NewRNG(99)
	gen, err := data.NewGaussianGenerator(data.GaussianConfig{
		Dim: 8, Classes: 3, Margin: 3, Noise: 0.8,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := gen.Sample(nodes*(trainPer+trainPer)+100, rng)
	parts, err := data.PartitionIID(base, nodes, trainPer, trainPer, rng)
	if err != nil {
		t.Fatal(err)
	}
	globalTest := gen.Sample(150, rng)
	model, err := nn.NewMLP([]int{8, 16, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return model, parts, globalTest
}

func testFactory() UpdaterFactory {
	return NewSGDUpdaterFactory(nn.SGDConfig{LR: 0.05}, 8, 1)
}

func TestConfigValidate(t *testing.T) {
	good := Config{Nodes: 10, ViewSize: 3, Rounds: 5}.Defaulted()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if good.TicksPerRound != 100 || good.WakeMean != 100 || good.WakeStd != 10 {
		t.Fatalf("defaults wrong: %+v", good)
	}
	bad := []Config{
		{Nodes: 1, ViewSize: 1, Rounds: 1},
		{Nodes: 10, ViewSize: 0, Rounds: 1},
		{Nodes: 10, ViewSize: 10, Rounds: 1},
		{Nodes: 10, ViewSize: 2, Rounds: 0},
		{Nodes: 10, ViewSize: 2, Rounds: 1, TicksPerRound: -1},
	}
	for i, c := range bad {
		if c.TicksPerRound == 0 {
			c = c.Defaulted()
			c.TicksPerRound = maxInt(c.TicksPerRound, 1)
		}
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, c)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestNewValidation(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	cfg := Config{Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 1}
	if _, err := New(cfg, nil, model, parts, testFactory()); !errors.Is(err, ErrConfig) {
		t.Fatalf("nil protocol error = %v", err)
	}
	if _, err := New(cfg, BaseGossip{}, model, parts[:3], testFactory()); !errors.Is(err, ErrConfig) {
		t.Fatalf("node data mismatch error = %v", err)
	}
	if _, err := New(Config{Nodes: 6, ViewSize: 9, Rounds: 1}, BaseGossip{}, model, parts, testFactory()); err == nil {
		t.Fatal("infeasible view size accepted")
	}
}

func TestBaseGossipLearns(t *testing.T) {
	model, parts, globalTest := testWorld(t, 8, 20)
	initAcc, err := metrics.Accuracy(model, globalTest)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{Nodes: 8, ViewSize: 3, Rounds: 12, Seed: 5},
		BaseGossip{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	if err := sim.Run(func(round int, s *Simulator) error {
		if round != rounds {
			t.Fatalf("observer round %d, want %d", round, rounds)
		}
		rounds++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if rounds != 12 {
		t.Fatalf("observer called %d times, want 12", rounds)
	}
	var accs []float64
	for _, node := range sim.Nodes() {
		a, err := metrics.Accuracy(node.Model, globalTest)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	mean := metrics.Mean(accs)
	if mean <= initAcc+0.1 {
		t.Fatalf("base gossip did not learn: init %.3f, final mean %.3f", initAcc, mean)
	}
}

func TestSAMOLearnsAndSendsMore(t *testing.T) {
	model, parts, globalTest := testWorld(t, 8, 20)
	k := 3

	runProto := func(p Protocol) (*Simulator, float64) {
		sim, err := New(Config{Nodes: 8, ViewSize: k, Rounds: 10, Seed: 5}, p, model, parts, testFactory())
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(nil); err != nil {
			t.Fatal(err)
		}
		var accs []float64
		for _, node := range sim.Nodes() {
			a, err := metrics.Accuracy(node.Model, globalTest)
			if err != nil {
				t.Fatal(err)
			}
			accs = append(accs, a)
		}
		return sim, metrics.Mean(accs)
	}

	baseSim, baseAcc := runProto(BaseGossip{})
	samoSim, samoAcc := runProto(SAMO{})

	if samoAcc < 0.5 || baseAcc < 0.5 {
		t.Fatalf("protocols should learn: base %.3f, samo %.3f", baseAcc, samoAcc)
	}
	// SAMO sends to all k neighbors per wake, Base to one: the message
	// count should be roughly k times larger.
	ratio := float64(samoSim.MessagesSent()) / float64(baseSim.MessagesSent())
	if ratio < float64(k)*0.7 || ratio > float64(k)*1.3 {
		t.Fatalf("message ratio %.2f, want ~%d", ratio, k)
	}
}

func TestSAMOMergeOnceSemantics(t *testing.T) {
	// Receiving a model must not change a SAMO node's parameters until
	// the next wake-up.
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 3}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	node := sim.Nodes()[0]
	before := node.Model.ParamsCopy()
	other := node.Model.ParamsCopy()
	other.Scale(2)
	if err := sim.Send(1, 0, other); err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApprox(node.Model.Params(), before, 0) {
		t.Fatal("SAMO merged on receive")
	}
	if len(node.Inbox) != 1 {
		t.Fatalf("inbox size %d, want 1", len(node.Inbox))
	}
	// On wake it merges, trains, clears the inbox, and sends to all.
	if err := (SAMO{}).OnWake(node, sim); err != nil {
		t.Fatal(err)
	}
	if len(node.Inbox) != 0 {
		t.Fatal("inbox not cleared on wake")
	}
	if tensor.EqualApprox(node.Model.Params(), before, 1e-12) {
		t.Fatal("wake with pending models did not change parameters")
	}
}

func TestSAMONoDelayAblationMergesImmediately(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	p := SAMO{MergeOnReceive: true}
	sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 3}, p, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	node := sim.Nodes()[0]
	before := node.Model.ParamsCopy()
	other := before.Clone()
	other.Scale(3)
	if err := sim.Send(1, 0, other); err != nil {
		t.Fatal(err)
	}
	if tensor.EqualApprox(node.Model.Params(), before, 1e-12) {
		t.Fatal("no-delay ablation did not merge on receive")
	}
	if len(node.Inbox) != 0 {
		t.Fatal("no-delay ablation should not store models")
	}
}

func TestDynamicKeepsGraphRegular(t *testing.T) {
	model, parts, _ := testWorld(t, 10, 10)
	sim, err := New(Config{Nodes: 10, ViewSize: 2, Dynamic: true, Rounds: 5, Seed: 7},
		SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(func(round int, s *Simulator) error {
		return s.Topology().Validate()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestObserverErrorAborts(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 10, Seed: 1}, BaseGossip{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	calls := 0
	err = sim.Run(func(round int, s *Simulator) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("observer called %d times after abort", calls)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() tensor.Vector {
		model, parts, _ := testWorld(t, 6, 10)
		sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 3, Seed: 42}, SAMO{}, model, parts, testFactory())
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(nil); err != nil {
			t.Fatal(err)
		}
		return sim.Nodes()[0].Model.ParamsCopy()
	}
	a, b := run(), run()
	if !tensor.EqualApprox(a, b, 0) {
		t.Fatal("identical seeds produced different runs")
	}
}

func TestSendToUnknownNode(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 1}, BaseGossip{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Send(0, 99, tensor.NewVector(3)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("send to unknown node error = %v", err)
	}
}

func TestBaseGossipReceiveSizeMismatch(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 1}, BaseGossip{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Send(1, 0, tensor.NewVector(3)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("size mismatch error = %v", err)
	}
}

func TestProtocolByName(t *testing.T) {
	for _, name := range []string{"base", "samo", "samo-nodelay"} {
		p, err := ProtocolByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("name round-trip: %s -> %s", name, p.Name())
		}
	}
	if _, err := ProtocolByName("nope"); !errors.Is(err, ErrProtocol) {
		t.Fatalf("unknown protocol error = %v", err)
	}
}

func TestMessageIsPrivateCopy(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 1}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	params := sim.Nodes()[1].Model.Params()
	if err := sim.Send(1, 0, params); err != nil {
		t.Fatal(err)
	}
	// Mutating the sender's params must not affect the stored message.
	stored := sim.Nodes()[0].Inbox[0].Params.Clone()
	params[0] += 1000
	if !tensor.EqualApprox(sim.Nodes()[0].Inbox[0].Params, stored, 0) {
		t.Fatal("message shares storage with sender")
	}
}
