package gossip

import (
	"fmt"
	"math"
	"testing"

	"gossipmia/internal/netmodel"
)

// runFingerprint runs one simulation and captures everything the engine
// is contracted to reproduce byte for byte: every node's final
// parameter vector (exact bits), the unmerged inbox payloads, and all
// run counters.
func runFingerprint(t *testing.T, cfg Config, protocol Protocol) string {
	t.Helper()
	model, parts, _ := testWorld(t, cfg.Nodes, 10)
	sim, err := New(cfg, protocol, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	var out []byte
	for _, node := range sim.Nodes() {
		for _, v := range node.Model.Params() {
			out = appendBits(out, v)
		}
		out = append(out, byte(len(node.Inbox)))
		for _, m := range node.Inbox {
			out = append(out, byte(m.From))
			for _, v := range m.Params {
				out = appendBits(out, v)
			}
		}
	}
	return fmt.Sprintf("sent=%d dropped=%d delayed=%d bytes=%d pending=%d|%x",
		sim.MessagesSent(), sim.MessagesDropped(), sim.MessagesDelayed(), sim.BytesSent(), sim.PendingDeliveries(), out)
}

func appendBits(dst []byte, v float64) []byte {
	b := math.Float64bits(v)
	return append(dst, byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
		byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
}

// parallelScenarios is the determinism matrix: every transport family
// (inline, queued, lossy), every dynamics mode, and churn. Wake
// intervals are deliberately short so many nodes wake in the same tick
// — forcing same-tick sender→waker collisions, multi-stage planning,
// and conflict batches, the paths where a buffered-commit engine could
// diverge from the serial loop.
func parallelScenarios() map[string]Config {
	base := Config{
		Nodes: 10, ViewSize: 3, Rounds: 3, TicksPerRound: 10,
		WakeMean: 4, WakeStd: 2, Seed: 77,
	}
	withNet := func(c Config, net netmodel.Config) Config { c.Net = net; return c }
	withChurn := func(c Config) Config {
		c.Churn = []ChurnEvent{
			{Node: 2, LeaveTick: 5, RejoinTick: 14},
			{Node: 7, LeaveTick: 9},
		}
		return c
	}
	dyn := func(c Config, d DynamicsKind) Config { c.Dynamics = d; return c }
	return map[string]Config{
		"instant/static":   base,
		"instant/peerswap": dyn(base, DynamicsPeerSwap),
		"instant/cyclon":   dyn(base, DynamicsCyclon),
		"instant/drop":     withNet(base, netmodel.Config{DropProb: 0.2}),
		"latency/static":   withNet(base, netmodel.Config{Kind: netmodel.KindLatency, LatencyMean: 3, LatencyJitter: 2}),
		"latency/churn":    withChurn(withNet(base, netmodel.Config{Kind: netmodel.KindLatency, LatencyMean: 3, LatencyJitter: 2})),
		"lossy/latency": withChurn(withNet(dyn(base, DynamicsPeerSwap), netmodel.Config{
			Kind: netmodel.KindLossy, LatencyMean: 2, LatencyJitter: 1, DropProb: 0.1,
			Partitions: []netmodel.Partition{{FromTick: 4, ToTick: 12, Members: []int{0, 1, 2, 3}}},
		})),
		"instant/churn": withChurn(base),
	}
}

// TestIntraArmDeterminismAcrossWorkers is the tentpole guard: a single
// arm's run must be byte-identical — every parameter bit, every inbox
// payload, every counter — for any Workers setting, for every protocol
// and scenario in the matrix. Run under -race this also proves the
// compute batches share no node state.
func TestIntraArmDeterminismAcrossWorkers(t *testing.T) {
	protocols := map[string]Protocol{
		"base":         BaseGossip{},
		"samo":         SAMO{},
		"samo-nodelay": SAMO{MergeOnReceive: true},
		"epidemic":     Epidemic{Fanout: 2}, // no WakePlanner: pins the serial fallback
	}
	for scName, cfg := range parallelScenarios() {
		for pName, proto := range protocols {
			t.Run(scName+"/"+pName, func(t *testing.T) {
				cfg := cfg
				cfg.Workers = 1
				want := runFingerprint(t, cfg, proto)
				for _, workers := range []int{2, 3, 8} {
					cfg.Workers = workers
					if got := runFingerprint(t, cfg, proto); got != want {
						t.Fatalf("workers=%d diverged from serial run", workers)
					}
				}
			})
		}
	}
}

// TestParallelEngineEngages makes sure the matrix above actually
// exercises the engine: with Workers > 1 and a planning protocol the
// parallel path must be taken (guarded indirectly — a waker that sends
// to itself would deadlock conflict batching; here we just pin the
// WakePlanner wiring).
func TestParallelEngineEngages(t *testing.T) {
	if _, ok := Protocol(BaseGossip{}).(WakePlanner); !ok {
		t.Fatal("BaseGossip must implement WakePlanner")
	}
	if _, ok := Protocol(SAMO{}).(WakePlanner); !ok {
		t.Fatal("SAMO must implement WakePlanner")
	}
	if _, ok := Protocol(Epidemic{}).(WakePlanner); ok {
		t.Fatal("Epidemic draws targets after training; it must not plan wakes")
	}
}

// TestPlanTargetsMatchesOnWakeSelection pins the WakePlanner contract
// for BaseGossip: planning consumes exactly the RNG draw OnWake's
// selection does, leaving the node stream in the same state.
func TestPlanTargetsMatchesOnWakeSelection(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	cfg := Config{Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 5}
	simA, err := New(cfg, BaseGossip{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	simB, err := New(cfg, BaseGossip{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	nodeA, nodeB := simA.Nodes()[0], simB.Nodes()[0]
	view := simA.View(0)
	targets, err := BaseGossip{}.PlanTargets(nodeA, view, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantView := simB.View(0)
	want := wantView[nodeB.RNG.Intn(len(wantView))]
	if len(targets) != 1 || targets[0] != want {
		t.Fatalf("planned targets %v, OnWake would pick %d", targets, want)
	}
	// Streams must now agree.
	if a, b := nodeA.RNG.Int63(), nodeB.RNG.Int63(); a != b {
		t.Fatalf("RNG streams diverged after planning: %d vs %d", a, b)
	}
}
