package gossip

import (
	"testing"

	"gossipmia/internal/metrics"
	"gossipmia/internal/netmodel"
	"gossipmia/internal/tensor"
)

func TestLatencyTransportDelaysDelivery(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{
		Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 11,
		Net: netmodel.Config{Kind: netmodel.KindLatency, LatencyMean: 5, LatencyJitter: 2},
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if sim.TransportName() != "latency" {
		t.Fatalf("transport = %q", sim.TransportName())
	}
	receiver := sim.Nodes()[1]
	if err := sim.Send(0, 1, sim.Nodes()[0].Model.Params()); err != nil {
		t.Fatal(err)
	}
	// Nothing arrives on the sender's call stack: the message is queued.
	if len(receiver.Inbox) != 0 {
		t.Fatal("latency transport delivered inline")
	}
	if sim.MessagesDelayed() != 1 || sim.PendingDeliveries() != 1 {
		t.Fatalf("delayed=%d pending=%d, want 1/1", sim.MessagesDelayed(), sim.PendingDeliveries())
	}
}

func TestLatencyTransportEventuallyDelivers(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{
		Nodes: 6, ViewSize: 2, Rounds: 3, Seed: 11,
		Net: netmodel.Config{Kind: netmodel.KindLatency, LatencyMean: 10, LatencyJitter: 3},
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	if sim.MessagesDelayed() == 0 {
		t.Fatal("no messages took the delivery queue")
	}
	delivered := sim.MessagesSent() - sim.MessagesDropped() - sim.PendingDeliveries()
	if delivered <= 0 {
		t.Fatalf("nothing delivered: sent=%d dropped=%d pending=%d",
			sim.MessagesSent(), sim.MessagesDropped(), sim.PendingDeliveries())
	}
}

func TestLearningSurvivesLatency(t *testing.T) {
	model, parts, globalTest := testWorld(t, 8, 20)
	sim, err := New(Config{
		Nodes: 8, ViewSize: 3, Rounds: 12, Seed: 5,
		Net: netmodel.Config{Kind: netmodel.KindLatency, LatencyMean: 30, LatencyJitter: 10},
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	var accs []float64
	for _, node := range sim.Nodes() {
		a, err := metrics.Accuracy(node.Model, globalTest)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	if mean := metrics.Mean(accs); mean < 0.6 {
		t.Fatalf("mean accuracy under latency = %v, want >= 0.6", mean)
	}
}

func TestLatencyRunsAreDeterministic(t *testing.T) {
	run := func(protocol string) tensor.Vector {
		model, parts, _ := testWorld(t, 6, 10)
		proto, err := ProtocolByName(protocol)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(Config{
			Nodes: 6, ViewSize: 2, Rounds: 3, Seed: 42,
			Net: netmodel.Config{
				Kind: netmodel.KindLatency, LatencyMean: 8, LatencyJitter: 4,
				BandwidthBytesPerTick: 2048,
			},
		}, proto, model, parts, testFactory())
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(nil); err != nil {
			t.Fatal(err)
		}
		return sim.Nodes()[0].Model.ParamsCopy()
	}
	// base is a SyncReceiver (queued payloads recycled after the merge);
	// samo retains them in the inbox — both must be reproducible.
	for _, protocol := range []string{"base", "samo"} {
		if !tensor.EqualApprox(run(protocol), run(protocol), 0) {
			t.Fatalf("%s: identical seeds produced different latency runs", protocol)
		}
	}
}

func TestPartitionBlocksCrossCutTraffic(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	total := 3 * 100 // Rounds * default TicksPerRound
	sim, err := New(Config{
		Nodes: 6, ViewSize: 2, Rounds: 3, Seed: 9,
		Net: netmodel.Config{
			Kind: netmodel.KindLossy,
			// Split the whole run (and the post-run probes below):
			// nodes {0,1,2} vs {3,4,5}.
			Partitions: []netmodel.Partition{{FromTick: 0, ToTick: total + 100, Members: []int{0, 1, 2}}},
		},
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	if sim.MessagesDropped() == 0 {
		t.Fatal("full-run partition dropped nothing (topology likely crosses the cut)")
	}
	// Directly probe the cut and its absence within a side.
	dropped := sim.MessagesDropped()
	if err := sim.Send(0, 3, sim.Nodes()[0].Model.Params()); err != nil {
		t.Fatal(err)
	}
	if sim.MessagesDropped() != dropped+1 {
		t.Fatal("cross-cut send survived an active partition")
	}
	if err := sim.Send(3, 4, sim.Nodes()[3].Model.Params()); err != nil {
		t.Fatal(err)
	}
	if sim.MessagesDropped() != dropped+1 {
		t.Fatal("same-side send was dropped")
	}
}

func TestPartitionHeals(t *testing.T) {
	model, parts, globalTest := testWorld(t, 8, 20)
	// Partition the middle third of the run, then let it heal.
	total := 12 * 100
	sim, err := New(Config{
		Nodes: 8, ViewSize: 3, Rounds: 12, Seed: 5,
		Net: netmodel.Config{
			Kind:       netmodel.KindLossy,
			Partitions: []netmodel.Partition{{FromTick: total / 3, ToTick: 2 * total / 3, Members: []int{0, 1, 2, 3}}},
		},
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	if sim.MessagesDropped() == 0 {
		t.Fatal("partition window dropped nothing")
	}
	var accs []float64
	for _, node := range sim.Nodes() {
		a, err := metrics.Accuracy(node.Model, globalTest)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, a)
	}
	if mean := metrics.Mean(accs); mean < 0.6 {
		t.Fatalf("mean accuracy after healed partition = %v, want >= 0.6", mean)
	}
}

func TestChurnNodeMissesTrafficButKeepsModel(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	// Node 0 leaves at tick 0 and rejoins for the last round.
	sim, err := New(Config{
		Nodes: 6, ViewSize: 2, Rounds: 3, Seed: 13,
		Churn: []ChurnEvent{{Node: 0, LeaveTick: 0, RejoinTick: 200}},
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	initial := sim.Nodes()[0].Model.ParamsCopy()
	sawDown := false
	if err := sim.Run(func(round int, s *Simulator) error {
		if round == 0 {
			sawDown = s.NodeDown(0)
			// While down the node neither wakes nor merges: its model is
			// still the shared initial model.
			if !tensor.EqualApprox(s.Nodes()[0].Model.Params(), initial, 0) {
				t.Fatal("offline node's model changed")
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawDown {
		t.Fatal("node 0 was not down in round 0")
	}
	if sim.NodeDown(0) {
		t.Fatal("node 0 did not rejoin")
	}
	// After rejoining it wakes and trains again.
	if tensor.EqualApprox(sim.Nodes()[0].Model.Params(), initial, 0) {
		t.Fatal("rejoined node never progressed")
	}
	if sim.MessagesDropped() == 0 {
		t.Fatal("no traffic to the offline node was lost")
	}
}

func TestChurnPermanentDeparture(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{
		Nodes: 6, ViewSize: 2, Rounds: 2, Seed: 13,
		Churn: []ChurnEvent{{Node: 2, LeaveTick: 50}}, // RejoinTick 0: never
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	if !sim.NodeDown(2) {
		t.Fatal("permanently departed node came back")
	}
}

func TestChurnLosesInFlightMessages(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{
		Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 3,
		Net:   netmodel.Config{Kind: netmodel.KindLatency, LatencyMean: 10},
		Churn: []ChurnEvent{{Node: 1, LeaveTick: 5, RejoinTick: 90}},
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	// Queue a message at tick 0 that lands inside node 1's outage.
	if err := sim.Send(0, 1, sim.Nodes()[0].Model.Params()); err != nil {
		t.Fatal(err)
	}
	if sim.PendingDeliveries() != 1 {
		t.Fatalf("pending = %d, want 1", sim.PendingDeliveries())
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	if sim.MessagesDropped() == 0 {
		t.Fatal("in-flight message to a churned-out node survived")
	}
}

func TestChurnDeliveryDueAfterRejoinArrives(t *testing.T) {
	// The documented semantics: a queued delivery coming due during the
	// outage is lost, one coming due after the rejoin still arrives.
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{
		Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 3,
		Net:   netmodel.Config{Kind: netmodel.KindLatency, LatencyMean: 10}, // jitter 0: exactly 10 ticks
		Churn: []ChurnEvent{{Node: 1, LeaveTick: 2, RejoinTick: 8}},
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Send(0, 1, sim.Nodes()[0].Model.Params()); err != nil {
		t.Fatal(err) // queued at tick 0, due tick 10 — after the rejoin
	}
	// Drive ticks 0..11 through churn and delivery only (no wakes, so no
	// other traffic muddies the counters).
	for ; sim.tick < 12; sim.tick++ {
		sim.applyChurn()
		if err := sim.deliverDue(); err != nil {
			t.Fatal(err)
		}
	}
	if sim.MessagesDropped() != 0 {
		t.Fatalf("post-rejoin delivery dropped (%d drops)", sim.MessagesDropped())
	}
	if len(sim.Nodes()[1].Inbox) != 1 {
		t.Fatalf("inbox = %d, want the late delivery", len(sim.Nodes()[1].Inbox))
	}
}

func TestChurnOverlapRejected(t *testing.T) {
	base := Config{Nodes: 6, ViewSize: 2, Rounds: 1}
	overlapping := [][]ChurnEvent{
		{{Node: 0, LeaveTick: 10, RejoinTick: 40}, {Node: 0, LeaveTick: 20, RejoinTick: 30}},
		{{Node: 0, LeaveTick: 10}, {Node: 0, LeaveTick: 50, RejoinTick: 60}}, // first never rejoins
		{{Node: 0, LeaveTick: 20, RejoinTick: 30}, {Node: 0, LeaveTick: 10, RejoinTick: 25}},
	}
	for i, churn := range overlapping {
		cfg := base
		cfg.Churn = churn
		if err := cfg.Defaulted().Validate(); err == nil {
			t.Fatalf("overlapping schedule %d accepted", i)
		}
	}
	ok := base
	ok.Churn = []ChurnEvent{
		{Node: 0, LeaveTick: 10, RejoinTick: 20},
		{Node: 0, LeaveTick: 20, RejoinTick: 30}, // back-to-back is fine
		{Node: 1, LeaveTick: 15, RejoinTick: 25}, // other nodes independent
	}
	if err := ok.Defaulted().Validate(); err != nil {
		t.Fatalf("disjoint schedule rejected: %v", err)
	}
}

func TestChurnBackToBackWindowsOrderIndependent(t *testing.T) {
	// Two adjacent outage windows must keep the node down across the
	// shared boundary tick however the events are listed: the tick-100
	// rejoin of the first window applies before the tick-100 leave of
	// the second.
	run := func(churn []ChurnEvent) tensor.Vector {
		model, parts, _ := testWorld(t, 6, 10)
		sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 3, Seed: 13, Churn: churn},
			SAMO{}, model, parts, testFactory())
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(func(round int, s *Simulator) error {
			if round == 1 && !s.NodeDown(0) {
				t.Fatal("node 0 up inside the second outage window")
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return sim.Nodes()[0].Model.ParamsCopy()
	}
	chrono := run([]ChurnEvent{
		{Node: 0, LeaveTick: 50, RejoinTick: 100},
		{Node: 0, LeaveTick: 100, RejoinTick: 250},
	})
	reversed := run([]ChurnEvent{
		{Node: 0, LeaveTick: 100, RejoinTick: 250},
		{Node: 0, LeaveTick: 50, RejoinTick: 100},
	})
	if !tensor.EqualApprox(chrono, reversed, 0) {
		t.Fatal("churn schedule order changed the run")
	}
}

func TestChurnedInboxIsRecycled(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{
		Nodes: 6, ViewSize: 2, Rounds: 1, Seed: 3,
		Churn: []ChurnEvent{{Node: 1, LeaveTick: 1, RejoinTick: 50}},
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	// Deliver before the leave tick; the unmerged inbox must be dropped
	// when the node goes down.
	if err := sim.Send(0, 1, sim.Nodes()[0].Model.Params()); err != nil {
		t.Fatal(err)
	}
	if len(sim.Nodes()[1].Inbox) != 1 {
		t.Fatalf("inbox = %d, want 1", len(sim.Nodes()[1].Inbox))
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	// The node rejoined and kept running; nothing from before the crash
	// may linger unless it was received after the rejoin and is pending
	// a wake that never came — either way the crash-time inbox is gone.
	if sim.NodeDown(1) {
		t.Fatal("node 1 still down")
	}
}

func TestInstantWithDropProbMatchesSeedStream(t *testing.T) {
	// The refactor routes DropProb through the Lossy transport; the coin
	// flips must consume the simulator RNG exactly as the seed code did,
	// so two identically-seeded runs — and, transitively, the pinned
	// golden figures — stay byte-identical.
	run := func() (tensor.Vector, int) {
		model, parts, _ := testWorld(t, 6, 10)
		sim, err := New(Config{Nodes: 6, ViewSize: 2, Rounds: 3, Seed: 42, DropProb: 0.3},
			SAMO{}, model, parts, testFactory())
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(nil); err != nil {
			t.Fatal(err)
		}
		return sim.Nodes()[0].Model.ParamsCopy(), sim.MessagesDropped()
	}
	a, dropsA := run()
	b, dropsB := run()
	if dropsA == 0 || dropsA != dropsB || !tensor.EqualApprox(a, b, 0) {
		t.Fatalf("dropProb runs diverged: drops %d vs %d", dropsA, dropsB)
	}
}

func TestNetDropProbTakesPrecedence(t *testing.T) {
	model, parts, _ := testWorld(t, 6, 10)
	sim, err := New(Config{
		Nodes: 6, ViewSize: 2, Rounds: 3, Seed: 1,
		DropProb: 0.001,
		Net:      netmodel.Config{DropProb: 0.999},
	}, SAMO{}, model, parts, testFactory())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		t.Fatal(err)
	}
	if float64(sim.MessagesDropped()) < 0.9*float64(sim.MessagesSent()) {
		t.Fatalf("Net.DropProb ignored: dropped %d of %d", sim.MessagesDropped(), sim.MessagesSent())
	}
}
