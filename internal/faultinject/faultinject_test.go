package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"gossipmia/internal/core"
)

// TestParse decodes the CLI spec grammar and rejects malformed input.
func TestParse(t *testing.T) {
	cfg, err := Parse("arm-error=2,errors=3,arm-panic=5,panics=1,event-delay=10ms,upload-corrupt=1,corruptions=2")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		ArmErrorEvery: 2, ArmErrorBudget: 3, ArmPanicEvery: 5, ArmPanicBudget: 1,
		EventDelay: 10 * time.Millisecond, UploadCorruptEvery: 1, UploadCorruptBudget: 2,
	}
	if cfg != want {
		t.Fatalf("Parse = %+v, want %+v", cfg, want)
	}
	if cfg, err := Parse(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec = %+v, %v; want disabled, nil", cfg, err)
	}
	for _, bad := range []string{"arm-error", "arm-error=x", "arm-error=-1", "event-delay=fast", "tornado=5"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestNilInjector: the zero config builds no injector and every method
// on the nil injector is a no-op — the production fast path.
func TestNilInjector(t *testing.T) {
	var i *Injector = New(Config{})
	if i != nil {
		t.Fatal("zero config built an injector")
	}
	if err := i.ArmStart("x"); err != nil {
		t.Fatalf("nil ArmStart = %v", err)
	}
	i.EventDelay(context.Background()) // must not block or panic
	if i.UploadCorrupt() {
		t.Fatal("nil UploadCorrupt fired")
	}
	if got := FromContext(With(context.Background(), nil)); got != nil {
		t.Fatalf("nil injector attached: %v", got)
	}
}

// TestUploadCorruptSchedule: the corruption schedule fires every Nth
// upload and stops at its budget.
func TestUploadCorruptSchedule(t *testing.T) {
	i := New(Config{UploadCorruptEvery: 2, UploadCorruptBudget: 2})
	var fired []int
	for n := 1; n <= 10; n++ {
		if i.UploadCorrupt() {
			fired = append(fired, n)
		}
	}
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 4 {
		t.Fatalf("corruptions fired at %v, want [2 4] (every 2nd, budget 2)", fired)
	}
}

// TestArmErrorSchedule: every-Nth errors fire on the deterministic
// counter, stop at the budget, and carry the transient marker so the
// retry layer picks them up.
func TestArmErrorSchedule(t *testing.T) {
	i := New(Config{ArmErrorEvery: 2, ArmErrorBudget: 2})
	var errs int
	for n := 1; n <= 10; n++ {
		err := i.ArmStart("arm")
		fire := n%2 == 0 && errs < 2
		if fire {
			errs++
			if !errors.Is(err, ErrInjected) || !core.IsTransient(err) {
				t.Fatalf("start #%d: err = %v, want injected transient", n, err)
			}
		} else if err != nil {
			t.Fatalf("start #%d: unexpected %v", n, err)
		}
	}
	if errs != 2 {
		t.Fatalf("fired %d errors, want 2 (budget)", errs)
	}
}

// TestArmPanicSchedule: the panic schedule panics on the Nth start and
// respects its budget.
func TestArmPanicSchedule(t *testing.T) {
	i := New(Config{ArmPanicEvery: 3, ArmPanicBudget: 1})
	panicked := func(n int) (p bool) {
		defer func() { p = recover() != nil }()
		if err := i.ArmStart("arm"); err != nil {
			t.Fatalf("start #%d: unexpected error %v", n, err)
		}
		return false
	}
	for n := 1; n <= 9; n++ {
		if got, want := panicked(n), n == 3; got != want {
			t.Fatalf("start #%d: panicked = %v, want %v", n, got, want)
		}
	}
}

// TestEventDelayHonorsContext: a cancelled run is not pinned down by
// its own injected latency.
func TestEventDelayHonorsContext(t *testing.T) {
	i := New(Config{EventDelay: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	i.EventDelay(ctx)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("EventDelay ignored cancelled context (%v)", elapsed)
	}
}

// TestContextRoundTrip: the injector rides the context to the engine.
func TestContextRoundTrip(t *testing.T) {
	i := New(Config{ArmErrorEvery: 1})
	if got := FromContext(With(context.Background(), i)); got != i {
		t.Fatalf("FromContext = %v, want %v", got, i)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v", got)
	}
}
