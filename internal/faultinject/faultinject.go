// Package faultinject is the chaos-engineering harness of the engine:
// deterministic error, panic, and latency injection hooks that the
// resilience layers (arm retry, panic recovery, graceful drain, client
// reconnect) are tested against. An Injector travels down the execution
// path on the context — submitting layers attach it with With, executing
// layers consult it with FromContext — so no public API grows a fault
// parameter and production paths pay one nil check when injection is
// off.
//
// Faults fire on deterministic counters ("every Nth arm start"), never
// on wall-clock or RNG state, so a chaos test that converges once
// converges always.
package faultinject

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gossipmia/internal/core"
)

// Config declares which faults fire and how often. The zero Config
// injects nothing.
type Config struct {
	// ArmErrorEvery > 0 makes every Nth ArmStart call return an injected
	// transient error (1 = every call).
	ArmErrorEvery int
	// ArmErrorBudget caps how many errors are injected in total; 0 with
	// ArmErrorEvery > 0 means unlimited. A finite budget is what lets a
	// retried job eventually converge.
	ArmErrorBudget int
	// ArmPanicEvery > 0 makes every Nth ArmStart call panic (1 = every
	// call). Panics count against ArmPanicBudget.
	ArmPanicEvery int
	// ArmPanicBudget caps injected panics; 0 with ArmPanicEvery > 0
	// means unlimited.
	ArmPanicBudget int
	// EventDelay stalls every streamed round record by this long —
	// a slow-consumer/slow-producer simulation for disconnect tests.
	EventDelay time.Duration
	// UploadCorruptEvery > 0 makes every Nth result upload tamper with
	// its payload after the checksum is computed (1 = every upload) —
	// a worker that lies about its bytes, for exercising the server's
	// result audits and quarantine.
	UploadCorruptEvery int
	// UploadCorruptBudget caps injected corruptions; 0 with
	// UploadCorruptEvery > 0 means unlimited.
	UploadCorruptBudget int
}

// Validate reports nonsensical knob combinations.
func (c Config) Validate() error {
	if c.ArmErrorEvery < 0 || c.ArmPanicEvery < 0 ||
		c.ArmErrorBudget < 0 || c.ArmPanicBudget < 0 || c.EventDelay < 0 ||
		c.UploadCorruptEvery < 0 || c.UploadCorruptBudget < 0 {
		return fmt.Errorf("faultinject: negative knob in %+v", c)
	}
	return nil
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.ArmErrorEvery > 0 || c.ArmPanicEvery > 0 || c.EventDelay > 0 ||
		c.UploadCorruptEvery > 0
}

// Parse decodes the CLI's compact injection spec: comma-separated
// key=value pairs, e.g. "arm-error=2,errors=3,arm-panic=5,event-delay=10ms".
// Keys: arm-error (every Nth arm), errors (error budget), arm-panic
// (every Nth arm), panics (panic budget), event-delay (duration).
func Parse(s string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(s) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Config{}, fmt.Errorf("faultinject: bad spec element %q (want key=value)", part)
		}
		switch key {
		case "arm-error", "errors", "arm-panic", "panics", "upload-corrupt", "corruptions":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Config{}, fmt.Errorf("faultinject: bad %s value %q", key, val)
			}
			switch key {
			case "arm-error":
				cfg.ArmErrorEvery = n
			case "errors":
				cfg.ArmErrorBudget = n
			case "arm-panic":
				cfg.ArmPanicEvery = n
			case "panics":
				cfg.ArmPanicBudget = n
			case "upload-corrupt":
				cfg.UploadCorruptEvery = n
			case "corruptions":
				cfg.UploadCorruptBudget = n
			}
		case "event-delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Config{}, fmt.Errorf("faultinject: bad event-delay %q", val)
			}
			cfg.EventDelay = d
		default:
			return Config{}, fmt.Errorf("faultinject: unknown knob %q (want arm-error, errors, arm-panic, panics, upload-corrupt, corruptions, event-delay)", key)
		}
	}
	return cfg, cfg.Validate()
}

// Injector fires the configured faults. It is safe for concurrent use;
// counters are global across every execution the injector is attached
// to, which is what makes "every Nth arm" deterministic under retries.
type Injector struct {
	cfg Config

	armStarts atomic.Int64
	errsFired atomic.Int64
	pansFired atomic.Int64
	uploads   atomic.Int64
	corrFired atomic.Int64
}

// New builds an Injector; a nil return means cfg injects nothing, which
// downstream hooks treat as "no injection" at zero cost.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg}
}

// ErrInjected is the root of every injected error, so tests can tell an
// injected failure from an organic one.
var ErrInjected = fmt.Errorf("faultinject: injected fault")

// ArmStart fires arm-level faults. Every arm execution attempt calls it
// once before doing work: depending on the schedule it returns nil, an
// injected transient error (errors.Is core.ErrTransient and
// ErrInjected), or panics — exactly what a buggy protocol extension or
// a flaky datasource would do from inside the engine.
func (i *Injector) ArmStart(label string) error {
	if i == nil {
		return nil
	}
	n := i.armStarts.Add(1)
	if every := int64(i.cfg.ArmPanicEvery); every > 0 && n%every == 0 {
		if b := int64(i.cfg.ArmPanicBudget); b == 0 || i.pansFired.Add(1) <= b {
			panic(fmt.Sprintf("faultinject: injected panic (arm %q, start #%d)", label, n))
		}
	}
	if every := int64(i.cfg.ArmErrorEvery); every > 0 && n%every == 0 {
		if b := int64(i.cfg.ArmErrorBudget); b == 0 || i.errsFired.Add(1) <= b {
			return core.Transient(fmt.Errorf("%w: arm %q, start #%d", ErrInjected, label, n))
		}
	}
	return nil
}

// UploadCorrupt reports whether this result upload should be tampered
// with (the caller mutates the payload after computing its checksum).
// Like every fault it fires on a deterministic counter, so a chaos
// fleet corrupts the same uploads on every run.
func (i *Injector) UploadCorrupt() bool {
	if i == nil || i.cfg.UploadCorruptEvery <= 0 {
		return false
	}
	n := i.uploads.Add(1)
	if n%int64(i.cfg.UploadCorruptEvery) != 0 {
		return false
	}
	if b := int64(i.cfg.UploadCorruptBudget); b > 0 && i.corrFired.Add(1) > b {
		return false
	}
	return true
}

// EventDelay stalls a streamed record by the configured delay, honoring
// ctx so a cancelled run is not pinned down by its own faults.
func (i *Injector) EventDelay(ctx context.Context) {
	if i == nil || i.cfg.EventDelay <= 0 {
		return
	}
	t := time.NewTimer(i.cfg.EventDelay)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// ctxKey keys the injector on a context.
type ctxKey struct{}

// With attaches an injector to ctx; a nil injector returns ctx
// unchanged.
func With(ctx context.Context, i *Injector) context.Context {
	if i == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, i)
}

// FromContext returns the attached injector, or nil — and every
// Injector method is nil-safe, so call sites need no guard.
func FromContext(ctx context.Context) *Injector {
	i, _ := ctx.Value(ctxKey{}).(*Injector)
	return i
}
