package dp

import (
	"fmt"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// SGDConfig parameterizes DP-SGD as enforced at the node level in RQ7:
// each minibatch step clips every per-example gradient to Clip and adds
// Gaussian noise with standard deviation NoiseMultiplier·Clip before
// averaging.
type SGDConfig struct {
	LR              float64
	Clip            float64
	NoiseMultiplier float64
	BatchSize       int
	Epochs          int
}

// Validate reports configuration errors.
func (c SGDConfig) Validate() error {
	if c.LR <= 0 {
		return fmt.Errorf("%w: learning rate %v", ErrParams, c.LR)
	}
	if c.Clip <= 0 {
		return fmt.Errorf("%w: clip norm %v", ErrParams, c.Clip)
	}
	if c.NoiseMultiplier < 0 {
		return fmt.Errorf("%w: noise multiplier %v", ErrParams, c.NoiseMultiplier)
	}
	if c.BatchSize <= 0 || c.Epochs <= 0 {
		return fmt.Errorf("%w: batch size %d, epochs %d", ErrParams, c.BatchSize, c.Epochs)
	}
	return nil
}

// Updater is a gossip.LocalUpdater implementing DP-SGD. It counts
// mechanism invocations so an Accountant can convert the run into an
// (ε,δ) guarantee.
type Updater struct {
	cfg   SGDConfig
	steps int

	exGrad  tensor.Vector // per-example gradient scratch
	sumGrad tensor.Vector // clipped-sum scratch
	order   []int         // shuffle scratch
}

// NewUpdater returns a DP-SGD updater.
func NewUpdater(cfg SGDConfig) (*Updater, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Updater{cfg: cfg}, nil
}

// Steps returns the number of noisy SGD steps performed so far.
func (u *Updater) Steps() int { return u.steps }

// Config returns the updater configuration.
func (u *Updater) Config() SGDConfig { return u.cfg }

// Update implements gossip.LocalUpdater: Epochs passes of shuffled
// minibatch DP-SGD over train.
func (u *Updater) Update(model *nn.MLP, train *data.Dataset, rng *tensor.RNG) error {
	n := train.Len()
	if n == 0 {
		return data.ErrEmpty
	}
	d := model.NumParams()
	if len(u.exGrad) != d {
		u.exGrad = tensor.NewVector(d)
		u.sumGrad = tensor.NewVector(d)
	}
	bs := u.cfg.BatchSize
	if bs > n {
		bs = n
	}
	if cap(u.order) < n {
		u.order = make([]int, n)
	}
	order := u.order[:n]
	for i := range order {
		order[i] = i
	}
	params := model.Params()
	noiseStd := u.cfg.NoiseMultiplier * u.cfg.Clip
	for e := 0; e < u.cfg.Epochs; e++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			u.sumGrad.Zero()
			for _, idx := range order[start:end] {
				u.exGrad.Zero()
				if _, err := model.ExampleGrad(train.X[idx], train.Y[idx], u.exGrad); err != nil {
					return fmt.Errorf("dp: example gradient: %w", err)
				}
				u.exGrad.ClipNorm(u.cfg.Clip)
				if err := u.sumGrad.AddInPlace(u.exGrad); err != nil {
					return fmt.Errorf("dp: accumulate: %w", err)
				}
			}
			if noiseStd > 0 {
				for i := range u.sumGrad {
					u.sumGrad[i] += rng.Normal(0, noiseStd)
				}
			}
			if err := params.Axpy(-u.cfg.LR/float64(end-start), u.sumGrad); err != nil {
				return fmt.Errorf("dp: step: %w", err)
			}
			u.steps++
		}
	}
	return nil
}
