package dp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

func TestRDPFullBatchGaussian(t *testing.T) {
	// q = 1 must reduce to the Gaussian mechanism: eps(alpha) = alpha/(2 sigma^2).
	for _, sigma := range []float64{0.5, 1, 2, 5} {
		for _, alpha := range []int{2, 8, 32} {
			got := rdpSampledGaussian(1, sigma, alpha)
			want := float64(alpha) / (2 * sigma * sigma)
			if math.Abs(got-want) > 1e-12*want {
				t.Fatalf("sigma=%v alpha=%d: %v != %v", sigma, alpha, got, want)
			}
		}
	}
}

func TestRDPSubsamplingAmplifies(t *testing.T) {
	// Subsampling must strictly reduce the per-step cost.
	for _, alpha := range []int{2, 4, 16} {
		full := rdpSampledGaussian(1, 1, alpha)
		sub := rdpSampledGaussian(0.05, 1, alpha)
		if sub >= full {
			t.Fatalf("alpha=%d: subsampled %v >= full %v", alpha, sub, full)
		}
	}
}

// Property: RDP cost is non-negative and increasing in q.
func TestRDPMonotoneInSamplingRate(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		sigma := 0.5 + 4*rng.Float64()
		alpha := 2 + rng.Intn(30)
		q1 := 0.01 + 0.4*rng.Float64()
		q2 := q1 + 0.3
		e1 := rdpSampledGaussian(q1, sigma, alpha)
		e2 := rdpSampledGaussian(q2, sigma, alpha)
		return e1 >= 0 && e2 >= e1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAccountantValidation(t *testing.T) {
	if _, err := NewAccountant(0, 1); !errors.Is(err, ErrParams) {
		t.Fatalf("q=0 error = %v", err)
	}
	if _, err := NewAccountant(1.5, 1); !errors.Is(err, ErrParams) {
		t.Fatalf("q>1 error = %v", err)
	}
	if _, err := NewAccountant(0.5, 0); !errors.Is(err, ErrParams) {
		t.Fatalf("sigma=0 error = %v", err)
	}
	acc, err := NewAccountant(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Epsilon(0); !errors.Is(err, ErrParams) {
		t.Fatalf("delta=0 error = %v", err)
	}
	eps, err := acc.Epsilon(1e-5)
	if err != nil || eps != 0 {
		t.Fatalf("zero steps should cost zero: %v %v", eps, err)
	}
}

func TestAccountantComposition(t *testing.T) {
	acc, err := NewAccountant(0.1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	acc.AddSteps(100)
	e100, err := acc.Epsilon(1e-5)
	if err != nil {
		t.Fatal(err)
	}
	acc.AddSteps(900)
	e1000, err := acc.Epsilon(1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if !(e1000 > e100 && e100 > 0) {
		t.Fatalf("epsilon must grow with steps: %v -> %v", e100, e1000)
	}
	if acc.Steps() != 1000 {
		t.Fatalf("steps = %d", acc.Steps())
	}
	// EpsilonFor must not mutate.
	probe, err := acc.EpsilonFor(10, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if probe >= e100 {
		t.Fatalf("10-step probe %v should be below 100-step %v", probe, e100)
	}
	if acc.Steps() != 1000 {
		t.Fatal("EpsilonFor mutated the accountant")
	}
}

func TestMoreNoiseLessEpsilon(t *testing.T) {
	eps := func(sigma float64) float64 {
		acc, err := NewAccountant(0.2, sigma)
		if err != nil {
			t.Fatal(err)
		}
		acc.AddSteps(500)
		e, err := acc.Epsilon(1e-5)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if !(eps(0.7) > eps(1.5) && eps(1.5) > eps(4)) {
		t.Fatalf("epsilon not decreasing in sigma: %v %v %v", eps(0.7), eps(1.5), eps(4))
	}
}

func TestCalibrateSigma(t *testing.T) {
	const (
		delta = 1e-5
		q     = 0.1
		steps = 400
	)
	for _, target := range []float64{10, 25, 50} {
		sigma, err := CalibrateSigma(target, delta, q, steps)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		acc, err := NewAccountant(q, sigma)
		if err != nil {
			t.Fatal(err)
		}
		acc.AddSteps(steps)
		eps, err := acc.Epsilon(delta)
		if err != nil {
			t.Fatal(err)
		}
		if eps > target*(1+1e-6) {
			t.Fatalf("calibrated sigma %v yields eps %v > target %v", sigma, eps, target)
		}
		if eps < target*0.9 {
			t.Fatalf("calibration too loose: eps %v for target %v", eps, target)
		}
	}
	if _, err := CalibrateSigma(-1, delta, q, steps); !errors.Is(err, ErrParams) {
		t.Fatalf("negative target error = %v", err)
	}
	if _, err := CalibrateSigma(1, delta, q, 0); !errors.Is(err, ErrParams) {
		t.Fatalf("zero steps error = %v", err)
	}
}

func TestStricterBudgetNeedsMoreNoise(t *testing.T) {
	s10, err := CalibrateSigma(10, 1e-5, 0.1, 400)
	if err != nil {
		t.Fatal(err)
	}
	s50, err := CalibrateSigma(50, 1e-5, 0.1, 400)
	if err != nil {
		t.Fatal(err)
	}
	if s10 <= s50 {
		t.Fatalf("eps=10 sigma %v should exceed eps=50 sigma %v", s10, s50)
	}
}

func testTrainSet(t *testing.T) (*nn.MLP, *data.Dataset, *tensor.RNG) {
	t.Helper()
	rng := tensor.NewRNG(5)
	gen, err := data.NewGaussianGenerator(data.GaussianConfig{
		Dim: 6, Classes: 2, Margin: 3, Noise: 0.5,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := gen.Sample(40, rng)
	model, err := nn.NewMLP([]int{6, 12, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return model, train, rng
}

func TestUpdaterValidation(t *testing.T) {
	bad := []SGDConfig{
		{LR: 0, Clip: 1, BatchSize: 4, Epochs: 1},
		{LR: 0.1, Clip: 0, BatchSize: 4, Epochs: 1},
		{LR: 0.1, Clip: 1, NoiseMultiplier: -1, BatchSize: 4, Epochs: 1},
		{LR: 0.1, Clip: 1, BatchSize: 0, Epochs: 1},
		{LR: 0.1, Clip: 1, BatchSize: 4, Epochs: 0},
	}
	for i, cfg := range bad {
		if _, err := NewUpdater(cfg); !errors.Is(err, ErrParams) {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestUpdaterNoNoiseMatchesClippedSGD(t *testing.T) {
	model, train, rng := testTrainSet(t)
	u, err := NewUpdater(SGDConfig{LR: 0.05, Clip: 1e9, NoiseMultiplier: 0, BatchSize: train.Len(), Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: plain full-batch SGD step with the same seed.
	ref := model.Clone()
	grad := tensor.NewVector(ref.NumParams())
	if _, err := ref.BatchGrad(train.X, train.Y, grad); err != nil {
		t.Fatal(err)
	}
	if err := grad.Axpy(0, grad); err != nil { // no-op, keep grad as mean
		t.Fatal(err)
	}
	refParams := ref.ParamsCopy()
	if err := refParams.Axpy(-0.05, grad); err != nil {
		t.Fatal(err)
	}
	if err := u.Update(model, train, rng.Split()); err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApprox(model.Params(), refParams, 1e-9) {
		t.Fatal("sigma=0, huge clip DP-SGD differs from plain SGD")
	}
	if u.Steps() != 1 {
		t.Fatalf("steps = %d, want 1", u.Steps())
	}
}

func TestUpdaterClippingBoundsStep(t *testing.T) {
	model, train, rng := testTrainSet(t)
	// Blow up the parameters so raw gradients are enormous; clipping must
	// bound the parameter displacement by lr*clip regardless.
	params := model.Params()
	params.Scale(50)
	const (
		lr   = 0.1
		clip = 0.5
	)
	u, err := NewUpdater(SGDConfig{LR: lr, Clip: clip, NoiseMultiplier: 0, BatchSize: train.Len(), Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := model.ParamsCopy()
	if err := u.Update(model, train, rng); err != nil {
		t.Fatal(err)
	}
	diff := model.ParamsCopy()
	if err := diff.SubInPlace(before); err != nil {
		t.Fatal(err)
	}
	// Mean of clipped gradients has norm <= clip, so displacement <= lr*clip.
	if d := diff.Norm2(); d > lr*clip*(1+1e-9) {
		t.Fatalf("displacement %v exceeds lr*clip = %v", d, lr*clip)
	}
}

func TestUpdaterNoiseChangesTrajectory(t *testing.T) {
	model, train, _ := testTrainSet(t)
	a := model.Clone()
	b := model.Clone()
	ua, err := NewUpdater(SGDConfig{LR: 0.05, Clip: 1, NoiseMultiplier: 1, BatchSize: 8, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	ub, err := NewUpdater(SGDConfig{LR: 0.05, Clip: 1, NoiseMultiplier: 1, BatchSize: 8, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ua.Update(a, train, tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if err := ub.Update(b, train, tensor.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	if tensor.EqualApprox(a.Params(), b.Params(), 1e-12) {
		t.Fatal("different noise seeds produced identical models")
	}
}

func TestUpdaterLearnsUnderModerateNoise(t *testing.T) {
	model, train, rng := testTrainSet(t)
	u, err := NewUpdater(SGDConfig{LR: 0.05, Clip: 2, NoiseMultiplier: 0.3, BatchSize: 10, Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	lossBefore := meanLoss(t, model, train)
	for i := 0; i < 10; i++ {
		if err := u.Update(model, train, rng); err != nil {
			t.Fatal(err)
		}
	}
	lossAfter := meanLoss(t, model, train)
	if lossAfter >= lossBefore {
		t.Fatalf("DP-SGD with moderate noise failed to learn: %v -> %v", lossBefore, lossAfter)
	}
	wantSteps := 10 * 5 * 4 // 10 updates x 5 epochs x ceil(40/10) batches
	if u.Steps() != wantSteps {
		t.Fatalf("steps = %d, want %d", u.Steps(), wantSteps)
	}
}

func TestUpdaterEmptyDataset(t *testing.T) {
	model, _, rng := testTrainSet(t)
	u, err := NewUpdater(SGDConfig{LR: 0.05, Clip: 1, BatchSize: 4, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	empty := &data.Dataset{Classes: 2}
	if err := u.Update(model, empty, rng); !errors.Is(err, data.ErrEmpty) {
		t.Fatalf("empty dataset error = %v", err)
	}
}

func meanLoss(t *testing.T, m *nn.MLP, ds *data.Dataset) float64 {
	t.Helper()
	var s float64
	for i, x := range ds.X {
		l, err := m.Loss(x, ds.Y[i])
		if err != nil {
			t.Fatal(err)
		}
		s += l
	}
	return s / float64(ds.Len())
}
