// Package dp implements the differential-privacy machinery of RQ7:
// DP-SGD local updates (per-example gradient clipping plus Gaussian
// noise) and a Rényi-DP accountant for the sampled Gaussian mechanism
// with conversion to (ε,δ) guarantees, following Mironov's composition
// rule as the paper's Opacus setup does.
package dp

import (
	"errors"
	"fmt"
	"math"
)

// ErrParams is returned for invalid privacy parameters.
var ErrParams = errors.New("dp: invalid parameters")

// defaultOrders are the integer Rényi orders scanned when converting to
// (ε,δ); the usual 2..64 range covers practical regimes.
func defaultOrders() []int {
	orders := make([]int, 0, 63)
	for a := 2; a <= 64; a++ {
		orders = append(orders, a)
	}
	return orders
}

// rdpSampledGaussian returns the RDP ε(α) of one step of the sampled
// Gaussian mechanism with sampling rate q and noise multiplier sigma, at
// integer order alpha ≥ 2, using the standard integer-order upper bound
//
//	ε(α) = 1/(α−1) · ln Σ_{k=0}^{α} C(α,k)(1−q)^{α−k} q^k e^{k(k−1)/(2σ²)}.
//
// With q = 1 this reduces to the Gaussian-mechanism value α/(2σ²).
func rdpSampledGaussian(q, sigma float64, alpha int) float64 {
	if q >= 1 {
		return float64(alpha) / (2 * sigma * sigma)
	}
	// Log-sum-exp over the binomial expansion.
	lognq := math.Log1p(-q)
	logq := math.Log(q)
	maxTerm := math.Inf(-1)
	terms := make([]float64, alpha+1)
	for k := 0; k <= alpha; k++ {
		t := logBinom(alpha, k) + float64(alpha-k)*lognq
		if k > 0 {
			t += float64(k) * logq
		}
		t += float64(k*(k-1)) / (2 * sigma * sigma)
		terms[k] = t
		if t > maxTerm {
			maxTerm = t
		}
	}
	var sum float64
	for _, t := range terms {
		sum += math.Exp(t - maxTerm)
	}
	return (maxTerm + math.Log(sum)) / float64(alpha-1)
}

// logBinom returns ln C(n, k).
func logBinom(n, k int) float64 {
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// Accountant tracks the cumulative RDP budget of a DP-SGD run with fixed
// sampling rate and noise multiplier.
type Accountant struct {
	q, sigma float64
	steps    int
	orders   []int
}

// NewAccountant returns an accountant for sampling rate q ∈ (0,1] and
// noise multiplier sigma > 0.
func NewAccountant(q, sigma float64) (*Accountant, error) {
	if q <= 0 || q > 1 {
		return nil, fmt.Errorf("%w: sampling rate %v out of (0,1]", ErrParams, q)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("%w: noise multiplier %v must be positive", ErrParams, sigma)
	}
	return &Accountant{q: q, sigma: sigma, orders: defaultOrders()}, nil
}

// AddSteps records n additional mechanism invocations (SGD steps).
func (a *Accountant) AddSteps(n int) {
	if n > 0 {
		a.steps += n
	}
}

// Steps returns the number of recorded steps.
func (a *Accountant) Steps() int { return a.steps }

// Epsilon converts the accumulated RDP budget to an (ε, δ) guarantee:
// ε = min_α [ steps·ε(α) + ln(1/δ)/(α−1) ].
func (a *Accountant) Epsilon(delta float64) (float64, error) {
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("%w: delta %v out of (0,1)", ErrParams, delta)
	}
	if a.steps == 0 {
		return 0, nil
	}
	best := math.Inf(1)
	logInvDelta := math.Log(1 / delta)
	for _, alpha := range a.orders {
		eps := float64(a.steps)*rdpSampledGaussian(a.q, a.sigma, alpha) +
			logInvDelta/float64(alpha-1)
		if eps < best {
			best = eps
		}
	}
	return best, nil
}

// EpsilonFor returns the (ε, δ) cost of a hypothetical run of steps
// invocations at the accountant's q and sigma, without mutating state.
func (a *Accountant) EpsilonFor(steps int, delta float64) (float64, error) {
	tmp := &Accountant{q: a.q, sigma: a.sigma, steps: steps, orders: a.orders}
	return tmp.Epsilon(delta)
}

// CalibrateSigma binary-searches the smallest noise multiplier that keeps
// a run of steps sampled-Gaussian invocations at sampling rate q within
// (targetEps, delta)-DP.
func CalibrateSigma(targetEps, delta, q float64, steps int) (float64, error) {
	if targetEps <= 0 {
		return 0, fmt.Errorf("%w: target epsilon %v must be positive", ErrParams, targetEps)
	}
	if steps <= 0 {
		return 0, fmt.Errorf("%w: steps %d must be positive", ErrParams, steps)
	}
	epsAt := func(sigma float64) (float64, error) {
		acc, err := NewAccountant(q, sigma)
		if err != nil {
			return 0, err
		}
		acc.AddSteps(steps)
		return acc.Epsilon(delta)
	}
	lo, hi := 1e-2, 1e-2
	for iter := 0; ; iter++ {
		eps, err := epsAt(hi)
		if err != nil {
			return 0, err
		}
		if eps <= targetEps {
			break
		}
		hi *= 2
		if iter > 60 {
			return 0, fmt.Errorf("%w: cannot reach epsilon %v", ErrParams, targetEps)
		}
	}
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hi) / 2
		eps, err := epsAt(mid)
		if err != nil {
			return 0, err
		}
		if eps <= targetEps {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
