// Package plot renders terminal scatter plots of experiment series — the
// textual counterpart of the paper's tradeoff figures (MIA vulnerability
// vs test accuracy, MIA vs generalization error). It is deliberately
// dependency-free: a fixed-size character grid with auto-scaled axes.
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrEmpty is returned when there is nothing to plot.
var ErrEmpty = errors.New("plot: no points")

// Point is one (x, y) mark.
type Point struct {
	X, Y float64
}

// Series is a labelled point cloud drawn with a single glyph.
type Series struct {
	Label  string
	Glyph  rune
	Points []Point
}

// Config controls the canvas.
type Config struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot-area columns (default 60)
	Height int // plot-area rows (default 18)
}

// Scatter renders the series onto one canvas and returns it as a string.
// Later series overwrite earlier ones on collisions. Non-finite points
// are skipped.
func Scatter(cfg Config, series []Series) (string, error) {
	if cfg.Width <= 0 {
		cfg.Width = 60
	}
	if cfg.Height <= 0 {
		cfg.Height = 18
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range series {
		for _, p := range s.Points {
			if !finite(p.X) || !finite(p.Y) {
				continue
			}
			total++
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if total == 0 {
		return "", ErrEmpty
	}
	// Degenerate ranges get a symmetric pad so points land mid-canvas.
	if maxX == minX {
		minX, maxX = minX-1, maxX+1
	}
	if maxY == minY {
		minY, maxY = minY-1, maxY+1
	}

	grid := make([][]rune, cfg.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", cfg.Width))
	}
	for _, s := range series {
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '*'
		}
		for _, p := range s.Points {
			if !finite(p.X) || !finite(p.Y) {
				continue
			}
			col := int((p.X - minX) / (maxX - minX) * float64(cfg.Width-1))
			row := int((p.Y - minY) / (maxY - minY) * float64(cfg.Height-1))
			grid[cfg.Height-1-row][col] = glyph
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	legend := make([]string, 0, len(series))
	for _, s := range series {
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '*'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", glyph, s.Label))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, "  "))
	}
	yHi := fmt.Sprintf("%.3g", maxY)
	yLo := fmt.Sprintf("%.3g", minY)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yHi)
		case cfg.Height - 1:
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", pad), strings.Repeat("-", cfg.Width))
	xLo := fmt.Sprintf("%.3g", minX)
	xHi := fmt.Sprintf("%.3g", maxX)
	gap := cfg.Width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", pad), xLo, strings.Repeat(" ", gap), xHi)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&b, "x: %s, y: %s\n", cfg.XLabel, cfg.YLabel)
	}
	return b.String(), nil
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
