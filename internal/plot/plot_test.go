package plot

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestScatterBasics(t *testing.T) {
	out, err := Scatter(Config{
		Title:  "tradeoff",
		XLabel: "test acc",
		YLabel: "mia acc",
		Width:  20,
		Height: 5,
	}, []Series{
		{Label: "static", Glyph: 's', Points: []Point{{0, 0}, {1, 1}}},
		{Label: "dynamic", Glyph: 'd', Points: []Point{{0.5, 0.5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tradeoff", "s=static", "d=dynamic", "x: test acc, y: mia acc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Corner points: bottom-left 's', top-right 's', middle 'd'.
	lines := strings.Split(out, "\n")
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 5 {
		t.Fatalf("grid has %d rows, want 5:\n%s", len(gridLines), out)
	}
	top := gridLines[0]
	bottom := gridLines[len(gridLines)-1]
	if !strings.Contains(top, "s") {
		t.Fatalf("top row missing max point:\n%s", out)
	}
	if !strings.Contains(bottom, "s") {
		t.Fatalf("bottom row missing min point:\n%s", out)
	}
	if !strings.Contains(gridLines[2], "d") {
		t.Fatalf("middle row missing mid point:\n%s", out)
	}
}

func TestScatterEmptyAndNonFinite(t *testing.T) {
	if _, err := Scatter(Config{}, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty error = %v", err)
	}
	if _, err := Scatter(Config{}, []Series{{Points: []Point{{math.NaN(), 1}, {math.Inf(1), 2}}}}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("non-finite-only error = %v", err)
	}
	// Mixed: non-finite points are skipped, finite ones plotted.
	out, err := Scatter(Config{Width: 10, Height: 3}, []Series{
		{Label: "a", Points: []Point{{math.NaN(), 1}, {1, 1}, {2, 2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	plotted := 0
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "|") {
			plotted += strings.Count(l, "*")
		}
	}
	if plotted != 2 {
		t.Fatalf("want 2 plotted points, got %d:\n%s", plotted, out)
	}
}

func TestScatterDegenerateRange(t *testing.T) {
	// A single repeated point must not divide by zero and should land in
	// the middle of the canvas.
	out, err := Scatter(Config{Width: 11, Height: 3}, []Series{
		{Label: "p", Glyph: 'p', Points: []Point{{5, 5}, {5, 5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	var grid []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			grid = append(grid, l)
		}
	}
	if !strings.Contains(grid[1], "p") {
		t.Fatalf("degenerate point not centered:\n%s", out)
	}
}

func TestScatterDefaultsAndGlyph(t *testing.T) {
	out, err := Scatter(Config{}, []Series{{Label: "x", Points: []Point{{0, 0}, {1, 2}}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*=x") {
		t.Fatalf("default glyph missing:\n%s", out)
	}
	// Default canvas is 60x18: 18 grid rows.
	rows := 0
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "|") {
			rows++
		}
	}
	if rows != 18 {
		t.Fatalf("default height = %d rows, want 18", rows)
	}
}
