// Package par provides the deterministic fork-join helpers behind the
// parallel experiment engine. Work items are identified by index and
// write their results into caller-owned indexed slots, so the observable
// outcome is byte-identical for any worker count — parallelism changes
// only the schedule, never the results.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// WorkerPanic is the value re-raised on the calling goroutine when a
// work item panics on a pool goroutine. It preserves the original panic
// value and the stack of the panicking worker, so a recover() above the
// fork-join call sees the true failure site rather than the scheduler's.
type WorkerPanic struct {
	Value any
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", p.Value, p.Stack)
}

// Workers resolves a requested worker count: values above zero are taken
// as-is, anything else means "one worker per available CPU" (GOMAXPROCS).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) exactly once for every i in [0, n), distributing
// indices over min(Workers(workers), n) goroutines. When a single worker
// results, fn runs inline on the calling goroutine in index order. fn
// must confine its writes to per-index state.
func ForEach(workers, n int, fn func(i int)) {
	forEach(context.Background(), workers, n, fn)
}

// forEach is the shared scheduler: like ForEach, but once ctx is
// cancelled no further index is started. Indices already running are
// never interrupted — a work item either runs to completion or does not
// run at all, which is what lets the sweep cache stay atomic on abort.
//
// A panic on a pool goroutine does not kill the process behind the
// caller's back: the first panicking item is captured (with its stack),
// the remaining workers wind down, and the panic is re-raised on the
// calling goroutine as a *WorkerPanic — so a recover() around the
// fork-join call observes every failure mode, nested pools included.
func forEach(ctx context.Context, workers, n int, fn func(i int)) {
	w := Workers(workers)
	if w > n {
		w = n
	}
	done := ctx.Done()
	if w <= 1 {
		for i := 0; i < n; i++ {
			if done != nil && ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Pointer[WorkerPanic]
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					wp, ok := r.(*WorkerPanic) // nested pool: keep the innermost stack
					if !ok {
						wp = &WorkerPanic{Value: r, Stack: debug.Stack()}
					}
					panicked.CompareAndSwap(nil, wp)
				}
			}()
			for {
				if done != nil && ctx.Err() != nil {
					return
				}
				if panicked.Load() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// ForEachErr runs fn(i) for every i in [0, n) like ForEach and returns
// the error of the lowest failing index (deterministic regardless of
// which goroutine observed it first), or nil when every call succeeds.
// All indices run even when some fail.
func ForEachErr(workers, n int, fn func(i int) error) error {
	return ForEachErrCtx(context.Background(), workers, n, fn)
}

// ForEachErrCtx is the context-aware ForEachErr: cancelling ctx stops
// the fan-out at the next index boundary — items already started run to
// completion, no new item is launched — and the call reports ctx.Err()
// unless an earlier (lower-index) item had already failed on its own.
func ForEachErrCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	errs := make([]error, n)
	forEach(ctx, workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
