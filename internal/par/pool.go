package par

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is a persistent fork-join worker pool: the goroutines are
// spawned once and reused across ForEach calls, so a caller that forks
// many small batches (the tick engine runs several conflict batches per
// tick, tens of thousands per arm) pays a channel handoff per batch
// instead of a goroutine spawn per worker per batch. Profiles of the
// dense-wake arm showed the spawn-per-batch scheme behind most of the
// workers=4 alloc creep (+595 allocs/op over serial) and a 20% wall
// clock penalty on a single-P runtime; the pool's steady-state ForEach
// allocates nothing.
//
// A Pool serves one fork-join at a time: ForEach must not be called
// concurrently or reentrantly from inside a work item (nested fan-outs
// use their own Pool or the spawn-based ForEach). Work items identify
// their work by index and must confine writes to per-index state, as
// with ForEach.
type Pool struct {
	workers int           // total workers including the calling goroutine
	work    chan struct{} // one token wakes one helper for the current run
	done    sync.WaitGroup

	// Per-run state, published to helpers by the work-channel send and
	// read back by the caller after done.Wait (both are
	// synchronization edges, so no atomics are needed on fn/n).
	fn       func(int)
	n        int
	next     atomic.Int64
	panicked atomic.Pointer[WorkerPanic]
}

// NewPool returns a pool of Workers(workers) total workers. The calling
// goroutine of ForEach always participates, so workers-1 helper
// goroutines are parked waiting; a pool of one worker spawns nothing
// and ForEach degenerates to the inline serial loop. Close releases the
// helpers.
func NewPool(workers int) *Pool {
	w := Workers(workers)
	p := &Pool{workers: w}
	if w <= 1 {
		return p
	}
	p.work = make(chan struct{}, w-1)
	for g := 0; g < w-1; g++ {
		go func() {
			for range p.work {
				p.runShared()
				p.done.Done()
			}
		}()
	}
	return p
}

// Close releases the pool's helper goroutines. The pool must be idle;
// ForEach must not be called after Close.
func (p *Pool) Close() {
	if p.work != nil {
		close(p.work)
	}
}

// Workers returns the pool's total worker count.
func (p *Pool) Workers() int { return p.workers }

// ForEach invokes fn(i) exactly once for every i in [0, n), distributing
// indices over min(p.Workers(), n) workers — the calling goroutine plus
// parked helpers. When a single worker results, fn runs inline in index
// order. Like ForEach, a panicking work item is captured, the fan-out
// winds down, and the panic is re-raised here as a *WorkerPanic.
// A nil pool runs inline and serially.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	helpers := 0
	if p != nil && p.workers > n {
		helpers = n - 1
	} else if p != nil {
		helpers = p.workers - 1
	}
	if helpers <= 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.fn, p.n = fn, n
	p.next.Store(0)
	p.panicked.Store(nil)
	p.done.Add(helpers)
	for g := 0; g < helpers; g++ {
		p.work <- struct{}{}
	}
	p.runShared() // the caller is a worker too
	p.done.Wait()
	p.fn = nil
	if wp := p.panicked.Load(); wp != nil {
		panic(wp)
	}
}

// runShared drains the shared index counter, capturing the first panic
// so sibling workers can wind down and the fork-join caller can
// re-raise it.
func (p *Pool) runShared() {
	defer func() {
		if r := recover(); r != nil {
			wp, ok := r.(*WorkerPanic) // nested pool: keep the innermost stack
			if !ok {
				wp = &WorkerPanic{Value: r, Stack: debug.Stack()}
			}
			p.panicked.CompareAndSwap(nil, wp)
		}
	}()
	for p.panicked.Load() == nil {
		i := int(p.next.Add(1)) - 1
		if i >= p.n {
			return
		}
		p.fn(i)
	}
}
