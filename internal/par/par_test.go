package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		const n = 1000
		counts := make([]atomic.Int64, n)
		ForEach(w, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
}

func TestForEachErrReturnsLowestIndex(t *testing.T) {
	errA := errors.New("a")
	for _, w := range []int{1, 2, 8} {
		err := ForEachErr(w, 100, func(i int) error {
			switch i {
			case 17:
				return errA
			case 60:
				return fmt.Errorf("later failure")
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want lowest-index error", w, err)
		}
	}
	if err := ForEachErr(4, 50, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
