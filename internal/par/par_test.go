package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		const n = 1000
		counts := make([]atomic.Int64, n)
		ForEach(w, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
}

func TestForEachErrReturnsLowestIndex(t *testing.T) {
	errA := errors.New("a")
	for _, w := range []int{1, 2, 8} {
		err := ForEachErr(w, 100, func(i int) error {
			switch i {
			case 17:
				return errA
			case 60:
				return fmt.Errorf("later failure")
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want lowest-index error", w, err)
		}
	}
	if err := ForEachErr(4, 50, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestForEachErrCtxCancellationStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	// Serial path: cancelling inside index 1 must prevent 2..n-1 from
	// starting while leaving 0 and 1 completed.
	err := ForEachErrCtx(ctx, 1, 100, func(i int) error {
		ran.Add(1)
		if i == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("ran %d indices, want 2 (the one in flight completes, no new one starts)", got)
	}
}

func TestForEachErrCtxParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachErrCtx(ctx, 4, 1000, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == 1000 {
		t.Fatal("cancellation did not stop the fan-out")
	}
}

func TestForEachErrCtxPrefersRealErrors(t *testing.T) {
	// A function error at a low index wins over the cancellation the
	// fan-out observed afterwards.
	ctx, cancel := context.WithCancel(context.Background())
	errA := errors.New("a")
	err := ForEachErrCtx(ctx, 1, 10, func(i int) error {
		if i == 0 {
			cancel()
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the fn error", err)
	}
}

func TestForEachErrCtxNilErrorWhenUncancelled(t *testing.T) {
	if err := ForEachErrCtx(context.Background(), 3, 20, func(int) error { return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
}
