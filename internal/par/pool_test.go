package par

import (
	"sync/atomic"
	"testing"
)

func TestPoolForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 7, 100} {
			hits := make([]int32, n)
			p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

// TestPoolReuseAcrossBatches exercises the pool the way the tick engine
// does: many consecutive small fork-joins on one pool, each of which
// must see a clean index counter.
func TestPoolReuseAcrossBatches(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	for batch := 0; batch < 1000; batch++ {
		n := 1 + batch%5
		p.ForEach(n, func(i int) { total.Add(1) })
	}
	want := int64(0)
	for batch := 0; batch < 1000; batch++ {
		want += int64(1 + batch%5)
	}
	if got := total.Load(); got != want {
		t.Fatalf("ran %d items, want %d", got, want)
	}
}

func TestPoolNilAndSingleWorkerRunInline(t *testing.T) {
	var nilPool *Pool
	order := []int{}
	nilPool.ForEach(3, func(i int) { order = append(order, i) })
	p := NewPool(1)
	defer p.Close()
	p.ForEach(3, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i%3 {
			t.Fatalf("inline path ran out of order: %v", order)
		}
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		r := recover()
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *WorkerPanic", r, r)
		}
		if wp.Value != "boom" {
			t.Fatalf("panic value = %v, want boom", wp.Value)
		}
	}()
	p.ForEach(100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned after a worker panic")
}

// TestPoolUsableAfterPanic pins that a recovered panic leaves the pool
// consistent: the helpers are parked again and the next ForEach runs
// normally.
func TestPoolUsableAfterPanic(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	func() {
		defer func() { recover() }()
		p.ForEach(10, func(i int) { panic("first") })
	}()
	var n atomic.Int64
	p.ForEach(50, func(i int) { n.Add(1) })
	if n.Load() != 50 {
		t.Fatalf("post-panic ForEach ran %d items, want 50", n.Load())
	}
}

func BenchmarkPoolForEach(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(1) }
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ForEach(8, fn)
	}
}

func BenchmarkSpawnForEach(b *testing.B) {
	var sink atomic.Int64
	fn := func(i int) { sink.Add(1) }
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForEach(4, 8, fn)
	}
}
