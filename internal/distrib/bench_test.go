package distrib

import (
	"context"
	"sync"
	"testing"
	"time"
)

// BenchmarkDispatcherPipeline measures claim/complete round-trip
// throughput with a four-worker fleet draining one submitter — the
// dispatcher-side overhead a real fleet adds per arm (the arm execution
// itself dominates in practice; this isolates the coordination cost).
func BenchmarkDispatcherPipeline(b *testing.B) {
	d := New(Config{LeaseTTL: time.Minute})
	defer d.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "w" + string(rune('0'+w))
			for ctx.Err() == nil {
				l, ok, err := d.Claim(ctx, name, 100*time.Millisecond)
				if err != nil || !ok {
					continue
				}
				d.Complete(l.ID, l.Unit.Key, nil)
			}
		}(w)
	}
	for d.LiveWorkers() == 0 {
		time.Sleep(time.Millisecond)
	}

	u := Unit{Key: "benchmark-unit-key", Job: "bench", Label: "arm", Payload: []byte(`{}`)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Execute(context.Background(), u); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	cancel()
	wg.Wait()
}
