// Package distrib implements the server side of distributed sweep
// execution: a Dispatcher decomposes submitted jobs into per-arm work
// units, leases them to pull-mode workers over long-polled claims,
// reclaims units whose lease deadline lapses without a heartbeat, and
// reports ErrNoWorkers to the submitting side when no fleet is
// connected so the caller can fall back to local execution.
//
// The dispatcher is deliberately generic: a Unit carries an opaque
// wire payload and a content-hash key, and outcomes are delivered as
// opaque values. Idempotency lives one layer up — unit keys are the
// experiment content hashes, so executing the same unit twice yields
// the same bytes and a duplicate completion is a harmless no-op
// (reported as stale).
package distrib

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Typed errors. Callers match with errors.Is.
var (
	// ErrNoWorkers reports that no live worker is connected (or the
	// dispatcher is draining), so the unit should execute locally.
	ErrNoWorkers = errors.New("distrib: no workers connected")
	// ErrDraining refuses new claims while the server drains.
	ErrDraining = errors.New("distrib: dispatcher draining")
	// ErrClosed reports a closed dispatcher.
	ErrClosed = errors.New("distrib: dispatcher closed")
	// ErrLeaseNotFound reports an unknown or already-expired lease.
	ErrLeaseNotFound = errors.New("distrib: unknown or expired lease")
)

// Config tunes lease and liveness windows. Zero values pick defaults.
type Config struct {
	// LeaseTTL is how long a claimed unit stays assigned without a
	// heartbeat before it is reclaimed for re-dispatch. Default 15s.
	LeaseTTL time.Duration
	// WorkerTTL is how long a worker counts as live after its last
	// claim, heartbeat, or upload. A worker parked in a long-poll
	// claim is always live. Default 2×LeaseTTL.
	WorkerTTL time.Duration
	// Sweep is the janitor period. Default LeaseTTL/8 clamped to
	// [5ms, 250ms].
	Sweep time.Duration
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 2 * c.LeaseTTL
	}
	if c.Sweep <= 0 {
		c.Sweep = c.LeaseTTL / 8
		if c.Sweep < 5*time.Millisecond {
			c.Sweep = 5 * time.Millisecond
		}
		if c.Sweep > 250*time.Millisecond {
			c.Sweep = 250 * time.Millisecond
		}
	}
	return c
}

// Unit is one independently executable piece of work: a single arm of
// a job, identified by its content-hash key, with the wire order the
// server hands to whichever worker claims it.
type Unit struct {
	Key     string // sha256 content hash; the idempotency identity
	Job     string
	Spec    string
	Label   string
	Index   int
	Payload []byte // opaque wire order (JSON) served on claim
}

// Lease is a claimed unit with a renewal deadline.
type Lease struct {
	ID       string
	Unit     Unit
	Worker   string
	Deadline time.Time
	TTL      time.Duration
}

// Stats is a point-in-time counters snapshot for observability.
type Stats struct {
	QueueDepth        int   // units waiting for a claim
	ActiveLeases      int   // claimed units not yet resolved
	Workers           int   // live workers (parked or recently seen)
	Claims            int64 // leases handed out
	Completes         int64 // outcomes delivered to waiting units
	Reclaims          int64 // expired leases re-queued for dispatch
	StaleUploads      int64 // duplicate/late completions ignored
	NoWorkerFallbacks int64 // units answered with ErrNoWorkers
	Draining          bool
}

type unitState int

const (
	unitQueued unitState = iota
	unitLeased
	unitResolved
)

type outcome struct {
	result any
	err    error
}

type unit struct {
	Unit
	state unitState
	done  chan outcome // buffered 1; written exactly once
}

type lease struct {
	id         string
	u          *unit
	worker     string
	deadline   time.Time
	done       bool // expired or resolved; kept briefly for stale uploads
	resolvedAt time.Time
}

// Dispatcher is safe for concurrent use. Close releases its janitor.
type Dispatcher struct {
	cfg Config

	mu       sync.Mutex
	queue    []*unit
	leases   map[string]*lease
	workers  map[string]time.Time // last activity
	parked   map[string]int       // claimers currently long-polling
	wake     chan struct{}        // closed-and-replaced broadcast
	seq      int64
	draining bool
	closed   bool

	claims, completes, reclaims int64
	stales, noWorkers           int64

	stop        chan struct{}
	janitorDone chan struct{}
}

// New starts a dispatcher and its janitor goroutine.
func New(cfg Config) *Dispatcher {
	d := &Dispatcher{
		cfg:         cfg.withDefaults(),
		leases:      make(map[string]*lease),
		workers:     make(map[string]time.Time),
		parked:      make(map[string]int),
		wake:        make(chan struct{}),
		stop:        make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go d.janitor()
	return d
}

// LeaseTTL reports the configured lease deadline window.
func (d *Dispatcher) LeaseTTL() time.Duration { return d.cfg.LeaseTTL }

func (d *Dispatcher) wakeLocked() {
	close(d.wake)
	d.wake = make(chan struct{})
}

// Execute submits the unit to the worker fleet and blocks until a
// worker delivers its outcome. It returns ErrNoWorkers immediately
// when no live worker is connected (or the dispatcher is draining),
// and later if every worker disappears while the unit waits — in both
// cases the caller should run the unit locally. Cancelling ctx
// withdraws the unit; a completion that races the withdrawal wins.
func (d *Dispatcher) Execute(ctx context.Context, spec Unit) (any, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	if d.draining || !d.liveLocked(time.Now()) {
		d.noWorkers++
		d.mu.Unlock()
		return nil, ErrNoWorkers
	}
	u := &unit{Unit: spec, state: unitQueued, done: make(chan outcome, 1)}
	d.queue = append(d.queue, u)
	d.wakeLocked()
	d.mu.Unlock()

	select {
	case out := <-u.done:
		return out.result, out.err
	case <-ctx.Done():
		d.withdraw(u)
		select {
		case out := <-u.done:
			return out.result, out.err
		default:
			return nil, ctx.Err()
		}
	}
}

// withdraw removes a unit whose submitter gave up waiting. A lease
// already out for it becomes a dead letter: the worker's upload is
// accepted and discarded as stale.
func (d *Dispatcher) withdraw(u *unit) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if u.state == unitResolved {
		return
	}
	if u.state == unitQueued {
		d.dequeueLocked(u)
	}
	u.state = unitResolved
}

func (d *Dispatcher) dequeueLocked(u *unit) {
	for i, q := range d.queue {
		if q == u {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			return
		}
	}
}

// liveLocked reports whether any worker is parked in a claim or was
// seen within WorkerTTL.
func (d *Dispatcher) liveLocked(now time.Time) bool {
	if len(d.parked) > 0 {
		return true
	}
	for _, seen := range d.workers {
		if now.Sub(seen) <= d.cfg.WorkerTTL {
			return true
		}
	}
	return false
}

// LiveWorkers counts workers currently parked in a claim or seen
// within WorkerTTL.
func (d *Dispatcher) LiveWorkers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.liveWorkersLocked(time.Now())
}

func (d *Dispatcher) liveWorkersLocked(now time.Time) int {
	n := 0
	for w, seen := range d.workers {
		if d.parked[w] > 0 || now.Sub(seen) <= d.cfg.WorkerTTL {
			n++
		}
	}
	return n
}

// Claim hands the caller the oldest queued unit under a fresh lease,
// long-polling up to wait when the queue is empty. ok=false means the
// wait elapsed (or ctx was cancelled) with no work available.
func (d *Dispatcher) Claim(ctx context.Context, worker string, wait time.Duration) (Lease, bool, error) {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		now := time.Now()
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return Lease{}, false, ErrClosed
		}
		if d.draining {
			d.mu.Unlock()
			return Lease{}, false, ErrDraining
		}
		d.workers[worker] = now
		if len(d.queue) > 0 {
			u := d.queue[0]
			d.queue = d.queue[1:]
			u.state = unitLeased
			d.seq++
			l := &lease{
				id:       fmt.Sprintf("L%08d-%s", d.seq, u.Key[:min(8, len(u.Key))]),
				u:        u,
				worker:   worker,
				deadline: now.Add(d.cfg.LeaseTTL),
			}
			d.leases[l.id] = l
			d.claims++
			out := Lease{ID: l.id, Unit: u.Unit, Worker: worker, Deadline: l.deadline, TTL: d.cfg.LeaseTTL}
			d.mu.Unlock()
			return out, true, nil
		}
		d.parked[worker]++
		wake := d.wake
		d.mu.Unlock()

		wakeup := false
		select {
		case <-wake:
			wakeup = true
		case <-timer.C:
		case <-ctx.Done():
		case <-d.stop:
		}
		d.mu.Lock()
		d.parked[worker]--
		if d.parked[worker] <= 0 {
			delete(d.parked, worker)
		}
		d.workers[worker] = time.Now()
		d.mu.Unlock()
		if !wakeup {
			return Lease{}, false, ctx.Err()
		}
	}
}

// Heartbeat extends a lease's deadline by LeaseTTL and returns the new
// deadline. Expired, resolved, or unknown leases get ErrLeaseNotFound.
func (d *Dispatcher) Heartbeat(leaseID string) (time.Time, error) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[leaseID]
	if !ok || l.done || l.u.state != unitLeased {
		return time.Time{}, ErrLeaseNotFound
	}
	l.deadline = now.Add(d.cfg.LeaseTTL)
	d.workers[l.worker] = now
	return l.deadline, nil
}

// Complete resolves a lease with the worker's outcome. stale=true
// reports that the unit had already been resolved elsewhere (a
// duplicate or late upload) and the payload was discarded — execution
// is idempotent by content hash, so this is harmless. An upload
// against a lease that expired but whose unit is still pending is
// accepted: the bytes are the same no matter who ran the arm.
func (d *Dispatcher) Complete(leaseID string, result any, workErr error) (stale bool, err error) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[leaseID]
	if !ok {
		return false, ErrLeaseNotFound
	}
	d.workers[l.worker] = now
	if !l.done {
		l.done = true
		l.resolvedAt = now
	}
	u := l.u
	if u.state == unitResolved {
		d.stales++
		return true, nil
	}
	if u.state == unitQueued { // lease expired, unit re-queued, not yet re-claimed
		d.dequeueLocked(u)
	}
	u.state = unitResolved
	u.done <- outcome{result: result, err: workErr}
	d.completes++
	return false, nil
}

// Drain stops handing out new claims. Outstanding leases may still
// heartbeat and complete; queued units fail over to ErrNoWorkers on
// the next janitor sweep (no one can claim them anymore).
func (d *Dispatcher) Drain() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return
	}
	d.draining = true
	d.failQueueLocked()
	d.wakeLocked()
}

// Draining reports whether Drain has been called.
func (d *Dispatcher) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Close drains, fails every unresolved unit with ErrClosed, and stops
// the janitor. Idempotent.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.draining = true
	for _, u := range d.queue {
		u.state = unitResolved
		u.done <- outcome{err: ErrClosed}
	}
	d.queue = nil
	for _, l := range d.leases {
		if !l.done && l.u.state == unitLeased {
			l.done = true
			l.u.state = unitResolved
			l.u.done <- outcome{err: ErrClosed}
		}
	}
	d.wakeLocked()
	close(d.stop)
	d.mu.Unlock()
	<-d.janitorDone
}

// Stats returns a counters snapshot.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	active := 0
	for _, l := range d.leases {
		if !l.done {
			active++
		}
	}
	return Stats{
		QueueDepth:        len(d.queue),
		ActiveLeases:      active,
		Workers:           d.liveWorkersLocked(time.Now()),
		Claims:            d.claims,
		Completes:         d.completes,
		Reclaims:          d.reclaims,
		StaleUploads:      d.stales,
		NoWorkerFallbacks: d.noWorkers,
		Draining:          d.draining,
	}
}

// failQueueLocked answers every queued unit with ErrNoWorkers so the
// submitter runs it locally.
func (d *Dispatcher) failQueueLocked() {
	for _, u := range d.queue {
		u.state = unitResolved
		u.done <- outcome{err: ErrNoWorkers}
		d.noWorkers++
	}
	d.queue = nil
}

// janitor expires overdue leases (reclaiming their units to the front
// of the queue), fails queued units over to local execution when the
// worker fleet disappears, and prunes stale bookkeeping.
func (d *Dispatcher) janitor() {
	defer close(d.janitorDone)
	tick := time.NewTicker(d.cfg.Sweep)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return
		}
		requeued := false
		for id, l := range d.leases {
			if l.done {
				// Keep resolved leases around long enough for a late
				// duplicate upload to be answered as stale.
				if now.Sub(l.resolvedAt) > 4*d.cfg.LeaseTTL {
					delete(d.leases, id)
				}
				continue
			}
			if now.After(l.deadline) {
				l.done = true
				l.resolvedAt = now
				if l.u.state == unitLeased {
					l.u.state = unitQueued
					d.queue = append([]*unit{l.u}, d.queue...)
					d.reclaims++
					requeued = true
				}
			}
		}
		if len(d.queue) > 0 && (d.draining || !d.liveLocked(now)) {
			d.failQueueLocked()
		} else if requeued {
			d.wakeLocked()
		}
		for w, seen := range d.workers {
			if d.parked[w] == 0 && now.Sub(seen) > 2*d.cfg.WorkerTTL {
				delete(d.workers, w)
			}
		}
		d.mu.Unlock()
	}
}
