// Package distrib implements the server side of distributed sweep
// execution: a Dispatcher decomposes submitted jobs into per-arm work
// units, leases them to pull-mode workers over long-polled claims,
// reclaims units whose lease deadline lapses without a heartbeat, and
// reports ErrNoWorkers to the submitting side when no fleet is
// connected so the caller can fall back to local execution.
//
// The dispatcher is deliberately generic: a Unit carries an opaque
// wire payload and a content-hash key, and outcomes are delivered as
// opaque values. Idempotency lives one layer up — unit keys are the
// experiment content hashes, so executing the same unit twice yields
// the same bytes and a duplicate completion is a harmless no-op
// (reported as stale).
//
// The dispatcher does not trust the fleet. Every worker carries a
// decaying health score fed by its failures (lease expiries, reported
// errors, checksum mismatches); crossing the threshold quarantines the
// worker for a cooldown during which its claims are refused and its
// leases are reclaimed, with a circuit-breaker half-open probe before
// reinstatement. Units track which workers failed them, and a unit
// that keeps failing across distinct workers is poisoned — resolved
// with a PoisonedError carrying the per-worker history so the caller
// can fall back to local execution instead of cycling forever.
package distrib

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Typed errors. Callers match with errors.Is.
var (
	// ErrNoWorkers reports that no live worker is connected (or the
	// dispatcher is draining), so the unit should execute locally.
	ErrNoWorkers = errors.New("distrib: no workers connected")
	// ErrDraining refuses new claims while the server drains.
	ErrDraining = errors.New("distrib: dispatcher draining")
	// ErrClosed reports a closed dispatcher.
	ErrClosed = errors.New("distrib: dispatcher closed")
	// ErrLeaseNotFound reports an unknown or already-expired lease.
	ErrLeaseNotFound = errors.New("distrib: unknown or expired lease")
	// ErrQuarantined refuses claims from a quarantined worker. The
	// concrete error is a *QuarantineError carrying the release time.
	ErrQuarantined = errors.New("distrib: worker quarantined")
	// ErrPoisoned resolves a unit that failed on too many distinct
	// workers. The concrete error is a *PoisonedError carrying the
	// per-worker failure history.
	ErrPoisoned = errors.New("distrib: unit failed on too many workers")
)

// QuarantineError is the concrete claim refusal for a quarantined
// worker; errors.Is(err, ErrQuarantined) matches it.
type QuarantineError struct {
	Worker string
	Until  time.Time
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("distrib: worker %q quarantined until %s", e.Worker, e.Until.Format(time.RFC3339))
}

func (e *QuarantineError) Unwrap() error { return ErrQuarantined }

// UnitFailure is one failed execution attempt of a unit, attributed to
// the worker that held its lease.
type UnitFailure struct {
	Worker string
	Reason string
}

// PoisonedError resolves a unit whose failures span MaxAttempts
// distinct workers (or twice that many total attempts): the arm, not
// the fleet, is the likely culprit, so the submitter should run it
// locally and surface the history. errors.Is(err, ErrPoisoned)
// matches it.
type PoisonedError struct {
	Key      string
	Label    string
	Failures []UnitFailure
}

func (e *PoisonedError) Error() string {
	return fmt.Sprintf("distrib: unit %q failed on %d attempts across workers; giving up on remote execution", e.Label, len(e.Failures))
}

func (e *PoisonedError) Unwrap() error { return ErrPoisoned }

// Config tunes lease, liveness, and self-healing windows. Zero values
// pick defaults.
type Config struct {
	// LeaseTTL is how long a claimed unit stays assigned without a
	// heartbeat before it is reclaimed for re-dispatch. Default 15s.
	LeaseTTL time.Duration
	// WorkerTTL is how long a worker counts as live after its last
	// claim, heartbeat, or upload. A worker parked in a long-poll
	// claim is always live. Default 2×LeaseTTL.
	WorkerTTL time.Duration
	// Sweep is the janitor period. Default LeaseTTL/8 clamped to
	// [5ms, 250ms].
	Sweep time.Duration
	// MaxAttempts poisons a unit once that many distinct workers have
	// failed it (or 2×MaxAttempts attempts in total, so a one-worker
	// fleet cannot cycle forever). Default 3.
	MaxAttempts int
	// FailThreshold is the decaying health score at which a worker is
	// quarantined. Completions decay the score; expiries and reported
	// errors add 1, checksum mismatches add 2. Default 2.5 — three
	// quick errors or two mismatches trip it.
	FailThreshold float64
	// Cooldown is the base quarantine duration; consecutive
	// quarantines double it up to 8×. It is also the score decay
	// half-life. Default 4×LeaseTTL.
	Cooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 2 * c.LeaseTTL
	}
	if c.Sweep <= 0 {
		c.Sweep = c.LeaseTTL / 8
		if c.Sweep < 5*time.Millisecond {
			c.Sweep = 5 * time.Millisecond
		}
		if c.Sweep > 250*time.Millisecond {
			c.Sweep = 250 * time.Millisecond
		}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 4 * c.LeaseTTL
	}
	return c
}

// Unit is one independently executable piece of work: a single arm of
// a job, identified by its content-hash key, with the wire order the
// server hands to whichever worker claims it.
type Unit struct {
	Key     string // sha256 content hash; the idempotency identity
	Job     string
	Spec    string
	Label   string
	Index   int
	Payload []byte // opaque wire order (JSON) served on claim
}

// Lease is a claimed unit with a renewal deadline.
type Lease struct {
	ID       string
	Unit     Unit
	Worker   string
	Deadline time.Time
	TTL      time.Duration
}

// WorkerStatus is one worker's row in the Stats snapshot.
type WorkerStatus struct {
	Name        string
	State       string // "live", "quarantined", "probing", or "draining"
	Score       float64
	Leases      int // unresolved leases held
	Completes   int64
	Expiries    int64
	Errors      int64 // worker-reported execution errors
	Mismatches  int64 // checksum-mismatched or audit-divergent uploads
	Quarantines int64
	Registered  bool
}

// Stats is a point-in-time counters snapshot for observability.
type Stats struct {
	QueueDepth        int   // units waiting for a claim
	ActiveLeases      int   // claimed units not yet resolved
	Workers           int   // live workers (parked or recently seen)
	Claims            int64 // leases handed out
	Completes         int64 // outcomes delivered to waiting units
	Reclaims          int64 // expired leases re-queued for dispatch
	StaleUploads      int64 // duplicate/late completions ignored
	NoWorkerFallbacks int64 // units answered with ErrNoWorkers
	Poisoned          int64 // units resolved with PoisonedError
	Rejected          int64 // uploads rejected (checksum mismatch)
	Quarantines       int64 // quarantine events across the fleet
	Draining          bool
	PerWorker         []WorkerStatus // sorted by name
}

type unitState int

const (
	unitQueued unitState = iota
	unitLeased
	unitResolved
)

type outcome struct {
	result any
	worker string // worker that produced result, "" for local paths
	err    error
}

type unit struct {
	Unit
	state    unitState
	attempts int
	failures []UnitFailure
	done     chan outcome // buffered 1; written exactly once
}

type lease struct {
	id       string
	u        *unit
	worker   string
	deadline time.Time
	done     bool // expired or resolved; kept briefly for stale uploads
	// tainted marks a lease reclaimed from a quarantined worker: its
	// late upload is never delivered, even if the unit is still queued.
	tainted    bool
	probe      bool // half-open probe claim of a quarantined worker
	resolvedAt time.Time
}

type workerState int

const (
	workerLive workerState = iota
	workerQuarantined
	workerDraining // deregistered with leases still unresolved
)

func (s workerState) String() string {
	switch s {
	case workerQuarantined:
		return "quarantined"
	case workerDraining:
		return "draining"
	default:
		return "live"
	}
}

// workerRec is the registry entry for one worker: liveness, parked
// long-polls, health score, and lifetime counters.
type workerRec struct {
	name       string
	registered bool // explicit Register handshake (vs. implicit on claim)
	seen       time.Time
	parked     int // claimers currently long-polling
	state      workerState

	score   float64 // decaying failure score; quarantine at FailThreshold
	scoreAt time.Time

	quarUntil   time.Time
	probeLease  string // outstanding half-open probe, if any
	quarCount   int    // consecutive quarantines (cooldown backoff)
	quarantines int64  // lifetime quarantine events

	leases                 int // unresolved leases held
	completes, expiries    int64
	uploadErrs, mismatches int64
}

// Dispatcher is safe for concurrent use. Close releases its janitor.
type Dispatcher struct {
	cfg Config

	mu       sync.Mutex
	queue    []*unit
	leases   map[string]*lease
	workers  map[string]*workerRec
	wake     chan struct{} // closed-and-replaced broadcast
	seq      int64
	draining bool
	closed   bool

	claims, completes, reclaims  int64
	stales, noWorkers            int64
	poisoned, rejected, quarEvts int64

	stop        chan struct{}
	janitorDone chan struct{}
}

// New starts a dispatcher and its janitor goroutine.
func New(cfg Config) *Dispatcher {
	d := &Dispatcher{
		cfg:         cfg.withDefaults(),
		leases:      make(map[string]*lease),
		workers:     make(map[string]*workerRec),
		wake:        make(chan struct{}),
		stop:        make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go d.janitor()
	return d
}

// LeaseTTL reports the configured lease deadline window.
func (d *Dispatcher) LeaseTTL() time.Duration { return d.cfg.LeaseTTL }

func (d *Dispatcher) wakeLocked() {
	close(d.wake)
	d.wake = make(chan struct{})
}

// recLocked returns the registry entry for worker, creating a live
// implicit (unregistered) entry on first contact.
func (d *Dispatcher) recLocked(worker string, now time.Time) *workerRec {
	rec, ok := d.workers[worker]
	if !ok {
		rec = &workerRec{name: worker, state: workerLive, scoreAt: now}
		d.workers[worker] = rec
	}
	rec.seen = now
	return rec
}

// decayLocked applies exponential decay to the worker's failure score
// with a half-life of Cooldown.
func (d *Dispatcher) decayLocked(rec *workerRec, now time.Time) {
	if dt := now.Sub(rec.scoreAt); dt > 0 && rec.score > 0 {
		rec.score *= math.Pow(0.5, dt.Seconds()/d.cfg.Cooldown.Seconds())
	}
	rec.scoreAt = now
}

// penalizeLocked raises the worker's failure score and quarantines it
// when the score crosses the threshold.
func (d *Dispatcher) penalizeLocked(rec *workerRec, weight float64, now time.Time, reason string) {
	d.decayLocked(rec, now)
	rec.score += weight
	if rec.state == workerLive && rec.score >= d.cfg.FailThreshold {
		d.quarantineLocked(rec, now, reason)
	}
}

// rewardLocked lowers the score on a successful completion.
func (d *Dispatcher) rewardLocked(rec *workerRec, now time.Time) {
	d.decayLocked(rec, now)
	rec.score -= 0.5
	if rec.score < 0 {
		rec.score = 0
	}
}

// quarantineLocked puts the worker in quarantine: its claims are
// refused until the cooldown elapses (doubling per consecutive
// quarantine, capped at 8×), and every lease it still holds is
// reclaimed as tainted — the unit is re-queued (or poisoned) and a
// late upload from the worker is discarded rather than trusted.
func (d *Dispatcher) quarantineLocked(rec *workerRec, now time.Time, reason string) {
	rec.state = workerQuarantined
	mult := time.Duration(1) << min(rec.quarCount, 3)
	rec.quarCount++
	rec.quarantines++
	rec.quarUntil = now.Add(d.cfg.Cooldown * mult)
	rec.probeLease = ""
	d.quarEvts++
	for _, l := range d.leases {
		if l.worker != rec.name || l.done {
			continue
		}
		l.done = true
		l.tainted = true
		l.resolvedAt = now
		rec.leases--
		if l.u.state != unitLeased {
			continue
		}
		d.reclaims++
		if !d.failUnitLocked(l.u, rec.name, "worker quarantined: "+reason) {
			l.u.state = unitQueued
			d.queue = append([]*unit{l.u}, d.queue...)
		}
	}
	// Wake every parked claim: requeued units need a new worker, and a
	// parked claim from the quarantined worker itself should learn of
	// the refusal now, not when its poll window lapses.
	d.wakeLocked()
}

// reinstateLocked returns a quarantined worker to live after a
// successful half-open probe, resetting its score and backoff.
func (d *Dispatcher) reinstateLocked(rec *workerRec, now time.Time) {
	rec.state = workerLive
	rec.score = 0
	rec.scoreAt = now
	rec.quarCount = 0
	rec.probeLease = ""
	rec.quarUntil = time.Time{}
}

// failUnitLocked records a failed attempt and poisons the unit when
// its failures span MaxAttempts distinct workers (or 2×MaxAttempts
// attempts in total). Poisoned units are resolved immediately with a
// PoisonedError; the caller must not requeue them. Reports whether
// the unit was poisoned.
func (d *Dispatcher) failUnitLocked(u *unit, worker, reason string) bool {
	u.attempts++
	u.failures = append(u.failures, UnitFailure{Worker: worker, Reason: reason})
	distinct := make(map[string]bool, len(u.failures))
	for _, f := range u.failures {
		distinct[f.Worker] = true
	}
	if len(distinct) < d.cfg.MaxAttempts && u.attempts < 2*d.cfg.MaxAttempts {
		return false
	}
	u.state = unitResolved
	d.poisoned++
	u.done <- outcome{err: &PoisonedError{
		Key:      u.Key,
		Label:    u.Label,
		Failures: append([]UnitFailure(nil), u.failures...),
	}}
	return true
}

// Register adds the worker to the registry ahead of its first claim.
// Registration is optional — a claim registers implicitly — but an
// explicit handshake lets the fleet count the worker as live before
// it parks and pairs with Deregister for a clean exit.
func (d *Dispatcher) Register(worker string) error {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.draining {
		return ErrDraining
	}
	rec := d.recLocked(worker, now)
	rec.registered = true
	return nil
}

// Deregister removes the worker from the live set immediately — no
// waiting for WorkerTTL to lapse. Leases it still holds are reclaimed
// to the front of the queue (without charging the unit a failure; the
// worker is leaving, not misbehaving), though a late upload against
// them is still accepted while the unit sits unclaimed.
func (d *Dispatcher) Deregister(worker string) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.workers[worker]
	if !ok || d.closed {
		return
	}
	requeued := false
	for _, l := range d.leases {
		if l.worker != worker || l.done {
			continue
		}
		l.done = true
		l.resolvedAt = now
		rec.leases--
		if l.u.state == unitLeased {
			l.u.state = unitQueued
			d.queue = append([]*unit{l.u}, d.queue...)
			d.reclaims++
			requeued = true
		}
	}
	delete(d.workers, worker)
	// Parked claims from the worker, if any, re-register it on their
	// next pass; waking them here lets an already-departed worker's
	// stragglers notice the empty queue promptly.
	if requeued {
		d.wakeLocked()
	}
}

// Execute submits the unit to the worker fleet and blocks until a
// worker delivers its outcome, also reporting which worker produced
// it. It returns ErrNoWorkers immediately when no live worker is
// connected (or the dispatcher is draining), and later if every
// worker disappears while the unit waits — in both cases the caller
// should run the unit locally. A unit that keeps failing across
// workers resolves with a *PoisonedError. Cancelling ctx withdraws
// the unit; a completion that races the withdrawal wins.
func (d *Dispatcher) Execute(ctx context.Context, spec Unit) (any, string, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, "", ErrClosed
	}
	if d.draining || !d.liveLocked(time.Now()) {
		d.noWorkers++
		d.mu.Unlock()
		return nil, "", ErrNoWorkers
	}
	u := &unit{Unit: spec, state: unitQueued, done: make(chan outcome, 1)}
	d.queue = append(d.queue, u)
	d.wakeLocked()
	d.mu.Unlock()

	select {
	case out := <-u.done:
		return out.result, out.worker, out.err
	case <-ctx.Done():
		d.withdraw(u)
		select {
		case out := <-u.done:
			return out.result, out.worker, out.err
		default:
			return nil, "", ctx.Err()
		}
	}
}

// withdraw removes a unit whose submitter gave up waiting. A lease
// already out for it becomes a dead letter: the worker's upload is
// accepted and discarded as stale.
func (d *Dispatcher) withdraw(u *unit) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if u.state == unitResolved {
		return
	}
	if u.state == unitQueued {
		d.dequeueLocked(u)
	}
	u.state = unitResolved
}

func (d *Dispatcher) dequeueLocked(u *unit) {
	for i, q := range d.queue {
		if q == u {
			d.queue = append(d.queue[:i], d.queue[i+1:]...)
			return
		}
	}
}

// liveLocked reports whether any live (not quarantined, not draining)
// worker is parked in a claim or was seen within WorkerTTL.
func (d *Dispatcher) liveLocked(now time.Time) bool {
	for _, rec := range d.workers {
		if rec.state != workerLive {
			continue
		}
		if rec.parked > 0 || now.Sub(rec.seen) <= d.cfg.WorkerTTL {
			return true
		}
	}
	return false
}

// LiveWorkers counts workers currently parked in a claim or seen
// within WorkerTTL, excluding quarantined and draining ones.
func (d *Dispatcher) LiveWorkers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.liveWorkersLocked(time.Now())
}

func (d *Dispatcher) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, rec := range d.workers {
		if rec.state != workerLive {
			continue
		}
		if rec.parked > 0 || now.Sub(rec.seen) <= d.cfg.WorkerTTL {
			n++
		}
	}
	return n
}

// Claim hands the caller the oldest queued unit under a fresh lease,
// long-polling up to wait when the queue is empty. ok=false means the
// wait elapsed (or ctx was cancelled) with no work available. Claims
// from a quarantined worker are refused with a *QuarantineError until
// its cooldown elapses; the first claim after the cooldown is a
// half-open probe — exactly one lease whose outcome decides between
// reinstatement and a doubled quarantine.
func (d *Dispatcher) Claim(ctx context.Context, worker string, wait time.Duration) (Lease, bool, error) {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		now := time.Now()
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return Lease{}, false, ErrClosed
		}
		if d.draining {
			d.mu.Unlock()
			return Lease{}, false, ErrDraining
		}
		rec := d.recLocked(worker, now)
		probe := false
		if rec.state == workerQuarantined {
			switch {
			case now.Before(rec.quarUntil):
				until := rec.quarUntil
				d.mu.Unlock()
				return Lease{}, false, &QuarantineError{Worker: worker, Until: until}
			case rec.probeLease != "":
				// One probe at a time: until the outstanding probe
				// resolves, further claims stay refused.
				until := now.Add(d.cfg.LeaseTTL)
				d.mu.Unlock()
				return Lease{}, false, &QuarantineError{Worker: worker, Until: until}
			default:
				probe = true
			}
		}
		if len(d.queue) > 0 {
			u := d.queue[0]
			d.queue = d.queue[1:]
			u.state = unitLeased
			d.seq++
			l := &lease{
				id:       fmt.Sprintf("L%08d-%s", d.seq, u.Key[:min(8, len(u.Key))]),
				u:        u,
				worker:   worker,
				deadline: now.Add(d.cfg.LeaseTTL),
				probe:    probe,
			}
			d.leases[l.id] = l
			d.claims++
			rec.leases++
			if probe {
				rec.probeLease = l.id
			}
			out := Lease{ID: l.id, Unit: u.Unit, Worker: worker, Deadline: l.deadline, TTL: d.cfg.LeaseTTL}
			d.mu.Unlock()
			return out, true, nil
		}
		rec.parked++
		wake := d.wake
		d.mu.Unlock()

		again := false
		select {
		case <-wake:
			again = true
		case <-d.stop:
			// Re-enter the loop: the closed check answers ErrClosed so
			// a parked worker learns the server is gone immediately
			// instead of hanging out its poll window.
			again = true
		case <-timer.C:
		case <-ctx.Done():
		}
		now = time.Now()
		d.mu.Lock()
		if r, ok := d.workers[worker]; ok {
			r.parked--
			if r.parked < 0 {
				r.parked = 0
			}
			r.seen = now
		}
		d.mu.Unlock()
		if !again {
			return Lease{}, false, ctx.Err()
		}
	}
}

// Heartbeat extends a lease's deadline by LeaseTTL and returns the new
// deadline. Expired, resolved, or unknown leases get ErrLeaseNotFound.
func (d *Dispatcher) Heartbeat(leaseID string) (time.Time, error) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[leaseID]
	if !ok || l.done || l.u.state != unitLeased {
		return time.Time{}, ErrLeaseNotFound
	}
	l.deadline = now.Add(d.cfg.LeaseTTL)
	d.recLocked(l.worker, now)
	return l.deadline, nil
}

// Complete resolves a lease with the worker's outcome. stale=true
// reports that the unit had already been resolved elsewhere (a
// duplicate or late upload) and the payload was discarded — execution
// is idempotent by content hash, so this is harmless. An upload
// against a lease that expired but whose unit is still pending is
// accepted: the bytes are the same no matter who ran the arm. Leases
// reclaimed by a quarantine are tainted and never accepted.
//
// A non-nil workErr is charged to the worker's health score and the
// unit's failure history, and the unit is re-queued for another
// worker (or poisoned) rather than failing the submitter — a broken
// worker must not take the sweep down with it.
func (d *Dispatcher) Complete(leaseID string, result any, workErr error) (stale bool, err error) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[leaseID]
	if !ok {
		return false, ErrLeaseNotFound
	}
	rec := d.recLocked(l.worker, now)
	active := !l.done
	if active {
		l.done = true
		l.resolvedAt = now
		rec.leases--
	}
	if workErr != nil {
		return d.completeErrLocked(l, rec, active, workErr, now)
	}
	u := l.u
	if l.tainted || u.state == unitResolved {
		d.stales++
		return true, nil
	}
	if u.state == unitQueued { // lease expired, unit re-queued, not yet re-claimed
		d.dequeueLocked(u)
	}
	u.state = unitResolved
	u.done <- outcome{result: result, worker: l.worker}
	d.completes++
	rec.completes++
	d.rewardLocked(rec, now)
	if l.probe && rec.state == workerQuarantined {
		d.reinstateLocked(rec, now)
	}
	return false, nil
}

// completeErrLocked handles an error upload: penalize the worker,
// record the failure on the unit, and re-queue (or poison) the unit
// so another worker retries it.
func (d *Dispatcher) completeErrLocked(l *lease, rec *workerRec, active bool, workErr error, now time.Time) (bool, error) {
	rec.uploadErrs++
	if l.probe && rec.state == workerQuarantined {
		// The half-open probe failed: straight back to quarantine with
		// a doubled cooldown.
		rec.probeLease = ""
		d.quarantineLocked(rec, now, "probe failed: "+workErr.Error())
	} else {
		d.penalizeLocked(rec, 1, now, "execution error: "+workErr.Error())
	}
	u := l.u
	if u.state == unitResolved {
		d.stales++
		return true, nil
	}
	if d.failUnitLocked(u, l.worker, workErr.Error()) {
		d.dequeueLocked(u) // no-op unless the unit sat re-queued
		return false, nil
	}
	// Not poisoned: make sure the unit is back in the queue. It may
	// already be there (the lease expired earlier) or leased to
	// another worker (leave that lease alone).
	if active && u.state == unitLeased {
		u.state = unitQueued
		d.queue = append([]*unit{u}, d.queue...)
		d.wakeLocked()
	}
	return false, nil
}

// Reject refuses an upload whose payload failed server-side
// verification (checksum mismatch): the worker takes a heavy health
// penalty, the unit is charged a failure and re-queued (or poisoned),
// and the lease is tainted so nothing else arrives on it. stale=true
// reports the unit had already been resolved elsewhere.
func (d *Dispatcher) Reject(leaseID, reason string) (stale bool, err error) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.leases[leaseID]
	if !ok {
		return false, ErrLeaseNotFound
	}
	rec := d.recLocked(l.worker, now)
	active := !l.done
	if active {
		l.done = true
		l.resolvedAt = now
		rec.leases--
	}
	l.tainted = true
	d.rejected++
	rec.mismatches++
	if l.probe && rec.state == workerQuarantined {
		rec.probeLease = ""
		d.quarantineLocked(rec, now, "probe failed: "+reason)
	} else {
		d.penalizeLocked(rec, 2, now, reason)
	}
	u := l.u
	if u.state == unitResolved {
		d.stales++
		return true, nil
	}
	if d.failUnitLocked(u, l.worker, reason) {
		d.dequeueLocked(u)
		return false, nil
	}
	if active && u.state == unitLeased {
		u.state = unitQueued
		d.queue = append([]*unit{u}, d.queue...)
		d.wakeLocked()
	}
	return false, nil
}

// Quarantine forces the worker into quarantine immediately, whatever
// its score — the audit path calls this when a worker is caught
// returning divergent bytes.
func (d *Dispatcher) Quarantine(worker, reason string) {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	rec := d.recLocked(worker, now)
	rec.mismatches++
	if rec.state == workerQuarantined {
		return
	}
	rec.score = d.cfg.FailThreshold
	d.quarantineLocked(rec, now, reason)
}

// Drain stops handing out new claims. Outstanding leases may still
// heartbeat and complete; queued units fail over to ErrNoWorkers on
// the next janitor sweep (no one can claim them anymore).
func (d *Dispatcher) Drain() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return
	}
	d.draining = true
	d.failQueueLocked()
	d.wakeLocked()
}

// Draining reports whether Drain has been called.
func (d *Dispatcher) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// Close drains, fails every unresolved unit with ErrClosed, and stops
// the janitor. Idempotent.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.draining = true
	for _, u := range d.queue {
		u.state = unitResolved
		u.done <- outcome{err: ErrClosed}
	}
	d.queue = nil
	for _, l := range d.leases {
		if !l.done && l.u.state == unitLeased {
			l.done = true
			l.u.state = unitResolved
			l.u.done <- outcome{err: ErrClosed}
		}
	}
	d.wakeLocked()
	close(d.stop)
	d.mu.Unlock()
	<-d.janitorDone
}

// Stats returns a counters snapshot with one row per known worker.
func (d *Dispatcher) Stats() Stats {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	active := 0
	for _, l := range d.leases {
		if !l.done {
			active++
		}
	}
	per := make([]WorkerStatus, 0, len(d.workers))
	for _, rec := range d.workers {
		d.decayLocked(rec, now)
		state := rec.state.String()
		if rec.state == workerQuarantined && (rec.probeLease != "" || !now.Before(rec.quarUntil)) {
			state = "probing"
		}
		per = append(per, WorkerStatus{
			Name:        rec.name,
			State:       state,
			Score:       rec.score,
			Leases:      rec.leases,
			Completes:   rec.completes,
			Expiries:    rec.expiries,
			Errors:      rec.uploadErrs,
			Mismatches:  rec.mismatches,
			Quarantines: rec.quarantines,
			Registered:  rec.registered,
		})
	}
	sort.Slice(per, func(i, j int) bool { return per[i].Name < per[j].Name })
	return Stats{
		QueueDepth:        len(d.queue),
		ActiveLeases:      active,
		Workers:           d.liveWorkersLocked(now),
		Claims:            d.claims,
		Completes:         d.completes,
		Reclaims:          d.reclaims,
		StaleUploads:      d.stales,
		NoWorkerFallbacks: d.noWorkers,
		Poisoned:          d.poisoned,
		Rejected:          d.rejected,
		Quarantines:       d.quarEvts,
		Draining:          d.draining,
		PerWorker:         per,
	}
}

// failQueueLocked answers every queued unit with ErrNoWorkers so the
// submitter runs it locally.
func (d *Dispatcher) failQueueLocked() {
	for _, u := range d.queue {
		u.state = unitResolved
		u.done <- outcome{err: ErrNoWorkers}
		d.noWorkers++
	}
	d.queue = nil
}

// janitor expires overdue leases (reclaiming their units to the front
// of the queue, charging the holder's health score), fails queued
// units over to local execution when the worker fleet disappears, and
// prunes stale bookkeeping.
func (d *Dispatcher) janitor() {
	defer close(d.janitorDone)
	tick := time.NewTicker(d.cfg.Sweep)
	defer tick.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-tick.C:
		}
		now := time.Now()
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			return
		}
		requeued := false
		for id, l := range d.leases {
			if l.done {
				// Keep resolved leases around long enough for a late
				// duplicate upload to be answered as stale.
				if now.Sub(l.resolvedAt) > 4*d.cfg.LeaseTTL {
					delete(d.leases, id)
				}
				continue
			}
			if !now.After(l.deadline) {
				continue
			}
			l.done = true
			l.resolvedAt = now
			rec := d.recLockedNoTouch(l.worker)
			if rec != nil {
				rec.leases--
				rec.expiries++
				if l.probe && rec.state == workerQuarantined {
					rec.probeLease = ""
					d.quarantineLocked(rec, now, "probe lease expired")
				} else {
					d.penalizeLocked(rec, 1, now, "lease expired without heartbeat")
				}
			}
			if l.u.state == unitLeased {
				d.reclaims++
				if !d.failUnitLocked(l.u, l.worker, "lease expired (worker crashed or wedged)") {
					l.u.state = unitQueued
					d.queue = append([]*unit{l.u}, d.queue...)
					requeued = true
				}
			}
		}
		if len(d.queue) > 0 && (d.draining || !d.liveLocked(now)) {
			d.failQueueLocked()
		} else if requeued {
			d.wakeLocked()
		}
		for w, rec := range d.workers {
			if rec.parked > 0 || rec.leases > 0 {
				continue
			}
			// A quarantined worker is remembered until well past its
			// release so it cannot shed the quarantine by vanishing and
			// re-registering under the same name.
			horizon := rec.seen
			if rec.state == workerQuarantined && rec.quarUntil.After(horizon) {
				horizon = rec.quarUntil
			}
			if now.Sub(horizon) > 2*d.cfg.WorkerTTL {
				delete(d.workers, w)
			}
		}
		d.mu.Unlock()
	}
}

// recLockedNoTouch looks a worker up without refreshing its liveness
// — the janitor must not keep a vanished worker alive by penalizing
// it.
func (d *Dispatcher) recLockedNoTouch(worker string) *workerRec {
	rec, ok := d.workers[worker]
	if !ok {
		rec = &workerRec{name: worker, state: workerLive}
		d.workers[worker] = rec
	}
	return rec
}
