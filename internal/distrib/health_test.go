package distrib

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRegisterDeregisterLifecycle: an explicit registration makes the
// fleet live before the first claim, and deregistration removes the
// worker from the live set immediately — not after 2×WorkerTTL —
// reclaiming any lease it still holds.
func TestRegisterDeregisterLifecycle(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())

	if d.LiveWorkers() != 0 {
		t.Fatal("fleet live before any worker appeared")
	}
	if err := d.Register("w1"); err != nil {
		t.Fatalf("register: %v", err)
	}
	if d.LiveWorkers() != 1 {
		t.Fatal("registered worker not counted live")
	}
	s := d.Stats()
	if len(s.PerWorker) != 1 || !s.PerWorker[0].Registered || s.PerWorker[0].State != "live" {
		t.Fatalf("worker row = %+v", s.PerWorker)
	}

	done := execAsync(context.Background(), d, testUnit("dereg"))
	l := claimOrFatal(t, d, "w1")

	d.Deregister("w1")
	if n := d.LiveWorkers(); n != 0 {
		t.Fatalf("LiveWorkers after deregister = %d, want 0 immediately", n)
	}
	// The reclaimed unit finds no fleet: the submitter falls back.
	if out := <-done; !errors.Is(out.err, ErrNoWorkers) {
		t.Fatalf("unit after deregister = %v, want ErrNoWorkers", out.err)
	}
	// The departed worker's late upload is acknowledged as stale.
	if stale, err := d.Complete(l.ID, "late", nil); err != nil || !stale {
		t.Fatalf("upload after deregister = (stale=%v, %v), want stale", stale, err)
	}
	d.Deregister("w1") // idempotent
}

// TestQuarantineOnRepeatedErrors: three worker-reported execution
// errors push the health score over the default threshold; the worker
// is quarantined, its claims refused with a typed 403-mapped error,
// and the unit it kept failing falls back to local execution instead
// of cycling on the broken worker forever.
func TestQuarantineOnRepeatedErrors(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	registerWorker(t, d, "w1")

	done := execAsync(context.Background(), d, testUnit("flaky"))
	for i := 0; i < 3; i++ {
		l := claimOrFatal(t, d, "w1")
		if stale, err := d.Complete(l.ID, nil, fmt.Errorf("boom %d", i)); err != nil || stale {
			t.Fatalf("error upload %d = (stale=%v, %v)", i, stale, err)
		}
	}

	_, _, err := d.Claim(context.Background(), "w1", time.Millisecond)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("claim after 3 errors = %v, want ErrQuarantined", err)
	}
	var qe *QuarantineError
	if !errors.As(err, &qe) || qe.Worker != "w1" || !qe.Until.After(time.Now()) {
		t.Fatalf("quarantine error = %#v", err)
	}

	// The only worker is quarantined -> the janitor fails the re-queued
	// unit over to local execution.
	if out := <-done; !errors.Is(out.err, ErrNoWorkers) {
		t.Fatalf("unit with quarantined fleet = %v, want ErrNoWorkers", out.err)
	}
	s := d.Stats()
	if s.Quarantines != 1 || s.Workers != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if len(s.PerWorker) != 1 || s.PerWorker[0].State != "quarantined" || s.PerWorker[0].Errors != 3 {
		t.Fatalf("worker row = %+v", s.PerWorker)
	}
}

// TestProbeReinstatesWorker: after the cooldown a quarantined worker
// gets exactly one half-open probe claim; completing it successfully
// reinstates the worker with a clean score.
func TestProbeReinstatesWorker(t *testing.T) {
	cfg := fastCfg()
	cfg.Cooldown = 40 * time.Millisecond
	d := newTestDispatcher(t, cfg)
	registerWorker(t, d, "w1")

	d.Quarantine("w1", "test says so")
	if _, _, err := d.Claim(context.Background(), "w1", time.Millisecond); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("claim inside cooldown = %v, want ErrQuarantined", err)
	}
	time.Sleep(cfg.Cooldown + 10*time.Millisecond)

	// Keep the fleet live through a second worker so Execute queues.
	registerWorker(t, d, "w2")
	done := execAsync(context.Background(), d, testUnit("probe"))
	l, ok, err := d.Claim(context.Background(), "w1", 2*time.Second)
	if err != nil || !ok {
		t.Fatalf("probe claim = (%v, %v)", ok, err)
	}
	if st := d.Stats().PerWorker[0]; st.State != "probing" {
		t.Fatalf("state during probe = %q, want probing", st.State)
	}
	if stale, err := d.Complete(l.ID, "proof", nil); err != nil || stale {
		t.Fatalf("probe complete = (stale=%v, %v)", stale, err)
	}
	if out := <-done; out.err != nil || out.result != "proof" || out.worker != "w1" {
		t.Fatalf("probe outcome = %+v", out)
	}
	st := d.Stats().PerWorker[0]
	if st.State != "live" || st.Score != 0 {
		t.Fatalf("worker after successful probe = %+v", st)
	}
}

// TestProbeFailureDoublesCooldown: a failed probe sends the worker
// straight back to quarantine with a longer cooldown instead of
// reinstating it.
func TestProbeFailureDoublesCooldown(t *testing.T) {
	cfg := fastCfg()
	cfg.Cooldown = 30 * time.Millisecond
	d := newTestDispatcher(t, cfg)
	registerWorker(t, d, "w1")

	d.Quarantine("w1", "bad bytes")
	time.Sleep(cfg.Cooldown + 10*time.Millisecond)
	registerWorker(t, d, "w2")

	done := execAsync(context.Background(), d, testUnit("probe2"))
	l, ok, err := d.Claim(context.Background(), "w1", 2*time.Second)
	if err != nil || !ok {
		t.Fatalf("probe claim = (%v, %v)", ok, err)
	}
	if stale, err := d.Complete(l.ID, nil, errors.New("still broken")); err != nil || stale {
		t.Fatalf("probe error upload = (stale=%v, %v)", stale, err)
	}
	_, _, err = d.Claim(context.Background(), "w1", time.Millisecond)
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("claim after failed probe = %v, want QuarantineError", err)
	}
	// Second quarantine: cooldown doubled (2x base), so the release
	// time sits beyond one base cooldown from now.
	if until := time.Until(qe.Until); until < cfg.Cooldown {
		t.Fatalf("cooldown after failed probe = %v, want >= %v (doubled)", until, cfg.Cooldown)
	}
	if s := d.Stats(); s.Quarantines != 2 {
		t.Fatalf("quarantine events = %d, want 2", s.Quarantines)
	}
	// The unit the probe failed goes to another worker.
	l2 := claimOrFatal(t, d, "w2")
	if stale, err := d.Complete(l2.ID, "rescued", nil); err != nil || stale {
		t.Fatalf("rescue complete = (stale=%v, %v)", stale, err)
	}
	if out := <-done; out.err != nil || out.result != "rescued" {
		t.Fatalf("outcome = %+v", out)
	}
}

// TestPoisonAfterDistinctWorkerFailures: a unit failed by MaxAttempts
// distinct workers stops cycling and resolves with a PoisonedError
// carrying the per-worker history.
func TestPoisonAfterDistinctWorkerFailures(t *testing.T) {
	d := newTestDispatcher(t, fastCfg()) // MaxAttempts default 3

	registerWorker(t, d, "w1")
	done := execAsync(context.Background(), d, testUnit("cursed"))
	for i, w := range []string{"w1", "w2", "w3"} {
		l := claimOrFatal(t, d, w)
		if l.Unit.Key != "cursed" {
			t.Fatalf("worker %s claimed %q", w, l.Unit.Key)
		}
		if stale, err := d.Complete(l.ID, nil, fmt.Errorf("fails everywhere %d", i)); err != nil || stale {
			t.Fatalf("error upload %d = (stale=%v, %v)", i, stale, err)
		}
	}
	out := <-done
	if !errors.Is(out.err, ErrPoisoned) {
		t.Fatalf("unit after 3 distinct failures = %v, want ErrPoisoned", out.err)
	}
	var pe *PoisonedError
	if !errors.As(out.err, &pe) {
		t.Fatalf("error type = %T", out.err)
	}
	if pe.Label != "cursed" || len(pe.Failures) != 3 {
		t.Fatalf("poison history = %+v", pe)
	}
	seen := map[string]bool{}
	for _, f := range pe.Failures {
		seen[f.Worker] = true
		if f.Reason == "" {
			t.Fatalf("failure without reason: %+v", f)
		}
	}
	if !seen["w1"] || !seen["w2"] || !seen["w3"] {
		t.Fatalf("failure workers = %+v", pe.Failures)
	}
	if s := d.Stats(); s.Poisoned != 1 {
		t.Fatalf("Poisoned = %d, want 1", s.Poisoned)
	}
}

// TestRejectTaintsLeaseAndRequeues: a checksum-mismatch rejection
// charges the worker double, taints the lease so a follow-up upload
// on it is discarded, and hands the unit to the next worker.
func TestRejectTaintsLeaseAndRequeues(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	registerWorker(t, d, "good")

	done := execAsync(context.Background(), d, testUnit("verify"))
	l := claimOrFatal(t, d, "evil")
	if stale, err := d.Reject(l.ID, "result checksum mismatch"); err != nil || stale {
		t.Fatalf("reject = (stale=%v, %v)", stale, err)
	}
	// The rejected worker retries its upload on the tainted lease:
	// discarded as stale, never delivered to the submitter.
	if stale, err := d.Complete(l.ID, "forged", nil); err != nil || !stale {
		t.Fatalf("upload on tainted lease = (stale=%v, %v), want stale", stale, err)
	}

	l2 := claimOrFatal(t, d, "good")
	if l2.Unit.Key != "verify" {
		t.Fatalf("requeued unit = %q", l2.Unit.Key)
	}
	if stale, err := d.Complete(l2.ID, "honest", nil); err != nil || stale {
		t.Fatalf("honest complete = (stale=%v, %v)", stale, err)
	}
	if out := <-done; out.err != nil || out.result != "honest" || out.worker != "good" {
		t.Fatalf("outcome = %+v", out)
	}

	s := d.Stats()
	if s.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", s.Rejected)
	}
	for _, w := range s.PerWorker {
		if w.Name == "evil" && w.Mismatches != 1 {
			t.Fatalf("evil row = %+v", w)
		}
	}
	// A second mismatch crosses the threshold (2+2 >= 2.5).
	done2 := execAsync(context.Background(), d, testUnit("verify2"))
	l3 := claimOrFatal(t, d, "evil")
	if _, err := d.Reject(l3.ID, "result checksum mismatch"); err != nil {
		t.Fatalf("second reject: %v", err)
	}
	if _, _, err := d.Claim(context.Background(), "evil", time.Millisecond); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("claim after 2 mismatches = %v, want ErrQuarantined", err)
	}
	l4 := claimOrFatal(t, d, "good")
	d.Complete(l4.ID, "honest2", nil)
	if out := <-done2; out.err != nil || out.result != "honest2" {
		t.Fatalf("outcome2 = %+v", out)
	}
}

// TestParkedClaimReturnsOnClose is the shutdown regression: a worker
// parked in a long poll must learn the server is gone immediately —
// ErrClosed, well before its own poll window would lapse.
func TestParkedClaimReturnsOnClose(t *testing.T) {
	d := New(fastCfg())
	errc := make(chan error, 1)
	go func() {
		_, _, err := d.Claim(context.Background(), "w1", 30*time.Second)
		errc <- err
	}()
	waitFor(t, func() bool { return d.LiveWorkers() == 1 })

	start := time.Now()
	d.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("parked claim on close = %v, want ErrClosed", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Fatalf("parked claim took %v to notice the close", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked claim still hanging after Close")
	}
}

// TestParkedClaimReturnsOnDrain: same promptness requirement for
// Drain — the parked worker gets ErrDraining right away.
func TestParkedClaimReturnsOnDrain(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	errc := make(chan error, 1)
	go func() {
		_, _, err := d.Claim(context.Background(), "w1", 30*time.Second)
		errc <- err
	}()
	waitFor(t, func() bool { return d.LiveWorkers() == 1 })

	d.Drain()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("parked claim on drain = %v, want ErrDraining", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked claim still hanging after Drain")
	}
}

// TestJanitorForgetsIdleWorkerKeepsParked: the janitor prunes a
// worker seen beyond 2×WorkerTTL, but never one parked in a claim,
// however long the park lasts.
func TestJanitorForgetsIdleWorkerKeepsParked(t *testing.T) {
	cfg := fastCfg()
	cfg.WorkerTTL = 20 * time.Millisecond
	d := newTestDispatcher(t, cfg)

	registerWorker(t, d, "idle")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Claim(ctx, "parked", 30*time.Second)
	waitFor(t, func() bool {
		for _, w := range d.Stats().PerWorker {
			if w.Name == "parked" {
				return true
			}
		}
		return false
	})

	// Past 2×WorkerTTL the idle worker is forgotten; the parked one
	// stays, still counted live.
	waitFor(t, func() bool {
		per := d.Stats().PerWorker
		return len(per) == 1 && per[0].Name == "parked"
	})
	time.Sleep(3 * cfg.WorkerTTL)
	per := d.Stats().PerWorker
	if len(per) != 1 || per[0].Name != "parked" {
		t.Fatalf("registry after long park = %+v", per)
	}
	if d.LiveWorkers() != 1 {
		t.Fatal("parked worker no longer live")
	}
}

// TestHeartbeatRacesQuarantine hammers Heartbeat against a quarantine
// decision on the same worker: whatever the interleaving, the lease's
// unit resolves exactly once (via the rescue worker), heartbeats
// never resurrect a reclaimed lease, and nothing panics under -race.
func TestHeartbeatRacesQuarantine(t *testing.T) {
	for round := 0; round < 20; round++ {
		d := New(fastCfg())
		registerWorker(t, d, "sus")
		registerWorker(t, d, "rescue")

		done := execAsync(context.Background(), d, testUnit("raced"))
		l := claimOrFatal(t, d, "sus")

		var wg sync.WaitGroup
		start := make(chan struct{})
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			for {
				if _, err := d.Heartbeat(l.ID); err != nil {
					return // lease reclaimed by the quarantine
				}
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			d.Quarantine("sus", "race test")
		}()
		close(start)
		wg.Wait()

		// The quarantine reclaimed the lease; the rescue worker picks
		// the unit up and resolves it — exactly once.
		l2 := claimOrFatal(t, d, "rescue")
		if stale, err := d.Complete(l2.ID, round, nil); err != nil || stale {
			t.Fatalf("rescue complete = (stale=%v, %v)", stale, err)
		}
		out := <-done
		if out.err != nil || out.result != round {
			t.Fatalf("outcome = %+v", out)
		}
		if _, err := d.Heartbeat(l.ID); !errors.Is(err, ErrLeaseNotFound) {
			t.Fatalf("heartbeat on reclaimed lease = %v, want ErrLeaseNotFound", err)
		}
		if s := d.Stats(); s.Completes != 1 {
			t.Fatalf("completes = %d, want exactly 1", s.Completes)
		}
		d.Close()
	}
}
