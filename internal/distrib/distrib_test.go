package distrib

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fastCfg keeps lease windows tiny so expiry paths run in milliseconds.
func fastCfg() Config {
	return Config{LeaseTTL: 50 * time.Millisecond, WorkerTTL: 250 * time.Millisecond, Sweep: 5 * time.Millisecond}
}

func newTestDispatcher(t *testing.T, cfg Config) *Dispatcher {
	t.Helper()
	d := New(cfg)
	t.Cleanup(d.Close)
	return d
}

func testUnit(key string) Unit {
	return Unit{Key: key, Job: "job-1", Spec: "s", Label: key, Payload: []byte(`{"k":"` + key + `"}`)}
}

// execAsync submits a unit on a background goroutine and returns the
// channel its outcome lands on.
func execAsync(ctx context.Context, d *Dispatcher, u Unit) chan outcome {
	ch := make(chan outcome, 1)
	go func() {
		res, worker, err := d.Execute(ctx, u)
		ch <- outcome{result: res, worker: worker, err: err}
	}()
	return ch
}

// registerWorker marks a worker live (seen within WorkerTTL) with one
// short empty claim, without leaving a claimer parked that would race
// the test for subsequently queued units.
func registerWorker(t *testing.T, d *Dispatcher, name string) {
	t.Helper()
	if _, ok, err := d.Claim(context.Background(), name, time.Millisecond); ok || err != nil {
		t.Fatalf("liveness claim = (%v, %v)", ok, err)
	}
}

// claimOrFatal claims with a generous wait and fails the test if no
// unit arrives.
func claimOrFatal(t *testing.T, d *Dispatcher, worker string) Lease {
	t.Helper()
	l, ok, err := d.Claim(context.Background(), worker, 2*time.Second)
	if err != nil {
		t.Fatalf("claim: %v", err)
	}
	if !ok {
		t.Fatal("claim timed out with a unit queued")
	}
	return l
}

func TestExecuteNoWorkersImmediate(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	_, _, err := d.Execute(context.Background(), testUnit("a"))
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Execute with no fleet = %v, want ErrNoWorkers", err)
	}
	if s := d.Stats(); s.NoWorkerFallbacks != 1 {
		t.Fatalf("NoWorkerFallbacks = %d, want 1", s.NoWorkerFallbacks)
	}
}

// TestClaimCompleteRoundTrip is the happy path: a parked worker makes
// the fleet live, Execute queues the unit, the claim hands it out under
// a lease, and Complete delivers the outcome to the submitter.
func TestClaimCompleteRoundTrip(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())

	type claimed struct {
		l   Lease
		ok  bool
		err error
	}
	cc := make(chan claimed, 1)
	go func() {
		l, ok, err := d.Claim(context.Background(), "w1", 2*time.Second)
		cc <- claimed{l, ok, err}
	}()
	// Wait until the worker is parked so Execute sees a live fleet.
	waitFor(t, func() bool { return d.LiveWorkers() == 1 })

	done := execAsync(context.Background(), d, testUnit("abcdef0123456789"))
	c := <-cc
	if c.err != nil || !c.ok {
		t.Fatalf("claim = (%v, %v)", c.ok, c.err)
	}
	if c.l.Unit.Key != "abcdef0123456789" || c.l.Worker != "w1" {
		t.Fatalf("lease = %+v", c.l)
	}
	if c.l.TTL != d.LeaseTTL() {
		t.Fatalf("lease TTL = %v, want %v", c.l.TTL, d.LeaseTTL())
	}
	if stale, err := d.Complete(c.l.ID, "payload", nil); err != nil || stale {
		t.Fatalf("Complete = (stale=%v, %v)", stale, err)
	}
	out := <-done
	if out.err != nil || out.result != "payload" {
		t.Fatalf("Execute = (%v, %v)", out.result, out.err)
	}
	s := d.Stats()
	if s.Claims != 1 || s.Completes != 1 || s.QueueDepth != 0 || s.ActiveLeases != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestLeaseLifecycle drives one unit through the full state machine:
// claim -> heartbeat (lease survives past its original deadline) ->
// expiry -> reclaim -> re-dispatch to a second worker -> completion,
// with the first worker's late upload discarded as a stale duplicate.
func TestLeaseLifecycle(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	registerWorker(t, d, "w1")

	done := execAsync(context.Background(), d, testUnit("lifecycle"))
	l1 := claimOrFatal(t, d, "w1")

	// Heartbeats keep the lease alive well past its original deadline.
	end := time.Now().Add(3 * d.LeaseTTL() / 2)
	for time.Now().Before(end) {
		if _, err := d.Heartbeat(l1.ID); err != nil {
			t.Fatalf("heartbeat while live: %v", err)
		}
		time.Sleep(d.LeaseTTL() / 4)
	}

	// Stop heartbeating: the janitor expires the lease and requeues the
	// unit for re-dispatch.
	waitFor(t, func() bool { return d.Stats().Reclaims == 1 })
	if _, err := d.Heartbeat(l1.ID); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("heartbeat after expiry = %v, want ErrLeaseNotFound", err)
	}

	// A second worker picks the reclaimed unit up and completes it.
	l2 := claimOrFatal(t, d, "w2")
	if l2.Unit.Key != "lifecycle" {
		t.Fatalf("re-dispatched unit = %q", l2.Unit.Key)
	}
	if stale, err := d.Complete(l2.ID, 42, nil); err != nil || stale {
		t.Fatalf("second complete = (stale=%v, %v)", stale, err)
	}
	out := <-done
	if out.err != nil || out.result != 42 {
		t.Fatalf("Execute = (%v, %v)", out.result, out.err)
	}

	// The first worker finishes anyway and uploads: harmless no-op.
	if stale, err := d.Complete(l1.ID, 41, nil); err != nil || !stale {
		t.Fatalf("late duplicate upload = (stale=%v, %v), want stale", stale, err)
	}
	if s := d.Stats(); s.StaleUploads != 1 || s.Reclaims != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestExpiredLeaseUploadStillAccepted: a lease expires and the unit is
// requeued, but nobody has re-claimed it yet — the original worker's
// upload carries the exact bytes any re-execution would produce, so it
// resolves the unit instead of being discarded.
func TestExpiredLeaseUploadStillAccepted(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	registerWorker(t, d, "w1")

	done := execAsync(context.Background(), d, testUnit("late"))
	l := claimOrFatal(t, d, "w1")
	// The fleet stays live (w1 was seen within WorkerTTL) while the
	// lease expires and the unit sits requeued, unclaimed.
	waitFor(t, func() bool { return d.Stats().Reclaims == 1 })

	if stale, err := d.Complete(l.ID, "sooner", nil); err != nil || stale {
		t.Fatalf("post-expiry upload = (stale=%v, %v), want accepted", stale, err)
	}
	out := <-done
	if out.err != nil || out.result != "sooner" {
		t.Fatalf("Execute = (%v, %v)", out.result, out.err)
	}
}

func TestDuplicateCompleteIsStale(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	registerWorker(t, d, "w1")

	done := execAsync(context.Background(), d, testUnit("dup"))
	l := claimOrFatal(t, d, "w1")
	if stale, err := d.Complete(l.ID, 1, nil); err != nil || stale {
		t.Fatalf("first complete = (stale=%v, %v)", stale, err)
	}
	if stale, err := d.Complete(l.ID, 2, nil); err != nil || !stale {
		t.Fatalf("second complete = (stale=%v, %v), want stale", stale, err)
	}
	if out := <-done; out.result != 1 {
		t.Fatalf("Execute result = %v, want the first upload", out.result)
	}
	if _, err := d.Complete("L99999999-nope", 3, nil); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("unknown lease complete = %v, want ErrLeaseNotFound", err)
	}
}

// TestWorkerVanishesFallsBack: the fleet goes quiet while a unit is
// queued — the janitor answers it with ErrNoWorkers so the submitter
// runs the arm locally instead of waiting forever.
func TestWorkerVanishesFallsBack(t *testing.T) {
	cfg := fastCfg()
	cfg.WorkerTTL = 30 * time.Millisecond
	d := newTestDispatcher(t, cfg)

	// One short poll marks the worker live, then it disappears.
	if _, ok, err := d.Claim(context.Background(), "w1", 10*time.Millisecond); ok || err != nil {
		t.Fatalf("empty claim = (%v, %v)", ok, err)
	}
	done := execAsync(context.Background(), d, testUnit("orphan"))
	out := <-done
	if !errors.Is(out.err, ErrNoWorkers) {
		t.Fatalf("Execute after fleet vanished = %v, want ErrNoWorkers", out.err)
	}
}

// TestDrain is the drain-vs-lease regression: draining refuses new
// claims, fails queued units over to local execution, but an
// outstanding lease may still heartbeat and deliver its result.
func TestDrain(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	registerWorker(t, d, "w1")

	leased := execAsync(context.Background(), d, testUnit("in-flight"))
	l := claimOrFatal(t, d, "w1")
	queued := execAsync(context.Background(), d, testUnit("still-queued"))
	waitFor(t, func() bool { return d.Stats().QueueDepth == 1 })

	d.Drain()

	// Queued unit fails over immediately; new claims and submissions
	// are refused.
	if out := <-queued; !errors.Is(out.err, ErrNoWorkers) {
		t.Fatalf("queued unit after drain = %v, want ErrNoWorkers", out.err)
	}
	if _, _, err := d.Claim(context.Background(), "w2", time.Second); !errors.Is(err, ErrDraining) {
		t.Fatalf("claim while draining = %v, want ErrDraining", err)
	}
	if _, _, err := d.Execute(context.Background(), testUnit("rejected")); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("Execute while draining = %v, want ErrNoWorkers", err)
	}

	// The outstanding lease still completes normally.
	if _, err := d.Heartbeat(l.ID); err != nil {
		t.Fatalf("heartbeat while draining: %v", err)
	}
	if stale, err := d.Complete(l.ID, "finished", nil); err != nil || stale {
		t.Fatalf("complete while draining = (stale=%v, %v)", stale, err)
	}
	if out := <-leased; out.err != nil || out.result != "finished" {
		t.Fatalf("leased unit = (%v, %v)", out.result, out.err)
	}
}

func TestCloseFailsEverything(t *testing.T) {
	d := New(fastCfg())
	registerWorker(t, d, "w1")

	leased := execAsync(context.Background(), d, testUnit("leased"))
	claimOrFatal(t, d, "w1")
	queued := execAsync(context.Background(), d, testUnit("queued"))
	waitFor(t, func() bool { return d.Stats().QueueDepth == 1 })

	d.Close()
	d.Close() // idempotent

	if out := <-leased; !errors.Is(out.err, ErrClosed) {
		t.Fatalf("leased unit on close = %v, want ErrClosed", out.err)
	}
	if out := <-queued; !errors.Is(out.err, ErrClosed) {
		t.Fatalf("queued unit on close = %v, want ErrClosed", out.err)
	}
	if _, _, err := d.Claim(context.Background(), "w2", time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("claim after close = %v, want ErrClosed", err)
	}
	if _, _, err := d.Execute(context.Background(), testUnit("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Execute after close = %v, want ErrClosed", err)
	}
}

// TestExecuteWithdrawOnCancel: a submitter that gives up withdraws its
// unit; a worker's later upload against the dead-letter lease is
// acknowledged as stale.
func TestExecuteWithdrawOnCancel(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	registerWorker(t, d, "park")

	ctx, cancel := context.WithCancel(context.Background())
	done := execAsync(ctx, d, testUnit("withdrawn"))
	l := claimOrFatal(t, d, "park")
	cancel()
	if out := <-done; !errors.Is(out.err, context.Canceled) {
		t.Fatalf("cancelled Execute = %v, want context.Canceled", out.err)
	}
	if stale, err := d.Complete(l.ID, "too late", nil); err != nil || !stale {
		t.Fatalf("upload after withdrawal = (stale=%v, %v), want stale", stale, err)
	}
}

func TestClaimTimesOutEmpty(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	start := time.Now()
	l, ok, err := d.Claim(context.Background(), "w1", 30*time.Millisecond)
	if ok || err != nil {
		t.Fatalf("empty claim = (%+v, %v, %v)", l, ok, err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("claim returned before its wait elapsed")
	}
}

// TestConcurrentFleet hammers the dispatcher with many submitters and
// workers under -race: every unit resolves exactly once.
func TestConcurrentFleet(t *testing.T) {
	d := newTestDispatcher(t, fastCfg())
	const workers, units = 4, 32

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				l, ok, err := d.Claim(ctx, "w"+string(rune('0'+w)), 200*time.Millisecond)
				if err != nil || !ok {
					continue
				}
				d.Complete(l.ID, l.Unit.Key, nil)
			}
		}(w)
	}
	waitFor(t, func() bool { return d.LiveWorkers() >= 1 })

	results := make(chan outcome, units)
	for i := 0; i < units; i++ {
		key := "unit-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		go func(key string) {
			res, worker, err := d.Execute(context.Background(), testUnit(key))
			results <- outcome{result: res, worker: worker, err: err}
		}(key)
	}
	for i := 0; i < units; i++ {
		out := <-results
		if out.err != nil {
			t.Fatalf("unit failed: %v", out.err)
		}
	}
	cancel()
	wg.Wait()
	if s := d.Stats(); s.Completes != units {
		t.Fatalf("completes = %d, want %d", s.Completes, units)
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}
