package tensor

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the sampling helpers the training and
// simulation code needs. It is deliberately a thin value type so each
// component can own an independent, seeded stream (no global RNG).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new independent generator from this one; useful for
// giving each node or each experiment arm its own stream while keeping
// the whole run reproducible from a single root seed.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Int63())
}

// Int63 returns a non-negative pseudo-random int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Normal returns a sample from N(mu, sigma²).
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// Perm returns a uniform random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// FillNormal fills v with independent N(mu, sigma²) samples.
func (g *RNG) FillNormal(v Vector, mu, sigma float64) {
	for i := range v {
		v[i] = g.Normal(mu, sigma)
	}
}

// KaimingNormal fills v with samples from the Kaiming-normal (He)
// initialization for a layer with fanIn inputs: N(0, 2/fanIn). A
// non-positive fanIn leaves v zeroed.
func (g *RNG) KaimingNormal(v Vector, fanIn int) {
	if fanIn <= 0 {
		v.Zero()
		return
	}
	std := math.Sqrt(2 / float64(fanIn))
	g.FillNormal(v, 0, std)
}

// Dirichlet samples a probability vector from Dirichlet(beta * 1_k) using
// the Gamma(beta, 1) construction (Marsaglia–Tsang). All components share
// the same concentration beta > 0.
func (g *RNG) Dirichlet(k int, beta float64) Vector {
	out := NewVector(k)
	var sum float64
	for i := 0; i < k; i++ {
		x := g.gamma(beta)
		out[i] = x
		sum += x
	}
	if sum == 0 {
		// Degenerate draw (possible for tiny beta due to underflow):
		// fall back to a one-hot vector at a uniform index.
		out[g.Intn(k)] = 1
		return out
	}
	out.Scale(1 / sum)
	return out
}

// gamma samples Gamma(shape, 1) via Marsaglia–Tsang, with the standard
// boosting trick for shape < 1.
func (g *RNG) gamma(shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}
		u := g.Float64()
		for u == 0 {
			u = g.Float64()
		}
		return g.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
