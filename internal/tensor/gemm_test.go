package tensor

import (
	"testing"
)

// naiveGemm computes the reference result with plain triple loops whose
// per-element accumulation also runs in increasing k order, so the
// blocked kernels must match it exactly (tolerance zero).
func naiveGemmNT(c, a, b []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := c[i*n+j]
			for t := 0; t < k; t++ {
				s += a[i*k+t] * b[j*k+t]
			}
			c[i*n+j] = s
		}
	}
}

func naiveGemmTN(c, a, b []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := c[i*n+j]
			for t := 0; t < k; t++ {
				s += a[t*m+i] * b[t*n+j]
			}
			c[i*n+j] = s
		}
	}
}

func naiveGemmNN(c, a, b []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := c[i*n+j]
			for t := 0; t < k; t++ {
				s += a[i*k+t] * b[t*n+j]
			}
			c[i*n+j] = s
		}
	}
}

func randSlice(rng *RNG, n int) []float64 {
	v := NewVector(n)
	rng.FillNormal(v, 0, 1)
	return v
}

func TestGemmKernelsMatchNaiveBitExact(t *testing.T) {
	rng := NewRNG(11)
	// Shapes straddle the 4-wide blocking boundary, including remainders.
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {5, 9, 13}, {8, 6, 4}, {7, 3, 10}, {16, 11, 5}}
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		run := func(name string, blocked, naive func(c, a, b []float64, m, n, k int), aLen, bLen int) {
			a := randSlice(rng, aLen)
			b := randSlice(rng, bLen)
			// Sprinkle exact zeros to exercise the skip paths.
			for i := 0; i < len(a); i += 3 {
				a[i] = 0
			}
			init := randSlice(rng, m*n)
			got := Vector(init).Clone()
			want := Vector(init).Clone()
			blocked(got, a, b, m, n, k)
			naive(want, a, b, m, n, k)
			if !EqualApprox(got, want, 0) {
				t.Errorf("%s %dx%dx%d: blocked result differs from naive", name, m, n, k)
			}
		}
		run("GemmNT", GemmNT, naiveGemmNT, m*k, n*k)
		run("GemmTN", GemmTN, naiveGemmTN, k*m, k*n)
		run("GemmNN", GemmNN, naiveGemmNN, m*k, k*n)
	}
}

func TestVecPoolRecycles(t *testing.T) {
	p := NewVecPool(8)
	if p.Len() != 8 {
		t.Fatalf("Len = %d", p.Len())
	}
	v := p.Get(8)
	if len(v) != 8 {
		t.Fatalf("Get(8) len = %d", len(v))
	}
	v.Fill(3)
	p.Put(v)
	w := p.Get(8)
	if len(w) != 8 {
		t.Fatalf("recycled len = %d", len(w))
	}
	// Mismatched lengths must not poison the pool.
	odd := p.Get(5)
	if len(odd) != 5 {
		t.Fatalf("Get(5) len = %d", len(odd))
	}
	p.Put(odd) // dropped
	if got := p.Get(8); len(got) != 8 {
		t.Fatalf("pool poisoned: len %d", len(got))
	}
}

func TestUnrolledVectorKernels(t *testing.T) {
	rng := NewRNG(5)
	for _, n := range []int{0, 1, 3, 4, 5, 8, 31} {
		v := randSlice(rng, n)
		w := randSlice(rng, n)
		vRef := Vector(v).Clone()

		got := Vector(v).Clone()
		if err := got.Axpy(2.5, w); err != nil {
			t.Fatal(err)
		}
		for i := range vRef {
			want := vRef[i] + 2.5*w[i]
			if got[i] != want {
				t.Fatalf("axpy n=%d i=%d: %v != %v", n, i, got[i], want)
			}
		}

		s, err := Dot(v, w)
		if err != nil {
			t.Fatal(err)
		}
		var ref float64
		for i := range v {
			ref += v[i] * w[i]
		}
		if s != ref {
			t.Fatalf("dot n=%d: %v != %v (bit-exactness lost)", n, s, ref)
		}
	}
}
