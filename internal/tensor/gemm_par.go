package tensor

import (
	"runtime"

	"gossipmia/internal/par"
)

// Worker-tiled GEMM: the parallel row-block path of the blocked kernels.
//
// Each output row of C is a chain of fused accumulations that never
// reads another row, so partitioning C into contiguous row blocks and
// computing the blocks on separate goroutines performs exactly the same
// floating-point operations in exactly the same per-element order as
// the serial kernel — the results are bit-identical for every worker
// count, which is what lets the simulator's determinism contract
// ("byte-identical for any Workers setting") extend through the
// minibatch and scoring hot paths.
//
// Tiling only pays above a size threshold. The serial kernels sustain
// about 1<<18 m·n·k products per 80µs on the reference host, and a
// spawn-based fan-out costs ~2µs of handoff, so the threshold admits
// GEMMs of ≥1<<17 products (~40µs serial): a two-way cut then keeps the
// handoff under ~10% of the tile's arithmetic. Below the floor — the
// tiny per-node minibatches of the quick-scale experiments — the
// serial kernels keep the local-update path allocation-free.
const (
	// gemmParMinFlops is the minimum m*n*k before the parallel path
	// engages; below it the goroutine hand-off dominates the arithmetic.
	gemmParMinFlops = 1 << 17
	// gemmParMinRows is the smallest row block worth a goroutine.
	gemmParMinRows = 8
)

// gemmTiles resolves how many row blocks to cut m into for the given
// worker budget; 1 means "use the serial kernel". The budget is clamped
// to GOMAXPROCS: on a single-P runtime tiles cannot overlap, so cutting
// would charge the handoff cost for zero concurrency (profiles of the
// workers=4 arm on a 1-core host showed this as a consistent ~15% wall
// clock penalty before the clamp).
func gemmTiles(m, n, k, workers int) int {
	return gemmTilesFor(m, n, k, workers, runtime.GOMAXPROCS(0))
}

// gemmTilesFor is gemmTiles with the processor clamp made explicit for
// calibration tests.
func gemmTilesFor(m, n, k, workers, procs int) int {
	if workers > procs {
		workers = procs
	}
	if workers <= 1 || m < 2*gemmParMinRows {
		return 1
	}
	if m*n*k < gemmParMinFlops {
		return 1
	}
	t := workers
	if mx := m / gemmParMinRows; t > mx {
		t = mx
	}
	return t
}

// GemmNTW is GemmNT (C += A·Bᵀ, A m×k, B n×k, C m×n) with a worker-tiled
// row-block path: bit-identical to GemmNT for every worker count.
func GemmNTW(c, a, b []float64, m, n, k, workers int) {
	tiles := gemmTiles(m, n, k, workers)
	if tiles <= 1 {
		GemmNT(c, a, b, m, n, k)
		return
	}
	par.ForEach(tiles, tiles, func(t int) {
		lo, hi := m*t/tiles, m*(t+1)/tiles
		GemmNT(c[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, n, k)
	})
}

// GemmNNW is GemmNN (C += A·B, A m×k, B k×n, C m×n) with a worker-tiled
// row-block path: bit-identical to GemmNN for every worker count.
func GemmNNW(c, a, b []float64, m, n, k, workers int) {
	tiles := gemmTiles(m, n, k, workers)
	if tiles <= 1 {
		GemmNN(c, a, b, m, n, k)
		return
	}
	par.ForEach(tiles, tiles, func(t int) {
		lo, hi := m*t/tiles, m*(t+1)/tiles
		GemmNN(c[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, n, k)
	})
}

// GemmTNW is GemmTN (C += Aᵀ·B, A k×m, B k×n, C m×n) with a worker-tiled
// row-block path over the rows of C (the columns of A): each tile keeps
// the serial kernel's four-wide blocking over k, so every C element
// accumulates its terms in the same order — bit-identical to GemmTN for
// every worker count.
func GemmTNW(c, a, b []float64, m, n, k, workers int) {
	tiles := gemmTiles(m, n, k, workers)
	if tiles <= 1 {
		GemmTN(c, a, b, m, n, k)
		return
	}
	par.ForEach(tiles, tiles, func(t int) {
		gemmTNRange(c, a, b, m, n, k, m*t/tiles, m*(t+1)/tiles)
	})
}
