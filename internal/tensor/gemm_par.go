package tensor

import "gossipmia/internal/par"

// Worker-tiled GEMM: the parallel row-block path of the blocked kernels.
//
// Each output row of C is a chain of fused accumulations that never
// reads another row, so partitioning C into contiguous row blocks and
// computing the blocks on separate goroutines performs exactly the same
// floating-point operations in exactly the same per-element order as
// the serial kernel — the results are bit-identical for every worker
// count, which is what lets the simulator's determinism contract
// ("byte-identical for any Workers setting") extend through the
// minibatch and scoring hot paths.
//
// Tiling only pays above a size threshold: spawning a goroutine costs
// on the order of a microsecond, so the tiny per-node minibatches of
// the quick-scale experiments stay on the serial kernels (keeping the
// local-update path allocation-free), while large evaluation and
// paper-scale batches fan out.
const (
	// gemmParMinFlops is the minimum m*n*k before the parallel path
	// engages; below it the goroutine hand-off dominates the arithmetic.
	gemmParMinFlops = 1 << 18
	// gemmParMinRows is the smallest row block worth a goroutine.
	gemmParMinRows = 8
)

// gemmTiles resolves how many row blocks to cut m into for the given
// worker budget; 1 means "use the serial kernel".
func gemmTiles(m, n, k, workers int) int {
	if workers <= 1 || m < 2*gemmParMinRows {
		return 1
	}
	if m*n*k < gemmParMinFlops {
		return 1
	}
	t := workers
	if mx := m / gemmParMinRows; t > mx {
		t = mx
	}
	return t
}

// GemmNTW is GemmNT (C += A·Bᵀ, A m×k, B n×k, C m×n) with a worker-tiled
// row-block path: bit-identical to GemmNT for every worker count.
func GemmNTW(c, a, b []float64, m, n, k, workers int) {
	tiles := gemmTiles(m, n, k, workers)
	if tiles <= 1 {
		GemmNT(c, a, b, m, n, k)
		return
	}
	par.ForEach(tiles, tiles, func(t int) {
		lo, hi := m*t/tiles, m*(t+1)/tiles
		GemmNT(c[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, n, k)
	})
}

// GemmNNW is GemmNN (C += A·B, A m×k, B k×n, C m×n) with a worker-tiled
// row-block path: bit-identical to GemmNN for every worker count.
func GemmNNW(c, a, b []float64, m, n, k, workers int) {
	tiles := gemmTiles(m, n, k, workers)
	if tiles <= 1 {
		GemmNN(c, a, b, m, n, k)
		return
	}
	par.ForEach(tiles, tiles, func(t int) {
		lo, hi := m*t/tiles, m*(t+1)/tiles
		GemmNN(c[lo*n:hi*n], a[lo*k:hi*k], b, hi-lo, n, k)
	})
}

// GemmTNW is GemmTN (C += Aᵀ·B, A k×m, B k×n, C m×n) with a worker-tiled
// row-block path over the rows of C (the columns of A): each tile keeps
// the serial kernel's four-wide blocking over k, so every C element
// accumulates its terms in the same order — bit-identical to GemmTN for
// every worker count.
func GemmTNW(c, a, b []float64, m, n, k, workers int) {
	tiles := gemmTiles(m, n, k, workers)
	if tiles <= 1 {
		GemmTN(c, a, b, m, n, k)
		return
	}
	par.ForEach(tiles, tiles, func(t int) {
		gemmTNRange(c, a, b, m, n, k, m*t/tiles, m*(t+1)/tiles)
	})
}
