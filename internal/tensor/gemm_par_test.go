package tensor

import "testing"

// fillRand deterministically fills a slice with non-trivial values whose
// sums are rounding-sensitive, so any accumulation-order change between
// the serial and tiled kernels shows up as a bit difference.
func fillRand(v []float64, rng *RNG) {
	for i := range v {
		v[i] = rng.Normal(0, 1) * (1 + rng.Float64()*1e-8)
	}
}

// TestGemmTiledBitIdentity sweeps odd shapes and worker counts and
// requires the worker-tiled kernels to produce byte-for-byte the same
// output as the serial kernels, including the accumulate-into-C
// semantics (C starts non-zero).
func TestGemmTiledBitIdentity(t *testing.T) {
	dims := []int{1, 3, 17, 64, 129}
	rng := NewRNG(7)
	for _, m := range dims {
		for _, n := range dims {
			for _, k := range dims {
				a := make([]float64, m*k)
				bNT := make([]float64, n*k)
				bNN := make([]float64, k*n)
				aTN := make([]float64, k*m)
				c0 := make([]float64, m*n)
				fillRand(a, rng)
				fillRand(bNT, rng)
				fillRand(bNN, rng)
				fillRand(aTN, rng)
				fillRand(c0, rng)

				type kernel struct {
					name   string
					serial func(c []float64)
					tiled  func(c []float64, workers int)
				}
				kernels := []kernel{
					{"NT",
						func(c []float64) { GemmNT(c, a, bNT, m, n, k) },
						func(c []float64, w int) { GemmNTW(c, a, bNT, m, n, k, w) }},
					{"NN",
						func(c []float64) { GemmNN(c, a, bNN, m, n, k) },
						func(c []float64, w int) { GemmNNW(c, a, bNN, m, n, k, w) }},
					{"TN",
						func(c []float64) { GemmTN(c, aTN, bNN, m, n, k) },
						func(c []float64, w int) { GemmTNW(c, aTN, bNN, m, n, k, w) }},
				}
				for _, kn := range kernels {
					want := append([]float64(nil), c0...)
					kn.serial(want)
					for _, workers := range []int{1, 2, 3, 8} {
						got := append([]float64(nil), c0...)
						kn.tiled(got, workers)
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("Gemm%sW m=%d n=%d k=%d workers=%d: element %d = %x, serial %x",
									kn.name, m, n, k, workers, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestGemmTNRangeCoversAllRows pins the tile kernel itself: stitching
// arbitrary row ranges back together must equal the full kernel.
func TestGemmTNRangeCoversAllRows(t *testing.T) {
	const m, n, k = 17, 5, 13
	rng := NewRNG(11)
	a := make([]float64, k*m)
	b := make([]float64, k*n)
	fillRand(a, rng)
	fillRand(b, rng)
	want := make([]float64, m*n)
	GemmTN(want, a, b, m, n, k)
	for _, cuts := range [][]int{{0, 17}, {0, 1, 17}, {0, 8, 9, 17}, {0, 4, 8, 12, 17}} {
		got := make([]float64, m*n)
		for i := 0; i+1 < len(cuts); i++ {
			gemmTNRange(got, a, b, m, n, k, cuts[i], cuts[i+1])
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cuts %v: element %d = %v, want %v", cuts, i, got[i], want[i])
			}
		}
	}
}

// TestGemmTilesThreshold documents the engagement rules: tiny shapes
// stay serial (keeping the minibatch path allocation-free), large ones
// split into at most min(workers, GOMAXPROCS) blocks of at least
// gemmParMinRows rows.
func TestGemmTilesThreshold(t *testing.T) {
	cases := []struct {
		m, n, k, workers, procs, want int
	}{
		{16, 48, 64, 1, 8, 1},    // one worker: always serial
		{16, 48, 64, 8, 8, 1},    // quick-scale minibatch: below flop floor
		{8, 1024, 1024, 8, 8, 1}, // too few rows to cut twice
		{1024, 64, 64, 4, 8, 4},  // large batch: one block per worker
		{1024, 64, 64, 256, 256, 128},
		{1024, 64, 64, 4, 1, 1}, // single-P runtime: tiling can't overlap
		{1024, 64, 64, 8, 2, 2}, // budget clamped to available processors
		{64, 64, 32, 4, 8, 4},   // 1<<17 products: at the calibrated floor
		{64, 64, 31, 4, 8, 1},   // just below the floor
	}
	for _, c := range cases {
		if got := gemmTilesFor(c.m, c.n, c.k, c.workers, c.procs); got != c.want {
			t.Errorf("gemmTilesFor(%d,%d,%d,workers=%d,procs=%d) = %d, want %d",
				c.m, c.n, c.k, c.workers, c.procs, got, c.want)
		}
	}
}
