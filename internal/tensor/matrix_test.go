package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMatVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	out, err := m.MatVec(Vector{1, 1, 1}, nil)
	if err != nil {
		t.Fatalf("MatVec: %v", err)
	}
	if !EqualApprox(out, Vector{6, 15}, 1e-15) {
		t.Fatalf("matvec = %v", out)
	}
	if _, err := m.MatVec(Vector{1, 2}, nil); !errors.Is(err, ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
	if _, err := m.MatVec(Vector{1, 1, 1}, NewVector(3)); !errors.Is(err, ErrShape) {
		t.Fatalf("out shape error = %v", err)
	}
}

func TestMatVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	out, err := m.MatVecT(Vector{1, 2}, nil)
	if err != nil {
		t.Fatalf("MatVecT: %v", err)
	}
	if !EqualApprox(out, Vector{9, 12, 15}, 1e-15) {
		t.Fatalf("matvecT = %v", out)
	}
	if _, err := m.MatVecT(Vector{1, 2, 3}, nil); !errors.Is(err, ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
}

func TestMatMulIdentity(t *testing.T) {
	m := NewMatrix(3, 3)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	got, err := MatMul(m, Identity(3))
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	if !EqualApprox(Vector(got.Data), Vector(m.Data), 1e-15) {
		t.Fatalf("m*I != m: %v", got.Data)
	}
	got, err = MatMul(Identity(3), m)
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	if !EqualApprox(Vector(got.Data), Vector(m.Data), 1e-15) {
		t.Fatalf("I*m != m: %v", got.Data)
	}
	if _, err := MatMul(NewMatrix(2, 3), NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	if err := m.AddOuter(2, Vector{1, 2}, Vector{3, 4}); err != nil {
		t.Fatalf("AddOuter: %v", err)
	}
	want := []float64{6, 8, 12, 16}
	if !EqualApprox(Vector(m.Data), Vector(want), 1e-15) {
		t.Fatalf("outer = %v, want %v", m.Data, want)
	}
	if err := m.AddOuter(1, Vector{1}, Vector{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
}

func TestDoublyStochasticAndSymmetric(t *testing.T) {
	// W for a complete graph on 3 nodes with self-loops: all entries 1/3.
	m := NewMatrix(3, 3)
	for i := range m.Data {
		m.Data[i] = 1.0 / 3
	}
	if !m.IsDoublyStochastic(1e-12) {
		t.Fatal("uniform matrix should be doubly stochastic")
	}
	if !m.IsSymmetric(0) {
		t.Fatal("uniform matrix should be symmetric")
	}
	m.Set(0, 1, 0.5)
	if m.IsDoublyStochastic(1e-12) {
		t.Fatal("perturbed matrix should not be doubly stochastic")
	}
	if m.IsSymmetric(1e-12) {
		t.Fatal("perturbed matrix should not be symmetric")
	}
	if NewMatrix(2, 3).IsDoublyStochastic(1e-12) {
		t.Fatal("non-square cannot be doubly stochastic")
	}
}

// Property: (A*B)*x == A*(B*x) for random small matrices.
func TestMatMulMatVecConsistency(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		a, b := NewMatrix(4, 3), NewMatrix(3, 5)
		g.FillNormal(Vector(a.Data), 0, 1)
		g.FillNormal(Vector(b.Data), 0, 1)
		x := NewVector(5)
		g.FillNormal(x, 0, 1)

		ab, err := MatMul(a, b)
		if err != nil {
			return false
		}
		lhs, err := ab.MatVec(x, nil)
		if err != nil {
			return false
		}
		bx, err := b.MatVec(x, nil)
		if err != nil {
			return false
		}
		rhs, err := a.MatVec(bx, nil)
		if err != nil {
			return false
		}
		return EqualApprox(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield identical streams")
		}
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	g := NewRNG(42)
	for _, beta := range []float64{0.05, 0.1, 0.5, 1, 10} {
		for i := 0; i < 20; i++ {
			p := g.Dirichlet(10, beta)
			if math.Abs(p.Sum()-1) > 1e-9 {
				t.Fatalf("dirichlet(beta=%v) sum = %v", beta, p.Sum())
			}
			for _, x := range p {
				if x < 0 {
					t.Fatalf("dirichlet negative component: %v", p)
				}
			}
		}
	}
}

func TestDirichletConcentration(t *testing.T) {
	// Small beta should be much more concentrated (higher max component
	// on average) than large beta.
	g := NewRNG(1)
	avgMax := func(beta float64) float64 {
		var s float64
		const n = 200
		for i := 0; i < n; i++ {
			m, _ := g.Dirichlet(10, beta).Max()
			s += m
		}
		return s / n
	}
	lo, hi := avgMax(0.1), avgMax(10)
	if lo <= hi {
		t.Fatalf("beta=0.1 avg max %v should exceed beta=10 avg max %v", lo, hi)
	}
}

func TestKaimingNormalVariance(t *testing.T) {
	g := NewRNG(3)
	v := NewVector(20000)
	fanIn := 50
	g.KaimingNormal(v, fanIn)
	var sq float64
	for _, x := range v {
		sq += x * x
	}
	got := sq / float64(len(v))
	want := 2.0 / float64(fanIn)
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("kaiming variance = %v, want ~%v", got, want)
	}
	// fanIn <= 0 zeroes.
	g.KaimingNormal(v, 0)
	if v.Norm2() != 0 {
		t.Fatal("fanIn=0 should zero the vector")
	}
}
