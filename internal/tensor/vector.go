// Package tensor provides the dense linear-algebra substrate used by the
// neural-network, gossip, and spectral-analysis packages. All types are
// plain float64 containers with explicit, allocation-conscious kernels; no
// global state and no hidden RNG.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned (wrapped) whenever two operands have incompatible
// dimensions.
var ErrShape = errors.New("tensor: shape mismatch")

// Vector is a dense one-dimensional array of float64.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	return make(Vector, n)
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to c.
func (v Vector) Fill(c float64) {
	for i := range v {
		v[i] = c
	}
}

// Zero sets every element of v to 0.
func (v Vector) Zero() { v.Fill(0) }

// AddInPlace sets v += w. It returns an error when lengths differ.
// The loop is unrolled four-wide; element-wise updates are independent,
// so results are identical to the scalar loop.
func (v Vector) AddInPlace(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("add %d += %d: %w", len(v), len(w), ErrShape)
	}
	i := 0
	for ; i+4 <= len(v); i += 4 {
		v[i] += w[i]
		v[i+1] += w[i+1]
		v[i+2] += w[i+2]
		v[i+3] += w[i+3]
	}
	for ; i < len(v); i++ {
		v[i] += w[i]
	}
	return nil
}

// SubInPlace sets v -= w. It returns an error when lengths differ.
func (v Vector) SubInPlace(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("sub %d -= %d: %w", len(v), len(w), ErrShape)
	}
	for i := range v {
		v[i] -= w[i]
	}
	return nil
}

// Scale sets v *= c. Unrolled four-wide (element-wise, order-free).
func (v Vector) Scale(c float64) {
	i := 0
	for ; i+4 <= len(v); i += 4 {
		v[i] *= c
		v[i+1] *= c
		v[i+2] *= c
		v[i+3] *= c
	}
	for ; i < len(v); i++ {
		v[i] *= c
	}
}

// Axpy sets v += a*w (the BLAS axpy kernel). It returns an error when
// lengths differ. Unrolled four-wide (element-wise, order-free).
func (v Vector) Axpy(a float64, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("axpy %d += a*%d: %w", len(v), len(w), ErrShape)
	}
	i := 0
	for ; i+4 <= len(v); i += 4 {
		v[i] += a * w[i]
		v[i+1] += a * w[i+1]
		v[i+2] += a * w[i+2]
		v[i+3] += a * w[i+3]
	}
	for ; i < len(v); i++ {
		v[i] += a * w[i]
	}
	return nil
}

// Dot returns the inner product <v, w>. It returns an error when lengths
// differ. The loop body is unrolled but keeps a single accumulator chain
// (terms added in increasing index order), so the result is bit-identical
// to the naive loop everywhere it is used.
func Dot(v, w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("dot %d . %d: %w", len(v), len(w), ErrShape)
	}
	var s float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		s += v[i] * w[i]
		s += v[i+1] * w[i+1]
		s += v[i+2] * w[i+2]
		s += v[i+3] * w[i+3]
	}
	for ; i < len(v); i++ {
		s += v[i] * w[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Max returns the maximum element and its index. For an empty vector it
// returns (-Inf, -1).
func (v Vector) Max() (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, x := range v {
		if x > best {
			best, idx = x, i
		}
	}
	return best, idx
}

// ArgMax returns the index of the maximum element, or -1 for an empty
// vector. Ties resolve to the lowest index.
func (v Vector) ArgMax() int {
	_, idx := v.Max()
	return idx
}

// ClipNorm rescales v in place so that its Euclidean norm is at most c.
// It returns the norm observed before clipping. A non-positive c leaves v
// untouched.
func (v Vector) ClipNorm(c float64) float64 {
	n := v.Norm2()
	if c <= 0 || n <= c {
		return n
	}
	v.Scale(c / n)
	return n
}

// Average returns the element-wise mean of the given vectors. It returns
// an error when the slice is empty or lengths differ.
func Average(vs []Vector) (Vector, error) {
	if len(vs) == 0 {
		return nil, errors.New("tensor: average of zero vectors")
	}
	out := vs[0].Clone()
	for _, v := range vs[1:] {
		if err := out.AddInPlace(v); err != nil {
			return nil, err
		}
	}
	out.Scale(1 / float64(len(vs)))
	return out, nil
}

// Lerp returns (1-t)*v + t*w without modifying the operands.
func Lerp(v, w Vector, t float64) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("lerp %d, %d: %w", len(v), len(w), ErrShape)
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = (1-t)*v[i] + t*w[i]
	}
	return out, nil
}

// EqualApprox reports whether v and w have the same length and all
// elements differ by at most tol.
func EqualApprox(v, w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}
