package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MatVec computes out = m * x. When out is nil a fresh vector is
// allocated; otherwise it must have length m.Rows.
func (m *Matrix) MatVec(x, out Vector) (Vector, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("matvec (%dx%d)*%d: %w", m.Rows, m.Cols, len(x), ErrShape)
	}
	if out == nil {
		out = NewVector(m.Rows)
	} else if len(out) != m.Rows {
		return nil, fmt.Errorf("matvec out %d != %d: %w", len(out), m.Rows, ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// MatVecT computes out = mᵀ * x (x has length m.Rows, out m.Cols). When
// out is nil a fresh vector is allocated.
func (m *Matrix) MatVecT(x, out Vector) (Vector, error) {
	if len(x) != m.Rows {
		return nil, fmt.Errorf("matvecT (%dx%d)ᵀ*%d: %w", m.Rows, m.Cols, len(x), ErrShape)
	}
	if out == nil {
		out = NewVector(m.Cols)
	} else if len(out) != m.Cols {
		return nil, fmt.Errorf("matvecT out %d != %d: %w", len(out), m.Cols, ErrShape)
	}
	out.Zero()
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			out[j] += w * xi
		}
	}
	return out, nil
}

// MatMul returns a*b. It returns an error on incompatible shapes.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("matmul (%dx%d)*(%dx%d): %w", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape)
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// AddOuter adds a*x*yᵀ to m in place (rank-one update). x must have
// length m.Rows and y length m.Cols.
func (m *Matrix) AddOuter(a float64, x, y Vector) error {
	if len(x) != m.Rows || len(y) != m.Cols {
		return fmt.Errorf("outer (%d,%d) into (%dx%d): %w", len(x), len(y), m.Rows, m.Cols, ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		ax := a * x[i]
		if ax == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += ax * y[j]
		}
	}
	return nil
}

// IsDoublyStochastic reports whether every row and column of m sums to 1
// within tol and all entries are non-negative. Only meaningful for square
// matrices; non-square matrices report false.
func (m *Matrix) IsDoublyStochastic(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	colSums := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		var rowSum float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			if v < -tol {
				return false
			}
			rowSum += v
			colSums[j] += v
		}
		if math.Abs(rowSum-1) > tol {
			return false
		}
	}
	for _, s := range colSums {
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m equals its transpose within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}
