package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MatVec computes out = m * x. When out is nil a fresh vector is
// allocated; otherwise it must have length m.Rows.
func (m *Matrix) MatVec(x, out Vector) (Vector, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("matvec (%dx%d)*%d: %w", m.Rows, m.Cols, len(x), ErrShape)
	}
	if out == nil {
		out = NewVector(m.Rows)
	} else if len(out) != m.Rows {
		return nil, fmt.Errorf("matvec out %d != %d: %w", len(out), m.Rows, ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// MatVecT computes out = mᵀ * x (x has length m.Rows, out m.Cols). When
// out is nil a fresh vector is allocated.
func (m *Matrix) MatVecT(x, out Vector) (Vector, error) {
	if len(x) != m.Rows {
		return nil, fmt.Errorf("matvecT (%dx%d)ᵀ*%d: %w", m.Rows, m.Cols, len(x), ErrShape)
	}
	if out == nil {
		out = NewVector(m.Cols)
	} else if len(out) != m.Cols {
		return nil, fmt.Errorf("matvecT out %d != %d: %w", len(out), m.Cols, ErrShape)
	}
	out.Zero()
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			out[j] += w * xi
		}
	}
	return out, nil
}

// MatMul returns a*b. It returns an error on incompatible shapes.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("matmul (%dx%d)*(%dx%d): %w", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape)
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// AddOuter adds a*x*yᵀ to m in place (rank-one update). x must have
// length m.Rows and y length m.Cols.
func (m *Matrix) AddOuter(a float64, x, y Vector) error {
	if len(x) != m.Rows || len(y) != m.Cols {
		return fmt.Errorf("outer (%d,%d) into (%dx%d): %w", len(x), len(y), m.Rows, m.Cols, ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		ax := a * x[i]
		if ax == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += ax * y[j]
		}
	}
	return nil
}

// The blocked kernels below are the minibatch hot path of the nn
// package: they process four rows per pass so each reused row of the
// other operand stays in cache and the four accumulator chains run as
// independent instruction streams. Every output element accumulates its
// terms in increasing k order — a single chained sum, exactly like the
// scalar loops above — so results are bit-identical to the per-vector
// kernels for any batch size.

// GemmNT accumulates C += A·Bᵀ for row-major flat slices: A is m×k, B is
// n×k, C is m×n. Rows of B are reused across a block of four A rows.
func GemmNT(c, a, b []float64, m, n, k int) {
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		c0 := c[(i+0)*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		c2 := c[(i+2)*n : (i+3)*n]
		c3 := c[(i+3)*n : (i+4)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s0, s1, s2, s3 := c0[j], c1[j], c2[j], c3[j]
			for t, bv := range brow {
				s0 += a0[t] * bv
				s1 += a1[t] * bv
				s2 += a2[t] * bv
				s3 += a3[t] * bv
			}
			c0[j], c1[j], c2[j], c3[j] = s0, s1, s2, s3
		}
	}
	for ; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := crow[j]
			for t, bv := range brow {
				s += arow[t] * bv
			}
			crow[j] = s
		}
	}
}

// GemmTN accumulates C += Aᵀ·B for row-major flat slices: A is k×m, B is
// k×n, C is m×n. This is the weight-gradient kernel (C = dW, A = batch
// deltas, B = batch activations): blocking four k rows per pass walks C
// once per four batch examples instead of once per example.
func GemmTN(c, a, b []float64, m, n, k int) {
	gemmTNRange(c, a, b, m, n, k, 0, m)
}

// gemmTNRange is GemmTN restricted to the C rows in [lo, hi) — the tile
// kernel of GemmTNW. The slices are pre-offset by lo so the loops run
// dense from zero, keeping the full kernel's bounds-check elimination;
// the four-wide blocking runs over k exactly as there, so each C
// element's accumulation order is unchanged.
func gemmTNRange(c, a, b []float64, m, n, k, lo, hi int) {
	rows := hi - lo
	if rows <= 0 {
		return
	}
	cr := c[lo*n : hi*n]
	t := 0
	for ; t+4 <= k; t += 4 {
		a0 := a[(t+0)*m+lo : (t+0)*m+hi]
		a1 := a[(t+1)*m+lo : (t+1)*m+hi]
		a2 := a[(t+2)*m+lo : (t+2)*m+hi]
		a3 := a[(t+3)*m+lo : (t+3)*m+hi]
		b0 := b[(t+0)*n : (t+1)*n]
		b1 := b[(t+1)*n : (t+2)*n]
		b2 := b[(t+2)*n : (t+3)*n]
		b3 := b[(t+3)*n : (t+4)*n]
		for i := 0; i < rows; i++ {
			d0, d1, d2, d3 := a0[i], a1[i], a2[i], a3[i]
			if d0 == 0 && d1 == 0 && d2 == 0 && d3 == 0 {
				continue
			}
			crow := cr[i*n : (i+1)*n]
			for j := range crow {
				s := crow[j]
				s += d0 * b0[j]
				s += d1 * b1[j]
				s += d2 * b2[j]
				s += d3 * b3[j]
				crow[j] = s
			}
		}
	}
	for ; t < k; t++ {
		arow := a[t*m+lo : t*m+hi]
		brow := b[t*n : (t+1)*n]
		for i := 0; i < rows; i++ {
			d := arow[i]
			if d == 0 {
				continue
			}
			crow := cr[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += d * bv
			}
		}
	}
}

// GemmNN accumulates C += A·B for row-major flat slices: A is m×k, B is
// k×n, C is m×n. This is the delta back-propagation kernel (C = previous
// deltas, A = layer deltas, B = weights): rows of B are reused across a
// block of four A rows.
func GemmNN(c, a, b []float64, m, n, k int) {
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		c0 := c[(i+0)*n : (i+1)*n]
		c1 := c[(i+1)*n : (i+2)*n]
		c2 := c[(i+2)*n : (i+3)*n]
		c3 := c[(i+3)*n : (i+4)*n]
		for t := 0; t < k; t++ {
			brow := b[t*n : (t+1)*n]
			d0, d1, d2, d3 := a0[t], a1[t], a2[t], a3[t]
			if d0 == 0 && d1 == 0 && d2 == 0 && d3 == 0 {
				continue
			}
			for j, bv := range brow {
				c0[j] += d0 * bv
				c1[j] += d1 * bv
				c2[j] += d2 * bv
				c3[j] += d3 * bv
			}
		}
	}
	for ; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for t := 0; t < k; t++ {
			d := arow[t]
			if d == 0 {
				continue
			}
			brow := b[t*n : (t+1)*n]
			for j, bv := range brow {
				crow[j] += d * bv
			}
		}
	}
}

// IsDoublyStochastic reports whether every row and column of m sums to 1
// within tol and all entries are non-negative. Only meaningful for square
// matrices; non-square matrices report false.
func (m *Matrix) IsDoublyStochastic(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	colSums := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		var rowSum float64
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			if v < -tol {
				return false
			}
			rowSum += v
			colSums[j] += v
		}
		if math.Abs(rowSum-1) > tol {
			return false
		}
	}
	for _, s := range colSums {
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether m equals its transpose within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}
