package tensor

import "sync"

// VecPool is a sync.Pool-backed arena of fixed-length Vectors. The gossip
// simulator uses one to recycle per-message parameter buffers instead of
// allocating a fresh Clone for every transmission. Vectors handed out
// are NOT zeroed — callers overwrite them entirely.
//
// Internally both the vectors and the *Vector boxes that carry them
// through sync.Pool are recycled, so a Get/Put cycle performs zero
// steady-state allocation (storing a bare slice in a sync.Pool would
// box its header on every Put).
//
// A VecPool is safe for concurrent use.
type VecPool struct {
	n     int
	vecs  sync.Pool // holds *Vector carrying a live buffer
	boxes sync.Pool // holds empty *Vector carriers for reuse
}

// NewVecPool returns a pool of vectors of length n.
func NewVecPool(n int) *VecPool {
	p := &VecPool{n: n}
	p.vecs.New = func() any {
		v := NewVector(n)
		return &v
	}
	p.boxes.New = func() any { return new(Vector) }
	return p
}

// Len returns the pooled vector length.
func (p *VecPool) Len() int { return p.n }

// Get returns a vector of length n. Requests matching the pool's length
// are served from the arena; other lengths fall back to a fresh
// allocation (they would poison the pool).
func (p *VecPool) Get(n int) Vector {
	if n != p.n {
		return NewVector(n)
	}
	vp := p.vecs.Get().(*Vector)
	v := *vp
	*vp = nil
	p.boxes.Put(vp)
	return v
}

// Put returns v to the arena. Vectors of the wrong length are dropped so
// arbitrary caller-constructed buffers can be released safely.
func (p *VecPool) Put(v Vector) {
	if len(v) != p.n {
		return
	}
	vp := p.boxes.Get().(*Vector)
	*vp = v
	p.vecs.Put(vp)
}
