package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if err := v.AddInPlace(w); err != nil {
		t.Fatalf("AddInPlace: %v", err)
	}
	if !EqualApprox(v, Vector{5, 7, 9}, 0) {
		t.Fatalf("add: got %v", v)
	}
	if err := v.SubInPlace(w); err != nil {
		t.Fatalf("SubInPlace: %v", err)
	}
	if !EqualApprox(v, Vector{1, 2, 3}, 1e-15) {
		t.Fatalf("sub: got %v", v)
	}
}

func TestVectorShapeErrors(t *testing.T) {
	v := Vector{1}
	w := Vector{1, 2}
	if err := v.AddInPlace(w); !errors.Is(err, ErrShape) {
		t.Fatalf("AddInPlace error = %v, want ErrShape", err)
	}
	if err := v.SubInPlace(w); !errors.Is(err, ErrShape) {
		t.Fatalf("SubInPlace error = %v, want ErrShape", err)
	}
	if err := v.Axpy(2, w); !errors.Is(err, ErrShape) {
		t.Fatalf("Axpy error = %v, want ErrShape", err)
	}
	if _, err := Dot(v, w); !errors.Is(err, ErrShape) {
		t.Fatalf("Dot error = %v, want ErrShape", err)
	}
	if _, err := Lerp(v, w, 0.5); !errors.Is(err, ErrShape) {
		t.Fatalf("Lerp error = %v, want ErrShape", err)
	}
}

func TestAxpyDotNorm(t *testing.T) {
	v := Vector{1, 0, -1}
	w := Vector{2, 3, 4}
	if err := v.Axpy(0.5, w); err != nil {
		t.Fatalf("Axpy: %v", err)
	}
	if !EqualApprox(v, Vector{2, 1.5, 1}, 1e-15) {
		t.Fatalf("axpy: got %v", v)
	}
	d, err := Dot(Vector{1, 2}, Vector{3, 4})
	if err != nil || d != 11 {
		t.Fatalf("dot = %v, %v; want 11", d, err)
	}
	n := Vector{3, 4}.Norm2()
	if math.Abs(n-5) > 1e-15 {
		t.Fatalf("norm = %v, want 5", n)
	}
}

func TestSumMeanMaxArgMax(t *testing.T) {
	v := Vector{2, -1, 7, 7, 0}
	if v.Sum() != 15 {
		t.Fatalf("sum = %v", v.Sum())
	}
	if v.Mean() != 3 {
		t.Fatalf("mean = %v", v.Mean())
	}
	if best, idx := v.Max(); best != 7 || idx != 2 {
		t.Fatalf("max = (%v,%v), want (7,2) (ties to lowest index)", best, idx)
	}
	if v.ArgMax() != 2 {
		t.Fatalf("argmax = %v", v.ArgMax())
	}
	var empty Vector
	if empty.Mean() != 0 {
		t.Fatalf("empty mean = %v", empty.Mean())
	}
	if empty.ArgMax() != -1 {
		t.Fatalf("empty argmax = %v", empty.ArgMax())
	}
}

func TestClipNorm(t *testing.T) {
	v := Vector{3, 4}
	before := v.ClipNorm(1)
	if math.Abs(before-5) > 1e-15 {
		t.Fatalf("observed norm = %v, want 5", before)
	}
	if math.Abs(v.Norm2()-1) > 1e-12 {
		t.Fatalf("clipped norm = %v, want 1", v.Norm2())
	}
	// Within bound: untouched.
	w := Vector{0.1, 0.1}
	orig := w.Clone()
	w.ClipNorm(1)
	if !EqualApprox(w, orig, 0) {
		t.Fatalf("clip modified in-bound vector: %v", w)
	}
	// Non-positive bound: untouched.
	u := Vector{5, 5}
	u.ClipNorm(0)
	if !EqualApprox(u, Vector{5, 5}, 0) {
		t.Fatalf("clip with c=0 modified vector: %v", u)
	}
}

func TestAverage(t *testing.T) {
	avg, err := Average([]Vector{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("Average: %v", err)
	}
	if !EqualApprox(avg, Vector{3, 4}, 1e-15) {
		t.Fatalf("average = %v", avg)
	}
	if _, err := Average(nil); err == nil {
		t.Fatal("Average(nil) should fail")
	}
	if _, err := Average([]Vector{{1}, {1, 2}}); !errors.Is(err, ErrShape) {
		t.Fatalf("mismatched average error = %v", err)
	}
}

func TestLerp(t *testing.T) {
	out, err := Lerp(Vector{0, 10}, Vector{10, 20}, 0.5)
	if err != nil {
		t.Fatalf("Lerp: %v", err)
	}
	if !EqualApprox(out, Vector{5, 15}, 1e-15) {
		t.Fatalf("lerp = %v", out)
	}
}

// Property: pairwise average preserves the global mean, which is the core
// conservation law behind gossip averaging.
func TestAveragePreservesMeanProperty(t *testing.T) {
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		// Keep magnitudes moderate so the property is about averaging,
		// not float overflow.
		return math.Mod(x, 1e6)
	}
	f := func(a, b [8]float64) bool {
		v, w := Vector(a[:]).Clone(), Vector(b[:]).Clone()
		for i := range v {
			v[i], w[i] = clamp(v[i]), clamp(w[i])
		}
		want := (v.Sum() + w.Sum()) / 2
		avg, err := Average([]Vector{v, w})
		if err != nil {
			return false
		}
		return math.Abs(avg.Sum()-want) <= 1e-9*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: clipping never increases the norm and never exceeds the bound.
func TestClipNormProperty(t *testing.T) {
	f := func(a [6]float64, cRaw float64) bool {
		c := math.Abs(cRaw)
		if c == 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			c = 1
		}
		v := Vector(a[:]).Clone()
		for i := range v {
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				v[i] = 0
			}
		}
		before := v.Norm2()
		v.ClipNorm(c)
		after := v.Norm2()
		return after <= c*(1+1e-9) && after <= before*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
