// Package stats provides the statistical analysis helpers used to read
// the experiments: rank correlation (to quantify the RQ6 link between
// generalization error and MIA vulnerability), bootstrap confidence
// intervals for multi-seed replications, and paired comparisons.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gossipmia/internal/tensor"
)

// ErrInput is returned for unusable inputs.
var ErrInput = errors.New("stats: invalid input")

// Spearman returns the Spearman rank-correlation coefficient between xs
// and ys (average ranks for ties). It needs at least three pairs.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("%w: %d vs %d points", ErrInput, len(xs), len(ys))
	}
	if len(xs) < 3 {
		return 0, fmt.Errorf("%w: need at least 3 pairs, got %d", ErrInput, len(xs))
	}
	rx := ranks(xs)
	ry := ranks(ys)
	return Pearson(rx, ry)
}

// Pearson returns the Pearson correlation between xs and ys. A zero
// variance on either side yields 0 (no linear relationship measurable).
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("%w: %d vs %d points", ErrInput, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("%w: need at least 2 pairs, got %d", ErrInput, len(xs))
	}
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ranks returns average ranks (1-based) with ties sharing their mean
// rank, the convention Spearman's rho requires.
func ranks(xs []float64) []float64 {
	type pair struct {
		v   float64
		idx int
	}
	ps := make([]pair, len(xs))
	for i, v := range xs {
		ps[i] = pair{v, i}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].v < ps[b].v })
	out := make([]float64, len(xs))
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].v == ps[i].v {
			j++
		}
		// Average rank for the tie group [i, j).
		avg := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for k := i; k < j; k++ {
			out[ps[k].idx] = avg
		}
		i = j
	}
	return out
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point, Lo, Hi float64
}

// BootstrapMeanCI returns a percentile-bootstrap confidence interval for
// the mean of xs at the given confidence level (e.g. 0.95), using
// resamples draws from rng.
func BootstrapMeanCI(xs []float64, confidence float64, resamples int, rng *tensor.RNG) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, fmt.Errorf("%w: empty sample", ErrInput)
	}
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("%w: confidence %v out of (0,1)", ErrInput, confidence)
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("%w: need at least 10 resamples, got %d", ErrInput, resamples)
	}
	mean := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	point := mean(xs)
	boots := make([]float64, resamples)
	sample := make([]float64, len(xs))
	for b := 0; b < resamples; b++ {
		for i := range sample {
			sample[i] = xs[rng.Intn(len(xs))]
		}
		boots[b] = mean(sample)
	}
	sort.Float64s(boots)
	alpha := (1 - confidence) / 2
	lo := boots[int(alpha*float64(resamples))]
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	hi := boots[hiIdx]
	return Interval{Point: point, Lo: lo, Hi: hi}, nil
}

// MeanDiff reports the difference in means (a - b) with a bootstrap CI,
// for comparing two experimental arms (e.g. static vs dynamic MIA).
func MeanDiff(a, b []float64, confidence float64, resamples int, rng *tensor.RNG) (Interval, error) {
	if len(a) == 0 || len(b) == 0 {
		return Interval{}, fmt.Errorf("%w: empty sample", ErrInput)
	}
	if confidence <= 0 || confidence >= 1 {
		return Interval{}, fmt.Errorf("%w: confidence %v out of (0,1)", ErrInput, confidence)
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("%w: need at least 10 resamples, got %d", ErrInput, resamples)
	}
	mean := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	point := mean(a) - mean(b)
	boots := make([]float64, resamples)
	sa := make([]float64, len(a))
	sb := make([]float64, len(b))
	for r := 0; r < resamples; r++ {
		for i := range sa {
			sa[i] = a[rng.Intn(len(a))]
		}
		for i := range sb {
			sb[i] = b[rng.Intn(len(b))]
		}
		boots[r] = mean(sa) - mean(sb)
	}
	sort.Float64s(boots)
	alpha := (1 - confidence) / 2
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return Interval{
		Point: point,
		Lo:    boots[int(alpha*float64(resamples))],
		Hi:    boots[hiIdx],
	}, nil
}
