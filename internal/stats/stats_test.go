package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gossipmia/internal/tensor"
)

func TestSpearmanPerfectMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 100, 1000, 10000, 100000} // monotone, non-linear
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Fatalf("monotone rho = %v, want 1", rho)
	}
	rev := []float64{5, 4, 3, 2, 1}
	rho, err = Spearman(xs, rev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho+1) > 1e-12 {
		t.Fatalf("anti-monotone rho = %v, want -1", rho)
	}
}

func TestSpearmanTies(t *testing.T) {
	// With ties, rho must still be finite and in [-1, 1].
	xs := []float64{1, 1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3, 3}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.5 || rho > 1 {
		t.Fatalf("tied rho = %v, want strongly positive", rho)
	}
}

func TestSpearmanIndependence(t *testing.T) {
	rng := tensor.NewRNG(3)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Normal(0, 1)
		ys[i] = rng.Normal(0, 1)
	}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho) > 0.15 {
		t.Fatalf("independent rho = %v, want ~0", rho)
	}
}

func TestSpearmanValidation(t *testing.T) {
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrInput) {
		t.Fatalf("length mismatch error = %v", err)
	}
	if _, err := Spearman([]float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrInput) {
		t.Fatalf("too-few error = %v", err)
	}
}

func TestPearsonLinear(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("linear r = %v", r)
	}
	// Zero variance yields 0, not NaN.
	r, err = Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Fatalf("constant-x r = %v, err=%v", r, err)
	}
}

// Property: Spearman is bounded in [-1, 1] and invariant to monotone
// transforms of x.
func TestSpearmanProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := 20
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Normal(0, 1)
			ys[i] = xs[i] + rng.Normal(0, 0.5)
		}
		r1, err := Spearman(xs, ys)
		if err != nil || r1 < -1-1e-12 || r1 > 1+1e-12 {
			return false
		}
		// exp is strictly monotone: ranks unchanged.
		ex := make([]float64, n)
		for i, v := range xs {
			ex[i] = math.Exp(v)
		}
		r2, err := Spearman(ex, ys)
		if err != nil {
			return false
		}
		return math.Abs(r1-r2) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := tensor.NewRNG(5)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Normal(10, 2)
	}
	ci, err := BootstrapMeanCI(xs, 0.95, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= ci.Point && ci.Point <= ci.Hi) {
		t.Fatalf("interval disordered: %+v", ci)
	}
	if math.Abs(ci.Point-10) > 0.5 {
		t.Fatalf("point estimate %v far from 10", ci.Point)
	}
	if ci.Hi-ci.Lo > 1.5 {
		t.Fatalf("interval too wide: %+v", ci)
	}
	if ci.Lo > 10 || ci.Hi < 10 {
		t.Fatalf("true mean outside CI: %+v", ci)
	}
}

func TestBootstrapValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := BootstrapMeanCI(nil, 0.95, 100, rng); !errors.Is(err, ErrInput) {
		t.Fatalf("empty sample error = %v", err)
	}
	if _, err := BootstrapMeanCI([]float64{1}, 2, 100, rng); !errors.Is(err, ErrInput) {
		t.Fatalf("confidence error = %v", err)
	}
	if _, err := BootstrapMeanCI([]float64{1}, 0.95, 1, rng); !errors.Is(err, ErrInput) {
		t.Fatalf("resamples error = %v", err)
	}
}

func TestMeanDiff(t *testing.T) {
	rng := tensor.NewRNG(9)
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = rng.Normal(5, 1)
		b[i] = rng.Normal(3, 1)
	}
	ci, err := MeanDiff(a, b, 0.95, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ci.Point-2) > 0.5 {
		t.Fatalf("diff estimate %v far from 2", ci.Point)
	}
	if ci.Lo <= 0 {
		t.Fatalf("clearly separated samples should exclude 0: %+v", ci)
	}
	if _, err := MeanDiff(nil, b, 0.95, 100, rng); !errors.Is(err, ErrInput) {
		t.Fatalf("empty error = %v", err)
	}
	if _, err := MeanDiff(a, b, 0, 100, rng); !errors.Is(err, ErrInput) {
		t.Fatalf("confidence error = %v", err)
	}
	if _, err := MeanDiff(a, b, 0.95, 2, rng); !errors.Is(err, ErrInput) {
		t.Fatalf("resamples error = %v", err)
	}
}
