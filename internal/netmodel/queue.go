package netmodel

// deliveryQueue is a binary min-heap of Deliveries ordered by
// (DeliverAt, seq): earliest due first, send order breaking ties, so
// same-tick deliveries drain in stable FIFO order. It is hand-rolled on
// a plain slice (rather than container/heap) so pushes and pops move
// Delivery values without interface boxing; the backing array is
// reused across the run, so steady-state scheduling does not allocate.
type deliveryQueue struct {
	heap []Delivery
	seq  uint64
}

func (q *deliveryQueue) less(a, b Delivery) bool {
	if a.DeliverAt != b.DeliverAt {
		return a.DeliverAt < b.DeliverAt
	}
	return a.seq < b.seq
}

// push enqueues d, stamping its send order.
func (q *deliveryQueue) push(d Delivery) {
	d.seq = q.seq
	q.seq++
	q.heap = append(q.heap, d)
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.heap[i], q.heap[parent]) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// pop removes and returns the earliest delivery; callers must check
// len first.
func (q *deliveryQueue) pop() Delivery {
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = Delivery{} // release the payload reference
	q.heap = q.heap[:last]
	q.siftDown(0)
	return top
}

func (q *deliveryQueue) siftDown(i int) {
	n := len(q.heap)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(q.heap[left], q.heap[smallest]) {
			smallest = left
		}
		if right < n && q.less(q.heap[right], q.heap[smallest]) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}

// drainDue appends to dst every delivery due at or before now, in
// (DeliverAt, seq) order.
func (q *deliveryQueue) drainDue(dst []Delivery, now int) []Delivery {
	for len(q.heap) > 0 && q.heap[0].DeliverAt <= now {
		dst = append(dst, q.pop())
	}
	return dst
}

func (q *deliveryQueue) pending() int { return len(q.heap) }
