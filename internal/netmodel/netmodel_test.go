package netmodel

import (
	"errors"
	"testing"

	"gossipmia/internal/tensor"
)

func TestKindByName(t *testing.T) {
	for name, want := range map[string]Kind{
		"": KindInstant, "instant": KindInstant,
		"latency": KindLatency, "lossy": KindLossy,
	} {
		got, err := KindByName(name)
		if err != nil || got != want {
			t.Fatalf("KindByName(%q) = %v, %v", name, got, err)
		}
		if name != "" && got.String() != name {
			t.Fatalf("round trip %q -> %q", name, got.String())
		}
	}
	if _, err := KindByName("smoke-signals"); !errors.Is(err, ErrConfig) {
		t.Fatalf("unknown kind error = %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Kind: Kind(99)},
		{LatencyMean: -1},
		{LatencyJitter: -0.5},
		{BandwidthBytesPerTick: -8},
		{DropProb: 1},
		{DropProb: -0.1},
		// Latency/bandwidth knobs on the (default) instant transport
		// would be silently ignored; they are rejected instead.
		{LatencyMean: 5},
		{LatencyJitter: 2},
		{BandwidthBytesPerTick: 100},
		{Partitions: []Partition{{FromTick: 5, ToTick: 5, Members: []int{0}}}},
		{Partitions: []Partition{{FromTick: -1, ToTick: 5, Members: []int{0}}}},
		{Partitions: []Partition{{FromTick: 0, ToTick: 5}}},
		{Partitions: []Partition{{FromTick: 0, ToTick: 5, Members: []int{9}}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(4); !errors.Is(err, ErrConfig) {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
	good := Config{Kind: KindLossy, LatencyMean: 3, DropProb: 0.2,
		Partitions: []Partition{{FromTick: 10, ToTick: 20, Members: []int{0, 1}}}}
	if err := good.Validate(4); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestInstantPlansInline(t *testing.T) {
	tr := NewInstant()
	at, dropped := tr.Plan(17, 0, 1, 4096)
	if at != 17 || dropped {
		t.Fatalf("Plan = %d, %v", at, dropped)
	}
	if tr.Pending() != 0 || len(tr.Drain(nil, 1000)) != 0 {
		t.Fatal("instant transport has a queue")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule on instant did not panic")
		}
	}()
	tr.Schedule(Delivery{})
}

func TestQueueFIFOTieBreak(t *testing.T) {
	var q deliveryQueue
	// Three messages due the same tick, interleaved with later ones.
	q.push(Delivery{From: 0, DeliverAt: 5})
	q.push(Delivery{From: 1, DeliverAt: 9})
	q.push(Delivery{From: 2, DeliverAt: 5})
	q.push(Delivery{From: 3, DeliverAt: 2})
	q.push(Delivery{From: 4, DeliverAt: 5})
	got := q.drainDue(nil, 5)
	order := []int{3, 0, 2, 4}
	if len(got) != len(order) {
		t.Fatalf("drained %d, want %d", len(got), len(order))
	}
	for i, d := range got {
		if d.From != order[i] {
			t.Fatalf("drain[%d].From = %d, want %d", i, d.From, order[i])
		}
	}
	if q.pending() != 1 {
		t.Fatalf("pending = %d, want 1", q.pending())
	}
	rest := q.drainDue(nil, 100)
	if len(rest) != 1 || rest[0].From != 1 {
		t.Fatalf("late drain = %+v", rest)
	}
}

func TestLatencyDeterministicAndPositive(t *testing.T) {
	cfg := Config{Kind: KindLatency, LatencyMean: 10, LatencyJitter: 4}
	a := NewLatency(cfg, 8, tensor.NewRNG(5))
	b := NewLatency(cfg, 8, tensor.NewRNG(5))
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			if a.LinkDelay(i, j) != b.LinkDelay(i, j) {
				t.Fatalf("link (%d,%d) differs across identical seeds", i, j)
			}
			if a.LinkDelay(i, j) < 1 {
				t.Fatalf("link (%d,%d) delay %d < 1", i, j, a.LinkDelay(i, j))
			}
		}
	}
	at, dropped := a.Plan(100, 0, 1, 0)
	if dropped || at != 100+a.LinkDelay(0, 1) {
		t.Fatalf("Plan = %d, %v (link %d)", at, dropped, a.LinkDelay(0, 1))
	}
}

func TestLatencyBandwidthTerm(t *testing.T) {
	cfg := Config{Kind: KindLatency, LatencyMean: 5, BandwidthBytesPerTick: 100}
	tr := NewLatency(cfg, 4, tensor.NewRNG(1))
	base, _ := tr.Plan(0, 0, 1, 0)
	withBytes, _ := tr.Plan(0, 0, 1, 250) // ceil(250/100) = 3 extra ticks
	if withBytes-base != 3 {
		t.Fatalf("bandwidth term = %d ticks, want 3", withBytes-base)
	}
}

func TestLatencyQueueRoundTrip(t *testing.T) {
	tr := NewLatency(Config{Kind: KindLatency, LatencyMean: 4}, 4, tensor.NewRNG(2))
	payload := tensor.Vector{1, 2, 3}
	at, dropped := tr.Plan(10, 0, 1, 0)
	if dropped || at <= 10 {
		t.Fatalf("Plan = %d, %v", at, dropped)
	}
	tr.Schedule(Delivery{From: 0, To: 1, SentTick: 10, DeliverAt: at, Params: payload})
	if tr.Pending() != 1 {
		t.Fatalf("pending = %d", tr.Pending())
	}
	if got := tr.Drain(nil, at-1); len(got) != 0 {
		t.Fatalf("drained %d before due tick", len(got))
	}
	got := tr.Drain(nil, at)
	if len(got) != 1 || got[0].To != 1 || &got[0].Params[0] != &payload[0] {
		t.Fatalf("drain = %+v", got)
	}
}

func TestLossyPartitionWindowAndHeal(t *testing.T) {
	parts := []Partition{{FromTick: 10, ToTick: 20, Members: []int{0, 1}}}
	tr, err := NewLossy(0, parts, 4, NewInstant(), tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		now, from, to int
		dropped       bool
	}{
		{9, 0, 2, false},  // before the window
		{10, 0, 2, true},  // cut: 0 inside, 2 outside
		{15, 2, 1, true},  // cut is bidirectional
		{15, 0, 1, false}, // same side survives
		{15, 2, 3, false}, // same side survives
		{20, 0, 2, false}, // healed at ToTick
	}
	for _, c := range cases {
		if _, dropped := tr.Plan(c.now, c.from, c.to, 0); dropped != c.dropped {
			t.Fatalf("Plan(now=%d, %d->%d) dropped = %v, want %v", c.now, c.from, c.to, dropped, c.dropped)
		}
	}
}

func TestLossyDropRate(t *testing.T) {
	tr, err := NewLossy(0.4, nil, 4, NewInstant(), tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if _, d := tr.Plan(0, 0, 1, 0); d {
			dropped++
		}
	}
	if rate := float64(dropped) / n; rate < 0.35 || rate > 0.45 {
		t.Fatalf("drop rate %.3f, want ~0.4", rate)
	}
}

func TestLossyZeroProbConsumesNoRandomness(t *testing.T) {
	rng := tensor.NewRNG(3)
	tr, err := NewLossy(0, nil, 4, NewInstant(), rng)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.NewRNG(3).Float64()
	for i := 0; i < 50; i++ {
		tr.Plan(i, 0, 1, 0)
	}
	if got := rng.Float64(); got != want {
		t.Fatal("lossy transport with dropProb=0 consumed randomness")
	}
}

func TestNewMapsKinds(t *testing.T) {
	rng := tensor.NewRNG(1)
	cases := []struct {
		cfg  Config
		name string
	}{
		{Config{}, "instant"},
		{Config{DropProb: 0.1}, "lossy(instant)"},
		{Config{Kind: KindLatency, LatencyMean: 5}, "latency"},
		{Config{Kind: KindLatency, LatencyMean: 5, DropProb: 0.1}, "lossy(latency)"},
		{Config{Kind: KindLossy, DropProb: 0.1}, "lossy(instant)"},
		{Config{Kind: KindLossy, LatencyMean: 5}, "lossy(latency)"},
	}
	for _, c := range cases {
		tr, err := New(c.cfg, 6, rng)
		if err != nil {
			t.Fatalf("New(%+v): %v", c.cfg, err)
		}
		if tr.Name() != c.name {
			t.Fatalf("New(%+v).Name() = %q, want %q", c.cfg, tr.Name(), c.name)
		}
	}
	if _, err := New(Config{}, 1, rng); !errors.Is(err, ErrConfig) {
		t.Fatalf("one-node network error = %v", err)
	}
	if _, err := New(Config{DropProb: 2}, 6, rng); !errors.Is(err, ErrConfig) {
		t.Fatalf("invalid config error = %v", err)
	}
}
