package netmodel

import (
	"fmt"

	"gossipmia/internal/tensor"
)

// Lossy decorates another transport with message loss: scheduled
// partitions checked first, then an i.i.d. drop probability. Surviving
// messages take the inner transport's timing, so loss composes with
// both Instant and Latency delivery.
//
// Partition cuts are evaluated at send time: a message sent while an
// active partition separates its endpoints is lost, while a message
// already in flight when the partition forms is still delivered (the
// packet is past the cut point), and the partition heals at its end
// tick.
//
// The drop decision consumes rng exactly when dropProb > 0, in send
// order — the same discipline as the seed simulator's DropProb check,
// which this transport absorbs.
type Lossy struct {
	dropProb float64
	inner    Transport
	rng      *tensor.RNG

	// partitions, with per-partition membership bitmaps for O(1) cut
	// checks on the send path.
	parts []partition
}

type partition struct {
	from, to int
	side     []bool
}

var _ Transport = (*Lossy)(nil)

// NewLossy wraps inner with loss. The rng is shared with the caller by
// design: for the seed-compatible Instant+DropProb configuration the
// drop stream must interleave with the simulator's other draws exactly
// as the seed implementation did. Parameter validation is delegated to
// Config.Validate so the rules live in one place.
func NewLossy(dropProb float64, parts []Partition, nodes int, inner Transport, rng *tensor.RNG) (*Lossy, error) {
	if inner == nil || rng == nil {
		return nil, fmt.Errorf("%w: nil inner transport or rng", ErrConfig)
	}
	cfg := Config{Kind: KindLossy, DropProb: dropProb, Partitions: parts}
	if err := cfg.Validate(nodes); err != nil {
		return nil, err
	}
	t := &Lossy{dropProb: dropProb, inner: inner, rng: rng}
	for _, p := range parts {
		side := make([]bool, nodes)
		for _, m := range p.Members {
			side[m] = true
		}
		t.parts = append(t.parts, partition{from: p.FromTick, to: p.ToTick, side: side})
	}
	return t, nil
}

// Name implements Transport.
func (t *Lossy) Name() string { return "lossy(" + t.inner.Name() + ")" }

// Partitioned reports whether an active partition at tick now separates
// from and to.
func (t *Lossy) Partitioned(now, from, to int) bool {
	for _, p := range t.parts {
		if now >= p.from && now < p.to && p.side[from] != p.side[to] {
			return true
		}
	}
	return false
}

// Plan implements Transport: partition cut first (deterministic, no
// randomness consumed), then the drop coin, then the inner timing.
func (t *Lossy) Plan(now, from, to, bytes int) (int, bool) {
	if t.Partitioned(now, from, to) {
		return 0, true
	}
	if t.dropProb > 0 && t.rng.Float64() < t.dropProb {
		return 0, true
	}
	return t.inner.Plan(now, from, to, bytes)
}

// Schedule implements Transport.
func (t *Lossy) Schedule(d Delivery) { t.inner.Schedule(d) }

// Drain implements Transport.
func (t *Lossy) Drain(dst []Delivery, now int) []Delivery { return t.inner.Drain(dst, now) }

// Pending implements Transport.
func (t *Lossy) Pending() int { return t.inner.Pending() }
