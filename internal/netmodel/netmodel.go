// Package netmodel is the simulator's pluggable network layer. It
// replaces the seed's synchronous Send→OnReceive call chain with an
// event-driven model: a Transport decides, per message, whether the
// transmission is lost, delivered inline on the sender's call stack
// (the paper's zero-delay semantics), or queued for a later tick; the
// simulator drains the queue at every tick boundary.
//
// Three transports are provided:
//
//   - Instant reproduces the seed semantics exactly: every message is
//     delivered inline at the send tick, and the optional drop
//     probability consumes randomness in the same order as the seed
//     implementation, so fixed-seed runs are byte-identical.
//   - Latency delivers through the tick-ordered queue: each directed
//     link gets a propagation delay sampled once from a seeded normal
//     distribution, plus a per-message serialization term derived from
//     the wire-format frame size and a configured bandwidth.
//   - Lossy wraps another transport with loss: an i.i.d. drop
//     probability (absorbing the simulator's historical DropProb) and
//     scheduled network partitions that heal — messages crossing the
//     cut while a partition is active are lost.
//
// All randomness flows through the RNG handed to New, so every
// transport is deterministic for a fixed seed; none of them allocates
// on the per-message Plan path.
package netmodel

import (
	"errors"
	"fmt"
	"math"

	"gossipmia/internal/tensor"
)

// ErrConfig is returned for invalid network-model configurations.
var ErrConfig = errors.New("netmodel: invalid config")

// Kind selects a transport implementation.
type Kind int

// The supported transports. KindInstant is the zero value so existing
// configurations keep the seed semantics.
const (
	KindInstant Kind = iota
	KindLatency
	KindLossy
)

// String returns the CLI name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInstant:
		return "instant"
	case KindLatency:
		return "latency"
	case KindLossy:
		return "lossy"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindByName resolves a CLI transport name.
func KindByName(name string) (Kind, error) {
	switch name {
	case "", "instant":
		return KindInstant, nil
	case "latency":
		return KindLatency, nil
	case "lossy":
		return KindLossy, nil
	default:
		return 0, fmt.Errorf("%w: unknown transport %q (want instant, latency, or lossy)", ErrConfig, name)
	}
}

// Partition is one scheduled network partition: while the tick clock is
// in [FromTick, ToTick), messages with exactly one endpoint in Members
// are lost. The partition heals at ToTick.
type Partition struct {
	FromTick, ToTick int
	// Members is one side of the cut; the complement is the other side.
	Members []int
}

// Config describes a transport. The zero value selects Instant with no
// loss — the seed semantics.
type Config struct {
	Kind Kind

	// LatencyMean/LatencyJitter parameterize the per-link propagation
	// delay (ticks): each directed link samples its delay once from
	// N(LatencyMean, LatencyJitter²), clamped to at least one tick.
	// Used by KindLatency (and by KindLossy when LatencyMean,
	// LatencyJitter, or BandwidthBytesPerTick is set, which makes loss
	// wrap latency).
	LatencyMean, LatencyJitter float64

	// BandwidthBytesPerTick > 0 adds a serialization term of
	// ceil(wireBytes / BandwidthBytesPerTick) ticks per message, with
	// wireBytes the wire-format frame size of the payload.
	BandwidthBytesPerTick int

	// DropProb is the i.i.d. probability that a message is lost
	// (KindLossy, or KindInstant for seed compatibility).
	DropProb float64

	// Partitions schedules network partitions (KindLossy).
	Partitions []Partition
}

// Validate reports configuration errors; nodes is the network size the
// transport will serve.
func (c Config) Validate(nodes int) error {
	if c.Kind < KindInstant || c.Kind > KindLossy {
		return fmt.Errorf("%w: kind=%d", ErrConfig, int(c.Kind))
	}
	if c.LatencyMean < 0 || c.LatencyJitter < 0 {
		return fmt.Errorf("%w: latency mean=%v jitter=%v", ErrConfig, c.LatencyMean, c.LatencyJitter)
	}
	// Parameters the selected transport would silently ignore are
	// rejected: a zero-delay transport with latency knobs set is a
	// misconfiguration, not a request for zero delay.
	if c.Kind == KindInstant && (c.LatencyMean > 0 || c.LatencyJitter > 0 || c.BandwidthBytesPerTick > 0) {
		return fmt.Errorf("%w: the instant transport cannot model latency or bandwidth (use kind %q or %q)",
			ErrConfig, KindLatency, KindLossy)
	}
	if c.BandwidthBytesPerTick < 0 {
		return fmt.Errorf("%w: bandwidth=%d bytes/tick", ErrConfig, c.BandwidthBytesPerTick)
	}
	if c.DropProb < 0 || c.DropProb >= 1 {
		return fmt.Errorf("%w: dropProb=%v out of [0,1)", ErrConfig, c.DropProb)
	}
	for i, p := range c.Partitions {
		if p.FromTick < 0 || p.ToTick <= p.FromTick {
			return fmt.Errorf("%w: partition %d ticks [%d,%d)", ErrConfig, i, p.FromTick, p.ToTick)
		}
		if len(p.Members) == 0 {
			return fmt.Errorf("%w: partition %d has no members", ErrConfig, i)
		}
		for _, m := range p.Members {
			if m < 0 || m >= nodes {
				return fmt.Errorf("%w: partition %d member %d out of [0,%d)", ErrConfig, i, m, nodes)
			}
		}
	}
	return nil
}

// Delivery is one queued message: an opaque payload (the caller owns
// the buffer lifecycle) plus its routing and timing.
type Delivery struct {
	From, To  int
	SentTick  int
	DeliverAt int
	Params    tensor.Vector

	// seq is the transport-assigned send order, the stable FIFO
	// tie-break for deliveries due at the same tick.
	seq uint64
}

// Transport models the network between simulator nodes.
//
// The per-message protocol is two-phase so the caller controls buffer
// lifecycle: Plan decides the fate of a transmission before any copy is
// made; if the message is queued (deliverAt > now) the caller copies
// the payload into a stable buffer and hands it over with Schedule.
// Implementations must be deterministic for a fixed RNG seed.
type Transport interface {
	// Name identifies the transport ("instant", "latency", ...).
	Name() string
	// Plan decides the fate of a message of wire size bytes sent from
	// `from` to `to` at tick now: lost (dropped), delivered inline on
	// the caller's stack (deliverAt == now), or queued (deliverAt > now).
	Plan(now, from, to, bytes int) (deliverAt int, dropped bool)
	// Schedule enqueues a payload whose Plan returned deliverAt > now.
	// The transport owns d.Params until Drain hands it back.
	Schedule(d Delivery)
	// Drain appends to dst every queued delivery due at or before now —
	// ordered by (DeliverAt, send order) — and removes them from the
	// queue.
	Drain(dst []Delivery, now int) []Delivery
	// Pending reports how many deliveries remain queued.
	Pending() int
}

// New builds the transport described by cfg for a network of `nodes`
// nodes. The rng is used both at construction (sampling per-link
// delays) and at run time (drop decisions); for KindInstant with a
// drop probability it is consumed in exactly the seed implementation's
// order, keeping fixed-seed runs byte-identical.
func New(cfg Config, nodes int, rng *tensor.RNG) (Transport, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("%w: %d nodes", ErrConfig, nodes)
	}
	if err := cfg.Validate(nodes); err != nil {
		return nil, err
	}
	switch cfg.Kind {
	case KindInstant:
		if cfg.DropProb > 0 {
			return NewLossy(cfg.DropProb, nil, nodes, NewInstant(), rng)
		}
		return NewInstant(), nil
	case KindLatency:
		lat := NewLatency(cfg, nodes, rng)
		if cfg.DropProb > 0 {
			return NewLossy(cfg.DropProb, nil, nodes, lat, rng)
		}
		return lat, nil
	case KindLossy:
		var inner Transport = NewInstant()
		if cfg.LatencyMean > 0 || cfg.LatencyJitter > 0 || cfg.BandwidthBytesPerTick > 0 {
			inner = NewLatency(cfg, nodes, rng)
		}
		return NewLossy(cfg.DropProb, cfg.Partitions, nodes, inner, rng)
	default:
		return nil, fmt.Errorf("%w: kind=%d", ErrConfig, int(cfg.Kind))
	}
}

// bwTicks returns the serialization delay for a frame of `bytes` wire
// bytes at the configured bandwidth (0 when unlimited).
func bwTicks(bytes, bytesPerTick int) int {
	if bytesPerTick <= 0 || bytes <= 0 {
		return 0
	}
	return (bytes + bytesPerTick - 1) / bytesPerTick
}

// roundDelay converts a sampled float delay to whole ticks, at least 1.
func roundDelay(d float64) int {
	t := int(math.Round(d))
	if t < 1 {
		t = 1
	}
	return t
}
