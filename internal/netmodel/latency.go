package netmodel

import "gossipmia/internal/tensor"

// Latency models heterogeneous link delays: each directed link (i,j)
// gets a propagation delay sampled once at construction from
// N(LatencyMean, LatencyJitter²) ticks, clamped to at least one tick,
// plus an optional per-message serialization term of
// ceil(wireBytes/BandwidthBytesPerTick) ticks. Messages are queued and
// delivered in (due tick, send order) via the shared delivery queue; a
// Latency transport never delivers inline.
type Latency struct {
	n           int
	delays      []int // n*n directed link delays, row-major
	bytesPerTik int
	q           deliveryQueue
}

var _ Transport = (*Latency)(nil)

// NewLatency samples the per-link delay matrix from rng. The sampling
// order (row-major over directed links) is fixed, so a fixed seed gives
// a fixed network.
func NewLatency(cfg Config, nodes int, rng *tensor.RNG) *Latency {
	t := &Latency{
		n:           nodes,
		delays:      make([]int, nodes*nodes),
		bytesPerTik: cfg.BandwidthBytesPerTick,
	}
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if i == j {
				continue
			}
			t.delays[i*nodes+j] = roundDelay(rng.Normal(cfg.LatencyMean, cfg.LatencyJitter))
		}
	}
	return t
}

// Name implements Transport.
func (*Latency) Name() string { return "latency" }

// LinkDelay returns the sampled propagation delay of the directed link
// from→to (ticks), exposed for tests and analysis.
func (t *Latency) LinkDelay(from, to int) int { return t.delays[from*t.n+to] }

// Plan implements Transport: propagation plus serialization delay,
// never dropped, never inline.
func (t *Latency) Plan(now, from, to, bytes int) (int, bool) {
	return now + t.delays[from*t.n+to] + bwTicks(bytes, t.bytesPerTik), false
}

// Schedule implements Transport.
func (t *Latency) Schedule(d Delivery) { t.q.push(d) }

// Drain implements Transport.
func (t *Latency) Drain(dst []Delivery, now int) []Delivery { return t.q.drainDue(dst, now) }

// Pending implements Transport.
func (t *Latency) Pending() int { return t.q.pending() }
