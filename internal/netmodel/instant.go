package netmodel

// Instant is the seed semantics: every message is delivered inline at
// the tick it was sent, on the sender's call stack. It never queues, so
// the simulator's zero-allocation send discipline is preserved intact.
type Instant struct{}

var _ Transport = Instant{}

// NewInstant returns the zero-delay transport.
func NewInstant() Instant { return Instant{} }

// Name implements Transport.
func (Instant) Name() string { return "instant" }

// Plan implements Transport: deliver now, never drop.
func (Instant) Plan(now, from, to, bytes int) (int, bool) { return now, false }

// Schedule implements Transport. Instant never plans a future delivery,
// so a call here is a simulator bug, not a runtime condition.
func (Instant) Schedule(Delivery) {
	panic("netmodel: Schedule on the instant transport")
}

// Drain implements Transport: the queue is always empty.
func (Instant) Drain(dst []Delivery, now int) []Delivery { return dst }

// Pending implements Transport.
func (Instant) Pending() int { return 0 }
