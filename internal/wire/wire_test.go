package wire

import (
	"errors"
	"testing"
	"testing/quick"

	"gossipmia/internal/tensor"
)

func TestRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(1)
	v := tensor.NewVector(257)
	rng.FillNormal(v, 0, 3)
	b := EncodeParams(v)
	if len(b) != ParamsWireSize(len(v)) {
		t.Fatalf("frame size %d, want %d", len(b), ParamsWireSize(len(v)))
	}
	got, err := DecodeParams(b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApprox(got, v, 0) {
		t.Fatal("round trip changed values")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	b := EncodeParams(nil)
	got, err := DecodeParams(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty round trip length %d", len(got))
	}
}

// Property: round trip is the identity for arbitrary finite values,
// including NaN/Inf bit patterns (frames carry raw IEEE-754 bits).
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []float64) bool {
		v := tensor.Vector(raw)
		got, err := DecodeParams(EncodeParams(v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			// Compare bit patterns so NaN == NaN here.
			a, b := v[i], got[i]
			if a != b && !(a != a && b != b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	v := tensor.Vector{1, 2, 3}
	good := EncodeParams(v)

	// Truncated.
	if _, err := DecodeParams(good[:8]); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated error = %v", err)
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := DecodeParams(bad); !errors.Is(err, ErrFormat) {
		t.Fatalf("magic error = %v", err)
	}
	// Bad version.
	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, err := DecodeParams(bad); !errors.Is(err, ErrFormat) {
		t.Fatalf("version error = %v", err)
	}
	// Corrupt payload -> checksum failure.
	bad = append([]byte(nil), good...)
	bad[headerSize] ^= 0x01
	if _, err := DecodeParams(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("checksum error = %v", err)
	}
	// Length/count mismatch.
	bad = append([]byte(nil), good...)
	bad[8] = 200
	if _, err := DecodeParams(bad); !errors.Is(err, ErrFormat) {
		t.Fatalf("count mismatch error = %v", err)
	}
	// Implausible count with matching huge length claim is rejected
	// before allocation.
	huge := append([]byte(nil), good...)
	for i := 8; i < 16; i++ {
		huge[i] = 0xff
	}
	if _, err := DecodeParams(huge); !errors.Is(err, ErrFormat) {
		t.Fatalf("implausible count error = %v", err)
	}
}

func TestAppendParamsMatchesEncode(t *testing.T) {
	rng := tensor.NewRNG(2)
	v := tensor.NewVector(64)
	rng.FillNormal(v, 0, 1)

	// Appending to nil equals the fresh encoding.
	if got, want := AppendParams(nil, v), EncodeParams(v); string(got) != string(want) {
		t.Fatal("AppendParams(nil, v) != EncodeParams(v)")
	}
	// Appending preserves the prefix and frames after it.
	prefix := []byte("hdr:")
	framed := AppendParams(append([]byte(nil), prefix...), v)
	if string(framed[:len(prefix)]) != string(prefix) {
		t.Fatal("prefix clobbered")
	}
	got, err := DecodeParams(framed[len(prefix):])
	if err != nil || !tensor.EqualApprox(got, v, 0) {
		t.Fatalf("appended frame does not decode: %v", err)
	}
	// A dirty reused buffer must still produce a canonical frame (the
	// reserved bytes are written, not inherited).
	dirty := make([]byte, 0, ParamsWireSize(len(v)))
	dirty = dirty[:cap(dirty)]
	for i := range dirty {
		dirty[i] = 0xff
	}
	dirty = dirty[:0]
	if got := AppendParams(dirty, v); string(got) != string(EncodeParams(v)) {
		t.Fatal("dirty buffer leaked into the frame")
	}
}

func TestAppendParamsReusedBufferDoesNotAllocate(t *testing.T) {
	v := tensor.NewVector(128)
	buf := make([]byte, 0, ParamsWireSize(len(v)))
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendParams(buf[:0], v)
	})
	if allocs != 0 {
		t.Fatalf("AppendParams into reused buffer allocates %.1f/op", allocs)
	}
}

func TestDecodeParamsInto(t *testing.T) {
	rng := tensor.NewRNG(3)
	v := tensor.NewVector(32)
	rng.FillNormal(v, 0, 1)
	frame := EncodeParams(v)

	// Sufficient capacity: storage is reused.
	dst := tensor.NewVector(32)
	got, err := DecodeParamsInto(dst, frame)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[0] {
		t.Fatal("decode-into did not reuse dst storage")
	}
	if !tensor.EqualApprox(got, v, 0) {
		t.Fatal("decode-into changed values")
	}
	// Larger capacity than needed still reuses and truncates.
	big := tensor.NewVector(100)
	got, err = DecodeParamsInto(big, frame)
	if err != nil || len(got) != 32 || &got[0] != &big[0] {
		t.Fatalf("decode-into big dst: len=%d err=%v", len(got), err)
	}
	// Insufficient capacity: falls back to a fresh vector.
	small := tensor.NewVector(4)
	got, err = DecodeParamsInto(small, frame)
	if err != nil || len(got) != 32 {
		t.Fatalf("decode-into small dst: len=%d err=%v", len(got), err)
	}
	if !tensor.EqualApprox(got, v, 0) {
		t.Fatal("fallback decode changed values")
	}
}

func TestDecodeParamsIntoReusedDoesNotAllocate(t *testing.T) {
	v := tensor.NewVector(128)
	frame := EncodeParams(v)
	dst := tensor.NewVector(128)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = DecodeParamsInto(dst, frame)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeParamsInto with reused dst allocates %.1f/op", allocs)
	}
}

func TestWireSizeFormula(t *testing.T) {
	for _, n := range []int{0, 1, 100} {
		v := tensor.NewVector(n)
		if got := len(EncodeParams(v)); got != ParamsWireSize(n) {
			t.Fatalf("n=%d: size %d != %d", n, got, ParamsWireSize(n))
		}
	}
}
