package wire

import (
	"encoding/binary"
	"math"
	"testing"

	"gossipmia/internal/tensor"
)

// FuzzDecodeParams throws arbitrary byte strings at the frame decoder:
// truncated frames, corrupted CRCs, flipped header fields, and
// absurd length claims must all return an error without panicking or
// allocating absurd amounts, and every accepted frame must re-encode
// to a frame that decodes to the same values.
func FuzzDecodeParams(f *testing.F) {
	// Canonical frames of a few sizes.
	for _, n := range []int{0, 1, 3, 64} {
		v := tensor.NewVector(n)
		for i := range v {
			v[i] = float64(i) * 0.5
		}
		f.Add(EncodeParams(v))
	}
	good := EncodeParams(tensor.Vector{1.5, -2.25, math.Inf(1), math.NaN()})
	f.Add(good)
	// Truncations.
	f.Add([]byte{})
	f.Add(good[:headerSize-1])
	f.Add(good[:len(good)-1])
	// Corrupted CRC.
	crcFlip := append([]byte(nil), good...)
	crcFlip[len(crcFlip)-1] ^= 0xff
	f.Add(crcFlip)
	// Corrupted payload.
	payloadFlip := append([]byte(nil), good...)
	payloadFlip[headerSize] ^= 0x01
	f.Add(payloadFlip)
	// Absurd count with a matching-length claim.
	huge := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(huge[8:16], 1<<40)
	f.Add(huge)
	// Wrong magic / version.
	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xff
	f.Add(badMagic)
	badVersion := append([]byte(nil), good...)
	badVersion[4] = 0x7f
	f.Add(badVersion)

	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := DecodeParams(b)
		if err != nil {
			if v != nil {
				t.Fatalf("error %v returned a non-nil vector", err)
			}
			return
		}
		if ParamsWireSize(len(v)) != len(b) {
			t.Fatalf("accepted %d bytes but decoded %d params", len(b), len(v))
		}
		// Accepted frames round-trip by value: re-encoding and decoding
		// again must reproduce the same bit patterns. (Byte equality
		// with the input is not required — the decoder ignores the
		// reserved header bytes, which re-encoding canonicalizes.)
		again, err := DecodeParams(EncodeParams(v))
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if len(again) != len(v) {
			t.Fatalf("re-decode length %d != %d", len(again), len(v))
		}
		for i := range v {
			if math.Float64bits(v[i]) != math.Float64bits(again[i]) {
				t.Fatalf("value %d changed across round trip: %x -> %x",
					i, math.Float64bits(v[i]), math.Float64bits(again[i]))
			}
		}
	})
}
