// Package wire defines the model-exchange serialization format: a
// little-endian framing of the flat parameter vector with a version tag
// and CRC-32 integrity check. The simulator uses it to account for the
// byte-level communication cost of each protocol (RQ4's "models sent"
// measured in bytes), and the codec is what a networked deployment of
// the library would put on the socket.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"gossipmia/internal/tensor"
)

// Frame layout: magic(4) version(2) reserved(2) count(8) payload(8·count) crc(4).
const (
	magic        = 0x474d4941 // "GMIA"
	version      = 1
	headerSize   = 4 + 2 + 2 + 8
	trailerSize  = 4
	maxParamsLen = 1 << 28 // 256M parameters: sanity bound against corrupt frames
)

var (
	// ErrFormat is returned when a frame is structurally invalid.
	ErrFormat = errors.New("wire: malformed frame")
	// ErrChecksum is returned when the CRC does not match the payload.
	ErrChecksum = errors.New("wire: checksum mismatch")
)

// ParamsWireSize returns the encoded size in bytes of a parameter vector
// with n entries.
func ParamsWireSize(n int) int {
	return headerSize + 8*n + trailerSize
}

// AppendParams appends the wire frame for v to dst and returns the
// extended slice. It allocates only when dst lacks capacity, so a
// transport serializing a stream of same-sized models into a reused
// buffer pays nothing per message.
func AppendParams(dst []byte, v tensor.Vector) []byte {
	start := len(dst)
	need := ParamsWireSize(len(v))
	if cap(dst)-start < need {
		// At least double so repeated appends into one stream buffer
		// amortize instead of copying the prefix per frame.
		grown := make([]byte, start, max(2*cap(dst), start+need))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:start+need]
	buf := dst[start:]
	binary.LittleEndian.PutUint32(buf[0:4], magic)
	binary.LittleEndian.PutUint16(buf[4:6], version)
	binary.LittleEndian.PutUint16(buf[6:8], 0) // reserved: dst may be dirty
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(v)))
	off := headerSize
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf[off:off+8], math.Float64bits(x))
		off += 8
	}
	crc := crc32.ChecksumIEEE(buf[:off])
	binary.LittleEndian.PutUint32(buf[off:off+4], crc)
	return dst
}

// EncodeParams serializes a parameter vector into a fresh buffer.
func EncodeParams(v tensor.Vector) []byte {
	return AppendParams(make([]byte, 0, ParamsWireSize(len(v))), v)
}

// DecodeParamsInto parses a frame produced by EncodeParams/AppendParams
// into dst, reusing dst's storage when its capacity suffices (the
// zero-allocation receive path for transports decoding same-sized
// models). It returns the decoded vector, which aliases dst only in the
// reuse case; on error dst's contents are unspecified.
func DecodeParamsInto(dst tensor.Vector, b []byte) (tensor.Vector, error) {
	if len(b) < headerSize+trailerSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFormat, len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	count := binary.LittleEndian.Uint64(b[8:16])
	if count > maxParamsLen {
		return nil, fmt.Errorf("%w: implausible count %d", ErrFormat, count)
	}
	want := ParamsWireSize(int(count))
	if len(b) != want {
		return nil, fmt.Errorf("%w: %d bytes for count %d (want %d)", ErrFormat, len(b), count, want)
	}
	payloadEnd := len(b) - trailerSize
	crc := binary.LittleEndian.Uint32(b[payloadEnd:])
	if crc32.ChecksumIEEE(b[:payloadEnd]) != crc {
		return nil, ErrChecksum
	}
	var out tensor.Vector
	if cap(dst) >= int(count) {
		out = dst[:count]
	} else {
		out = tensor.NewVector(int(count))
	}
	off := headerSize
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off : off+8]))
		off += 8
	}
	return out, nil
}

// DecodeParams parses a frame produced by EncodeParams into a fresh
// vector.
func DecodeParams(b []byte) (tensor.Vector, error) {
	return DecodeParamsInto(nil, b)
}
