package data

import (
	"fmt"

	"gossipmia/internal/tensor"
)

// GaussianConfig describes a Gaussian class-prototype mixture: each class
// c has a prototype µ_c drawn uniformly on the sphere of radius Margin,
// and examples are µ_c + N(0, Noise²·I). LabelNoise is the fraction of
// examples whose label is re-drawn uniformly, which directly controls the
// irreducible error and therefore the achievable train/test gap.
type GaussianConfig struct {
	Dim        int
	Classes    int
	Margin     float64
	Noise      float64
	LabelNoise float64
}

// Validate reports whether the configuration is usable.
func (c GaussianConfig) Validate() error {
	if c.Dim <= 0 || c.Classes <= 1 {
		return fmt.Errorf("data: gaussian config needs dim>0, classes>1, got dim=%d classes=%d", c.Dim, c.Classes)
	}
	if c.Noise < 0 || c.Margin <= 0 {
		return fmt.Errorf("data: gaussian config needs margin>0, noise>=0, got margin=%v noise=%v", c.Margin, c.Noise)
	}
	if c.LabelNoise < 0 || c.LabelNoise >= 1 {
		return fmt.Errorf("data: label noise %v out of [0,1)", c.LabelNoise)
	}
	return nil
}

// GaussianGenerator produces examples from a fixed set of class
// prototypes, so that independently generated train and test splits come
// from the same distribution.
type GaussianGenerator struct {
	cfg        GaussianConfig
	prototypes []tensor.Vector
}

// NewGaussianGenerator draws the class prototypes with rng and returns a
// generator bound to them.
func NewGaussianGenerator(cfg GaussianConfig, rng *tensor.RNG) (*GaussianGenerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &GaussianGenerator{cfg: cfg, prototypes: make([]tensor.Vector, cfg.Classes)}
	for c := 0; c < cfg.Classes; c++ {
		p := tensor.NewVector(cfg.Dim)
		rng.FillNormal(p, 0, 1)
		n := p.Norm2()
		if n == 0 {
			p[0] = 1
			n = 1
		}
		p.Scale(cfg.Margin / n)
		g.prototypes[c] = p
	}
	return g, nil
}

// Config returns the generator configuration.
func (g *GaussianGenerator) Config() GaussianConfig { return g.cfg }

// Sample draws n labelled examples with balanced class frequencies
// (round-robin labels, then shuffled).
func (g *GaussianGenerator) Sample(n int, rng *tensor.RNG) *Dataset {
	ds := &Dataset{
		X:       make([]tensor.Vector, n),
		Y:       make([]int, n),
		Classes: g.cfg.Classes,
	}
	for i := 0; i < n; i++ {
		label := i % g.cfg.Classes
		x := tensor.NewVector(g.cfg.Dim)
		rng.FillNormal(x, 0, g.cfg.Noise)
		proto := g.prototypes[label]
		for j := range x {
			x[j] += proto[j]
		}
		if g.cfg.LabelNoise > 0 && rng.Float64() < g.cfg.LabelNoise {
			label = rng.Intn(g.cfg.Classes)
		}
		ds.X[i] = x
		ds.Y[i] = label
	}
	ds.Shuffle(rng)
	return ds
}

// BasketConfig describes a Purchase100-style binary dataset: Classes
// prototype baskets over Dim items, each with expected density Density,
// and examples produced by flipping each bit with probability FlipProb.
// This mirrors how the original Purchase100 labels were constructed
// (k-means cluster ids over binary purchase vectors).
type BasketConfig struct {
	Dim      int
	Classes  int
	Density  float64
	FlipProb float64
}

// Validate reports whether the configuration is usable.
func (c BasketConfig) Validate() error {
	if c.Dim <= 0 || c.Classes <= 1 {
		return fmt.Errorf("data: basket config needs dim>0, classes>1, got dim=%d classes=%d", c.Dim, c.Classes)
	}
	if c.Density <= 0 || c.Density >= 1 {
		return fmt.Errorf("data: basket density %v out of (0,1)", c.Density)
	}
	if c.FlipProb < 0 || c.FlipProb >= 0.5 {
		return fmt.Errorf("data: basket flip prob %v out of [0,0.5)", c.FlipProb)
	}
	return nil
}

// BasketGenerator produces binary basket examples from fixed prototypes.
type BasketGenerator struct {
	cfg        BasketConfig
	prototypes [][]bool
}

// NewBasketGenerator draws the class prototype baskets with rng.
func NewBasketGenerator(cfg BasketConfig, rng *tensor.RNG) (*BasketGenerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &BasketGenerator{cfg: cfg, prototypes: make([][]bool, cfg.Classes)}
	for c := 0; c < cfg.Classes; c++ {
		p := make([]bool, cfg.Dim)
		for j := range p {
			p[j] = rng.Float64() < cfg.Density
		}
		g.prototypes[c] = p
	}
	return g, nil
}

// Config returns the generator configuration.
func (g *BasketGenerator) Config() BasketConfig { return g.cfg }

// Sample draws n labelled basket examples with balanced classes.
func (g *BasketGenerator) Sample(n int, rng *tensor.RNG) *Dataset {
	ds := &Dataset{
		X:       make([]tensor.Vector, n),
		Y:       make([]int, n),
		Classes: g.cfg.Classes,
	}
	for i := 0; i < n; i++ {
		label := i % g.cfg.Classes
		proto := g.prototypes[label]
		x := tensor.NewVector(g.cfg.Dim)
		for j, bit := range proto {
			v := bit
			if rng.Float64() < g.cfg.FlipProb {
				v = !v
			}
			if v {
				x[j] = 1
			}
		}
		ds.X[i] = x
		ds.Y[i] = label
	}
	ds.Shuffle(rng)
	return ds
}

// Generator is the common sampling interface implemented by both
// synthetic families; the catalog exposes each paper dataset through it.
type Generator interface {
	// Sample draws n fresh labelled examples.
	Sample(n int, rng *tensor.RNG) *Dataset
	// Classes returns the number of labels.
	Classes() int
	// Dim returns the input dimensionality.
	Dim() int
}

// Classes implements Generator.
func (g *GaussianGenerator) Classes() int { return g.cfg.Classes }

// Dim implements Generator.
func (g *GaussianGenerator) Dim() int { return g.cfg.Dim }

// Classes implements Generator.
func (g *BasketGenerator) Classes() int { return g.cfg.Classes }

// Dim implements Generator.
func (g *BasketGenerator) Dim() int { return g.cfg.Dim }

var (
	_ Generator = (*GaussianGenerator)(nil)
	_ Generator = (*BasketGenerator)(nil)
)
