package data

import (
	"math"
	"testing"
	"testing/quick"

	"gossipmia/internal/tensor"
)

func TestDatasetValidate(t *testing.T) {
	good := &Dataset{
		X:       []tensor.Vector{{1, 2}, {3, 4}},
		Y:       []int{0, 1},
		Classes: 2,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := &Dataset{X: []tensor.Vector{{1, 2}}, Y: []int{0, 1}, Classes: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad2 := &Dataset{X: []tensor.Vector{{1}, {1, 2}}, Y: []int{0, 0}, Classes: 2}
	if err := bad2.Validate(); err == nil {
		t.Fatal("ragged dims accepted")
	}
	bad3 := &Dataset{X: []tensor.Vector{{1}}, Y: []int{5}, Classes: 2}
	if err := bad3.Validate(); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestDatasetSubsetSplitHistogram(t *testing.T) {
	ds := &Dataset{
		X:       []tensor.Vector{{0}, {1}, {2}, {3}},
		Y:       []int{0, 1, 0, 1},
		Classes: 2,
	}
	sub := ds.Subset([]int{2, 0})
	if sub.Len() != 2 || sub.X[0][0] != 2 || sub.Y[1] != 0 {
		t.Fatalf("subset wrong: %+v", sub)
	}
	head, tail, err := ds.Split(1)
	if err != nil || head.Len() != 1 || tail.Len() != 3 {
		t.Fatalf("split: %v %d %d", err, head.Len(), tail.Len())
	}
	if _, _, err := ds.Split(9); err == nil {
		t.Fatal("out-of-range split accepted")
	}
	h := ds.LabelHistogram()
	if h[0] != 2 || h[1] != 2 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestDatasetCloneIsDeep(t *testing.T) {
	ds := &Dataset{X: []tensor.Vector{{1}}, Y: []int{0}, Classes: 1}
	c := ds.Clone()
	c.X[0][0] = 99
	if ds.X[0][0] == 99 {
		t.Fatal("clone shares storage")
	}
}

func TestGaussianGeneratorBasics(t *testing.T) {
	rng := tensor.NewRNG(1)
	g, err := NewGaussianGenerator(GaussianConfig{Dim: 8, Classes: 4, Margin: 3, Noise: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Sample(400, rng)
	if err := ds.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}
	if ds.Len() != 400 || ds.Dim() != 8 || ds.Classes != 4 {
		t.Fatalf("shape: len=%d dim=%d classes=%d", ds.Len(), ds.Dim(), ds.Classes)
	}
	// Balanced classes.
	for c, n := range ds.LabelHistogram() {
		if n != 100 {
			t.Fatalf("class %d count %d, want 100", c, n)
		}
	}
}

func TestGaussianConfigValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	bad := []GaussianConfig{
		{Dim: 0, Classes: 2, Margin: 1},
		{Dim: 2, Classes: 1, Margin: 1},
		{Dim: 2, Classes: 2, Margin: 0},
		{Dim: 2, Classes: 2, Margin: 1, Noise: -1},
		{Dim: 2, Classes: 2, Margin: 1, LabelNoise: 1},
	}
	for i, cfg := range bad {
		if _, err := NewGaussianGenerator(cfg, rng); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGaussianClassesAreSeparable(t *testing.T) {
	// A nearest-prototype classifier on generated data should beat chance
	// comfortably when margin >> noise.
	rng := tensor.NewRNG(3)
	g, err := NewGaussianGenerator(GaussianConfig{Dim: 16, Classes: 4, Margin: 4, Noise: 0.8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Sample(200, rng)
	correct := 0
	for i, x := range ds.X {
		best, bestDist := -1, math.Inf(1)
		for c, p := range g.prototypes {
			diff := x.Clone()
			if err := diff.SubInPlace(p); err != nil {
				t.Fatal(err)
			}
			if d := diff.Norm2(); d < bestDist {
				best, bestDist = c, d
			}
		}
		if best == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.9 {
		t.Fatalf("nearest-prototype accuracy %v, want >= 0.9", acc)
	}
}

func TestBasketGeneratorBasics(t *testing.T) {
	rng := tensor.NewRNG(5)
	g, err := NewBasketGenerator(BasketConfig{Dim: 50, Classes: 5, Density: 0.3, FlipProb: 0.05}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Sample(100, rng)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X {
		for _, v := range x {
			if v != 0 && v != 1 {
				t.Fatalf("non-binary basket value %v", v)
			}
		}
	}
	// Mean density should be near the configured 0.3 (flip prob is
	// symmetric-ish at low values).
	var ones, total float64
	for _, x := range ds.X {
		ones += x.Sum()
		total += float64(len(x))
	}
	if d := ones / total; math.Abs(d-0.3) > 0.08 {
		t.Fatalf("observed density %v, want ~0.3", d)
	}
}

func TestBasketConfigValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	bad := []BasketConfig{
		{Dim: 0, Classes: 2, Density: 0.5},
		{Dim: 2, Classes: 1, Density: 0.5},
		{Dim: 2, Classes: 2, Density: 0},
		{Dim: 2, Classes: 2, Density: 0.5, FlipProb: 0.6},
	}
	for i, cfg := range bad {
		if _, err := NewBasketGenerator(cfg, rng); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCatalogAndGenerators(t *testing.T) {
	if len(Catalog()) != 4 || len(AllCorpora()) != 4 {
		t.Fatal("catalog should list four corpora")
	}
	for _, info := range Catalog() {
		g, err := NewGenerator(info.Name, tensor.NewRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if g.Classes() != info.Classes {
			t.Fatalf("%s classes %d != %d", info.Name, g.Classes(), info.Classes)
		}
		if g.Dim() != info.Dim {
			t.Fatalf("%s dim %d != %d", info.Name, g.Dim(), info.Dim)
		}
		ds := g.Sample(2*info.Classes, tensor.NewRNG(2))
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
	}
	if _, err := NewGenerator("nope", tensor.NewRNG(1)); err == nil {
		t.Fatal("unknown corpus accepted")
	}
}

func TestPartitionIID(t *testing.T) {
	rng := tensor.NewRNG(1)
	g, err := NewGaussianGenerator(GaussianConfig{Dim: 4, Classes: 2, Margin: 2, Noise: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := g.Sample(100, rng)
	parts, err := PartitionIID(base, 5, 10, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 {
		t.Fatalf("parts = %d", len(parts))
	}
	seen := map[*float64]bool{}
	for _, p := range parts {
		if p.Train.Len() != 10 || p.Test.Len() != 5 {
			t.Fatalf("sizes: %d/%d", p.Train.Len(), p.Test.Len())
		}
		for _, x := range append(append([]tensor.Vector{}, p.Train.X...), p.Test.X...) {
			key := &x[0]
			if seen[key] {
				t.Fatal("example assigned twice")
			}
			seen[key] = true
		}
	}
	if _, err := PartitionIID(base, 5, 100, 100, rng); err == nil {
		t.Fatal("oversubscription accepted")
	}
	if _, err := PartitionIID(base, 0, 1, 1, rng); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestPartitionDirichletHeterogeneity(t *testing.T) {
	rng := tensor.NewRNG(7)
	g, err := NewGaussianGenerator(GaussianConfig{Dim: 4, Classes: 10, Margin: 2, Noise: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := g.Sample(2000, rng)

	imbalance := func(beta float64) float64 {
		parts, err := PartitionDirichlet(base, 10, beta, 0.7, tensor.NewRNG(11))
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		// Average, over nodes, of the max label share in the node's
		// training set. IID-like ~0.1; fully skewed -> 1.0.
		var s float64
		for _, p := range parts {
			h := p.Train.LabelHistogram()
			maxC, total := 0, 0
			for _, c := range h {
				total += c
				if c > maxC {
					maxC = c
				}
			}
			s += float64(maxC) / float64(total)
		}
		return s / float64(len(parts))
	}

	lo, hi := imbalance(0.1), imbalance(100)
	if lo <= hi {
		t.Fatalf("beta=0.1 imbalance %v should exceed beta=100 imbalance %v", lo, hi)
	}
	if hi > 0.5 {
		t.Fatalf("beta=100 should be near-uniform, got max-share %v", hi)
	}
}

func TestPartitionDirichletEveryNodeViable(t *testing.T) {
	rng := tensor.NewRNG(3)
	g, err := NewGaussianGenerator(GaussianConfig{Dim: 2, Classes: 3, Margin: 2, Noise: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := g.Sample(300, rng)
	parts, err := PartitionDirichlet(base, 20, 0.05, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, p := range parts {
		if p.Train.Len() < 1 || p.Test.Len() < 1 {
			t.Fatalf("node %d has train=%d test=%d", i, p.Train.Len(), p.Test.Len())
		}
		total += p.Train.Len() + p.Test.Len()
	}
	if total != base.Len() {
		t.Fatalf("partition covers %d of %d examples", total, base.Len())
	}
}

func TestPartitionDirichletValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	base := &Dataset{X: []tensor.Vector{{1}, {2}, {3}, {4}}, Y: []int{0, 1, 0, 1}, Classes: 2}
	if _, err := PartitionDirichlet(base, 0, 0.5, 0.7, rng); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := PartitionDirichlet(base, 2, 0, 0.7, rng); err == nil {
		t.Fatal("beta=0 accepted")
	}
	if _, err := PartitionDirichlet(base, 2, 0.5, 1.5, rng); err == nil {
		t.Fatal("trainFrac out of range accepted")
	}
}

// Property: apportion always returns non-negative counts summing to total.
func TestApportionProperty(t *testing.T) {
	f := func(seed int64, totalRaw uint16) bool {
		rng := tensor.NewRNG(seed)
		total := int(totalRaw % 1000)
		p := rng.Dirichlet(7, 0.5)
		counts := apportion(p, total)
		sum := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
