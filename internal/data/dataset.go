// Package data provides the dataset substrate for the study: synthetic
// stand-ins for the paper's four corpora (CIFAR-10, CIFAR-100,
// FashionMNIST, Purchase100) plus the IID and Dirichlet(β) partitioning
// schemes used to distribute records across nodes.
//
// The module is offline, so the original corpora cannot be fetched; each
// generator reproduces the statistical structure the MIA study depends on
// (class count, dimensionality, difficulty ordering, and a controllable
// train/test generalization gap). See DESIGN.md §3 for the substitution
// rationale.
package data

import (
	"errors"
	"fmt"

	"gossipmia/internal/tensor"
)

// ErrEmpty is returned when an operation needs a non-empty dataset.
var ErrEmpty = errors.New("data: empty dataset")

// Dataset is a labelled classification dataset held in memory.
type Dataset struct {
	X       []tensor.Vector
	Y       []int
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the input dimensionality (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks internal consistency: matching lengths, labels in
// range, and uniform dimensionality.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("data: %d inputs but %d labels", len(d.X), len(d.Y))
	}
	if d.Classes <= 0 {
		return fmt.Errorf("data: non-positive class count %d", d.Classes)
	}
	dim := d.Dim()
	for i, x := range d.X {
		if len(x) != dim {
			return fmt.Errorf("data: example %d has dim %d, want %d", i, len(x), dim)
		}
		if d.Y[i] < 0 || d.Y[i] >= d.Classes {
			return fmt.Errorf("data: example %d label %d out of range [0,%d)", i, d.Y[i], d.Classes)
		}
	}
	return nil
}

// Subset returns a view of the dataset restricted to the given indices.
// The underlying example vectors are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		X:       make([]tensor.Vector, len(idx)),
		Y:       make([]int, len(idx)),
		Classes: d.Classes,
	}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// Shuffle permutes the dataset in place using rng.
func (d *Dataset) Shuffle(rng *tensor.RNG) {
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split divides the dataset into a head of n examples and the remaining
// tail, sharing storage. It returns an error when n is out of range.
func (d *Dataset) Split(n int) (head, tail *Dataset, err error) {
	if n < 0 || n > d.Len() {
		return nil, nil, fmt.Errorf("data: split at %d of %d examples", n, d.Len())
	}
	head = &Dataset{X: d.X[:n], Y: d.Y[:n], Classes: d.Classes}
	tail = &Dataset{X: d.X[n:], Y: d.Y[n:], Classes: d.Classes}
	return head, tail, nil
}

// LabelHistogram returns the count of examples per class.
func (d *Dataset) LabelHistogram() []int {
	h := make([]int, d.Classes)
	for _, y := range d.Y {
		if y >= 0 && y < d.Classes {
			h[y]++
		}
	}
	return h
}

// Clone returns a deep copy of the dataset (fresh example vectors).
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		X:       make([]tensor.Vector, len(d.X)),
		Y:       append([]int(nil), d.Y...),
		Classes: d.Classes,
	}
	for i, x := range d.X {
		out.X[i] = x.Clone()
	}
	return out
}
