package data

import (
	"fmt"

	"gossipmia/internal/tensor"
)

// NodeData is one node's local data: the training split (MIA members)
// and a disjoint local test split (MIA non-members and the local
// generalization-error reference), both drawn from the same distribution
// as in the paper's setup.
type NodeData struct {
	Train *Dataset
	Test  *Dataset
}

// PartitionIID distributes base uniformly across nodes: each node gets
// trainPer training and testPer test examples, all disjoint, sampled
// i.i.d. from the base split (implemented as a global shuffle followed by
// chunking). It returns an error when base is too small.
func PartitionIID(base *Dataset, nodes, trainPer, testPer int, rng *tensor.RNG) ([]NodeData, error) {
	if nodes <= 0 || trainPer <= 0 || testPer < 0 {
		return nil, fmt.Errorf("data: invalid partition nodes=%d trainPer=%d testPer=%d", nodes, trainPer, testPer)
	}
	need := nodes * (trainPer + testPer)
	if base.Len() < need {
		return nil, fmt.Errorf("data: base has %d examples, need %d for %d nodes", base.Len(), need, nodes)
	}
	perm := rng.Perm(base.Len())
	out := make([]NodeData, nodes)
	pos := 0
	for i := 0; i < nodes; i++ {
		trainIdx := perm[pos : pos+trainPer]
		pos += trainPer
		testIdx := perm[pos : pos+testPer]
		pos += testPer
		out[i] = NodeData{Train: base.Subset(trainIdx), Test: base.Subset(testIdx)}
	}
	return out, nil
}

// PartitionDirichlet applies the label-imbalance scheme of Li et al.: for
// each class k, the fraction of class-k records assigned to each node is
// drawn from Dirichlet(beta·1_nodes). Smaller beta means stronger
// heterogeneity. Each node's allocation is then split into train and test
// parts with proportion trainFrac.
//
// Nodes that end up with fewer than two examples are topped up with
// random leftovers so every node can train.
func PartitionDirichlet(base *Dataset, nodes int, beta, trainFrac float64, rng *tensor.RNG) ([]NodeData, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("data: invalid node count %d", nodes)
	}
	if beta <= 0 {
		return nil, fmt.Errorf("data: dirichlet beta must be positive, got %v", beta)
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, fmt.Errorf("data: trainFrac %v out of (0,1)", trainFrac)
	}
	if base.Len() < 2*nodes {
		return nil, fmt.Errorf("data: base has %d examples for %d nodes: %w", base.Len(), nodes, ErrEmpty)
	}

	// Bucket indices per class, shuffled.
	byClass := make([][]int, base.Classes)
	for i, y := range base.Y {
		byClass[y] = append(byClass[y], i)
	}
	for _, idx := range byClass {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}

	perNode := make([][]int, nodes)
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		p := rng.Dirichlet(nodes, beta)
		// Convert proportions to integer counts that sum to len(idx).
		counts := apportion(p, len(idx))
		pos := 0
		for nodeID, c := range counts {
			perNode[nodeID] = append(perNode[nodeID], idx[pos:pos+c]...)
			pos += c
		}
	}

	// Top up starved nodes from the richest ones so everyone can train
	// and hold out at least one test record.
	const minPerNode = 4
	for i := range perNode {
		for len(perNode[i]) < minPerNode {
			donor := richestNode(perNode, i)
			if donor < 0 {
				return nil, fmt.Errorf("data: cannot give node %d at least %d examples: %w", i, minPerNode, ErrEmpty)
			}
			last := len(perNode[donor]) - 1
			perNode[i] = append(perNode[i], perNode[donor][last])
			perNode[donor] = perNode[donor][:last]
		}
	}

	out := make([]NodeData, nodes)
	for i, idx := range perNode {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		nTrain := int(trainFrac * float64(len(idx)))
		if nTrain < 1 {
			nTrain = 1
		}
		if nTrain >= len(idx) {
			nTrain = len(idx) - 1
		}
		out[i] = NodeData{
			Train: base.Subset(idx[:nTrain]),
			Test:  base.Subset(idx[nTrain:]),
		}
	}
	return out, nil
}

// DirichletTrainSets distributes all of base across nodes with the
// Dirichlet(beta) label-imbalance scheme and returns only the per-node
// training sets. The paper samples each node's *test* (non-member) split
// i.i.d. from the base distribution even in the non-IID experiments
// (Section 3.1), so callers pair these skewed training sets with
// separately drawn IID test sets.
func DirichletTrainSets(base *Dataset, nodes int, beta float64, rng *tensor.RNG) ([]*Dataset, error) {
	// Reuse the full partitioner with a high train fraction, then merge
	// each node's residual test part back into its training set so no
	// record is wasted.
	parts, err := PartitionDirichlet(base, nodes, beta, 0.75, rng)
	if err != nil {
		return nil, err
	}
	out := make([]*Dataset, nodes)
	for i, p := range parts {
		merged := &Dataset{
			X:       append(append([]tensor.Vector(nil), p.Train.X...), p.Test.X...),
			Y:       append(append([]int(nil), p.Train.Y...), p.Test.Y...),
			Classes: base.Classes,
		}
		out[i] = merged
	}
	return out, nil
}

// apportion converts a probability vector into non-negative integer
// counts summing to total (largest-remainder method).
func apportion(p tensor.Vector, total int) []int {
	counts := make([]int, len(p))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(p))
	assigned := 0
	for i, pi := range p {
		exact := pi * float64(total)
		c := int(exact)
		counts[i] = c
		assigned += c
		rems[i] = rem{idx: i, frac: exact - float64(c)}
	}
	// Distribute the remainder to the largest fractional parts.
	for assigned < total {
		best := -1
		for i := range rems {
			if best < 0 || rems[i].frac > rems[best].frac {
				best = i
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return counts
}

// richestNode returns the index of the node (other than skip) with the
// most examples and at least minPerNode+1 of them, or -1.
func richestNode(perNode [][]int, skip int) int {
	best, bestLen := -1, 4
	for i, idx := range perNode {
		if i == skip {
			continue
		}
		if len(idx) > bestLen {
			best, bestLen = i, len(idx)
		}
	}
	return best
}
