package data

import (
	"fmt"

	"gossipmia/internal/tensor"
)

// CorpusName identifies one of the paper's four datasets (Table 1).
type CorpusName string

// The four corpora of Table 1. The "-like" synthetic equivalents keep the
// class counts and the difficulty ordering (FashionMNIST easiest,
// CIFAR-100 hardest); see DESIGN.md §3.
const (
	CIFAR10      CorpusName = "cifar10"
	CIFAR100     CorpusName = "cifar100"
	FashionMNIST CorpusName = "fashionmnist"
	Purchase100  CorpusName = "purchase100"
)

// AllCorpora lists the four datasets in the paper's presentation order.
func AllCorpora() []CorpusName {
	return []CorpusName{CIFAR10, CIFAR100, FashionMNIST, Purchase100}
}

// CorpusInfo describes a corpus for Table 1 reproduction.
type CorpusInfo struct {
	Name        CorpusName
	Classes     int
	Dim         int
	Description string
	// PaperTrain/PaperTest record the original corpus sizes for the
	// Table 1 catalog; synthetic splits are sized by the caller.
	PaperTrain, PaperTest int
}

// Catalog returns the Table 1 row for each corpus.
func Catalog() []CorpusInfo {
	return []CorpusInfo{
		{Name: CIFAR10, Classes: 10, Dim: 64, PaperTrain: 50000, PaperTest: 10000,
			Description: "CIFAR-10-like: 10-class Gaussian prototype mixture (64-dim embedding)"},
		{Name: CIFAR100, Classes: 100, Dim: 128, PaperTrain: 50000, PaperTest: 10000,
			Description: "CIFAR-100-like: 100-class fine-grained Gaussian mixture (128-dim)"},
		{Name: FashionMNIST, Classes: 10, Dim: 49, PaperTrain: 60000, PaperTest: 10000,
			Description: "FashionMNIST-like: easy 10-class Gaussian mixture (49-dim)"},
		{Name: Purchase100, Classes: 100, Dim: 600, PaperTrain: 157859, PaperTest: 39465,
			Description: "Purchase100-like: 100 binary basket prototypes over 600 items"},
	}
}

// NewGenerator builds the synthetic generator for a corpus. The margin,
// noise, and label-noise parameters encode the paper's observed difficulty
// ordering: FashionMNIST reaches the highest accuracy, CIFAR-100 the
// lowest, and Purchase100 overfits most visibly.
func NewGenerator(name CorpusName, rng *tensor.RNG) (Generator, error) {
	switch name {
	case CIFAR10:
		return NewGaussianGenerator(GaussianConfig{
			Dim: 64, Classes: 10, Margin: 2.4, Noise: 1.0, LabelNoise: 0.08,
		}, rng)
	case CIFAR100:
		return NewGaussianGenerator(GaussianConfig{
			Dim: 128, Classes: 100, Margin: 2.1, Noise: 1.0, LabelNoise: 0.12,
		}, rng)
	case FashionMNIST:
		return NewGaussianGenerator(GaussianConfig{
			Dim: 49, Classes: 10, Margin: 3.2, Noise: 1.0, LabelNoise: 0.04,
		}, rng)
	case Purchase100:
		return NewBasketGenerator(BasketConfig{
			Dim: 600, Classes: 100, Density: 0.25, FlipProb: 0.1,
		}, rng)
	default:
		return nil, fmt.Errorf("data: unknown corpus %q", name)
	}
}
