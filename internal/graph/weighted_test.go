package graph

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gossipmia/internal/tensor"
)

// starAdjacency returns a hub-and-leaves graph on n nodes (node 0 is the
// hub), the canonical irregular topology.
func starAdjacency(n int) [][]int {
	adj := make([][]int, n)
	for i := 1; i < n; i++ {
		adj[0] = append(adj[0], i)
		adj[i] = []int{0}
	}
	return adj
}

func TestMetropolisValidation(t *testing.T) {
	if _, err := NewMetropolis(nil); !errors.Is(err, ErrTopology) {
		t.Fatalf("empty adjacency error = %v", err)
	}
	if _, err := NewMetropolis([][]int{{0}}); !errors.Is(err, ErrTopology) {
		t.Fatalf("self loop error = %v", err)
	}
	if _, err := NewMetropolis([][]int{{5}, {0}}); !errors.Is(err, ErrTopology) {
		t.Fatalf("out of range error = %v", err)
	}
	if _, err := NewMetropolis([][]int{{1, 1}, {0, 0}}); !errors.Is(err, ErrTopology) {
		t.Fatalf("parallel edge error = %v", err)
	}
	if _, err := NewMetropolis([][]int{{1}, {}}); !errors.Is(err, ErrTopology) {
		t.Fatalf("asymmetric edge error = %v", err)
	}
}

func TestMetropolisStarIsDoublyStochastic(t *testing.T) {
	w, err := NewMetropolis(starAdjacency(8))
	if err != nil {
		t.Fatal(err)
	}
	m := w.Matrix()
	if !m.IsDoublyStochastic(1e-12) {
		t.Fatal("star Metropolis matrix not doubly stochastic")
	}
	if !m.IsSymmetric(1e-12) {
		t.Fatal("star Metropolis matrix not symmetric")
	}
	if w.Degree(0) != 7 || w.Degree(1) != 1 {
		t.Fatalf("degrees: hub %d, leaf %d", w.Degree(0), w.Degree(1))
	}
}

func TestMetropolisMatchesUniformOnRegular(t *testing.T) {
	g := mustRegular(t, 12, 4, 3)
	w, err := MetropolisFromRegular(g)
	if err != nil {
		t.Fatal(err)
	}
	dense := w.Matrix()
	uniform := g.MixingMatrix()
	if !tensor.EqualApprox(tensor.Vector(dense.Data), tensor.Vector(uniform.Data), 1e-12) {
		t.Fatal("Metropolis weights on a regular graph should equal 1/(k+1)")
	}
}

func TestWeightedApplyMatchesMatrix(t *testing.T) {
	w, err := NewMetropolis(starAdjacency(9))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(4)
	x := tensor.NewVector(9)
	rng.FillNormal(x, 0, 1)
	fast, err := w.ApplyMixing(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := w.Matrix().MatVec(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApprox(fast, slow, 1e-12) {
		t.Fatal("sparse weighted mixing disagrees with dense matrix")
	}
	if _, err := w.ApplyMixing(tensor.NewVector(2), nil); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
}

// Property: weighted mixing preserves the mean on arbitrary inputs.
func TestWeightedMixingPreservesMeanProperty(t *testing.T) {
	w, err := NewMetropolis(starAdjacency(10))
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [10]float64) bool {
		x := tensor.NewVector(10)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = math.Mod(v, 1e3)
		}
		out, err := w.ApplyMixing(x, nil)
		if err != nil {
			return false
		}
		return math.Abs(out.Mean()-x.Mean()) <= 1e-9*(1+math.Abs(x.Mean()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSequenceContraction(t *testing.T) {
	// A connected star contracts disagreement: lambda2 of the product
	// must fall below the single-step value.
	w, err := NewMetropolis(starAdjacency(10))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(6)
	seq := NewSequence(10)
	for i := 0; i < 5; i++ {
		if err := seq.Append(w); err != nil {
			t.Fatal(err)
		}
	}
	one, err := seq.ContractionFactor(1, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	five, err := seq.ContractionFactor(5, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !(one < 1 && five < one) {
		t.Fatalf("star contraction: 1-step %v, 5-step %v", one, five)
	}
	// Static weighted product obeys lambda2(W^5) = lambda2(W)^5.
	if math.Abs(five-math.Pow(one, 5)) > 1e-6*(1+five) {
		t.Fatalf("power law violated: %v vs %v", five, math.Pow(one, 5))
	}
}

func TestWeightedCloneIsDeep(t *testing.T) {
	w, err := NewMetropolis(starAdjacency(5))
	if err != nil {
		t.Fatal(err)
	}
	c, ok := w.CloneMixer().(*Weighted)
	if !ok {
		t.Fatal("clone is not *Weighted")
	}
	c.self[0] = 99
	if w.self[0] == 99 {
		t.Fatal("clone shares self-weight storage")
	}
	c.wgt[0][0] = 99
	if w.wgt[0][0] == 99 {
		t.Fatal("clone shares weight storage")
	}
}

func TestMetropolisIrregularMixesSlowerThanRegularSameEdges(t *testing.T) {
	// Extension finding: with the same edge budget, a star (maximally
	// irregular) mixes slower than a regular graph once the hub
	// bottleneck dominates. Star on n nodes has n-1 edges; compare to a
	// 2-regular ring (n edges).
	const n = 20
	star, err := NewMetropolis(starAdjacency(n))
	if err != nil {
		t.Fatal(err)
	}
	ring := mustRegularRing(t, n)
	rng := tensor.NewRNG(8)
	sStar, err := contractionOf(star, rng)
	if err != nil {
		t.Fatal(err)
	}
	sRing, err := SecondEigenvalue(ring, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Both must be valid contraction factors strictly below 1.
	if !(sStar > 0 && sStar < 1 && sRing > 0 && sRing < 1) {
		t.Fatalf("contractions out of range: star %v, ring %v", sStar, sRing)
	}
}

func contractionOf(m Mixer, rng *tensor.RNG) (float64, error) {
	seq := NewSequence(m.N())
	if err := seq.Append(m); err != nil {
		return 0, err
	}
	return seq.ContractionFactor(0, 300, rng)
}
