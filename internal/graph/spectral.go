package graph

import (
	"errors"
	"fmt"

	"gossipmia/internal/tensor"
)

// ErrEmptySequence is returned when a spectral computation receives no
// mixing steps.
var ErrEmptySequence = errors.New("graph: empty mixing sequence")

// MixingMatrix returns the dense weighted adjacency (mixing) matrix of
// Section 4: W_ij = 1/(k+1) when j is a neighbor of i or j == i, else 0.
// The result is symmetric and doubly stochastic for k-regular graphs.
func (g *Regular) MixingMatrix() *tensor.Matrix {
	w := tensor.NewMatrix(g.n, g.n)
	inv := 1 / float64(g.k+1)
	for i := 0; i < g.n; i++ {
		w.Set(i, i, inv)
		for _, j := range g.adj[i] {
			w.Set(i, j, inv)
		}
	}
	return w
}

// ApplyMixing computes one synchronous gossip averaging step
// (Equation 9): out_i = (x_i + Σ_{j∈N(i)} x_j)/(k+1). out may alias
// nothing; when nil it is allocated.
func (g *Regular) ApplyMixing(x, out tensor.Vector) (tensor.Vector, error) {
	if len(x) != g.n {
		return nil, fmt.Errorf("graph: mixing input length %d for %d nodes: %w", len(x), g.n, tensor.ErrShape)
	}
	if out == nil {
		out = tensor.NewVector(g.n)
	} else if len(out) != g.n {
		return nil, fmt.Errorf("graph: mixing output length %d for %d nodes: %w", len(out), g.n, tensor.ErrShape)
	}
	inv := 1 / float64(g.k+1)
	for i := 0; i < g.n; i++ {
		s := x[i]
		for _, j := range g.adj[i] {
			s += x[j]
		}
		out[i] = s * inv
	}
	return out, nil
}

// Mixer is one symmetric doubly-stochastic mixing step: a graph (regular
// or weighted) that can apply W·x. Implementations must be immutable
// snapshots once appended to a Sequence.
type Mixer interface {
	// N returns the number of nodes.
	N() int
	// ApplyMixing computes out = W·x (out allocated when nil).
	ApplyMixing(x, out tensor.Vector) (tensor.Vector, error)
	// CloneMixer returns an independent snapshot.
	CloneMixer() Mixer
}

// CloneMixer implements Mixer for Regular.
func (g *Regular) CloneMixer() Mixer { return g.Clone() }

var _ Mixer = (*Regular)(nil)

// Sequence is a time-ordered list of mixing steps W(1..T); its product
// W* = W(T)···W(1) is the overall mixing operator studied in Section 4.
// Steps are stored as snapshots (clones), so later mutation of the
// source graph does not change the sequence.
type Sequence struct {
	steps []Mixer
	n     int
}

// NewSequence returns an empty sequence for graphs on n nodes.
func NewSequence(n int) *Sequence { return &Sequence{n: n} }

// Append snapshots m as the next mixing step.
func (s *Sequence) Append(m Mixer) error {
	if m.N() != s.n {
		return fmt.Errorf("graph: appending %d-node mixer to %d-node sequence: %w", m.N(), s.n, tensor.ErrShape)
	}
	s.steps = append(s.steps, m.CloneMixer())
	return nil
}

// Len returns the number of mixing steps.
func (s *Sequence) Len() int { return len(s.steps) }

// Apply computes W*·x = W(T)···W(1)·x using upTo steps (all when
// upTo <= 0 or upTo > Len).
func (s *Sequence) Apply(x tensor.Vector, upTo int) (tensor.Vector, error) {
	if upTo <= 0 || upTo > len(s.steps) {
		upTo = len(s.steps)
	}
	cur := x.Clone()
	buf := tensor.NewVector(s.n)
	for t := 0; t < upTo; t++ {
		if _, err := s.steps[t].ApplyMixing(cur, buf); err != nil {
			return nil, err
		}
		cur, buf = buf, cur
	}
	return cur, nil
}

// ApplyTranspose computes (W*)ᵀ·x. Each W(t) is symmetric, so the
// transpose is the reverse-order product.
func (s *Sequence) ApplyTranspose(x tensor.Vector, upTo int) (tensor.Vector, error) {
	if upTo <= 0 || upTo > len(s.steps) {
		upTo = len(s.steps)
	}
	cur := x.Clone()
	buf := tensor.NewVector(s.n)
	for t := upTo - 1; t >= 0; t-- {
		if _, err := s.steps[t].ApplyMixing(cur, buf); err != nil {
			return nil, err
		}
		cur, buf = buf, cur
	}
	return cur, nil
}

// ContractionFactor returns λ₂(W*) in the sense used by the paper's
// Figure 10: the operator norm of W* restricted to the subspace
// orthogonal to the all-ones vector (the consensus direction). For a
// single symmetric doubly-stochastic W this equals the largest
// non-trivial |eigenvalue|; for products it is the exact worst-case
// disagreement contraction in Equation (11).
//
// It is computed by power iteration on the projected operator
// B = Π W* Π (Π the projector onto 1⊥), using BᵀB to handle the
// asymmetric product case. upTo limits the number of steps used
// (<=0 means all); iters is the number of power iterations (e.g. 100).
func (s *Sequence) ContractionFactor(upTo, iters int, rng *tensor.RNG) (float64, error) {
	if len(s.steps) == 0 {
		return 0, ErrEmptySequence
	}
	if iters <= 0 {
		iters = 100
	}
	x := tensor.NewVector(s.n)
	rng.FillNormal(x, 0, 1)
	projectOut1(x)
	if x.Norm2() == 0 {
		x[0], x[1] = 1, -1
	}
	x.Scale(1 / x.Norm2())

	for it := 0; it < iters; it++ {
		// y = Bᵀ B x, where B = Π W* Π.
		y, err := s.Apply(x, upTo)
		if err != nil {
			return 0, err
		}
		projectOut1(y)
		z, err := s.ApplyTranspose(y, upTo)
		if err != nil {
			return 0, err
		}
		projectOut1(z)
		n := z.Norm2()
		if n == 0 {
			// Perfect consensus: contraction factor underflowed to 0.
			return 0, nil
		}
		z.Scale(1 / n)
		x = z
	}
	// One more forward pass for an accurate estimate of σ = ||Bx|| with
	// unit x.
	y, err := s.Apply(x, upTo)
	if err != nil {
		return 0, err
	}
	projectOut1(y)
	return y.Norm2(), nil
}

// projectOut1 removes the component of v along the all-ones vector.
func projectOut1(v tensor.Vector) {
	m := v.Mean()
	for i := range v {
		v[i] -= m
	}
}

// SecondEigenvalue returns the contraction factor of a single graph's
// mixing matrix (the largest non-trivial |eigenvalue| of W).
func SecondEigenvalue(g *Regular, iters int, rng *tensor.RNG) (float64, error) {
	seq := NewSequence(g.N())
	if err := seq.Append(g); err != nil {
		return 0, err
	}
	return seq.ContractionFactor(0, iters, rng)
}

// StaticSequence returns T repetitions of the same graph, the paper's
// static setting where λ₂(W*) = λ₂(W)^T.
func StaticSequence(g *Regular, steps int) (*Sequence, error) {
	seq := NewSequence(g.N())
	for t := 0; t < steps; t++ {
		if err := seq.Append(g); err != nil {
			return nil, err
		}
	}
	return seq, nil
}

// DynamicSequence returns T steps where all nodes are randomly permuted
// at each iteration (the Section 4 dynamic model): W(t) = Pᵀ W P for a
// fresh uniform permutation each step.
func DynamicSequence(g *Regular, steps int, rng *tensor.RNG) (*Sequence, error) {
	seq := NewSequence(g.N())
	cur := g.Clone()
	for t := 0; t < steps; t++ {
		if err := cur.Permute(rng.Perm(cur.N())); err != nil {
			return nil, err
		}
		if err := seq.Append(cur); err != nil {
			return nil, err
		}
	}
	return seq, nil
}

// PeerSwapSequence returns T steps where each step applies swapsPerStep
// PeerSwap operations initiated by uniformly chosen nodes, the
// experimental-protocol counterpart of DynamicSequence.
func PeerSwapSequence(g *Regular, steps, swapsPerStep int, rng *tensor.RNG) (*Sequence, error) {
	seq := NewSequence(g.N())
	cur := g.Clone()
	for t := 0; t < steps; t++ {
		for s := 0; s < swapsPerStep; s++ {
			cur.PeerSwap(rng.Intn(cur.N()), rng)
		}
		if err := seq.Append(cur); err != nil {
			return nil, err
		}
	}
	return seq, nil
}
