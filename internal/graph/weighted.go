package graph

import (
	"errors"
	"fmt"
	"sort"

	"gossipmia/internal/tensor"
)

// ErrTopology is returned when an adjacency structure is unusable.
var ErrTopology = errors.New("graph: invalid topology")

// Weighted is a symmetric weighted mixing graph: each undirected edge
// (i,j) carries weight w_ij, and each node keeps self-weight
// 1 − Σ_j w_ij. It extends the paper's uniform 1/(k+1) k-regular mixing
// to arbitrary degree sequences while preserving the doubly-stochastic,
// symmetric structure that the Section 4 analysis requires.
type Weighted struct {
	n    int
	adj  [][]int
	wgt  [][]float64
	self []float64
}

var _ Mixer = (*Weighted)(nil)

// NewMetropolis builds Metropolis–Hastings mixing weights for an
// arbitrary undirected simple graph given as adjacency lists:
//
//	w_ij = 1 / (1 + max(deg(i), deg(j)))   for each edge (i,j),
//	w_ii = 1 − Σ_j w_ij.
//
// The result is symmetric and doubly stochastic for any connected or
// disconnected simple graph.
func NewMetropolis(adjacency [][]int) (*Weighted, error) {
	n := len(adjacency)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty adjacency", ErrTopology)
	}
	w := &Weighted{
		n:    n,
		adj:  make([][]int, n),
		wgt:  make([][]float64, n),
		self: make([]float64, n),
	}
	deg := make([]int, n)
	for i, nbrs := range adjacency {
		sorted := append([]int(nil), nbrs...)
		sort.Ints(sorted)
		for idx, j := range sorted {
			if j < 0 || j >= n {
				return nil, fmt.Errorf("%w: node %d has out-of-range neighbor %d", ErrTopology, i, j)
			}
			if j == i {
				return nil, fmt.Errorf("%w: self-loop at %d", ErrTopology, i)
			}
			if idx > 0 && sorted[idx-1] == j {
				return nil, fmt.Errorf("%w: parallel edge %d-%d", ErrTopology, i, j)
			}
		}
		w.adj[i] = sorted
		deg[i] = len(sorted)
	}
	// Symmetry check and weight assignment.
	for i, nbrs := range w.adj {
		w.wgt[i] = make([]float64, len(nbrs))
		var sum float64
		for idx, j := range nbrs {
			if !containsSorted(w.adj[j], i) {
				return nil, fmt.Errorf("%w: asymmetric edge %d-%d", ErrTopology, i, j)
			}
			d := deg[i]
			if deg[j] > d {
				d = deg[j]
			}
			weight := 1 / float64(1+d)
			w.wgt[i][idx] = weight
			sum += weight
		}
		w.self[i] = 1 - sum
		if w.self[i] < -1e-12 {
			return nil, fmt.Errorf("%w: negative self weight at %d", ErrTopology, i)
		}
	}
	return w, nil
}

func containsSorted(s []int, v int) bool {
	pos := sort.SearchInts(s, v)
	return pos < len(s) && s[pos] == v
}

// MetropolisFromRegular builds Metropolis weights for a k-regular graph;
// for regular graphs they coincide with the paper's uniform 1/(k+1)
// weights, which the tests assert.
func MetropolisFromRegular(g *Regular) (*Weighted, error) {
	adj := make([][]int, g.N())
	for i := range adj {
		adj[i] = g.Neighbors(i)
	}
	return NewMetropolis(adj)
}

// N implements Mixer.
func (w *Weighted) N() int { return w.n }

// Degree returns node i's number of neighbors.
func (w *Weighted) Degree(i int) int { return len(w.adj[i]) }

// CloneMixer implements Mixer.
func (w *Weighted) CloneMixer() Mixer {
	out := &Weighted{
		n:    w.n,
		adj:  make([][]int, w.n),
		wgt:  make([][]float64, w.n),
		self: append([]float64(nil), w.self...),
	}
	for i := range w.adj {
		out.adj[i] = append([]int(nil), w.adj[i]...)
		out.wgt[i] = append([]float64(nil), w.wgt[i]...)
	}
	return out
}

// ApplyMixing implements Mixer: out_i = w_ii·x_i + Σ_j w_ij·x_j.
func (w *Weighted) ApplyMixing(x, out tensor.Vector) (tensor.Vector, error) {
	if len(x) != w.n {
		return nil, fmt.Errorf("graph: weighted mixing input length %d for %d nodes: %w", len(x), w.n, tensor.ErrShape)
	}
	if out == nil {
		out = tensor.NewVector(w.n)
	} else if len(out) != w.n {
		return nil, fmt.Errorf("graph: weighted mixing output length %d for %d nodes: %w", len(out), w.n, tensor.ErrShape)
	}
	for i := 0; i < w.n; i++ {
		s := w.self[i] * x[i]
		for idx, j := range w.adj[i] {
			s += w.wgt[i][idx] * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Matrix returns the dense mixing matrix.
func (w *Weighted) Matrix() *tensor.Matrix {
	m := tensor.NewMatrix(w.n, w.n)
	for i := 0; i < w.n; i++ {
		m.Set(i, i, w.self[i])
		for idx, j := range w.adj[i] {
			m.Set(i, j, w.wgt[i][idx])
		}
	}
	return m
}
