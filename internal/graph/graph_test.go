package graph

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gossipmia/internal/tensor"
)

func mustRegular(t *testing.T, n, k int, seed int64) *Regular {
	t.Helper()
	g, err := NewRegular(n, k, tensor.NewRNG(seed))
	if err != nil {
		t.Fatalf("NewRegular(%d,%d): %v", n, k, err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	return g
}

func TestNewRegularParameters(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 10}, {5, 3}, {3, -1}} {
		if _, err := NewRegular(tc.n, tc.k, rng); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("n=%d k=%d: error = %v, want ErrInfeasible", tc.n, tc.k, err)
		}
	}
	for _, tc := range []struct{ n, k int }{{10, 2}, {10, 5}, {150, 25}, {8, 3}, {6, 5}} {
		g := mustRegular(t, tc.n, tc.k, 7)
		if g.N() != tc.n || g.K() != tc.k {
			t.Fatalf("shape: %d/%d", g.N(), g.K())
		}
	}
}

func TestNeighborsIsCopy(t *testing.T) {
	g := mustRegular(t, 10, 3, 1)
	nb := g.Neighbors(0)
	nb[0] = -99
	if g.Neighbors(0)[0] == -99 {
		t.Fatal("Neighbors exposes internal storage")
	}
}

// Property: PeerSwap preserves k-regularity and simplicity.
func TestPeerSwapPreservesRegularityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		g, err := NewRegular(20, 4, rng)
		if err != nil {
			return false
		}
		for s := 0; s < 50; s++ {
			g.PeerSwap(rng.Intn(g.N()), rng)
			if err := g.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapNodesRelabels(t *testing.T) {
	g := mustRegular(t, 12, 3, 5)
	before := g.Clone()
	i, j := 2, 7
	g.SwapNodes(i, j)
	if err := g.Validate(); err != nil {
		t.Fatalf("after swap: %v", err)
	}
	// The new view of i must be the relabeled old view of j.
	relabel := func(v int) int {
		switch v {
		case i:
			return j
		case j:
			return i
		}
		return v
	}
	wantI := map[int]bool{}
	for _, v := range before.Neighbors(j) {
		wantI[relabel(v)] = true
	}
	for _, v := range g.Neighbors(i) {
		if !wantI[v] {
			t.Fatalf("node %d view %v, want relabeled %v", i, g.Neighbors(i), before.Neighbors(j))
		}
	}
	// Swapping a node with itself is a no-op.
	snapshot := g.Clone()
	g.SwapNodes(3, 3)
	for v := 0; v < g.N(); v++ {
		a, b := g.Neighbors(v), snapshot.Neighbors(v)
		for idx := range a {
			if a[idx] != b[idx] {
				t.Fatal("self-swap changed the graph")
			}
		}
	}
}

func TestPermute(t *testing.T) {
	g := mustRegular(t, 8, 3, 9)
	rng := tensor.NewRNG(4)
	before := g.Clone()
	perm := rng.Perm(8)
	if err := g.Permute(perm); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("after permute: %v", err)
	}
	// Edge (a,b) before must be (perm[a],perm[b]) after.
	for a := 0; a < 8; a++ {
		for _, b := range before.Neighbors(a) {
			if !g.HasEdge(perm[a], perm[b]) {
				t.Fatalf("edge (%d,%d) lost under permutation", a, b)
			}
		}
	}
	if err := g.Permute([]int{0, 1}); err == nil {
		t.Fatal("wrong-length permutation accepted")
	}
}

func TestMixingMatrixProperties(t *testing.T) {
	g := mustRegular(t, 20, 4, 11)
	w := g.MixingMatrix()
	if !w.IsDoublyStochastic(1e-12) {
		t.Fatal("mixing matrix not doubly stochastic")
	}
	if !w.IsSymmetric(0) {
		t.Fatal("mixing matrix not symmetric")
	}
}

func TestApplyMixingMatchesMatrix(t *testing.T) {
	g := mustRegular(t, 15, 4, 3)
	rng := tensor.NewRNG(8)
	x := tensor.NewVector(15)
	rng.FillNormal(x, 0, 1)
	fast, err := g.ApplyMixing(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := g.MixingMatrix().MatVec(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApprox(fast, slow, 1e-12) {
		t.Fatal("sparse mixing disagrees with dense matrix")
	}
	if _, err := g.ApplyMixing(tensor.NewVector(3), nil); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
}

// Property: mixing preserves the average (consensus conservation).
func TestMixingPreservesMeanProperty(t *testing.T) {
	g := mustRegular(t, 12, 3, 21)
	f := func(raw [12]float64) bool {
		x := tensor.NewVector(12)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = math.Mod(v, 1e3)
		}
		out, err := g.ApplyMixing(x, nil)
		if err != nil {
			return false
		}
		return math.Abs(out.Mean()-x.Mean()) <= 1e-9*(1+math.Abs(x.Mean()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSecondEigenvalueCompleteGraph(t *testing.T) {
	// For the complete graph with self-loops W = (1/n)J, every non-trivial
	// eigenvalue is 0.
	g := mustRegular(t, 8, 7, 2)
	rng := tensor.NewRNG(5)
	l2, err := SecondEigenvalue(g, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l2 > 1e-10 {
		t.Fatalf("complete-graph lambda2 = %v, want ~0", l2)
	}
}

func TestSecondEigenvalueRingExact(t *testing.T) {
	// A 2-regular ring on n nodes has W eigenvalues (1+2cos(2πm/n))/3;
	// the largest non-trivial is (1+2cos(2π/n))/3.
	n := 10
	g := mustRegularRing(t, n)
	rng := tensor.NewRNG(5)
	got, err := SecondEigenvalue(g, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + 2*math.Cos(2*math.Pi/float64(n))) / 3
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("ring lambda2 = %v, want %v", got, want)
	}
}

// mustRegularRing builds the canonical ring (circulant without edge
// switching) by constructing and never randomizing: we rebuild it
// directly here to get an exact known spectrum.
func mustRegularRing(t *testing.T, n int) *Regular {
	t.Helper()
	g := &Regular{n: n, k: 2, adj: make([][]int, n)}
	for i := 0; i < n; i++ {
		a, b := (i+1)%n, (i-1+n)%n
		if a > b {
			a, b = b, a
		}
		g.adj[i] = []int{a, b}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStaticSequencePower(t *testing.T) {
	// Static: lambda2(W^T) == lambda2(W)^T.
	g := mustRegular(t, 16, 3, 13)
	rng := tensor.NewRNG(6)
	single, err := SecondEigenvalue(g, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := StaticSequence(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := seq.ContractionFactor(0, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(single, 5)
	if math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("static product contraction = %v, want %v", got, want)
	}
}

func TestDynamicMixesFasterThanStatic(t *testing.T) {
	// The central claim of Figure 10: for sparse graphs, dynamic
	// sequences contract much faster than static ones.
	n, k, steps := 40, 2, 20
	g := mustRegular(t, n, k, 17)
	rng := tensor.NewRNG(23)

	static, err := StaticSequence(g, steps)
	if err != nil {
		t.Fatal(err)
	}
	sStat, err := static.ContractionFactor(0, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := DynamicSequence(g, steps, rng)
	if err != nil {
		t.Fatal(err)
	}
	sDyn, err := dynamic.ContractionFactor(0, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sDyn >= sStat {
		t.Fatalf("dynamic contraction %v should beat static %v", sDyn, sStat)
	}
}

func TestPeerSwapSequence(t *testing.T) {
	g := mustRegular(t, 20, 2, 19)
	rng := tensor.NewRNG(29)
	seq, err := PeerSwapSequence(g, 10, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 10 {
		t.Fatalf("sequence length = %d", seq.Len())
	}
	c, err := seq.ContractionFactor(0, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0 || c > 1+1e-9 {
		t.Fatalf("contraction factor %v out of [0,1]", c)
	}
}

func TestSequenceErrors(t *testing.T) {
	seq := NewSequence(10)
	if _, err := seq.ContractionFactor(0, 10, tensor.NewRNG(1)); !errors.Is(err, ErrEmptySequence) {
		t.Fatalf("empty sequence error = %v", err)
	}
	g := mustRegular(t, 8, 3, 1)
	if err := seq.Append(g); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("size mismatch error = %v", err)
	}
}

func TestSequenceApplyUpTo(t *testing.T) {
	g := mustRegular(t, 10, 3, 31)
	rng := tensor.NewRNG(3)
	seq, err := StaticSequence(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewVector(10)
	rng.FillNormal(x, 0, 1)
	one, err := seq.Apply(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	manual, err := g.ApplyMixing(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApprox(one, manual, 1e-12) {
		t.Fatal("Apply(upTo=1) != single mixing step")
	}
	// Applying the symmetric single step transposed must agree.
	oneT, err := seq.ApplyTranspose(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApprox(one, oneT, 1e-12) {
		t.Fatal("transpose of symmetric step differs")
	}
}
