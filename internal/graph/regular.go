// Package graph implements the communication-topology substrate: random
// k-regular graph generation, the PeerSwap dynamic peer-sampling method,
// gossip mixing matrices, and the spectral (λ₂ / contraction factor)
// analysis of Section 4 of the paper.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"gossipmia/internal/tensor"
)

// ErrInfeasible is returned when no k-regular graph exists for the
// requested parameters (need 0 < k < n and n·k even).
var ErrInfeasible = errors.New("graph: infeasible k-regular parameters")

// Regular is an undirected k-regular graph on n nodes. Adjacency lists
// are kept sorted for deterministic iteration.
type Regular struct {
	n, k int
	adj  [][]int
}

// NewRegular generates a uniform-ish random k-regular graph: it starts
// from a circulant k-regular graph and applies many random double-edge
// switches, the standard MCMC that mixes toward the uniform distribution
// over k-regular graphs while preserving simplicity (no self-loops or
// parallel edges).
func NewRegular(n, k int, rng *tensor.RNG) (*Regular, error) {
	if k <= 0 || k >= n || (n*k)%2 != 0 {
		return nil, fmt.Errorf("n=%d k=%d: %w", n, k, ErrInfeasible)
	}
	g := &Regular{n: n, k: k, adj: make([][]int, n)}
	for i := range g.adj {
		g.adj[i] = make([]int, 0, k)
	}
	// Circulant seed: connect to offsets 1..k/2 on both sides; when k is
	// odd (n must then be even) add the antipodal edge i <-> i+n/2.
	half := k / 2
	for i := 0; i < n; i++ {
		for d := 1; d <= half; d++ {
			g.adj[i] = append(g.adj[i], (i+d)%n, (i-d+n)%n)
		}
		if k%2 == 1 {
			g.adj[i] = append(g.adj[i], (i+n/2)%n)
		}
	}
	for i := range g.adj {
		sort.Ints(g.adj[i])
	}
	// Randomize with double-edge switches. 10·n·k attempts is far past
	// the empirical mixing time for these sizes.
	attempts := 10 * n * k
	for t := 0; t < attempts; t++ {
		g.trySwitch(rng)
	}
	return g, nil
}

// trySwitch picks two random edges (a,b), (c,d) and rewires them to
// (a,c),(b,d) or (a,d),(b,c) when that keeps the graph simple.
func (g *Regular) trySwitch(rng *tensor.RNG) {
	a := rng.Intn(g.n)
	b := g.adj[a][rng.Intn(g.k)]
	c := rng.Intn(g.n)
	d := g.adj[c][rng.Intn(g.k)]
	if a == c || a == d || b == c || b == d {
		return
	}
	// Choose orientation uniformly.
	if rng.Intn(2) == 0 {
		c, d = d, c
	}
	// New edges: (a,c) and (b,d).
	if g.HasEdge(a, c) || g.HasEdge(b, d) {
		return
	}
	g.removeEdge(a, b)
	g.removeEdge(c, d)
	g.addEdge(a, c)
	g.addEdge(b, d)
}

// N returns the number of nodes.
func (g *Regular) N() int { return g.n }

// K returns the regular degree (view size).
func (g *Regular) K() int { return g.k }

// Neighbors returns a copy of node i's view.
func (g *Regular) Neighbors(i int) []int {
	return append([]int(nil), g.adj[i]...)
}

// HasEdge reports whether i and j are adjacent.
func (g *Regular) HasEdge(i, j int) bool {
	pos := sort.SearchInts(g.adj[i], j)
	return pos < len(g.adj[i]) && g.adj[i][pos] == j
}

func (g *Regular) removeEdge(i, j int) {
	g.adj[i] = removeSorted(g.adj[i], j)
	g.adj[j] = removeSorted(g.adj[j], i)
}

func (g *Regular) addEdge(i, j int) {
	g.adj[i] = insertSorted(g.adj[i], j)
	g.adj[j] = insertSorted(g.adj[j], i)
}

func removeSorted(s []int, v int) []int {
	pos := sort.SearchInts(s, v)
	if pos < len(s) && s[pos] == v {
		return append(s[:pos], s[pos+1:]...)
	}
	return s
}

func insertSorted(s []int, v int) []int {
	pos := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}

// Clone returns a deep copy of the graph.
func (g *Regular) Clone() *Regular {
	out := &Regular{n: g.n, k: g.k, adj: make([][]int, g.n)}
	for i, a := range g.adj {
		out.adj[i] = append([]int(nil), a...)
	}
	return out
}

// Validate checks that the graph is simple, undirected, and k-regular.
func (g *Regular) Validate() error {
	for i, a := range g.adj {
		if len(a) != g.k {
			return fmt.Errorf("graph: node %d has degree %d, want %d", i, len(a), g.k)
		}
		for idx, j := range a {
			if j == i {
				return fmt.Errorf("graph: self-loop at %d", i)
			}
			if j < 0 || j >= g.n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", i, j)
			}
			if idx > 0 && a[idx-1] == j {
				return fmt.Errorf("graph: parallel edge %d-%d", i, j)
			}
			if !g.HasEdge(j, i) {
				return fmt.Errorf("graph: asymmetric edge %d-%d", i, j)
			}
		}
	}
	return nil
}

// PeerSwap performs the PeerSwap view exchange of Guerraoui et al. as
// specified in Section 2.4: node i exchanges its graph position with a
// uniformly chosen neighbor j. The operation relabels i and j, so the
// graph stays k-regular and simple.
func (g *Regular) PeerSwap(i int, rng *tensor.RNG) {
	j := g.adj[i][rng.Intn(g.k)]
	g.SwapNodes(i, j)
}

// SwapNodes exchanges the positions of nodes i and j in the graph.
func (g *Regular) SwapNodes(i, j int) {
	if i == j {
		return
	}
	// Neighbor sets before the swap.
	ni := append([]int(nil), g.adj[i]...)
	nj := append([]int(nil), g.adj[j]...)

	relabel := func(v int) int {
		switch v {
		case i:
			return j
		case j:
			return i
		default:
			return v
		}
	}
	// New views for i and j: i takes j's view and vice versa; when i and
	// j are adjacent they remain adjacent (the paper's ∪{j} term).
	newI := make([]int, 0, g.k)
	for _, v := range nj {
		newI = append(newI, relabel(v))
	}
	newJ := make([]int, 0, g.k)
	for _, v := range ni {
		newJ = append(newJ, relabel(v))
	}
	sort.Ints(newI)
	sort.Ints(newJ)
	g.adj[i] = newI
	g.adj[j] = newJ

	// Update third-party views.
	for _, v := range ni {
		if v == j {
			continue
		}
		g.adj[v] = removeSorted(g.adj[v], i)
		g.adj[v] = insertSorted(g.adj[v], j)
	}
	for _, v := range nj {
		if v == i {
			continue
		}
		g.adj[v] = removeSorted(g.adj[v], j)
		g.adj[v] = insertSorted(g.adj[v], i)
	}
}

// Permute relabels all nodes according to perm (node i moves to
// perm[i]), used by the Section 4 dynamic-mixing model.
func (g *Regular) Permute(perm []int) error {
	if len(perm) != g.n {
		return fmt.Errorf("graph: permutation of length %d for %d nodes", len(perm), g.n)
	}
	adj := make([][]int, g.n)
	for i, a := range g.adj {
		na := make([]int, len(a))
		for idx, j := range a {
			na[idx] = perm[j]
		}
		sort.Ints(na)
		adj[perm[i]] = na
	}
	g.adj = adj
	return nil
}
