// Package sink streams experiment results as they are produced. A Sink
// consumes one arm's RoundRecords in round order, fed through the
// observer hook on core.Study — so an arbitrarily long run can write
// its series to disk (JSONL or CSV) while the study itself retains O(1)
// round records instead of O(rounds).
//
// Each Sink instance serves a single arm's stream: concurrent arms get
// independent sinks (and, in the spec engine, independent files), which
// keeps every output byte-identical for any worker count.
package sink

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"gossipmia/internal/metrics"
)

// Sink consumes one arm's round records in round order. Implementations
// need not be safe for concurrent use; the engine gives every arm its
// own sink.
type Sink interface {
	// Record consumes the next evaluated round.
	Record(metrics.RoundRecord) error
	// Close flushes and releases the sink. It must be called exactly
	// once, after the last Record.
	Close() error
}

// Memory retains every record in order — the in-memory sink used to
// rebuild a metrics.Series from a stream (and by tests).
type Memory struct {
	Records []metrics.RoundRecord
}

// Record implements Sink.
func (m *Memory) Record(r metrics.RoundRecord) error {
	m.Records = append(m.Records, r)
	return nil
}

// Close implements Sink.
func (m *Memory) Close() error { return nil }

// Series converts the retained records into a labeled series.
func (m *Memory) Series(label string) *metrics.Series {
	return &metrics.Series{Label: label, Records: m.Records}
}

// jsonlEvent is one JSONL line: the arm label plus the record fields,
// flattened so the stream is self-describing and greppable.
type jsonlEvent struct {
	Arm string `json:"arm"`
	metrics.RoundRecord
}

// JSONL writes one self-describing JSON object per evaluated round.
type JSONL struct {
	arm string
	w   *bufio.Writer
	c   io.Closer
}

// NewJSONL builds a JSONL sink over w, tagging every event with the arm
// label. If w is also an io.Closer, Close closes it.
func NewJSONL(w io.Writer, arm string) *JSONL {
	j := &JSONL{arm: arm, w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Record implements Sink.
func (j *JSONL) Record(r metrics.RoundRecord) error {
	raw, err := json.Marshal(jsonlEvent{Arm: j.arm, RoundRecord: r})
	if err != nil {
		return fmt.Errorf("sink: jsonl: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := j.w.Write(raw); err != nil {
		return fmt.Errorf("sink: jsonl: %w", err)
	}
	return nil
}

// Close implements Sink.
func (j *JSONL) Close() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("sink: jsonl: %w", err)
	}
	if j.c != nil {
		if err := j.c.Close(); err != nil {
			return fmt.Errorf("sink: jsonl: %w", err)
		}
	}
	return nil
}

// Quote escapes a free-form CSV field per RFC 4180: a field containing
// a comma, double quote, CR, or LF is wrapped in double quotes with
// embedded quotes doubled; any other field passes through unchanged.
// Arm labels come from user spec files (and sweep expansion composes
// them from arbitrary label/value text), so every CSV emitter that
// writes a label must route it through here.
func Quote(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// CSV writes one row per evaluated round, leading with the RFC
// 4180-quoted arm label so the stream is self-describing like the
// JSONL sink's. The header precedes the first record.
type CSV struct {
	arm    string
	w      *bufio.Writer
	c      io.Closer
	header bool
}

// NewCSV builds a CSV sink over w, tagging every row with the arm
// label. If w is also an io.Closer, Close closes it.
func NewCSV(w io.Writer, arm string) *CSV {
	c := &CSV{arm: arm, w: bufio.NewWriter(w)}
	if cl, ok := w.(io.Closer); ok {
		c.c = cl
	}
	return c
}

// Record implements Sink.
func (c *CSV) Record(r metrics.RoundRecord) error {
	if !c.header {
		if _, err := c.w.WriteString("arm,round,test_acc,mia_acc,tpr_at_1fpr,gen_error\n"); err != nil {
			return fmt.Errorf("sink: csv: %w", err)
		}
		c.header = true
	}
	if _, err := fmt.Fprintf(c.w, "%s,%d,%.6f,%.6f,%.6f,%.6f\n",
		Quote(c.arm), r.Round, r.TestAcc, r.MIAAcc, r.TPRAt1FPR, r.GenError); err != nil {
		return fmt.Errorf("sink: csv: %w", err)
	}
	return nil
}

// Close implements Sink.
func (c *CSV) Close() error {
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("sink: csv: %w", err)
	}
	if c.c != nil {
		if err := c.c.Close(); err != nil {
			return fmt.Errorf("sink: csv: %w", err)
		}
	}
	return nil
}

// Multi fans every record out to all sinks in order.
type Multi []Sink

// Record implements Sink.
func (m Multi) Record(r metrics.RoundRecord) error {
	for _, s := range m {
		if err := s.Record(r); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Sink: every sink is closed even if one fails; the
// first error wins.
func (m Multi) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NewFile opens (creating or truncating) path and wraps it in a sink of
// the given format: "jsonl" or "csv".
func NewFile(path, format, arm string) (Sink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sink: %w", err)
	}
	switch format {
	case "jsonl":
		return NewJSONL(f, arm), nil
	case "csv":
		return NewCSV(f, arm), nil
	default:
		f.Close()
		return nil, fmt.Errorf("sink: unknown event format %q (want jsonl or csv)", format)
	}
}
