package sink

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gossipmia/internal/metrics"
)

func sampleRecords() []metrics.RoundRecord {
	return []metrics.RoundRecord{
		{Round: 0, TestAcc: 0.5, MIAAcc: 0.51, TPRAt1FPR: 0.01, GenError: 0.02},
		{Round: 3, TestAcc: 0.625, MIAAcc: 0.6, TPRAt1FPR: 0.05, GenError: 0.125},
	}
}

func feed(t *testing.T, s Sink) {
	t.Helper()
	for _, r := range sampleRecords() {
		if err := s.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemorySinkBuildsSeries(t *testing.T) {
	m := &Memory{}
	feed(t, m)
	series := m.Series("arm-x")
	if series.Label != "arm-x" || len(series.Records) != 2 {
		t.Fatalf("series = %+v", series)
	}
	if series.Records[1] != sampleRecords()[1] {
		t.Fatalf("record mangled: %+v", series.Records[1])
	}
}

func TestJSONLSinkStream(t *testing.T) {
	var b strings.Builder
	feed(t, NewJSONL(&b, "arm-y"))
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	var ev struct {
		Arm string `json:"arm"`
		metrics.RoundRecord
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Arm != "arm-y" || ev.RoundRecord != sampleRecords()[1] {
		t.Fatalf("event = %+v", ev)
	}
}

func TestCSVSinkRowsCarryArmColumn(t *testing.T) {
	var b strings.Builder
	feed(t, NewCSV(&b, "arm-c"))
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	if lines[0] != "arm,round,test_acc,mia_acc,tpr_at_1fpr,gen_error" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "arm-c,0,") || !strings.HasPrefix(lines[2], "arm-c,3,") {
		t.Fatalf("rows not tagged with the arm label:\n%s", b.String())
	}
}

// TestCSVSinkQuotesHostileLabels is the RFC 4180 regression test: arm
// labels containing commas, quotes, or newlines must not corrupt the
// row structure of the stream.
func TestCSVSinkQuotesHostileLabels(t *testing.T) {
	label := "cifar10, \"hard\"\narm"
	var b strings.Builder
	feed(t, NewCSV(&b, label))
	want := `"cifar10, ""hard""` + "\narm\",0,"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("hostile label not quoted:\n%s", b.String())
	}
}

func TestQuote(t *testing.T) {
	cases := map[string]string{
		"plain":       "plain",
		"with spaces": "with spaces",
		"a,b":         `"a,b"`,
		`say "hi"`:    `"say ""hi"""`,
		"line\nbreak": "\"line\nbreak\"",
		"cr\rhere":    "\"cr\rhere\"",
	}
	for in, want := range cases {
		if got := Quote(in); got != want {
			t.Fatalf("Quote(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := &Memory{}, &Memory{}
	feed(t, Multi{a, b})
	if len(a.Records) != 2 || len(b.Records) != 2 {
		t.Fatalf("fan-out lost records: %d, %d", len(a.Records), len(b.Records))
	}
}

func TestFileSinkWritesAndCloses(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"jsonl", "csv"} {
		path := filepath.Join(dir, "events."+format)
		s, err := NewFile(path, format, "arm-z")
		if err != nil {
			t.Fatal(err)
		}
		feed(t, s)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(strings.Split(strings.TrimSpace(string(raw)), "\n")) < 2 {
			t.Fatalf("%s: too little output:\n%s", format, raw)
		}
	}
	if _, err := NewFile(filepath.Join(dir, "x"), "parquet", "a"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := NewFile(filepath.Join(dir, "missing", "x"), "jsonl", "a"); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
