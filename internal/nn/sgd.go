package nn

import (
	"fmt"

	"gossipmia/internal/tensor"
)

// SGDConfig holds the hyperparameters from the paper's Table 2: learning
// rate, classical momentum, and decoupled L2 weight decay. LRDecay, when
// in (0,1), multiplies the learning rate after every epoch — the
// "dynamic learning rates" mitigation the paper's Section 5 recommends
// against early overfitting.
type SGDConfig struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	LRDecay     float64
}

// SGD is a stateful SGD optimizer with momentum and weight decay over a
// flat parameter vector. The velocity buffer is lazily sized on first
// Step, so an SGD value can be freely copied into each node before the
// model dimensionality is known.
type SGD struct {
	cfg      SGDConfig
	velocity tensor.Vector
}

// NewSGD returns an optimizer with the given configuration.
func NewSGD(cfg SGDConfig) *SGD {
	return &SGD{cfg: cfg}
}

// Config returns the optimizer hyperparameters.
func (s *SGD) Config() SGDConfig { return s.cfg }

// Reset clears the momentum buffer (used when a node replaces its model
// with an aggregated one and optimizer state no longer matches).
func (s *SGD) Reset() {
	if s.velocity != nil {
		s.velocity.Zero()
	}
}

// LR returns the current learning rate.
func (s *SGD) LR() float64 { return s.cfg.LR }

// DecayLR applies one LRDecay step when configured; a zero or >=1 decay
// leaves the rate unchanged.
func (s *SGD) DecayLR() {
	if s.cfg.LRDecay > 0 && s.cfg.LRDecay < 1 {
		s.cfg.LR *= s.cfg.LRDecay
	}
}

// Step applies one update: v <- momentum*v + (grad + wd*params);
// params <- params - lr*v. With zero momentum this reduces to plain SGD
// with L2 regularization.
func (s *SGD) Step(params, grad tensor.Vector) error {
	if len(params) != len(grad) {
		return fmt.Errorf("sgd step params %d, grad %d: %w", len(params), len(grad), tensor.ErrShape)
	}
	if s.velocity == nil {
		s.velocity = tensor.NewVector(len(params))
	} else if len(s.velocity) != len(params) {
		return fmt.Errorf("sgd velocity %d, params %d: %w", len(s.velocity), len(params), tensor.ErrShape)
	}
	mom, wd, lr := s.cfg.Momentum, s.cfg.WeightDecay, s.cfg.LR
	for i := range params {
		g := grad[i] + wd*params[i]
		v := mom*s.velocity[i] + g
		s.velocity[i] = v
		params[i] -= lr * v
	}
	return nil
}

// Trainer couples a model, optimizer, and minibatch settings into the
// "local update" operation of Eq. (2): a configurable number of local
// epochs of minibatch SGD over the node's local dataset.
type Trainer struct {
	Model     *MLP
	Opt       *SGD
	BatchSize int
	Epochs    int

	// Scratch reused across RunEpochs calls so a long-lived trainer
	// performs no steady-state allocation on the local-update hot path.
	grad    tensor.Vector
	order   []int
	batchXs []tensor.Vector
	batchYs []int
}

// NewTrainer returns a trainer over model with the given optimizer. A
// non-positive batch size means full-batch; a non-positive epoch count
// defaults to 1.
func NewTrainer(model *MLP, opt *SGD, batchSize, epochs int) *Trainer {
	if epochs <= 0 {
		epochs = 1
	}
	return &Trainer{
		Model:     model,
		Opt:       opt,
		BatchSize: batchSize,
		Epochs:    epochs,
		grad:      tensor.NewVector(model.NumParams()),
	}
}

// RunEpochs performs Epochs passes of shuffled minibatch SGD over
// (xs, ys) and returns the mean training loss of the final epoch. Each
// minibatch runs through the model's batched gradient kernel
// (MLP.BatchGrad), which is bit-identical to per-example accumulation.
func (t *Trainer) RunEpochs(xs []tensor.Vector, ys []int, rng *tensor.RNG) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, fmt.Errorf("train set of %d inputs, %d labels: %w", len(xs), len(ys), tensor.ErrShape)
	}
	if len(t.grad) != t.Model.NumParams() {
		t.grad = tensor.NewVector(t.Model.NumParams())
	}
	n := len(xs)
	bs := t.BatchSize
	if bs <= 0 || bs > n {
		bs = n
	}
	if cap(t.order) < n {
		t.order = make([]int, n)
	}
	order := t.order[:n]
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for e := 0; e < t.Epochs; e++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		var batches int
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			t.batchXs = t.batchXs[:0]
			t.batchYs = t.batchYs[:0]
			for _, idx := range order[start:end] {
				t.batchXs = append(t.batchXs, xs[idx])
				t.batchYs = append(t.batchYs, ys[idx])
			}
			batchLoss, err := t.Model.BatchGrad(t.batchXs, t.batchYs, t.grad)
			if err != nil {
				return 0, err
			}
			if err := t.Opt.Step(t.Model.Params(), t.grad); err != nil {
				return 0, err
			}
			epochLoss += batchLoss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		t.Opt.DecayLR()
	}
	return lastLoss, nil
}
