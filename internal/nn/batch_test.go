package nn

import (
	"testing"

	"gossipmia/internal/tensor"
)

// TestBatchGradBitIdenticalToExampleLoop pins the contract the parallel
// engine and the determinism guarantees rest on: the blocked
// matrix-matrix BatchGrad accumulates every gradient element in the same
// per-example order as looping ExampleGrad, so the two paths agree to
// the last bit for any batch size (including sizes that straddle the
// 4-wide kernel blocking).
func TestBatchGradBitIdenticalToExampleLoop(t *testing.T) {
	rng := tensor.NewRNG(7)
	model, err := NewMLP([]int{13, 11, 6, 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16} {
		xs := make([]tensor.Vector, batch)
		ys := make([]int, batch)
		for i := range xs {
			xs[i] = tensor.NewVector(13)
			rng.FillNormal(xs[i], 0, 1)
			ys[i] = rng.Intn(4)
		}
		batchGrad := tensor.NewVector(model.NumParams())
		batchLoss, err := model.BatchGrad(xs, ys, batchGrad)
		if err != nil {
			t.Fatal(err)
		}

		loopGrad := tensor.NewVector(model.NumParams())
		var loopLoss float64
		for i := range xs {
			l, err := model.ExampleGrad(xs[i], ys[i], loopGrad)
			if err != nil {
				t.Fatal(err)
			}
			loopLoss += l
		}
		inv := 1 / float64(batch)
		loopGrad.Scale(inv)
		loopLoss *= inv

		if !tensor.EqualApprox(batchGrad, loopGrad, 0) {
			t.Fatalf("batch=%d: gradients differ from example loop", batch)
		}
		if batchLoss != loopLoss {
			t.Fatalf("batch=%d: loss %v != %v", batch, batchLoss, loopLoss)
		}
	}
}

// TestProbsIntoMatchesProbs checks the allocation-free scoring kernel.
func TestProbsIntoMatchesProbs(t *testing.T) {
	rng := tensor.NewRNG(9)
	model, err := NewMLP([]int{8, 6, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewVector(8)
	rng.FillNormal(x, 0, 1)
	want, err := model.Probs(x)
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.NewVector(3)
	if err := model.ProbsInto(x, got); err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApprox(got, want, 0) {
		t.Fatal("ProbsInto differs from Probs")
	}
	if err := model.ProbsInto(x, tensor.NewVector(2)); err == nil {
		t.Fatal("expected shape error for wrong out length")
	}
}
