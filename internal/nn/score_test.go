package nn

import (
	"math"
	"testing"

	"gossipmia/internal/tensor"
)

// TestScoreBatchMatchesPerExampleForward pins the bit-identity contract
// of the batched scoring path: for every example, the logits handed to
// the callback must equal the per-example forward pass exactly — same
// bits, not just same values — for any worker setting and for batch
// sizes around the chunk boundary.
func TestScoreBatchMatchesPerExampleForward(t *testing.T) {
	rng := tensor.NewRNG(5)
	model, err := NewMLP([]int{19, 23, 7}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 5, scoreChunk - 1, scoreChunk, scoreChunk + 1, 3 * scoreChunk} {
		xs := make([]tensor.Vector, n)
		for i := range xs {
			xs[i] = tensor.NewVector(19)
			rng.FillNormal(xs[i], 0, 1)
		}
		want := make([]tensor.Vector, n)
		for i, x := range xs {
			lg, err := model.Logits(x, nil)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = lg
		}
		for _, workers := range []int{0, 4} {
			model.SetWorkers(workers)
			seen := 0
			err := model.ScoreBatch(xs, func(i int, logits tensor.Vector) {
				if i != seen {
					t.Fatalf("callback order: got example %d, want %d", i, seen)
				}
				seen++
				for j := range logits {
					if math.Float64bits(logits[j]) != math.Float64bits(want[i][j]) {
						t.Fatalf("n=%d workers=%d example %d logit %d = %x, per-example %x",
							n, workers, i, j, logits[j], want[i][j])
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if seen != n {
				t.Fatalf("scored %d of %d examples", seen, n)
			}
		}
	}
}

// TestScoreBatchRejectsBadInput mirrors the forward pass's shape check.
func TestScoreBatchRejectsBadInput(t *testing.T) {
	rng := tensor.NewRNG(5)
	model, err := NewMLP([]int{4, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	xs := []tensor.Vector{tensor.NewVector(4), tensor.NewVector(5)}
	if err := model.ScoreBatch(xs, func(int, tensor.Vector) {}); err == nil {
		t.Fatal("expected shape error for mismatched input dim")
	}
}

// TestCloneCarriesWorkers pins the propagation that lets the study set
// one knob on the initial model and have every per-node clone inherit
// it.
func TestCloneCarriesWorkers(t *testing.T) {
	rng := tensor.NewRNG(5)
	model, err := NewMLP([]int{4, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	model.SetWorkers(6)
	if got := model.Clone().workers; got != 6 {
		t.Fatalf("clone workers = %d, want 6", got)
	}
	model.SetWorkers(-3)
	if model.workers != 0 {
		t.Fatalf("negative workers should clamp to 0, got %d", model.workers)
	}
}
