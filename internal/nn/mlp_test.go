package nn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gossipmia/internal/tensor"
)

func mustMLP(t *testing.T, sizes []int, seed int64) *MLP {
	t.Helper()
	m, err := NewMLP(sizes, tensor.NewRNG(seed))
	if err != nil {
		t.Fatalf("NewMLP(%v): %v", sizes, err)
	}
	return m
}

func TestNewMLPValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := NewMLP([]int{4}, rng); !errors.Is(err, ErrArchitecture) {
		t.Fatalf("single layer error = %v", err)
	}
	if _, err := NewMLP([]int{4, 0, 2}, rng); !errors.Is(err, ErrArchitecture) {
		t.Fatalf("zero width error = %v", err)
	}
	m := mustMLP(t, []int{3, 5, 2}, 1)
	wantParams := 3*5 + 5 + 5*2 + 2
	if m.NumParams() != wantParams {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), wantParams)
	}
	if m.Classes() != 2 || m.InputDim() != 3 {
		t.Fatalf("classes=%d input=%d", m.Classes(), m.InputDim())
	}
}

func TestSoftmaxProperties(t *testing.T) {
	logits := tensor.Vector{1, 2, 3}
	out := tensor.NewVector(3)
	Softmax(logits, out)
	if math.Abs(out.Sum()-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", out.Sum())
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Fatalf("softmax not monotone: %v", out)
	}
	// Shift invariance.
	shifted := tensor.Vector{1001, 1002, 1003}
	out2 := tensor.NewVector(3)
	Softmax(shifted, out2)
	if !tensor.EqualApprox(out, out2, 1e-12) {
		t.Fatalf("softmax not shift invariant: %v vs %v", out, out2)
	}
}

func TestProbsSumToOneProperty(t *testing.T) {
	m := mustMLP(t, []int{6, 8, 4}, 11)
	f := func(raw [6]float64) bool {
		x := tensor.NewVector(6)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = math.Mod(v, 10)
		}
		p, err := m.Probs(x)
		if err != nil {
			return false
		}
		if math.Abs(p.Sum()-1) > 1e-9 {
			return false
		}
		for _, v := range p {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestGradientCheck compares the analytic gradient against central finite
// differences on every parameter of a small network.
func TestGradientCheck(t *testing.T) {
	m := mustMLP(t, []int{4, 6, 3}, 42)
	rng := tensor.NewRNG(7)
	x := tensor.NewVector(4)
	rng.FillNormal(x, 0, 1)
	y := 2

	grad := tensor.NewVector(m.NumParams())
	if _, err := m.ExampleGrad(x, y, grad); err != nil {
		t.Fatalf("ExampleGrad: %v", err)
	}

	const eps = 1e-5
	params := m.Params()
	for i := 0; i < m.NumParams(); i++ {
		orig := params[i]
		params[i] = orig + eps
		lp, err := m.Loss(x, y)
		if err != nil {
			t.Fatalf("Loss(+eps): %v", err)
		}
		params[i] = orig - eps
		lm, err := m.Loss(x, y)
		if err != nil {
			t.Fatalf("Loss(-eps): %v", err)
		}
		params[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("param %d: analytic %v vs numeric %v", i, grad[i], numeric)
		}
	}
}

func TestBatchGradIsMeanOfExampleGrads(t *testing.T) {
	m := mustMLP(t, []int{3, 5, 2}, 5)
	rng := tensor.NewRNG(9)
	xs := make([]tensor.Vector, 4)
	ys := []int{0, 1, 0, 1}
	for i := range xs {
		xs[i] = tensor.NewVector(3)
		rng.FillNormal(xs[i], 0, 1)
	}
	batch := tensor.NewVector(m.NumParams())
	if _, err := m.BatchGrad(xs, ys, batch); err != nil {
		t.Fatalf("BatchGrad: %v", err)
	}
	manual := tensor.NewVector(m.NumParams())
	for i := range xs {
		if _, err := m.ExampleGrad(xs[i], ys[i], manual); err != nil {
			t.Fatalf("ExampleGrad: %v", err)
		}
	}
	manual.Scale(1 / float64(len(xs)))
	if !tensor.EqualApprox(batch, manual, 1e-12) {
		t.Fatal("batch gradient != mean of example gradients")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := mustMLP(t, []int{2, 3, 2}, 1)
	c := m.Clone()
	c.Params()[0] += 10
	if m.Params()[0] == c.Params()[0] {
		t.Fatal("clone shares parameter storage")
	}
	// Clone preserves outputs before divergence.
	m2 := m.Clone()
	x := tensor.Vector{0.3, -0.4}
	p1, err := m.Probs(x)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m2.Probs(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.EqualApprox(p1, p2, 0) {
		t.Fatal("clone output differs")
	}
}

func TestSetParamsAndErrors(t *testing.T) {
	m := mustMLP(t, []int{2, 2}, 1)
	if err := m.SetParams(tensor.NewVector(3)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("SetParams wrong size error = %v", err)
	}
	v := tensor.NewVector(m.NumParams())
	v.Fill(0.5)
	if err := m.SetParams(v); err != nil {
		t.Fatal(err)
	}
	v[0] = 99 // SetParams must copy
	if m.Params()[0] == 99 {
		t.Fatal("SetParams did not copy")
	}
	if _, err := m.Loss(tensor.Vector{1, 2}, 5); !errors.Is(err, ErrArchitecture) {
		t.Fatalf("label range error = %v", err)
	}
	if _, err := m.Probs(tensor.Vector{1}); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("input dim error = %v", err)
	}
	if _, err := m.ExampleGrad(tensor.Vector{1, 2}, 0, tensor.NewVector(1)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("grad size error = %v", err)
	}
}

func TestTrainingReducesLossOnToyProblem(t *testing.T) {
	// Two well-separated Gaussian blobs; an MLP should fit them quickly.
	rng := tensor.NewRNG(123)
	var xs []tensor.Vector
	var ys []int
	for i := 0; i < 60; i++ {
		x := tensor.NewVector(2)
		label := i % 2
		mu := 2.0
		if label == 1 {
			mu = -2.0
		}
		x[0] = rng.Normal(mu, 0.5)
		x[1] = rng.Normal(-mu, 0.5)
		xs = append(xs, x)
		ys = append(ys, label)
	}
	m := mustMLP(t, []int{2, 8, 2}, 77)
	tr := NewTrainer(m, NewSGD(SGDConfig{LR: 0.1}), 10, 1)

	lossBefore := meanLoss(t, m, xs, ys)
	for e := 0; e < 20; e++ {
		if _, err := tr.RunEpochs(xs, ys, rng); err != nil {
			t.Fatalf("RunEpochs: %v", err)
		}
	}
	lossAfter := meanLoss(t, m, xs, ys)
	if lossAfter >= lossBefore {
		t.Fatalf("training did not reduce loss: %v -> %v", lossBefore, lossAfter)
	}
	// Should reach high accuracy on this separable problem.
	correct := 0
	for i, x := range xs {
		pred, err := m.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if pred == ys[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Fatalf("toy accuracy = %v, want >= 0.95", acc)
	}
}

func meanLoss(t *testing.T, m *MLP, xs []tensor.Vector, ys []int) float64 {
	t.Helper()
	var s float64
	for i, x := range xs {
		l, err := m.Loss(x, ys[i])
		if err != nil {
			t.Fatal(err)
		}
		s += l
	}
	return s / float64(len(xs))
}

func TestSGDMomentumAccelerates(t *testing.T) {
	// On a quadratic-like objective, momentum should move parameters
	// further than plain SGD given identical gradients.
	plain := NewSGD(SGDConfig{LR: 0.1})
	mom := NewSGD(SGDConfig{LR: 0.1, Momentum: 0.9})
	p1 := tensor.Vector{1}
	p2 := tensor.Vector{1}
	g := tensor.Vector{1}
	for i := 0; i < 5; i++ {
		if err := plain.Step(p1, g); err != nil {
			t.Fatal(err)
		}
		if err := mom.Step(p2, g); err != nil {
			t.Fatal(err)
		}
	}
	if !(p2[0] < p1[0]) {
		t.Fatalf("momentum should have moved further: plain %v, momentum %v", p1[0], p2[0])
	}
}

func TestSGDWeightDecayShrinksParams(t *testing.T) {
	s := NewSGD(SGDConfig{LR: 0.1, WeightDecay: 0.5})
	p := tensor.Vector{1}
	g := tensor.Vector{0}
	if err := s.Step(p, g); err != nil {
		t.Fatal(err)
	}
	if !(p[0] < 1 && p[0] > 0) {
		t.Fatalf("weight decay step = %v, want in (0,1)", p[0])
	}
}

func TestSGDShapeErrorsAndReset(t *testing.T) {
	s := NewSGD(SGDConfig{LR: 0.1, Momentum: 0.9})
	if err := s.Step(tensor.Vector{1, 2}, tensor.Vector{1}); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("shape error = %v", err)
	}
	p := tensor.Vector{1}
	if err := s.Step(p, tensor.Vector{1}); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	// After reset, a zero gradient with zero weight decay must not move
	// the parameters (no residual velocity).
	before := p[0]
	if err := s.Step(p, tensor.Vector{0}); err != nil {
		t.Fatal(err)
	}
	if p[0] != before {
		t.Fatalf("reset did not clear velocity: %v -> %v", before, p[0])
	}
}

func TestLRDecay(t *testing.T) {
	s := NewSGD(SGDConfig{LR: 1, LRDecay: 0.5})
	s.DecayLR()
	if s.LR() != 0.5 {
		t.Fatalf("lr after decay = %v, want 0.5", s.LR())
	}
	// Zero / >=1 decay is a no-op.
	s2 := NewSGD(SGDConfig{LR: 1})
	s2.DecayLR()
	if s2.LR() != 1 {
		t.Fatalf("lr changed without decay: %v", s2.LR())
	}
	s3 := NewSGD(SGDConfig{LR: 1, LRDecay: 2})
	s3.DecayLR()
	if s3.LR() != 1 {
		t.Fatalf("lr grew with decay>=1: %v", s3.LR())
	}
}

func TestTrainerAppliesDecayPerEpoch(t *testing.T) {
	m := mustMLP(t, []int{2, 2}, 1)
	opt := NewSGD(SGDConfig{LR: 1, LRDecay: 0.5})
	tr := NewTrainer(m, opt, 0, 3)
	xs := []tensor.Vector{{1, 0}, {0, 1}}
	ys := []int{0, 1}
	if _, err := tr.RunEpochs(xs, ys, tensor.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if opt.LR() != 0.125 {
		t.Fatalf("lr after 3 epochs = %v, want 0.125", opt.LR())
	}
}

func TestTrainerValidation(t *testing.T) {
	m := mustMLP(t, []int{2, 2}, 1)
	tr := NewTrainer(m, NewSGD(SGDConfig{LR: 0.1}), 0, 0)
	if tr.Epochs != 1 {
		t.Fatalf("default epochs = %d", tr.Epochs)
	}
	if _, err := tr.RunEpochs(nil, nil, tensor.NewRNG(1)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("empty train set error = %v", err)
	}
	if _, err := tr.RunEpochs([]tensor.Vector{{1, 2}}, []int{0, 1}, tensor.NewRNG(1)); !errors.Is(err, tensor.ErrShape) {
		t.Fatalf("length mismatch error = %v", err)
	}
}
