// Package nn implements the feed-forward neural-network training substrate
// used by the gossip-learning simulator: multilayer perceptrons with ReLU
// activations, softmax cross-entropy loss, Kaiming-normal initialization,
// and SGD with momentum and weight decay.
//
// Models store all parameters in a single flat tensor.Vector. This mirrors
// the paper's treatment of models as elements of R^d and makes the two
// gossip aggregation rules (pairwise average in Base Gossip, |Θ|-way
// average in SAMO) a one-line vector operation.
//
// A model instance is not safe for concurrent use: forward/backward passes
// reuse internal scratch buffers. The simulator is single-threaded per
// node, and experiment arms clone models per goroutine.
package nn

import (
	"errors"
	"fmt"
	"math"

	"gossipmia/internal/tensor"
)

// ErrArchitecture is returned when a layer specification is invalid.
var ErrArchitecture = errors.New("nn: invalid architecture")

// MLP is a fully-connected network with ReLU hidden activations and a
// linear output layer (softmax is applied by the loss / Probs).
type MLP struct {
	sizes  []int         // layer widths, len >= 2: [in, h..., out]
	params tensor.Vector // flat parameters: per layer W (out*in) then b (out)

	// Per-layer offsets into params.
	wOff, bOff []int

	// Scratch buffers reused across calls.
	acts   []tensor.Vector // acts[0] = input copy, acts[l] = activation of layer l
	deltas []tensor.Vector // back-propagated errors per layer
	probs  tensor.Vector   // softmax output scratch

	// Batched scratch for BatchGrad, lazily sized to the largest batch
	// seen (Clone does not copy it). bActs[l] and bDeltas[l] hold
	// row-major batchCap × width matrices.
	batchCap int
	bActs    []tensor.Vector
	bDeltas  []tensor.Vector

	// workers bounds the goroutines the batched GEMM kernels may tile
	// over (0 or 1 = serial). Tiling is bit-identical, so the setting
	// never changes results; Clone propagates it to per-node models.
	workers int
}

// NewMLP builds an MLP with the given layer sizes (input, hidden...,
// output) and Kaiming-normal weight initialization; biases start at zero.
// All nodes in the paper start from a common θ0, so callers typically
// build one MLP and Clone it per node.
func NewMLP(sizes []int, rng *tensor.RNG) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("need at least input and output sizes, got %v: %w", sizes, ErrArchitecture)
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("non-positive layer size in %v: %w", sizes, ErrArchitecture)
		}
	}
	m := &MLP{sizes: append([]int(nil), sizes...)}
	layers := len(sizes) - 1
	m.wOff = make([]int, layers)
	m.bOff = make([]int, layers)
	total := 0
	for l := 0; l < layers; l++ {
		in, out := sizes[l], sizes[l+1]
		m.wOff[l] = total
		total += in * out
		m.bOff[l] = total
		total += out
	}
	m.params = tensor.NewVector(total)
	for l := 0; l < layers; l++ {
		in := sizes[l]
		w := m.weight(l)
		rng.KaimingNormal(w, in)
	}
	m.allocScratch()
	return m, nil
}

func (m *MLP) allocScratch() {
	layers := len(m.sizes) - 1
	m.acts = make([]tensor.Vector, layers+1)
	m.deltas = make([]tensor.Vector, layers)
	for i, s := range m.sizes {
		m.acts[i] = tensor.NewVector(s)
		if i > 0 {
			m.deltas[i-1] = tensor.NewVector(s)
		}
	}
	m.probs = tensor.NewVector(m.sizes[len(m.sizes)-1])
}

// weight returns the live slice holding layer l's weight matrix
// (row-major, out x in).
func (m *MLP) weight(l int) tensor.Vector {
	in, out := m.sizes[l], m.sizes[l+1]
	return m.params[m.wOff[l] : m.wOff[l]+in*out]
}

// bias returns the live slice holding layer l's bias vector.
func (m *MLP) bias(l int) tensor.Vector {
	out := m.sizes[l+1]
	return m.params[m.bOff[l] : m.bOff[l]+out]
}

// Sizes returns a copy of the layer widths.
func (m *MLP) Sizes() []int { return append([]int(nil), m.sizes...) }

// NumParams returns the total number of trainable parameters.
func (m *MLP) NumParams() int { return len(m.params) }

// Classes returns the output dimensionality (number of labels).
func (m *MLP) Classes() int { return m.sizes[len(m.sizes)-1] }

// InputDim returns the expected input dimensionality.
func (m *MLP) InputDim() int { return m.sizes[0] }

// Params returns the live flat parameter vector. Mutating it mutates the
// model; use ParamsCopy for a snapshot.
func (m *MLP) Params() tensor.Vector { return m.params }

// ParamsCopy returns a snapshot of the flat parameter vector.
func (m *MLP) ParamsCopy() tensor.Vector { return m.params.Clone() }

// SetParams overwrites the model parameters with a copy of v.
func (m *MLP) SetParams(v tensor.Vector) error {
	if len(v) != len(m.params) {
		return fmt.Errorf("set params %d into model with %d: %w", len(v), len(m.params), tensor.ErrShape)
	}
	copy(m.params, v)
	return nil
}

// Clone returns a model with the same architecture and a deep copy of the
// parameters, with its own scratch buffers (safe to use from another
// goroutine than the original). The GEMM worker budget carries over.
func (m *MLP) Clone() *MLP {
	out := &MLP{
		sizes:   append([]int(nil), m.sizes...),
		params:  m.params.Clone(),
		wOff:    append([]int(nil), m.wOff...),
		bOff:    append([]int(nil), m.bOff...),
		workers: m.workers,
	}
	out.allocScratch()
	return out
}

// SetWorkers bounds the goroutines the batched kernels (BatchGrad,
// ScoreBatch) may tile their GEMMs over; 0 or 1 keeps them serial. The
// tiled path is bit-identical to the serial one, so this knob never
// changes results — it only engages above a matrix-size threshold, so
// small minibatches keep the allocation-free serial kernels either way.
func (m *MLP) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	m.workers = n
}

// forward runs the network on x, filling m.acts. The final activation is
// the logits (no softmax).
func (m *MLP) forward(x tensor.Vector) error {
	if len(x) != m.sizes[0] {
		return fmt.Errorf("input dim %d, model expects %d: %w", len(x), m.sizes[0], tensor.ErrShape)
	}
	copy(m.acts[0], x)
	layers := len(m.sizes) - 1
	for l := 0; l < layers; l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		w, b := m.weight(l), m.bias(l)
		src, dst := m.acts[l], m.acts[l+1]
		for o := 0; o < out; o++ {
			row := w[o*in : (o+1)*in]
			s := b[o]
			for j, wj := range row {
				s += wj * src[j]
			}
			if l < layers-1 && s < 0 {
				s = 0 // ReLU on hidden layers
			}
			dst[o] = s
		}
	}
	return nil
}

// Logits computes the pre-softmax outputs for x into out (allocated when
// nil).
func (m *MLP) Logits(x, out tensor.Vector) (tensor.Vector, error) {
	if err := m.forward(x); err != nil {
		return nil, err
	}
	last := m.acts[len(m.acts)-1]
	if out == nil {
		out = tensor.NewVector(len(last))
	} else if len(out) != len(last) {
		return nil, fmt.Errorf("logits out %d != %d: %w", len(out), len(last), tensor.ErrShape)
	}
	copy(out, last)
	return out, nil
}

// Probs returns the softmax class distribution for x. The returned slice
// is freshly allocated and safe to retain; hot loops should prefer
// ProbsInto with a reused buffer.
func (m *MLP) Probs(x tensor.Vector) (tensor.Vector, error) {
	out := tensor.NewVector(m.Classes())
	if err := m.ProbsInto(x, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ProbsInto writes the softmax class distribution for x into out, which
// must have length Classes. It performs no allocation, making it the
// kernel of choice for per-example scoring loops (MIA attacks, accuracy
// sweeps).
func (m *MLP) ProbsInto(x, out tensor.Vector) error {
	if len(out) != m.Classes() {
		return fmt.Errorf("probs out %d != %d: %w", len(out), m.Classes(), tensor.ErrShape)
	}
	if err := m.forward(x); err != nil {
		return err
	}
	Softmax(m.acts[len(m.acts)-1], out)
	return nil
}

// Predict returns the arg-max class for x.
func (m *MLP) Predict(x tensor.Vector) (int, error) {
	if err := m.forward(x); err != nil {
		return 0, err
	}
	return m.acts[len(m.acts)-1].ArgMax(), nil
}

// Loss returns the cross-entropy loss of the model on (x, y).
func (m *MLP) Loss(x tensor.Vector, y int) (float64, error) {
	if err := m.checkLabel(y); err != nil {
		return 0, err
	}
	if err := m.forward(x); err != nil {
		return 0, err
	}
	logits := m.acts[len(m.acts)-1]
	Softmax(logits, m.probs)
	return crossEntropyFromProbs(m.probs, y), nil
}

func (m *MLP) checkLabel(y int) error {
	if y < 0 || y >= m.Classes() {
		return fmt.Errorf("label %d out of range [0,%d): %w", y, m.Classes(), ErrArchitecture)
	}
	return nil
}

// ExampleGrad computes the cross-entropy loss on a single example and
// accumulates (adds) its parameter gradient into grad, which must have
// length NumParams. It returns the example loss.
//
// Accumulation (rather than overwrite) lets minibatch and DP-SGD callers
// choose their own normalization.
func (m *MLP) ExampleGrad(x tensor.Vector, y int, grad tensor.Vector) (float64, error) {
	if len(grad) != len(m.params) {
		return 0, fmt.Errorf("grad len %d != %d: %w", len(grad), len(m.params), tensor.ErrShape)
	}
	if err := m.checkLabel(y); err != nil {
		return 0, err
	}
	if err := m.forward(x); err != nil {
		return 0, err
	}
	layers := len(m.sizes) - 1
	logits := m.acts[layers]
	Softmax(logits, m.probs)
	loss := crossEntropyFromProbs(m.probs, y)

	// Output delta: softmax-CE gradient p - onehot(y).
	dOut := m.deltas[layers-1]
	copy(dOut, m.probs)
	dOut[y] -= 1

	for l := layers - 1; l >= 0; l-- {
		in, out := m.sizes[l], m.sizes[l+1]
		w := m.weight(l)
		gw := grad[m.wOff[l] : m.wOff[l]+in*out]
		gb := grad[m.bOff[l] : m.bOff[l]+out]
		delta := m.deltas[l]
		src := m.acts[l]
		for o := 0; o < out; o++ {
			d := delta[o]
			if d != 0 {
				row := gw[o*in : (o+1)*in]
				for j := range row {
					row[j] += d * src[j]
				}
			}
			gb[o] += d
		}
		if l == 0 {
			break
		}
		// Back-propagate through W and the ReLU of layer l-1.
		prev := m.deltas[l-1]
		prev.Zero()
		for o := 0; o < out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			row := w[o*in : (o+1)*in]
			for j := range row {
				prev[j] += d * row[j]
			}
		}
		hidden := m.acts[l]
		for j := range prev {
			if hidden[j] <= 0 {
				prev[j] = 0
			}
		}
	}
	return loss, nil
}

// BatchGrad computes the mean loss and mean gradient over the given
// examples, writing the gradient into grad (zeroed first). xs and ys must
// have equal non-zero length.
//
// The whole minibatch is processed as blocked matrix-matrix multiplies
// (tensor.GemmNT/GemmTN/GemmNN) over batch-major activation and delta
// matrices instead of len(xs) independent per-example passes. Each
// gradient element still accumulates its per-example terms in increasing
// example order, so the result is bit-identical to looping ExampleGrad —
// only faster, because weight and gradient rows are walked once per
// four examples instead of once per example.
func (m *MLP) BatchGrad(xs []tensor.Vector, ys []int, grad tensor.Vector) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, fmt.Errorf("batch of %d inputs, %d labels: %w", len(xs), len(ys), tensor.ErrShape)
	}
	if len(grad) != len(m.params) {
		return 0, fmt.Errorf("grad len %d != %d: %w", len(grad), len(m.params), tensor.ErrShape)
	}
	B := len(xs)
	for i, x := range xs {
		if len(x) != m.sizes[0] {
			return 0, fmt.Errorf("input %d dim %d, model expects %d: %w", i, len(x), m.sizes[0], tensor.ErrShape)
		}
	}
	for _, y := range ys {
		if err := m.checkLabel(y); err != nil {
			return 0, err
		}
	}
	m.ensureBatchScratch(B)
	grad.Zero()
	layers := len(m.sizes) - 1
	m.batchForward(xs)

	// Loss and output deltas: softmax rows, p - onehot(y).
	classes := m.sizes[layers]
	logits := m.bActs[layers][:B*classes]
	dOut := m.bDeltas[layers-1][:B*classes]
	var loss float64
	for r := 0; r < B; r++ {
		row := dOut[r*classes : (r+1)*classes]
		Softmax(logits[r*classes:(r+1)*classes], row)
		loss += crossEntropyFromProbs(row, ys[r])
		row[ys[r]] -= 1
	}

	// Backward: dW_l += Δ_lᵀ·A_l, db_l += Σ_b Δ_l, Δ_{l-1} = Δ_l·W_l
	// masked by the ReLU of layer l-1.
	for l := layers - 1; l >= 0; l-- {
		in, out := m.sizes[l], m.sizes[l+1]
		gw := grad[m.wOff[l] : m.wOff[l]+in*out]
		gb := grad[m.bOff[l] : m.bOff[l]+out]
		delta := m.bDeltas[l][:B*out]
		src := m.bActs[l][:B*in]
		tensor.GemmTNW(gw, delta, src, out, in, B, m.workers)
		for r := 0; r < B; r++ {
			drow := delta[r*out : (r+1)*out]
			for o, d := range drow {
				gb[o] += d
			}
		}
		if l == 0 {
			break
		}
		prev := m.bDeltas[l-1][:B*in]
		prev.Zero()
		tensor.GemmNNW(prev, delta, m.weight(l), B, in, out, m.workers)
		hidden := m.bActs[l][:B*in]
		for i, h := range hidden {
			if h <= 0 {
				prev[i] = 0
			}
		}
	}
	inv := 1 / float64(B)
	grad.Scale(inv)
	return loss * inv, nil
}

// batchForward runs the blocked forward pass A_{l+1} = relu(A_l·W_lᵀ +
// b_l) over the B examples in xs, filling m.bActs with batch-major
// rows. Callers must have validated input dimensions and sized the
// scratch with ensureBatchScratch(len(xs)). Each logit accumulates its
// terms in increasing input-index order — the same chained sum as the
// per-example forward — so the rows are bit-identical to calling
// forward example by example.
func (m *MLP) batchForward(xs []tensor.Vector) {
	B := len(xs)
	layers := len(m.sizes) - 1
	in0 := m.sizes[0]
	a0 := m.bActs[0][:B*in0]
	for r, x := range xs {
		copy(a0[r*in0:(r+1)*in0], x)
	}
	for l := 0; l < layers; l++ {
		in, out := m.sizes[l], m.sizes[l+1]
		w, b := m.weight(l), m.bias(l)
		src := m.bActs[l][:B*in]
		dst := m.bActs[l+1][:B*out]
		for r := 0; r < B; r++ {
			copy(dst[r*out:(r+1)*out], b)
		}
		tensor.GemmNTW(dst, src, w, B, out, in, m.workers)
		if l < layers-1 {
			for i, v := range dst {
				if v < 0 {
					dst[i] = 0
				}
			}
		}
	}
}

// scoreChunk is the row count of one ScoreBatch forward pass: large
// enough that the blocked GEMM kernels pay off, small enough that the
// per-model scratch stays modest (scoreChunk × Σ widths floats).
const scoreChunk = 64

// ScoreBatch runs the model forward over xs in fixed-size chunks using
// the same blocked GEMM kernels as BatchGrad and invokes score(i,
// logits) once per example, in order, with example i's logit row. The
// row aliases internal scratch and is only valid during the callback.
//
// The logits are bit-identical to the per-example forward pass
// (Predict, ProbsInto), so scoring sweeps — accuracy, MIA attacks —
// can batch without changing a single result bit. Steady-state calls
// perform no allocation once the scratch has grown to scoreChunk rows.
func (m *MLP) ScoreBatch(xs []tensor.Vector, score func(i int, logits tensor.Vector)) error {
	in0 := m.sizes[0]
	for i, x := range xs {
		if len(x) != in0 {
			return fmt.Errorf("input %d dim %d, model expects %d: %w", i, len(x), in0, tensor.ErrShape)
		}
	}
	layers := len(m.sizes) - 1
	classes := m.sizes[layers]
	for start := 0; start < len(xs); start += scoreChunk {
		end := start + scoreChunk
		if end > len(xs) {
			end = len(xs)
		}
		chunk := xs[start:end]
		B := len(chunk)
		m.ensureBatchScratch(B)
		m.batchForward(chunk)
		logits := m.bActs[layers][:B*classes]
		for r := 0; r < B; r++ {
			score(start+r, logits[r*classes:(r+1)*classes])
		}
	}
	return nil
}

// ensureBatchScratch sizes the batch-major scratch matrices for batches
// of up to n rows.
func (m *MLP) ensureBatchScratch(n int) {
	if n <= m.batchCap {
		return
	}
	layers := len(m.sizes) - 1
	m.bActs = make([]tensor.Vector, layers+1)
	m.bDeltas = make([]tensor.Vector, layers)
	for i, s := range m.sizes {
		m.bActs[i] = tensor.NewVector(n * s)
		if i > 0 {
			m.bDeltas[i-1] = tensor.NewVector(n * s)
		}
	}
	m.batchCap = n
}

// Softmax writes the softmax of logits into out (same length), using the
// max-subtraction trick for numerical stability.
func Softmax(logits, out tensor.Vector) {
	maxv, _ := logits.Max()
	var sum float64
	for i, z := range logits {
		e := math.Exp(z - maxv)
		out[i] = e
		sum += e
	}
	if sum == 0 {
		// All logits were -Inf; fall back to uniform.
		out.Fill(1 / float64(len(out)))
		return
	}
	out.Scale(1 / sum)
}

// crossEntropyFromProbs returns -log p[y], floored to avoid Inf.
func crossEntropyFromProbs(p tensor.Vector, y int) float64 {
	const floor = 1e-12
	v := p[y]
	if v < floor {
		v = floor
	}
	return -math.Log(v)
}
