package experiment

import (
	"encoding/json"
	"fmt"
	"strings"

	"gossipmia/internal/store"
)

// Store-backed arm caching. With SpecRunOptions.StoreDir set, per-arm
// results land in one embedded store (internal/store) instead of one
// JSON file each under arms/ — the difference between a resume that
// opens 10^5 files and one that streams a single log + segment set.
// The record bytes are exactly the bytes the file cache would hold
// (canonical JSON with the self-checksum Sum), so the integrity
// semantics — decode, reproduce Sum, match key and label — carry over
// unchanged and results stay byte-identical between the two backends.
//
// Key space:
//
//	"a!" + <64-hex arm content hash>          → armCacheFile JSON
//	"i!" + spec + "\x00" + label + "\x00" + hash[:16]
//	                                          → StoreArmSummary JSON
//
// The "a!" row is the resume cache, point-looked-up (bloom-served) or
// range-prescanned. The "i!" row is the listing index: its key embeds
// the figure name and the arm label — which carries the sweep-axis
// value, e.g. "purchase100 beta=0.25" — so `dlsim list -store` serves
// a figure's arms with one bounded range scan in label order, no
// record-body reads.
const (
	storeArmPrefix   = "a!"
	storeIndexPrefix = "i!"
)

// storeArmKey returns the record key of an arm's cached result.
func storeArmKey(key string) string { return storeArmPrefix + key }

// storeIndexKey returns the listing-index key of an arm.
func storeIndexKey(specName, label, key string) string {
	short := key
	if len(short) > 16 {
		short = short[:16]
	}
	return storeIndexPrefix + specName + "\x00" + label + "\x00" + short
}

// StoreArmSummary is the listing-index row of one cached arm: the
// headline metrics of results.csv, keyed for range scans by figure.
type StoreArmSummary struct {
	Spec     string  `json:"spec"`
	Label    string  `json:"label"`
	Key      string  `json:"key"`
	MaxAcc   float64 `json:"maxAcc"`
	MIAAtMax float64 `json:"miaAtMax"`
	Messages int     `json:"messages"`
	Bytes    int     `json:"bytes"`
	Epsilon  float64 `json:"epsilon,omitempty"`
}

// storeArmSummary builds the index row for a finished arm.
func storeArmSummary(specName, key string, arm Arm) StoreArmSummary {
	at := arm.AtMaxTestAcc()
	return StoreArmSummary{
		Spec:     specName,
		Label:    arm.Label,
		Key:      key,
		MaxAcc:   at.TestAcc,
		MIAAtMax: at.MIAAcc,
		Messages: arm.MessagesSent,
		Bytes:    arm.BytesSent,
		Epsilon:  arm.RealizedEpsilon,
	}
}

// putStoreArm commits one arm to the store: the full cache record plus
// its listing-index row. raw is the canonical armCacheFile JSON — the
// exact bytes the file backend would write.
func putStoreArm(st *store.Store, specName, key string, arm Arm, raw []byte) error {
	if err := st.Put(storeArmKey(key), raw); err != nil {
		return err
	}
	idx, err := json.Marshal(storeArmSummary(specName, key, arm))
	if err != nil {
		return fmt.Errorf("experiment: index row: %w", err)
	}
	return st.Put(storeIndexKey(specName, arm.Label, key), idx)
}

// ensureStoreIndex repairs a missing listing-index row for a cached
// arm — the case where a crash tore the index Put but the record Put
// before it was durable. The existence probe is a bloom-served point
// lookup, so resuming 10^5 intact arms costs microseconds each and
// writes nothing.
func ensureStoreIndex(st *store.Store, specName, key string, arm Arm) error {
	ik := storeIndexKey(specName, arm.Label, key)
	ok, err := st.Has(ik)
	if err != nil || ok {
		return err
	}
	idx, err := json.Marshal(storeArmSummary(specName, key, arm))
	if err != nil {
		return fmt.Errorf("experiment: index row: %w", err)
	}
	return st.Put(ik, idx)
}

// decodeArmCache validates and decodes one cached arm record from its
// raw bytes — the shared trust path of both cache backends: the JSON
// must decode, its integrity checksum must reproduce, and the key and
// label must match (see loadArmCache).
func decodeArmCache(raw []byte, key, label string) (Arm, bool) {
	if len(raw) == 0 {
		return Arm{}, false
	}
	var cache armCacheFile
	if err := json.Unmarshal(raw, &cache); err != nil {
		return Arm{}, false
	}
	if sum, err := cache.checksum(); err != nil || cache.Sum != sum {
		return Arm{}, false
	}
	if cache.Key != key || cache.Label != label {
		return Arm{}, false
	}
	return cache.arm(), true
}

// prescanStoreArms serves the resume lookup in one pass: a single
// ordered scan over the record range collects the raw bytes of every
// wanted key. No per-arm file opens, no per-arm point lookups — the
// scan touches the log and segment set once, sequentially, and skips
// everything outside the "a!" range via fence keys.
func prescanStoreArms(st *store.Store, keys []string) ([][]byte, error) {
	want := make(map[string]int, len(keys))
	for i, k := range keys {
		want[storeArmKey(k)] = i
	}
	raw := make([][]byte, len(keys))
	err := st.Scan(storeArmPrefix, store.PrefixEnd(storeArmPrefix), func(k string, v []byte) error {
		if i, ok := want[k]; ok {
			raw[i] = append([]byte(nil), v...)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: store prescan: %w", err)
	}
	return raw, nil
}

// ListStoreArms pages through a store's listing index in (figure,
// label) order without reading record bodies. figure == "" lists every
// figure; limit <= 0 means no limit. It returns the page, the total
// number of matching rows, and opens the store read-only — safe
// against a store another process is writing.
func ListStoreArms(dir, figure string, limit, offset int) ([]StoreArmSummary, int, error) {
	st, err := store.Open(dir, store.Options{ReadOnly: true})
	if err != nil {
		return nil, 0, err
	}
	defer st.Close()
	start := storeIndexPrefix
	if figure != "" {
		start = storeIndexPrefix + figure + "\x00"
	}
	end := store.PrefixEnd(start)
	var page []StoreArmSummary
	total := 0
	err = st.Scan(start, end, func(k string, v []byte) error {
		total++
		if total <= offset || (limit > 0 && len(page) >= limit) {
			return nil
		}
		var s StoreArmSummary
		if err := json.Unmarshal(v, &s); err != nil {
			return fmt.Errorf("experiment: index row %q: %w", k, err)
		}
		page = append(page, s)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return page, total, nil
}

// FormatStoreArms renders a listing page as the aligned text table
// `dlsim list -store` prints.
func FormatStoreArms(page []StoreArmSummary, total, offset int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d cached arms", total)
	if len(page) < total {
		fmt.Fprintf(&b, " (showing %d-%d)", offset+1, offset+len(page))
	}
	b.WriteString("\n")
	for _, s := range page {
		fmt.Fprintf(&b, "%s\t%s\tacc=%.4f mia=%.4f msgs=%d key=%s\n",
			s.Spec, s.Label, s.MaxAcc, s.MIAAtMax, s.Messages, s.Key[:min(16, len(s.Key))])
	}
	return b.String()
}
