package experiment

import (
	"fmt"
	"strings"

	"gossipmia/internal/core"
	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
	"gossipmia/internal/metrics"
	"gossipmia/internal/netmodel"
	"gossipmia/internal/par"
	"gossipmia/internal/plot"
	"gossipmia/internal/stats"
)

// Arm is one curve of a figure: its label, per-round series, and
// run-level aggregates.
type Arm struct {
	Label           string
	Series          *metrics.Series
	MessagesSent    int
	BytesSent       int
	RealizedEpsilon float64
	NoiseMultiplier float64
}

// AtMaxTestAcc returns the record of the round achieving the best global
// test accuracy, the operating point the paper quotes ("maximum global
// test accuracy relative to an MIA vulnerability of ...").
func (a Arm) AtMaxTestAcc() metrics.RoundRecord {
	var best metrics.RoundRecord
	found := false
	for _, r := range a.Series.Records {
		if !found || r.TestAcc > best.TestAcc {
			best = r
			found = true
		}
	}
	return best
}

// FigureResult collects the arms of one paper figure.
type FigureResult struct {
	Name    string
	Caption string
	Arms    []Arm
	// Notes are analysis lines appended below the table (e.g. the RQ6
	// rank correlations).
	Notes []string
}

// Table renders the per-arm summary rows for the figure.
func (f *FigureResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.Name, f.Caption)
	fmt.Fprintf(&b, "%-38s %8s %8s %8s %8s %8s %9s %9s %8s\n",
		"arm", "maxAcc", "MIA@max", "maxMIA", "maxTPR", "maxGen", "messages", "MiB", "epsilon")
	for _, a := range f.Arms {
		at := a.AtMaxTestAcc()
		maxGen := 0.0
		for _, r := range a.Series.Records {
			if r.GenError > maxGen {
				maxGen = r.GenError
			}
		}
		fmt.Fprintf(&b, "%-38s %8.3f %8.3f %8.3f %8.3f %8.3f %9d %9.1f %8.2f\n",
			a.Label, at.TestAcc, at.MIAAcc, a.Series.MaxMIAAcc(), a.Series.MaxTPR(),
			maxGen, a.MessagesSent, float64(a.BytesSent)/(1<<20), a.RealizedEpsilon)
	}
	for _, note := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// plotGlyphs is the palette cycled across arms in scatter plots.
var plotGlyphs = []rune{'s', 'd', 'o', 'x', '+', '#', '@', '%', '&', '~', '^', '='}

// Plot renders the figure's arms as an ASCII scatter of per-round
// (x, y) record projections — the textual counterpart of the paper's
// tradeoff figures.
func (f *FigureResult) Plot(x, y func(metrics.RoundRecord) float64, xlabel, ylabel string) (string, error) {
	series := make([]plot.Series, 0, len(f.Arms))
	for i, arm := range f.Arms {
		s := plot.Series{
			Label: arm.Label,
			Glyph: plotGlyphs[i%len(plotGlyphs)],
		}
		for _, r := range arm.Series.Records {
			s.Points = append(s.Points, plot.Point{X: x(r), Y: y(r)})
		}
		series = append(series, s)
	}
	return plot.Scatter(plot.Config{
		Title:  f.Name + " — " + f.Caption,
		XLabel: xlabel,
		YLabel: ylabel,
	}, series)
}

// TradeoffPlot is the paper's standard presentation: global test
// accuracy on x, MIA accuracy on y, one point per evaluated round.
func (f *FigureResult) TradeoffPlot() (string, error) {
	return f.Plot(
		func(r metrics.RoundRecord) float64 { return r.TestAcc },
		func(r metrics.RoundRecord) float64 { return r.MIAAcc },
		"global test accuracy", "MIA accuracy")
}

// GenErrorPlot is the Figure 7 presentation: generalization error on x,
// MIA accuracy on y.
func (f *FigureResult) GenErrorPlot() (string, error) {
	return f.Plot(
		func(r metrics.RoundRecord) float64 { return r.GenError },
		func(r metrics.RoundRecord) float64 { return r.MIAAcc },
		"generalization error", "MIA accuracy")
}

// armSpec describes one study arm to build from a Scale.
type armSpec struct {
	label    string
	corpus   data.CorpusName
	protocol string
	viewSize int
	dynamic  bool
	beta     float64 // 0 = IID
	dp       *core.DPConfig
	canaries bool
	seedOff  int64

	// Optional network model for the arm: an explicit transport config
	// and/or churn schedule. When nil/empty the Scale's NetOverlay (if
	// any) applies instead, so scenario arms can pin their own network
	// while ordinary figures inherit the CLI overlay.
	net   *netmodel.Config
	churn []gossip.ChurnEvent

	// Optional overrides for figures that need a different training
	// regime than the corpus default (e.g. Figure 6 uses more data and
	// fewer local epochs so the MIA signal is not saturated).
	trainOverride  *core.TrainConfig
	trainPerFactor float64
	epochsOverride int
}

// innerWorkers divides a worker budget across n concurrently running
// outer tasks, so nested fan-outs (repeats > arms > per-node eval)
// share one bound instead of multiplying it. Worker counts never affect
// results, only scheduling.
func innerWorkers(budget, n int) int {
	w := par.Workers(budget)
	if n < 1 {
		n = 1
	}
	if n > w {
		n = w
	}
	inner := w / n
	if inner < 1 {
		inner = 1
	}
	return inner
}

// runArms executes the specs on a worker pool (Scale.Workers wide) and
// assembles the figure. Arms are fully independent — each derives its
// own seed from the spec — and land in spec order, so the figure is
// byte-identical to a serial run for any worker count. The per-study
// evaluation fan-out receives the remaining share of the worker budget.
func runArms(name, caption string, sc Scale, specs []armSpec) (*FigureResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	scArm := sc
	scArm.Workers = innerWorkers(sc.Workers, len(specs))
	fig := &FigureResult{Name: name, Caption: caption}
	fig.Arms = make([]Arm, len(specs))
	err := par.ForEachErr(sc.Workers, len(specs), func(i int) error {
		arm, err := runArm(scArm, specs[i])
		if err != nil {
			return fmt.Errorf("experiment: %s arm %q: %w", name, specs[i].label, err)
		}
		fig.Arms[i] = arm
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// runArm builds and runs one core.Study from a spec.
func runArm(sc Scale, spec armSpec) (Arm, error) {
	train, err := TrainingFor(spec.corpus)
	if err != nil {
		return Arm{}, err
	}
	if spec.trainOverride != nil {
		train = *spec.trainOverride
	}
	if spec.epochsOverride > 0 {
		train.LocalEpochs = spec.epochsOverride
	}
	trainPer := sc.TrainPerNode
	if spec.trainPerFactor > 0 {
		trainPer = int(float64(trainPer) * spec.trainPerFactor)
	}
	nodes := sc.nodesFor(string(spec.corpus))
	viewSize := spec.viewSize
	if viewSize >= nodes {
		viewSize = nodes - 1
	}
	// k-regular feasibility: n*k must be even.
	if nodes*viewSize%2 != 0 {
		viewSize--
	}
	if viewSize < 1 {
		return Arm{}, fmt.Errorf("cannot fit view size %d in %d nodes: %w", spec.viewSize, nodes, ErrScale)
	}
	simCfg := gossip.Config{
		Nodes:    nodes,
		ViewSize: viewSize,
		Dynamic:  spec.dynamic,
		Rounds:   sc.Rounds,
		Seed:     sc.Seed*1_000_003 + spec.seedOff,
	}
	// The arm's own network model wins; otherwise the Scale-level
	// overlay (dlsim -transport/-latency/-churn) applies.
	if err := sc.Net.applySim(&simCfg); err != nil {
		return Arm{}, err
	}
	if spec.net != nil {
		simCfg.Net = *spec.net
	}
	if spec.churn != nil {
		simCfg.Churn = spec.churn
	}
	cfg := core.StudyConfig{
		Label:          spec.label,
		Corpus:         spec.corpus,
		Protocol:       spec.protocol,
		Sim:            simCfg,
		Train:          train,
		Part:           core.PartitionConfig{TrainPerNode: trainPer, TestPerNode: sc.TestPerNode, DirichletBeta: spec.beta},
		DP:             spec.dp,
		GlobalTestSize: sc.GlobalTestSize,
		EvalEvery:      sc.EvalEvery,
		EvalNodes:      sc.EvalNodes,
		Workers:        sc.Workers,
	}
	if spec.canaries {
		cfg.Canaries = sc.Canaries
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		return Arm{}, err
	}
	res, err := study.Run()
	if err != nil {
		return Arm{}, err
	}
	return Arm{
		Label:           spec.label,
		Series:          res.Series,
		MessagesSent:    res.MessagesSent,
		BytesSent:       res.BytesSent,
		RealizedEpsilon: res.RealizedEpsilon,
		NoiseMultiplier: res.NoiseMultiplier,
	}, nil
}

// RunFigure2 (RQ1): SAMO vs Base Gossip on a static 5-regular graph,
// across the four corpora.
func RunFigure2(sc Scale) (*FigureResult, error) {
	var specs []armSpec
	var off int64
	for _, corpus := range data.AllCorpora() {
		for _, proto := range []string{"base", "samo"} {
			specs = append(specs, armSpec{
				label:    fmt.Sprintf("%s/%s/k=5/static", corpus, proto),
				corpus:   corpus,
				protocol: proto,
				viewSize: 5,
				seedOff:  off,
			})
			off++
		}
	}
	return runArms("Figure 2",
		"MIA vulnerability vs global test accuracy, Base Gossip vs SAMO, 5-regular static graph",
		sc, specs)
}

// RunFigure3 (RQ2): static vs dynamic topology on a sparse 2-regular
// graph with SAMO, across the four corpora.
func RunFigure3(sc Scale) (*FigureResult, error) {
	var specs []armSpec
	var off int64
	for _, corpus := range data.AllCorpora() {
		for _, dynamic := range []bool{false, true} {
			specs = append(specs, armSpec{
				label:    fmt.Sprintf("%s/samo/k=2/%s", corpus, dynLabel(dynamic)),
				corpus:   corpus,
				protocol: "samo",
				viewSize: 2,
				dynamic:  dynamic,
				seedOff:  100 + off,
			})
			off++
		}
	}
	return runArms("Figure 3",
		"MIA vulnerability vs global test accuracy, static vs dynamic, 2-regular graph (SAMO)",
		sc, specs)
}

// RunFigure4 (RQ3): canary-based worst-case audit — maximum per-node
// TPR@1%FPR on planted canaries over rounds, static vs dynamic.
func RunFigure4(sc Scale) (*FigureResult, error) {
	var specs []armSpec
	var off int64
	for _, corpus := range data.AllCorpora() {
		for _, dynamic := range []bool{false, true} {
			specs = append(specs, armSpec{
				label:    fmt.Sprintf("%s/canary/k=2/%s", corpus, dynLabel(dynamic)),
				corpus:   corpus,
				protocol: "samo",
				viewSize: 2,
				dynamic:  dynamic,
				canaries: true,
				seedOff:  200 + off,
			})
			off++
		}
	}
	return runArms("Figure 4",
		"Max canary TPR@1%FPR over communication rounds, static vs dynamic, 2-regular graph",
		sc, specs)
}

// RunFigure5 (RQ4): view-size sweep on the CIFAR-10-like corpus with
// SAMO, static vs dynamic; message counts expose the communication cost.
func RunFigure5(sc Scale) (*FigureResult, error) {
	var specs []armSpec
	var off int64
	for _, k := range []int{2, 5, 10, 25} {
		if k >= sc.Nodes {
			continue
		}
		for _, dynamic := range []bool{false, true} {
			specs = append(specs, armSpec{
				label:    fmt.Sprintf("cifar10/samo/k=%d/%s", k, dynLabel(dynamic)),
				corpus:   data.CIFAR10,
				protocol: "samo",
				viewSize: k,
				dynamic:  dynamic,
				seedOff:  300 + off,
			})
			off++
		}
	}
	return runArms("Figure 5",
		"Max MIA accuracy and TPR@1%FPR vs view size, static vs dynamic (CIFAR-10-like, SAMO)",
		sc, specs)
}

// RunFigure6 (RQ5): Dirichlet non-IID sweep on the Purchase100-like
// corpus, static vs dynamic on a 2-regular graph.
func RunFigure6(sc Scale) (*FigureResult, error) {
	var specs []armSpec
	var off int64
	for _, beta := range []float64{0, 0.5, 0.1} { // 0 = IID
		for _, dynamic := range []bool{false, true} {
			label := "iid"
			if beta > 0 {
				label = fmt.Sprintf("beta=%.1f", beta)
			}
			specs = append(specs, armSpec{
				label:    fmt.Sprintf("purchase100/%s/%s", label, dynLabel(dynamic)),
				corpus:   data.Purchase100,
				protocol: "samo",
				viewSize: 2,
				dynamic:  dynamic,
				beta:     beta,
				seedOff:  400 + off,
				// Desaturate the membership signal so the heterogeneity
				// effect (not raw memorization) drives the comparison.
				trainPerFactor: 3,
				epochsOverride: 1,
			})
			off++
		}
	}
	return runArms("Figure 6",
		"MIA vulnerability vs test accuracy under label heterogeneity (Dirichlet beta), 2-regular graph",
		sc, specs)
}

// RunFigure7 (RQ6): MIA vulnerability against generalization error across
// the four corpora (static vs dynamic, 2-regular, SAMO). The series carry
// both quantities per round.
func RunFigure7(sc Scale) (*FigureResult, error) {
	var specs []armSpec
	var off int64
	for _, corpus := range data.AllCorpora() {
		for _, dynamic := range []bool{false, true} {
			specs = append(specs, armSpec{
				label:    fmt.Sprintf("%s/generr/k=2/%s", corpus, dynLabel(dynamic)),
				corpus:   corpus,
				protocol: "samo",
				viewSize: 2,
				dynamic:  dynamic,
				seedOff:  500 + off,
			})
			off++
		}
	}
	fig, err := runArms("Figure 7",
		"MIA vulnerability vs generalization error across corpora (static vs dynamic)",
		sc, specs)
	if err != nil {
		return nil, err
	}
	// Quantify the RQ6 link per arm: rank correlation between the
	// per-round generalization error and MIA accuracy. A rho well below
	// 1 is the paper's "generalization error is not the only key factor".
	for _, arm := range fig.Arms {
		gen := make([]float64, 0, len(arm.Series.Records))
		miaAcc := make([]float64, 0, len(arm.Series.Records))
		for _, r := range arm.Series.Records {
			gen = append(gen, r.GenError)
			miaAcc = append(miaAcc, r.MIAAcc)
		}
		rho, err := stats.Spearman(gen, miaAcc)
		if err != nil {
			continue // too few evaluation rounds for a correlation
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: spearman(genErr, miaAcc) = %.2f", arm.Label, rho))
	}
	return fig, nil
}

// RunFigure8 (RQ6): per-round MIA accuracy and generalization error on
// the Purchase100-like corpus, 2-regular graph, static vs dynamic.
func RunFigure8(sc Scale) (*FigureResult, error) {
	var specs []armSpec
	for i, dynamic := range []bool{false, true} {
		specs = append(specs, armSpec{
			label:    fmt.Sprintf("purchase100/rounds/k=2/%s", dynLabel(dynamic)),
			corpus:   data.Purchase100,
			protocol: "samo",
			viewSize: 2,
			dynamic:  dynamic,
			seedOff:  600 + int64(i),
		})
	}
	return runArms("Figure 8",
		"MIA accuracy and generalization error over communication rounds (Purchase100-like, SAMO)",
		sc, specs)
}

// RunFigure9 (RQ7): DP-SGD privacy-budget sweep (plus a non-DP baseline)
// on the Purchase100-like corpus, static vs dynamic.
func RunFigure9(sc Scale) (*FigureResult, error) {
	var specs []armSpec
	var off int64
	budgets := []float64{0, 50, 25, 15, 10} // 0 = non-DP baseline
	for _, eps := range budgets {
		for _, dynamic := range []bool{false, true} {
			label := "nodp"
			var dpCfg *core.DPConfig
			if eps > 0 {
				label = fmt.Sprintf("eps=%g", eps)
				dpCfg = &core.DPConfig{Epsilon: eps, Delta: 1e-5, Clip: 1}
			}
			specs = append(specs, armSpec{
				label:    fmt.Sprintf("purchase100/%s/%s", label, dynLabel(dynamic)),
				corpus:   data.Purchase100,
				protocol: "samo",
				viewSize: 5,
				dynamic:  dynamic,
				dp:       dpCfg,
				seedOff:  700 + off,
			})
			off++
		}
	}
	return runArms("Figure 9",
		"MIA vulnerability and test accuracy vs DP-SGD budget epsilon (delta=1e-5), static vs dynamic",
		sc, specs)
}

func dynLabel(dynamic bool) string {
	if dynamic {
		return "dynamic"
	}
	return "static"
}
