package experiment

import (
	"context"
	"fmt"
	"strings"

	"gossipmia/internal/data"
	"gossipmia/internal/metrics"
	"gossipmia/internal/par"
	"gossipmia/internal/plot"
	"gossipmia/internal/spec"
	"gossipmia/internal/stats"
)

// Arm is one curve of a figure: its label, per-round series, and
// run-level aggregates.
type Arm struct {
	Label           string
	Series          *metrics.Series
	MessagesSent    int
	BytesSent       int
	RealizedEpsilon float64
	NoiseMultiplier float64
}

// AtMaxTestAcc returns the record of the round achieving the best global
// test accuracy, the operating point the paper quotes ("maximum global
// test accuracy relative to an MIA vulnerability of ...").
func (a Arm) AtMaxTestAcc() metrics.RoundRecord {
	var best metrics.RoundRecord
	found := false
	for _, r := range a.Series.Records {
		if !found || r.TestAcc > best.TestAcc {
			best = r
			found = true
		}
	}
	return best
}

// FigureResult collects the arms of one paper figure.
type FigureResult struct {
	Name    string
	Caption string
	Arms    []Arm
	// Notes are analysis lines appended below the table (e.g. the RQ6
	// rank correlations).
	Notes []string
}

// Table renders the per-arm summary rows for the figure.
func (f *FigureResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.Name, f.Caption)
	fmt.Fprintf(&b, "%-38s %8s %8s %8s %8s %8s %9s %9s %8s\n",
		"arm", "maxAcc", "MIA@max", "maxMIA", "maxTPR", "maxGen", "messages", "MiB", "epsilon")
	for _, a := range f.Arms {
		at := a.AtMaxTestAcc()
		maxGen := 0.0
		for _, r := range a.Series.Records {
			if r.GenError > maxGen {
				maxGen = r.GenError
			}
		}
		fmt.Fprintf(&b, "%-38s %8.3f %8.3f %8.3f %8.3f %8.3f %9d %9.1f %8.2f\n",
			a.Label, at.TestAcc, at.MIAAcc, a.Series.MaxMIAAcc(), a.Series.MaxTPR(),
			maxGen, a.MessagesSent, float64(a.BytesSent)/(1<<20), a.RealizedEpsilon)
	}
	for _, note := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// plotGlyphs is the palette cycled across arms in scatter plots.
var plotGlyphs = []rune{'s', 'd', 'o', 'x', '+', '#', '@', '%', '&', '~', '^', '='}

// Plot renders the figure's arms as an ASCII scatter of per-round
// (x, y) record projections — the textual counterpart of the paper's
// tradeoff figures.
func (f *FigureResult) Plot(x, y func(metrics.RoundRecord) float64, xlabel, ylabel string) (string, error) {
	series := make([]plot.Series, 0, len(f.Arms))
	for i, arm := range f.Arms {
		s := plot.Series{
			Label: arm.Label,
			Glyph: plotGlyphs[i%len(plotGlyphs)],
		}
		for _, r := range arm.Series.Records {
			s.Points = append(s.Points, plot.Point{X: x(r), Y: y(r)})
		}
		series = append(series, s)
	}
	return plot.Scatter(plot.Config{
		Title:  f.Name + " — " + f.Caption,
		XLabel: xlabel,
		YLabel: ylabel,
	}, series)
}

// TradeoffPlot is the paper's standard presentation: global test
// accuracy on x, MIA accuracy on y, one point per evaluated round.
func (f *FigureResult) TradeoffPlot() (string, error) {
	return f.Plot(
		func(r metrics.RoundRecord) float64 { return r.TestAcc },
		func(r metrics.RoundRecord) float64 { return r.MIAAcc },
		"global test accuracy", "MIA accuracy")
}

// GenErrorPlot is the Figure 7 presentation: generalization error on x,
// MIA accuracy on y.
func (f *FigureResult) GenErrorPlot() (string, error) {
	return f.Plot(
		func(r metrics.RoundRecord) float64 { return r.GenError },
		func(r metrics.RoundRecord) float64 { return r.MIAAcc },
		"generalization error", "MIA accuracy")
}

// innerWorkers divides a worker budget across n concurrently running
// outer tasks, so nested fan-outs (repeats > arms > per-node eval)
// share one bound instead of multiplying it. The division rounds up:
// with 8 workers over 3 arms each arm gets 3, not 2, so once the short
// arms drain, the stragglers still use most of the budget rather than
// a floor that leaves workers parked for the whole tail. The budget is
// a bound on useful concurrency, not an allocation — transient
// oversubscription (3×3 > 8) just time-shares, which costs far less
// than a straggler running underparallelized for half the wall clock.
// Worker counts never affect results, only scheduling.
func innerWorkers(budget, n int) int {
	w := par.Workers(budget)
	if n < 1 {
		n = 1
	}
	if n > w {
		n = w
	}
	return (w + n - 1) / n
}

// Figure2Spec (RQ1): SAMO vs Base Gossip on a static 5-regular graph,
// across the four corpora.
func Figure2Spec() *spec.Spec {
	var arms []spec.Arm
	var off int64
	for _, corpus := range data.AllCorpora() {
		for _, proto := range []string{"base", "samo"} {
			arms = append(arms, spec.Arm{
				Label:      fmt.Sprintf("%s/%s/k=5/static", corpus, proto),
				Corpus:     string(corpus),
				Protocol:   proto,
				ViewSize:   5,
				SeedOffset: off,
			})
			off++
		}
	}
	return &spec.Spec{
		Name:    "Figure 2",
		Caption: "MIA vulnerability vs global test accuracy, Base Gossip vs SAMO, 5-regular static graph",
		Arms:    arms,
	}
}

// RunFigure2 runs the Figure 2 spec.
func RunFigure2(sc Scale) (*FigureResult, error) {
	return RunSpec(context.Background(), Figure2Spec(), sc)
}

// Figure3Spec (RQ2): static vs dynamic topology on a sparse 2-regular
// graph with SAMO, across the four corpora.
func Figure3Spec() *spec.Spec {
	var arms []spec.Arm
	var off int64
	for _, corpus := range data.AllCorpora() {
		for _, dynamic := range []bool{false, true} {
			arms = append(arms, spec.Arm{
				Label:      fmt.Sprintf("%s/samo/k=2/%s", corpus, dynLabel(dynamic)),
				Corpus:     string(corpus),
				Protocol:   "samo",
				ViewSize:   2,
				Dynamics:   dynName(dynamic),
				SeedOffset: 100 + off,
			})
			off++
		}
	}
	return &spec.Spec{
		Name:    "Figure 3",
		Caption: "MIA vulnerability vs global test accuracy, static vs dynamic, 2-regular graph (SAMO)",
		Arms:    arms,
	}
}

// RunFigure3 runs the Figure 3 spec.
func RunFigure3(sc Scale) (*FigureResult, error) {
	return RunSpec(context.Background(), Figure3Spec(), sc)
}

// Figure4Spec (RQ3): canary-based worst-case audit — maximum per-node
// TPR@1%FPR on planted canaries over rounds, static vs dynamic.
func Figure4Spec() *spec.Spec {
	var arms []spec.Arm
	var off int64
	for _, corpus := range data.AllCorpora() {
		for _, dynamic := range []bool{false, true} {
			arms = append(arms, spec.Arm{
				Label:      fmt.Sprintf("%s/canary/k=2/%s", corpus, dynLabel(dynamic)),
				Corpus:     string(corpus),
				Protocol:   "samo",
				ViewSize:   2,
				Dynamics:   dynName(dynamic),
				Canaries:   true,
				SeedOffset: 200 + off,
			})
			off++
		}
	}
	return &spec.Spec{
		Name:    "Figure 4",
		Caption: "Max canary TPR@1%FPR over communication rounds, static vs dynamic, 2-regular graph",
		Arms:    arms,
	}
}

// RunFigure4 runs the Figure 4 spec.
func RunFigure4(sc Scale) (*FigureResult, error) {
	return RunSpec(context.Background(), Figure4Spec(), sc)
}

// Figure5Spec (RQ4): view-size sweep on the CIFAR-10-like corpus with
// SAMO, static vs dynamic; message counts expose the communication
// cost. The scale bounds which view sizes fit.
func Figure5Spec(sc Scale) *spec.Spec {
	var arms []spec.Arm
	var off int64
	for _, k := range []int{2, 5, 10, 25} {
		if k >= sc.Nodes {
			continue
		}
		for _, dynamic := range []bool{false, true} {
			arms = append(arms, spec.Arm{
				Label:      fmt.Sprintf("cifar10/samo/k=%d/%s", k, dynLabel(dynamic)),
				Corpus:     string(data.CIFAR10),
				Protocol:   "samo",
				ViewSize:   k,
				Dynamics:   dynName(dynamic),
				SeedOffset: 300 + off,
			})
			off++
		}
	}
	return &spec.Spec{
		Name:    "Figure 5",
		Caption: "Max MIA accuracy and TPR@1%FPR vs view size, static vs dynamic (CIFAR-10-like, SAMO)",
		Arms:    arms,
	}
}

// RunFigure5 runs the Figure 5 spec.
func RunFigure5(sc Scale) (*FigureResult, error) {
	return RunSpec(context.Background(), Figure5Spec(sc), sc)
}

// Figure6Spec (RQ5): Dirichlet non-IID sweep on the Purchase100-like
// corpus, static vs dynamic on a 2-regular graph.
func Figure6Spec() *spec.Spec {
	var arms []spec.Arm
	var off int64
	for _, beta := range []float64{0, 0.5, 0.1} { // 0 = IID
		for _, dynamic := range []bool{false, true} {
			label := "iid"
			if beta > 0 {
				label = fmt.Sprintf("beta=%.1f", beta)
			}
			arms = append(arms, spec.Arm{
				Label:      fmt.Sprintf("purchase100/%s/%s", label, dynLabel(dynamic)),
				Corpus:     string(data.Purchase100),
				Protocol:   "samo",
				ViewSize:   2,
				Dynamics:   dynName(dynamic),
				Beta:       beta,
				SeedOffset: 400 + off,
				// Desaturate the membership signal so the heterogeneity
				// effect (not raw memorization) drives the comparison.
				TrainPerFactor: 3,
				LocalEpochs:    1,
			})
			off++
		}
	}
	return &spec.Spec{
		Name:    "Figure 6",
		Caption: "MIA vulnerability vs test accuracy under label heterogeneity (Dirichlet beta), 2-regular graph",
		Arms:    arms,
	}
}

// RunFigure6 runs the Figure 6 spec.
func RunFigure6(sc Scale) (*FigureResult, error) {
	return RunSpec(context.Background(), Figure6Spec(), sc)
}

// Figure7Spec (RQ6): MIA vulnerability against generalization error
// across the four corpora (static vs dynamic, 2-regular, SAMO). The
// series carry both quantities per round.
func Figure7Spec() *spec.Spec {
	var arms []spec.Arm
	var off int64
	for _, corpus := range data.AllCorpora() {
		for _, dynamic := range []bool{false, true} {
			arms = append(arms, spec.Arm{
				Label:      fmt.Sprintf("%s/generr/k=2/%s", corpus, dynLabel(dynamic)),
				Corpus:     string(corpus),
				Protocol:   "samo",
				ViewSize:   2,
				Dynamics:   dynName(dynamic),
				SeedOffset: 500 + off,
			})
			off++
		}
	}
	return &spec.Spec{
		Name:    "Figure 7",
		Caption: "MIA vulnerability vs generalization error across corpora (static vs dynamic)",
		Arms:    arms,
	}
}

// RunFigure7 runs the Figure 7 spec and appends the RQ6 rank
// correlations.
func RunFigure7(sc Scale) (*FigureResult, error) {
	fig, err := RunSpec(context.Background(), Figure7Spec(), sc)
	if err != nil {
		return nil, err
	}
	AppendFigure7Notes(fig)
	return fig, nil
}

// AppendFigure7Notes quantifies the RQ6 link per arm: rank correlation
// between the per-round generalization error and MIA accuracy. A rho
// well below 1 is the paper's "generalization error is not the only key
// factor".
func AppendFigure7Notes(fig *FigureResult) {
	for _, arm := range fig.Arms {
		gen := make([]float64, 0, len(arm.Series.Records))
		miaAcc := make([]float64, 0, len(arm.Series.Records))
		for _, r := range arm.Series.Records {
			gen = append(gen, r.GenError)
			miaAcc = append(miaAcc, r.MIAAcc)
		}
		rho, err := stats.Spearman(gen, miaAcc)
		if err != nil {
			continue // too few evaluation rounds for a correlation
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: spearman(genErr, miaAcc) = %.2f", arm.Label, rho))
	}
}

// Figure8Spec (RQ6): per-round MIA accuracy and generalization error on
// the Purchase100-like corpus, 2-regular graph, static vs dynamic.
func Figure8Spec() *spec.Spec {
	var arms []spec.Arm
	for i, dynamic := range []bool{false, true} {
		arms = append(arms, spec.Arm{
			Label:      fmt.Sprintf("purchase100/rounds/k=2/%s", dynLabel(dynamic)),
			Corpus:     string(data.Purchase100),
			Protocol:   "samo",
			ViewSize:   2,
			Dynamics:   dynName(dynamic),
			SeedOffset: 600 + int64(i),
		})
	}
	return &spec.Spec{
		Name:    "Figure 8",
		Caption: "MIA accuracy and generalization error over communication rounds (Purchase100-like, SAMO)",
		Arms:    arms,
	}
}

// RunFigure8 runs the Figure 8 spec.
func RunFigure8(sc Scale) (*FigureResult, error) {
	return RunSpec(context.Background(), Figure8Spec(), sc)
}

// Figure9Spec (RQ7): DP-SGD privacy-budget sweep (plus a non-DP
// baseline) on the Purchase100-like corpus, static vs dynamic.
func Figure9Spec() *spec.Spec {
	var arms []spec.Arm
	var off int64
	budgets := []float64{0, 50, 25, 15, 10} // 0 = non-DP baseline
	for _, eps := range budgets {
		for _, dynamic := range []bool{false, true} {
			label := "nodp"
			var dp *spec.DP
			if eps > 0 {
				label = fmt.Sprintf("eps=%g", eps)
				dp = &spec.DP{Epsilon: eps, Delta: 1e-5, Clip: 1}
			}
			arms = append(arms, spec.Arm{
				Label:      fmt.Sprintf("purchase100/%s/%s", label, dynLabel(dynamic)),
				Corpus:     string(data.Purchase100),
				Protocol:   "samo",
				ViewSize:   5,
				Dynamics:   dynName(dynamic),
				DP:         dp,
				SeedOffset: 700 + off,
			})
			off++
		}
	}
	return &spec.Spec{
		Name:    "Figure 9",
		Caption: "MIA vulnerability and test accuracy vs DP-SGD budget epsilon (delta=1e-5), static vs dynamic",
		Arms:    arms,
	}
}

// RunFigure9 runs the Figure 9 spec.
func RunFigure9(sc Scale) (*FigureResult, error) {
	return RunSpec(context.Background(), Figure9Spec(), sc)
}

func dynLabel(dynamic bool) string {
	if dynamic {
		return "dynamic"
	}
	return "static"
}

// dynName maps the static/dynamic shorthand onto the spec's dynamics
// names ("" is static; "peerswap" is the paper's dynamic mode).
func dynName(dynamic bool) string {
	if dynamic {
		return "peerswap"
	}
	return ""
}
