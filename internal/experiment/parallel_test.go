package experiment

import (
	"testing"
)

// TestFigureIdenticalAcrossWorkerCounts proves the arm-level engine
// yields the same figure — same arm order, same per-round records, same
// aggregate counters — for 1, 2, and 8 workers at a fixed seed.
func TestFigureIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *FigureResult {
		sc := TinyScale()
		sc.Workers = workers
		fig, err := RunFigure3(sc)
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if len(got.Arms) != len(ref.Arms) {
			t.Fatalf("workers=%d: %d arms, want %d", w, len(got.Arms), len(ref.Arms))
		}
		for i, arm := range got.Arms {
			want := ref.Arms[i]
			if arm.Label != want.Label {
				t.Fatalf("workers=%d: arm %d label %q, want %q", w, i, arm.Label, want.Label)
			}
			if arm.MessagesSent != want.MessagesSent || arm.BytesSent != want.BytesSent {
				t.Fatalf("workers=%d arm %q: messages/bytes %d/%d, want %d/%d",
					w, arm.Label, arm.MessagesSent, arm.BytesSent, want.MessagesSent, want.BytesSent)
			}
			if len(arm.Series.Records) != len(want.Series.Records) {
				t.Fatalf("workers=%d arm %q: %d records, want %d",
					w, arm.Label, len(arm.Series.Records), len(want.Series.Records))
			}
			for j, r := range arm.Series.Records {
				if r != want.Series.Records[j] {
					t.Fatalf("workers=%d arm %q record %d = %+v, want %+v",
						w, arm.Label, j, r, want.Series.Records[j])
				}
			}
		}
	}
}

// TestReplicateIdenticalAcrossWorkerCounts checks that the replication
// harness — repeats fanned out in parallel, bootstrap applied to the
// in-order sample streams — reports identical intervals for any worker
// count.
func TestReplicateIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *ReplicatedResult {
		sc := TinyScale()
		sc.Workers = workers
		rep, err := Replicate(RunFigure8, sc, 3, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ref := run(1)
	for _, w := range []int{4} {
		got := run(w)
		if len(got.Arms) != len(ref.Arms) {
			t.Fatalf("workers=%d: %d arms, want %d", w, len(got.Arms), len(ref.Arms))
		}
		for i, arm := range got.Arms {
			if arm != ref.Arms[i] {
				t.Fatalf("workers=%d: arm %d = %+v, want %+v", w, i, arm, ref.Arms[i])
			}
		}
	}
}
