package experiment

import (
	"testing"
)

// TestFigureIdenticalAcrossWorkerCounts proves the arm-level engine
// yields the same figure — same arm order, same per-round records, same
// aggregate counters — for 1, 2, and 8 workers at a fixed seed.
func TestFigureIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *FigureResult {
		sc := TinyScale()
		sc.Workers = workers
		fig, err := RunFigure3(sc)
		if err != nil {
			t.Fatal(err)
		}
		return fig
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if len(got.Arms) != len(ref.Arms) {
			t.Fatalf("workers=%d: %d arms, want %d", w, len(got.Arms), len(ref.Arms))
		}
		for i, arm := range got.Arms {
			want := ref.Arms[i]
			if arm.Label != want.Label {
				t.Fatalf("workers=%d: arm %d label %q, want %q", w, i, arm.Label, want.Label)
			}
			if arm.MessagesSent != want.MessagesSent || arm.BytesSent != want.BytesSent {
				t.Fatalf("workers=%d arm %q: messages/bytes %d/%d, want %d/%d",
					w, arm.Label, arm.MessagesSent, arm.BytesSent, want.MessagesSent, want.BytesSent)
			}
			if len(arm.Series.Records) != len(want.Series.Records) {
				t.Fatalf("workers=%d arm %q: %d records, want %d",
					w, arm.Label, len(arm.Series.Records), len(want.Series.Records))
			}
			for j, r := range arm.Series.Records {
				if r != want.Series.Records[j] {
					t.Fatalf("workers=%d arm %q record %d = %+v, want %+v",
						w, arm.Label, j, r, want.Series.Records[j])
				}
			}
		}
	}
}

// TestReplicateIdenticalAcrossWorkerCounts checks that the replication
// harness — repeats fanned out in parallel, bootstrap applied to the
// in-order sample streams — reports identical intervals for any worker
// count.
func TestReplicateIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *ReplicatedResult {
		sc := TinyScale()
		sc.Workers = workers
		rep, err := Replicate(RunFigure8, sc, 3, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	ref := run(1)
	for _, w := range []int{4} {
		got := run(w)
		if len(got.Arms) != len(ref.Arms) {
			t.Fatalf("workers=%d: %d arms, want %d", w, len(got.Arms), len(ref.Arms))
		}
		for i, arm := range got.Arms {
			if arm != ref.Arms[i] {
				t.Fatalf("workers=%d: arm %d = %+v, want %+v", w, i, arm, ref.Arms[i])
			}
		}
	}
}

// TestInnerWorkersCeilDivision pins the budget split: the division
// rounds up so straggler arms keep most of the budget once short arms
// drain, and a budget smaller than the task count still hands every
// task one worker.
func TestInnerWorkersCeilDivision(t *testing.T) {
	cases := []struct {
		budget, n, want int
	}{
		{8, 3, 3}, // ceil(8/3), not floor
		{8, 2, 4}, // even split unchanged
		{4, 4, 1}, // exact cover
		{2, 5, 1}, // more tasks than workers: one each
		{1, 3, 1}, // serial budget stays serial
		{6, 0, 6}, // degenerate task count clamps to 1
		{6, 1, 6}, // single task gets the whole budget
		{3, 2, 2}, // ceil(3/2)
	}
	for _, c := range cases {
		if got := innerWorkers(c.budget, c.n); got != c.want {
			t.Errorf("innerWorkers(%d, %d) = %d, want %d", c.budget, c.n, got, c.want)
		}
	}
}
