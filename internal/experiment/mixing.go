package experiment

import (
	"fmt"
	"strings"

	"gossipmia/internal/graph"
	"gossipmia/internal/metrics"
	"gossipmia/internal/tensor"
)

// MixingCurve is one λ₂(W*) trajectory of Figure 10: the contraction
// factor of the accumulated mixing product at each checkpoint iteration,
// averaged over independent runs.
type MixingCurve struct {
	Label      string
	Iterations []int
	Mean       []float64
	Std        []float64
}

// MixingResult is the Figure 10 reproduction.
type MixingResult struct {
	Name    string
	Caption string
	Curves  []MixingCurve
}

// Table renders the λ₂ trajectories as rows (one column per checkpoint).
func (m *MixingResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", m.Name, m.Caption)
	if len(m.Curves) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-18s", "arm \\ iter")
	for _, it := range m.Curves[0].Iterations {
		fmt.Fprintf(&b, " %9d", it)
	}
	b.WriteString("\n")
	for _, c := range m.Curves {
		fmt.Fprintf(&b, "%-18s", c.Label)
		for _, v := range c.Mean {
			fmt.Fprintf(&b, " %9.2e", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RunFigure10 reproduces the Section 4 spectral analysis: λ₂(W*) as a
// function of the number of synchronous mixing iterations, for k-regular
// graphs of degree 2, 5, 10 and 25 in the static and dynamic
// (random-permutation) settings, averaged over SpectralRuns runs.
func RunFigure10(sc Scale) (*MixingResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	checkpoints := spectralCheckpoints(sc.SpectralIters)
	res := &MixingResult{
		Name: "Figure 10",
		Caption: fmt.Sprintf(
			"lambda2(W*) vs iterations, n=%d, avg of %d runs", sc.SpectralN, sc.SpectralRuns),
	}
	for _, k := range []int{2, 5, 10, 25} {
		if k >= sc.SpectralN {
			continue
		}
		for _, dynamic := range []bool{false, true} {
			curve, err := mixingCurve(sc, k, dynamic, checkpoints)
			if err != nil {
				return nil, fmt.Errorf("experiment: figure 10 k=%d dynamic=%v: %w", k, dynamic, err)
			}
			res.Curves = append(res.Curves, curve)
		}
	}
	return res, nil
}

// mixingCurve averages the contraction trajectory over independent runs.
func mixingCurve(sc Scale, k int, dynamic bool, checkpoints []int) (MixingCurve, error) {
	setting := "Stat"
	if dynamic {
		setting = "Dyn"
	}
	curve := MixingCurve{
		Label:      fmt.Sprintf("%s, %d-reg", setting, k),
		Iterations: checkpoints,
		Mean:       make([]float64, len(checkpoints)),
		Std:        make([]float64, len(checkpoints)),
	}
	samples := make([][]float64, len(checkpoints))
	for run := 0; run < sc.SpectralRuns; run++ {
		seed := sc.Seed*7_919 + int64(run*1000+k*10)
		if dynamic {
			seed++
		}
		rng := tensor.NewRNG(seed)
		n := sc.SpectralN
		if n*k%2 != 0 {
			n++
		}
		g, err := graph.NewRegular(n, k, rng)
		if err != nil {
			return MixingCurve{}, err
		}
		var seq *graph.Sequence
		if dynamic {
			seq, err = graph.DynamicSequence(g, sc.SpectralIters, rng)
		} else {
			seq, err = graph.StaticSequence(g, sc.SpectralIters)
		}
		if err != nil {
			return MixingCurve{}, err
		}
		for ci, t := range checkpoints {
			lambda, err := seq.ContractionFactor(t, 80, rng)
			if err != nil {
				return MixingCurve{}, err
			}
			samples[ci] = append(samples[ci], lambda)
		}
	}
	for ci := range checkpoints {
		curve.Mean[ci] = metrics.Mean(samples[ci])
		curve.Std[ci] = metrics.Std(samples[ci])
	}
	return curve, nil
}

// spectralCheckpoints returns up to 12 roughly evenly spaced iteration
// counts in [1, total].
func spectralCheckpoints(total int) []int {
	const maxPoints = 12
	step := total / maxPoints
	if step < 1 {
		step = 1
	}
	var out []int
	for t := step; t <= total; t += step {
		out = append(out, t)
	}
	if len(out) == 0 || out[len(out)-1] != total {
		out = append(out, total)
	}
	return out
}
