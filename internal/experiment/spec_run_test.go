package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gossipmia/internal/gossip"
	"gossipmia/internal/metrics"
	"gossipmia/internal/spec"
)

// sweepSpec is a small three-arm spec used across the engine tests: a
// sweep the hand-coded figures never cover (latency × protocol).
func sweepSpec() *spec.Spec {
	return &spec.Spec{
		Name:    "test sweep",
		Caption: "latency grid",
		Sweep: &spec.Sweep{
			Base: spec.Arm{Label: "cifar10", Corpus: "cifar10", Protocol: "samo", ViewSize: 2, SeedOffset: 40},
			Axes: []spec.Axis{{Field: "latency", Values: []any{0.0, 15.0, 30.0}}},
		},
	}
}

func TestRunSpecMatchesFigureRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	// The figure runner is a thin builder over RunSpec: running the
	// emitted spec by hand must reproduce the figure byte for byte.
	sc := TinyScale()
	direct, err := RunFigure8(sc)
	if err != nil {
		t.Fatal(err)
	}
	viaSpec, err := RunSpec(t.Context(), Figure8Spec(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if figureDump(direct) != figureDump(viaSpec) {
		t.Fatal("RunFigure8 and RunSpec(Figure8Spec()) diverge")
	}
}

func TestRunSpecRejectsInvalid(t *testing.T) {
	bad := TinyScale()
	bad.Rounds = 0
	if _, err := RunSpec(t.Context(), sweepSpec(), bad); !errors.Is(err, ErrScale) {
		t.Fatalf("bad scale error = %v", err)
	}
	sp := sweepSpec()
	sp.Sweep.Base.Corpus = "mnist"
	if _, err := RunSpec(t.Context(), sp, TinyScale()); !errors.Is(err, spec.ErrSpec) {
		t.Fatalf("bad spec error = %v", err)
	}
}

func TestRunSpecDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var ref string
	for _, workers := range []int{1, 4} {
		sc := TinyScale()
		sc.Workers = workers
		fig, err := RunSpec(t.Context(), sweepSpec(), sc)
		if err != nil {
			t.Fatal(err)
		}
		dump := figureDump(fig)
		if workers == 1 {
			ref = dump
		} else if dump != ref {
			t.Fatalf("spec run with %d workers diverged from serial run", workers)
		}
	}
}

// TestRunSpecDirWritesArtifacts checks the full run-directory contract:
// manifest, per-arm caches, per-arm event streams, and results.csv.
func TestRunSpecDirWritesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	sc := TinyScale()
	fig, man, err := RunSpecDir(t.Context(), sweepSpec(), sc, SpecRunOptions{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Arms) != 3 || len(man.Arms) != 3 {
		t.Fatalf("arms = %d/%d, want 3", len(fig.Arms), len(man.Arms))
	}
	wantHash, err := sweepSpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if man.SpecHash != wantHash || man.Seed != sc.Seed || man.Spec != "test sweep" {
		t.Fatalf("manifest header = %+v", man)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk SpecManifest
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.SpecHash != wantHash {
		t.Fatalf("on-disk manifest hash = %q", onDisk.SpecHash)
	}
	for i, ar := range man.Arms {
		if ar.Cached {
			t.Fatalf("fresh run reported arm %q cached", ar.Label)
		}
		if ar.ElapsedSeconds <= 0 {
			t.Fatalf("arm %q has no timing", ar.Label)
		}
		// The cache round-trips to the in-memory arm.
		craw, err := os.ReadFile(filepath.Join(dir, ar.ResultFile))
		if err != nil {
			t.Fatal(err)
		}
		var cache armCacheFile
		if err := json.Unmarshal(craw, &cache); err != nil {
			t.Fatal(err)
		}
		if cache.Label != fig.Arms[i].Label || len(cache.Records) != len(fig.Arms[i].Series.Records) {
			t.Fatalf("cache for %q diverges from result", ar.Label)
		}
		// The event stream holds one JSONL line per evaluated round,
		// tagged with the arm label.
		eraw, err := os.ReadFile(filepath.Join(dir, ar.EventsFile))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(eraw)), "\n")
		if len(lines) != len(fig.Arms[i].Series.Records) {
			t.Fatalf("arm %q: %d event lines for %d records", ar.Label, len(lines), len(fig.Arms[i].Series.Records))
		}
		var ev struct {
			Arm string `json:"arm"`
			metrics.RoundRecord
		}
		if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Arm != ar.Label || ev.RoundRecord != fig.Arms[i].Series.Records[0] {
			t.Fatalf("event %+v diverges from record %+v", ev, fig.Arms[i].Series.Records[0])
		}
	}
	results, err := os.ReadFile(filepath.Join(dir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(string(results)), "\n")); got != 4 { // header + 3 arms
		t.Fatalf("results.csv has %d lines:\n%s", got, results)
	}
}

// TestResumeSkipsCompletedArms is the acceptance test for resumable
// sweeps: an interrupted run (here: a run that completed only a prefix
// of the arms) re-invoked with Resume skips the already-completed arms
// and still produces byte-identical output — table, per-round series,
// and on-disk results.csv.
func TestResumeSkipsCompletedArms(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sc := TinyScale()
	full := sweepSpec()

	// Reference: the uninterrupted run.
	refDir := t.TempDir()
	refFig, _, err := RunSpecDir(t.Context(), full, sc, SpecRunOptions{OutDir: refDir})
	if err != nil {
		t.Fatal(err)
	}
	refCSV, err := os.ReadFile(filepath.Join(refDir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: only the first two arms completed before the
	// "crash" (a spec truncated to the prefix writes exactly the cache
	// files an interrupted full run would have left).
	dir := t.TempDir()
	arms, err := full.ExpandArms()
	if err != nil {
		t.Fatal(err)
	}
	partial := &spec.Spec{Name: full.Name, Caption: full.Caption, Arms: arms[:2]}
	if _, _, err := RunSpecDir(t.Context(), partial, sc, SpecRunOptions{OutDir: dir}); err != nil {
		t.Fatal(err)
	}

	// Resume the full sweep in the same directory.
	resumedFig, man, err := RunSpecDir(t.Context(), full, sc, SpecRunOptions{OutDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	var cached, ran int
	for _, ar := range man.Arms {
		if ar.Cached {
			cached++
		} else {
			ran++
		}
	}
	if cached != 2 || ran != 1 {
		t.Fatalf("resume ran %d and skipped %d arms, want 1/2", ran, cached)
	}
	if figureDump(resumedFig) != figureDump(refFig) {
		t.Fatalf("resumed figure diverged from uninterrupted run\n--- resumed ---\n%s\n--- want ---\n%s",
			figureDump(resumedFig), figureDump(refFig))
	}
	gotCSV, err := os.ReadFile(filepath.Join(dir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCSV) != string(refCSV) {
		t.Fatal("resumed results.csv diverged from uninterrupted run")
	}

	// Without -resume the same directory re-runs everything.
	fresh, man2, err := RunSpecDir(t.Context(), full, sc, SpecRunOptions{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, ar := range man2.Arms {
		if ar.Cached {
			t.Fatalf("non-resume run used the cache for %q", ar.Label)
		}
	}
	if figureDump(fresh) != figureDump(refFig) {
		t.Fatal("re-run diverged")
	}
}

// TestResumeIgnoresForeignCache proves the (spec hash, seed) keying: a
// cache written under a different seed or different arm content is not
// trusted on resume.
func TestResumeIgnoresForeignCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sp := &spec.Spec{
		Name: "keyed",
		Arms: []spec.Arm{{Label: "a", Corpus: "cifar10", Protocol: "samo", ViewSize: 2}},
	}
	dir := t.TempDir()
	sc := TinyScale()
	if _, _, err := RunSpecDir(t.Context(), sp, sc, SpecRunOptions{OutDir: dir, Events: "none"}); err != nil {
		t.Fatal(err)
	}
	scOther := sc
	scOther.Seed = sc.Seed + 1
	_, man, err := RunSpecDir(t.Context(), sp, scOther, SpecRunOptions{OutDir: dir, Resume: true, Events: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if man.Arms[0].Cached {
		t.Fatal("resume trusted a cache from a different seed")
	}
	// Same seed, same spec: now the cache is used.
	_, man, err = RunSpecDir(t.Context(), sp, scOther, SpecRunOptions{OutDir: dir, Resume: true, Events: "none"})
	if err != nil {
		t.Fatal(err)
	}
	if !man.Arms[0].Cached {
		t.Fatal("resume ignored a valid cache")
	}
}

func TestRunSpecDirOptionValidation(t *testing.T) {
	sp := sweepSpec()
	if _, _, err := RunSpecDir(t.Context(), sp, TinyScale(), SpecRunOptions{}); err == nil {
		t.Fatal("missing out dir accepted")
	}
	if _, _, err := RunSpecDir(t.Context(), sp, TinyScale(), SpecRunOptions{OutDir: t.TempDir(), Events: "parquet"}); err == nil {
		t.Fatal("unknown event format accepted")
	}
}

func TestArmKeyProperties(t *testing.T) {
	a := spec.Arm{Label: "a", Corpus: "cifar10", Protocol: "samo", ViewSize: 2}
	sc := TinyScale()
	k1, err := armKey(a, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Worker count must not change the key (results are worker-invariant).
	scW := sc
	scW.Workers = 8
	if k2, _ := armKey(a, scW); k2 != k1 {
		t.Fatal("worker count changed the arm key")
	}
	// Seed and arm content must change it.
	scS := sc
	scS.Seed = 99
	if k3, _ := armKey(a, scS); k3 == k1 {
		t.Fatal("seed did not change the arm key")
	}
	b := a
	b.ViewSize = 3
	if k4, _ := armKey(b, sc); k4 == k1 {
		t.Fatal("arm content did not change the arm key")
	}
}

func TestResultsCSVEscapesLabels(t *testing.T) {
	fig := &FigureResult{Arms: []Arm{{
		Label:  `cifar10, "hard" arm`,
		Series: &metrics.Series{Records: []metrics.RoundRecord{{Round: 0}}},
	}}}
	out := resultsCSV(fig)
	if !strings.Contains(out, `"cifar10, ""hard"" arm",`) {
		t.Fatalf("label not CSV-escaped:\n%s", out)
	}
	plain := &FigureResult{Arms: []Arm{{
		Label:  "cifar10/samo",
		Series: &metrics.Series{Records: []metrics.RoundRecord{{Round: 0}}},
	}}}
	if !strings.Contains(resultsCSV(plain), "cifar10/samo,") {
		t.Fatalf("plain label needlessly quoted:\n%s", resultsCSV(plain))
	}
}

func TestSlugify(t *testing.T) {
	if got := slugify("cifar10/samo/k=5/lat=25"); got != "cifar10_samo_k_5_lat_25" {
		t.Fatalf("slugify = %q", got)
	}
	if got := slugify("A-b.c_d"); got != "A-b.c_d" {
		t.Fatalf("slugify = %q", got)
	}
}

func TestDynamicsKindResolution(t *testing.T) {
	for name, want := range map[string]gossip.DynamicsKind{
		"": gossip.DynamicsStatic, "static": gossip.DynamicsStatic,
		"peerswap": gossip.DynamicsPeerSwap, "cyclon": gossip.DynamicsCyclon,
	} {
		kind, err := dynamicsKind(name)
		if err != nil || kind != want {
			t.Fatalf("dynamicsKind(%q) = %v, %v", name, kind, err)
		}
	}
	if _, err := dynamicsKind("brownian"); !errors.Is(err, ErrScale) {
		t.Fatalf("unknown dynamics error = %v", err)
	}
}

// TestRunSpecDirCancellationCheckpoints is the cancellation contract:
// a mid-sweep cancel surfaces ctx.Err() within one arm boundary, the
// out directory holds only atomic (complete) cache files for the arms
// that finished, and a subsequent resume produces output byte-identical
// to an uninterrupted run.
func TestRunSpecDirCancellationCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sc := TinyScale()
	sc.Workers = 1 // deterministic arm order: cancel lands between arm 0 and arm 1

	// Reference: the uninterrupted run.
	refDir := t.TempDir()
	refFig, _, err := RunSpecDir(t.Context(), sweepSpec(), sc, SpecRunOptions{OutDir: refDir})
	if err != nil {
		t.Fatal(err)
	}
	refCSV, err := os.ReadFile(filepath.Join(refDir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel as soon as the first arm checkpoints.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, err = RunSpecDir(ctx, sweepSpec(), sc, SpecRunOptions{
		OutDir:    dir,
		OnArmDone: func(int, SpecArmReport) { cancel() },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled", err)
	}

	// Only complete, atomically-written caches may remain.
	entries, err := os.ReadDir(filepath.Join(dir, "arms"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("cancelled run left %d cache files, want exactly the completed arm", len(entries))
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("cancelled run left a torn temp file %q", e.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); !os.IsNotExist(err) {
		t.Fatalf("cancelled run wrote a manifest (err=%v); an aborted sweep must not look complete", err)
	}

	// Resume completes the remaining arms and is byte-identical.
	resumed, man, err := RunSpecDir(t.Context(), sweepSpec(), sc, SpecRunOptions{OutDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	var cached int
	for _, ar := range man.Arms {
		if ar.Cached {
			cached++
		}
	}
	if cached != 1 {
		t.Fatalf("resume used %d cached arms, want 1 (the arm completed before the cancel)", cached)
	}
	if figureDump(resumed) != figureDump(refFig) {
		t.Fatal("resumed-after-cancel figure diverged from uninterrupted run")
	}
	gotCSV, err := os.ReadFile(filepath.Join(dir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCSV) != string(refCSV) {
		t.Fatal("resumed-after-cancel results.csv diverged from uninterrupted run")
	}
}

// TestRunSpecCancelledBeforeStart covers the trivial boundary: an
// already-cancelled context runs nothing.
func TestRunSpecCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSpec(ctx, sweepSpec(), TinyScale()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestResumeIgnoresCorruptCache is the resume-robustness contract: a
// truncated or content-tampered per-arm cache file is detected (decode
// error / integrity-sum mismatch), ignored, and recomputed — the sweep
// completes with byte-identical results instead of aborting or
// trusting bad data.
func TestResumeIgnoresCorruptCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sc := TinyScale()
	full := sweepSpec()

	refDir := t.TempDir()
	refFig, _, err := RunSpecDir(t.Context(), full, sc, SpecRunOptions{OutDir: refDir})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	_, man, err := RunSpecDir(t.Context(), full, sc, SpecRunOptions{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// Arm 0: truncated mid-JSON (a crash during a non-atomic copy).
	f0 := filepath.Join(dir, man.Arms[0].ResultFile)
	raw, err := os.ReadFile(f0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f0, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Arm 1: decodes fine and keeps its key, but a record was altered —
	// only the integrity sum can catch this.
	f1 := filepath.Join(dir, man.Arms[1].ResultFile)
	raw, err = os.ReadFile(f1)
	if err != nil {
		t.Fatal(err)
	}
	var tampered armCacheFile
	if err := json.Unmarshal(raw, &tampered); err != nil {
		t.Fatal(err)
	}
	if len(tampered.Records) == 0 {
		t.Fatal("cache has no records to tamper with")
	}
	tampered.Records[0].TestAcc += 0.25
	edited, err := json.MarshalIndent(tampered, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f1, edited, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, man2, err := RunSpecDir(t.Context(), full, sc, SpecRunOptions{OutDir: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume over corrupt caches aborted: %v", err)
	}
	if man2.Arms[0].Cached || man2.Arms[1].Cached {
		t.Fatalf("resume trusted a corrupt cache: %+v", man2.Arms)
	}
	if !man2.Arms[2].Cached {
		t.Fatal("resume recomputed the intact arm")
	}
	if figureDump(resumed) != figureDump(refFig) {
		t.Fatal("resume after corruption diverged from the reference run")
	}
}
