package experiment

import (
	"context"
	"fmt"

	"gossipmia/internal/spec"
)

// CatalogEntry is one runnable entry of the scenario catalog: a paper
// figure, an extension scenario, or a pseudo-figure (tables, attacks).
// The catalog is the single source of truth shared by the CLI, the
// pkg/dlsim SDK, and the HTTP service's /v1/catalog: exactly the names
// it lists are the names they accept.
type CatalogEntry struct {
	// Name is the identifier ("2".."9", "latency", "churn", ...).
	Name string
	// Desc is the one-line description shown by listings.
	Desc string
	// Spec builds the entry's declarative scenario at a scale; nil for
	// text-only entries (tables, attacks), which cannot run as specs.
	Spec func(Scale) *spec.Spec
	// Post, when non-nil, amends the figure after the generic executor
	// ran its spec (e.g. the Figure 7 rank-correlation notes).
	Post func(*FigureResult)
	// Text renders a pseudo-figure directly; nil for spec entries.
	Text func(Scale) (string, error)
	// RejectsOverlay marks entries a Scale-level network overlay cannot
	// apply to: text entries, and scenarios that pin their own per-arm
	// networks.
	RejectsOverlay bool
}

// Runnable reports whether the entry is backed by a declarative spec
// (and can therefore run through RunSpec, the job service, and the
// SDK) as opposed to rendering text directly.
func (e CatalogEntry) Runnable() bool { return e.Spec != nil }

// Run executes the entry at a scale: spec entries route through the
// generic executor (honoring ctx and the scale's network overlay
// policy), text entries render their table.
func (e CatalogEntry) Run(ctx context.Context, sc Scale) (*FigureResult, error) {
	if e.Spec == nil {
		return nil, fmt.Errorf("%w: catalog entry %q renders text and cannot run as a spec", ErrScale, e.Name)
	}
	if e.RejectsOverlay {
		if err := rejectOverlay(e.Name, sc); err != nil {
			return nil, err
		}
	}
	fig, err := RunSpec(ctx, e.Spec(sc), sc)
	if err != nil {
		return nil, err
	}
	if e.Post != nil {
		e.Post(fig)
	}
	return fig, nil
}

// Catalog returns the ordered scenario registry — the order "all" runs
// them in.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{Name: "tables", Desc: "Tables 1 and 2: dataset characteristics and training configuration",
			Text: func(Scale) (string, error) {
				return DatasetCatalogTable() + "\n" + TrainingCatalogTable(), nil
			}, RejectsOverlay: true},
		{Name: "2", Desc: "RQ1: SAMO vs Base Gossip, 5-regular static graph, all corpora",
			Spec: func(Scale) *spec.Spec { return Figure2Spec() }},
		{Name: "3", Desc: "RQ2: static vs dynamic topology, 2-regular graph (SAMO)",
			Spec: func(Scale) *spec.Spec { return Figure3Spec() }},
		{Name: "4", Desc: "RQ3: canary worst-case audit (max TPR@1%FPR), static vs dynamic",
			Spec: func(Scale) *spec.Spec { return Figure4Spec() }},
		{Name: "5", Desc: "RQ4: view-size sweep and communication cost (CIFAR-10-like)",
			Spec: Figure5Spec},
		{Name: "6", Desc: "RQ5: Dirichlet non-IID sweep (Purchase100-like)",
			Spec: func(Scale) *spec.Spec { return Figure6Spec() }},
		{Name: "7", Desc: "RQ6: MIA vulnerability vs generalization error, all corpora",
			Spec: func(Scale) *spec.Spec { return Figure7Spec() }, Post: AppendFigure7Notes},
		{Name: "8", Desc: "RQ6: per-round MIA accuracy and generalization error",
			Spec: func(Scale) *spec.Spec { return Figure8Spec() }},
		{Name: "9", Desc: "RQ7: DP-SGD privacy-budget sweep (epsilon)",
			Spec: func(Scale) *spec.Spec { return Figure9Spec() }},
		{Name: "latency", Desc: "network scenario: per-link latency / staleness sweep, SAMO vs Base",
			Spec: func(Scale) *spec.Spec { return LatencySweepSpec() }, RejectsOverlay: true},
		{Name: "churn", Desc: "network scenario: node churn and healing partition recovery",
			Spec: ChurnRecoverySpec, RejectsOverlay: true},
		{Name: "dynamics", Desc: "extension: static vs PeerSwap vs Cyclon peer sampling",
			Spec: func(Scale) *spec.Spec { return DynamicsComparisonSpec() }},
		{Name: "attacks", Desc: "extension: attack score-function comparison on final models",
			Text: func(sc Scale) (string, error) {
				cmp, err := RunAttackComparison(sc)
				if err != nil {
					return "", err
				}
				return cmp.Table(), nil
			}},
	}
}

// CatalogEntryByName resolves a catalog name.
func CatalogEntryByName(name string) (CatalogEntry, bool) {
	for _, e := range Catalog() {
		if e.Name == name {
			return e, true
		}
	}
	return CatalogEntry{}, false
}
