package experiment

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"gossipmia/internal/gossip"
	"gossipmia/internal/netmodel"
)

// -update-golden regenerates the committed figure goldens from the
// current implementation instead of comparing against them.
var updateGolden = flag.Bool("update-golden", false, "regenerate the committed figure goldens")

// figureDump renders a figure the way the golden file was generated:
// the summary table followed by every arm's per-round CSV series.
func figureDump(fig *FigureResult) string {
	var b strings.Builder
	b.WriteString(fig.Table())
	for _, arm := range fig.Arms {
		fmt.Fprintf(&b, "# %s\n%s\n", arm.Label, arm.Series.CSV())
	}
	return b.String()
}

// TestInstantFigureMatchesSeedGolden pins the tentpole's backward
// compatibility: with the default (Instant) transport, the event-driven
// network layer must reproduce the pre-refactor implementation's
// fixed-seed Figure 2 byte for byte — summary table and every per-round
// series value. The golden file was generated at the commit before the
// transport refactor.
func TestInstantFigureMatchesSeedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 8 simulations")
	}
	want, err := os.ReadFile("testdata/figure2_tiny_instant.golden")
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunFigure2(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if got := figureDump(fig); got != string(want) {
		t.Fatalf("Figure 2 output diverged from the pre-refactor golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestLatencyFigureMatchesGolden pins the Latency transport path the
// same way the Instant golden pins the zero-delay path: Figure 2 at
// tiny scale under a latency overlay (mean 20 ticks, 30% jitter) must
// stay byte-identical across refactors — summary table and every
// per-round series value.
func TestLatencyFigureMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 8 simulations")
	}
	sc := TinyScale()
	sc.Net = NetOverlay{Transport: "latency", LatencyTicks: 20, LatencyJitter: 6}
	fig, err := RunFigure2(sc)
	if err != nil {
		t.Fatal(err)
	}
	got := figureDump(fig)
	const path = "testdata/figure2_tiny_latency.golden"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("latency Figure 2 output diverged from the golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestNetworkScenariosDeterministicAcrossWorkers pins the acceptance
// criterion that the Latency and churn/partition scenarios produce
// byte-identical figures for 1, 2, and 8 workers.
func TestNetworkScenariosDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	runners := map[string]func(Scale) (*FigureResult, error){
		"latency": RunLatencySweep,
		"churn":   RunChurnRecovery,
	}
	for name, runner := range runners {
		var ref string
		for _, workers := range []int{1, 2, 8} {
			sc := TinyScale()
			sc.Workers = workers
			fig, err := runner(sc)
			if err != nil {
				t.Fatalf("%s with %d workers: %v", name, workers, err)
			}
			dump := figureDump(fig)
			if workers == 1 {
				ref = dump
			} else if dump != ref {
				t.Fatalf("%s: %d workers diverged from serial run", name, workers)
			}
		}
	}
}

func TestLatencySweepArms(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	fig, err := RunLatencySweep(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Arms) != 6 {
		t.Fatalf("arms = %d, want 6", len(fig.Arms))
	}
	for _, arm := range fig.Arms {
		if len(arm.Series.Records) == 0 {
			t.Fatalf("arm %q produced no records", arm.Label)
		}
	}
}

func TestChurnRecoveryArms(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	fig, err := RunChurnRecovery(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Arms) != 4 {
		t.Fatalf("arms = %d, want 4", len(fig.Arms))
	}
	for _, arm := range fig.Arms {
		if len(arm.Series.Records) == 0 {
			t.Fatalf("arm %q produced no records", arm.Label)
		}
	}
}

func TestScenariosRejectOverlay(t *testing.T) {
	sc := TinyScale()
	sc.Net = NetOverlay{Transport: "latency", LatencyTicks: 200}
	if _, err := RunLatencySweep(sc); err == nil {
		t.Fatal("latency sweep accepted a network overlay")
	}
	if _, err := RunChurnRecovery(sc); err == nil {
		t.Fatal("churn recovery accepted a network overlay")
	}
}

func TestNetOverlayValidate(t *testing.T) {
	bad := []NetOverlay{
		{Transport: "pigeon"},
		{ChurnFraction: 1},
		{ChurnFraction: -0.5},
		{DropProb: 1.5},
		{Transport: "latency", LatencyTicks: -1},
		// Parameters the instant transport would silently ignore are
		// rejected instead.
		{Transport: "instant", LatencyTicks: 5},
		{LatencyTicks: 5},
		{Transport: "instant", BandwidthBytesPerTick: 100},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("bad overlay %d accepted: %+v", i, o)
		}
	}
	good := NetOverlay{Transport: "latency", LatencyTicks: 20, LatencyJitter: 5, ChurnFraction: 0.25}
	if err := good.Validate(); err != nil {
		t.Fatalf("good overlay rejected: %v", err)
	}
}

func TestNetOverlayAppliesToArms(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sc := TinyScale()
	sc.Net = NetOverlay{Transport: "latency", LatencyTicks: 15, LatencyJitter: 5, ChurnFraction: 0.3}
	fig, err := RunFigure8(sc) // the smallest figure: two arms
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Arms) != 2 {
		t.Fatalf("arms = %d", len(fig.Arms))
	}
	// The overlay must actually reach the simulator: under latency and
	// churn the fixed-seed figure cannot match the instant baseline.
	base, err := RunFigure8(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if figureDump(fig) == figureDump(base) {
		t.Fatal("network overlay did not change the simulation")
	}
}

func TestChurnScheduleShape(t *testing.T) {
	events := churnSchedule(9, 300, 1.0/3)
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Node != i || ev.LeaveTick != 100 || ev.RejoinTick != 200 {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if got := churnSchedule(4, 100, 0.99); len(got) != 3 {
		t.Fatalf("cap failed: %d events for 4 nodes", len(got))
	}
	if got := churnSchedule(10, 100, 0); got != nil {
		t.Fatalf("zero fraction produced %v", got)
	}
}

func TestHalfPartitionShape(t *testing.T) {
	parts := halfPartition(10, 300)
	if len(parts) != 1 {
		t.Fatalf("partitions = %d", len(parts))
	}
	p := parts[0]
	if p.FromTick != 100 || p.ToTick != 200 || len(p.Members) != 5 {
		t.Fatalf("partition = %+v", p)
	}
	cfg := gossip.Config{
		Nodes: 10, ViewSize: 2, Rounds: 3,
		Net: netmodel.Config{Kind: netmodel.KindLossy, Partitions: parts},
	}
	if err := cfg.Defaulted().Validate(); err != nil {
		t.Fatalf("half partition invalid: %v", err)
	}
}
