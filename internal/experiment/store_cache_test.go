package experiment

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gossipmia/internal/metrics"
	"gossipmia/internal/spec"
	"gossipmia/internal/store"
)

// storeOpts returns store-backed run options rooted in out.
func storeOpts(out string) SpecRunOptions {
	return SpecRunOptions{
		OutDir:   out,
		StoreDir: filepath.Join(out, "store"),
		Events:   "none",
	}
}

// TestStoreBackendMatchesFileBackend is the migration contract: the
// same sweep through the store backend produces a byte-identical
// results.csv and identical figure to the per-file backend — and no
// arms/ directory at all.
func TestStoreBackendMatchesFileBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sc := TinyScale()

	fileDir := t.TempDir()
	fileFig, _, err := RunSpecDir(t.Context(), sweepSpec(), sc, SpecRunOptions{OutDir: fileDir, Events: "none"})
	if err != nil {
		t.Fatal(err)
	}
	fileCSV, err := os.ReadFile(filepath.Join(fileDir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}

	storeDir := t.TempDir()
	storeFig, man, err := RunSpecDir(t.Context(), sweepSpec(), sc, storeOpts(storeDir))
	if err != nil {
		t.Fatal(err)
	}
	if figureDump(fileFig) != figureDump(storeFig) {
		t.Fatal("store-backed figure diverged from file-backed run")
	}
	storeCSV, err := os.ReadFile(filepath.Join(storeDir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(storeCSV) != string(fileCSV) {
		t.Fatal("store-backed results.csv diverged from file-backed run")
	}
	if _, err := os.Stat(filepath.Join(storeDir, "arms")); !os.IsNotExist(err) {
		t.Fatalf("store-backed run created an arms/ directory (err=%v)", err)
	}
	for _, ar := range man.Arms {
		if ar.ResultFile != "" {
			t.Fatalf("store-backed manifest points at a result file %q", ar.ResultFile)
		}
	}
	// The store holds one record and one index row per arm.
	page, total, err := ListStoreArms(filepath.Join(storeDir, "store"), "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || len(page) != 3 {
		t.Fatalf("listing index has %d/%d rows, want 3", len(page), total)
	}
}

// TestStoreResumeSkipsCompletedArms mirrors the file-backend
// acceptance test: a prefix-complete store-backed sweep resumed over
// the full spec runs only the missing arm and lands byte-identical.
func TestStoreResumeSkipsCompletedArms(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sc := TinyScale()
	full := sweepSpec()

	refDir := t.TempDir()
	refFig, _, err := RunSpecDir(t.Context(), full, sc, SpecRunOptions{OutDir: refDir, Events: "none"})
	if err != nil {
		t.Fatal(err)
	}
	refCSV, err := os.ReadFile(filepath.Join(refDir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	arms, err := full.ExpandArms()
	if err != nil {
		t.Fatal(err)
	}
	partial := &spec.Spec{Name: full.Name, Caption: full.Caption, Arms: arms[:2]}
	if _, _, err := RunSpecDir(t.Context(), partial, sc, storeOpts(dir)); err != nil {
		t.Fatal(err)
	}

	opts := storeOpts(dir)
	opts.Resume = true
	resumed, man, err := RunSpecDir(t.Context(), full, sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	var cached, ran int
	for _, ar := range man.Arms {
		if ar.Cached {
			cached++
		} else {
			ran++
		}
	}
	if cached != 2 || ran != 1 {
		t.Fatalf("store resume ran %d and skipped %d arms, want 1/2", ran, cached)
	}
	if figureDump(resumed) != figureDump(refFig) {
		t.Fatal("store-backed resume diverged from uninterrupted run")
	}
	gotCSV, err := os.ReadFile(filepath.Join(dir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCSV) != string(refCSV) {
		t.Fatal("store-backed resumed results.csv diverged")
	}
}

// TestStoreResumeSurvivesTornLog is crash consistency end to end: kill
// a store-backed sweep by tearing its write-ahead log at an arbitrary
// point, resume, and the sweep completes byte-identically — recovered
// arms are trusted, torn ones recomputed, and the listing index is
// repaired where the tear split a record from its index row.
func TestStoreResumeSurvivesTornLog(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sc := TinyScale()
	full := sweepSpec()
	arms, err := full.ExpandArms()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(arms))
	for i, a := range arms {
		if keys[i], err = armKey(a, sc); err != nil {
			t.Fatal(err)
		}
	}

	refDir := t.TempDir()
	refFig, _, err := RunSpecDir(t.Context(), full, sc, SpecRunOptions{OutDir: refDir, Events: "none"})
	if err != nil {
		t.Fatal(err)
	}
	refCSV, err := os.ReadFile(filepath.Join(refDir, "results.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Tear at several depths: just the final index row, mid final
	// record, and most of the log.
	for _, frac := range []float64{0.99, 0.6, 0.25} {
		t.Run(fmt.Sprintf("tear=%.2f", frac), func(t *testing.T) {
			dir := t.TempDir()
			if _, _, err := RunSpecDir(t.Context(), full, sc, storeOpts(dir)); err != nil {
				t.Fatal(err)
			}
			logPath := filepath.Join(dir, "store", "wal.log")
			fi, err := os.Stat(logPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(logPath, int64(float64(fi.Size())*frac)); err != nil {
				t.Fatal(err)
			}

			// Which arm records survived the tear determines the
			// expected cache hits.
			st, err := store.Open(filepath.Join(dir, "store"), store.Options{NoBackground: true})
			if err != nil {
				t.Fatal(err)
			}
			wantCached := 0
			for _, k := range keys {
				if ok, err := st.Has(storeArmKey(k)); err != nil {
					t.Fatal(err)
				} else if ok {
					wantCached++
				}
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if wantCached == len(arms) && frac < 0.9 {
				t.Fatalf("tear at %.2f left all %d records durable; test tears nothing", frac, wantCached)
			}

			opts := storeOpts(dir)
			opts.Resume = true
			resumed, man, err := RunSpecDir(t.Context(), full, sc, opts)
			if err != nil {
				t.Fatalf("resume over torn log: %v", err)
			}
			cached := 0
			for _, ar := range man.Arms {
				if ar.Cached {
					cached++
				}
			}
			if cached != wantCached {
				t.Fatalf("resume used %d cached arms, want %d (the durable set)", cached, wantCached)
			}
			if figureDump(resumed) != figureDump(refFig) {
				t.Fatal("resume after torn log diverged from reference")
			}
			gotCSV, err := os.ReadFile(filepath.Join(dir, "results.csv"))
			if err != nil {
				t.Fatal(err)
			}
			if string(gotCSV) != string(refCSV) {
				t.Fatal("results.csv after torn-log resume diverged")
			}
			// The listing index is whole again after the resume.
			_, total, err := ListStoreArms(filepath.Join(dir, "store"), "", 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			if total != len(arms) {
				t.Fatalf("listing index has %d rows after repair, want %d", total, len(arms))
			}
		})
	}
}

// TestLegacyCacheMigratesIntoStore: pointing a store at a pre-store
// run directory serves resume hits from the old per-arm files and
// migrates them, so the next resume never touches arms/ again.
func TestLegacyCacheMigratesIntoStore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sc := TinyScale()
	dir := t.TempDir()
	// A file-backed run leaves arms/*.json.
	refFig, _, err := RunSpecDir(t.Context(), sweepSpec(), sc, SpecRunOptions{OutDir: dir, Events: "none"})
	if err != nil {
		t.Fatal(err)
	}

	opts := storeOpts(dir)
	opts.Resume = true
	migrated, man, err := RunSpecDir(t.Context(), sweepSpec(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ar := range man.Arms {
		if !ar.Cached {
			t.Fatalf("legacy cache miss for %q", ar.Label)
		}
	}
	if figureDump(migrated) != figureDump(refFig) {
		t.Fatal("legacy-migrated resume diverged")
	}

	// Remove the legacy files: the store alone now serves everything.
	if err := os.RemoveAll(filepath.Join(dir, "arms")); err != nil {
		t.Fatal(err)
	}
	again, man2, err := RunSpecDir(t.Context(), sweepSpec(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, ar := range man2.Arms {
		if !ar.Cached {
			t.Fatalf("store miss after migration for %q", ar.Label)
		}
	}
	if figureDump(again) != figureDump(refFig) {
		t.Fatal("post-migration resume diverged")
	}
}

// TestPartialCSVOnCancel is the streaming-results contract, both
// backends: a cancelled sweep leaves a parseable results.csv holding
// the header plus one row per completed arm, and resume regenerates
// the canonical full file.
func TestPartialCSVOnCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	for _, backend := range []string{"files", "store"} {
		t.Run(backend, func(t *testing.T) {
			sc := TinyScale()
			sc.Workers = 1 // deterministic: cancel lands between arm 0 and 1
			dir := t.TempDir()
			opts := SpecRunOptions{OutDir: dir, Events: "none"}
			if backend == "store" {
				opts.StoreDir = filepath.Join(dir, "store")
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opts.OnArmDone = func(int, SpecArmReport) { cancel() }
			_, _, err := RunSpecDir(ctx, sweepSpec(), sc, opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run error = %v", err)
			}

			raw, err := os.ReadFile(filepath.Join(dir, "results.csv"))
			if err != nil {
				t.Fatalf("cancelled run left no partial results.csv: %v", err)
			}
			lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
			if len(lines) != 2 { // header + the one completed arm
				t.Fatalf("partial results.csv has %d lines, want 2:\n%s", len(lines), raw)
			}
			if lines[0] != strings.TrimSuffix(resultsCSVHeader, "\n") {
				t.Fatalf("partial results.csv header = %q", lines[0])
			}

			// Resume regenerates the canonical file.
			refDir := t.TempDir()
			refOpts := SpecRunOptions{OutDir: refDir, Events: "none"}
			if _, _, err := RunSpecDir(t.Context(), sweepSpec(), sc, refOpts); err != nil {
				t.Fatal(err)
			}
			refCSV, err := os.ReadFile(filepath.Join(refDir, "results.csv"))
			if err != nil {
				t.Fatal(err)
			}
			opts.OnArmDone = nil
			opts.Resume = true
			if _, _, err := RunSpecDir(t.Context(), sweepSpec(), sc, opts); err != nil {
				t.Fatal(err)
			}
			gotCSV, err := os.ReadFile(filepath.Join(dir, "results.csv"))
			if err != nil {
				t.Fatal(err)
			}
			if string(gotCSV) != string(refCSV) {
				t.Fatal("resumed results.csv diverged from reference")
			}
		})
	}
}

// TestListStoreArmsPaging drives the listing index: figure filtering,
// label ordering, and limit/offset paging — all without touching
// record bodies.
func TestListStoreArmsPaging(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{NoBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic index rows for two figures.
	putIdx := func(fig, label, key string) {
		t.Helper()
		arm := Arm{Label: label, Series: &metrics.Series{Label: label, Records: []metrics.RoundRecord{{Round: 3, TestAcc: 0.5}}}}
		idx, err := json.Marshal(storeArmSummary(fig, key, arm))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(storeIndexKey(fig, label, key), idx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 7; i++ {
		putIdx("figure2", fmt.Sprintf("arm-%02d", i), fmt.Sprintf("%064x", i))
	}
	for i := 0; i < 3; i++ {
		putIdx("figure9", fmt.Sprintf("arm-%02d", i), fmt.Sprintf("%064x", 100+i))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	page, total, err := ListStoreArms(dir, "figure2", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 || len(page) != 3 {
		t.Fatalf("figure2 page = %d rows of %d, want 3 of 7", len(page), total)
	}
	if page[0].Label != "arm-02" || page[2].Label != "arm-04" {
		t.Fatalf("page window = %q..%q, want arm-02..arm-04", page[0].Label, page[2].Label)
	}
	// No filter: both figures, figure name ordering first.
	all, total, err := ListStoreArms(dir, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 || len(all) != 10 {
		t.Fatalf("unfiltered = %d of %d, want 10 of 10", len(all), total)
	}
	if all[0].Spec != "figure2" || all[9].Spec != "figure9" {
		t.Fatalf("unfiltered order: first=%s last=%s", all[0].Spec, all[9].Spec)
	}
	// Offset past the end pages empty but still counts.
	none, total, err := ListStoreArms(dir, "figure9", 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || len(none) != 0 {
		t.Fatalf("past-end page = %d of %d, want 0 of 3", len(none), total)
	}
}

// --- the acceptance benchmark: resume-scan, per-file vs store ---

// benchArmRecords builds n synthetic cache records with realistic
// shapes: 64-hex content-hash keys and canonical armCacheFile JSON.
func benchArmRecords(b *testing.B, n int) ([]string, [][]byte) {
	b.Helper()
	keys := make([]string, n)
	raws := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
		cache := armCacheFile{
			Label: fmt.Sprintf("purchase100 beta=%.4f", 0.1+float64(i)*0.0005),
			Key:   keys[i],
			Records: []metrics.RoundRecord{{
				Round: 3, TestAcc: 0.61, MIAAcc: 0.52, TPRAt1FPR: 0.08, GenError: 0.10,
			}},
			MessagesSent: 1000 + i,
			BytesSent:    64000 + i,
		}
		sum, err := cache.checksum()
		if err != nil {
			b.Fatal(err)
		}
		cache.Sum = sum
		raw, err := json.MarshalIndent(cache, "", " ")
		if err != nil {
			b.Fatal(err)
		}
		raws[i] = raw
	}
	return keys, raws
}

// BenchmarkResumeScan measures what resume pays to retrieve every
// cached arm record, per-file backend vs store backend — the
// acceptance number for the store migration. Both sides return the
// same raw bytes (validation and decode cost downstream is identical
// and excluded); the difference is pure storage-crossing cost: one
// open+read+close per arm vs one ordered scan of a segment set.
func BenchmarkResumeScan(b *testing.B) {
	const n = 5000
	keys, raws := benchArmRecords(b, n)

	b.Run("files", func(b *testing.B) {
		dir := b.TempDir()
		paths := make([]string, n)
		for i := range keys {
			paths[i] = filepath.Join(dir, fmt.Sprintf("arm-%s.json", keys[i][:8]))
			if err := os.WriteFile(paths[i], raws[i], 0o644); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			total := 0
			for _, p := range paths {
				raw, err := os.ReadFile(p)
				if err != nil {
					b.Fatal(err)
				}
				total += len(raw)
			}
			if total == 0 {
				b.Fatal("read nothing")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/arm")
	})

	b.Run("store", func(b *testing.B) {
		dir := b.TempDir()
		st, err := store.Open(dir, store.Options{NoBackground: true})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		for i := range keys {
			if err := st.Put(storeArmKey(keys[i]), raws[i]); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Flush(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			total, count := 0, 0
			err := st.Scan(storeArmPrefix, store.PrefixEnd(storeArmPrefix), func(k string, v []byte) error {
				total += len(v)
				count++
				return nil
			})
			if err != nil || count != n {
				b.Fatalf("scan: count=%d err=%v", count, err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/arm")
	})
}
