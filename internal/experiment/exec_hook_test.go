package experiment

// ArmExecutor hook contract: substituting a remote-style execution for
// any subset of arms must leave every run-directory artifact — the
// results.csv, the per-arm caches, the event streams — byte-identical
// to a plain in-process run. This is the engine-level half of the
// distributed-execution acceptance criterion.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gossipmia/internal/spec"
)

// remoteStyleExec re-executes the offered arm the way a worker does:
// a fresh single-arm spec run from the unit's own scale, completely
// outside the hooked run's engine state.
func remoteStyleExec(ctx context.Context, u ArmUnit) (Arm, bool, error) {
	one := &spec.Spec{Name: u.Spec, Arms: []spec.Arm{u.Arm}}
	sc := u.Scale
	sc.Workers = 1 // any value yields identical records
	fig, err := RunSpec(ctx, one, sc)
	if err != nil {
		return Arm{}, true, err
	}
	return fig.Arms[0], true, nil
}

// dirBytes maps every file under dir to its contents, keyed by path
// relative to dir.
func dirBytes(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(raw)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRunSpecDirExecHookByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sc := TinyScale()
	refDir := t.TempDir()
	refFig, _, err := RunSpecDir(t.Context(), sweepSpec(), sc, SpecRunOptions{OutDir: refDir})
	if err != nil {
		t.Fatal(err)
	}

	hookedDir := t.TempDir()
	hookedFig, _, err := RunSpecDir(t.Context(), sweepSpec(), sc, SpecRunOptions{
		OutDir: hookedDir,
		Exec:   remoteStyleExec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if figureDump(refFig) != figureDump(hookedFig) {
		t.Fatal("exec-hooked figure diverged from plain run")
	}
	ref, hooked := dirBytes(t, refDir), dirBytes(t, hookedDir)
	if len(ref) != len(hooked) {
		t.Fatalf("artifact sets differ: %d vs %d files", len(ref), len(hooked))
	}
	for rel, want := range ref {
		got, ok := hooked[rel]
		if !ok {
			t.Fatalf("hooked run missing artifact %s", rel)
		}
		if rel == "manifest.json" {
			// The manifest carries wall-clock fields (startedAt, elapsed)
			// that legitimately differ; its result-bearing content is
			// covered by the caches, streams, and results.csv below.
			continue
		}
		if got != want {
			t.Fatalf("artifact %s differs between plain and exec-hooked runs", rel)
		}
	}
}

// TestExecHookDecline: handled=false falls back to local execution per
// arm — a hook that declines everything reproduces the plain run.
func TestExecHookDecline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	sc := TinyScale()
	ref, err := RunSpec(t.Context(), sweepSpec(), sc)
	if err != nil {
		t.Fatal(err)
	}
	offered := 0
	declined, err := RunSpecExec(t.Context(), sweepSpec(), sc, nil,
		func(ctx context.Context, u ArmUnit) (Arm, bool, error) {
			offered++
			return Arm{}, false, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if offered != 3 {
		t.Fatalf("hook consulted for %d arms, want 3", offered)
	}
	if figureDump(ref) != figureDump(declined) {
		t.Fatal("declining hook diverged from plain run")
	}
}

// TestExecHookErrorPropagates: a hook failure fails the run (the
// engine does not silently fall back when the executor errs).
func TestExecHookErrorPropagates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	boom := errors.New("fleet exploded")
	_, err := RunSpecExec(t.Context(), sweepSpec(), TinyScale(), nil,
		func(ctx context.Context, u ArmUnit) (Arm, bool, error) {
			return Arm{}, true, fmt.Errorf("arm %s: %w", u.Arm.Label, boom)
		})
	if !errors.Is(err, boom) {
		t.Fatalf("hook error = %v, want wrapped executor failure", err)
	}
}

// TestExecHookRejectsMislabeledResult: a result whose label does not
// match the offered arm is a protocol violation, not data.
func TestExecHookRejectsMislabeledResult(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	_, err := RunSpecExec(t.Context(), sweepSpec(), TinyScale(), nil,
		func(ctx context.Context, u ArmUnit) (Arm, bool, error) {
			a, _, err := remoteStyleExec(ctx, u)
			if err != nil {
				return Arm{}, true, err
			}
			a.Label = "impostor"
			return a, true, nil
		})
	if err == nil {
		t.Fatal("mislabeled executor result was accepted")
	}
}
