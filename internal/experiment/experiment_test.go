package experiment

import (
	"errors"
	"strings"
	"testing"

	"gossipmia/internal/data"
)

func TestScaleValidation(t *testing.T) {
	for _, sc := range []Scale{QuickScale(), PaperScale(), TinyScale()} {
		if err := sc.Validate(); err != nil {
			t.Fatalf("preset scale rejected: %v", err)
		}
	}
	bad := QuickScale()
	bad.Nodes = 1
	if err := bad.Validate(); !errors.Is(err, ErrScale) {
		t.Fatalf("bad scale error = %v", err)
	}
	bad = QuickScale()
	bad.SpectralRuns = 0
	if err := bad.Validate(); !errors.Is(err, ErrScale) {
		t.Fatalf("bad spectral scale error = %v", err)
	}
}

func TestScaleNodesForCIFAR100(t *testing.T) {
	sc := PaperScale()
	if sc.nodesFor("cifar100") != 60 {
		t.Fatalf("cifar100 nodes = %d, want 60", sc.nodesFor("cifar100"))
	}
	if sc.nodesFor("cifar10") != 150 {
		t.Fatalf("cifar10 nodes = %d, want 150", sc.nodesFor("cifar10"))
	}
}

func TestTrainingCatalogCoversAllCorpora(t *testing.T) {
	rows := TrainingCatalog()
	if len(rows) != 4 {
		t.Fatalf("catalog has %d rows", len(rows))
	}
	for _, corpus := range data.AllCorpora() {
		cfg, err := TrainingFor(corpus)
		if err != nil {
			t.Fatalf("%s: %v", corpus, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s config invalid: %v", corpus, err)
		}
	}
	if _, err := TrainingFor("nope"); err == nil {
		t.Fatal("unknown corpus accepted")
	}
}

func TestCatalogTables(t *testing.T) {
	t1 := DatasetCatalogTable()
	for _, want := range []string{"Table 1", "cifar10", "purchase100", "157859"} {
		if !strings.Contains(t1, want) {
			t.Fatalf("table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := TrainingCatalogTable()
	for _, want := range []string{"Table 2", "ResNet-8", "cifar100", "hidden"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("table 2 missing %q:\n%s", want, t2)
		}
	}
}

func TestRunFigure2Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runner")
	}
	sc := TinyScale()
	fig, err := RunFigure2(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Arms) != 8 { // 4 corpora x 2 protocols
		t.Fatalf("figure 2 has %d arms, want 8", len(fig.Arms))
	}
	table := fig.Table()
	for _, want := range []string{"Figure 2", "cifar10/base", "purchase100/samo"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	for _, arm := range fig.Arms {
		if len(arm.Series.Records) == 0 {
			t.Fatalf("arm %s has no records", arm.Label)
		}
		if arm.MessagesSent == 0 {
			t.Fatalf("arm %s sent no messages", arm.Label)
		}
	}
}

func TestRunFigure5Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runner")
	}
	sc := TinyScale()
	fig, err := RunFigure5(sc)
	if err != nil {
		t.Fatal(err)
	}
	// k in {2,5} fit in 6 nodes; 10 and 25 skipped -> 4 arms.
	if len(fig.Arms) != 4 {
		t.Fatalf("figure 5 has %d arms, want 4", len(fig.Arms))
	}
	// SAMO message volume must grow with view size.
	var k2static, k5static int
	for _, arm := range fig.Arms {
		switch arm.Label {
		case "cifar10/samo/k=2/static":
			k2static = arm.MessagesSent
		case "cifar10/samo/k=5/static":
			k5static = arm.MessagesSent
		}
	}
	if k5static <= k2static {
		t.Fatalf("k=5 messages %d should exceed k=2 messages %d", k5static, k2static)
	}
}

func TestRunFigure6Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runner")
	}
	sc := TinyScale()
	fig, err := RunFigure6(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Arms) != 6 { // {iid, 0.5, 0.1} x {static, dynamic}
		t.Fatalf("figure 6 has %d arms, want 6", len(fig.Arms))
	}
}

func TestRunFigure7NotesAndPlots(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runner")
	}
	sc := TinyScale()
	sc.Rounds = 4
	sc.EvalEvery = 1 // enough points for a rank correlation
	fig, err := RunFigure7(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Notes) == 0 {
		t.Fatal("figure 7 should carry spearman notes")
	}
	if !strings.Contains(fig.Table(), "spearman") {
		t.Fatalf("table missing correlation notes:\n%s", fig.Table())
	}
	scatter, err := fig.TradeoffPlot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(scatter, "MIA accuracy") {
		t.Fatalf("tradeoff plot missing labels:\n%s", scatter)
	}
	gen, err := fig.GenErrorPlot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gen, "generalization error") {
		t.Fatalf("gen-error plot missing labels:\n%s", gen)
	}
}

func TestRunFigure9Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runner")
	}
	sc := TinyScale()
	fig, err := RunFigure9(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Arms) != 10 { // {nodp, 50, 25, 15, 10} x {static, dynamic}
		t.Fatalf("figure 9 has %d arms, want 10", len(fig.Arms))
	}
	for _, arm := range fig.Arms {
		isDP := strings.Contains(arm.Label, "eps=")
		if isDP && arm.RealizedEpsilon <= 0 {
			t.Fatalf("DP arm %s has no realized epsilon", arm.Label)
		}
		if !isDP && arm.RealizedEpsilon != 0 {
			t.Fatalf("non-DP arm %s has epsilon %v", arm.Label, arm.RealizedEpsilon)
		}
	}
}

func TestRunFigure10Tiny(t *testing.T) {
	sc := TinyScale()
	res, err := RunFigure10(sc)
	if err != nil {
		t.Fatal(err)
	}
	// k in {2,5,10} fit in 16 nodes; 25 skipped -> 6 curves.
	if len(res.Curves) != 6 {
		t.Fatalf("figure 10 has %d curves, want 6", len(res.Curves))
	}
	table := res.Table()
	if !strings.Contains(table, "Figure 10") || !strings.Contains(table, "Dyn, 2-reg") {
		t.Fatalf("table missing headers:\n%s", table)
	}
	// The paper's claim: for every k, the dynamic curve ends at a lower
	// (or equal) lambda2 than the static one, and lambda2 decreases with
	// iterations.
	byLabel := map[string]MixingCurve{}
	for _, c := range res.Curves {
		byLabel[c.Label] = c
	}
	for _, k := range []int{2, 5, 10} {
		stat, ok1 := byLabel[armName("Stat", k)]
		dyn, ok2 := byLabel[armName("Dyn", k)]
		if !ok1 || !ok2 {
			t.Fatalf("missing curves for k=%d: %v", k, byLabel)
		}
		last := len(stat.Mean) - 1
		if dyn.Mean[last] > stat.Mean[last]+1e-9 {
			t.Fatalf("k=%d: dynamic final lambda2 %v above static %v",
				k, dyn.Mean[last], stat.Mean[last])
		}
		if stat.Mean[last] > stat.Mean[0]+1e-9 {
			t.Fatalf("k=%d: static lambda2 not decreasing: %v -> %v",
				k, stat.Mean[0], stat.Mean[last])
		}
	}
}

func armName(setting string, k int) string {
	return setting + ", " + itoa(k) + "-reg"
}

func itoa(k int) string {
	switch k {
	case 2:
		return "2"
	case 5:
		return "5"
	case 10:
		return "10"
	case 25:
		return "25"
	}
	return "?"
}

func TestSpectralCheckpoints(t *testing.T) {
	cps := spectralCheckpoints(60)
	if len(cps) == 0 || cps[len(cps)-1] != 60 {
		t.Fatalf("checkpoints %v must end at 60", cps)
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Fatalf("checkpoints not increasing: %v", cps)
		}
	}
	one := spectralCheckpoints(1)
	if len(one) != 1 || one[0] != 1 {
		t.Fatalf("checkpoints(1) = %v", one)
	}
}

func TestRunArmsRejectsBadScale(t *testing.T) {
	bad := TinyScale()
	bad.Rounds = 0
	if _, err := RunFigure2(bad); !errors.Is(err, ErrScale) {
		t.Fatalf("bad scale error = %v", err)
	}
	if _, err := RunFigure10(bad); !errors.Is(err, ErrScale) {
		t.Fatalf("figure 10 bad scale error = %v", err)
	}
}
