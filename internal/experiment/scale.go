// Package experiment reproduces each table and figure of the paper's
// evaluation: it builds the per-arm core.Study configurations, runs them,
// and renders the resulting rows/series. Every runner takes a Scale so
// the same code serves the quick in-repo reproduction and the paper-size
// deployment (150 nodes, 250–500 rounds).
package experiment

import (
	"errors"
	"fmt"
	"strings"
)

// ErrScale is returned for unusable scales.
var ErrScale = errors.New("experiment: invalid scale")

// Scale sets the size of every experiment.
type Scale struct {
	// Nodes is the network size (paper: 150; 60 for CIFAR-100).
	Nodes         int
	NodesCIFAR100 int
	// Rounds is the number of communication rounds (paper: 250–500).
	Rounds int
	// TrainPerNode / TestPerNode size each node's member and non-member
	// splits.
	TrainPerNode, TestPerNode int
	// GlobalTestSize sizes the held-out global test set.
	GlobalTestSize int
	// EvalEvery / EvalNodes bound the per-round evaluation cost.
	EvalEvery, EvalNodes int
	// Canaries is the planted-canary count for RQ3 (paper: 600, 1500
	// for Purchase100).
	Canaries int
	// Spectral* size the Figure 10 analysis: network size, product
	// length, and averaging runs (paper: n=150, ~125 iterations, 50 runs).
	SpectralN, SpectralIters, SpectralRuns int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds the goroutines the experiment engine uses to run
	// independent study arms and, within each arm, the node-parallel
	// tick engine, the per-node evaluation fan-out, and the worker-tiled
	// GEMM kernels: 0 means one worker per CPU, 1 forces the serial
	// paths. The budget is divided across the fan-out levels
	// (replication repeats > arms > intra-arm); the kernel layer nests
	// inside the intra-arm fan-outs with the same budget but engages
	// only above a matrix-size threshold, so nested oversubscription
	// stays transient and bounded. Each arm owns its seed and RNG
	// streams and the intra-arm layers are deterministic by
	// construction, so results are byte-identical for every worker
	// count.
	Workers int
	// Net overlays a network model (transport, latency, loss, churn) on
	// every arm; the zero value keeps the Instant transport, i.e. the
	// seed semantics. Scenario runners that pin their own network per
	// arm ignore the overlay for those arms.
	Net NetOverlay
}

// Validate reports scale errors.
func (s Scale) Validate() error {
	if s.Nodes < 4 || s.Rounds < 1 || s.TrainPerNode < 2 || s.TestPerNode < 2 {
		return fmt.Errorf("%w: nodes=%d rounds=%d train=%d test=%d",
			ErrScale, s.Nodes, s.Rounds, s.TrainPerNode, s.TestPerNode)
	}
	if s.SpectralN < 4 || s.SpectralIters < 1 || s.SpectralRuns < 1 {
		return fmt.Errorf("%w: spectral n=%d iters=%d runs=%d",
			ErrScale, s.SpectralN, s.SpectralIters, s.SpectralRuns)
	}
	return s.Net.Validate()
}

// nodesFor returns the network size for a corpus (the paper uses 60
// nodes for CIFAR-100, 150 elsewhere).
func (s Scale) nodesFor(corpus string) int {
	if corpus == "cifar100" && s.NodesCIFAR100 > 0 {
		return s.NodesCIFAR100
	}
	return s.Nodes
}

// ScaleByName resolves a named scale preset — the single resolver the
// CLI, the SDK, and the job service all route through.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return TinyScale(), nil
	case "quick":
		return QuickScale(), nil
	case "paper":
		return PaperScale(), nil
	default:
		return Scale{}, fmt.Errorf("unknown scale %q (want %s)", name, strings.Join(ScaleNames(), ", "))
	}
}

// ScaleNames lists the named presets ScaleByName accepts.
func ScaleNames() []string { return []string{"tiny", "quick", "paper"} }

// QuickScale is the laptop-scale preset used by tests, benchmarks, and
// the examples: every figure reproduces in seconds to a couple of
// minutes on one core while preserving the paper's qualitative shape.
func QuickScale() Scale {
	return Scale{
		Nodes:          12,
		NodesCIFAR100:  8,
		Rounds:         12,
		TrainPerNode:   40,
		TestPerNode:    40,
		GlobalTestSize: 200,
		EvalEvery:      3,
		EvalNodes:      8,
		Canaries:       24,
		SpectralN:      60,
		SpectralIters:  60,
		SpectralRuns:   5,
		Seed:           1,
	}
}

// PaperScale is the full deployment of Section 3.1. Running it in pure
// Go on one core takes hours per figure; it exists so the harness can be
// pointed at the paper's exact sizes.
func PaperScale() Scale {
	return Scale{
		Nodes:          150,
		NodesCIFAR100:  60,
		Rounds:         250,
		TrainPerNode:   128,
		TestPerNode:    128,
		GlobalTestSize: 2048,
		EvalEvery:      10,
		EvalNodes:      30,
		Canaries:       600,
		SpectralN:      150,
		SpectralIters:  125,
		SpectralRuns:   50,
		Seed:           1,
	}
}

// TinyScale is the smallest viable scale, used by unit tests of the
// runners themselves.
func TinyScale() Scale {
	return Scale{
		Nodes:          6,
		NodesCIFAR100:  6,
		Rounds:         3,
		TrainPerNode:   12,
		TestPerNode:    12,
		GlobalTestSize: 60,
		EvalEvery:      3,
		EvalNodes:      4,
		Canaries:       12,
		SpectralN:      16,
		SpectralIters:  10,
		SpectralRuns:   2,
		Seed:           1,
	}
}
