package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"gossipmia/internal/core"
	"gossipmia/internal/data"
	"gossipmia/internal/faultinject"
	"gossipmia/internal/gossip"
	"gossipmia/internal/metrics"
	"gossipmia/internal/netmodel"
	"gossipmia/internal/par"
	"gossipmia/internal/sink"
	"gossipmia/internal/spec"
	"gossipmia/internal/store"
)

// ErrArmPanic marks an arm execution that panicked. The executor
// converts the panic — wherever it happened, nested worker pools
// included — into this error carrying the panic value and stack, so one
// broken arm fails its own run instead of killing the process (and
// every sibling job riding in it).
var ErrArmPanic = errors.New("experiment: arm panicked")

// IsTransient reports whether err is worth retrying: the run failed on
// something expected to clear (sink I/O, injected faults) rather than
// on the scenario itself. Panics and validation errors are never
// transient. See core.ErrTransient for the taxonomy.
func IsTransient(err error) bool { return core.IsTransient(err) }

// RunSpec is the one generic executor every figure and scenario routes
// through: it expands and validates the spec's arms, runs each as a
// core.Study at the given scale on the worker pool, and assembles the
// figure. Arms are fully independent — each derives its seed from the
// scale and its own seed offset — and land in spec order, so the figure
// is byte-identical to a serial run for any worker count.
//
// Cancelling ctx stops the run promptly: no new arm is started, arms in
// flight abort at their next round boundary, and the call returns an
// error wrapping ctx.Err().
func RunSpec(ctx context.Context, sp *spec.Spec, sc Scale) (*FigureResult, error) {
	return runSpecHooked(ctx, sp, sc, specHooks{})
}

// RunSpecSinks runs a spec like RunSpec, additionally streaming every
// arm's evaluated rounds into the sink returned by sinkFor — the
// entry point the HTTP job service and the pkg/dlsim SDK attach their
// observers to. sinkFor is called once per arm (from worker goroutines,
// distinct arms per call) and may return a nil sink to skip an arm's
// stream; each non-nil sink is closed after the arm's last record.
func RunSpecSinks(ctx context.Context, sp *spec.Spec, sc Scale, sinkFor func(i int, label string) (sink.Sink, error)) (*FigureResult, error) {
	return RunSpecExec(ctx, sp, sc, sinkFor, nil)
}

// RunSpecExec runs a spec like RunSpecSinks with an additional remote
// executor consulted for every non-cached arm — the entry point the
// job service's distributed dispatcher rides on. exec may be nil.
func RunSpecExec(ctx context.Context, sp *spec.Spec, sc Scale, sinkFor func(i int, label string) (sink.Sink, error), exec ArmExecutor) (*FigureResult, error) {
	h := specHooks{exec: exec}
	if sinkFor != nil {
		h.sinks = func(i int, a spec.Arm) (sink.Sink, error) { return sinkFor(i, a.Label) }
	}
	return runSpecHooked(ctx, sp, sc, h)
}

// ArmUnit describes one arm of a spec run as an independently
// executable unit of work: everything a remote executor needs to
// reproduce the arm byte-for-byte. Key is the arm's content hash —
// sha256(arm JSON, scale fingerprint with the worker count zeroed) —
// so two units with equal keys produce identical bytes no matter
// where or how often they run.
type ArmUnit struct {
	Index int
	Key   string
	Spec  string
	Arm   spec.Arm
	Scale Scale
}

// ArmExecutor may run one arm somewhere other than this process (the
// distributed dispatch path). Returning handled=false declines the
// unit — the engine executes it locally, preserving single-process
// behavior exactly. Returning handled=true with an error fails the
// arm (transience decided by the usual core taxonomy); with a nil
// error the returned Arm is taken as the unit's result and its
// records are replayed into the arm's sinks, so event streams stay
// byte-identical to local execution.
type ArmExecutor func(ctx context.Context, u ArmUnit) (Arm, bool, error)

// specHooks customize the executor per arm: a cache lookup that can
// skip execution, a remote executor consulted before running locally,
// a sink factory for streaming records, and a completion callback.
// All may be nil. Hooks are invoked from the worker goroutines; the
// engine guarantees distinct arms per call, so hooks only need to be
// safe across distinct arm indices.
type specHooks struct {
	lookup func(i int, a spec.Arm) (Arm, bool)
	exec   ArmExecutor
	sinks  func(i int, a spec.Arm) (sink.Sink, error)
	done   func(i int, a spec.Arm, arm Arm, elapsed time.Duration) error
}

func runSpecHooked(ctx context.Context, sp *spec.Spec, sc Scale, h specHooks) (*FigureResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	arms, err := sp.ExpandArms()
	if err != nil {
		return nil, err
	}
	scArm := sc
	scArm.Workers = innerWorkers(sc.Workers, len(arms))
	fig := &FigureResult{Name: sp.Name, Caption: sp.Caption}
	fig.Arms = make([]Arm, len(arms))
	err = par.ForEachErrCtx(ctx, sc.Workers, len(arms), func(i int) error {
		a := arms[i]
		if h.lookup != nil {
			if cached, ok := h.lookup(i, a); ok {
				fig.Arms[i] = cached
				return nil
			}
		}
		start := time.Now()
		arm, remote, err := runSpecArmRemote(ctx, sp, sc, i, a, h)
		if err != nil {
			return fmt.Errorf("experiment: %s arm %q: %w", sp.Name, a.Label, err)
		}
		if !remote {
			var snk sink.Sink
			if h.sinks != nil {
				s, err := h.sinks(i, a)
				if err != nil {
					return fmt.Errorf("experiment: %s arm %q: %w", sp.Name, a.Label, err)
				}
				snk = s
			}
			arm, err = runSpecArmSafe(ctx, scArm, a, snk)
			if snk != nil {
				if cerr := snk.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
			if err != nil {
				return fmt.Errorf("experiment: %s arm %q: %w", sp.Name, a.Label, err)
			}
		}
		if h.done != nil {
			if err := h.done(i, a, arm, time.Since(start)); err != nil {
				return fmt.Errorf("experiment: %s arm %q: %w", sp.Name, a.Label, err)
			}
		}
		fig.Arms[i] = arm
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fig, nil
}

// runSpecArmRemote offers one arm to the exec hook (the distributed
// dispatch path). When the hook takes the unit, the remote result's
// records are replayed into the arm's sinks here, so per-arm event
// streams are byte-identical whether the arm ran locally or on a
// worker. remote=false means the hook declined (or is absent) and the
// caller should execute locally.
func runSpecArmRemote(ctx context.Context, sp *spec.Spec, sc Scale, i int, a spec.Arm, h specHooks) (Arm, bool, error) {
	if h.exec == nil {
		return Arm{}, false, nil
	}
	key, err := armKey(a, sc)
	if err != nil {
		return Arm{}, false, err
	}
	arm, handled, err := h.exec(ctx, ArmUnit{Index: i, Key: key, Spec: sp.Name, Arm: a, Scale: sc})
	if err != nil {
		return Arm{}, true, err
	}
	if !handled {
		return Arm{}, false, nil
	}
	if arm.Series == nil || arm.Label != a.Label {
		return Arm{}, true, fmt.Errorf("remote executor returned arm %q, want %q", arm.Label, a.Label)
	}
	if h.sinks != nil {
		snk, err := h.sinks(i, a)
		if err != nil {
			return Arm{}, true, err
		}
		if snk != nil {
			var serr error
			for _, rec := range arm.Series.Records {
				if serr = snk.Record(rec); serr != nil {
					break
				}
			}
			if cerr := snk.Close(); cerr != nil && serr == nil {
				serr = cerr
			}
			if serr != nil {
				return Arm{}, true, serr
			}
		}
	}
	return arm, true, nil
}

// runSpecArmSafe is runSpecArm behind the resilience boundary: it fires
// the context's fault-injection hook (if any) and converts a panic
// anywhere in the arm's execution into an ErrArmPanic carrying the
// panic value and stack. par pools re-raise worker panics on their
// caller with the worker's own stack preserved, so the recovery here
// covers the node-parallel tick engine and the evaluation fan-out too.
func runSpecArmSafe(ctx context.Context, sc Scale, a spec.Arm, snk sink.Sink) (arm Arm, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			if wp, ok := r.(*par.WorkerPanic); ok {
				r, stack = wp.Value, wp.Stack
			}
			err = fmt.Errorf("%w: %v\n%s", ErrArmPanic, r, stack)
		}
	}()
	if err := faultinject.FromContext(ctx).ArmStart(a.Label); err != nil {
		return Arm{}, err
	}
	return runSpecArm(ctx, sc, a, snk)
}

// runSpecArm interprets one declarative arm against a scale: it
// resolves the corpus's training catalog entry, applies the arm's
// overrides, assembles the simulator and study configuration, and runs
// the study, streaming evaluated rounds into snk (when non-nil).
func runSpecArm(ctx context.Context, sc Scale, a spec.Arm, snk sink.Sink) (Arm, error) {
	train, err := TrainingFor(data.CorpusName(a.Corpus))
	if err != nil {
		return Arm{}, err
	}
	if a.Train != nil {
		train = core.TrainConfig{
			Hidden: a.Train.Hidden, LR: a.Train.LR, Momentum: a.Train.Momentum,
			WeightDecay: a.Train.WeightDecay, LRDecay: a.Train.LRDecay,
			BatchSize: a.Train.BatchSize, LocalEpochs: a.Train.LocalEpochs,
		}
	}
	if a.LocalEpochs > 0 {
		train.LocalEpochs = a.LocalEpochs
	}
	trainPer := sc.TrainPerNode
	if a.TrainPerFactor > 0 {
		trainPer = int(float64(trainPer) * a.TrainPerFactor)
	}
	nodes := sc.nodesFor(a.Corpus)
	viewSize := a.ViewSize
	if viewSize >= nodes {
		viewSize = nodes - 1
	}
	// k-regular feasibility: n*k must be even.
	if nodes*viewSize%2 != 0 {
		viewSize--
	}
	if viewSize < 1 {
		return Arm{}, fmt.Errorf("cannot fit view size %d in %d nodes: %w", a.ViewSize, nodes, ErrScale)
	}
	dyn, err := dynamicsKind(a.Dynamics)
	if err != nil {
		return Arm{}, err
	}
	simCfg := gossip.Config{
		Nodes:    nodes,
		ViewSize: viewSize,
		Dynamics: dyn,
		Rounds:   sc.Rounds,
		Seed:     sc.Seed*1_000_003 + a.SeedOffset,
	}
	// The arm's own network model wins; otherwise the Scale-level
	// overlay (dlsim -transport/-latency/-churn) applies.
	if err := sc.Net.applySim(&simCfg); err != nil {
		return Arm{}, err
	}
	if a.Net != nil {
		net, err := netConfigOf(a.Net)
		if err != nil {
			return Arm{}, err
		}
		simCfg.Net = net
	}
	if len(a.Churn) > 0 {
		simCfg.Churn = churnOf(a.Churn)
	}
	if a.ChurnFraction > 0 {
		simCfg.Churn = churnSchedule(nodes, totalTicks(simCfg), a.ChurnFraction)
	}
	var dpCfg *core.DPConfig
	if a.DP != nil {
		dpCfg = &core.DPConfig{Epsilon: a.DP.Epsilon, Delta: a.DP.Delta, Clip: a.DP.Clip}
	}
	cfg := core.StudyConfig{
		Label:          a.Label,
		Corpus:         data.CorpusName(a.Corpus),
		Protocol:       a.Protocol,
		Sim:            simCfg,
		Train:          train,
		Part:           core.PartitionConfig{TrainPerNode: trainPer, TestPerNode: sc.TestPerNode, DirichletBeta: a.Beta},
		DP:             dpCfg,
		GlobalTestSize: sc.GlobalTestSize,
		EvalEvery:      sc.EvalEvery,
		EvalNodes:      sc.EvalNodes,
		Workers:        sc.Workers,
	}
	if a.Canaries {
		cfg.Canaries = sc.Canaries
	}
	if snk != nil {
		cfg.OnRecord = snk.Record
		if inj := faultinject.FromContext(ctx); inj != nil {
			cfg.OnRecord = func(rec metrics.RoundRecord) error {
				inj.EventDelay(ctx)
				return snk.Record(rec)
			}
		}
	}
	study, err := core.NewStudy(cfg)
	if err != nil {
		return Arm{}, err
	}
	res, err := study.RunContext(ctx)
	if err != nil {
		return Arm{}, err
	}
	return Arm{
		Label:           a.Label,
		Series:          res.Series,
		MessagesSent:    res.MessagesSent,
		BytesSent:       res.BytesSent,
		RealizedEpsilon: res.RealizedEpsilon,
		NoiseMultiplier: res.NoiseMultiplier,
	}, nil
}

// dynamicsKind resolves a spec dynamics name.
func dynamicsKind(name string) (gossip.DynamicsKind, error) {
	switch name {
	case "", "static":
		return gossip.DynamicsStatic, nil
	case "peerswap":
		return gossip.DynamicsPeerSwap, nil
	case "cyclon":
		return gossip.DynamicsCyclon, nil
	default:
		return 0, fmt.Errorf("%w: unknown dynamics %q", ErrScale, name)
	}
}

// netConfigOf converts a declarative transport config.
func netConfigOf(n *spec.Net) (netmodel.Config, error) {
	kind, err := netmodel.KindByName(n.Transport)
	if err != nil {
		return netmodel.Config{}, fmt.Errorf("%w: %v", ErrScale, err)
	}
	cfg := netmodel.Config{
		Kind:        kind,
		LatencyMean: n.LatencyMean, LatencyJitter: n.LatencyJitter,
		BandwidthBytesPerTick: n.BandwidthBytesPerTick,
		DropProb:              n.DropProb,
	}
	for _, p := range n.Partitions {
		cfg.Partitions = append(cfg.Partitions, netmodel.Partition{
			FromTick: p.FromTick, ToTick: p.ToTick,
			Members: append([]int(nil), p.Members...),
		})
	}
	return cfg, nil
}

// churnOf converts a declarative churn schedule.
func churnOf(events []spec.Churn) []gossip.ChurnEvent {
	out := make([]gossip.ChurnEvent, len(events))
	for i, ev := range events {
		out[i] = gossip.ChurnEvent{Node: ev.Node, LeaveTick: ev.LeaveTick, RejoinTick: ev.RejoinTick}
	}
	return out
}

// SpecRunOptions configure RunSpecDir.
type SpecRunOptions struct {
	// OutDir receives the run artifacts: manifest.json, results.csv,
	// per-arm result caches under arms/, and per-arm event streams
	// under events/.
	OutDir string
	// Resume skips arms whose cached result (keyed by arm content hash
	// + scale fingerprint, including the seed) already exists in
	// OutDir/arms — the re-run of an interrupted sweep only executes
	// what is missing and still produces byte-identical output.
	Resume bool
	// Events selects the per-arm stream format: "jsonl" (default),
	// "csv", or "none".
	Events string
	// StoreDir, when non-empty, keeps the per-arm result cache in an
	// embedded indexed store (internal/store) at this directory instead
	// of one JSON file per arm under OutDir/arms — the layout that stays
	// fast at 10^5–10^7 arms: resume reads one log + segment set in a
	// single ordered scan instead of opening a file per arm, and `dlsim
	// list -store` serves figures from a range-scannable index. Cache
	// semantics are unchanged: records carry the same canonical JSON and
	// self-checksum as the file backend, so results are byte-identical
	// either way. An existing OutDir/arms directory is read as a
	// fallback and migrated into the store on resume.
	StoreDir string
	// ExtraSinks, when non-nil, attaches an additional per-arm sink
	// alongside the run directory's event files (the hook the SDK's
	// WithSink rides on for persisted runs). It may return a nil sink
	// to skip an arm. Arms served from the resume cache do not stream
	// — neither to event files nor to extra sinks.
	ExtraSinks func(i int, label string) (sink.Sink, error)
	// OnArmDone, when non-nil, observes every arm as it is satisfied
	// (executed or loaded from cache), after its cache file is durably
	// on disk. It is invoked from worker goroutines with distinct arms
	// per call, in completion order — not spec order.
	OnArmDone func(i int, report SpecArmReport)
	// Exec, when non-nil, is offered every non-cached arm before local
	// execution (see ArmExecutor). Results it returns flow through the
	// same cache-write, event-stream, and results.csv paths as local
	// runs — this is how remotely executed arms are ingested into the
	// run directory and the shared result store.
	Exec ArmExecutor
}

// SpecArmReport records how one arm of a spec run was satisfied.
type SpecArmReport struct {
	Label string `json:"label"`
	// Key is the arm's cache key: the content hash of (arm, scale
	// fingerprint). Worker count is excluded — it never affects results.
	Key string `json:"key"`
	// Cached is true when the arm was loaded from a previous run's
	// cache instead of executed.
	Cached         bool    `json:"cached"`
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	ResultFile     string  `json:"resultFile"`
	EventsFile     string  `json:"eventsFile,omitempty"`
}

// SpecManifest is the run manifest written to OutDir/manifest.json.
type SpecManifest struct {
	Spec           string          `json:"spec"`
	SpecHash       string          `json:"specHash"`
	Seed           int64           `json:"seed"`
	Workers        int             `json:"workers"`
	Scale          Scale           `json:"scale"`
	StartedAt      string          `json:"startedAt"`
	ElapsedSeconds float64         `json:"elapsedSeconds"`
	Arms           []SpecArmReport `json:"arms"`
}

// armCacheFile is the on-disk cached result of one arm.
type armCacheFile struct {
	Label           string                `json:"label"`
	Key             string                `json:"key"`
	Records         []metrics.RoundRecord `json:"records"`
	MessagesSent    int                   `json:"messagesSent"`
	BytesSent       int                   `json:"bytesSent"`
	RealizedEpsilon float64               `json:"realizedEpsilon,omitempty"`
	NoiseMultiplier float64               `json:"noiseMultiplier,omitempty"`
	// Sum is the integrity checksum of the entry: the SHA-256 of the
	// cache's canonical JSON with this field empty. A cache whose
	// content does not reproduce its Sum — truncated, hand-edited, or
	// torn by a filesystem that reordered the atomic rename — is
	// ignored on resume and the arm recomputed.
	Sum string `json:"sum"`
}

// arm converts a validated cache entry back into the executed form.
func (c armCacheFile) arm() Arm {
	return Arm{
		Label:           c.Label,
		Series:          &metrics.Series{Label: c.Label, Records: c.Records},
		MessagesSent:    c.MessagesSent,
		BytesSent:       c.BytesSent,
		RealizedEpsilon: c.RealizedEpsilon,
		NoiseMultiplier: c.NoiseMultiplier,
	}
}

// checksum returns the integrity sum of the entry's content.
func (c armCacheFile) checksum() (string, error) {
	c.Sum = ""
	raw, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("experiment: cache checksum: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// armKey returns the resume cache key of an arm under a scale: the
// SHA-256 of the arm's canonical JSON together with the scale
// fingerprint (seed included, worker count excluded — workers never
// affect results, so a resumed run may use a different pool size).
func armKey(a spec.Arm, sc Scale) (string, error) {
	sc.Workers = 0
	payload := struct {
		Arm   spec.Arm `json:"arm"`
		Scale Scale    `json:"scale"`
	}{a, sc}
	raw, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("experiment: arm key: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// slugify makes an arm label filesystem-safe.
func slugify(label string) string {
	var b strings.Builder
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeFileAtomic writes data via a temp file + rename, so an
// interrupted run never leaves a torn cache entry for resume to trust.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RunSpecDir runs a spec like RunSpec and additionally persists the run
// to opts.OutDir: a manifest (spec hash, seed, workers, timings), a
// per-arm result cache enabling -resume (one JSON file per arm, or one
// embedded store when opts.StoreDir is set), per-arm streamed event
// files, and a results.csv summary. The returned report says which arms
// ran and which were loaded from cache.
//
// results.csv streams: a row lands (in completion order) as each arm
// commits, so an interrupted sweep leaves a usable partial CSV. On
// success the file is atomically rewritten in spec order — the final
// artifact is byte-identical to what a serial, uninterrupted run
// produces, for any worker count and any resume history.
//
// On cancellation the sweep checkpoints cleanly: completed arms keep
// their durably-written cache entries (no manifest is written for the
// aborted run), so a later Resume re-executes only what is missing and
// produces byte-identical output.
func RunSpecDir(ctx context.Context, sp *spec.Spec, sc Scale, opts SpecRunOptions) (*FigureResult, *SpecManifest, error) {
	if opts.OutDir == "" {
		return nil, nil, fmt.Errorf("%w: RunSpecDir needs an output directory", ErrScale)
	}
	if opts.Events == "" {
		opts.Events = "jsonl"
	}
	if opts.Events != "jsonl" && opts.Events != "csv" && opts.Events != "none" {
		return nil, nil, fmt.Errorf("%w: unknown event format %q (want jsonl, csv, or none)", ErrScale, opts.Events)
	}
	// runSpecHooked validates below; here only the expansion (for cache
	// keys) and the content hash are needed.
	arms, err := sp.ExpandArms()
	if err != nil {
		return nil, nil, err
	}
	specHash, err := sp.Hash()
	if err != nil {
		return nil, nil, err
	}
	fileCache := opts.StoreDir == ""
	armsDir := filepath.Join(opts.OutDir, "arms")
	eventsDir := filepath.Join(opts.OutDir, "events")
	if fileCache {
		if err := os.MkdirAll(armsDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("experiment: out dir: %w", err)
		}
	} else if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("experiment: out dir: %w", err)
	}
	if opts.Events != "none" {
		if err := os.MkdirAll(eventsDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("experiment: out dir: %w", err)
		}
	}

	reports := make([]SpecArmReport, len(arms))
	keys := make([]string, len(arms))
	legacyFiles := make([]string, len(arms))
	for i, a := range arms {
		key, err := armKey(a, sc)
		if err != nil {
			return nil, nil, err
		}
		keys[i] = key
		name := slugify(a.Label) + "-" + key[:8]
		legacyFiles[i] = filepath.Join("arms", name+".json")
		reports[i] = SpecArmReport{
			Label: a.Label,
			Key:   key,
		}
		if fileCache {
			reports[i].ResultFile = legacyFiles[i]
		}
		if opts.Events != "none" {
			reports[i].EventsFile = filepath.Join("events", name+"."+opts.Events)
		}
	}

	var st *store.Store
	if !fileCache {
		s, release, err := store.OpenShared(opts.StoreDir, store.Options{})
		if err != nil {
			return nil, nil, fmt.Errorf("experiment: result store: %w", err)
		}
		st = s
		defer release()
	}
	// Resume prescan, store mode: ONE ordered range scan collects every
	// wanted cached record — zero per-arm file opens however many arms
	// are cached. The legacy arms/ directory (if any) backfills misses
	// below and its hits are migrated into the store.
	var prescanned [][]byte
	if opts.Resume && st != nil {
		prescanned, err = prescanStoreArms(st, keys)
		if err != nil {
			return nil, nil, err
		}
	}
	legacyArms := false
	if !fileCache {
		if fi, err := os.Stat(armsDir); err == nil && fi.IsDir() {
			legacyArms = true
		}
	}

	csv, err := newCSVStream(filepath.Join(opts.OutDir, "results.csv"))
	if err != nil {
		return nil, nil, err
	}
	defer csv.close()

	started := time.Now()
	h := specHooks{
		exec: opts.Exec,
		done: func(i int, a spec.Arm, arm Arm, elapsed time.Duration) error {
			reports[i].ElapsedSeconds = elapsed.Seconds()
			cache := armCacheFile{
				Label:           arm.Label,
				Key:             keys[i],
				Records:         arm.Series.Records,
				MessagesSent:    arm.MessagesSent,
				BytesSent:       arm.BytesSent,
				RealizedEpsilon: arm.RealizedEpsilon,
				NoiseMultiplier: arm.NoiseMultiplier,
			}
			sum, err := cache.checksum()
			if err != nil {
				return err
			}
			cache.Sum = sum
			raw, err := json.MarshalIndent(cache, "", " ")
			if err != nil {
				return err
			}
			if fileCache {
				if err := writeFileAtomic(filepath.Join(opts.OutDir, reports[i].ResultFile), raw); err != nil {
					return err
				}
			} else if err := putStoreArm(st, sp.Name, keys[i], arm, raw); err != nil {
				return err
			}
			if err := csv.row(arm); err != nil {
				return err
			}
			if opts.OnArmDone != nil {
				opts.OnArmDone(i, reports[i])
			}
			return nil
		},
	}
	if opts.Events != "none" || opts.ExtraSinks != nil {
		h.sinks = func(i int, a spec.Arm) (sink.Sink, error) {
			var sinks sink.Multi
			if opts.Events != "none" {
				f, err := sink.NewFile(filepath.Join(opts.OutDir, reports[i].EventsFile), opts.Events, a.Label)
				if err != nil {
					return nil, err
				}
				sinks = append(sinks, f)
			}
			if opts.ExtraSinks != nil {
				extra, err := opts.ExtraSinks(i, a.Label)
				if err != nil {
					_ = sinks.Close()
					return nil, err
				}
				if extra != nil {
					sinks = append(sinks, extra)
				}
			}
			switch len(sinks) {
			case 0:
				return nil, nil
			case 1:
				return sinks[0], nil
			default:
				return sinks, nil
			}
		}
	}
	if opts.Resume {
		h.lookup = func(i int, a spec.Arm) (Arm, bool) {
			var arm Arm
			var ok bool
			if fileCache {
				arm, ok = loadArmCache(filepath.Join(opts.OutDir, reports[i].ResultFile), keys[i], a.Label)
			} else {
				arm, ok = decodeArmCache(prescanned[i], keys[i], a.Label)
				prescanned[i] = nil // decoded or rejected; free the raw bytes
				if ok {
					// A crash may have made the record durable but torn
					// the listing-index row behind it; repair in passing.
					if err := ensureStoreIndex(st, sp.Name, keys[i], arm); err != nil {
						ok = false
					}
				}
				if !ok && legacyArms {
					// Pre-store run directory: serve the hit from the old
					// per-arm file and migrate it into the store, so the
					// next resume needs no fallback.
					raw, err := os.ReadFile(filepath.Join(opts.OutDir, legacyFiles[i]))
					if err == nil {
						if arm, ok = decodeArmCache(raw, keys[i], a.Label); ok {
							if err := putStoreArm(st, sp.Name, keys[i], arm, raw); err != nil {
								ok = false // migration failed: recompute rather than half-trust
							}
						}
					}
				}
			}
			if ok {
				reports[i].Cached = true
				if err := csv.row(arm); err != nil {
					return Arm{}, false // stream broken: recompute path surfaces the error
				}
				if opts.OnArmDone != nil {
					opts.OnArmDone(i, reports[i])
				}
			}
			return arm, ok
		}
	}

	fig, err := runSpecHooked(ctx, sp, sc, h)
	if err != nil {
		return nil, nil, err
	}

	// The streamed rows landed in completion order; the final artifact
	// is the canonical spec-order table, swapped in atomically.
	if err := csv.close(); err != nil {
		return nil, nil, fmt.Errorf("experiment: results.csv: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(opts.OutDir, "results.csv"), []byte(resultsCSV(fig))); err != nil {
		return nil, nil, fmt.Errorf("experiment: results.csv: %w", err)
	}
	man := &SpecManifest{
		Spec:           sp.Name,
		SpecHash:       specHash,
		Seed:           sc.Seed,
		Workers:        sc.Workers,
		Scale:          sc,
		StartedAt:      started.UTC().Format(time.RFC3339),
		ElapsedSeconds: time.Since(started).Seconds(),
		Arms:           reports,
	}
	raw, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(opts.OutDir, "manifest.json"), raw); err != nil {
		return nil, nil, fmt.Errorf("experiment: manifest: %w", err)
	}
	return fig, man, nil
}

// loadArmCache loads one arm's cached result if present and
// trustworthy: the file must decode, its integrity checksum must
// reproduce, and the key (content hash) and label must both match — so
// a truncated or corrupted file, or a cache written by a different
// spec, scale, or seed, is ignored (and the arm recomputed) rather
// than resumed from.
func loadArmCache(path, key, label string) (Arm, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Arm{}, false
	}
	return decodeArmCache(raw, key, label)
}

// resultsCSVHeader is the results.csv column row.
const resultsCSVHeader = "arm,max_acc,mia_at_max,max_mia,max_tpr,max_gen,messages,bytes,epsilon\n"

// resultsCSVRow renders one arm's summary row. Labels are free-form
// text from user spec files and are RFC 4180-quoted.
func resultsCSVRow(b *strings.Builder, a Arm) {
	at := a.AtMaxTestAcc()
	maxGen := 0.0
	for _, r := range a.Series.Records {
		if r.GenError > maxGen {
			maxGen = r.GenError
		}
	}
	fmt.Fprintf(b, "%s,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d,%.4f\n",
		sink.Quote(a.Label), at.TestAcc, at.MIAAcc, a.Series.MaxMIAAcc(), a.Series.MaxTPR(),
		maxGen, a.MessagesSent, a.BytesSent, a.RealizedEpsilon)
}

// resultsCSV renders the per-arm summary table as CSV, in spec order.
func resultsCSV(fig *FigureResult) string {
	var b strings.Builder
	b.WriteString(resultsCSVHeader)
	for _, a := range fig.Arms {
		resultsCSVRow(&b, a)
	}
	return b.String()
}

// csvStream appends results.csv rows as arms commit, in completion
// order and unbuffered — each row reaches the kernel before the commit
// returns, so a killed sweep leaves a usable partial CSV. The hooks
// that feed it run on worker goroutines; the mutex serializes rows.
type csvStream struct {
	mu sync.Mutex
	f  *os.File
}

// newCSVStream truncates path and writes the header row.
func newCSVStream(path string) (*csvStream, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: results.csv: %w", err)
	}
	if _, err := f.WriteString(resultsCSVHeader); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: results.csv: %w", err)
	}
	return &csvStream{f: f}, nil
}

// row appends one arm's summary row.
func (w *csvStream) row(a Arm) error {
	var b strings.Builder
	resultsCSVRow(&b, a)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if _, err := w.f.WriteString(b.String()); err != nil {
		return fmt.Errorf("experiment: results.csv: %w", err)
	}
	return nil
}

// close closes the stream; later rows are dropped. Idempotent.
func (w *csvStream) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
