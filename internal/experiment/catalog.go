package experiment

import (
	"fmt"
	"strings"

	"gossipmia/internal/core"
	"gossipmia/internal/data"
)

// TrainingRow is one row of Table 2: the paper's hyperparameters for a
// corpus, alongside the configuration this reproduction trains with on
// the synthetic stand-in.
type TrainingRow struct {
	Corpus data.CorpusName

	// Paper columns (Table 2, verbatim).
	PaperModel       string
	PaperParams      string
	PaperLR          float64
	PaperMomentum    float64
	PaperWeightDecay float64
	PaperLocalEpochs int
	PaperRounds      int

	// Effective reproduction config (MLP on the synthetic corpus).
	Train core.TrainConfig
}

// TrainingCatalog reproduces Table 2. The effective configs keep the
// paper's momentum/weight-decay/epoch structure but use MLP widths and
// learning rates tuned so the synthetic stand-ins train in the same
// regime (fast early progress, then local overfitting).
func TrainingCatalog() []TrainingRow {
	return []TrainingRow{
		{
			Corpus:     data.CIFAR10,
			PaperModel: "CNN", PaperParams: "124k",
			PaperLR: 0.01, PaperMomentum: 0, PaperWeightDecay: 5e-4,
			PaperLocalEpochs: 3, PaperRounds: 250,
			Train: core.TrainConfig{
				Hidden: []int{48}, LR: 0.05, Momentum: 0,
				WeightDecay: 5e-4, BatchSize: 16, LocalEpochs: 3,
			},
		},
		{
			Corpus:     data.CIFAR100,
			PaperModel: "ResNet-8", PaperParams: "1.2M",
			PaperLR: 0.001, PaperMomentum: 0.9, PaperWeightDecay: 5e-4,
			PaperLocalEpochs: 5, PaperRounds: 500,
			Train: core.TrainConfig{
				Hidden: []int{96}, LR: 0.03, Momentum: 0.9,
				WeightDecay: 5e-4, BatchSize: 16, LocalEpochs: 5,
			},
		},
		{
			Corpus:     data.FashionMNIST,
			PaperModel: "CNN", PaperParams: "124k",
			PaperLR: 0.01, PaperMomentum: 0.9, PaperWeightDecay: 5e-4,
			PaperLocalEpochs: 3, PaperRounds: 250,
			Train: core.TrainConfig{
				Hidden: []int{48}, LR: 0.05, Momentum: 0.9,
				WeightDecay: 5e-4, BatchSize: 16, LocalEpochs: 3,
			},
		},
		{
			Corpus:     data.Purchase100,
			PaperModel: "MLP", PaperParams: "1.3M",
			PaperLR: 0.01, PaperMomentum: 0.9, PaperWeightDecay: 5e-4,
			PaperLocalEpochs: 10, PaperRounds: 250,
			Train: core.TrainConfig{
				Hidden: []int{64}, LR: 0.02, Momentum: 0.9,
				WeightDecay: 5e-4, BatchSize: 16, LocalEpochs: 2,
			},
		},
	}
}

// TrainingFor returns the effective reproduction config for a corpus.
func TrainingFor(corpus data.CorpusName) (core.TrainConfig, error) {
	for _, row := range TrainingCatalog() {
		if row.Corpus == corpus {
			return row.Train, nil
		}
	}
	return core.TrainConfig{}, fmt.Errorf("experiment: no training config for corpus %q", corpus)
}

// DatasetCatalogTable renders Table 1 (dataset characteristics of the
// synthetic stand-ins alongside the original corpus sizes).
func DatasetCatalogTable() string {
	var b strings.Builder
	b.WriteString("Table 1: Dataset Characteristics\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %8s %8s  %s\n",
		"Dataset", "PaperTrain", "PaperTest", "Dim", "Classes", "Description")
	for _, info := range data.Catalog() {
		fmt.Fprintf(&b, "%-14s %10d %10d %8d %8d  %s\n",
			info.Name, info.PaperTrain, info.PaperTest, info.Dim, info.Classes, info.Description)
	}
	return b.String()
}

// TrainingCatalogTable renders Table 2 (training configuration).
func TrainingCatalogTable() string {
	var b strings.Builder
	b.WriteString("Table 2: Training Configuration (paper -> reproduction)\n")
	fmt.Fprintf(&b, "%-14s %-10s %8s %9s %7s %7s %7s  %s\n",
		"Dataset", "Model", "LR", "Momentum", "WD", "Epochs", "Rounds", "Repro (MLP hidden, lr, epochs)")
	for _, row := range TrainingCatalog() {
		fmt.Fprintf(&b, "%-14s %-10s %8.4f %9.2f %7.0e %7d %7d  hidden=%v lr=%.3f epochs=%d\n",
			row.Corpus, row.PaperModel, row.PaperLR, row.PaperMomentum,
			row.PaperWeightDecay, row.PaperLocalEpochs, row.PaperRounds,
			row.Train.Hidden, row.Train.LR, row.Train.LocalEpochs)
	}
	return b.String()
}
