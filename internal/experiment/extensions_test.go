package experiment

import (
	"errors"
	"strings"
	"testing"

	"gossipmia/internal/mia"
)

func TestRunAttackComparisonTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runner")
	}
	sc := TinyScale()
	cmp, err := RunAttackComparison(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != len(mia.AllMethods()) {
		t.Fatalf("comparison has %d rows, want %d", len(cmp.Rows), len(mia.AllMethods()))
	}
	for _, row := range cmp.Rows {
		if row.MeanAcc < 0.5-1e-9 || row.MeanAcc > 1 {
			t.Fatalf("%s mean accuracy %v out of range", row.Method, row.MeanAcc)
		}
		if row.MaxAcc < row.MeanAcc-1e-9 {
			t.Fatalf("%s max %v below mean %v", row.Method, row.MaxAcc, row.MeanAcc)
		}
	}
	table := cmp.Table()
	for _, want := range []string{"Attack comparison", "mpe", "entropy", "confidence", "loss"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestRunDynamicsComparisonTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runner")
	}
	sc := TinyScale()
	fig, err := RunDynamicsComparison(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Arms) != 3 {
		t.Fatalf("dynamics comparison has %d arms, want 3", len(fig.Arms))
	}
	for _, arm := range fig.Arms {
		if len(arm.Series.Records) == 0 {
			t.Fatalf("arm %s has no records", arm.Label)
		}
	}
	table := fig.Table()
	for _, want := range []string{"static", "peerswap", "cyclon"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	bad := TinyScale()
	bad.Rounds = 0
	if _, err := RunDynamicsComparison(bad); !errors.Is(err, ErrScale) {
		t.Fatalf("bad scale error = %v", err)
	}
}

func TestReplicate(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runner")
	}
	sc := TinyScale()
	rep, err := Replicate(RunFigure8, sc, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repeats != 2 || len(rep.Arms) != 2 {
		t.Fatalf("replicated result shape: %+v", rep)
	}
	for _, arm := range rep.Arms {
		if !(arm.MaxAcc.Lo <= arm.MaxAcc.Point && arm.MaxAcc.Point <= arm.MaxAcc.Hi) {
			t.Fatalf("disordered CI: %+v", arm)
		}
	}
	table := rep.Table()
	for _, want := range []string{"Figure 8", "2 seeds", "90% bootstrap CI", "static", "dynamic"} {
		if !strings.Contains(table, want) {
			t.Fatalf("replicated table missing %q:\n%s", want, table)
		}
	}
	if _, err := Replicate(RunFigure8, sc, 1, 0.9); !errors.Is(err, ErrScale) {
		t.Fatalf("repeats=1 error = %v", err)
	}
	if _, err := Replicate(RunFigure8, sc, 2, 2); !errors.Is(err, ErrScale) {
		t.Fatalf("confidence error = %v", err)
	}
}

func TestRunAttackComparisonBadScale(t *testing.T) {
	bad := TinyScale()
	bad.Nodes = 0
	if _, err := RunAttackComparison(bad); !errors.Is(err, ErrScale) {
		t.Fatalf("bad scale error = %v", err)
	}
}

func TestArmBytesAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("integration runner")
	}
	sc := TinyScale()
	fig, err := RunFigure8(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range fig.Arms {
		if arm.BytesSent <= 0 {
			t.Fatalf("arm %s has no byte accounting", arm.Label)
		}
		// Each message is one model frame; bytes must be a multiple of
		// the per-message frame size implied by messages.
		if arm.BytesSent%arm.MessagesSent != 0 {
			t.Fatalf("arm %s: %d bytes not divisible by %d messages",
				arm.Label, arm.BytesSent, arm.MessagesSent)
		}
	}
	if !strings.Contains(fig.Table(), "MiB") {
		t.Fatal("table missing MiB column")
	}
}
