package experiment

import (
	"fmt"
	"strings"

	"gossipmia/internal/par"
	"gossipmia/internal/stats"
	"gossipmia/internal/tensor"
)

// ReplicatedArm aggregates one arm's headline quantities over repeated
// runs with independent seeds.
type ReplicatedArm struct {
	Label  string
	MaxAcc stats.Interval
	MaxMIA stats.Interval
	MaxTPR stats.Interval
}

// ReplicatedResult is a figure re-run across seeds with bootstrap
// confidence intervals per arm.
type ReplicatedResult struct {
	Name       string
	Caption    string
	Repeats    int
	Confidence float64
	Arms       []ReplicatedArm
}

// Table renders the replicated summary.
func (r *ReplicatedResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%d seeds, %.0f%% bootstrap CI)\n",
		r.Name, r.Caption, r.Repeats, r.Confidence*100)
	fmt.Fprintf(&b, "%-38s %-22s %-22s %-22s\n", "arm", "maxAcc", "maxMIA", "maxTPR")
	ci := func(iv stats.Interval) string {
		return fmt.Sprintf("%.3f [%.3f,%.3f]", iv.Point, iv.Lo, iv.Hi)
	}
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%-38s %-22s %-22s %-22s\n", a.Label, ci(a.MaxAcc), ci(a.MaxMIA), ci(a.MaxTPR))
	}
	return b.String()
}

// Replicate runs a figure runner `repeats` times with independent seeds
// and reports per-arm bootstrap confidence intervals of the headline
// quantities. Arms are matched by label across repeats; a run whose arm
// set differs from the first is an error.
//
// Repeats are independent (each derives its seed from the repeat index)
// and run on the Scale.Workers pool; the per-arm sample streams are
// assembled in repeat order afterwards, so the bootstrap consumes the
// same values in the same order — and returns the same intervals — for
// any worker count.
func Replicate(runner func(Scale) (*FigureResult, error), sc Scale, repeats int, confidence float64) (*ReplicatedResult, error) {
	if repeats < 2 {
		return nil, fmt.Errorf("%w: need at least 2 repeats, got %d", ErrScale, repeats)
	}
	if confidence <= 0 || confidence >= 1 {
		return nil, fmt.Errorf("%w: confidence %v out of (0,1)", ErrScale, confidence)
	}
	figs := make([]*FigureResult, repeats)
	inner := innerWorkers(sc.Workers, repeats)
	err := par.ForEachErr(sc.Workers, repeats, func(rep int) error {
		repScale := sc
		repScale.Workers = inner
		repScale.Seed = sc.Seed + int64(rep)*104_729
		fig, err := runner(repScale)
		if err != nil {
			return fmt.Errorf("experiment: replicate seed %d: %w", repScale.Seed, err)
		}
		figs[rep] = fig
		return nil
	})
	if err != nil {
		return nil, err
	}
	type samples struct {
		acc, miaAcc, tpr []float64
	}
	var (
		order []string
		data  = map[string]*samples{}
		name  string
		capt  string
	)
	for rep, fig := range figs {
		if rep == 0 {
			name, capt = fig.Name, fig.Caption
			for _, arm := range fig.Arms {
				order = append(order, arm.Label)
				data[arm.Label] = &samples{}
			}
		}
		if len(fig.Arms) != len(order) {
			return nil, fmt.Errorf("%w: repeat %d produced %d arms, expected %d",
				ErrScale, rep, len(fig.Arms), len(order))
		}
		for _, arm := range fig.Arms {
			s, ok := data[arm.Label]
			if !ok {
				return nil, fmt.Errorf("%w: repeat %d produced unknown arm %q", ErrScale, rep, arm.Label)
			}
			s.acc = append(s.acc, arm.Series.MaxTestAcc())
			s.miaAcc = append(s.miaAcc, arm.Series.MaxMIAAcc())
			s.tpr = append(s.tpr, arm.Series.MaxTPR())
		}
	}
	rng := tensor.NewRNG(sc.Seed * 31)
	out := &ReplicatedResult{
		Name: name, Caption: capt, Repeats: repeats, Confidence: confidence,
	}
	const resamples = 400
	for _, label := range order {
		s := data[label]
		accCI, err := stats.BootstrapMeanCI(s.acc, confidence, resamples, rng)
		if err != nil {
			return nil, err
		}
		miaCI, err := stats.BootstrapMeanCI(s.miaAcc, confidence, resamples, rng)
		if err != nil {
			return nil, err
		}
		tprCI, err := stats.BootstrapMeanCI(s.tpr, confidence, resamples, rng)
		if err != nil {
			return nil, err
		}
		out.Arms = append(out.Arms, ReplicatedArm{
			Label: label, MaxAcc: accCI, MaxMIA: miaCI, MaxTPR: tprCI,
		})
	}
	return out, nil
}
