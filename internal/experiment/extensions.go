package experiment

import (
	"context"
	"fmt"
	"strings"

	"gossipmia/internal/core"
	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
	"gossipmia/internal/metrics"
	"gossipmia/internal/mia"
	"gossipmia/internal/par"
	"gossipmia/internal/spec"
)

// AttackComparison reports, for one trained deployment, how each attack
// score function performs against every node — an extension ablation
// showing that the MPE attack the paper uses dominates the simpler
// entropy/confidence/loss estimators it generalizes.
type AttackComparison struct {
	Caption string
	Rows    []AttackComparisonRow
}

// AttackComparisonRow aggregates one method over all nodes.
type AttackComparisonRow struct {
	Method      mia.Method
	MeanAcc     float64
	MaxAcc      float64
	MeanTPR1FPR float64
}

// Table renders the comparison.
func (a *AttackComparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Attack comparison — %s\n", a.Caption)
	fmt.Fprintf(&b, "%-12s %9s %9s %9s\n", "method", "meanAcc", "maxAcc", "meanTPR")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-12s %9.3f %9.3f %9.3f\n", r.Method, r.MeanAcc, r.MaxAcc, r.MeanTPR1FPR)
	}
	return b.String()
}

// DynamicsComparisonSpec compares the three topology-dynamics modes —
// static k-regular, PeerSwap, and a full Cyclon random peer sampling
// service — on the same corpus and protocol. It extends Figure 3 with
// the Section 5 recommendation that dynamics "be paired with robust
// peer-sampling protocols".
func DynamicsComparisonSpec() *spec.Spec {
	return &spec.Spec{
		Name:    "Extension: dynamics modes",
		Caption: "static vs PeerSwap vs Cyclon RPS (CIFAR-10-like, SAMO, k=2)",
		Sweep: &spec.Sweep{
			Base: spec.Arm{
				Label:      "cifar10/samo/k=2",
				Corpus:     string(data.CIFAR10),
				Protocol:   "samo",
				ViewSize:   2,
				SeedOffset: 1000,
			},
			Axes: []spec.Axis{
				{Field: "dynamics", Values: []any{"static", "peerswap", "cyclon"}},
			},
		},
	}
}

// RunDynamicsComparison runs the dynamics-comparison spec.
func RunDynamicsComparison(sc Scale) (*FigureResult, error) {
	return RunSpec(context.Background(), DynamicsComparisonSpec(), sc)
}

// RunAttackComparison trains one SAMO deployment on the CIFAR-10-like
// corpus and attacks every node's final model with each score method.
func RunAttackComparison(sc Scale) (*AttackComparison, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	train, err := TrainingFor(data.CIFAR10)
	if err != nil {
		return nil, err
	}
	simCfg := gossip.Config{
		Nodes: sc.Nodes, ViewSize: 5, Rounds: sc.Rounds, Seed: sc.Seed*17 + 3,
	}
	if err := sc.Net.applySim(&simCfg); err != nil {
		return nil, err
	}
	study, err := core.NewStudy(core.StudyConfig{
		Label:           "attack-comparison",
		Corpus:          data.CIFAR10,
		Protocol:        "samo",
		Sim:             simCfg,
		Train:           train,
		Part:            core.PartitionConfig{TrainPerNode: sc.TrainPerNode, TestPerNode: sc.TestPerNode},
		GlobalTestSize:  sc.GlobalTestSize,
		EvalEvery:       sc.Rounds, // only the final round matters here
		EvalNodes:       1,
		KeepFinalModels: true,
		Workers:         sc.Workers,
	})
	if err != nil {
		return nil, err
	}
	res, err := study.Run()
	if err != nil {
		return nil, err
	}
	cmp := &AttackComparison{
		Caption: fmt.Sprintf("CIFAR-10-like, SAMO, %d nodes, %d rounds", sc.Nodes, sc.Rounds),
	}
	// Each goroutine attacks a distinct node's snapshot model, so the
	// per-node fan-out needs no cloning; results reduce in node order.
	for _, m := range mia.AllMethods() {
		accs := make([]float64, len(res.Final))
		tprs := make([]float64, len(res.Final))
		err := par.ForEachErr(sc.Workers, len(res.Final), func(i int) error {
			snap := res.Final[i]
			r, err := mia.AttackNodeWith(m, snap.Model, snap.Data)
			if err != nil {
				return fmt.Errorf("experiment: %s on node %d: %w", m, snap.ID, err)
			}
			accs[i] = r.Accuracy
			tprs[i] = r.TPRAt1FPR
			return nil
		})
		if err != nil {
			return nil, err
		}
		cmp.Rows = append(cmp.Rows, AttackComparisonRow{
			Method:      m,
			MeanAcc:     metrics.Mean(accs),
			MaxAcc:      metrics.Max(accs),
			MeanTPR1FPR: metrics.Mean(tprs),
		})
	}
	return cmp, nil
}
