package experiment

import (
	"context"
	"fmt"

	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
	"gossipmia/internal/netmodel"
	"gossipmia/internal/spec"
)

// NetOverlay applies one network model uniformly to every arm a Scale
// runs. The zero value keeps the Instant transport — the seed
// semantics — so existing presets and goldens are unaffected. It is the
// experiment-level face of the netmodel knobs: dlsim's -transport,
// -latency, and -churn flags land here.
type NetOverlay struct {
	// Transport selects the model: "" or "instant", "latency", "lossy".
	Transport string
	// LatencyTicks/LatencyJitter parameterize the per-link delay
	// distribution (ticks).
	LatencyTicks, LatencyJitter float64
	// BandwidthBytesPerTick > 0 adds the wire-size serialization term.
	BandwidthBytesPerTick int
	// DropProb is the i.i.d. transmission loss probability.
	DropProb float64
	// ChurnFraction in [0,1) makes that fraction of nodes leave at one
	// third of the run and rejoin at two thirds.
	ChurnFraction float64
}

// netConfig maps the overlay's transport fields onto a netmodel.Config;
// the single mapping shared by Validate and applySim, so a knob cannot
// validate one way and run another.
func (o NetOverlay) netConfig() (netmodel.Config, error) {
	kind, err := netmodel.KindByName(o.Transport)
	if err != nil {
		return netmodel.Config{}, fmt.Errorf("%w: %v", ErrScale, err)
	}
	return netmodel.Config{
		Kind:        kind,
		LatencyMean: o.LatencyTicks, LatencyJitter: o.LatencyJitter,
		BandwidthBytesPerTick: o.BandwidthBytesPerTick,
		DropProb:              o.DropProb,
	}, nil
}

// Validate reports overlay errors, including parameter combinations the
// selected transport would silently ignore (netmodel.Config.Validate
// rejects latency knobs on the instant transport).
func (o NetOverlay) Validate() error {
	cfg, err := o.netConfig()
	if err != nil {
		return err
	}
	if o.ChurnFraction < 0 || o.ChurnFraction >= 1 {
		return fmt.Errorf("%w: churn fraction %v out of [0,1)", ErrScale, o.ChurnFraction)
	}
	if err := cfg.Validate(2); err != nil {
		return fmt.Errorf("%w: %v", ErrScale, err)
	}
	return nil
}

// applySim writes the overlay into a simulator configuration.
func (o NetOverlay) applySim(sim *gossip.Config) error {
	if o == (NetOverlay{}) {
		return nil
	}
	cfg, err := o.netConfig()
	if err != nil {
		return err
	}
	sim.Net = cfg
	if o.ChurnFraction > 0 {
		sim.Churn = churnSchedule(sim.Nodes, totalTicks(*sim), o.ChurnFraction)
	}
	return nil
}

// totalTicks returns the run length of a simulator config in ticks.
func totalTicks(sim gossip.Config) int {
	return sim.Defaulted().TicksPerRound * sim.Rounds
}

// rejectOverlay errors when a scenario that pins its own per-arm
// network is combined with a Scale-level overlay: silently ignoring the
// overlay (or letting it degrade a scenario's control arm) would
// misreport what was measured.
func rejectOverlay(scenario string, sc Scale) error {
	if sc.Net != (NetOverlay{}) {
		return fmt.Errorf("%w: the %s scenario pins its own network per arm and cannot run under a network overlay (drop the -transport/-latency/-churn/-drop flags)",
			ErrScale, scenario)
	}
	return nil
}

// churnSchedule makes the first round(frac·nodes) node IDs — capped so
// at least one node stays up — leave at one third of the run and
// rejoin at two thirds. It is a pure function of its arguments, so
// every repeat and worker count sees the same schedule.
func churnSchedule(nodes, ticks int, frac float64) []gossip.ChurnEvent {
	m := int(frac*float64(nodes) + 0.5)
	if m > nodes-1 {
		m = nodes - 1
	}
	if m <= 0 {
		return nil
	}
	events := make([]gossip.ChurnEvent, m)
	for i := 0; i < m; i++ {
		events[i] = gossip.ChurnEvent{Node: i, LeaveTick: ticks / 3, RejoinTick: 2 * ticks / 3}
	}
	return events
}

// halfPartition cuts the network in half for the middle third of the
// run: the classic split-brain-then-heal scenario.
func halfPartition(nodes, ticks int) []netmodel.Partition {
	members := make([]int, nodes/2)
	for i := range members {
		members[i] = i
	}
	return []netmodel.Partition{{FromTick: ticks / 3, ToTick: 2 * ticks / 3, Members: members}}
}

// LatencySweepSpec (network scenario "latency"): SAMO vs Base Gossip
// under increasing per-link latency on the CIFAR-10-like corpus. With
// the paper's wake interval of ~100 ticks, a 75-tick mean delay means
// most merges consume models that are most of a round stale — the
// sweep shows how each protocol's aggregation degrades with staleness,
// a question the seed's zero-delay simulator could not pose.
func LatencySweepSpec() *spec.Spec {
	var arms []spec.Arm
	var off int64
	for _, proto := range []string{"base", "samo"} {
		for _, lat := range []float64{0, 25, 75} {
			arm := spec.Arm{
				Label:      fmt.Sprintf("cifar10/%s/k=5/lat=%.0f", proto, lat),
				Corpus:     string(data.CIFAR10),
				Protocol:   proto,
				ViewSize:   5,
				SeedOffset: 800 + off,
			}
			if lat > 0 {
				arm.Net = &spec.Net{
					Transport:   "latency",
					LatencyMean: lat,
					// Heterogeneous links: ~30% spread around the mean.
					LatencyJitter: lat * 0.3,
				}
			}
			arms = append(arms, arm)
			off++
		}
	}
	return &spec.Spec{
		Name:    "Scenario: latency sweep",
		Caption: "MIA vulnerability vs test accuracy under per-link latency (staleness), Base vs SAMO (CIFAR-10-like)",
		Arms:    arms,
	}
}

// RunLatencySweep runs the latency-sweep spec.
func RunLatencySweep(sc Scale) (*FigureResult, error) {
	if err := rejectOverlay("latency", sc); err != nil {
		return nil, err
	}
	return RunSpec(context.Background(), LatencySweepSpec(), sc)
}

// ChurnRecoverySpec (network scenario "churn"): SAMO on a sparse graph
// through three failure regimes — a third of the nodes churning out and
// rejoining, a half/half partition that heals, and both at once — each
// against the undisturbed baseline. The per-round series show the
// accuracy dip during the disturbance window (the middle third of the
// run) and the recovery after it heals. The partition member set
// depends on the deployment size, so the builder takes the scale.
func ChurnRecoverySpec(sc Scale) *spec.Spec {
	ticks := totalTicks(gossip.Config{Rounds: sc.Rounds})
	nodes := sc.nodesFor(string(data.CIFAR10))
	churn := churnSpecSchedule(nodes, ticks, 1.0/3)
	parts := halfPartitionSpec(nodes, ticks)
	arms := []spec.Arm{
		{Label: "cifar10/samo/k=2/baseline", SeedOffset: 900},
		{Label: "cifar10/samo/k=2/churn=1/3", SeedOffset: 901, Churn: churn},
		{Label: "cifar10/samo/k=2/partition", SeedOffset: 902,
			Net: &spec.Net{Transport: "lossy", Partitions: parts}},
		{Label: "cifar10/samo/k=2/churn+partition", SeedOffset: 903, Churn: churn,
			Net: &spec.Net{Transport: "lossy", Partitions: parts}},
	}
	for i := range arms {
		arms[i].Corpus = string(data.CIFAR10)
		arms[i].Protocol = "samo"
		arms[i].ViewSize = 2
	}
	return &spec.Spec{
		Name:    "Scenario: churn and partition recovery",
		Caption: "Accuracy dip and recovery under node churn and a healing half/half partition (CIFAR-10-like, SAMO)",
		Arms:    arms,
	}
}

// RunChurnRecovery runs the churn-recovery spec.
func RunChurnRecovery(sc Scale) (*FigureResult, error) {
	if err := rejectOverlay("churn", sc); err != nil {
		return nil, err
	}
	return RunSpec(context.Background(), ChurnRecoverySpec(sc), sc)
}

// churnSpecSchedule is churnSchedule in the declarative vocabulary.
func churnSpecSchedule(nodes, ticks int, frac float64) []spec.Churn {
	events := churnSchedule(nodes, ticks, frac)
	out := make([]spec.Churn, len(events))
	for i, ev := range events {
		out[i] = spec.Churn{Node: ev.Node, LeaveTick: ev.LeaveTick, RejoinTick: ev.RejoinTick}
	}
	return out
}

// halfPartitionSpec is halfPartition in the declarative vocabulary.
func halfPartitionSpec(nodes, ticks int) []spec.Partition {
	parts := halfPartition(nodes, ticks)
	out := make([]spec.Partition, len(parts))
	for i, p := range parts {
		out[i] = spec.Partition{FromTick: p.FromTick, ToTick: p.ToTick, Members: p.Members}
	}
	return out
}
