// Package spec defines the declarative scenario language of the
// experiment engine: a JSON-serializable description of one figure or
// sweep — its arms, each arm's protocol, topology dynamics, transport,
// churn, DP, and training knobs, plus cartesian sweep axes that expand
// into arms — together with validation, deterministic expansion, and a
// canonical content hash.
//
// A Spec is pure data: it names no Go functions and fixes no scale.
// The experiment package interprets it against a Scale, so the same
// spec runs at tiny, quick, or paper size, and the paper's figures are
// themselves canonical specs emitted by thin builders. The content
// hash keys the resumable sweep cache: an arm re-run under the same
// spec, scale, and seed hashes to the same key and can be skipped.
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ErrSpec is returned for invalid scenario specs.
var ErrSpec = errors.New("spec: invalid scenario spec")

// MaxSweepArms bounds a sweep's cartesian expansion. Far above any
// legitimate grid (the paper's largest sweeps are dozens of arms), it
// exists so a hostile or typoed spec cannot blow up validation.
const MaxSweepArms = 10_000

// Spec is one declarative scenario: a named set of arms, optionally
// augmented by a cartesian sweep that expands into further arms.
type Spec struct {
	// Name/Caption head the rendered figure.
	Name    string `json:"name"`
	Caption string `json:"caption,omitempty"`
	// Arms are listed explicitly.
	Arms []Arm `json:"arms,omitempty"`
	// Sweep expands into additional arms (the cartesian product of its
	// axes applied to its base arm).
	Sweep *Sweep `json:"sweep,omitempty"`
}

// Arm describes one experimental arm declaratively. The zero values of
// the optional fields select the defaults of the seed semantics: static
// topology, IID partition, no DP, no canaries, instant transport, no
// churn, the corpus's catalog training config.
type Arm struct {
	// Label identifies the arm in tables and event streams; it must be
	// unique within the spec (sweep expansion generates labels).
	Label string `json:"label"`
	// Corpus is the dataset stand-in ("cifar10", "cifar100",
	// "fashionmnist", "purchase100").
	Corpus string `json:"corpus"`
	// Protocol is the gossip protocol ("base", "samo", "samo-nodelay").
	Protocol string `json:"protocol"`
	// ViewSize is k, the regular degree.
	ViewSize int `json:"viewSize"`
	// Dynamics selects the topology evolution: "" or "static",
	// "peerswap", or "cyclon".
	Dynamics string `json:"dynamics,omitempty"`
	// Beta > 0 selects the Dirichlet non-IID partition with that β.
	Beta float64 `json:"beta,omitempty"`
	// DP enables node-level DP-SGD.
	DP *DP `json:"dp,omitempty"`
	// Canaries plants the scale's canary budget (the worst-case audit).
	Canaries bool `json:"canaries,omitempty"`
	// SeedOffset separates the arm's RNG streams from its siblings';
	// the effective simulator seed is scaleSeed*1_000_003 + SeedOffset.
	SeedOffset int64 `json:"seedOffset"`
	// Net pins the arm's transport model; nil inherits the run-level
	// network overlay (if any), i.e. the instant transport by default.
	Net *Net `json:"net,omitempty"`
	// Churn schedules explicit node departures and rejoins (ticks).
	Churn []Churn `json:"churn,omitempty"`
	// ChurnFraction in (0,1) is the declarative shorthand: that
	// fraction of nodes leaves at one third of the run and rejoins at
	// two thirds. Mutually exclusive with Churn.
	ChurnFraction float64 `json:"churnFraction,omitempty"`
	// Train overrides the corpus's catalog training config entirely.
	Train *Train `json:"train,omitempty"`
	// TrainPerFactor scales the per-node training-set size.
	TrainPerFactor float64 `json:"trainPerFactor,omitempty"`
	// LocalEpochs > 0 overrides only the local epoch count.
	LocalEpochs int `json:"localEpochs,omitempty"`
}

// DP is the declarative face of the DP-SGD configuration.
type DP struct {
	Epsilon float64 `json:"epsilon"`
	Delta   float64 `json:"delta"`
	Clip    float64 `json:"clip"`
}

// Net is the declarative face of the transport configuration.
type Net struct {
	// Transport is "instant", "latency", or "lossy".
	Transport string `json:"transport"`
	// LatencyMean/LatencyJitter parameterize the per-link delay (ticks).
	LatencyMean   float64 `json:"latencyMean,omitempty"`
	LatencyJitter float64 `json:"latencyJitter,omitempty"`
	// BandwidthBytesPerTick > 0 adds the wire-size serialization term.
	BandwidthBytesPerTick int `json:"bandwidthBytesPerTick,omitempty"`
	// DropProb is the i.i.d. transmission loss probability.
	DropProb float64 `json:"dropProb,omitempty"`
	// Partitions schedules healing network partitions (ticks).
	Partitions []Partition `json:"partitions,omitempty"`
}

// Partition is one scheduled network partition (see netmodel.Partition).
type Partition struct {
	FromTick int   `json:"fromTick"`
	ToTick   int   `json:"toTick"`
	Members  []int `json:"members"`
}

// Churn is one scheduled departure/rejoin (see gossip.ChurnEvent).
type Churn struct {
	Node      int `json:"node"`
	LeaveTick int `json:"leaveTick"`
	// RejoinTick 0 means the node never comes back.
	RejoinTick int `json:"rejoinTick,omitempty"`
}

// Sweep expands the cartesian product of its axes over a base arm.
type Sweep struct {
	Base Arm    `json:"base"`
	Axes []Axis `json:"axes"`
}

// Axis is one sweep dimension: the arm field it sets and the values it
// takes. Supported fields: corpus, protocol, viewSize, dynamics, beta,
// epsilon (0 disables DP), latency (mean ticks, 30% jitter), drop,
// churnFraction, localEpochs, trainPerFactor, canaries. Like every
// axis, latency/drop overwrite their field entirely: the value 0
// clears the arm's pinned transport, making that arm the zero-delay
// (instant-transport) control of the sweep.
type Axis struct {
	Field  string `json:"field"`
	Values []any  `json:"values"`
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: read %s: %w", path, err)
	}
	sp, err := Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", path, err)
	}
	return sp, nil
}

// Parse decodes a spec from JSON. Unknown fields are rejected so typos
// (e.g. "dropProb" misspelled) cannot silently select a default.
func Parse(raw []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after the spec object", ErrSpec)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// knownCorpora/knownProtocols/knownDynamics/knownTransports are the
// name sets the structural validation accepts. They mirror the
// registries of the data, gossip, and netmodel packages; resolving a
// name to an implementation stays the executor's job.
var (
	knownCorpora    = []string{"cifar10", "cifar100", "fashionmnist", "purchase100"}
	knownProtocols  = []string{"base", "samo", "samo-nodelay"}
	knownDynamics   = []string{"", "static", "peerswap", "cyclon"}
	knownTransports = []string{"instant", "latency", "lossy"}
)

func oneOf(v string, set []string) bool {
	for _, s := range set {
		if v == s {
			return true
		}
	}
	return false
}

// Validate reports structural errors: missing names, unknown corpus/
// protocol/dynamics/transport names, out-of-range parameters, duplicate
// labels, and unexpandable sweeps. Parameters that depend on the run
// scale (node indices, tick horizons) are validated by the executor.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: spec has no name", ErrSpec)
	}
	if len(s.Arms) == 0 && s.Sweep == nil {
		return fmt.Errorf("%w: %q has neither arms nor a sweep", ErrSpec, s.Name)
	}
	arms, err := s.ExpandArms()
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	offsets := map[int64]string{}
	for i, a := range arms {
		if err := a.validate(); err != nil {
			return fmt.Errorf("%w: arm %d (%q): %v", ErrSpec, i, a.Label, err)
		}
		if seen[a.Label] {
			return fmt.Errorf("%w: duplicate arm label %q", ErrSpec, a.Label)
		}
		seen[a.Label] = true
		// Arms sharing a seed offset would share every RNG stream
		// (topology, partitions, wake schedule) and silently correlate.
		if other, ok := offsets[a.SeedOffset]; ok {
			return fmt.Errorf("%w: arms %q and %q share seed offset %d", ErrSpec, other, a.Label, a.SeedOffset)
		}
		offsets[a.SeedOffset] = a.Label
	}
	return nil
}

// validate reports structural errors in one arm.
func (a Arm) validate() error {
	if a.Label == "" {
		return errors.New("empty label")
	}
	if !oneOf(a.Corpus, knownCorpora) {
		return fmt.Errorf("unknown corpus %q (want one of %v)", a.Corpus, knownCorpora)
	}
	if !oneOf(a.Protocol, knownProtocols) {
		return fmt.Errorf("unknown protocol %q (want one of %v)", a.Protocol, knownProtocols)
	}
	if !oneOf(a.Dynamics, knownDynamics) {
		return fmt.Errorf("unknown dynamics %q (want static, peerswap, or cyclon)", a.Dynamics)
	}
	if a.ViewSize < 1 {
		return fmt.Errorf("view size %d < 1", a.ViewSize)
	}
	if a.Beta < 0 {
		return fmt.Errorf("beta %v < 0", a.Beta)
	}
	if a.DP != nil {
		if a.DP.Epsilon <= 0 || a.DP.Delta <= 0 || a.DP.Delta >= 1 || a.DP.Clip <= 0 {
			return fmt.Errorf("dp epsilon=%v delta=%v clip=%v", a.DP.Epsilon, a.DP.Delta, a.DP.Clip)
		}
	}
	if a.Net != nil {
		n := a.Net
		if !oneOf(n.Transport, knownTransports) {
			return fmt.Errorf("unknown transport %q (want one of %v)", n.Transport, knownTransports)
		}
		if n.LatencyMean < 0 || n.LatencyJitter < 0 || n.BandwidthBytesPerTick < 0 {
			return fmt.Errorf("net latency mean=%v jitter=%v bandwidth=%d",
				n.LatencyMean, n.LatencyJitter, n.BandwidthBytesPerTick)
		}
		if n.DropProb < 0 || n.DropProb >= 1 {
			return fmt.Errorf("net dropProb %v out of [0,1)", n.DropProb)
		}
		for i, p := range n.Partitions {
			if p.FromTick < 0 || p.ToTick <= p.FromTick || len(p.Members) == 0 {
				return fmt.Errorf("net partition %d: ticks [%d,%d) members %d",
					i, p.FromTick, p.ToTick, len(p.Members))
			}
		}
	}
	if a.ChurnFraction < 0 || a.ChurnFraction >= 1 {
		return fmt.Errorf("churnFraction %v out of [0,1)", a.ChurnFraction)
	}
	if a.ChurnFraction > 0 && len(a.Churn) > 0 {
		return errors.New("churn and churnFraction are mutually exclusive")
	}
	for i, ev := range a.Churn {
		if ev.Node < 0 || ev.LeaveTick < 0 || ev.RejoinTick < 0 {
			return fmt.Errorf("churn event %d: node=%d leave=%d rejoin=%d",
				i, ev.Node, ev.LeaveTick, ev.RejoinTick)
		}
	}
	if a.TrainPerFactor < 0 || a.LocalEpochs < 0 {
		return fmt.Errorf("trainPerFactor=%v localEpochs=%d", a.TrainPerFactor, a.LocalEpochs)
	}
	if a.Train != nil && (a.Train.LR <= 0 || a.Train.LocalEpochs <= 0) {
		return fmt.Errorf("train override lr=%v epochs=%d", a.Train.LR, a.Train.LocalEpochs)
	}
	return nil
}

// Train is the declarative face of the training configuration.
type Train struct {
	Hidden      []int   `json:"hidden,omitempty"`
	LR          float64 `json:"lr"`
	Momentum    float64 `json:"momentum,omitempty"`
	WeightDecay float64 `json:"weightDecay,omitempty"`
	LRDecay     float64 `json:"lrDecay,omitempty"`
	BatchSize   int     `json:"batchSize,omitempty"`
	LocalEpochs int     `json:"localEpochs"`
}

// ExpandArms returns the spec's full arm list: the explicit arms
// followed by the sweep's cartesian expansion. Expansion is
// deterministic — axes vary from last to first (the last axis is the
// innermost loop), labels compose as base/field=value/..., and
// sweep-generated seed offsets count up from the base arm's offset.
func (s *Spec) ExpandArms() ([]Arm, error) {
	arms := append([]Arm(nil), s.Arms...)
	if s.Sweep == nil {
		return arms, nil
	}
	sw := s.Sweep
	if len(sw.Axes) == 0 {
		return nil, fmt.Errorf("%w: sweep has no axes", ErrSpec)
	}
	total := 1
	for i, ax := range sw.Axes {
		if ax.Field == "" || len(ax.Values) == 0 {
			return nil, fmt.Errorf("%w: sweep axis %d (%q) has no values", ErrSpec, i, ax.Field)
		}
		if _, ok := axisSetters[ax.Field]; !ok {
			return nil, fmt.Errorf("%w: sweep axis %d: unknown field %q (want one of %v)",
				ErrSpec, i, ax.Field, axisFieldNames())
		}
		total *= len(ax.Values)
		// Checked per axis, before the product can overflow: specs reach
		// this code from untrusted service submissions, and an unbounded
		// cartesian blow-up must fail validation instead of exhausting
		// memory (or overflowing into a silently empty expansion).
		if total > MaxSweepArms {
			return nil, fmt.Errorf("%w: sweep expands to more than %d arms", ErrSpec, MaxSweepArms)
		}
	}
	idx := make([]int, len(sw.Axes))
	for n := 0; n < total; n++ {
		arm := sw.Base.clone()
		parts := make([]string, 0, len(sw.Axes)+1)
		if sw.Base.Label != "" {
			parts = append(parts, sw.Base.Label)
		}
		for i, ax := range sw.Axes {
			v := ax.Values[idx[i]]
			if err := axisSetters[ax.Field](&arm, v); err != nil {
				return nil, fmt.Errorf("%w: sweep axis %q value %v: %v", ErrSpec, ax.Field, v, err)
			}
			parts = append(parts, fmt.Sprintf("%s=%s", ax.Field, labelValue(v)))
		}
		arm.Label = strings.Join(parts, "/")
		arm.SeedOffset = sw.Base.SeedOffset + int64(n)
		arms = append(arms, arm)
		// Odometer increment, last axis fastest.
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(sw.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
	}
	return arms, nil
}

// clone deep-copies an arm so sweep expansion cannot alias the base
// arm's pointer and slice fields across expanded arms.
func (a Arm) clone() Arm {
	c := a
	if a.DP != nil {
		dp := *a.DP
		c.DP = &dp
	}
	if a.Net != nil {
		n := *a.Net
		n.Partitions = append([]Partition(nil), a.Net.Partitions...)
		for i, p := range n.Partitions {
			n.Partitions[i].Members = append([]int(nil), p.Members...)
		}
		c.Net = &n
	}
	c.Churn = append([]Churn(nil), a.Churn...)
	if a.Train != nil {
		t := *a.Train
		t.Hidden = append([]int(nil), a.Train.Hidden...)
		c.Train = &t
	}
	return c
}

// labelValue renders an axis value for a generated label.
func labelValue(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// axisNumber coerces a JSON axis value to float64.
func axisNumber(v any) (float64, error) {
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("want a number, got %T", v)
	}
	return f, nil
}

// axisString coerces a JSON axis value to string.
func axisString(v any) (string, error) {
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("want a string, got %T", v)
	}
	return s, nil
}

// axisSetters maps sweep axis names to arm field setters. Every setter
// is total over valid inputs; structural validation of the resulting
// arm happens after expansion.
var axisSetters = map[string]func(*Arm, any) error{
	"corpus": func(a *Arm, v any) error {
		s, err := axisString(v)
		a.Corpus = s
		return err
	},
	"protocol": func(a *Arm, v any) error {
		s, err := axisString(v)
		a.Protocol = s
		return err
	},
	"viewSize": func(a *Arm, v any) error {
		f, err := axisNumber(v)
		a.ViewSize = int(f)
		return err
	},
	"dynamics": func(a *Arm, v any) error {
		s, err := axisString(v)
		a.Dynamics = s
		return err
	},
	"beta": func(a *Arm, v any) error {
		f, err := axisNumber(v)
		a.Beta = f
		return err
	},
	"epsilon": func(a *Arm, v any) error {
		f, err := axisNumber(v)
		if err != nil {
			return err
		}
		if f == 0 { // the non-DP control arm of a budget sweep
			a.DP = nil
			return nil
		}
		dp := DP{Epsilon: f, Delta: 1e-5, Clip: 1}
		if a.DP != nil { // keep the base arm's delta/clip, sweep epsilon
			dp.Delta, dp.Clip = a.DP.Delta, a.DP.Clip
		}
		a.DP = &dp
		return nil
	},
	"latency": func(a *Arm, v any) error {
		f, err := axisNumber(v)
		if err != nil {
			return err
		}
		if f == 0 { // the zero-delay control arm of a latency sweep
			a.Net = nil
			return nil
		}
		a.Net = &Net{Transport: "latency", LatencyMean: f, LatencyJitter: f * 0.3}
		return nil
	},
	"drop": func(a *Arm, v any) error {
		f, err := axisNumber(v)
		if err != nil {
			return err
		}
		if f == 0 {
			a.Net = nil
			return nil
		}
		a.Net = &Net{Transport: "lossy", DropProb: f}
		return nil
	},
	"churnFraction": func(a *Arm, v any) error {
		f, err := axisNumber(v)
		a.ChurnFraction = f
		return err
	},
	"localEpochs": func(a *Arm, v any) error {
		f, err := axisNumber(v)
		a.LocalEpochs = int(f)
		return err
	},
	"trainPerFactor": func(a *Arm, v any) error {
		f, err := axisNumber(v)
		a.TrainPerFactor = f
		return err
	},
	"canaries": func(a *Arm, v any) error {
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("want a bool, got %T", v)
		}
		a.Canaries = b
		return nil
	},
}

// axisFieldNames returns the sorted supported axis names (for error
// messages).
func axisFieldNames() []string {
	names := make([]string, 0, len(axisSetters))
	for name := range axisSetters {
		names = append(names, name)
	}
	// Insertion sort: the set is tiny and this avoids importing sort.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

// Hash returns the canonical content hash of the spec: the SHA-256 of
// the canonical JSON of its expanded arm list (name and caption are
// presentation, not content). Two specs that expand to the same arms —
// e.g. a sweep and its hand-written expansion — hash identically.
func (s *Spec) Hash() (string, error) {
	arms, err := s.ExpandArms()
	if err != nil {
		return "", err
	}
	raw, err := json.Marshal(arms)
	if err != nil {
		return "", fmt.Errorf("spec: hash: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// Hash returns the canonical content hash of one arm (the SHA-256 of
// its canonical JSON). It keys the resumable sweep cache together with
// the run's scale fingerprint.
func (a Arm) Hash() (string, error) {
	raw, err := json.Marshal(a)
	if err != nil {
		return "", fmt.Errorf("spec: arm hash: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}
