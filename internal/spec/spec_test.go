package spec

import (
	"errors"
	"strings"
	"testing"
)

func validArm() Arm {
	return Arm{Label: "a", Corpus: "cifar10", Protocol: "samo", ViewSize: 2}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"not json", `{`},
		{"unknown top-level field", `{"name":"x","arms":[],"bogus":1}`},
		{"unknown arm field", `{"name":"x","arms":[{"label":"a","corpus":"cifar10","protocol":"samo","viewSize":2,"pigeons":3}]}`},
		{"trailing data", `{"name":"x","arms":[{"label":"a","corpus":"cifar10","protocol":"samo","viewSize":2}]} {}`},
		{"no arms or sweep", `{"name":"x"}`},
		{"no name", `{"arms":[{"label":"a","corpus":"cifar10","protocol":"samo","viewSize":2}]}`},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.raw)); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	raw := `{
		"name": "demo",
		"caption": "a demo",
		"arms": [
			{"label": "plain", "corpus": "cifar10", "protocol": "samo", "viewSize": 2},
			{"label": "hard", "corpus": "purchase100", "protocol": "base", "viewSize": 3,
			 "dynamics": "peerswap", "beta": 0.5,
			 "dp": {"epsilon": 10, "delta": 1e-5, "clip": 1},
			 "net": {"transport": "latency", "latencyMean": 20, "latencyJitter": 6},
			 "churnFraction": 0.25, "seedOffset": 7}
		]
	}`
	sp, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "demo" || len(sp.Arms) != 2 {
		t.Fatalf("parsed spec = %+v", sp)
	}
	hard := sp.Arms[1]
	if hard.DP == nil || hard.DP.Epsilon != 10 || hard.Net == nil || hard.Net.LatencyMean != 20 ||
		hard.ChurnFraction != 0.25 || hard.SeedOffset != 7 || hard.Dynamics != "peerswap" {
		t.Fatalf("arm fields lost: %+v", hard)
	}
}

func TestArmValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Arm)
	}{
		{"empty label", func(a *Arm) { a.Label = "" }},
		{"unknown corpus", func(a *Arm) { a.Corpus = "mnist" }},
		{"unknown protocol", func(a *Arm) { a.Protocol = "push-pull" }},
		{"unknown dynamics", func(a *Arm) { a.Dynamics = "brownian" }},
		{"zero view", func(a *Arm) { a.ViewSize = 0 }},
		{"negative beta", func(a *Arm) { a.Beta = -1 }},
		{"bad dp", func(a *Arm) { a.DP = &DP{Epsilon: -1, Delta: 1e-5, Clip: 1} }},
		{"bad transport", func(a *Arm) { a.Net = &Net{Transport: "pigeon"} }},
		{"bad drop", func(a *Arm) { a.Net = &Net{Transport: "lossy", DropProb: 1.5} }},
		{"bad partition", func(a *Arm) {
			a.Net = &Net{Transport: "lossy", Partitions: []Partition{{FromTick: 5, ToTick: 3, Members: []int{0}}}}
		}},
		{"churn fraction out of range", func(a *Arm) { a.ChurnFraction = 1 }},
		{"churn and fraction", func(a *Arm) {
			a.ChurnFraction = 0.2
			a.Churn = []Churn{{Node: 0, LeaveTick: 1}}
		}},
		{"negative churn tick", func(a *Arm) { a.Churn = []Churn{{Node: 0, LeaveTick: -1}} }},
		{"bad train override", func(a *Arm) { a.Train = &Train{LR: 0, LocalEpochs: 1} }},
	}
	for _, tc := range cases {
		arm := validArm()
		tc.mutate(&arm)
		sp := &Spec{Name: "x", Arms: []Arm{arm}}
		if err := sp.Validate(); !errors.Is(err, ErrSpec) {
			t.Fatalf("%s: error = %v, want ErrSpec", tc.name, err)
		}
	}
	if err := (&Spec{Name: "x", Arms: []Arm{validArm()}}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	dup := &Spec{Name: "x", Arms: []Arm{validArm(), validArm()}}
	if err := dup.Validate(); !errors.Is(err, ErrSpec) {
		t.Fatalf("duplicate labels accepted: %v", err)
	}
	// Distinct labels but a shared seed offset: the arms would share
	// every RNG stream and silently correlate.
	collide := validArm()
	collide.Label = "b"
	dupSeed := &Spec{Name: "x", Arms: []Arm{validArm(), collide}}
	if err := dupSeed.Validate(); !errors.Is(err, ErrSpec) {
		t.Fatalf("duplicate seed offsets accepted: %v", err)
	}
}

func TestSweepExpansion(t *testing.T) {
	sp := &Spec{
		Name: "grid",
		Sweep: &Sweep{
			Base: Arm{Label: "cifar10", Corpus: "cifar10", Protocol: "samo", ViewSize: 5, SeedOffset: 100},
			Axes: []Axis{
				{Field: "protocol", Values: []any{"base", "samo"}},
				{Field: "latency", Values: []any{0.0, 25.0}},
			},
		},
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	arms, err := sp.ExpandArms()
	if err != nil {
		t.Fatal(err)
	}
	if len(arms) != 4 {
		t.Fatalf("expanded %d arms, want 4", len(arms))
	}
	wantLabels := []string{
		"cifar10/protocol=base/latency=0",
		"cifar10/protocol=base/latency=25",
		"cifar10/protocol=samo/latency=0",
		"cifar10/protocol=samo/latency=25",
	}
	for i, arm := range arms {
		if arm.Label != wantLabels[i] {
			t.Fatalf("arm %d label = %q, want %q", i, arm.Label, wantLabels[i])
		}
		if arm.SeedOffset != 100+int64(i) {
			t.Fatalf("arm %d seed offset = %d, want %d", i, arm.SeedOffset, 100+i)
		}
	}
	if arms[0].Net != nil || arms[1].Net == nil || arms[1].Net.LatencyMean != 25 {
		t.Fatalf("latency axis not applied: %+v %+v", arms[0].Net, arms[1].Net)
	}
	if arms[1].Net.LatencyJitter != 25*0.3 {
		t.Fatalf("latency jitter = %v", arms[1].Net.LatencyJitter)
	}
}

func TestSweepExpansionDoesNotAliasBase(t *testing.T) {
	sp := &Spec{
		Name: "alias",
		Sweep: &Sweep{
			Base: Arm{
				Label: "b", Corpus: "cifar10", Protocol: "samo", ViewSize: 2,
				DP:    &DP{Epsilon: 10, Delta: 1e-5, Clip: 1},
				Churn: []Churn{{Node: 0, LeaveTick: 10, RejoinTick: 20}},
			},
			Axes: []Axis{{Field: "epsilon", Values: []any{5.0, 15.0}}},
		},
	}
	arms, err := sp.ExpandArms()
	if err != nil {
		t.Fatal(err)
	}
	arms[0].DP.Epsilon = 99
	arms[0].Churn[0].Node = 99
	if arms[1].DP.Epsilon != 15 || arms[1].Churn[0].Node != 0 {
		t.Fatalf("expanded arms alias each other: %+v", arms[1])
	}
	if sp.Sweep.Base.DP.Epsilon != 10 {
		t.Fatalf("base arm mutated: %+v", sp.Sweep.Base.DP)
	}
}

func TestSweepEpsilonAxis(t *testing.T) {
	sp := &Spec{
		Name: "dp",
		Sweep: &Sweep{
			Base: Arm{Corpus: "purchase100", Protocol: "samo", ViewSize: 5},
			Axes: []Axis{{Field: "epsilon", Values: []any{0.0, 25.0}}},
		},
	}
	arms, err := sp.ExpandArms()
	if err != nil {
		t.Fatal(err)
	}
	if arms[0].DP != nil {
		t.Fatalf("epsilon=0 arm has DP: %+v", arms[0].DP)
	}
	if arms[1].DP == nil || arms[1].DP.Epsilon != 25 || arms[1].DP.Delta != 1e-5 || arms[1].DP.Clip != 1 {
		t.Fatalf("epsilon=25 arm DP = %+v", arms[1].DP)
	}
}

func TestSweepRejectsBadAxes(t *testing.T) {
	base := Arm{Label: "b", Corpus: "cifar10", Protocol: "samo", ViewSize: 2}
	cases := []struct {
		name string
		axes []Axis
	}{
		{"no axes", nil},
		{"empty values", []Axis{{Field: "beta"}}},
		{"unknown field", []Axis{{Field: "gravity", Values: []any{1.0}}}},
		{"wrong value type", []Axis{{Field: "beta", Values: []any{"high"}}}},
		{"wrong string type", []Axis{{Field: "protocol", Values: []any{3.0}}}},
		{"wrong bool type", []Axis{{Field: "canaries", Values: []any{"yes"}}}},
	}
	for _, tc := range cases {
		sp := &Spec{Name: "x", Sweep: &Sweep{Base: base, Axes: tc.axes}}
		if _, err := sp.ExpandArms(); !errors.Is(err, ErrSpec) {
			t.Fatalf("%s: error = %v, want ErrSpec", tc.name, err)
		}
	}
}

func TestHashStableAndContentSensitive(t *testing.T) {
	sp := &Spec{Name: "h", Arms: []Arm{validArm()}}
	h1, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := sp.Hash()
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hash unstable or malformed: %q vs %q", h1, h2)
	}
	// Name/caption are presentation, not content.
	renamed := &Spec{Name: "other", Caption: "different", Arms: []Arm{validArm()}}
	if hr, _ := renamed.Hash(); hr != h1 {
		t.Fatalf("rename changed the content hash")
	}
	// Any arm change is content.
	changed := &Spec{Name: "h", Arms: []Arm{validArm()}}
	changed.Arms[0].ViewSize = 3
	if hc, _ := changed.Hash(); hc == h1 {
		t.Fatalf("content change kept the hash")
	}
	// A sweep hashes like its hand-written expansion.
	swept := &Spec{
		Name: "h",
		Sweep: &Sweep{
			Base: Arm{Corpus: "cifar10", Protocol: "samo", ViewSize: 2},
			Axes: []Axis{{Field: "beta", Values: []any{0.5}}},
		},
	}
	arms, err := swept.ExpandArms()
	if err != nil {
		t.Fatal(err)
	}
	flat := &Spec{Name: "flat", Arms: arms}
	hs, _ := swept.Hash()
	hf, _ := flat.Hash()
	if hs != hf {
		t.Fatalf("sweep hash %q != expansion hash %q", hs, hf)
	}
}

func TestArmHashDistinguishesArms(t *testing.T) {
	a := validArm()
	b := validArm()
	b.SeedOffset = 1
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := b.Hash()
	if ha == hb {
		t.Fatal("distinct arms hash identically")
	}
}

func TestLabelValueFormatting(t *testing.T) {
	for _, tc := range []struct {
		v    any
		want string
	}{
		{0.0, "0"}, {25.0, "25"}, {0.5, "0.5"}, {true, "true"}, {"samo", "samo"},
	} {
		if got := labelValue(tc.v); got != tc.want {
			t.Fatalf("labelValue(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestAxisFieldNamesSorted(t *testing.T) {
	names := axisFieldNames()
	if len(names) != len(axisSetters) {
		t.Fatalf("names = %v", names)
	}
	joined := strings.Join(names, ",")
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %s", joined)
		}
	}
}

// TestSweepExpansionBounded: a hostile cartesian blow-up (reachable
// from untrusted service submissions) must fail validation instead of
// exhausting memory or overflowing into an empty expansion.
func TestSweepExpansionBounded(t *testing.T) {
	big := make([]any, 1000)
	for i := range big {
		big[i] = float64(i + 1)
	}
	sp := &Spec{
		Name: "blowup",
		Sweep: &Sweep{
			Base: Arm{Label: "b", Corpus: "cifar10", Protocol: "samo", ViewSize: 2},
			Axes: []Axis{
				{Field: "viewSize", Values: big},
				{Field: "localEpochs", Values: big},
				{Field: "trainPerFactor", Values: big},
			},
		},
	}
	if err := sp.Validate(); err == nil || !errors.Is(err, ErrSpec) {
		t.Fatalf("10^9-arm sweep accepted: %v", err)
	}
	if _, err := sp.ExpandArms(); err == nil {
		t.Fatal("ExpandArms ran an unbounded blow-up")
	}
}
