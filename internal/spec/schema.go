package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// SchemaHash returns a deterministic fingerprint of the declarative
// scenario vocabulary: every JSON field (name and Go type) reachable
// from Spec, the supported sweep axis names, and the accepted
// corpus/protocol/dynamics/transport name sets. Two builds whose
// hashes match accept exactly the same scenario language — the value
// `dlsim version` and the service's /v1/version report so a client can
// tell whether a spec written against one build is understood by
// another.
func SchemaHash() string {
	var b strings.Builder
	describeType(&b, reflect.TypeOf(Spec{}), map[reflect.Type]bool{})
	axes := make([]string, 0, len(axisSetters))
	for name := range axisSetters {
		axes = append(axes, name)
	}
	sort.Strings(axes)
	fmt.Fprintf(&b, "axes=%v\n", axes)
	fmt.Fprintf(&b, "corpora=%v\nprotocols=%v\ndynamics=%v\ntransports=%v\n",
		knownCorpora, knownProtocols, knownDynamics, knownTransports)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// describeType appends a canonical one-line-per-field description of t
// (struct fields in declaration order with their JSON names), recursing
// into named struct types once each.
func describeType(b *strings.Builder, t reflect.Type, seen map[reflect.Type]bool) {
	for t.Kind() == reflect.Pointer || t.Kind() == reflect.Slice {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct || seen[t] {
		return
	}
	seen[t] = true
	fmt.Fprintf(b, "type %s\n", t.Name())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		name := strings.Split(f.Tag.Get("json"), ",")[0]
		if name == "" {
			name = f.Name
		}
		fmt.Fprintf(b, "  %s %s\n", name, f.Type.String())
	}
	for i := 0; i < t.NumField(); i++ {
		describeType(b, t.Field(i).Type, seen)
	}
}
