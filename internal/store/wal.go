package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// castagnoli is the CRC-32C table shared by the log and segments —
// hardware-accelerated on every platform the simulator targets.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// wal is the write-ahead log: an append-only file of framed records,
//
//	u32 LE payload length | u32 LE CRC-32C(payload) | payload
//	payload = uvarint(len(key)) key uvarint(len(val)) val
//
// A record is durable once its bytes are in the file; the checksum
// rejects a torn final record after a crash, and repair truncates the
// file back to the last intact frame so appends resume cleanly.
type wal struct {
	f    *os.File
	size int64
	buf  []byte // scratch frame, reused across appends
}

// openWAL opens (creating if absent) the log at path, replaying every
// durable record into apply in append order. In read-only mode a torn
// tail is ignored but left in place; otherwise it is truncated away.
func openWAL(path string, readOnly bool, apply func(key string, val []byte)) (*wal, error) {
	flags := os.O_RDWR | os.O_CREATE
	if readOnly {
		flags = os.O_RDONLY
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return &wal{}, nil
		}
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open log: %w", err)
	}
	durable, err := replayWAL(f, apply)
	if err != nil {
		f.Close()
		return nil, err
	}
	if readOnly {
		f.Close()
		return &wal{}, nil
	}
	// Truncate a torn tail so the next append starts at a frame
	// boundary instead of extending garbage.
	if err := f.Truncate(durable); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: repair log: %w", err)
	}
	if _, err := f.Seek(durable, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek log: %w", err)
	}
	return &wal{f: f, size: durable}, nil
}

// replayWAL streams intact records into apply and returns the offset
// just past the last one. A short or checksum-failing frame marks the
// durable end — everything before it is valid by induction.
func replayWAL(f *os.File, apply func(string, []byte)) (int64, error) {
	var durable int64
	var hdr [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return durable, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<30 { // implausible length: torn or corrupt frame
			return durable, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return durable, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return durable, nil // bit rot or torn overwrite
		}
		key, val, err := decodeKV(payload)
		if err != nil {
			return durable, nil
		}
		apply(key, val)
		durable += int64(len(hdr)) + int64(n)
	}
}

// append frames and writes one record. The write reaches the kernel
// before return; sync additionally fsyncs for machine-crash safety.
func (w *wal) append(key string, val []byte, sync bool) error {
	payload := appendKV(w.buf[:0], key, val)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	frame := append(hdr[:], payload...)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: append log: %w", err)
	}
	w.size += int64(len(frame))
	w.buf = payload[:0]
	if sync {
		return w.sync()
	}
	return nil
}

// sync fsyncs the log.
func (w *wal) sync() error {
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: sync log: %w", err)
	}
	return nil
}

// reset empties the log after its contents are pinned in a segment.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: reset log: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: reset log: %w", err)
	}
	w.size = 0
	return w.sync()
}

func (w *wal) close() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
}

// appendKV appends the uvarint-framed key/value pair encoding to dst.
func appendKV(dst []byte, key string, val []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	dst = append(dst, val...)
	return dst
}

// decodeKV parses an appendKV payload. The returned val aliases b.
func decodeKV(b []byte) (string, []byte, error) {
	kl, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < kl {
		return "", nil, fmt.Errorf("store: record key frame: %w", ErrCorrupt)
	}
	key := string(b[n : n+int(kl)])
	b = b[n+int(kl):]
	vl, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) != vl {
		return "", nil, fmt.Errorf("store: record value frame: %w", ErrCorrupt)
	}
	return key, b[n : n+int(vl)], nil
}
