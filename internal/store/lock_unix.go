//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// acquireLock takes an exclusive, non-blocking flock on path so two
// processes cannot own the same store: the second Open fails fast with
// ErrLocked instead of interleaving log appends. The lock dies with
// the process, so a crash never leaves the store stuck.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK {
			return nil, fmt.Errorf("store: %s: %w", path, ErrLocked)
		}
		return nil, fmt.Errorf("store: lock: %w", err)
	}
	return f, nil
}

// releaseLock drops the flock (implicit in close).
func releaseLock(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	_ = f.Close()
}
