package store

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// bloom is a standard double-hashing bloom filter: k probe positions
// derived from two 64-bit hashes as h1 + i*h2 (Kirsch–Mitzenmacher),
// which preserves the classic false-positive bound without k
// independent hash functions. At the default 10 bits/key and the
// optimal k = ln2 * bits/key ≈ 7, the expected FP rate is ~0.9%.
type bloom struct {
	bits []byte
	k    int
}

// newBloom sizes a filter for n keys at bitsPerKey.
func newBloom(n, bitsPerKey int) *bloom {
	if n < 1 {
		n = 1
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	k := int(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &bloom{bits: make([]byte, (nbits+7)/8), k: k}
}

// bloomHashes derives the two probe-sequence hashes for key: h1 is
// FNV-1a 64, h2 a splitmix64 scramble of it forced odd so the probe
// stride never collapses to zero modulo a power of two.
func bloomHashes(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	z := h1 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	h2 := (z ^ (z >> 31)) | 1
	return h1, h2
}

// add sets key's k probe bits.
func (b *bloom) add(key string) {
	h1, h2 := bloomHashes(key)
	n := uint64(len(b.bits)) * 8
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % n
		b.bits[pos/8] |= 1 << (pos % 8)
	}
}

// mayContain reports whether key could be present; false is definite.
func (b *bloom) mayContain(key string) bool {
	h1, h2 := bloomHashes(key)
	n := uint64(len(b.bits)) * 8
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % n
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// marshal serializes the filter: u32 k, u32 byte length, bits.
func (b *bloom) marshal(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.k))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.bits)))
	return append(dst, b.bits...)
}

// unmarshalBloom parses a marshal'd filter.
func unmarshalBloom(b []byte) (*bloom, error) {
	if len(b) < 8 {
		return nil, ErrCorrupt
	}
	k := int(binary.LittleEndian.Uint32(b[0:4]))
	n := int(binary.LittleEndian.Uint32(b[4:8]))
	if k < 1 || k > 30 || len(b) < 8+n {
		return nil, ErrCorrupt
	}
	return &bloom{bits: b[8 : 8+n], k: k}, nil
}
