// Package store implements the embedded indexed result store behind
// resumable sweeps and the job service's checkpoint caches: an
// append-only, crash-safe log + LSM layout sized for sweeps of
// 10^5–10^7 arm results, replacing one-file-per-arm caches whose
// resume cost is dominated by per-arm open/read syscalls.
//
// Layout. Every Put lands in two places: an append-only write-ahead
// log (wal.log; length-prefixed, CRC-32C-checksummed records) that
// makes the write durable in order, and an in-memory memtable that
// serves reads. When the memtable exceeds Options.MemtableBytes it is
// flushed to a sorted, immutable segment file carrying a bloom filter
// (point lookups skip segments that cannot contain the key), a sparse
// fence-key index (lookups and range scans seek by key instead of
// reading the segment), and a per-record CRC. A MANIFEST file pins the
// live segment set and is replaced atomically (temp file + rename +
// directory sync), so reopening after a crash recovers exactly the
// manifest's segments plus the log's durable tail — a torn final log
// record is detected by its checksum and truncated away. Background
// compaction merges segments (newest record wins) to bound read
// fan-out.
//
// One process owns a store at a time (an exclusive LOCK file keeps
// others out; Options.ReadOnly opens without the lock for inspection,
// and OpenShared refcounts one handle across concurrent users inside
// a process). Keys are ordered lexicographically as raw bytes. There
// is no delete: results are content-addressed and immutable, so the
// only mutation is an idempotent overwrite.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrReadOnly is returned by mutating operations on a read-only store.
var ErrReadOnly = errors.New("store: opened read-only")

// ErrLocked is returned by Open when another process holds the store.
var ErrLocked = errors.New("store: locked by another process")

// ErrCorrupt marks unreadable on-disk state: a segment whose checksums
// do not reproduce, or a manifest naming files that do not exist.
var ErrCorrupt = errors.New("store: corrupt")

// Options size and harden a store. The zero value is usable.
type Options struct {
	// MemtableBytes bounds the in-memory write buffer; exceeding it
	// flushes the memtable to a segment. Default 8 MiB.
	MemtableBytes int
	// BloomBitsPerKey sizes each segment's bloom filter. Default 10
	// (~1% false-positive rate).
	BloomBitsPerKey int
	// IndexInterval is the sparse-index stride: one fence key every
	// this many records. Default 32.
	IndexInterval int
	// CompactAt triggers background compaction when the live segment
	// count reaches it. Default 8. <= 1 disables auto-compaction.
	CompactAt int
	// SyncWrites fsyncs the log after every Put. Off by default: each
	// Put still reaches the kernel (surviving a process kill) before
	// returning, and Flush/Close fsync — only a machine crash can lose
	// the un-synced tail.
	SyncWrites bool
	// ReadOnly opens without the process lock and never mutates the
	// directory: no log repair, no flush, no compaction. Safe for
	// inspecting a store another process owns.
	ReadOnly bool
	// NoBackground disables the automatic background compactor;
	// Compact still works when called explicitly. Used by tests that
	// need a deterministic segment layout.
	NoBackground bool
}

// withDefaults resolves unset fields.
func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 8 << 20
	}
	if o.BloomBitsPerKey <= 0 {
		o.BloomBitsPerKey = 10
	}
	if o.IndexInterval <= 0 {
		o.IndexInterval = 32
	}
	if o.CompactAt == 0 {
		o.CompactAt = 8
	}
	return o
}

// Stats is a point-in-time snapshot of the store's shape and counters.
type Stats struct {
	// MemtableRecords/MemtableBytes describe the unflushed write buffer.
	MemtableRecords, MemtableBytes int
	// Segments and SegmentRecords describe the live immutable set.
	Segments, SegmentRecords int
	// LogBytes is the current write-ahead log size.
	LogBytes int64
	// Puts/Gets/Scans count operations since open.
	Puts, Gets, Scans uint64
	// BloomChecks counts segment bloom probes; BloomSkips the probes
	// that pruned a segment; BloomFalsePositives the probes that passed
	// but found no record — BloomFalsePositives/BloomChecks is the
	// measured false-positive rate.
	BloomChecks, BloomSkips, BloomFalsePositives uint64
	// Flushes/Compactions count memtable flushes and segment merges.
	Flushes, Compactions uint64
}

// Store is an embedded log-structured key-value store. It is safe for
// concurrent use.
type Store struct {
	dir string
	opt Options

	mu   sync.RWMutex
	mem  map[string][]byte
	memB int
	wal  *wal
	segs []*segment // oldest first; later segments win on equal keys
	man  manifest
	lock *os.File
	// retired holds files of segments replaced by compaction; readers
	// snapshotted before the swap may still be on them, so the handles
	// stay open until Close.
	retired []*os.File
	closed  bool

	compacting bool
	bg         sync.WaitGroup

	puts, gets, scans    atomic.Uint64
	bloomChecks          atomic.Uint64
	bloomSkips, bloomFPs atomic.Uint64
	flushes, compactions atomic.Uint64
}

// Open opens (creating if absent) the store in dir. Unless
// opts.ReadOnly, the directory is locked against other processes,
// orphan files from interrupted flushes are removed, and a torn tail
// of the write-ahead log is truncated to the last durable record. A
// read-only open never creates: an absent directory is an error.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.ReadOnly {
		if fi, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("store: open read-only: %w", err)
		} else if !fi.IsDir() {
			return nil, fmt.Errorf("store: open read-only: %s is not a directory", dir)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s := &Store{dir: dir, opt: opts, mem: map[string][]byte{}}
	if !opts.ReadOnly {
		lock, err := acquireLock(filepath.Join(dir, "LOCK"))
		if err != nil {
			return nil, err
		}
		s.lock = lock
	}
	fail := func(err error) (*Store, error) {
		if s.lock != nil {
			releaseLock(s.lock)
		}
		return nil, err
	}
	man, err := loadManifest(dir)
	if err != nil {
		return fail(err)
	}
	s.man = man
	for _, name := range man.Segments {
		seg, err := openSegment(filepath.Join(dir, name))
		if err != nil {
			for _, g := range s.segs {
				g.close()
			}
			return fail(err)
		}
		s.segs = append(s.segs, seg)
	}
	if !opts.ReadOnly {
		s.removeOrphans()
	}
	w, err := openWAL(filepath.Join(dir, "wal.log"), opts.ReadOnly, func(key string, val []byte) {
		if old, ok := s.mem[key]; ok {
			s.memB -= len(key) + len(old)
		}
		// val aliases the replay scratch buffer; the memtable owns its
		// values, so copy.
		s.mem[key] = append([]byte(nil), val...)
		s.memB += len(key) + len(val)
	})
	if err != nil {
		for _, g := range s.segs {
			g.close()
		}
		return fail(err)
	}
	s.wal = w
	return s, nil
}

// removeOrphans deletes segment and temp files the manifest does not
// reference — the leavings of a flush or compaction interrupted before
// its manifest swap. Their records are still recoverable: a flush's
// records stay in the log until the manifest pins the segment.
func (s *Store) removeOrphans() {
	live := make(map[string]bool, len(s.man.Segments))
	for _, name := range s.man.Segments {
		live[name] = true
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") || (strings.HasSuffix(name, ".seg") && !live[name]) {
			_ = os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// Put records key -> val. The write is appended to the log (reaching
// the kernel before Put returns; fsynced when Options.SyncWrites) and
// becomes immediately visible to Get and Scan. Overwrites are allowed;
// the newest value wins. Key and value are copied.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.opt.ReadOnly:
		return ErrReadOnly
	}
	if err := s.wal.append(key, val, s.opt.SyncWrites); err != nil {
		return err
	}
	v := append([]byte(nil), val...)
	if old, ok := s.mem[key]; ok {
		s.memB -= len(key) + len(old)
	}
	s.mem[key] = v
	s.memB += len(key) + len(v)
	s.puts.Add(1)
	if s.memB >= s.opt.MemtableBytes {
		return s.flushLocked()
	}
	return nil
}

// Get returns the newest value recorded for key. The returned slice is
// the caller's to keep.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.gets.Add(1)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, false, ErrClosed
	}
	if v, ok := s.mem[key]; ok {
		out := append([]byte(nil), v...)
		s.mu.RUnlock()
		return out, true, nil
	}
	segs := s.segs // immutable snapshot; slice is replaced, never mutated
	s.mu.RUnlock()
	// Newest segment first: later flushes shadow earlier ones.
	for i := len(segs) - 1; i >= 0; i-- {
		v, ok, err := segs[i].get(key, &s.bloomChecks, &s.bloomSkips, &s.bloomFPs)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return v, true, nil
		}
	}
	return nil, false, nil
}

// Has reports whether key has a recorded value, without copying it.
func (s *Store) Has(key string) (bool, error) {
	v, ok, err := s.Get(key)
	_ = v
	return ok, err
}

// Scan streams every live record with start <= key < end in ascending
// key order, newest value per key. An empty end means "to the last
// key". The value slice passed to fn is only valid during the call;
// fn returning an error stops the scan and returns that error.
func (s *Store) Scan(start, end string, fn func(key string, val []byte) error) error {
	return s.scan(start, end, true, func(key string, val []byte) error { return fn(key, val) })
}

// ScanKeys streams keys like Scan without materializing values — the
// cheap form for existence sweeps over large stores.
func (s *Store) ScanKeys(start, end string, fn func(key string) error) error {
	return s.scan(start, end, false, func(key string, _ []byte) error { return fn(key) })
}

func (s *Store) scan(start, end string, wantValues bool, fn func(string, []byte) error) error {
	s.scans.Add(1)
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	// Snapshot the sources under the lock: the in-range memtable
	// entries copied out as slice headers (values are immutable once
	// stored, but the map itself is not — Put mutates it), segments by
	// reference (files replaced by compaction stay open until Close).
	memKeys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		if k >= start && (end == "" || k < end) {
			memKeys = append(memKeys, k)
		}
	}
	sort.Strings(memKeys)
	memVals := make([][]byte, len(memKeys))
	for i, k := range memKeys {
		memVals[i] = s.mem[k]
	}
	segs := s.segs
	s.mu.RUnlock()

	// Merge sources in priority order: memtable shadows every segment,
	// a later segment shadows an earlier one. An empty memtable drops
	// out, so the common post-flush scan merges segments alone — and a
	// single-segment store streams with no merge overhead at all.
	its := make([]iterator, 0, len(segs)+1)
	if len(memKeys) > 0 {
		its = append(its, &memIter{keys: memKeys, vals: memVals})
	}
	for i := len(segs) - 1; i >= 0; i-- {
		it, err := segs[i].iter(start, wantValues)
		if err != nil {
			return err
		}
		its = append(its, it)
	}
	return mergeScan(its, end, fn)
}

// Flush writes the memtable to a new segment, pins it in the manifest,
// resets the log, and fsyncs everything — the durability barrier.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.opt.ReadOnly:
		return ErrReadOnly
	}
	return s.flushLocked()
}

// flushLocked is Flush with s.mu held.
func (s *Store) flushLocked() error {
	if len(s.mem) == 0 {
		return s.wal.sync()
	}
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	name := fmt.Sprintf("%06d.seg", s.man.NextSeg)
	seg, err := writeSegment(filepath.Join(s.dir, name), keys, func(k string) []byte { return s.mem[k] }, s.opt)
	if err != nil {
		return err
	}
	man := s.man
	man.NextSeg++
	man.Segments = append(append([]string(nil), man.Segments...), name)
	if err := saveManifest(s.dir, man); err != nil {
		seg.close()
		_ = os.Remove(seg.path)
		return err
	}
	s.man = man
	s.segs = append(append([]*segment(nil), s.segs...), seg)
	s.mem = map[string][]byte{}
	s.memB = 0
	if err := s.wal.reset(); err != nil {
		return err
	}
	s.flushes.Add(1)
	if !s.opt.NoBackground && s.opt.CompactAt > 1 && len(s.segs) >= s.opt.CompactAt && !s.compacting {
		s.compacting = true
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			_ = s.compact()
			s.mu.Lock()
			s.compacting = false
			s.mu.Unlock()
		}()
	}
	return nil
}

// Compact merges every live segment into one (newest record wins),
// bounding point-lookup fan-out and reclaiming overwritten space. It
// runs concurrently with reads and writes; only the final manifest
// swap takes the write lock.
func (s *Store) Compact() error {
	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		return ErrClosed
	case s.opt.ReadOnly:
		s.mu.Unlock()
		return ErrReadOnly
	}
	s.mu.Unlock()
	return s.compact()
}

func (s *Store) compact() error {
	s.mu.Lock()
	snap := s.segs
	next := s.man.NextSeg
	s.mu.Unlock()
	if len(snap) < 2 {
		return nil
	}
	name := fmt.Sprintf("%06d.seg", next)
	seg, err := mergeSegments(filepath.Join(s.dir, name), snap, s.opt)
	if err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		seg.close()
		_ = os.Remove(seg.path)
		return ErrClosed
	}
	// Segments flushed while the merge ran are newer than everything in
	// it; they stay, after the merged segment.
	newer := s.segs[len(snap):]
	man := s.man
	man.NextSeg = next + 1
	man.Segments = append([]string{name}, manifestNames(newer)...)
	if err := saveManifest(s.dir, man); err != nil {
		seg.close()
		_ = os.Remove(seg.path)
		return err
	}
	s.man = man
	for _, old := range snap {
		// Keep the handle open for in-flight readers; unlink the path.
		s.retired = append(s.retired, old.f)
		_ = os.Remove(old.path)
	}
	s.segs = append([]*segment{seg}, newer...)
	s.compactions.Add(1)
	return nil
}

// Close syncs the log, waits for background compaction, and releases
// the process lock. The memtable is not flushed to a segment — the log
// replays it on the next Open.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	var syncErr error
	if !s.opt.ReadOnly {
		syncErr = s.wal.sync()
	}
	s.closed = true
	s.mu.Unlock()
	s.bg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal.close()
	for _, g := range s.segs {
		g.close()
	}
	for _, f := range s.retired {
		_ = f.Close()
	}
	if s.lock != nil {
		releaseLock(s.lock)
		s.lock = nil
	}
	return syncErr
}

// Stats snapshots the store's shape and counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		MemtableRecords: len(s.mem),
		MemtableBytes:   s.memB,
		Segments:        len(s.segs),
		LogBytes:        s.wal.size,
	}
	for _, g := range s.segs {
		st.SegmentRecords += g.count
	}
	s.mu.RUnlock()
	st.Puts = s.puts.Load()
	st.Gets = s.gets.Load()
	st.Scans = s.scans.Load()
	st.BloomChecks = s.bloomChecks.Load()
	st.BloomSkips = s.bloomSkips.Load()
	st.BloomFalsePositives = s.bloomFPs.Load()
	st.Flushes = s.flushes.Load()
	st.Compactions = s.compactions.Load()
	return st
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// PrefixEnd returns the exclusive upper bound of a prefix scan: the
// smallest key greater than every key starting with prefix, or "" when
// no such bound exists.
func PrefixEnd(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// manifestNames lists the file names of segments, in order.
func manifestNames(segs []*segment) []string {
	names := make([]string, len(segs))
	for i, g := range segs {
		names[i] = filepath.Base(g.path)
	}
	return names
}
