package store

import (
	"fmt"
	"testing"
)

// The benchmark corpus mirrors the real workload: ~600-byte JSON arm
// records keyed by 66-byte content-hash keys ("a!" + 64 hex chars).
const benchRecords = 20000

func benchKey(i int) string {
	return fmt.Sprintf("a!%064x", i)
}

func benchVal(i int) []byte {
	return []byte(fmt.Sprintf(`{"label":"arm-%06d","key":"%064x","records":[{"round":3,"accuracy":0.61,"attack":0.52}],"messages_sent":%d,"bytes_sent":%d,"sum":"%064x"}`,
		i, i, 1000+i, 64000+i, i*7))
}

func benchStore(b *testing.B, n int) *Store {
	b.Helper()
	s, err := Open(b.TempDir(), Options{NoBackground: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	for i := 0; i < n; i++ {
		if err := s.Put(benchKey(i), benchVal(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStorePut measures the append path: log frame + memtable
// insert, with the amortized flush cost included.
func BenchmarkStorePut(b *testing.B) {
	s, err := Open(b.TempDir(), Options{NoBackground: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(benchKey(i), benchVal(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures bloom-guided point lookups against a
// flushed segment, alternating present and absent keys — the resume
// cache-hit pattern.
func BenchmarkStoreGet(b *testing.B) {
	s := benchStore(b, benchRecords)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if _, ok, err := s.Get(benchKey(i % benchRecords)); !ok || err != nil {
				b.Fatalf("present key missing: ok=%v err=%v", ok, err)
			}
		} else {
			if _, ok, err := s.Get(benchKey(benchRecords + i)); ok || err != nil {
				b.Fatalf("absent key found: ok=%v err=%v", ok, err)
			}
		}
	}
}

// BenchmarkStoreScan measures a full ordered sweep — the bulk resume
// prescan. Reported per record via b.N scaling over the whole corpus.
func BenchmarkStoreScan(b *testing.B) {
	s := benchStore(b, benchRecords)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := s.Scan("", "", func(k string, v []byte) error {
			n++
			return nil
		})
		if err != nil || n != benchRecords {
			b.Fatalf("scan: n=%d err=%v", n, err)
		}
	}
}

// BenchmarkStoreReopen measures crash-recovery latency: open a store
// whose records sit in one flushed segment (manifest + segment header
// reads, no log replay).
func BenchmarkStoreReopen(b *testing.B) {
	s := benchStore(b, benchRecords)
	dir := s.Dir()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s2, err := Open(dir, Options{NoBackground: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := s2.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
