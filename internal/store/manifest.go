package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// manifest pins the live segment set. It is the store's root pointer:
// a segment exists once its file is fsynced, but it is *live* only
// once a manifest naming it lands — so every multi-file transition
// (flush, compaction) commits atomically at the manifest swap, and a
// crash between steps leaves only orphan files that open() sweeps up.
type manifest struct {
	// Version guards future format changes.
	Version int `json:"version"`
	// Segments lists live segment files oldest first; later segments
	// shadow earlier ones on equal keys.
	Segments []string `json:"segments"`
	// NextSeg is the next segment file number, never reused — so an
	// orphan from a crashed flush can never collide with a live name.
	NextSeg int `json:"next_seg"`
}

const manifestName = "MANIFEST.json"

// loadManifest reads dir's manifest; a missing file is an empty store.
func loadManifest(dir string) (manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return manifest{Version: 1}, nil
	}
	if err != nil {
		return manifest{}, fmt.Errorf("store: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return manifest{}, fmt.Errorf("store: parse manifest: %w (%v)", ErrCorrupt, err)
	}
	if m.Version != 1 {
		return manifest{}, fmt.Errorf("store: manifest version %d: %w", m.Version, ErrCorrupt)
	}
	return m, nil
}

// saveManifest atomically replaces dir's manifest: write temp, fsync,
// rename over, fsync the directory. Readers see the old or new set,
// never a partial one.
func saveManifest(dir string, m manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	b = append(b, '\n')
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("store: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("store: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: close manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: swap manifest: %w", err)
	}
	return syncDir(path)
}

// syncDir fsyncs the directory containing path, making a just-renamed
// entry durable. Some filesystems reject directory fsync; that is not
// a correctness loss worth failing over, so such errors are ignored.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return nil
	}
	_ = d.Sync()
	return d.Close()
}

// sharedHandle refcounts one open Store across in-process users. The
// server runs concurrent jobs against one checkpoint store; the flock
// excludes other processes, and this registry shares the single
// in-process handle instead of failing the second opener.
type sharedHandle struct {
	store *Store
	refs  int
}

var (
	sharedMu sync.Mutex
	shared   = map[string]*sharedHandle{}
)

// OpenShared opens dir like Open, but if this process already holds
// the store open via OpenShared, it returns the same handle with its
// reference count bumped. Close releases one reference; the store
// actually closes when the last reference does. Options apply only to
// the first open.
func OpenShared(dir string, opts Options) (*Store, func() error, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open shared: %w", err)
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if h, ok := shared[abs]; ok {
		h.refs++
		return h.store, sharedRelease(abs), nil
	}
	s, err := Open(abs, opts)
	if err != nil {
		return nil, nil, err
	}
	shared[abs] = &sharedHandle{store: s, refs: 1}
	return s, sharedRelease(abs), nil
}

// sharedRelease builds the release func for one OpenShared reference.
func sharedRelease(abs string) func() error {
	released := false
	return func() error {
		sharedMu.Lock()
		defer sharedMu.Unlock()
		if released {
			return nil
		}
		released = true
		h, ok := shared[abs]
		if !ok {
			return nil
		}
		h.refs--
		if h.refs > 0 {
			return nil
		}
		delete(shared, abs)
		return h.store.Close()
	}
}
