//go:build !unix

package store

import (
	"fmt"
	"os"
)

// acquireLock without flock support degrades to an advisory lock file:
// O_EXCL creation excludes a second opener, and a stale file from a
// crash must be removed by hand. Every platform the simulator targets
// is unix; this fallback only keeps the package portable.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("store: %s exists (stale? remove by hand): %w", path, ErrLocked)
		}
		return nil, fmt.Errorf("store: lock: %w", err)
	}
	return f, nil
}

// releaseLock closes and removes the advisory lock file.
func releaseLock(f *os.File) {
	name := f.Name()
	_ = f.Close()
	_ = os.Remove(name)
}
