package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync/atomic"
)

// Segment file layout. Records are sorted by key and immutable once
// written; readers seek by the sparse fence-key index instead of
// scanning from the front, and the bloom filter lets point lookups
// skip segments that cannot hold the key.
//
//	[8]  magic "dlsseg01"
//	[..] records:   uvarint klen | key | uvarint vlen | val | u32 CRC-32C(key||val)
//	[..] index:     u32 count
//	                count × (uvarint klen | key | uvarint offset)   — fence keys,
//	                    one per IndexInterval records, offset into the record area
//	                uvarint maxlen | maxKey                          — last key
//	[..] bloom:     marshal'd filter
//	[40] footer:    u64 indexOff | u64 bloomOff | u64 footerOff(=start of footer)
//	                u32 count | u32 CRC-32C(index||bloom) | [8] magic "dlsend01"
//
// The footer is fixed-size and written last, so a segment is valid iff
// both magics and the index/bloom checksum reproduce — a partial write
// can never be mistaken for a complete segment (and can never be live
// anyway: the manifest pins a segment only after its fsync).
const (
	segMagic    = "dlsseg01"
	segEndMagic = "dlsend01"
	footerSize  = 8 + 8 + 8 + 4 + 4 + 8
)

// fence is one sparse-index entry: the key of record i*IndexInterval
// and its byte offset in the record area.
type fence struct {
	key string
	off int64
}

// segment is an open, immutable, sorted segment file.
type segment struct {
	path    string
	f       *os.File
	count   int
	fences  []fence
	maxKey  string
	filter  *bloom
	dataEnd int64 // offset just past the record area
}

// writeSegment writes keys (already sorted) with values from val into
// a new segment at path, fsyncs it, and opens it for reading. The
// caller pins it in the manifest afterwards.
func writeSegment(path string, keys []string, val func(string) []byte, opt Options) (*segment, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("store: write segment: %w", err)
	}
	fail := func(err error) (*segment, error) {
		f.Close()
		_ = os.Remove(tmp)
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.WriteString(segMagic); err != nil {
		return fail(err)
	}
	filter := newBloom(len(keys), opt.BloomBitsPerKey)
	var index []byte
	var nFences uint32
	off := int64(len(segMagic))
	var rec []byte
	for i, k := range keys {
		filter.add(k)
		if i%opt.IndexInterval == 0 {
			index = binary.AppendUvarint(index, uint64(len(k)))
			index = append(index, k...)
			index = binary.AppendUvarint(index, uint64(off-int64(len(segMagic))))
			nFences++
		}
		v := val(k)
		rec = appendKV(rec[:0], k, v)
		rec = binary.LittleEndian.AppendUint32(rec, recordCRC(k, v))
		if _, err := w.Write(rec); err != nil {
			return fail(err)
		}
		off += int64(len(rec))
	}
	indexOff := off
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], nFences)
	block := append(hdr[:], index...)
	maxKey := ""
	if len(keys) > 0 {
		maxKey = keys[len(keys)-1]
	}
	block = binary.AppendUvarint(block, uint64(len(maxKey)))
	block = append(block, maxKey...)
	bloomOff := indexOff + int64(len(block))
	block = filter.marshal(block)
	if _, err := w.Write(block); err != nil {
		return fail(err)
	}
	footerOff := indexOff + int64(len(block))
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(foot[8:16], uint64(bloomOff))
	binary.LittleEndian.PutUint64(foot[16:24], uint64(footerOff))
	binary.LittleEndian.PutUint32(foot[24:28], uint32(len(keys)))
	binary.LittleEndian.PutUint32(foot[28:32], crc32.Checksum(block, castagnoli))
	copy(foot[32:40], segEndMagic)
	if _, err := w.Write(foot[:]); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("store: write segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("store: write segment: %w", err)
	}
	if err := syncDir(path); err != nil {
		return nil, err
	}
	return openSegment(path)
}

// recordCRC checksums one record's key and value together.
func recordCRC(key string, val []byte) uint32 {
	c := crc32.Checksum([]byte(key), castagnoli)
	return crc32.Update(c, castagnoli, val)
}

// openSegment opens and validates a segment: both magics, the
// index+bloom checksum, and the index structure must reproduce.
// Records themselves are verified lazily by their per-record CRC.
func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open segment: %w", err)
	}
	fail := func(err error) (*segment, error) {
		f.Close()
		return nil, err
	}
	corrupt := func(what string) (*segment, error) {
		return fail(fmt.Errorf("store: segment %s %s: %w", path, what, ErrCorrupt))
	}
	fi, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if fi.Size() < int64(len(segMagic))+footerSize {
		return corrupt("truncated")
	}
	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], fi.Size()-footerSize); err != nil {
		return fail(err)
	}
	if string(foot[32:40]) != segEndMagic {
		return corrupt("footer magic")
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[0:8]))
	bloomOff := int64(binary.LittleEndian.Uint64(foot[8:16]))
	footerOff := int64(binary.LittleEndian.Uint64(foot[16:24]))
	count := int(binary.LittleEndian.Uint32(foot[24:28]))
	sum := binary.LittleEndian.Uint32(foot[28:32])
	if footerOff != fi.Size()-footerSize || indexOff < int64(len(segMagic)) ||
		bloomOff < indexOff || footerOff < bloomOff {
		return corrupt("footer offsets")
	}
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return fail(err)
	}
	if string(magic[:]) != segMagic {
		return corrupt("header magic")
	}
	block := make([]byte, footerOff-indexOff)
	if _, err := f.ReadAt(block, indexOff); err != nil {
		return fail(err)
	}
	if crc32.Checksum(block, castagnoli) != sum {
		return corrupt("index checksum")
	}
	// Parse the index block: fence entries, then maxKey.
	if len(block) < 4 {
		return corrupt("index header")
	}
	nFences := binary.LittleEndian.Uint32(block[0:4])
	b := block[4:]
	fences := make([]fence, 0, nFences)
	for i := uint32(0); i < nFences; i++ {
		kl, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < kl {
			return corrupt("fence key")
		}
		k := string(b[n : n+int(kl)])
		b = b[n+int(kl):]
		o, n := binary.Uvarint(b)
		if n <= 0 {
			return corrupt("fence offset")
		}
		b = b[n:]
		fences = append(fences, fence{key: k, off: int64(o)})
	}
	ml, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < ml {
		return corrupt("max key")
	}
	maxKey := string(b[n : n+int(ml)])
	filter, err := unmarshalBloom(block[bloomOff-indexOff:])
	if err != nil {
		return corrupt("bloom filter")
	}
	// The filter's bits alias block, which stays referenced — copy is
	// unnecessary. Keep block alive via the filter.
	return &segment{
		path:    path,
		f:       f,
		count:   count,
		fences:  fences,
		maxKey:  maxKey,
		filter:  filter,
		dataEnd: indexOff,
	}, nil
}

func (g *segment) close() {
	if g.f != nil {
		g.f.Close()
	}
}

// get point-looks-up key: bloom probe, fence binary search, then a
// bounded forward read of at most IndexInterval records.
func (g *segment) get(key string, checks, skips, fps *atomic.Uint64) ([]byte, bool, error) {
	if g.count == 0 || key > g.maxKey || len(g.fences) == 0 || key < g.fences[0].key {
		return nil, false, nil
	}
	checks.Add(1)
	if !g.filter.mayContain(key) {
		skips.Add(1)
		return nil, false, nil
	}
	// Last fence with fence.key <= key starts the probe window.
	i := sort.Search(len(g.fences), func(i int) bool { return g.fences[i].key > key }) - 1
	start := int64(len(segMagic)) + g.fences[i].off
	end := g.dataEnd
	if i+1 < len(g.fences) {
		end = int64(len(segMagic)) + g.fences[i+1].off
	}
	rr := recordReader{r: bufio.NewReaderSize(io.NewSectionReader(g.f, start, end-start), 4<<10)}
	for {
		k, v, err := rr.read()
		if err == io.EOF {
			return nil, false, nil
		}
		if err != nil {
			return nil, false, fmt.Errorf("store: segment %s: %w", g.path, err)
		}
		if k == key {
			// v aliases the reader's scratch; the caller keeps the copy.
			return append([]byte(nil), v...), true, nil
		}
		if k > key {
			fps.Add(1)
			return nil, false, nil
		}
	}
}

// recordReader decodes framed records from a segment's record area,
// verifying each CRC. Its scratch buffers are reused across records —
// only the key's string conversion allocates per record — so a full
// scan stays cheap; returned values alias the scratch and are valid
// until the next read.
type recordReader struct {
	r    *bufio.Reader
	kbuf []byte
	vbuf []byte
}

// read decodes the next record. io.EOF marks a clean end.
func (rr *recordReader) read() (string, []byte, error) {
	kl, err := binary.ReadUvarint(rr.r)
	if err != nil {
		if err == io.EOF {
			return "", nil, io.EOF
		}
		return "", nil, fmt.Errorf("record key length: %w", ErrCorrupt)
	}
	if uint64(cap(rr.kbuf)) < kl {
		rr.kbuf = make([]byte, kl)
	}
	kb := rr.kbuf[:kl]
	if _, err := io.ReadFull(rr.r, kb); err != nil {
		return "", nil, fmt.Errorf("record key: %w", ErrCorrupt)
	}
	vl, err := binary.ReadUvarint(rr.r)
	if err != nil {
		return "", nil, fmt.Errorf("record value length: %w", ErrCorrupt)
	}
	if uint64(cap(rr.vbuf)) < vl {
		rr.vbuf = make([]byte, vl)
	}
	vb := rr.vbuf[:vl]
	if _, err := io.ReadFull(rr.r, vb); err != nil {
		return "", nil, fmt.Errorf("record value: %w", ErrCorrupt)
	}
	var crc [4]byte
	if _, err := io.ReadFull(rr.r, crc[:]); err != nil {
		return "", nil, fmt.Errorf("record checksum frame: %w", ErrCorrupt)
	}
	key := string(kb)
	if binary.LittleEndian.Uint32(crc[:]) != recordCRC(key, vb) {
		return "", nil, fmt.Errorf("record checksum: %w", ErrCorrupt)
	}
	return key, vb, nil
}

// segIter streams a segment's records in key order from a start bound.
type segIter struct {
	g   *segment
	rr  recordReader
	key string
	val []byte
	eof bool
}

// iter positions an iterator at the first record with key >= start,
// seeking via the fence index. Values are served from one reused
// scratch buffer — the scan contract makes them transient, valid only
// during the callback — so a full sweep allocates per key, not per
// record body. wantValues is accepted for symmetry; the format
// interleaves values either way.
func (g *segment) iter(start string, wantValues bool) (*segIter, error) {
	_ = wantValues
	off := int64(len(segMagic))
	if len(g.fences) > 0 && start > g.fences[0].key {
		i := sort.Search(len(g.fences), func(i int) bool { return g.fences[i].key > start }) - 1
		off = int64(len(segMagic)) + g.fences[i].off
	}
	it := &segIter{
		g:  g,
		rr: recordReader{r: bufio.NewReaderSize(io.NewSectionReader(g.f, off, g.dataEnd-off), 32<<10)},
	}
	// Advance past records below the start bound.
	for {
		if err := it.next(); err != nil {
			return nil, err
		}
		if it.eof || it.key >= start {
			return it, nil
		}
	}
}

// next advances to the following record; eof is sticky.
func (it *segIter) next() error {
	if it.eof {
		return nil
	}
	k, v, err := it.rr.read()
	if err == io.EOF {
		it.eof = true
		it.key, it.val = "", nil
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: segment %s: %w", it.g.path, err)
	}
	it.key, it.val = k, v
	return nil
}

// mergeSegments compacts segs (oldest first; later wins on equal keys)
// into one new segment at path via a streaming k-way merge — memory
// stays O(segments), not O(records).
func mergeSegments(path string, segs []*segment, opt Options) (*segment, error) {
	// Count survivors first so the bloom filter is sized right; the
	// double scan is cheap (sequential reads) next to the write.
	its := make([]iterator, 0, len(segs))
	for i := len(segs) - 1; i >= 0; i-- { // newest first = priority order
		it, err := segs[i].iter("", false)
		if err != nil {
			return nil, err
		}
		its = append(its, it)
	}
	n := 0
	if err := mergeScan(its, "", func(string, []byte) error { n++; return nil }); err != nil {
		return nil, err
	}

	its = its[:0]
	for i := len(segs) - 1; i >= 0; i-- {
		it, err := segs[i].iter("", true)
		if err != nil {
			return nil, err
		}
		its = append(its, it)
	}
	return writeSegmentStream(path, n, its, opt)
}

// writeSegmentStream is writeSegment fed by a merge of iterators
// instead of an in-memory map.
func writeSegmentStream(path string, count int, its []iterator, opt Options) (*segment, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("store: write segment: %w", err)
	}
	fail := func(err error) (*segment, error) {
		f.Close()
		_ = os.Remove(tmp)
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.WriteString(segMagic); err != nil {
		return fail(err)
	}
	filter := newBloom(count, opt.BloomBitsPerKey)
	var index []byte
	var nFences uint32
	off := int64(len(segMagic))
	var rec []byte
	i := 0
	maxKey := ""
	werr := mergeScan(its, "", func(k string, v []byte) error {
		filter.add(k)
		if i%opt.IndexInterval == 0 {
			index = binary.AppendUvarint(index, uint64(len(k)))
			index = append(index, k...)
			index = binary.AppendUvarint(index, uint64(off-int64(len(segMagic))))
			nFences++
		}
		rec = appendKV(rec[:0], k, v)
		rec = binary.LittleEndian.AppendUint32(rec, recordCRC(k, v))
		if _, err := w.Write(rec); err != nil {
			return err
		}
		off += int64(len(rec))
		maxKey = k
		i++
		return nil
	})
	if werr != nil {
		return fail(werr)
	}
	indexOff := off
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], nFences)
	block := append(hdr[:], index...)
	block = binary.AppendUvarint(block, uint64(len(maxKey)))
	block = append(block, maxKey...)
	bloomOff := indexOff + int64(len(block))
	block = filter.marshal(block)
	if _, err := w.Write(block); err != nil {
		return fail(err)
	}
	footerOff := indexOff + int64(len(block))
	var foot [footerSize]byte
	binary.LittleEndian.PutUint64(foot[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(foot[8:16], uint64(bloomOff))
	binary.LittleEndian.PutUint64(foot[16:24], uint64(footerOff))
	binary.LittleEndian.PutUint32(foot[24:28], uint32(i))
	binary.LittleEndian.PutUint32(foot[28:32], crc32.Checksum(block, castagnoli))
	copy(foot[32:40], segEndMagic)
	if _, err := w.Write(foot[:]); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("store: write segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("store: write segment: %w", err)
	}
	if err := syncDir(path); err != nil {
		return nil, err
	}
	return openSegment(path)
}

// iterator is the common shape merged by mergeScan: a positioned
// cursor with sticky EOF.
type iterator interface {
	cur() (key string, val []byte, eof bool)
	advance() error
}

func (it *segIter) cur() (string, []byte, bool) { return it.key, it.val, it.eof }
func (it *segIter) advance() error              { return it.next() }

// memIter iterates a sorted snapshot of memtable entries, copied out
// under the store lock — it must not touch the live map.
type memIter struct {
	keys []string
	vals [][]byte
	i    int
}

func (it *memIter) cur() (string, []byte, bool) {
	if it.i >= len(it.keys) {
		return "", nil, true
	}
	return it.keys[it.i], it.vals[it.i], false
}
func (it *memIter) advance() error { it.i++; return nil }

// mergeScan merges pre-positioned iterators in ascending key order and
// streams each key's winning value to fn. its is in priority order:
// when several iterators sit on the same key, the earliest in the
// slice wins and the rest skip that key. An empty end means unbounded.
func mergeScan(its []iterator, end string, fn func(string, []byte) error) error {
	// One source (single-segment store, empty memtable — the common
	// resume prescan) needs no merge: stream the iterator directly.
	if len(its) == 1 {
		it := its[0]
		for {
			k, v, eof := it.cur()
			if eof || (end != "" && k >= end) {
				return nil
			}
			if err := fn(k, v); err != nil {
				return err
			}
			if err := it.advance(); err != nil {
				return err
			}
		}
	}
	for {
		best := -1
		var bestKey string
		for i, it := range its {
			k, _, eof := it.cur()
			if eof {
				continue
			}
			if best == -1 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best == -1 {
			return nil
		}
		if end != "" && bestKey >= end {
			return nil
		}
		_, v, _ := its[best].cur()
		if err := fn(bestKey, v); err != nil {
			return err
		}
		// Advance every iterator sitting on the emitted key — shadowed
		// duplicates are consumed, not re-emitted.
		for _, it := range its {
			k, _, eof := it.cur()
			if !eof && k == bestKey {
				if err := it.advance(); err != nil {
					return err
				}
			}
		}
	}
}
