package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Crash-consistency suite: the recovery contract is "reopen lands on
// the last durable record". These tests manufacture every torn state a
// kill can leave — the log cut at every byte boundary of its final
// record, a garbage tail, a half-written segment without its manifest
// entry — and assert reopen recovers exactly the durable prefix and
// that writes resume cleanly afterward.

// TestTornLogEveryByteBoundary writes N records, then for every
// possible truncation point inside the final record verifies reopen
// keeps all earlier records, drops the torn one, and accepts a
// rewrite of it afterward.
func TestTornLogEveryByteBoundary(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")

	// Build the reference log once: 5 records, remember the offset
	// where the last record's frame begins.
	s := testOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		mustPut(t, s, fmt.Sprintf("durable-%d", i), fmt.Sprintf("value-%d", i))
	}
	before := fileSize(t, logPath)
	mustPut(t, s, "torn", "the-final-record-payload")
	after := fileSize(t, logPath)
	s.Close()
	whole, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(whole)) != after || after <= before {
		t.Fatalf("log sizes: before=%d after=%d len=%d", before, after, len(whole))
	}

	for cut := before; cut <= after; cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut-before), func(t *testing.T) {
			d2 := t.TempDir()
			if err := os.WriteFile(filepath.Join(d2, "wal.log"), whole[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			s2 := testOpen(t, d2, Options{})
			// The four durable records always survive.
			for i := 0; i < 4; i++ {
				k := fmt.Sprintf("durable-%d", i)
				v, ok, err := s2.Get(k)
				if err != nil || !ok || string(v) != fmt.Sprintf("value-%d", i) {
					t.Fatalf("Get(%s) = %q ok=%v err=%v", k, v, ok, err)
				}
			}
			v, ok, err := s2.Get("torn")
			if err != nil {
				t.Fatalf("Get(torn): %v", err)
			}
			switch {
			case cut == after: // nothing torn: the full record survives
				if !ok || string(v) != "the-final-record-payload" {
					t.Fatalf("intact record lost: %q ok=%v", v, ok)
				}
			default: // any shorter cut must drop the record whole
				if ok {
					t.Fatalf("torn record visible after cut at +%d: %q", cut-before, v)
				}
			}
			// Appends resume cleanly on the repaired log...
			mustPut(t, s2, "torn", "rewritten")
			s2.Close()
			// ...and a second reopen sees the rewrite (the repair
			// truncated the torn bytes rather than appending past them).
			s3 := testOpen(t, d2, Options{})
			v, ok, err = s3.Get("torn")
			if err != nil || !ok || string(v) != "rewritten" {
				t.Fatalf("after repair+rewrite+reopen: %q ok=%v err=%v", v, ok, err)
			}
		})
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestGarbageLogTail covers the overwrite-in-place hazard: bytes after
// the durable prefix that are non-zero junk rather than a clean cut.
func TestGarbageLogTail(t *testing.T) {
	dir := t.TempDir()
	s := testOpen(t, dir, Options{})
	mustPut(t, s, "good", "payload")
	s.Close()
	logPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\xde\xad\xbe\xef garbage tail that is no frame")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := testOpen(t, dir, Options{})
	if v, ok, err := s2.Get("good"); err != nil || !ok || string(v) != "payload" {
		t.Fatalf("Get(good) = %q ok=%v err=%v", v, ok, err)
	}
	mustPut(t, s2, "next", "after-repair")
	s2.Close()
	s3 := testOpen(t, dir, Options{})
	if v, ok, err := s3.Get("next"); err != nil || !ok || string(v) != "after-repair" {
		t.Fatalf("Get(next) = %q ok=%v err=%v", v, ok, err)
	}
}

// TestCrashBetweenSegmentAndManifest models a flush interrupted after
// the segment file landed but before the manifest pinned it: the
// records must still be recovered — from the log, which only resets
// after the manifest swap.
func TestCrashBetweenSegmentAndManifest(t *testing.T) {
	dir := t.TempDir()
	s := testOpen(t, dir, Options{})
	for i := 0; i < 30; i++ {
		put(t, s, fmt.Sprintf("r-%02d", i), i)
	}
	// Write the segment the way flush would, but "crash" before the
	// manifest swap: the segment exists, the manifest and log don't
	// know about it.
	keys := make([]string, 0, 30)
	for i := 0; i < 30; i++ {
		keys = append(keys, fmt.Sprintf("r-%02d", i))
	}
	seg, err := writeSegment(filepath.Join(dir, "000000.seg"), keys,
		func(k string) []byte { return []byte("from-orphan") }, s.opt)
	if err != nil {
		t.Fatalf("writeSegment: %v", err)
	}
	seg.close()
	s.Close()

	s2 := testOpen(t, dir, Options{})
	st := s2.Stats()
	if st.Segments != 0 {
		t.Fatalf("orphan segment adopted: %+v", st)
	}
	if st.MemtableRecords != 30 {
		t.Fatalf("log replay recovered %d records, want 30", st.MemtableRecords)
	}
	// Values come from the log, not the orphan.
	if v, ok, _ := s2.Get("r-00"); !ok || string(v) != "v0" {
		t.Fatalf("Get(r-00) = %q ok=%v, want v0 from log", v, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, "000000.seg")); !os.IsNotExist(err) {
		t.Fatal("orphan segment not swept")
	}
}

// TestTruncatedSegmentRejected: a segment named by the manifest but
// torn on disk must fail open loudly, not silently serve a prefix.
func TestTruncatedSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	s := testOpen(t, dir, Options{})
	for i := 0; i < 50; i++ {
		put(t, s, key3(i), i)
	}
	mustFlush(t, s)
	s.Close()
	matches, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(matches) != 1 {
		t.Fatalf("want 1 segment, have %v", matches)
	}
	b, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(matches[0], b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a truncated live segment")
	}
}

// TestRepeatedKillPoints drives a longer write/kill/reopen cycle:
// after each simulated kill (log copied at an arbitrary cut), the
// recovered store must contain a prefix-closed set of the writes.
func TestRepeatedKillPoints(t *testing.T) {
	dir := t.TempDir()
	s := testOpen(t, dir, Options{})
	const n = 40
	// Record the log size after each put: every boundary is a durable
	// point, and any cut between boundary i and i+1 recovers exactly i+1
	// records.
	bounds := make([]int64, 0, n+1)
	logPath := filepath.Join(dir, "wal.log")
	bounds = append(bounds, 0)
	for i := 0; i < n; i++ {
		put(t, s, fmt.Sprintf("seq-%02d", i), i)
		bounds = append(bounds, fileSize(t, logPath))
	}
	s.Close()
	whole, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	// Sample cuts: each record boundary, plus mid-record cuts.
	for i := 1; i <= n; i++ {
		for _, cut := range []int64{bounds[i], (bounds[i-1] + bounds[i]) / 2} {
			d2 := t.TempDir()
			if err := os.WriteFile(filepath.Join(d2, "wal.log"), whole[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			s2 := testOpen(t, d2, Options{})
			got := s2.Stats().MemtableRecords
			want := i
			if cut != bounds[i] { // mid-record cut drops record i-1's tail
				want = i - 1
			}
			if got != want {
				t.Fatalf("cut=%d (record %d): recovered %d records, want %d", cut, i, got, want)
			}
			s2.Close()
		}
	}
}
