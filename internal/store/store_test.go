package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// testOpen opens a deterministic store for tests: tiny memtable
// thresholds are set per-test; background compaction is off so the
// segment layout is a function of the operations alone.
func testOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.NoBackground = true
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := testOpen(t, t.TempDir(), Options{})
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		if err := s.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s) = ok=%v err=%v", k, ok, err)
		}
		if want := fmt.Sprintf("val-%d", i); string(v) != want {
			t.Fatalf("Get(%s) = %q, want %q", k, v, want)
		}
	}
	if _, ok, err := s.Get("missing"); ok || err != nil {
		t.Fatalf("Get(missing) = ok=%v err=%v, want absent", ok, err)
	}
}

func TestReopenRecoversLogAndSegments(t *testing.T) {
	dir := t.TempDir()
	s := testOpen(t, dir, Options{})
	for i := 0; i < 50; i++ {
		put(t, s, fmt.Sprintf("seg-%03d", i), i)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// These stay in the log only — no flush before close.
	for i := 50; i < 80; i++ {
		put(t, s, fmt.Sprintf("seg-%03d", i), i)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := testOpen(t, dir, Options{})
	st := s2.Stats()
	if st.Segments != 1 || st.SegmentRecords != 50 || st.MemtableRecords != 30 {
		t.Fatalf("reopened shape = %+v, want 1 segment / 50 seg records / 30 mem records", st)
	}
	for i := 0; i < 80; i++ {
		k := fmt.Sprintf("seg-%03d", i)
		v, ok, err := s2.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after reopen Get(%s) = %q ok=%v err=%v", k, v, ok, err)
		}
	}
}

func put(t *testing.T, s *Store, k string, i int) {
	t.Helper()
	if err := s.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
		t.Fatalf("Put(%s): %v", k, err)
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	dir := t.TempDir()
	s := testOpen(t, dir, Options{})
	// Same key through three generations: old segment, newer segment,
	// memtable. Each layer must shadow the ones below, across reopen.
	mustPut(t, s, "k", "gen1")
	mustFlush(t, s)
	mustPut(t, s, "k", "gen2")
	mustFlush(t, s)
	mustPut(t, s, "k", "gen3")
	for _, phase := range []string{"live", "reopened"} {
		v, ok, err := s.Get("k")
		if err != nil || !ok || string(v) != "gen3" {
			t.Fatalf("%s Get(k) = %q ok=%v err=%v, want gen3", phase, v, ok, err)
		}
		n := 0
		err = s.Scan("", "", func(k string, v []byte) error {
			n++
			if string(v) != "gen3" {
				return fmt.Errorf("scan saw %q", v)
			}
			return nil
		})
		if err != nil || n != 1 {
			t.Fatalf("%s scan: n=%d err=%v", phase, n, err)
		}
		if phase == "live" {
			s.Close()
			s = testOpen(t, dir, Options{})
		}
	}
}

func mustPut(t *testing.T, s *Store, k, v string) {
	t.Helper()
	if err := s.Put(k, []byte(v)); err != nil {
		t.Fatalf("Put(%s): %v", k, err)
	}
}

func mustFlush(t *testing.T, s *Store) {
	t.Helper()
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestScanMergesLayersInOrder(t *testing.T) {
	s := testOpen(t, t.TempDir(), Options{IndexInterval: 4})
	// Interleave keys across three layers so the merge has to zip.
	for i := 0; i < 90; i += 3 {
		put(t, s, key3(i), i)
	}
	mustFlush(t, s)
	for i := 1; i < 90; i += 3 {
		put(t, s, key3(i), i)
	}
	mustFlush(t, s)
	for i := 2; i < 90; i += 3 {
		put(t, s, key3(i), i)
	}

	var got []string
	if err := s.Scan("", "", func(k string, v []byte) error {
		got = append(got, k)
		if want := fmt.Sprintf("v%d", atoi(t, k)); string(v) != want {
			return fmt.Errorf("key %s has value %q, want %q", k, v, want)
		}
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 90 || !sort.StringsAreSorted(got) {
		t.Fatalf("scan returned %d keys (sorted=%v), want 90 sorted", len(got), sort.StringsAreSorted(got))
	}

	// Bounded range: [k-030, k-060).
	var ranged []string
	if err := s.Scan(key3(30), key3(60), func(k string, _ []byte) error {
		ranged = append(ranged, k)
		return nil
	}); err != nil {
		t.Fatalf("ranged Scan: %v", err)
	}
	if len(ranged) != 30 || ranged[0] != key3(30) || ranged[len(ranged)-1] != key3(59) {
		t.Fatalf("ranged scan = %d keys [%s..%s], want 30 [k-030..k-059]",
			len(ranged), ranged[0], ranged[len(ranged)-1])
	}

	// ScanKeys agrees with Scan.
	var keys []string
	if err := s.ScanKeys("", "", func(k string) error { keys = append(keys, k); return nil }); err != nil {
		t.Fatalf("ScanKeys: %v", err)
	}
	if len(keys) != len(got) {
		t.Fatalf("ScanKeys saw %d keys, Scan saw %d", len(keys), len(got))
	}
}

func key3(i int) string { return fmt.Sprintf("k-%03d", i) }

func atoi(t *testing.T, k string) int {
	t.Helper()
	var i int
	if _, err := fmt.Sscanf(k, "k-%d", &i); err != nil {
		t.Fatalf("bad key %q", k)
	}
	return i
}

func TestCompactMergesToOneSegment(t *testing.T) {
	dir := t.TempDir()
	s := testOpen(t, dir, Options{IndexInterval: 8})
	for gen := 0; gen < 5; gen++ {
		for i := gen * 20; i < gen*20+40; i++ { // overlapping ranges force real merging
			put(t, s, key3(i), i+gen*1000)
		}
		mustFlush(t, s)
	}
	if st := s.Stats(); st.Segments != 5 {
		t.Fatalf("pre-compaction segments = %d, want 5", st.Segments)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.Segments != 1 {
		t.Fatalf("post-compaction segments = %d, want 1", st.Segments)
	}
	// 5 generations of 40 keys starting at gen*20 cover k-000..k-119.
	if st.SegmentRecords != 120 {
		t.Fatalf("post-compaction records = %d, want 120", st.SegmentRecords)
	}
	// Newest generation wins where ranges overlapped: key 40 was
	// written by gen 1 (values 1040) and gen 2 (value 2040); gen 2 wins.
	v, ok, err := s.Get(key3(40))
	if err != nil || !ok || string(v) != "v2040" {
		t.Fatalf("Get(k-040) = %q ok=%v err=%v, want v2040", v, ok, err)
	}
	// Old segment files are unlinked.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(matches) != 1 {
		t.Fatalf("disk has %d .seg files after compaction, want 1: %v", len(matches), matches)
	}
	// Everything still readable after reopen.
	s.Close()
	s2 := testOpen(t, dir, Options{})
	for i := 0; i < 120; i++ {
		if _, ok, err := s2.Get(key3(i)); err != nil || !ok {
			t.Fatalf("after compact+reopen Get(%s) ok=%v err=%v", key3(i), ok, err)
		}
	}
}

func TestAutoFlushAtMemtableThreshold(t *testing.T) {
	s := testOpen(t, t.TempDir(), Options{MemtableBytes: 1024})
	for i := 0; i < 200; i++ {
		put(t, s, fmt.Sprintf("auto-%04d", i), i)
	}
	st := s.Stats()
	if st.Flushes == 0 || st.Segments == 0 {
		t.Fatalf("no automatic flush at 1KiB threshold: %+v", st)
	}
	if got := st.MemtableRecords + st.SegmentRecords; got != 200 {
		t.Fatalf("records across layers = %d, want 200", got)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	s := testOpen(t, t.TempDir(), Options{})
	const n = 5000
	for i := 0; i < n; i++ {
		put(t, s, fmt.Sprintf("present-%05d", i), i)
	}
	mustFlush(t, s)
	// Probe absent keys that sort inside the segment's key range, so
	// pruning is the bloom filter's job, not the cheap min/max check.
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("present-%05dz", i)
		if _, ok, err := s.Get(k); ok || err != nil {
			t.Fatalf("Get(%s) = ok=%v err=%v", k, ok, err)
		}
	}
	st := s.Stats()
	if st.BloomChecks == 0 {
		t.Fatal("bloom filter never consulted")
	}
	fp := float64(st.BloomFalsePositives) / float64(st.BloomChecks)
	t.Logf("bloom: %d checks, %d skips, %d false positives (%.3f%% FP rate)",
		st.BloomChecks, st.BloomSkips, st.BloomFalsePositives, 100*fp)
	// 10 bits/key targets ~0.9%; 3% leaves noise margin without letting
	// a broken filter (≈100% FP) pass.
	if fp > 0.03 {
		t.Fatalf("bloom FP rate %.3f exceeds 3%%", fp)
	}
	// And present keys must never be skipped (no false negatives).
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("present-%05d", i)
		if _, ok, err := s.Get(k); !ok || err != nil {
			t.Fatalf("false negative on %s: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestLockExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	s := testOpen(t, dir, Options{})
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
	// Read-only bypasses the lock.
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatalf("read-only Open while locked: %v", err)
	}
	if err := ro.Put("k", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Put = %v, want ErrReadOnly", err)
	}
	ro.Close()
	// Lock releases on Close.
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	s2.Close()
}

func TestOpenSharedRefcounts(t *testing.T) {
	dir := t.TempDir()
	s1, rel1, err := OpenShared(dir, Options{NoBackground: true})
	if err != nil {
		t.Fatalf("OpenShared: %v", err)
	}
	s2, rel2, err := OpenShared(dir, Options{})
	if err != nil {
		t.Fatalf("second OpenShared: %v", err)
	}
	if s1 != s2 {
		t.Fatal("OpenShared returned distinct handles for one dir")
	}
	if err := s1.Put("k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := rel1(); err != nil {
		t.Fatalf("first release: %v", err)
	}
	// Still open: the second reference holds it.
	if _, ok, err := s2.Get("k"); !ok || err != nil {
		t.Fatalf("Get after first release: ok=%v err=%v", ok, err)
	}
	if err := rel2(); err != nil {
		t.Fatalf("last release: %v", err)
	}
	if _, _, err := s2.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get after last release = %v, want ErrClosed", err)
	}
	if err := rel2(); err != nil { // double release is a no-op
		t.Fatalf("double release: %v", err)
	}
}

func TestOrphanSegmentsCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := testOpen(t, dir, Options{})
	put(t, s, "live", 1)
	mustFlush(t, s)
	s.Close()
	// Simulate a flush that crashed before its manifest swap: a segment
	// file and a temp file the manifest does not know about.
	for _, name := range []string{"999999.seg", "000777.seg.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2 := testOpen(t, dir, Options{})
	if _, ok, err := s2.Get("live"); !ok || err != nil {
		t.Fatalf("Get(live) after orphan sweep: ok=%v err=%v", ok, err)
	}
	for _, name := range []string{"999999.seg", "000777.seg.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived open", name)
		}
	}
}

func TestConcurrentPutGetScan(t *testing.T) {
	s := testOpen(t, t.TempDir(), Options{MemtableBytes: 4096})
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("w%d-%04d", w, i)
				if err := s.Put(k, []byte(k)); err != nil {
					t.Errorf("Put(%s): %v", k, err)
					return
				}
				if v, ok, err := s.Get(k); err != nil || !ok || string(v) != k {
					t.Errorf("Get(%s) = %q ok=%v err=%v", k, v, ok, err)
					return
				}
			}
		}(w)
	}
	// A reader scanning while writers run: counts only monotonicity
	// and integrity, not totals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			prev := ""
			err := s.Scan("", "", func(k string, v []byte) error {
				if k <= prev {
					return fmt.Errorf("scan out of order: %q after %q", k, prev)
				}
				prev = k
				return nil
			})
			if err != nil {
				t.Errorf("concurrent Scan: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	n := 0
	if err := s.ScanKeys("", "", func(string) error { n++; return nil }); err != nil {
		t.Fatalf("final ScanKeys: %v", err)
	}
	if n != writers*perWriter {
		t.Fatalf("final key count = %d, want %d", n, writers*perWriter)
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a!", "a\""},
		{"i!fig2\x00", "i!fig2\x01"},
		{"", ""},
		{"\xff\xff", ""},
		{"a\xff", "b"},
	}
	for _, c := range cases {
		if got := PrefixEnd(c.in); got != c.want {
			t.Errorf("PrefixEnd(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEmptyStoreScans(t *testing.T) {
	s := testOpen(t, t.TempDir(), Options{})
	if err := s.Scan("", "", func(string, []byte) error {
		return errors.New("scan of empty store yielded a record")
	}); err != nil {
		t.Fatal(err)
	}
	mustFlush(t, s) // flushing an empty memtable is a no-op sync
	if st := s.Stats(); st.Segments != 0 {
		t.Fatalf("empty flush created a segment: %+v", st)
	}
}

func TestHundredThousandRecordsOneScanBoundedFiles(t *testing.T) {
	// The acceptance shape for 10^5-arm sweeps: every record lands in
	// one log + a bounded segment set, so a resume-style full scan
	// touches O(segments) files, never O(records). A 1 MiB memtable
	// forces repeated flushes; compaction must then keep the live
	// segment count bounded regardless of record count.
	dir := t.TempDir()
	s := testOpen(t, dir, Options{MemtableBytes: 1 << 20})
	const n = 100_000
	val := []byte(`{"testAcc":0.5,"miaAcc":0.5,"tprAt1FPR":0.01,"genError":0.1}`)
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("a!%08x", i), val); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.Segments < 1 || st.Segments > 2 {
		t.Fatalf("compacted segment count = %d, want 1-2 (O(1), not O(records))", st.Segments)
	}
	// The directory holds the log, the manifest, the lock, and the
	// segments — not a file per record.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > st.Segments+3 {
		t.Fatalf("store dir holds %d files for %d records, want <= segments+3", len(entries), n)
	}
	got := 0
	if err := s.Scan("", "", func(key string, v []byte) error {
		got++
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if got != n {
		t.Fatalf("scan yielded %d records, want %d", got, n)
	}
	// Reopen exercises recovery at the same scale: manifest + footers
	// only, then the same single-scan coverage.
	s.Close()
	s2 := testOpen(t, dir, Options{ReadOnly: true})
	got = 0
	if err := s2.ScanKeys("", "", func(string) error { got++; return nil }); err != nil {
		t.Fatalf("ScanKeys after reopen: %v", err)
	}
	if got != n {
		t.Fatalf("post-reopen scan yielded %d records, want %d", got, n)
	}
}
