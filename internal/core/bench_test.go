package core

import (
	"testing"

	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// BenchmarkEvalRound isolates the per-round evaluation path — batched
// accuracy sweep, scratch-backed MPE attack, generalization error over
// every eval node — on a trained simulator. With the per-study
// evalScratch and the models' reusable batch scratch warmed up, a
// steady-state evaluation round must allocate nothing; bench-smoke
// gates allocs_per_op == 0 on this benchmark so the invariant cannot
// silently rot.
func BenchmarkEvalRound(b *testing.B) {
	cfg := workersStudyConfig(1)
	study, err := NewStudy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cfg = study.Config()
	simCfg := cfg.Sim.Defaulted()
	rng := tensor.NewRNG(simCfg.Seed)
	gen, err := data.NewGenerator(cfg.Corpus, rng)
	if err != nil {
		b.Fatal(err)
	}
	parts, err := study.buildPartition(gen, simCfg.Nodes, rng)
	if err != nil {
		b.Fatal(err)
	}
	globalTest := gen.Sample(cfg.GlobalTestSize, rng)
	sizes := append([]int{gen.Dim()}, cfg.Train.Hidden...)
	sizes = append(sizes, gen.Classes())
	initial, err := nn.NewMLP(sizes, rng)
	if err != nil {
		b.Fatal(err)
	}
	protocol, err := gossip.ProtocolByName(cfg.Protocol)
	if err != nil {
		b.Fatal(err)
	}
	factory, _, _, err := study.buildUpdaters(parts, simCfg)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := gossip.New(simCfg, protocol, initial, parts, factory)
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Run(nil); err != nil {
		b.Fatal(err)
	}
	evalIDs := study.pickEvalNodes(simCfg.Nodes, rng)
	es := newEvalScratch(len(evalIDs))
	// Warm up every reusable buffer: model batch scratch, attack score
	// slices, threshold points.
	if _, err := study.evaluateRound(0, sim, evalIDs, globalTest, nil, es); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := study.evaluateRound(0, sim, evalIDs, globalTest, nil, es); err != nil {
			b.Fatal(err)
		}
	}
}
