package core

import (
	"testing"

	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
	"gossipmia/internal/metrics"
	"gossipmia/internal/netmodel"
)

func workersStudyConfig(workers int) StudyConfig {
	return StudyConfig{
		Label:    "workers-determinism",
		Corpus:   data.CIFAR10,
		Protocol: "samo",
		Sim: gossip.Config{
			Nodes: 8, ViewSize: 3, Rounds: 4, Seed: 99,
		},
		Train: TrainConfig{
			Hidden: []int{16}, LR: 0.05, Momentum: 0.9, BatchSize: 8, LocalEpochs: 1,
		},
		Part:           PartitionConfig{TrainPerNode: 16, TestPerNode: 16},
		GlobalTestSize: 64,
		EvalEvery:      2,
		Workers:        workers,
	}
}

func runSeries(t *testing.T, cfg StudyConfig) *metrics.Series {
	t.Helper()
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := study.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Series
}

// TestSeriesIdenticalAcrossWorkerCounts is the determinism guarantee of
// the parallel evaluation engine: for a fixed StudyConfig.Seed the
// resulting metrics.Series must be identical — bit for bit, not merely
// approximately — whether the per-node evaluation runs on 1, 2, or 8
// workers. Run under -race this also proves the fan-out is data-race
// free.
func TestSeriesIdenticalAcrossWorkerCounts(t *testing.T) {
	ref := runSeries(t, workersStudyConfig(1))
	if len(ref.Records) == 0 {
		t.Fatal("reference run produced no records")
	}
	for _, w := range []int{2, 8} {
		got := runSeries(t, workersStudyConfig(w))
		if len(got.Records) != len(ref.Records) {
			t.Fatalf("workers=%d: %d records, want %d", w, len(got.Records), len(ref.Records))
		}
		for i, r := range got.Records {
			if r != ref.Records[i] {
				t.Fatalf("workers=%d: record %d = %+v, want %+v", w, i, r, ref.Records[i])
			}
		}
	}
}

// TestSeriesIdenticalAcrossWorkerCountsLatencyChurn pins the intra-arm
// engine end to end on a non-Instant scenario: a latency transport plus
// a churn schedule, with wake intervals short enough that several nodes
// wake in the same tick. StudyConfig.Workers flows into the simulator's
// node-parallel tick engine here, so this proves a whole study arm —
// sim, training, evaluation — is byte-identical across worker counts.
// Run under -race it also proves the tick fan-out is data-race free.
func TestSeriesIdenticalAcrossWorkerCountsLatencyChurn(t *testing.T) {
	mk := func(workers int) StudyConfig {
		cfg := workersStudyConfig(workers)
		cfg.Protocol = "base"
		cfg.Sim.TicksPerRound = 10
		cfg.Sim.WakeMean = 4
		cfg.Sim.WakeStd = 2
		cfg.Sim.Net = netmodel.Config{Kind: netmodel.KindLatency, LatencyMean: 3, LatencyJitter: 2}
		cfg.Sim.Churn = []gossip.ChurnEvent{
			{Node: 1, LeaveTick: 6, RejoinTick: 15},
			{Node: 5, LeaveTick: 12},
		}
		return cfg
	}
	ref := runSeries(t, mk(1))
	if len(ref.Records) == 0 {
		t.Fatal("reference run produced no records")
	}
	for _, w := range []int{2, 8} {
		got := runSeries(t, mk(w))
		if len(got.Records) != len(ref.Records) {
			t.Fatalf("workers=%d: %d records, want %d", w, len(got.Records), len(ref.Records))
		}
		for i, r := range got.Records {
			if r != ref.Records[i] {
				t.Fatalf("workers=%d: record %d = %+v, want %+v", w, i, r, ref.Records[i])
			}
		}
	}
}

// TestSeriesIdenticalAcrossWorkerCountsWithCanaries covers the canary
// audit fan-out (Figure 4 path), which replaces the TPR column with the
// max per-node canary TPR computed over every node in parallel.
func TestSeriesIdenticalAcrossWorkerCountsWithCanaries(t *testing.T) {
	mk := func(workers int) StudyConfig {
		cfg := workersStudyConfig(workers)
		cfg.Canaries = 16
		return cfg
	}
	ref := runSeries(t, mk(1))
	for _, w := range []int{2, 8} {
		got := runSeries(t, mk(w))
		if len(got.Records) != len(ref.Records) {
			t.Fatalf("workers=%d: %d records, want %d", w, len(got.Records), len(ref.Records))
		}
		for i, r := range got.Records {
			if r != ref.Records[i] {
				t.Fatalf("workers=%d: record %d = %+v, want %+v", w, i, r, ref.Records[i])
			}
		}
	}
}
