// Package core is the public façade of the library: it wires the
// substrates (synthetic datasets, MLP training, k-regular topologies, the
// gossip simulator, the MPE attack, DP-SGD) into the paper's experimental
// pipeline — run a decentralized learning protocol and measure, round by
// round, the utility and MIA vulnerability of every node.
//
// A Study is one experimental arm (one curve in a paper figure). Its
// Run method returns a metrics.Series with one RoundRecord per evaluated
// round, plus run-level aggregates (messages sent, realized DP ε).
package core

import (
	"context"
	"errors"
	"fmt"

	"gossipmia/internal/data"
	"gossipmia/internal/dp"
	"gossipmia/internal/gossip"
	"gossipmia/internal/metrics"
	"gossipmia/internal/mia"
	"gossipmia/internal/nn"
	"gossipmia/internal/par"
	"gossipmia/internal/tensor"
)

// ErrStudy is returned for invalid study configurations.
var ErrStudy = errors.New("core: invalid study config")

// ErrTransient marks an error as transient: the run failed for a reason
// that is expected to clear on its own (an I/O hiccup in a record sink,
// an injected fault, a remote dependency blip) rather than a property of
// the study itself. Callers holding a retry budget — the job service,
// sweep drivers — test errors.Is(err, ErrTransient) to decide whether a
// re-execution can possibly succeed; everything else is fatal and must
// surface immediately. Determinism makes retries safe: a re-run of the
// same arm yields byte-identical records.
var ErrTransient = errors.New("transient")

// Transient wraps err so it classifies as transient (errors.Is
// ErrTransient). A nil err stays nil; context cancellation is never
// transient — retrying a cancelled run would override the caller's
// explicit abort — so cancellation errors pass through unwrapped.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient reports whether err carries the transient marker.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// TrainConfig carries the Table 2 hyperparameters plus the MLP
// architecture used for the corpus. LRDecay in (0,1) enables the
// per-epoch learning-rate decay mitigation of Section 5.
type TrainConfig struct {
	Hidden      []int
	LR          float64
	Momentum    float64
	WeightDecay float64
	LRDecay     float64
	BatchSize   int
	LocalEpochs int
}

// Validate reports configuration errors.
func (c TrainConfig) Validate() error {
	if c.LR <= 0 || c.LocalEpochs <= 0 {
		return fmt.Errorf("%w: lr=%v epochs=%d", ErrStudy, c.LR, c.LocalEpochs)
	}
	return nil
}

// PartitionConfig describes how the corpus is spread across nodes.
// DirichletBeta == 0 selects the IID partition; otherwise the Dirichlet
// label-imbalance scheme of RQ5 with the given β.
type PartitionConfig struct {
	TrainPerNode  int
	TestPerNode   int
	DirichletBeta float64
}

// DPConfig enables node-level DP-SGD (RQ7). Epsilon/Delta form the
// per-node privacy target for the whole run; the noise multiplier is
// calibrated with the RDP accountant from the expected step count.
type DPConfig struct {
	Epsilon float64
	Delta   float64
	Clip    float64
}

// StudyConfig fully describes one experimental arm.
type StudyConfig struct {
	Label    string
	Corpus   data.CorpusName
	Protocol string // "base", "samo", "samo-nodelay"
	// Sim carries the deployment and its network knobs: Sim.Net selects
	// the transport model (instant/latency/lossy with partitions) and
	// Sim.Churn schedules node departures and rejoins.
	Sim   gossip.Config
	Train TrainConfig
	Part  PartitionConfig
	DP    *DPConfig

	// Canaries > 0 plants that many label-flipped canaries (RQ3); the
	// series' TPRAt1FPR field then reports the max per-node canary TPR
	// instead of the standard attack TPR.
	Canaries int

	// GlobalTestSize is the held-out global test set size (Equation 5).
	GlobalTestSize int

	// EvalEvery evaluates metrics every that many rounds (default 1).
	EvalEvery int
	// EvalNodes caps how many nodes are attacked/evaluated per round
	// (0 = all); nodes are sampled once per run for comparability.
	EvalNodes int

	// KeepFinalModels retains every node's final model and data splits
	// in the Result, enabling post-hoc analyses (e.g. comparing attack
	// score functions) without re-running the simulation.
	KeepFinalModels bool

	// OnRecord, when non-nil, receives every evaluated RoundRecord in
	// round order as soon as it is measured — the streaming hook result
	// sinks attach to. An error aborts the run.
	OnRecord func(metrics.RoundRecord) error

	// DiscardSeries stops the study from retaining per-round records:
	// Result.Series then carries only the label. Combined with an
	// OnRecord sink this bounds an arbitrarily long run at O(1) retained
	// round records instead of O(rounds). Requires OnRecord, otherwise
	// the measurements would be silently lost.
	DiscardSeries bool

	// Workers is the intra-arm parallelism knob. It bounds the
	// goroutines used to fan out the per-node evaluation (test accuracy,
	// MIA attack, generalization error, and the canary audit) at each
	// observed round, the simulator's node-parallel tick execution
	// (gossip.Config.Workers), and the worker-tiled GEMM kernels of
	// minibatch training and batched scoring: 0 means one worker per
	// CPU, 1 forces the serial paths. Every layer is deterministic by
	// construction — indexed result slots, buffered-commit tick ordering,
	// bit-identical GEMM tiles — so the resulting Series is byte-identical
	// for every worker count.
	Workers int
}

// NodeSnapshot is one node's state at the end of a run.
type NodeSnapshot struct {
	ID    int
	Model *nn.MLP
	Data  data.NodeData
}

// Defaulted fills unset evaluation fields.
func (c StudyConfig) Defaulted() StudyConfig {
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	if c.GlobalTestSize <= 0 {
		c.GlobalTestSize = 256
	}
	return c
}

// Validate reports configuration errors.
func (c StudyConfig) Validate() error {
	if err := c.Train.Validate(); err != nil {
		return err
	}
	if c.Part.TrainPerNode <= 0 && c.Part.DirichletBeta == 0 {
		return fmt.Errorf("%w: trainPerNode=%d", ErrStudy, c.Part.TrainPerNode)
	}
	if c.DP != nil {
		if c.DP.Epsilon <= 0 || c.DP.Delta <= 0 || c.DP.Delta >= 1 || c.DP.Clip <= 0 {
			return fmt.Errorf("%w: dp eps=%v delta=%v clip=%v", ErrStudy, c.DP.Epsilon, c.DP.Delta, c.DP.Clip)
		}
	}
	if c.DiscardSeries && c.OnRecord == nil {
		return fmt.Errorf("%w: DiscardSeries without an OnRecord sink would lose every measurement", ErrStudy)
	}
	return nil
}

// Result is the outcome of one study arm.
type Result struct {
	Series *metrics.Series
	// MessagesSent is the total number of model transmissions (RQ4's
	// communication cost).
	MessagesSent int
	// BytesSent is the total wire-format traffic in bytes.
	BytesSent int
	// MessagesDropped counts transmissions lost in transit — to the
	// probabilistic failure model (Sim.DropProb / Sim.Net.DropProb), an
	// active network partition, or an offline (churned-out) receiver.
	MessagesDropped int
	// MessagesDelayed counts transmissions that went through the
	// transport's delivery queue instead of arriving inline (zero on
	// the Instant transport).
	MessagesDelayed int
	// MessagesUndelivered counts transmissions still in flight when the
	// run ended (sent and paid for, never received).
	MessagesUndelivered int
	// RealizedEpsilon is the per-node (ε,δ)-DP guarantee actually spent,
	// computed from the maximum realized step count across nodes; zero
	// when DP is disabled.
	RealizedEpsilon float64
	// NoiseMultiplier is the calibrated σ used by DP-SGD (zero when DP
	// is disabled).
	NoiseMultiplier float64
	// Final holds per-node end-of-run snapshots when
	// StudyConfig.KeepFinalModels is set.
	Final []NodeSnapshot
	// Sched describes the schedule the node-parallel tick engine
	// executed (zero-valued when the run took the serial path). Its
	// Occupancy is the machine-independent packing quality of the
	// conflict-batch scheduler — what the speedup benchmarks report
	// alongside wall clock, since the latter saturates at 1.0x on a
	// single-P runtime no matter how good the schedule is.
	Sched gossip.SchedStats
}

// Study is a configured, reproducible experimental arm.
type Study struct {
	cfg StudyConfig
}

// NewStudy validates cfg and returns a runnable study.
func NewStudy(cfg StudyConfig) (*Study, error) {
	cfg = cfg.Defaulted()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Study{cfg: cfg}, nil
}

// Config returns the effective configuration.
func (s *Study) Config() StudyConfig { return s.cfg }

// Run executes the study arm and returns its per-round series.
func (s *Study) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the study arm like Run, aborting between rounds
// when ctx is cancelled. Cancellation is checked at every round
// boundary (before the round's evaluation), so a cancelled run returns
// ctx.Err() within one round without producing a partial record.
func (s *Study) RunContext(ctx context.Context) (*Result, error) {
	cfg := s.cfg
	simCfg := cfg.Sim.Defaulted()
	// One Workers knob drives every intra-arm layer: the simulator's
	// node-parallel tick engine and (via the initial model, whose clones
	// seed every node) the worker-tiled GEMM kernels.
	if simCfg.Workers == 0 {
		simCfg.Workers = cfg.Workers
	}
	rng := tensor.NewRNG(simCfg.Seed)

	gen, err := data.NewGenerator(cfg.Corpus, rng)
	if err != nil {
		return nil, fmt.Errorf("core: corpus: %w", err)
	}

	parts, err := s.buildPartition(gen, simCfg.Nodes, rng)
	if err != nil {
		return nil, err
	}
	globalTest := gen.Sample(cfg.GlobalTestSize, rng)

	var canaries *mia.CanarySet
	if cfg.Canaries > 0 {
		canaries, err = mia.PlantCanaries(parts, gen, cfg.Canaries, rng)
		if err != nil {
			return nil, fmt.Errorf("core: canaries: %w", err)
		}
	}

	sizes := append([]int{gen.Dim()}, cfg.Train.Hidden...)
	sizes = append(sizes, gen.Classes())
	initial, err := nn.NewMLP(sizes, rng)
	if err != nil {
		return nil, fmt.Errorf("core: model: %w", err)
	}
	initial.SetWorkers(par.Workers(cfg.Workers))

	protocol, err := gossip.ProtocolByName(cfg.Protocol)
	if err != nil {
		return nil, fmt.Errorf("core: protocol: %w", err)
	}

	factory, dpUpdaters, sigma, err := s.buildUpdaters(parts, simCfg)
	if err != nil {
		return nil, err
	}

	sim, err := gossip.New(simCfg, protocol, initial, parts, factory)
	if err != nil {
		return nil, fmt.Errorf("core: simulator: %w", err)
	}

	evalIDs := s.pickEvalNodes(simCfg.Nodes, rng)
	series := &metrics.Series{Label: cfg.Label}
	scratch := newEvalScratch(len(evalIDs))

	observer := func(round int, sim *gossip.Simulator) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if (round+1)%cfg.EvalEvery != 0 && round != simCfg.Rounds-1 {
			return nil
		}
		rec, err := s.evaluateRound(round, sim, evalIDs, globalTest, canaries, scratch)
		if err != nil {
			return err
		}
		if cfg.OnRecord != nil {
			// A sink failure is an I/O problem, not a science problem:
			// mark it transient so a retrying caller re-runs the arm.
			if err := cfg.OnRecord(rec); err != nil {
				return fmt.Errorf("core: record sink at round %d: %w", round, Transient(err))
			}
		}
		if !cfg.DiscardSeries {
			series.Append(rec)
		}
		return nil
	}
	if err := sim.Run(observer); err != nil {
		return nil, fmt.Errorf("core: run: %w", err)
	}

	res := &Result{
		Series:              series,
		MessagesSent:        sim.MessagesSent(),
		BytesSent:           sim.BytesSent(),
		MessagesDropped:     sim.MessagesDropped(),
		MessagesDelayed:     sim.MessagesDelayed(),
		MessagesUndelivered: sim.PendingDeliveries(),
		NoiseMultiplier:     sigma,
		Sched:               sim.SchedStats(),
	}
	if cfg.KeepFinalModels {
		for _, node := range sim.Nodes() {
			res.Final = append(res.Final, NodeSnapshot{
				ID:    node.ID,
				Model: node.Model.Clone(),
				Data:  node.Data,
			})
		}
	}
	if cfg.DP != nil {
		maxSteps := 0
		for _, u := range dpUpdaters {
			if u.Steps() > maxSteps {
				maxSteps = u.Steps()
			}
		}
		eps, err := s.realizedEpsilon(maxSteps, sigma, parts)
		if err != nil {
			return nil, err
		}
		res.RealizedEpsilon = eps
	}
	return res, nil
}

// buildPartition samples a base corpus and splits it across nodes.
func (s *Study) buildPartition(gen data.Generator, nodes int, rng *tensor.RNG) ([]data.NodeData, error) {
	p := s.cfg.Part
	if p.DirichletBeta > 0 {
		// Training (member) sets are label-skewed via Dirichlet(β); each
		// node's test (non-member) split stays i.i.d. from the base
		// distribution, as in the paper's Section 3.1 setup.
		base := gen.Sample(nodes*p.TrainPerNode, rng)
		trainSets, err := data.DirichletTrainSets(base, nodes, p.DirichletBeta, rng)
		if err != nil {
			return nil, fmt.Errorf("core: dirichlet partition: %w", err)
		}
		parts := make([]data.NodeData, nodes)
		for i, train := range trainSets {
			parts[i] = data.NodeData{
				Train: train,
				Test:  gen.Sample(p.TestPerNode, rng),
			}
		}
		return parts, nil
	}
	base := gen.Sample(nodes*(p.TrainPerNode+p.TestPerNode), rng)
	parts, err := data.PartitionIID(base, nodes, p.TrainPerNode, p.TestPerNode, rng)
	if err != nil {
		return nil, fmt.Errorf("core: iid partition: %w", err)
	}
	return parts, nil
}

// buildUpdaters returns the per-node updater factory; for DP arms it also
// calibrates σ and exposes the updaters for post-run accounting.
func (s *Study) buildUpdaters(parts []data.NodeData, simCfg gossip.Config) (gossip.UpdaterFactory, []*dp.Updater, float64, error) {
	t := s.cfg.Train
	if s.cfg.DP == nil {
		f := gossip.NewSGDUpdaterFactory(nn.SGDConfig{
			LR: t.LR, Momentum: t.Momentum, WeightDecay: t.WeightDecay, LRDecay: t.LRDecay,
		}, t.BatchSize, t.LocalEpochs)
		return f, nil, 0, nil
	}
	d := s.cfg.DP
	// Expected mechanism invocations per node: roughly one local update
	// per round (the wake interval equals the round length), each with
	// LocalEpochs × ⌈n/B⌉ noisy steps.
	minTrain := parts[0].Train.Len()
	for _, p := range parts[1:] {
		if p.Train.Len() < minTrain {
			minTrain = p.Train.Len()
		}
	}
	batch := t.BatchSize
	if batch <= 0 || batch > minTrain {
		batch = minTrain
	}
	stepsPerUpdate := t.LocalEpochs * ((minTrain + batch - 1) / batch)
	expectedSteps := simCfg.Rounds * stepsPerUpdate
	q := float64(batch) / float64(minTrain)
	sigma, err := dp.CalibrateSigma(d.Epsilon, d.Delta, q, expectedSteps)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("core: calibrate sigma: %w", err)
	}
	dpCfg := dp.SGDConfig{
		LR:              t.LR,
		Clip:            d.Clip,
		NoiseMultiplier: sigma,
		BatchSize:       batch,
		Epochs:          t.LocalEpochs,
	}
	if err := dpCfg.Validate(); err != nil {
		return nil, nil, 0, fmt.Errorf("core: dp config: %w", err)
	}
	updaters := make([]*dp.Updater, simCfg.Nodes)
	factory := func(nodeID int) gossip.LocalUpdater {
		u, _ := dp.NewUpdater(dpCfg) // cannot fail: dpCfg validated above
		updaters[nodeID] = u
		return u
	}
	return factory, updaters, sigma, nil
}

// evalNode measures one eval slot: global test accuracy, the MPE
// attack (on the slot's scratch), and generalization error, written
// into the slot's indexed result cells.
func (s *Study) evalNode(i int, evalIDs []int, nodes []*gossip.Node,
	globalTest *data.Dataset, es *evalScratch) error {
	id := evalIDs[i]
	node := nodes[id]
	acc, err := metrics.Accuracy(node.Model, globalTest)
	if err != nil {
		return fmt.Errorf("core: test accuracy node %d: %w", id, err)
	}
	es.accs[i] = acc

	res, err := es.attack[i].AttackNode(node.Model, node.Data)
	if err != nil {
		return fmt.Errorf("core: attack node %d: %w", id, err)
	}
	es.miaAccs[i] = res.Accuracy
	es.tprs[i] = res.TPRAt1FPR

	ge, err := metrics.GenError(node.Model, node.Data)
	if err != nil {
		return fmt.Errorf("core: gen error node %d: %w", id, err)
	}
	es.genErrs[i] = ge
	return nil
}

// realizedEpsilon converts the realized step count into the actually
// spent (ε,δ) budget.
func (s *Study) realizedEpsilon(steps int, sigma float64, parts []data.NodeData) (float64, error) {
	if steps == 0 {
		return 0, nil
	}
	d := s.cfg.DP
	minTrain := parts[0].Train.Len()
	for _, p := range parts[1:] {
		if p.Train.Len() < minTrain {
			minTrain = p.Train.Len()
		}
	}
	batch := s.cfg.Train.BatchSize
	if batch <= 0 || batch > minTrain {
		batch = minTrain
	}
	acc, err := dp.NewAccountant(float64(batch)/float64(minTrain), sigma)
	if err != nil {
		return 0, fmt.Errorf("core: accountant: %w", err)
	}
	acc.AddSteps(steps)
	eps, err := acc.Epsilon(d.Delta)
	if err != nil {
		return 0, fmt.Errorf("core: epsilon: %w", err)
	}
	return eps, nil
}

// pickEvalNodes samples the fixed node subset evaluated each round.
func (s *Study) pickEvalNodes(nodes int, rng *tensor.RNG) []int {
	k := s.cfg.EvalNodes
	if k <= 0 || k >= nodes {
		ids := make([]int, nodes)
		for i := range ids {
			ids[i] = i
		}
		return ids
	}
	return rng.Perm(nodes)[:k]
}

// evalScratch holds the per-run buffers of evaluateRound: the four
// indexed metric slots plus one mia.Scratch per eval slot (each slot is
// worked by at most one goroutine per round), so a study's evaluation
// rounds allocate nothing at steady state regardless of how often they
// fire.
type evalScratch struct {
	accs, miaAccs, tprs, genErrs []float64
	attack                       []mia.Scratch
	models                       []*nn.MLP
}

// newEvalScratch sizes the scratch for n evaluated nodes per round.
func newEvalScratch(n int) *evalScratch {
	return &evalScratch{
		accs:    make([]float64, n),
		miaAccs: make([]float64, n),
		tprs:    make([]float64, n),
		genErrs: make([]float64, n),
		attack:  make([]mia.Scratch, n),
	}
}

// evaluateRound measures the paper's four metrics averaged over the eval
// nodes (canary TPR is a max, as in Figure 4). The per-node evaluations
// are embarrassingly parallel — each goroutine works a distinct node's
// model, whose forward-pass scratch no other goroutine touches, and a
// distinct scratch slot — and write into indexed slots reduced in
// evalIDs order, so the record is byte-identical for any Workers
// setting.
func (s *Study) evaluateRound(round int, sim *gossip.Simulator, evalIDs []int,
	globalTest *data.Dataset, canaries *mia.CanarySet, es *evalScratch) (metrics.RoundRecord, error) {

	nodes := sim.Nodes()
	var err error
	if par.Workers(s.cfg.Workers) <= 1 {
		// Serial fast path: no fan-out bookkeeping, so evaluation rounds
		// allocate nothing at steady state.
		for i := range evalIDs {
			if err = s.evalNode(i, evalIDs, nodes, globalTest, es); err != nil {
				break
			}
		}
	} else {
		err = par.ForEachErr(s.cfg.Workers, len(evalIDs), func(i int) error {
			return s.evalNode(i, evalIDs, nodes, globalTest, es)
		})
	}
	if err != nil {
		return metrics.RoundRecord{}, err
	}

	rec := metrics.RoundRecord{
		Round:     round,
		TestAcc:   metrics.Mean(es.accs),
		MIAAcc:    metrics.Mean(es.miaAccs),
		TPRAt1FPR: metrics.Mean(es.tprs),
		GenError:  metrics.Mean(es.genErrs),
	}
	if canaries != nil {
		if len(es.models) != len(nodes) {
			es.models = make([]*nn.MLP, len(nodes))
		}
		for i, n := range nodes {
			es.models[i] = n.Model
		}
		maxTPR, err := canaries.MaxTPRWorkers(es.models, s.cfg.Workers)
		if err != nil {
			return metrics.RoundRecord{}, fmt.Errorf("core: canary audit: %w", err)
		}
		rec.TPRAt1FPR = maxTPR
	}
	return rec, nil
}
