package core

import (
	"errors"
	"testing"

	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
	"gossipmia/internal/metrics"
)

// quickConfig returns a fast arm used across the integration tests.
func quickConfig() StudyConfig {
	return StudyConfig{
		Label:    "test-arm",
		Corpus:   data.FashionMNIST,
		Protocol: "samo",
		Sim: gossip.Config{
			Nodes: 8, ViewSize: 3, Rounds: 6, Seed: 11,
		},
		Train: TrainConfig{
			Hidden: []int{16}, LR: 0.05, BatchSize: 10, LocalEpochs: 2,
		},
		Part:           PartitionConfig{TrainPerNode: 24, TestPerNode: 24},
		GlobalTestSize: 120,
		EvalEvery:      2,
	}
}

func TestStudyValidation(t *testing.T) {
	bad := quickConfig()
	bad.Train.LR = 0
	if _, err := NewStudy(bad); !errors.Is(err, ErrStudy) {
		t.Fatalf("lr=0 error = %v", err)
	}
	bad = quickConfig()
	bad.Part.TrainPerNode = 0
	if _, err := NewStudy(bad); !errors.Is(err, ErrStudy) {
		t.Fatalf("trainPer=0 error = %v", err)
	}
	bad = quickConfig()
	bad.DP = &DPConfig{Epsilon: -1, Delta: 1e-5, Clip: 1}
	if _, err := NewStudy(bad); !errors.Is(err, ErrStudy) {
		t.Fatalf("bad dp error = %v", err)
	}
}

func TestStudyRunProducesSeries(t *testing.T) {
	st, err := NewStudy(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	// EvalEvery=2 over 6 rounds: rounds 1, 3, 5.
	if got := len(res.Series.Records); got != 3 {
		t.Fatalf("series has %d records, want 3", got)
	}
	for _, r := range res.Series.Records {
		if r.TestAcc < 0 || r.TestAcc > 1 {
			t.Fatalf("test acc out of range: %+v", r)
		}
		if r.MIAAcc < 0.5-1e-9 || r.MIAAcc > 1 {
			t.Fatalf("mia acc out of range: %+v", r)
		}
		if r.TPRAt1FPR < 0 || r.TPRAt1FPR > 1 {
			t.Fatalf("tpr out of range: %+v", r)
		}
	}
	if res.MessagesSent == 0 {
		t.Fatal("no messages recorded")
	}
	// Learning should beat the 10-class chance level by the last round.
	if last := res.Series.Last(); last.TestAcc < 0.2 {
		t.Fatalf("final test accuracy %v, want > 0.2", last.TestAcc)
	}
	if res.RealizedEpsilon != 0 || res.NoiseMultiplier != 0 {
		t.Fatal("non-DP run reported DP budget")
	}
}

func TestStudyDeterminism(t *testing.T) {
	run := func() *Result {
		st, err := NewStudy(quickConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Series.Records) != len(b.Series.Records) {
		t.Fatal("series lengths differ")
	}
	for i := range a.Series.Records {
		if a.Series.Records[i] != b.Series.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Series.Records[i], b.Series.Records[i])
		}
	}
	if a.MessagesSent != b.MessagesSent {
		t.Fatal("message counts differ")
	}
}

func TestStudyDPRun(t *testing.T) {
	cfg := quickConfig()
	cfg.Label = "dp-arm"
	cfg.Sim.Rounds = 4
	cfg.EvalEvery = 4
	cfg.DP = &DPConfig{Epsilon: 25, Delta: 1e-5, Clip: 1}
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NoiseMultiplier <= 0 {
		t.Fatalf("noise multiplier = %v, want > 0", res.NoiseMultiplier)
	}
	if res.RealizedEpsilon <= 0 {
		t.Fatalf("realized epsilon = %v, want > 0", res.RealizedEpsilon)
	}
	// Base gossip triggers a local update per received model, so nodes
	// may take somewhat more steps than the calibration estimate; for
	// SAMO (merge once per wake) the realized budget must stay near the
	// target.
	if res.RealizedEpsilon > cfg.DP.Epsilon*1.5 {
		t.Fatalf("realized epsilon %v far above target %v", res.RealizedEpsilon, cfg.DP.Epsilon)
	}
}

func TestStudyDPReducesVulnerability(t *testing.T) {
	base := quickConfig()
	base.Sim.Rounds = 8
	base.EvalEvery = 8
	base.Train.LocalEpochs = 3
	base.Part.TrainPerNode = 16

	noDP, err := NewStudy(base)
	if err != nil {
		t.Fatal(err)
	}
	resNoDP, err := noDP.Run()
	if err != nil {
		t.Fatal(err)
	}

	dpCfg := base
	dpCfg.DP = &DPConfig{Epsilon: 5, Delta: 1e-5, Clip: 0.5}
	withDP, err := NewStudy(dpCfg)
	if err != nil {
		t.Fatal(err)
	}
	resDP, err := withDP.Run()
	if err != nil {
		t.Fatal(err)
	}
	if resDP.Series.MaxMIAAcc() > resNoDP.Series.MaxMIAAcc()+0.05 {
		t.Fatalf("DP did not reduce MIA: dp %v vs none %v",
			resDP.Series.MaxMIAAcc(), resNoDP.Series.MaxMIAAcc())
	}
}

func TestStudyCanaryRun(t *testing.T) {
	cfg := quickConfig()
	cfg.Canaries = 16
	cfg.Sim.Rounds = 4
	cfg.EvalEvery = 2
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Series.Records {
		if r.TPRAt1FPR < 0 || r.TPRAt1FPR > 1 {
			t.Fatalf("canary TPR out of range: %+v", r)
		}
	}
}

func TestStudyDirichletRun(t *testing.T) {
	cfg := quickConfig()
	cfg.Part.DirichletBeta = 0.2
	cfg.Sim.Rounds = 4
	cfg.EvalEvery = 4
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Records) == 0 {
		t.Fatal("no records")
	}
}

func TestStudyEvalNodesSubset(t *testing.T) {
	cfg := quickConfig()
	cfg.EvalNodes = 3
	cfg.Sim.Rounds = 2
	cfg.EvalEvery = 1
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStudyBaseProtocolAndDynamic(t *testing.T) {
	cfg := quickConfig()
	cfg.Protocol = "base"
	cfg.Sim.Dynamic = true
	cfg.Sim.Rounds = 4
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Records) == 0 {
		t.Fatal("no records")
	}
}

func TestStudyUnknownProtocolAndCorpus(t *testing.T) {
	cfg := quickConfig()
	cfg.Protocol = "nope"
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	cfg = quickConfig()
	cfg.Corpus = "nope"
	st, err = NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(); err == nil {
		t.Fatal("unknown corpus accepted")
	}
}

// TestStudyOnRecordStreamsRounds proves the observer hook: every
// evaluated record reaches OnRecord in round order, identical to what
// the retained series collects.
func TestStudyOnRecordStreamsRounds(t *testing.T) {
	var streamed []metrics.RoundRecord
	cfg := quickConfig()
	cfg.OnRecord = func(r metrics.RoundRecord) error {
		streamed = append(streamed, r)
		return nil
	}
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Series.Records) {
		t.Fatalf("streamed %d records, series has %d", len(streamed), len(res.Series.Records))
	}
	for i, r := range streamed {
		if r != res.Series.Records[i] {
			t.Fatalf("streamed record %d = %+v, series has %+v", i, r, res.Series.Records[i])
		}
		if i > 0 && r.Round <= streamed[i-1].Round {
			t.Fatalf("records out of round order: %+v", streamed)
		}
	}
}

// TestStudyDiscardSeries proves the O(1) streaming mode: with a sink
// attached and DiscardSeries set, the result retains no round records
// while the sink receives them all.
func TestStudyDiscardSeries(t *testing.T) {
	count := 0
	cfg := quickConfig()
	cfg.OnRecord = func(metrics.RoundRecord) error { count++; return nil }
	cfg.DiscardSeries = true
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Records) != 0 {
		t.Fatalf("discarded series still holds %d records", len(res.Series.Records))
	}
	if count != 3 { // EvalEvery=2 over 6 rounds: rounds 1, 3, 5
		t.Fatalf("sink saw %d records, want 3", count)
	}
	if res.Series.Label != cfg.Label {
		t.Fatalf("series label = %q", res.Series.Label)
	}

	// DiscardSeries without a sink would silently lose the run.
	bad := quickConfig()
	bad.DiscardSeries = true
	if _, err := NewStudy(bad); !errors.Is(err, ErrStudy) {
		t.Fatalf("DiscardSeries without OnRecord accepted: %v", err)
	}
}

// TestStudyOnRecordErrorAborts proves a failing sink aborts the run
// with its error.
func TestStudyOnRecordErrorAborts(t *testing.T) {
	boom := errors.New("sink full")
	cfg := quickConfig()
	cfg.OnRecord = func(metrics.RoundRecord) error { return boom }
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(); !errors.Is(err, boom) {
		t.Fatalf("run error = %v, want the sink error", err)
	}
}
