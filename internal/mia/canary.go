package mia

import (
	"errors"
	"fmt"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/par"
	"gossipmia/internal/tensor"
)

// ErrCanary is returned for invalid canary-set construction.
var ErrCanary = errors.New("mia: invalid canary set")

// CanarySet implements the worst-case audit of RQ3 (after Aerni et al.):
// crafted records with flipped labels that models memorize readily.
// Planted canaries are inserted disjointly and evenly into node training
// sets; a matched held-out set, crafted identically but never trained on,
// provides the non-member reference distribution.
type CanarySet struct {
	// PerNode[i] holds the canaries planted into node i's training set.
	PerNode []*data.Dataset
	// HeldOut are crafted identically but never inserted anywhere.
	HeldOut *data.Dataset
}

// PlantCanaries crafts 2·total canaries from gen (label-flipped fresh
// samples), plants the first total of them round-robin into the given
// node training splits (mutating parts in place), and keeps the rest
// held out. Labels are flipped by one class cyclically, the simple
// flipping function the paper uses on its homogeneous network.
func PlantCanaries(parts []data.NodeData, gen data.Generator, total int, rng *tensor.RNG) (*CanarySet, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrCanary)
	}
	if total < len(parts) {
		return nil, fmt.Errorf("%w: %d canaries for %d nodes (need at least one each)", ErrCanary, total, len(parts))
	}
	crafted := gen.Sample(2*total, rng)
	classes := crafted.Classes
	for i := range crafted.Y {
		crafted.Y[i] = (crafted.Y[i] + 1) % classes // label flip
	}
	planted, heldOut, err := crafted.Split(total)
	if err != nil {
		return nil, err
	}

	set := &CanarySet{
		PerNode: make([]*data.Dataset, len(parts)),
		HeldOut: heldOut,
	}
	for i := range parts {
		set.PerNode[i] = &data.Dataset{Classes: classes}
	}
	for c := 0; c < planted.Len(); c++ {
		nodeID := c % len(parts)
		x, y := planted.X[c], planted.Y[c]
		set.PerNode[nodeID].X = append(set.PerNode[nodeID].X, x)
		set.PerNode[nodeID].Y = append(set.PerNode[nodeID].Y, y)
		parts[nodeID].Train.X = append(parts[nodeID].Train.X, x)
		parts[nodeID].Train.Y = append(parts[nodeID].Train.Y, y)
	}
	return set, nil
}

// NodeTPR runs the targeted, node-specific entropy attack: the node's
// planted canaries (members) against the held-out canaries (non-members),
// both scored under the node's model, and returns TPR@1%FPR.
func (c *CanarySet) NodeTPR(nodeID int, model *nn.MLP) (float64, error) {
	if nodeID < 0 || nodeID >= len(c.PerNode) {
		return 0, fmt.Errorf("%w: node %d of %d", ErrCanary, nodeID, len(c.PerNode))
	}
	memberScores, err := Scores(model, c.PerNode[nodeID])
	if err != nil {
		return 0, fmt.Errorf("mia: canary member scores node %d: %w", nodeID, err)
	}
	nonScores, err := Scores(model, c.HeldOut)
	if err != nil {
		return 0, fmt.Errorf("mia: canary held-out scores node %d: %w", nodeID, err)
	}
	return TPRAtFPR(memberScores, nonScores, 0.01)
}

// MeanTPR returns the average per-node canary TPR@1%FPR across nodes.
func (c *CanarySet) MeanTPR(models []*nn.MLP) (float64, error) {
	if len(models) != len(c.PerNode) {
		return 0, fmt.Errorf("%w: %d models for %d nodes", ErrCanary, len(models), len(c.PerNode))
	}
	var sum float64
	for i, m := range models {
		tpr, err := c.NodeTPR(i, m)
		if err != nil {
			return 0, err
		}
		sum += tpr
	}
	return sum / float64(len(models)), nil
}

// MaxTPR returns the maximum per-node canary TPR@1%FPR across all nodes,
// the quantity Figure 4 tracks over communication rounds. models[i] must
// be node i's current model.
func (c *CanarySet) MaxTPR(models []*nn.MLP) (float64, error) {
	return c.MaxTPRWorkers(models, 1)
}

// MaxTPRWorkers is MaxTPR with the per-node audits fanned out over the
// given worker count (0 = one per CPU). Each goroutine scores under a
// distinct node's model, so no cloning is needed, and the maximum is
// taken in node order — the result is identical for every worker count.
func (c *CanarySet) MaxTPRWorkers(models []*nn.MLP, workers int) (float64, error) {
	if len(models) != len(c.PerNode) {
		return 0, fmt.Errorf("%w: %d models for %d nodes", ErrCanary, len(models), len(c.PerNode))
	}
	tprs := make([]float64, len(models))
	err := par.ForEachErr(workers, len(models), func(i int) error {
		tpr, err := c.NodeTPR(i, models[i])
		if err != nil {
			return err
		}
		tprs[i] = tpr
		return nil
	})
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, tpr := range tprs {
		if tpr > best {
			best = tpr
		}
	}
	return best, nil
}
