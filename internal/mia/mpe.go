// Package mia implements the paper's membership-inference machinery: the
// Modified Prediction Entropy (MPE) attack of Song & Mittal (Section
// 2.5), the two vulnerability metrics (attack accuracy with the optimal
// threshold, and TPR@1%FPR from the MPE-score ROC curve), and the
// canary-based worst-case audit of RQ3.
package mia

import (
	"errors"
	"math"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// ErrNoScores is returned when an attack is evaluated without member or
// non-member scores.
var ErrNoScores = errors.New("mia: no scores")

// MPEScore computes the Modified Prediction Entropy of Equation (3) for
// a predicted distribution p and true label y:
//
//	M(p,y) = -(1-p_y)·log(p_y) - Σ_{y'≠y} p_{y'}·log(1-p_{y'}).
//
// Members (training points) tend to receive low scores. Probabilities
// are floored to avoid infinities from saturated softmax outputs.
func MPEScore(p tensor.Vector, y int) float64 {
	const floor = 1e-12
	clamp := func(v float64) float64 {
		if v < floor {
			return floor
		}
		if v > 1-floor {
			return 1 - floor
		}
		return v
	}
	py := clamp(p[y])
	s := -(1 - py) * math.Log(py)
	for i, pi := range p {
		if i == y {
			continue
		}
		pi = clamp(pi)
		s -= pi * math.Log(1-pi)
	}
	return s
}

// Scores returns the MPE score of every example in ds under model; it
// is ScoresWith(MethodMPE, ...), kept as the named entry point for the
// paper's attack.
func Scores(model *nn.MLP, ds *data.Dataset) ([]float64, error) {
	return ScoresWith(MethodMPE, model, ds)
}

// BestThresholdAccuracy returns the maximum achievable accuracy of the
// thresholded attack of Equation (4) — predict member when score ≤ τ̃ —
// over all thresholds, along with the maximizing τ̃. This is the paper's
// worst-case MIA accuracy metric (Equation 6) with balanced reweighting:
// member and non-member sides contribute equally regardless of their
// counts, matching the "sampled equally" attack set construction.
func BestThresholdAccuracy(member, nonMember []float64) (acc, threshold float64, err error) {
	var s Scratch
	return s.bestThresholdAccuracy(member, nonMember)
}

// TPRAtFPR returns the true-positive rate of the score-thresholded attack
// at the largest threshold whose false-positive rate does not exceed
// maxFPR (Equation 7 uses maxFPR = 0.01). Members are positives and are
// predicted when score ≤ τ.
func TPRAtFPR(member, nonMember []float64, maxFPR float64) (float64, error) {
	var s Scratch
	return s.tprAtFPR(member, nonMember, maxFPR)
}

// Result bundles the two vulnerability measures for one victim model.
type Result struct {
	Accuracy  float64 // Equation (6), optimal threshold
	TPRAt1FPR float64 // Equation (7)
}

// AttackNode runs the omniscient MPE attack of the threat model against
// one node: members are the node's training records, non-members its
// local test records. Hot loops that attack repeatedly should hold a
// Scratch and call its AttackNode instead — same result, no allocation.
func AttackNode(model *nn.MLP, nd data.NodeData) (Result, error) {
	var s Scratch
	return s.AttackNode(model, nd)
}
