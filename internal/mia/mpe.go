// Package mia implements the paper's membership-inference machinery: the
// Modified Prediction Entropy (MPE) attack of Song & Mittal (Section
// 2.5), the two vulnerability metrics (attack accuracy with the optimal
// threshold, and TPR@1%FPR from the MPE-score ROC curve), and the
// canary-based worst-case audit of RQ3.
package mia

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// ErrNoScores is returned when an attack is evaluated without member or
// non-member scores.
var ErrNoScores = errors.New("mia: no scores")

// MPEScore computes the Modified Prediction Entropy of Equation (3) for
// a predicted distribution p and true label y:
//
//	M(p,y) = -(1-p_y)·log(p_y) - Σ_{y'≠y} p_{y'}·log(1-p_{y'}).
//
// Members (training points) tend to receive low scores. Probabilities
// are floored to avoid infinities from saturated softmax outputs.
func MPEScore(p tensor.Vector, y int) float64 {
	const floor = 1e-12
	clamp := func(v float64) float64 {
		if v < floor {
			return floor
		}
		if v > 1-floor {
			return 1 - floor
		}
		return v
	}
	py := clamp(p[y])
	s := -(1 - py) * math.Log(py)
	for i, pi := range p {
		if i == y {
			continue
		}
		pi = clamp(pi)
		s -= pi * math.Log(1-pi)
	}
	return s
}

// Scores returns the MPE score of every example in ds under model; it
// is ScoresWith(MethodMPE, ...), kept as the named entry point for the
// paper's attack.
func Scores(model *nn.MLP, ds *data.Dataset) ([]float64, error) {
	return ScoresWith(MethodMPE, model, ds)
}

// BestThresholdAccuracy returns the maximum achievable accuracy of the
// thresholded attack of Equation (4) — predict member when score ≤ τ̃ —
// over all thresholds, along with the maximizing τ̃. This is the paper's
// worst-case MIA accuracy metric (Equation 6) with balanced reweighting:
// member and non-member sides contribute equally regardless of their
// counts, matching the "sampled equally" attack set construction.
func BestThresholdAccuracy(member, nonMember []float64) (acc, threshold float64, err error) {
	if len(member) == 0 || len(nonMember) == 0 {
		return 0, 0, ErrNoScores
	}
	type point struct {
		score  float64
		member bool
	}
	pts := make([]point, 0, len(member)+len(nonMember))
	for _, s := range member {
		pts = append(pts, point{s, true})
	}
	for _, s := range nonMember {
		pts = append(pts, point{s, false})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].score < pts[j].score })

	wm := 0.5 / float64(len(member))    // weight of one member
	wn := 0.5 / float64(len(nonMember)) // weight of one non-member

	// Threshold below every score: all predicted non-member.
	best := 0.5
	bestTau := pts[0].score - 1
	var caught float64 // weighted members with score <= tau
	var wrong float64  // weighted non-members with score <= tau
	i := 0
	for i < len(pts) {
		// Advance over all points sharing this score so ties sit on the
		// same side of the threshold.
		s := pts[i].score
		for i < len(pts) && pts[i].score == s {
			if pts[i].member {
				caught += wm
			} else {
				wrong += wn
			}
			i++
		}
		acc := 0.5 + caught - wrong
		if acc > best {
			best = acc
			bestTau = s
		}
	}
	return best, bestTau, nil
}

// TPRAtFPR returns the true-positive rate of the score-thresholded attack
// at the largest threshold whose false-positive rate does not exceed
// maxFPR (Equation 7 uses maxFPR = 0.01). Members are positives and are
// predicted when score ≤ τ.
func TPRAtFPR(member, nonMember []float64, maxFPR float64) (float64, error) {
	if len(member) == 0 || len(nonMember) == 0 {
		return 0, ErrNoScores
	}
	if maxFPR < 0 || maxFPR > 1 {
		return 0, fmt.Errorf("mia: maxFPR %v out of [0,1]", maxFPR)
	}
	non := append([]float64(nil), nonMember...)
	sort.Float64s(non)
	mem := append([]float64(nil), member...)
	sort.Float64s(mem)

	// Candidate thresholds: each non-member score defines the largest τ
	// with a given FPR. Find the largest τ with FPR ≤ maxFPR.
	allowed := int(maxFPR * float64(len(non))) // false positives allowed
	var tau float64
	if allowed <= 0 {
		// τ must be strictly below the smallest non-member score.
		tau = math.Nextafter(non[0], math.Inf(-1))
	} else if allowed >= len(non) {
		tau = math.Inf(1)
	} else {
		// non[allowed-1] may tie with non[allowed]; walk back over ties
		// so FPR stays ≤ maxFPR.
		tau = non[allowed-1]
		if tau == non[allowed] {
			tau = math.Nextafter(tau, math.Inf(-1))
		}
	}
	// TPR = fraction of members with score <= tau.
	tp := sort.SearchFloat64s(mem, math.Nextafter(tau, math.Inf(1)))
	return float64(tp) / float64(len(mem)), nil
}

// Result bundles the two vulnerability measures for one victim model.
type Result struct {
	Accuracy  float64 // Equation (6), optimal threshold
	TPRAt1FPR float64 // Equation (7)
}

// AttackNode runs the omniscient MPE attack of the threat model against
// one node: members are the node's training records, non-members its
// local test records.
func AttackNode(model *nn.MLP, nd data.NodeData) (Result, error) {
	memberScores, err := Scores(model, nd.Train)
	if err != nil {
		return Result{}, fmt.Errorf("mia: member scores: %w", err)
	}
	nonScores, err := Scores(model, nd.Test)
	if err != nil {
		return Result{}, fmt.Errorf("mia: non-member scores: %w", err)
	}
	acc, _, err := BestThresholdAccuracy(memberScores, nonScores)
	if err != nil {
		return Result{}, err
	}
	tpr, err := TPRAtFPR(memberScores, nonScores, 0.01)
	if err != nil {
		return Result{}, err
	}
	return Result{Accuracy: acc, TPRAt1FPR: tpr}, nil
}
