package mia

import (
	"fmt"
	"math"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// Method selects the per-example membership score. All methods are
// oriented so that *lower scores indicate members*, which keeps the
// thresholding and ROC machinery shared.
type Method int

// The implemented score families. MPE is the paper's attack; the others
// are the classical information-theoretic estimators it generalizes
// (Salem et al., Song & Mittal, Yeom et al.), included for the attack
// comparison ablation.
const (
	// MethodMPE is the Modified Prediction Entropy of Equation (3).
	MethodMPE Method = iota + 1
	// MethodEntropy is the Shannon entropy of the predicted distribution.
	MethodEntropy
	// MethodConfidence is the negated probability of the true label.
	MethodConfidence
	// MethodLoss is the cross-entropy loss −log p_y (Yeom et al.).
	MethodLoss
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodMPE:
		return "mpe"
	case MethodEntropy:
		return "entropy"
	case MethodConfidence:
		return "confidence"
	case MethodLoss:
		return "loss"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// AllMethods lists the implemented attack score functions.
func AllMethods() []Method {
	return []Method{MethodMPE, MethodEntropy, MethodConfidence, MethodLoss}
}

// MethodByName resolves a method identifier used in CLIs.
func MethodByName(name string) (Method, error) {
	for _, m := range AllMethods() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("mia: unknown attack method %q", name)
}

// MethodScore computes the membership score of method m for predicted
// distribution p and true label y. Lower means more member-like.
func MethodScore(m Method, p tensor.Vector, y int) (float64, error) {
	const floor = 1e-12
	switch m {
	case MethodMPE:
		return MPEScore(p, y), nil
	case MethodEntropy:
		var h float64
		for _, pi := range p {
			if pi > floor {
				h -= pi * math.Log(pi)
			}
		}
		return h, nil
	case MethodConfidence:
		return -p[y], nil
	case MethodLoss:
		v := p[y]
		if v < floor {
			v = floor
		}
		return -math.Log(v), nil
	default:
		return 0, fmt.Errorf("mia: unknown method %d", int(m))
	}
}

// ScoresWith returns the method-m score of every example in ds. The
// sweep runs through the model's batched scoring path (bit-identical to
// per-example forward passes), reusing one probability buffer.
func ScoresWith(m Method, model *nn.MLP, ds *data.Dataset) ([]float64, error) {
	if ds.Len() == 0 {
		return nil, data.ErrEmpty
	}
	var s Scratch
	return s.scoresInto(m, model, ds, make([]float64, 0, ds.Len()))
}

// AttackNodeWith runs the thresholded attack of AttackNode with an
// arbitrary score method.
func AttackNodeWith(m Method, model *nn.MLP, nd data.NodeData) (Result, error) {
	var s Scratch
	return s.AttackNodeWith(m, model, nd)
}
