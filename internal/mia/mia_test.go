package mia

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

func TestMPEScoreBasics(t *testing.T) {
	// Confident correct prediction: near-zero entropy score.
	confident := tensor.Vector{0.999, 0.0005, 0.0005}
	low := MPEScore(confident, 0)
	// Confident wrong prediction: large score.
	high := MPEScore(confident, 1)
	if low >= high {
		t.Fatalf("confident-correct score %v should be below confident-wrong %v", low, high)
	}
	if low < 0 || high < 0 {
		t.Fatalf("MPE scores must be non-negative: %v %v", low, high)
	}
	// Uniform prediction sits in between.
	uniform := tensor.Vector{1.0 / 3, 1.0 / 3, 1.0 / 3}
	mid := MPEScore(uniform, 0)
	if !(low < mid && mid < high) {
		t.Fatalf("ordering violated: %v, %v, %v", low, mid, high)
	}
}

// Property: MPE is finite and non-negative for any valid distribution.
func TestMPEScoreFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		p := rng.Dirichlet(6, 0.3)
		for y := 0; y < 6; y++ {
			s := MPEScore(p, y)
			if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMPEScoreSaturatedDistribution(t *testing.T) {
	// Exactly one-hot distributions must not produce Inf/NaN.
	p := tensor.Vector{1, 0, 0}
	for y := 0; y < 3; y++ {
		s := MPEScore(p, y)
		if math.IsInf(s, 0) || math.IsNaN(s) {
			t.Fatalf("saturated MPE(y=%d) = %v", y, s)
		}
	}
}

func TestBestThresholdAccuracySeparated(t *testing.T) {
	// Perfectly separated scores -> accuracy 1 at a threshold between.
	member := []float64{0.1, 0.2, 0.3}
	non := []float64{0.9, 1.0, 1.1}
	acc, tau, err := BestThresholdAccuracy(member, non)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("separated accuracy = %v", acc)
	}
	if tau < 0.3 || tau >= 0.9 {
		t.Fatalf("threshold %v outside separating gap", tau)
	}
}

func TestBestThresholdAccuracyIndistinguishable(t *testing.T) {
	// Identical distributions -> accuracy 0.5.
	same := []float64{1, 2, 3, 4}
	acc, _, err := BestThresholdAccuracy(same, same)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-0.5) > 1e-12 {
		t.Fatalf("identical-score accuracy = %v, want 0.5", acc)
	}
}

func TestBestThresholdAccuracyImbalanced(t *testing.T) {
	// Balanced weighting: 1 member vs 100 identical non-members must not
	// let the majority class dominate.
	member := []float64{0}
	non := make([]float64, 100)
	for i := range non {
		non[i] = 1
	}
	acc, _, err := BestThresholdAccuracy(member, non)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("balanced accuracy = %v, want 1", acc)
	}
}

func TestBestThresholdAccuracyErrors(t *testing.T) {
	if _, _, err := BestThresholdAccuracy(nil, []float64{1}); !errors.Is(err, ErrNoScores) {
		t.Fatalf("empty member error = %v", err)
	}
	if _, _, err := BestThresholdAccuracy([]float64{1}, nil); !errors.Is(err, ErrNoScores) {
		t.Fatalf("empty non-member error = %v", err)
	}
}

// Property: accuracy is always in [0.5, 1].
func TestBestThresholdAccuracyRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		member := make([]float64, 20)
		non := make([]float64, 20)
		for i := range member {
			member[i] = rng.Normal(0, 1)
			non[i] = rng.Normal(0.5, 1)
		}
		acc, _, err := BestThresholdAccuracy(member, non)
		if err != nil {
			return false
		}
		return acc >= 0.5-1e-12 && acc <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTPRAtFPR(t *testing.T) {
	// 100 non-members at 1.0, members below: at FPR<=1% the threshold can
	// admit exactly 1 non-member.
	member := []float64{0.1, 0.2, 0.5, 2.0}
	non := make([]float64, 100)
	for i := range non {
		non[i] = float64(i) / 100 // 0.00..0.99
	}
	tpr, err := TPRAtFPR(member, non, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold = non[0] = 0.0 (1 allowed false positive): members <= 0.0
	// is none... wait: allowed=1, tau=non[0]=0.0 -> no member <= 0.
	if tpr != 0 {
		t.Fatalf("tpr = %v, want 0", tpr)
	}
	// With 50% FPR the threshold is 0.49 (50 admissible false positives:
	// scores 0.00..0.49), catching members 0.1 and 0.2 only.
	tpr, err = TPRAtFPR(member, non, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tpr != 0.5 {
		t.Fatalf("tpr@50%%fpr = %v, want 0.5", tpr)
	}
	// FPR = 1 admits everything.
	tpr, err = TPRAtFPR(member, non, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tpr != 1 {
		t.Fatalf("tpr@100%%fpr = %v, want 1", tpr)
	}
}

func TestTPRAtFPRSeparated(t *testing.T) {
	member := []float64{0.1, 0.2}
	non := []float64{10, 11, 12}
	tpr, err := TPRAtFPR(member, non, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tpr != 1 {
		t.Fatalf("separated tpr@0fpr = %v, want 1", tpr)
	}
}

func TestTPRAtFPRTiesRespectBudget(t *testing.T) {
	// All non-members share one score; any threshold at that score would
	// have FPR=1, so with maxFPR=0.1 the threshold must drop below it.
	member := []float64{5, 5, 5}
	non := []float64{5, 5, 5, 5}
	tpr, err := TPRAtFPR(member, non, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tpr != 0 {
		t.Fatalf("tied tpr = %v, want 0", tpr)
	}
}

func TestTPRAtFPRValidation(t *testing.T) {
	if _, err := TPRAtFPR(nil, []float64{1}, 0.01); !errors.Is(err, ErrNoScores) {
		t.Fatalf("empty member error = %v", err)
	}
	if _, err := TPRAtFPR([]float64{1}, []float64{1}, 2); err == nil {
		t.Fatal("maxFPR out of range accepted")
	}
}

// trainOverfitModel trains a model on a tiny dataset until it memorizes.
func trainOverfitModel(t *testing.T) (*nn.MLP, data.NodeData) {
	t.Helper()
	rng := tensor.NewRNG(17)
	gen, err := data.NewGaussianGenerator(data.GaussianConfig{
		Dim: 10, Classes: 4, Margin: 1.2, Noise: 1.0, LabelNoise: 0.15,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	train := gen.Sample(32, rng)
	test := gen.Sample(64, rng)
	model, err := nn.NewMLP([]int{10, 48, 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := nn.NewTrainer(model, nn.NewSGD(nn.SGDConfig{LR: 0.08}), 8, 1)
	for e := 0; e < 150; e++ {
		if _, err := tr.RunEpochs(train.X, train.Y, rng); err != nil {
			t.Fatal(err)
		}
	}
	return model, data.NodeData{Train: train, Test: test}
}

func TestAttackNodeDetectsOverfitting(t *testing.T) {
	model, nd := trainOverfitModel(t)
	res, err := AttackNode(model, nd)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.65 {
		t.Fatalf("attack accuracy on memorized model = %v, want > 0.65", res.Accuracy)
	}
	if res.TPRAt1FPR < 0 || res.TPRAt1FPR > 1 {
		t.Fatalf("tpr out of range: %v", res.TPRAt1FPR)
	}
}

func TestAttackNodeNearChanceOnFreshModel(t *testing.T) {
	rng := tensor.NewRNG(23)
	gen, err := data.NewGaussianGenerator(data.GaussianConfig{
		Dim: 10, Classes: 4, Margin: 2, Noise: 1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	nd := data.NodeData{Train: gen.Sample(64, rng), Test: gen.Sample(64, rng)}
	model, err := nn.NewMLP([]int{10, 16, 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AttackNode(model, nd)
	if err != nil {
		t.Fatal(err)
	}
	// An untrained model carries no membership signal; allow sampling
	// slack above the 0.5 floor.
	if res.Accuracy > 0.68 {
		t.Fatalf("untrained model attack accuracy = %v, want near 0.5", res.Accuracy)
	}
}

func TestPlantCanaries(t *testing.T) {
	rng := tensor.NewRNG(31)
	gen, err := data.NewGaussianGenerator(data.GaussianConfig{
		Dim: 6, Classes: 3, Margin: 2, Noise: 0.5,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := gen.Sample(200, rng)
	parts, err := data.PartitionIID(base, 4, 20, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	beforeSizes := make([]int, 4)
	for i, p := range parts {
		beforeSizes[i] = p.Train.Len()
	}
	set, err := PlantCanaries(parts, gen, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	if set.HeldOut.Len() != 12 {
		t.Fatalf("held-out size = %d, want 12", set.HeldOut.Len())
	}
	totalPlanted := 0
	for i, p := range parts {
		planted := p.Train.Len() - beforeSizes[i]
		if planted != set.PerNode[i].Len() {
			t.Fatalf("node %d planted %d but recorded %d", i, planted, set.PerNode[i].Len())
		}
		if planted != 3 { // 12 canaries over 4 nodes
			t.Fatalf("node %d got %d canaries, want 3", i, planted)
		}
		totalPlanted += planted
	}
	if totalPlanted != 12 {
		t.Fatalf("planted %d canaries, want 12", totalPlanted)
	}
	if _, err := PlantCanaries(parts, gen, 2, rng); !errors.Is(err, ErrCanary) {
		t.Fatalf("too-few canaries error = %v", err)
	}
	if _, err := PlantCanaries(nil, gen, 2, rng); !errors.Is(err, ErrCanary) {
		t.Fatalf("no nodes error = %v", err)
	}
}

func TestCanaryAuditDetectsMemorization(t *testing.T) {
	rng := tensor.NewRNG(41)
	gen, err := data.NewGaussianGenerator(data.GaussianConfig{
		Dim: 6, Classes: 3, Margin: 2.5, Noise: 0.6,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := gen.Sample(200, rng)
	parts, err := data.PartitionIID(base, 2, 16, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	set, err := PlantCanaries(parts, gen, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Memorize node 0's training set (canaries included).
	model, err := nn.NewMLP([]int{6, 64, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := nn.NewTrainer(model, nn.NewSGD(nn.SGDConfig{LR: 0.1}), 8, 1)
	for e := 0; e < 250; e++ {
		if _, err := tr.RunEpochs(parts[0].Train.X, parts[0].Train.Y, rng); err != nil {
			t.Fatal(err)
		}
	}
	tpr, err := set.NodeTPR(0, model)
	if err != nil {
		t.Fatal(err)
	}
	if tpr < 0.5 {
		t.Fatalf("canary TPR on memorized model = %v, want >= 0.5", tpr)
	}
	// A fresh model should not expose the canaries.
	fresh, err := nn.NewMLP([]int{6, 64, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	freshTPR, err := set.NodeTPR(0, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if freshTPR >= tpr {
		t.Fatalf("fresh model TPR %v should be below memorized %v", freshTPR, tpr)
	}
	// MaxTPR validates model count.
	if _, err := set.MaxTPR([]*nn.MLP{model}); !errors.Is(err, ErrCanary) {
		t.Fatalf("model count error = %v", err)
	}
	maxTPR, err := set.MaxTPR([]*nn.MLP{model, fresh})
	if err != nil {
		t.Fatal(err)
	}
	if maxTPR < tpr {
		t.Fatalf("max TPR %v below node-0 TPR %v", maxTPR, tpr)
	}
	if _, err := set.NodeTPR(99, model); !errors.Is(err, ErrCanary) {
		t.Fatalf("node range error = %v", err)
	}
}
