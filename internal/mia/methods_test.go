package mia

import (
	"math"
	"testing"
	"testing/quick"

	"gossipmia/internal/tensor"
)

func TestMethodNamesRoundTrip(t *testing.T) {
	for _, m := range AllMethods() {
		got, err := MethodByName(m.String())
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip %s -> %s", m, got)
		}
	}
	if _, err := MethodByName("nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method should still render")
	}
}

func TestMethodScoreOrientations(t *testing.T) {
	// Confident-correct prediction must score lower (more member-like)
	// than confident-wrong under every method.
	confident := tensor.Vector{0.98, 0.01, 0.01}
	for _, m := range AllMethods() {
		right, err := MethodScore(m, confident, 0)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		wrong, err := MethodScore(m, confident, 1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		// Entropy is label-free, so right == wrong there; all others
		// must separate.
		if m == MethodEntropy {
			if right != wrong {
				t.Fatalf("entropy should ignore the label: %v vs %v", right, wrong)
			}
			continue
		}
		if right >= wrong {
			t.Fatalf("%s: confident-correct %v should score below confident-wrong %v", m, right, wrong)
		}
	}
}

func TestEntropyExtremes(t *testing.T) {
	uniform := tensor.Vector{0.25, 0.25, 0.25, 0.25}
	peaked := tensor.Vector{0.97, 0.01, 0.01, 0.01}
	hu, err := MethodScore(MethodEntropy, uniform, 0)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := MethodScore(MethodEntropy, peaked, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hu-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform entropy = %v, want ln 4", hu)
	}
	if hp >= hu {
		t.Fatalf("peaked entropy %v should be below uniform %v", hp, hu)
	}
}

func TestConfidenceAndLossRelation(t *testing.T) {
	// Loss = -log(p_y) and confidence = -p_y are monotone transforms of
	// each other, so they must induce the same ordering.
	rng := tensor.NewRNG(5)
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		p1 := r.Dirichlet(5, 0.5)
		p2 := r.Dirichlet(5, 0.5)
		y := rng.Intn(5)
		c1, _ := MethodScore(MethodConfidence, p1, y)
		c2, _ := MethodScore(MethodConfidence, p2, y)
		l1, _ := MethodScore(MethodLoss, p1, y)
		l2, _ := MethodScore(MethodLoss, p2, y)
		return (c1 < c2) == (l1 < l2) || c1 == c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every method is finite on valid distributions.
func TestMethodScoresFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := tensor.NewRNG(seed)
		p := r.Dirichlet(8, 0.2)
		for _, m := range AllMethods() {
			for y := 0; y < 8; y++ {
				s, err := MethodScore(m, p, y)
				if err != nil || math.IsNaN(s) || math.IsInf(s, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAllMethodsDetectOverfitting(t *testing.T) {
	model, nd := trainOverfitModel(t)
	mpe, err := AttackNodeWith(MethodMPE, model, nd)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range AllMethods() {
		res, err := AttackNodeWith(m, model, nd)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Accuracy < 0.6 {
			t.Fatalf("%s attack accuracy on memorized model = %v, want > 0.6", m, res.Accuracy)
		}
	}
	// MPE should match the paper's AttackNode exactly.
	direct, err := AttackNode(model, nd)
	if err != nil {
		t.Fatal(err)
	}
	if direct != mpe {
		t.Fatalf("AttackNode %+v != AttackNodeWith(MPE) %+v", direct, mpe)
	}
}

func TestMethodScoreUnknown(t *testing.T) {
	if _, err := MethodScore(Method(99), tensor.Vector{1}, 0); err == nil {
		t.Fatal("unknown method accepted")
	}
}
