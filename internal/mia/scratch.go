package mia

import (
	"fmt"
	"math"
	"sort"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// Scratch holds the reusable buffers of the thresholded-attack pipeline:
// member/non-member score slices, the softmax probability row, the
// threshold-sweep point list, and the sorted copies the ROC needs. The
// per-round evaluation keeps one Scratch per evaluated node slot, so
// repeated attacks (one per node per evaluated round — the eval hot
// path) allocate nothing at steady state. A Scratch must not be shared
// between goroutines; the zero value is ready to use.
type Scratch struct {
	member, nonMember []float64
	probs             tensor.Vector
	pts               attackPoints
	mem, non          floatSorter
}

// AttackNode is the scratch-backed equivalent of the package-level
// AttackNode: same result bits, zero steady-state allocation.
func (s *Scratch) AttackNode(model *nn.MLP, nd data.NodeData) (Result, error) {
	return s.AttackNodeWith(MethodMPE, model, nd)
}

// AttackNodeWith runs the thresholded attack with an arbitrary score
// method, reusing the scratch buffers.
func (s *Scratch) AttackNodeWith(m Method, model *nn.MLP, nd data.NodeData) (Result, error) {
	var err error
	s.member, err = s.scoresInto(m, model, nd.Train, s.member[:0])
	if err != nil {
		return Result{}, fmt.Errorf("mia: member scores: %w", err)
	}
	s.nonMember, err = s.scoresInto(m, model, nd.Test, s.nonMember[:0])
	if err != nil {
		return Result{}, fmt.Errorf("mia: non-member scores: %w", err)
	}
	acc, _, err := s.bestThresholdAccuracy(s.member, s.nonMember)
	if err != nil {
		return Result{}, err
	}
	tpr, err := s.tprAtFPR(s.member, s.nonMember, 0.01)
	if err != nil {
		return Result{}, err
	}
	return Result{Accuracy: acc, TPRAt1FPR: tpr}, nil
}

// scoresInto appends the method-m score of every example in ds to dst,
// sweeping the model through its batched scoring path (bit-identical to
// the per-example forward) and reusing the scratch probability row.
func (s *Scratch) scoresInto(m Method, model *nn.MLP, ds *data.Dataset, dst []float64) ([]float64, error) {
	if ds.Len() == 0 {
		return dst, data.ErrEmpty
	}
	// Reject an unknown method before the sweep: the batched forward
	// has no early exit, so a per-example failure would still pay for
	// every remaining chunk's GEMM passes.
	switch m {
	case MethodMPE, MethodEntropy, MethodConfidence, MethodLoss:
	default:
		return dst, fmt.Errorf("mia: unknown method %d", int(m))
	}
	if len(s.probs) != model.Classes() {
		s.probs = tensor.NewVector(model.Classes())
	}
	var scoreErr error
	err := model.ScoreBatch(ds.X, func(i int, logits tensor.Vector) {
		if scoreErr != nil {
			return
		}
		nn.Softmax(logits, s.probs)
		v, err := MethodScore(m, s.probs, ds.Y[i])
		if err != nil {
			scoreErr = fmt.Errorf("mia: %s score example %d: %w", m, i, err)
			return
		}
		dst = append(dst, v)
	})
	if err != nil {
		return dst, err
	}
	return dst, scoreErr
}

// attackPoint is one (score, membership) observation of the threshold
// sweep.
type attackPoint struct {
	score  float64
	member bool
}

// attackPoints sorts by ascending score; it implements sort.Interface
// on a pointer receiver so sorting boxes no slice header.
type attackPoints struct{ p []attackPoint }

func (a *attackPoints) Len() int           { return len(a.p) }
func (a *attackPoints) Less(i, j int) bool { return a.p[i].score < a.p[j].score }
func (a *attackPoints) Swap(i, j int)      { a.p[i], a.p[j] = a.p[j], a.p[i] }

// floatSorter is a reusable ascending float64 sorter (same
// no-boxing rationale as attackPoints).
type floatSorter struct{ v []float64 }

func (f *floatSorter) Len() int           { return len(f.v) }
func (f *floatSorter) Less(i, j int) bool { return f.v[i] < f.v[j] }
func (f *floatSorter) Swap(i, j int)      { f.v[i], f.v[j] = f.v[j], f.v[i] }

// bestThresholdAccuracy is BestThresholdAccuracy on reusable buffers.
// Ties sit on the same side of every candidate threshold and are summed
// as one group, so the (unstable) sort order within a tie never affects
// the result.
func (s *Scratch) bestThresholdAccuracy(member, nonMember []float64) (acc, threshold float64, err error) {
	if len(member) == 0 || len(nonMember) == 0 {
		return 0, 0, ErrNoScores
	}
	s.pts.p = s.pts.p[:0]
	for _, v := range member {
		s.pts.p = append(s.pts.p, attackPoint{v, true})
	}
	for _, v := range nonMember {
		s.pts.p = append(s.pts.p, attackPoint{v, false})
	}
	sort.Sort(&s.pts)
	pts := s.pts.p

	wm := 0.5 / float64(len(member))    // weight of one member
	wn := 0.5 / float64(len(nonMember)) // weight of one non-member

	// Threshold below every score: all predicted non-member.
	best := 0.5
	bestTau := pts[0].score - 1
	var caught float64 // weighted members with score <= tau
	var wrong float64  // weighted non-members with score <= tau
	i := 0
	for i < len(pts) {
		// Advance over all points sharing this score so ties sit on the
		// same side of the threshold.
		v := pts[i].score
		for i < len(pts) && pts[i].score == v {
			if pts[i].member {
				caught += wm
			} else {
				wrong += wn
			}
			i++
		}
		acc := 0.5 + caught - wrong
		if acc > best {
			best = acc
			bestTau = v
		}
	}
	return best, bestTau, nil
}

// tprAtFPR is TPRAtFPR on reusable buffers.
func (s *Scratch) tprAtFPR(member, nonMember []float64, maxFPR float64) (float64, error) {
	if len(member) == 0 || len(nonMember) == 0 {
		return 0, ErrNoScores
	}
	if maxFPR < 0 || maxFPR > 1 {
		return 0, fmt.Errorf("mia: maxFPR %v out of [0,1]", maxFPR)
	}
	s.non.v = append(s.non.v[:0], nonMember...)
	sort.Sort(&s.non)
	s.mem.v = append(s.mem.v[:0], member...)
	sort.Sort(&s.mem)
	non, mem := s.non.v, s.mem.v

	// Candidate thresholds: each non-member score defines the largest τ
	// with a given FPR. Find the largest τ with FPR ≤ maxFPR.
	allowed := int(maxFPR * float64(len(non))) // false positives allowed
	var tau float64
	if allowed <= 0 {
		// τ must be strictly below the smallest non-member score.
		tau = math.Nextafter(non[0], math.Inf(-1))
	} else if allowed >= len(non) {
		tau = math.Inf(1)
	} else {
		// non[allowed-1] may tie with non[allowed]; walk back over ties
		// so FPR stays ≤ maxFPR.
		tau = non[allowed-1]
		if tau == non[allowed] {
			tau = math.Nextafter(tau, math.Inf(-1))
		}
	}
	// TPR = fraction of members with score <= tau.
	tp := sort.SearchFloat64s(mem, math.Nextafter(tau, math.Inf(1)))
	return float64(tp) / float64(len(mem)), nil
}
