// Package metrics implements the paper's evaluation metrics (Equations
// 5–8): global test accuracy, generalization error, and the aggregation
// and series-recording helpers used to produce each figure's data.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// Accuracy returns top-1 accuracy of model on ds (Equation 5). The
// sweep runs through the model's batched scoring path — blocked GEMM
// forward passes that are bit-identical to per-example Predict calls —
// so the result is unchanged and the evaluation loop allocates nothing
// at steady state.
func Accuracy(model *nn.MLP, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, data.ErrEmpty
	}
	correct := 0
	err := model.ScoreBatch(ds.X, func(i int, logits tensor.Vector) {
		if logits.ArgMax() == ds.Y[i] {
			correct++
		}
	})
	if err != nil {
		return 0, fmt.Errorf("metrics: accuracy: %w", err)
	}
	return float64(correct) / float64(ds.Len()), nil
}

// MeanLoss returns the average cross-entropy loss of model on ds.
func MeanLoss(model *nn.MLP, ds *data.Dataset) (float64, error) {
	if ds.Len() == 0 {
		return 0, data.ErrEmpty
	}
	var s float64
	for i, x := range ds.X {
		l, err := model.Loss(x, ds.Y[i])
		if err != nil {
			return 0, fmt.Errorf("metrics: loss example %d: %w", i, err)
		}
		s += l
	}
	return s / float64(ds.Len()), nil
}

// GenError returns the generalization error of Equation (8): local train
// accuracy minus local test accuracy.
func GenError(model *nn.MLP, nd data.NodeData) (float64, error) {
	trainAcc, err := Accuracy(model, nd.Train)
	if err != nil {
		return 0, fmt.Errorf("metrics: gen error train split: %w", err)
	}
	testAcc, err := Accuracy(model, nd.Test)
	if err != nil {
		return 0, fmt.Errorf("metrics: gen error test split: %w", err)
	}
	return trainAcc - testAcc, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs (-Inf for empty input).
func Max(xs []float64) float64 {
	best := math.Inf(-1)
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

// Min returns the minimum of xs (+Inf for empty input).
func Min(xs []float64) float64 {
	best := math.Inf(1)
	for _, x := range xs {
		if x < best {
			best = x
		}
	}
	return best
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// RoundRecord holds the per-round averages the paper reports: global test
// accuracy, the two MIA vulnerability measures, and generalization error.
type RoundRecord struct {
	Round     int     `json:"round"`
	TestAcc   float64 `json:"testAcc"`
	MIAAcc    float64 `json:"miaAcc"`
	TPRAt1FPR float64 `json:"tprAt1FPR"`
	GenError  float64 `json:"genError"`
}

// Series is an ordered collection of round records for one experimental
// arm (one curve in a figure).
type Series struct {
	Label   string        `json:"label"`
	Records []RoundRecord `json:"records"`
}

// Append adds a record to the series.
func (s *Series) Append(r RoundRecord) { s.Records = append(s.Records, r) }

// Last returns the most recent record (zero value when empty).
func (s *Series) Last() RoundRecord {
	if len(s.Records) == 0 {
		return RoundRecord{}
	}
	return s.Records[len(s.Records)-1]
}

// MaxTestAcc returns the maximum test accuracy across the series.
func (s *Series) MaxTestAcc() float64 {
	best := math.Inf(-1)
	for _, r := range s.Records {
		if r.TestAcc > best {
			best = r.TestAcc
		}
	}
	return best
}

// MaxMIAAcc returns the maximum MIA accuracy across the series.
func (s *Series) MaxMIAAcc() float64 {
	best := math.Inf(-1)
	for _, r := range s.Records {
		if r.MIAAcc > best {
			best = r.MIAAcc
		}
	}
	return best
}

// MaxTPR returns the maximum TPR@1%FPR across the series.
func (s *Series) MaxTPR() float64 {
	best := math.Inf(-1)
	for _, r := range s.Records {
		if r.TPRAt1FPR > best {
			best = r.TPRAt1FPR
		}
	}
	return best
}

// CSV renders the series as a CSV table with a header row.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("round,test_acc,mia_acc,tpr_at_1fpr,gen_error\n")
	for _, r := range s.Records {
		fmt.Fprintf(&b, "%d,%.6f,%.6f,%.6f,%.6f\n", r.Round, r.TestAcc, r.MIAAcc, r.TPRAt1FPR, r.GenError)
	}
	return b.String()
}
