package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"

	"gossipmia/internal/data"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

func toyModelAndData(t *testing.T) (*nn.MLP, *data.Dataset) {
	t.Helper()
	rng := tensor.NewRNG(3)
	gen, err := data.NewGaussianGenerator(data.GaussianConfig{
		Dim: 4, Classes: 2, Margin: 4, Noise: 0.3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Sample(60, rng)
	model, err := nn.NewMLP([]int{4, 8, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return model, ds
}

func TestAccuracyRangeAndEmpty(t *testing.T) {
	model, ds := toyModelAndData(t)
	acc, err := Accuracy(model, ds)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
	if _, err := Accuracy(model, &data.Dataset{Classes: 2}); !errors.Is(err, data.ErrEmpty) {
		t.Fatalf("empty dataset error = %v", err)
	}
}

func TestAccuracyImprovesWithTraining(t *testing.T) {
	model, ds := toyModelAndData(t)
	rng := tensor.NewRNG(9)
	before, err := Accuracy(model, ds)
	if err != nil {
		t.Fatal(err)
	}
	tr := nn.NewTrainer(model, nn.NewSGD(nn.SGDConfig{LR: 0.1}), 10, 5)
	for i := 0; i < 5; i++ {
		if _, err := tr.RunEpochs(ds.X, ds.Y, rng); err != nil {
			t.Fatal(err)
		}
	}
	after, err := Accuracy(model, ds)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("accuracy did not improve: %v -> %v", before, after)
	}
	loss, err := MeanLoss(model, ds)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v", loss)
	}
}

func TestGenError(t *testing.T) {
	model, ds := toyModelAndData(t)
	rng := tensor.NewRNG(5)
	train, test, err := ds.Split(30)
	if err != nil {
		t.Fatal(err)
	}
	nd := data.NodeData{Train: train, Test: test}
	// Overfit the train half.
	tr := nn.NewTrainer(model, nn.NewSGD(nn.SGDConfig{LR: 0.1}), 10, 5)
	for i := 0; i < 20; i++ {
		if _, err := tr.RunEpochs(train.X, train.Y, rng); err != nil {
			t.Fatal(err)
		}
	}
	ge, err := GenError(model, nd)
	if err != nil {
		t.Fatal(err)
	}
	if ge < -1 || ge > 1 {
		t.Fatalf("gen error %v out of range", ge)
	}
	if _, err := GenError(model, data.NodeData{Train: train, Test: &data.Dataset{Classes: 2}}); err == nil {
		t.Fatal("empty test split accepted")
	}
}

func TestAggregations(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if Max(xs) != 4 || Min(xs) != 1 {
		t.Fatalf("max/min = %v/%v", Max(xs), Min(xs))
	}
	if Mean(nil) != 0 {
		t.Fatalf("empty mean = %v", Mean(nil))
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Fatal("empty max/min should be infinities")
	}
	if s := Std([]float64{2, 2, 2}); s != 0 {
		t.Fatalf("constant std = %v", s)
	}
	if s := Std([]float64{0, 2}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("std = %v, want 1", s)
	}
	if Std(nil) != 0 {
		t.Fatal("empty std should be 0")
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Label: "arm"}
	if last := s.Last(); last != (RoundRecord{}) {
		t.Fatalf("empty last = %+v", last)
	}
	s.Append(RoundRecord{Round: 0, TestAcc: 0.3, MIAAcc: 0.6, TPRAt1FPR: 0.01, GenError: 0.1})
	s.Append(RoundRecord{Round: 1, TestAcc: 0.5, MIAAcc: 0.7, TPRAt1FPR: 0.02, GenError: 0.2})
	s.Append(RoundRecord{Round: 2, TestAcc: 0.4, MIAAcc: 0.65, TPRAt1FPR: 0.015, GenError: 0.15})
	if s.Last().Round != 2 {
		t.Fatalf("last = %+v", s.Last())
	}
	if s.MaxTestAcc() != 0.5 || s.MaxMIAAcc() != 0.7 || s.MaxTPR() != 0.02 {
		t.Fatalf("maxima: %v %v %v", s.MaxTestAcc(), s.MaxMIAAcc(), s.MaxTPR())
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "round,test_acc") {
		t.Fatalf("csv header missing:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != 4 { // header + 3 rows
		t.Fatalf("csv has %d lines, want 4", got)
	}
}
