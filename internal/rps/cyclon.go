// Package rps implements a Cyclon-style random peer sampling service
// (Voulgaris et al.), the substrate the paper's Section 2.4 assumes
// underneath its topologies: each node maintains a small partial view of
// peer descriptors with ages, and periodically shuffles a subset of its
// view with its oldest peer. The emergent communication graph has
// near-uniform in-degree and refreshes continuously — the "robust
// peer-sampling protocols" the paper's recommendations call for.
package rps

import (
	"errors"
	"fmt"

	"gossipmia/internal/tensor"
)

// ErrConfig is returned for invalid service parameters.
var ErrConfig = errors.New("rps: invalid config")

// Descriptor is one view entry: a peer id and the age (in shuffles since
// injection) used to prefer fresh information.
type Descriptor struct {
	Peer int
	Age  int
}

// Service simulates the Cyclon protocol over n nodes in one process.
// Views are directed: node i knowing j does not imply the converse.
type Service struct {
	n          int
	viewSize   int
	shuffleLen int
	views      [][]Descriptor
	rng        *tensor.RNG
}

// New builds a service with the given view size and shuffle length
// (number of descriptors exchanged per shuffle; capped at viewSize).
// Initial views are a random ring-plus-random-fill, mirroring bootstrap
// from a tracker.
func New(n, viewSize, shuffleLen int, rng *tensor.RNG) (*Service, error) {
	if n < 2 || viewSize < 1 || viewSize >= n {
		return nil, fmt.Errorf("%w: n=%d viewSize=%d", ErrConfig, n, viewSize)
	}
	if shuffleLen < 1 {
		return nil, fmt.Errorf("%w: shuffleLen=%d", ErrConfig, shuffleLen)
	}
	if shuffleLen > viewSize {
		shuffleLen = viewSize
	}
	s := &Service{
		n:          n,
		viewSize:   viewSize,
		shuffleLen: shuffleLen,
		views:      make([][]Descriptor, n),
		rng:        rng,
	}
	perm := rng.Perm(n)
	for idx, i := range perm {
		view := make([]Descriptor, 0, viewSize)
		seen := map[int]bool{i: true}
		// Ring successor guarantees initial connectivity.
		succ := perm[(idx+1)%n]
		view = append(view, Descriptor{Peer: succ})
		seen[succ] = true
		for len(view) < viewSize {
			j := rng.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			view = append(view, Descriptor{Peer: j})
		}
		s.views[i] = view
	}
	return s, nil
}

// N returns the number of nodes.
func (s *Service) N() int { return s.n }

// ViewSize returns the per-node view capacity.
func (s *Service) ViewSize() int { return s.viewSize }

// View returns the peer ids currently in node i's view.
func (s *Service) View(i int) []int {
	out := make([]int, len(s.views[i]))
	for idx, d := range s.views[i] {
		out[idx] = d.Peer
	}
	return out
}

// Shuffle performs one Cyclon exchange initiated by node i:
//  1. age all descriptors; pick the oldest peer q and remove it;
//  2. send shuffleLen−1 random other descriptors plus a fresh self
//     descriptor to q;
//  3. q replies with shuffleLen random descriptors from its view;
//  4. both sides merge, preferring received entries in the slots just
//     vacated, never duplicating and never pointing at themselves.
func (s *Service) Shuffle(i int) {
	view := s.views[i]
	if len(view) == 0 {
		return
	}
	for idx := range view {
		view[idx].Age++
	}
	// Oldest peer q (ties to lowest index for determinism).
	oldest := 0
	for idx := 1; idx < len(view); idx++ {
		if view[idx].Age > view[oldest].Age {
			oldest = idx
		}
	}
	q := view[oldest].Peer
	// Remove q from i's view.
	view = append(view[:oldest], view[oldest+1:]...)

	// Build i's offer: fresh self + up to shuffleLen-1 random others.
	offer := []Descriptor{{Peer: i, Age: 0}}
	idxs := s.rng.Perm(len(view))
	for _, idx := range idxs {
		if len(offer) >= s.shuffleLen {
			break
		}
		offer = append(offer, view[idx])
	}

	// q's reply: up to shuffleLen random descriptors from its view.
	qview := s.views[q]
	reply := make([]Descriptor, 0, s.shuffleLen)
	for _, idx := range s.rng.Perm(len(qview)) {
		if len(reply) >= s.shuffleLen {
			break
		}
		reply = append(reply, qview[idx])
	}

	s.views[q] = merge(qview, offer, peersOf(reply), q, s.viewSize)
	s.views[i] = merge(view, reply, peersOf(offer), i, s.viewSize)
}

func peersOf(ds []Descriptor) map[int]bool {
	out := make(map[int]bool, len(ds))
	for _, d := range ds {
		out[d.Peer] = true
	}
	return out
}

// merge folds received descriptors into view (capacity cap) for owner,
// following Cyclon's replacement policy: drop self-pointers and peers
// already known, fill empty slots first, then replace entries that were
// sent to the shuffle partner (and are therefore redundant), and discard
// any remainder.
func merge(view, received []Descriptor, sent map[int]bool, owner, cap int) []Descriptor {
	known := make(map[int]bool, len(view))
	for _, d := range view {
		known[d.Peer] = true
	}
	// Indices of entries eligible for replacement (they were offered to
	// the partner).
	replaceable := make([]int, 0, len(view))
	for idx, d := range view {
		if sent[d.Peer] {
			replaceable = append(replaceable, idx)
		}
	}
	for _, d := range received {
		if d.Peer == owner || known[d.Peer] {
			continue
		}
		switch {
		case len(view) < cap:
			view = append(view, d)
		case len(replaceable) > 0:
			idx := replaceable[len(replaceable)-1]
			replaceable = replaceable[:len(replaceable)-1]
			view[idx] = d
		default:
			continue // view full, nothing replaceable: drop
		}
		known[d.Peer] = true
	}
	return view
}

// Validate checks the protocol invariants: no self-pointers, no
// duplicates, and views within capacity.
func (s *Service) Validate() error {
	for i, view := range s.views {
		if len(view) > s.viewSize {
			return fmt.Errorf("rps: node %d view size %d exceeds %d", i, len(view), s.viewSize)
		}
		seen := make(map[int]bool, len(view))
		for _, d := range view {
			if d.Peer == i {
				return fmt.Errorf("rps: node %d points at itself", i)
			}
			if d.Peer < 0 || d.Peer >= s.n {
				return fmt.Errorf("rps: node %d has out-of-range peer %d", i, d.Peer)
			}
			if seen[d.Peer] {
				return fmt.Errorf("rps: node %d has duplicate peer %d", i, d.Peer)
			}
			seen[d.Peer] = true
		}
	}
	return nil
}

// InDegrees returns, for each node, how many views contain it — the
// statistic whose near-uniformity characterizes a healthy RPS.
func (s *Service) InDegrees() []int {
	deg := make([]int, s.n)
	for _, view := range s.views {
		for _, d := range view {
			deg[d.Peer]++
		}
	}
	return deg
}

// Reachable returns how many nodes are reachable from start following
// directed view edges (connectivity diagnostic).
func (s *Service) Reachable(start int) int {
	seen := make([]bool, s.n)
	stack := []int{start}
	seen[start] = true
	count := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range s.views[cur] {
			if !seen[d.Peer] {
				seen[d.Peer] = true
				count++
				stack = append(stack, d.Peer)
			}
		}
	}
	return count
}
