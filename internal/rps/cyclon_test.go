package rps

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gossipmia/internal/tensor"
)

func mustService(t *testing.T, n, viewSize, shuffleLen int, seed int64) *Service {
	t.Helper()
	s, err := New(n, viewSize, shuffleLen, tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("fresh service invalid: %v", err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, tc := range []struct{ n, v, l int }{{1, 1, 1}, {10, 0, 1}, {10, 10, 1}, {10, 3, 0}} {
		if _, err := New(tc.n, tc.v, tc.l, rng); !errors.Is(err, ErrConfig) {
			t.Fatalf("n=%d v=%d l=%d: error = %v", tc.n, tc.v, tc.l, err)
		}
	}
	// Shuffle length is capped at the view size.
	s, err := New(10, 3, 99, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.shuffleLen != 3 {
		t.Fatalf("shuffleLen = %d, want 3", s.shuffleLen)
	}
}

func TestViewsStartFullAndValid(t *testing.T) {
	s := mustService(t, 20, 4, 3, 2)
	for i := 0; i < s.N(); i++ {
		if len(s.View(i)) != 4 {
			t.Fatalf("node %d view size %d", i, len(s.View(i)))
		}
	}
}

// Property: invariants hold under arbitrary shuffle schedules.
func TestShuffleInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		s, err := New(16, 4, 3, rng)
		if err != nil {
			return false
		}
		for step := 0; step < 200; step++ {
			s.Shuffle(rng.Intn(s.N()))
			if s.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsNetworkConnected(t *testing.T) {
	rng := tensor.NewRNG(5)
	s := mustService(t, 40, 5, 3, 5)
	for step := 0; step < 2000; step++ {
		s.Shuffle(rng.Intn(s.N()))
	}
	if got := s.Reachable(0); got != s.N() {
		t.Fatalf("only %d of %d nodes reachable after shuffling", got, s.N())
	}
}

func TestInDegreeStaysNearUniform(t *testing.T) {
	rng := tensor.NewRNG(9)
	const (
		n    = 60
		view = 5
	)
	s := mustService(t, n, view, 3, 9)
	for step := 0; step < 6000; step++ {
		s.Shuffle(rng.Intn(n))
	}
	deg := s.InDegrees()
	var sum, sq float64
	for _, d := range deg {
		sum += float64(d)
		sq += float64(d) * float64(d)
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	// Total in-degree equals total view slots, so the mean is ~viewSize;
	// Cyclon keeps the spread tight (well below the mean).
	if math.Abs(mean-view) > 0.5 {
		t.Fatalf("mean in-degree %v, want ~%d", mean, view)
	}
	if std > float64(view) {
		t.Fatalf("in-degree std %v too high (mean %v)", std, mean)
	}
	// No node should be forgotten entirely.
	for i, d := range deg {
		if d == 0 {
			t.Fatalf("node %d vanished from all views", i)
		}
	}
}

func TestViewsActuallyChange(t *testing.T) {
	rng := tensor.NewRNG(11)
	s := mustService(t, 20, 4, 3, 11)
	before := append([]int(nil), s.View(0)...)
	for step := 0; step < 100; step++ {
		s.Shuffle(rng.Intn(s.N()))
	}
	after := s.View(0)
	same := true
	if len(before) == len(after) {
		bm := map[int]bool{}
		for _, p := range before {
			bm[p] = true
		}
		for _, p := range after {
			if !bm[p] {
				same = false
			}
		}
	} else {
		same = false
	}
	if same {
		t.Fatal("view did not change after 100 shuffles")
	}
}

func TestSelfDescriptorSpreads(t *testing.T) {
	// After a node initiates a shuffle, its fresh self-descriptor must
	// appear in the partner's view (that is how liveness propagates).
	s := mustService(t, 10, 3, 2, 13)
	// Find node 0's oldest peer deterministically by running the
	// shuffle and checking all views for 0.
	s.Shuffle(0)
	found := false
	for j := 0; j < s.N(); j++ {
		if j == 0 {
			continue
		}
		for _, p := range s.View(j) {
			if p == 0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("self descriptor did not propagate")
	}
}

func TestMergeCyclonPolicy(t *testing.T) {
	// Known peers are not duplicated; empty slots fill first.
	view := []Descriptor{{Peer: 1, Age: 5}}
	received := []Descriptor{{Peer: 1, Age: 0}, {Peer: 2, Age: 3}}
	out := merge(view, received, nil, 0, 4)
	if len(out) != 2 {
		t.Fatalf("merged view %v", out)
	}
	// Self descriptors are dropped; with a full view only sent entries
	// are replaced.
	out = merge(
		[]Descriptor{{Peer: 1, Age: 9}, {Peer: 2, Age: 1}},
		[]Descriptor{{Peer: 0, Age: 0}, {Peer: 3, Age: 2}, {Peer: 4, Age: 1}},
		map[int]bool{1: true}, // only peer 1 was sent out
		0, 2)
	if len(out) != 2 {
		t.Fatalf("capacity not enforced: %v", out)
	}
	peers := map[int]bool{}
	for _, d := range out {
		peers[d.Peer] = true
	}
	if peers[0] {
		t.Fatal("self descriptor kept")
	}
	if peers[1] {
		t.Fatal("sent entry not replaced")
	}
	if !peers[2] {
		t.Fatal("unsent entry was evicted")
	}
	if !peers[3] && !peers[4] {
		t.Fatal("no received entry installed")
	}
}
