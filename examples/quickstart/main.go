// Quickstart: run one gossip-learning arm (SAMO, dynamic 3-regular graph,
// FashionMNIST-like corpus) and print the utility / MIA-vulnerability
// series — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"os"

	"gossipmia/internal/core"
	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	study, err := core.NewStudy(core.StudyConfig{
		Label:    "quickstart",
		Corpus:   data.FashionMNIST,
		Protocol: "samo",
		Sim: gossip.Config{
			Nodes:    12,
			ViewSize: 3,
			Dynamic:  true,
			Rounds:   10,
			Seed:     42,
		},
		Train: core.TrainConfig{
			Hidden:      []int{32},
			LR:          0.05,
			Momentum:    0.9,
			WeightDecay: 5e-4,
			BatchSize:   16,
			LocalEpochs: 2,
		},
		Part:           core.PartitionConfig{TrainPerNode: 32, TestPerNode: 32},
		GlobalTestSize: 200,
	})
	if err != nil {
		return err
	}

	res, err := study.Run()
	if err != nil {
		return err
	}

	fmt.Println("round-by-round averages across 12 nodes:")
	fmt.Print(res.Series.CSV())
	last := res.Series.Last()
	fmt.Printf("\nfinal: test accuracy %.3f, MIA accuracy %.3f (chance = 0.5), "+
		"TPR@1%%FPR %.3f, %d models exchanged\n",
		last.TestAcc, last.MIAAcc, last.TPRAt1FPR, res.MessagesSent)
	return nil
}
