// DP gossip (RQ7): run SAMO with node-level DP-SGD at two privacy
// budgets and compare utility and MIA vulnerability against a non-DP
// baseline. The noise multiplier is calibrated with the RDP accountant
// and the realized (ε,δ) budget is reported.
package main

import (
	"fmt"
	"os"

	"gossipmia/internal/core"
	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dpgossip:", err)
		os.Exit(1)
	}
}

func run() error {
	budgets := []float64{0, 50, 10} // 0 = no DP
	fmt.Println("DP-SGD on gossip learning (Purchase100-like, SAMO, dynamic 3-regular):")
	fmt.Printf("%-10s %9s %9s %9s %9s %9s\n",
		"arm", "sigma", "realEps", "testAcc", "miaAcc", "tpr@1%")
	for i, eps := range budgets {
		cfg := core.StudyConfig{
			Label:    "nodp",
			Corpus:   data.Purchase100,
			Protocol: "samo",
			Sim: gossip.Config{
				Nodes:    8,
				ViewSize: 3,
				Dynamic:  true,
				Rounds:   6,
				Seed:     int64(100 + i),
			},
			Train: core.TrainConfig{
				Hidden: []int{64}, LR: 0.03, BatchSize: 16, LocalEpochs: 2,
			},
			Part:           core.PartitionConfig{TrainPerNode: 24, TestPerNode: 24},
			GlobalTestSize: 200,
			EvalEvery:      6,
		}
		if eps > 0 {
			cfg.Label = fmt.Sprintf("eps=%g", eps)
			cfg.DP = &core.DPConfig{Epsilon: eps, Delta: 1e-5, Clip: 1}
		}
		study, err := core.NewStudy(cfg)
		if err != nil {
			return err
		}
		res, err := study.Run()
		if err != nil {
			return err
		}
		last := res.Series.Last()
		fmt.Printf("%-10s %9.3f %9.2f %9.3f %9.3f %9.3f\n",
			cfg.Label, res.NoiseMultiplier, res.RealizedEpsilon,
			last.TestAcc, last.MIAAcc, last.TPRAt1FPR)
	}
	fmt.Println("\nsmaller epsilon -> more noise -> lower MIA accuracy and lower utility,")
	fmt.Println("the RQ7 trade-off; dynamic topologies soften the utility loss.")
	return nil
}
