// Canary audit (RQ3): plant label-flipped canaries into every node's
// training set and track the worst-case per-node TPR@1%FPR over rounds,
// comparing a static and a dynamic 2-regular topology.
package main

import (
	"fmt"
	"os"

	"gossipmia/internal/core"
	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "canaryaudit:", err)
		os.Exit(1)
	}
}

func run() error {
	arms := []struct {
		label   string
		dynamic bool
	}{
		{"static", false},
		{"dynamic", true},
	}
	fmt.Print("max per-node canary TPR at 1% FPR by round (2-regular, SAMO, CIFAR-10-like):\n")
	for _, arm := range arms {
		study, err := core.NewStudy(core.StudyConfig{
			Label:    arm.label,
			Corpus:   data.CIFAR10,
			Protocol: "samo",
			Sim: gossip.Config{
				Nodes:    10,
				ViewSize: 2,
				Dynamic:  arm.dynamic,
				Rounds:   12,
				Seed:     7,
			},
			Train: core.TrainConfig{
				Hidden: []int{32}, LR: 0.03, BatchSize: 16, LocalEpochs: 2,
			},
			Part:           core.PartitionConfig{TrainPerNode: 48, TestPerNode: 24},
			Canaries:       40,
			GlobalTestSize: 150,
		})
		if err != nil {
			return err
		}
		res, err := study.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-8s:", arm.label)
		for _, r := range res.Series.Records {
			fmt.Printf(" r%d=%.2f", r.Round, r.TPRAt1FPR)
		}
		fmt.Println()
	}
	fmt.Println("\ncanaries are crafted to be memorized; lower TPR under the dynamic")
	fmt.Println("topology shows graph mixing protecting even worst-case records.")
	return nil
}
