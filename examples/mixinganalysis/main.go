// Mixing analysis (Section 4): compute λ₂(W*) of accumulated mixing
// products for a sparse and a dense k-regular graph under static,
// PeerSwap, and random-permutation dynamics, showing why dynamics help
// exactly when the graph is sparse.
package main

import (
	"fmt"
	"os"

	"gossipmia/internal/graph"
	"gossipmia/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mixinganalysis:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n     = 60
		steps = 30
	)
	rng := tensor.NewRNG(11)

	fmt.Printf("lambda2(W*) after %d mixing iterations on %d nodes\n\n", steps, n)
	fmt.Printf("%-8s %12s %12s %12s\n", "degree", "static", "peerswap", "permutation")
	for _, k := range []int{2, 5, 10, 25} {
		g, err := graph.NewRegular(n, k, rng)
		if err != nil {
			return err
		}

		static, err := graph.StaticSequence(g, steps)
		if err != nil {
			return err
		}
		sStat, err := static.ContractionFactor(0, 120, rng)
		if err != nil {
			return err
		}

		swap, err := graph.PeerSwapSequence(g, steps, n, rng)
		if err != nil {
			return err
		}
		sSwap, err := swap.ContractionFactor(0, 120, rng)
		if err != nil {
			return err
		}

		perm, err := graph.DynamicSequence(g, steps, rng)
		if err != nil {
			return err
		}
		sPerm, err := perm.ContractionFactor(0, 120, rng)
		if err != nil {
			return err
		}

		fmt.Printf("k=%-6d %12.3e %12.3e %12.3e\n", k, sStat, sSwap, sPerm)
	}
	fmt.Println("\nsmaller is better mixing. Dynamics collapse lambda2 for sparse")
	fmt.Println("graphs (k=2); for dense graphs static is already near-optimal,")
	fmt.Println("matching Figure 10 and the RQ4 view-size findings.")
	return nil
}
