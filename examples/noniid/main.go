// Non-IID walkthrough (RQ5): sweep the Dirichlet concentration β on a
// Purchase100-like corpus and watch heterogeneity raise MIA vulnerability
// while utility falls — the paper's finding that non-IID data demands
// stronger protection than dynamics alone can provide.
package main

import (
	"fmt"
	"os"

	"gossipmia/internal/core"
	"gossipmia/internal/data"
	"gossipmia/internal/gossip"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "noniid:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("label heterogeneity vs MIA (Purchase100-like, SAMO, dynamic 2-regular):")
	fmt.Printf("%-12s %9s %9s %9s %9s\n", "arm", "testAcc", "miaAcc", "tpr@1%", "genErr")
	for i, beta := range []float64{0, 0.5, 0.1} {
		label := "iid"
		if beta > 0 {
			label = fmt.Sprintf("beta=%.1f", beta)
		}
		study, err := core.NewStudy(core.StudyConfig{
			Label:    label,
			Corpus:   data.Purchase100,
			Protocol: "samo",
			Sim: gossip.Config{
				Nodes:    10,
				ViewSize: 2,
				Dynamic:  true,
				Rounds:   10,
				Seed:     int64(31 + i),
			},
			Train: core.TrainConfig{
				Hidden: []int{64}, LR: 0.02, Momentum: 0.9,
				WeightDecay: 5e-4, BatchSize: 16, LocalEpochs: 1,
			},
			Part: core.PartitionConfig{
				TrainPerNode:  96,
				TestPerNode:   48,
				DirichletBeta: beta,
			},
			GlobalTestSize: 200,
			EvalEvery:      10,
		})
		if err != nil {
			return err
		}
		res, err := study.Run()
		if err != nil {
			return err
		}
		last := res.Series.Last()
		fmt.Printf("%-12s %9.3f %9.3f %9.3f %9.3f\n",
			label, last.TestAcc, last.MIAAcc, last.TPRAt1FPR, last.GenError)
	}
	fmt.Println("\nsmaller beta = stronger label skew: utility falls while the")
	fmt.Println("membership signal strengthens, even under a dynamic topology.")
	return nil
}
