// Package gossipmia's root benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §2 for the experiment
// index). Each BenchmarkTableN/BenchmarkFigureN target runs the
// corresponding experiment at QuickScale and logs the same rows/series
// the paper reports; Ablation benchmarks isolate the design choices
// DESIGN.md §3 calls out, and BenchmarkParallelSpeedup tracks the
// parallel experiment engine against the forced-serial path.
// Micro-benchmarks at the bottom track the hot kernels of the
// substrates.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package gossipmia

import (
	"fmt"
	"runtime"
	"testing"

	"gossipmia/internal/core"
	"gossipmia/internal/data"
	"gossipmia/internal/dp"
	"gossipmia/internal/experiment"
	"gossipmia/internal/gossip"
	"gossipmia/internal/graph"
	"gossipmia/internal/mia"
	"gossipmia/internal/nn"
	"gossipmia/internal/tensor"
)

// benchScale is the reduced-but-faithful scale used by the figure
// benchmarks; swap in experiment.PaperScale() to run the full deployment.
func benchScale() experiment.Scale { return experiment.QuickScale() }

func logFigure(b *testing.B, fig *experiment.FigureResult, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + fig.Table())
}

func BenchmarkTable1DatasetCatalog(b *testing.B) {
	var table string
	for i := 0; i < b.N; i++ {
		table = experiment.DatasetCatalogTable()
	}
	b.Log("\n" + table)
}

func BenchmarkTable2TrainingCatalog(b *testing.B) {
	var table string
	for i := 0; i < b.N; i++ {
		table = experiment.TrainingCatalogTable()
	}
	b.Log("\n" + table)
}

func BenchmarkFigure2SAMOvsBase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure2(benchScale())
		if i == b.N-1 {
			logFigure(b, fig, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3StaticVsDynamic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure3(benchScale())
		if i == b.N-1 {
			logFigure(b, fig, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4Canary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure4(benchScale())
		if i == b.N-1 {
			logFigure(b, fig, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5ViewSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure5(benchScale())
		if i == b.N-1 {
			logFigure(b, fig, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6NonIID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure6(benchScale())
		if i == b.N-1 {
			logFigure(b, fig, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7GenError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure7(benchScale())
		if i == b.N-1 {
			logFigure(b, fig, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8Rounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure8(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + fig.Table())
			// Figure 8 is a per-round trajectory; log the series too.
			for _, arm := range fig.Arms {
				b.Logf("%s\n%s", arm.Label, arm.Series.CSV())
			}
		}
	}
}

func BenchmarkFigure9DP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunFigure9(benchScale())
		if i == b.N-1 {
			logFigure(b, fig, err)
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10Mixing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFigure10(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + res.Table())
		}
	}
}

// BenchmarkAblationSAMODelay isolates SAMO's delayed aggregation: the
// samo-nodelay variant keeps full-view dissemination but merges pairwise
// on receive, so the difference against samo is attributable to the
// merge-once rule alone.
func BenchmarkAblationSAMODelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		arms := make([]experiment.Arm, 0, 2)
		for off, proto := range []string{"samo", "samo-nodelay"} {
			train, err := experiment.TrainingFor(data.CIFAR10)
			if err != nil {
				b.Fatal(err)
			}
			study, err := core.NewStudy(core.StudyConfig{
				Label:    "cifar10/" + proto + "/k=5/static",
				Corpus:   data.CIFAR10,
				Protocol: proto,
				Sim: gossip.Config{
					Nodes: sc.Nodes, ViewSize: 5, Rounds: sc.Rounds,
					Seed: sc.Seed*31 + int64(off),
				},
				Train:          train,
				Part:           core.PartitionConfig{TrainPerNode: sc.TrainPerNode, TestPerNode: sc.TestPerNode},
				GlobalTestSize: sc.GlobalTestSize,
				EvalEvery:      sc.EvalEvery,
				EvalNodes:      sc.EvalNodes,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := study.Run()
			if err != nil {
				b.Fatal(err)
			}
			arms = append(arms, experiment.Arm{Label: study.Config().Label, Series: res.Series, MessagesSent: res.MessagesSent})
		}
		if i == b.N-1 {
			fig := &experiment.FigureResult{
				Name:    "Ablation: SAMO delayed aggregation",
				Caption: "merge-once vs merge-on-receive with identical dissemination",
				Arms:    arms,
			}
			b.Log("\n" + fig.Table())
		}
	}
}

// BenchmarkAblationPeerSwapVsPermutation compares the experimental
// dynamics (PeerSwap) against the idealized Section 4 model (full random
// permutation per iteration) on mixing quality.
func BenchmarkAblationPeerSwapVsPermutation(b *testing.B) {
	const (
		n     = 60
		k     = 2
		steps = 30
	)
	for i := 0; i < b.N; i++ {
		rng := tensor.NewRNG(7)
		g, err := graph.NewRegular(n, k, rng)
		if err != nil {
			b.Fatal(err)
		}
		static, err := graph.StaticSequence(g, steps)
		if err != nil {
			b.Fatal(err)
		}
		sStat, err := static.ContractionFactor(0, 100, rng)
		if err != nil {
			b.Fatal(err)
		}
		swap, err := graph.PeerSwapSequence(g, steps, n, rng)
		if err != nil {
			b.Fatal(err)
		}
		sSwap, err := swap.ContractionFactor(0, 100, rng)
		if err != nil {
			b.Fatal(err)
		}
		perm, err := graph.DynamicSequence(g, steps, rng)
		if err != nil {
			b.Fatal(err)
		}
		sPerm, err := perm.ContractionFactor(0, 100, rng)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Logf("\nAblation: dynamics model (n=%d, k=%d, T=%d)\nstatic      lambda2(W*) = %.3e\npeerswap    lambda2(W*) = %.3e\npermutation lambda2(W*) = %.3e",
				n, k, steps, sStat, sSwap, sPerm)
		}
	}
}

// BenchmarkAblationDPClipping separates DP-SGD's two ingredients on a
// single overfitting node: plain SGD, clipping only (sigma=0), and full
// DP-SGD. Clipping alone already trims the MIA tail; noise closes it.
func BenchmarkAblationDPClipping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		type variant struct {
			name  string
			sigma float64
			clip  float64
		}
		variants := []variant{
			{name: "plain-sgd", sigma: 0, clip: 1e9},
			{name: "clip-only", sigma: 0, clip: 0.5},
			{name: "dp-sgd", sigma: 1.0, clip: 0.5},
		}
		out := make([]string, 0, len(variants))
		for _, v := range variants {
			rng := tensor.NewRNG(13)
			gen, err := data.NewGenerator(data.CIFAR10, rng)
			if err != nil {
				b.Fatal(err)
			}
			nd := data.NodeData{Train: gen.Sample(40, rng), Test: gen.Sample(80, rng)}
			model, err := nn.NewMLP([]int{gen.Dim(), 48, gen.Classes()}, rng)
			if err != nil {
				b.Fatal(err)
			}
			updater, err := newDPVariant(v.sigma, v.clip)
			if err != nil {
				b.Fatal(err)
			}
			for e := 0; e < 60; e++ {
				if err := updater.Update(model, nd.Train, rng); err != nil {
					b.Fatal(err)
				}
			}
			res, err := mia.AttackNode(model, nd)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, fmt.Sprintf("%s: miaAcc=%.3f tpr@1%%=%.3f", v.name, res.Accuracy, res.TPRAt1FPR))
		}
		if i == b.N-1 {
			b.Logf("\nAblation: DP-SGD ingredients (single node, 60 epochs)\n%s\n%s\n%s", out[0], out[1], out[2])
		}
	}
}

// newDPVariant builds a DP-SGD updater for the clipping ablation.
func newDPVariant(sigma, clip float64) (gossip.LocalUpdater, error) {
	return dp.NewUpdater(dp.SGDConfig{
		LR: 0.05, Clip: clip, NoiseMultiplier: sigma, BatchSize: 16, Epochs: 1,
	})
}

// BenchmarkExtensionAttackComparison compares the MPE attack against the
// entropy/confidence/loss estimators on one trained deployment.
func BenchmarkExtensionAttackComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiment.RunAttackComparison(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + cmp.Table())
		}
	}
}

// BenchmarkExtensionEpidemic compares Epidemic Learning (uniform random
// fanout, the limit case of dynamics) against SAMO on static and dynamic
// 2-regular graphs.
func BenchmarkExtensionEpidemic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		specs := []struct {
			label    string
			protocol string
			dynamic  bool
		}{
			{"cifar10/samo/k=2/static", "samo", false},
			{"cifar10/samo/k=2/dynamic", "samo", true},
			{"cifar10/epidemic/fanout=2", "epidemic", false},
		}
		arms := make([]experiment.Arm, 0, len(specs))
		for off, spec := range specs {
			train, err := experiment.TrainingFor(data.CIFAR10)
			if err != nil {
				b.Fatal(err)
			}
			study, err := core.NewStudy(core.StudyConfig{
				Label:    spec.label,
				Corpus:   data.CIFAR10,
				Protocol: spec.protocol,
				Sim: gossip.Config{
					Nodes: sc.Nodes, ViewSize: 2, Dynamic: spec.dynamic,
					Rounds: sc.Rounds, Seed: sc.Seed*53 + int64(off),
				},
				Train:          train,
				Part:           core.PartitionConfig{TrainPerNode: sc.TrainPerNode, TestPerNode: sc.TestPerNode},
				GlobalTestSize: sc.GlobalTestSize,
				EvalEvery:      sc.EvalEvery,
				EvalNodes:      sc.EvalNodes,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := study.Run()
			if err != nil {
				b.Fatal(err)
			}
			arms = append(arms, experiment.Arm{
				Label: spec.label, Series: res.Series,
				MessagesSent: res.MessagesSent, BytesSent: res.BytesSent,
			})
		}
		if i == b.N-1 {
			fig := &experiment.FigureResult{
				Name:    "Extension: Epidemic Learning",
				Caption: "uniform random fanout vs SAMO over fixed views",
				Arms:    arms,
			}
			b.Log("\n" + fig.Table())
		}
	}
}

// BenchmarkExtensionDynamicsModes compares static, PeerSwap, and Cyclon
// RPS dynamics on the same deployment.
func BenchmarkExtensionDynamicsModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RunDynamicsComparison(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n" + fig.Table())
		}
	}
}

// BenchmarkAblationLRDecay isolates the Section 5 "dynamic learning
// rates" mitigation against early overfitting: one overfitting node
// trained with and without per-epoch LR decay.
func BenchmarkAblationLRDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := make([]string, 0, 2)
		for _, decay := range []float64{0, 0.9} {
			rng := tensor.NewRNG(19)
			gen, err := data.NewGenerator(data.CIFAR10, rng)
			if err != nil {
				b.Fatal(err)
			}
			nd := data.NodeData{Train: gen.Sample(40, rng), Test: gen.Sample(80, rng)}
			model, err := nn.NewMLP([]int{gen.Dim(), 48, gen.Classes()}, rng)
			if err != nil {
				b.Fatal(err)
			}
			tr := nn.NewTrainer(model, nn.NewSGD(nn.SGDConfig{LR: 0.08, LRDecay: decay}), 16, 1)
			for e := 0; e < 60; e++ {
				if _, err := tr.RunEpochs(nd.Train.X, nd.Train.Y, rng); err != nil {
					b.Fatal(err)
				}
			}
			res, err := mia.AttackNode(model, nd)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, fmt.Sprintf("decay=%.1f: miaAcc=%.3f tpr@1%%=%.3f", decay, res.Accuracy, res.TPRAt1FPR))
		}
		if i == b.N-1 {
			b.Logf("\nAblation: LR decay vs early overfitting (single node, 60 epochs)\n%s\n%s", out[0], out[1])
		}
	}
}

// BenchmarkExtensionMessageLoss exercises the failure-injection path:
// SAMO under 0%, 20% and 40% transmission loss.
func BenchmarkExtensionMessageLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		arms := make([]experiment.Arm, 0, 3)
		for off, drop := range []float64{0, 0.2, 0.4} {
			train, err := experiment.TrainingFor(data.FashionMNIST)
			if err != nil {
				b.Fatal(err)
			}
			study, err := core.NewStudy(core.StudyConfig{
				Label:    fmt.Sprintf("fashionmnist/samo/drop=%.0f%%", drop*100),
				Corpus:   data.FashionMNIST,
				Protocol: "samo",
				Sim: gossip.Config{
					Nodes: sc.Nodes, ViewSize: 3, Rounds: sc.Rounds,
					DropProb: drop, Seed: sc.Seed*71 + int64(off),
				},
				Train:          train,
				Part:           core.PartitionConfig{TrainPerNode: sc.TrainPerNode, TestPerNode: sc.TestPerNode},
				GlobalTestSize: sc.GlobalTestSize,
				EvalEvery:      sc.Rounds,
				EvalNodes:      sc.EvalNodes,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := study.Run()
			if err != nil {
				b.Fatal(err)
			}
			arms = append(arms, experiment.Arm{
				Label: study.Config().Label, Series: res.Series,
				MessagesSent: res.MessagesSent, BytesSent: res.BytesSent,
			})
		}
		if i == b.N-1 {
			fig := &experiment.FigureResult{
				Name:    "Extension: message loss",
				Caption: "SAMO resilience to dropped transmissions",
				Arms:    arms,
			}
			b.Log("\n" + fig.Table())
		}
	}
}

// parallelWorkerMatrix is the deduplicated worker sweep of the speedup
// benchmarks: serial, 2, 4, plus one-per-CPU when that differs. The
// explicit 2/4 rows make the speedup visible in snapshots on multi-core
// runners, and deduplication keeps BENCH_*.json free of the duplicate
// `workers=1#01` rows that a 1-core GOMAXPROCS used to produce.
func parallelWorkerMatrix() []int {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkParallelSpeedup runs multi-arm figures across the worker
// matrix. The Workers knob now drives every level — arm fan-out,
// node-parallel tick execution inside each arm, per-node evaluation,
// and tiled GEMM — and arms own their seeds, so every configuration
// produces byte-identical figures (asserted by
// TestFigureIdenticalAcrossWorkerCounts and the intra-arm determinism
// tests). On a multi-core machine the workers=4 rows should run well
// over 2.5x faster than workers=1 on these 8-arm figures; on a single
// core all rows coincide.
func BenchmarkParallelSpeedup(b *testing.B) {
	figures := []struct {
		name string
		run  func(experiment.Scale) (*experiment.FigureResult, error)
	}{
		{"figure2", experiment.RunFigure2},
		{"figure3", experiment.RunFigure3},
	}
	for _, fig := range figures {
		for _, workers := range parallelWorkerMatrix() {
			b.Run(fmt.Sprintf("%s/workers=%d", fig.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sc := benchScale()
					sc.Workers = workers
					if _, err := fig.run(sc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIntraArmSpeedup isolates the node-parallel tick engine: ONE
// arm (so arm fan-out contributes nothing) with a wake schedule dense
// enough that several nodes wake in the same tick. The scaling of
// these rows is intra-arm: concurrent wake compute (merge + local SGD)
// plus the parallel per-node evaluation; results are byte-identical
// across rows. Besides wall clock, workers>1 rows report the engine's
// schedule occupancy (average wakes per conflict-free batch) — the
// machine-independent speedup ceiling, readable even on a host whose
// GOMAXPROCS caps the wall-clock ratio at 1.0x.
func BenchmarkIntraArmSpeedup(b *testing.B) {
	for _, workers := range parallelWorkerMatrix() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				train, err := experiment.TrainingFor(data.CIFAR10)
				if err != nil {
					b.Fatal(err)
				}
				study, err := core.NewStudy(core.StudyConfig{
					Label:    "intra-arm/samo/k=3/dense-wakes",
					Corpus:   data.CIFAR10,
					Protocol: "samo",
					Sim: gossip.Config{
						Nodes: 24, ViewSize: 3, Rounds: 2,
						TicksPerRound: 20, WakeMean: 5, WakeStd: 2,
						Seed: 7,
					},
					Train:          train,
					Part:           core.PartitionConfig{TrainPerNode: 32, TestPerNode: 32},
					GlobalTestSize: 128,
					EvalEvery:      2,
					EvalNodes:      8,
					Workers:        workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := study.Run()
				if err != nil {
					b.Fatal(err)
				}
				if occ := res.Sched.Occupancy(); occ > 0 {
					b.ReportMetric(occ, "occupancy")
				}
			}
		})
	}
}

// --- substrate micro-benchmarks -------------------------------------

func benchModel(b *testing.B) (*nn.MLP, tensor.Vector) {
	b.Helper()
	rng := tensor.NewRNG(1)
	model, err := nn.NewMLP([]int{64, 48, 10}, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.NewVector(64)
	rng.FillNormal(x, 0, 1)
	return model, x
}

func BenchmarkMLPForward(b *testing.B) {
	model, x := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Predict(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPExampleGrad(b *testing.B) {
	model, x := benchModel(b)
	grad := tensor.NewVector(model.NumParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grad.Zero()
		if _, err := model.ExampleGrad(x, 3, grad); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMixingStep(b *testing.B) {
	rng := tensor.NewRNG(1)
	g, err := graph.NewRegular(150, 25, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.NewVector(150)
	rng.FillNormal(x, 0, 1)
	out := tensor.NewVector(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ApplyMixing(x, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContractionFactor(b *testing.B) {
	rng := tensor.NewRNG(1)
	g, err := graph.NewRegular(150, 5, rng)
	if err != nil {
		b.Fatal(err)
	}
	seq, err := graph.DynamicSequence(g, 50, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seq.ContractionFactor(0, 50, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPEAttack(b *testing.B) {
	rng := tensor.NewRNG(1)
	gen, err := data.NewGenerator(data.CIFAR10, rng)
	if err != nil {
		b.Fatal(err)
	}
	nd := data.NodeData{Train: gen.Sample(64, rng), Test: gen.Sample(64, rng)}
	model, err := nn.NewMLP([]int{gen.Dim(), 48, gen.Classes()}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mia.AttackNode(model, nd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeerSwap(b *testing.B) {
	rng := tensor.NewRNG(1)
	g, err := graph.NewRegular(150, 5, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PeerSwap(rng.Intn(g.N()), rng)
	}
}
