module gossipmia

go 1.24
