GO ?= go

# bench-compare inputs: the baseline and candidate snapshots, and the
# tolerated ns/op growth in percent.
OLD ?= BENCH_0005.json
NEW ?= BENCH_0006.json
THRESHOLD ?= 15

.PHONY: all build vet test race ci bench bench-smoke bench-compare profile

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 gate plus the race detector over the parallelized packages.
ci: build vet race

bench:
	$(GO) test -run=NONE -bench=. -benchmem .

# Quick hot-path perf snapshot; writes BENCH_smoke.json for the
# perf trajectory (see BENCH_0001.json for the PR-1 before/after) and
# gates the zero-allocation invariants of the send, trainer, and
# evaluation hot paths.
bench-smoke:
	./scripts/bench_smoke.sh

# Diff two BENCH_*.json snapshots and fail on >$(THRESHOLD)% ns/op
# regressions or intra-family speedup losses:
# make bench-compare OLD=BENCH_0003.json NEW=BENCH_0004.json
bench-compare:
	$(GO) run ./scripts/bench_compare -old $(OLD) -new $(NEW) -threshold $(THRESHOLD)

# Capture pprof CPU+alloc profiles (figure2 run + dense-wake arm) and
# their top-20 summaries under profiles/ — the input for DESIGN.md's
# "Where the time goes" section.
profile:
	./scripts/profile.sh
